package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	cimloop "repro"
	"repro/internal/client"
)

// jobsTestServer runs the real batch service behind httptest and returns
// its base URL.
func jobsTestServer(t *testing.T, opts cimloop.BatchOptions) string {
	t.Helper()
	srv := cimloop.NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL
}

func TestJobsSubmitWaitLifecycle(t *testing.T) {
	url := jobsTestServer(t, cimloop.BatchOptions{Workers: 2})
	if err := run([]string{"jobs", "submit",
		"-addr", url,
		"-macros", "base,macro-b", "-networks", "toy",
		"-mappings", "2", "-priority", "interactive",
		"-wait"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"jobs", "list", "-addr", url}); err != nil {
		t.Fatal(err)
	}
	// The polling fallback reaches the same terminal state.
	if err := run([]string{"jobs", "wait", "job-000001", "-addr", url, "-poll"}); err != nil {
		t.Fatal(err)
	}
	// Filtered listing round-trips through the typed query parameters.
	if err := run([]string{"jobs", "list", "-addr", url, "-status", "succeeded", "-limit", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestJobsStatusAndCancel(t *testing.T) {
	url := jobsTestServer(t, cimloop.BatchOptions{Workers: 1})
	// A heavyweight grid so the cancel lands while the job is live.
	if err := run([]string{"jobs", "submit",
		"-addr", url,
		"-macros", "base,macro-a,macro-b,macro-d", "-networks", "resnet18",
		"-mappings", "400"}); err != nil {
		t.Fatal(err)
	}
	// IDs are monotonic from job-000001.
	if err := run([]string{"jobs", "status", "job-000001", "-addr", url}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"jobs", "cancel", "job-000001", "-addr", url}); err != nil {
		t.Fatal(err)
	}
	// Waiting on a cancelled job is a non-zero exit naming the state.
	err := run([]string{"jobs", "wait", "job-000001", "-addr", url})
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("wait on cancelled job: %v", err)
	}
}

// TestWaitAndPrintEvictionMessage drives waitAndPrint against a stub
// that shows the job running once and then 404s — the retention-eviction
// race — and checks the error names the condition instead of the ID. The
// stub has no SSE endpoint, which also exercises the poll fallback.
func TestWaitAndPrintEvictionMessage(t *testing.T) {
	polls := 0
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if strings.HasSuffix(r.URL.Path, "/events") {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"code": "not_found", "message": "no route"}`)
			return
		}
		polls++
		if polls == 1 {
			fmt.Fprint(w, `{"id": "job-000001", "status": "running", "version": 2, "completed": 0, "total": 1}`)
			return
		}
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"code": "not_found", "message": "unknown job \"job-000001\""}`)
	}))
	defer stub.Close()
	err := waitAndPrint(client.New(stub.URL), "job-000001", time.Second, true)
	if err == nil || !strings.Contains(err.Error(), "evicted from retention") {
		t.Fatalf("err = %v, want eviction message", err)
	}
	// A job that 404s on the very first poll is a plain unknown-job error.
	err = waitAndPrint(client.New(stub.URL), "job-000002", time.Second, true)
	if err == nil || strings.Contains(err.Error(), "evicted") {
		t.Fatalf("first-poll 404: %v", err)
	}
}

func TestJobsWaitNamesRetentionEviction(t *testing.T) {
	url := jobsTestServer(t, cimloop.BatchOptions{Workers: 1, JobRetention: 1})
	// Job 1 finishes, then job 2 finishes and evicts it.
	for i := 0; i < 2; i++ {
		if err := run([]string{"jobs", "submit", "-addr", url,
			"-macros", "base", "-networks", "toy", "-mappings", "1",
			"-wait"}); err != nil {
			t.Fatal(err)
		}
	}
	// Plain status on the evicted job is an ordinary 404.
	if err := run([]string{"jobs", "status", "job-000001", "-addr", url}); err == nil {
		t.Fatal("status on evicted job: want error")
	}
}

func TestJobsErrors(t *testing.T) {
	url := jobsTestServer(t, cimloop.BatchOptions{})
	cases := [][]string{
		{"jobs"},
		{"jobs", "bogus"},
		{"jobs", "status"},
		{"jobs", "wait"},
		{"jobs", "cancel"},
		{"jobs", "submit", "-addr", url}, // no grid
		{"jobs", "submit", "-addr", url, "-macros", "base", "-networks", "toy", "-priority", "urgent"}, // bad class
		{"jobs", "status", "job-999999", "-addr", url},                                                 // 404
		{"jobs", "cancel", "job-999999", "-addr", url},                                                 // 404
		{"jobs", "submit", "-addr", url, "-no-such-flag"},                                              // bad flag
		{"jobs", "status", "job-000001", "-addr", "127.0.0.1:1"},                                       // nothing listening
	}
	for _, c := range cases {
		if err := run(c); err == nil {
			t.Errorf("run(%v): want error", c)
		}
	}
}
