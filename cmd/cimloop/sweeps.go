package main

import (
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"

	cimloop "repro"
	"repro/internal/report"
	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
	"repro/internal/sweepdef"
)

// runSweeps is the `cimloop sweeps` subcommand: declarative experiment
// definitions (sweeps/*.yaml, package sweepdef) listed, inspected,
// validated, and run — offline against an in-process evaluator, or
// against a running serve instance via the SDK when -addr is given.
//
//	cimloop sweeps ls [-dir ./sweeps | -addr URL]
//	cimloop sweeps show <name> [-dir ./sweeps]
//	cimloop sweeps validate [DIR]
//	cimloop sweeps run <name> [-p k=v ...] [-dir ./sweeps | -addr URL]
//	                   [-async] [-priority C] [-timeout D] [-wait] [-csv]
func runSweeps(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("sweeps: missing verb (ls, show, validate, run)")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "ls":
		return sweepsLs(rest)
	case "show":
		if len(rest) == 0 {
			return fmt.Errorf("sweeps show: missing definition name")
		}
		return sweepsShow(rest[0], rest[1:])
	case "validate":
		return sweepsValidate(rest)
	case "run":
		if len(rest) == 0 {
			return fmt.Errorf("sweeps run: missing definition name")
		}
		return sweepsRun(rest[0], rest[1:])
	}
	return fmt.Errorf("sweeps: unknown verb %q (have ls, show, validate, run)", verb)
}

// dirFlag registers the shared -dir flag for offline operation.
func dirFlag(fs *flag.FlagSet) *string {
	return fs.String("dir", "./sweeps", "definition directory for offline use")
}

// paramArgs collects repeated -p name=value bindings.
type paramArgs map[string]any

func (p paramArgs) String() string { return fmt.Sprintf("%v", map[string]any(p)) }

func (p paramArgs) Set(s string) error {
	name, value, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	// Values stay strings; the definition's typed parameters coerce them
	// (the same path an HTTP caller's JSON numbers take).
	p[name] = value
	return nil
}

// infosTable renders experiment listings shared by offline and remote ls.
func infosTable(infos []api.ExperimentInfo) *report.Table {
	t := report.NewTable("Sweep definitions", "name", "priority", "requests", "params", "description")
	for _, info := range infos {
		pri := info.Priority
		if pri == "" {
			pri = "batch"
		}
		var params []string
		for _, p := range info.Params {
			params = append(params, fmt.Sprintf("%s:%s", p.Name, p.Type))
		}
		ps := strings.Join(params, ", ")
		if ps == "" {
			ps = "-"
		}
		t.AddRow(info.Name, pri, strconv.Itoa(info.Requests), ps, info.Description)
	}
	return t
}

func sweepsLs(args []string) error {
	fs := flag.NewFlagSet("sweeps ls", flag.ContinueOnError)
	dir := dirFlag(fs)
	addr := fs.String("addr", "", "serve instance to list instead of a local directory")
	token := tokenFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr != "" {
		ctx, cancel := unaryCtx()
		defer cancel()
		out, err := newClient(*addr, *token).ListExperiments(ctx)
		if err != nil {
			return err
		}
		if len(out.Experiments) > 0 {
			fmt.Printf("built-in experiments: %s\n", strings.Join(out.Experiments, ", "))
		}
		fmt.Println(infosTable(out.Definitions).String())
		return nil
	}
	set, err := sweepdef.LoadDir(*dir)
	if err != nil {
		return err
	}
	fmt.Println(infosTable(set.Infos()).String())
	return nil
}

func sweepsShow(name string, args []string) error {
	fs := flag.NewFlagSet("sweeps show", flag.ContinueOnError)
	dir := dirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	set, err := sweepdef.LoadDir(*dir)
	if err != nil {
		return err
	}
	def, ok := set.Get(name)
	if !ok {
		return fmt.Errorf("sweeps show: no definition %q in %s (have %s)",
			name, *dir, strings.Join(set.Names(), ", "))
	}
	info := def.Info()
	t := report.NewTable("Definition "+info.Name, "field", "value")
	t.AddRow("file", info.File)
	if info.Description != "" {
		t.AddRow("description", info.Description)
	}
	pri := info.Priority
	if pri == "" {
		pri = "batch"
	}
	t.AddRow("priority", pri)
	t.AddRow("requests at defaults", strconv.Itoa(info.Requests))
	fmt.Println(t.String())
	if len(info.Params) > 0 {
		pt := report.NewTable("Parameters", "name", "type", "default", "constraints", "description")
		for _, p := range info.Params {
			var cons []string
			if p.Min != nil {
				cons = append(cons, fmt.Sprintf("min %g", *p.Min))
			}
			if p.Max != nil {
				cons = append(cons, fmt.Sprintf("max %g", *p.Max))
			}
			if len(p.Choices) > 0 {
				cons = append(cons, "one of "+strings.Join(p.Choices, "|"))
			}
			c := strings.Join(cons, ", ")
			if c == "" {
				c = "-"
			}
			pt.AddRow(p.Name, p.Type, fmt.Sprintf("%v", p.Default), c, p.Description)
		}
		fmt.Println(pt.String())
	}
	return nil
}

func sweepsValidate(args []string) error {
	fs := flag.NewFlagSet("sweeps validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir := "./sweeps"
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
	}
	// LoadDir parses AND validates: any broken file fails the whole
	// directory, which is exactly what the CI gate wants.
	set, err := sweepdef.LoadDir(dir)
	if err != nil {
		return err
	}
	for _, def := range set.All() {
		reqs, err := def.Compile(nil)
		if err != nil {
			return err
		}
		fmt.Printf("ok: %s (%s, %d requests at defaults)\n", def.Name, def.File, len(reqs))
	}
	return nil
}

func sweepsRun(name string, args []string) error {
	fs := flag.NewFlagSet("sweeps run", flag.ContinueOnError)
	dir := dirFlag(fs)
	addr := fs.String("addr", "", "run on this serve instance instead of in-process")
	token := tokenFlag(fs)
	params := paramArgs{}
	fs.Var(params, "p", "bind one declared parameter as name=value (repeatable)")
	async := fs.Bool("async", false, "with -addr: force the job path (202 + job ID)")
	priority := fs.String("priority", "",
		"with -addr: override the definition's scheduling class (interactive|batch)")
	timeout := fs.Duration("timeout", 0, "deadline for the run (0 = none)")
	wait := fs.Bool("wait", false, "with -addr -async: block until the job finishes and print its table")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table (offline runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr != "" {
		return sweepsRunRemote(name, *addr, *token, params, *async, *priority, timeout.Seconds(), *wait)
	}
	set, err := sweepdef.LoadDir(*dir)
	if err != nil {
		return err
	}
	def, ok := set.Get(name)
	if !ok {
		return fmt.Errorf("sweeps run: no definition %q in %s (have %s)",
			name, *dir, strings.Join(set.Names(), ", "))
	}
	reqs, err := def.Compile(params)
	if err != nil {
		return err
	}
	srv := cimloop.NewServer(cimloop.BatchOptions{})
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	results, err := srv.SweepCtx(ctx, reqs, 0, nil)
	if err != nil {
		return err
	}
	t := cimloop.SweepResultsTable(results)
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
	return nil
}

// sweepsRunRemote runs one definition on a serve instance via the SDK:
// POST /v1/experiments/{name}, honoring the same 200-vs-202 fork as
// POST /v1/sweep.
func sweepsRunRemote(name, addr, token string, params paramArgs, async bool, priority string, timeoutSec float64, wait bool) error {
	pri, err := jobs.ParsePriority(priority)
	if err != nil {
		return err
	}
	c := newClient(addr, token)
	resp, acc, err := c.RunNamedExperiment(context.Background(), name, api.NamedExperimentRequest{
		Params:     params,
		Async:      async,
		TimeoutSec: timeoutSec,
		Priority:   pri,
	})
	if err != nil {
		return err
	}
	if acc != nil {
		fmt.Printf("accepted %s (%s, %d requests): poll with `cimloop jobs status %s`\n",
			acc.Job.ID, acc.Job.Priority, acc.Job.Total, acc.Job.ID)
		if !wait {
			return nil
		}
		return waitAndPrint(c, acc.Job.ID, 0, false)
	}
	fmt.Println(resp.Table)
	return nil
}
