// Cluster-facing subcommands: `cimloop blobd` runs the shared warm-start
// blob tier (the ring's L3, under each node's memory and disk tiers),
// and `cimloop cluster status` renders GET /v1/cluster — membership,
// per-node health and ownership, forwarding counters, and blob-tier
// state. See docs/CLUSTER.md for the topology these commands assemble.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/report"
)

// runBlobd serves one directory as the cluster's shared blob tier: a
// plain HTTP object store speaking the persist envelope, with no
// dependency on the serve stack, so it can restart independently of the
// ring (nodes degrade to local tiers while it is down and repopulate it
// on their next cold compiles).
func runBlobd(args []string) error {
	fs := flag.NewFlagSet("blobd", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	dir := fs.String("dir", "", "directory holding the blobs (required; created if missing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("blobd: -dir is required")
	}
	bs, err := cluster.NewBlobServer(*dir)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           bs,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	st := bs.Stats()
	fmt.Fprintf(os.Stderr, "cimloop: blobd serving %s on %s (%d objects)\n",
		*dir, *addr, st.Objects)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runCluster dispatches the cluster introspection subcommands. Only
// "status" exists today; the subcommand level leaves room for ring
// operations without reshaping the CLI.
func runCluster(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("cluster: missing subcommand (try 'cimloop cluster status')")
	}
	switch args[0] {
	case "status":
		return runClusterStatus(args[1:])
	}
	return fmt.Errorf("cluster: unknown subcommand %q", args[0])
}

func runClusterStatus(args []string) error {
	fs := flag.NewFlagSet("cluster status", flag.ContinueOnError)
	addr := addrFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := client.New(*addr).ClusterStatus(ctx)
	if err != nil {
		return err
	}
	if !st.Enabled {
		fmt.Println("clustering disabled (single-node server)")
		return nil
	}
	t := report.NewTable(fmt.Sprintf("cluster via %s (self %s, %d vnodes/member)",
		*addr, st.Self, st.VirtualNodes),
		"node", "addr", "healthy", "version", "share %", "owned keys")
	for _, n := range st.Nodes {
		id := n.ID
		if n.Self {
			id += " *"
		}
		version := n.Version
		if version == "" {
			version = "-"
		}
		t.AddRow(id, n.Addr, fmt.Sprintf("%t", n.Healthy), version,
			report.Num(n.SharePct), fmt.Sprintf("%d", n.OwnedKeys))
	}
	fmt.Println(t.String())
	fmt.Printf("cached keys: %d   forwarding: %d local, %d forwarded, %d received, %d errors\n",
		st.CachedKeys, st.Forward.Local, st.Forward.Forwarded, st.Forward.Received, st.Forward.Errors)
	if b := st.Blob; b != nil {
		health := "healthy"
		if !b.Healthy {
			health = "UNHEALTHY (serving from local tiers)"
		}
		fmt.Printf("blob tier %s: %s   gets %d (hits %d, misses %d), puts %d, errors %d, dropped %d\n",
			b.URL, health, b.Stats.Gets, b.Stats.Hits, b.Stats.Misses,
			b.Stats.Puts, b.Stats.Errors, b.Stats.Dropped)
	}
	return nil
}
