package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/report"
)

// runObs is the `cimloop obs` subcommand: read-only views of a running
// serve instance's observability surfaces (docs/OBSERVABILITY.md).
//
//	cimloop obs metrics [-addr URL]            dump GET /metrics verbatim
//	cimloop obs slow [-addr URL] [-limit N]    render GET /v1/debug/slow
func runObs(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("obs: missing verb (metrics, slow)")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "metrics":
		return obsMetrics(rest)
	case "slow":
		return obsSlow(rest)
	}
	return fmt.Errorf("obs: unknown verb %q (have metrics, slow)", verb)
}

// obsMetrics prints the Prometheus text exposition untouched, so the
// output pipes cleanly into grep or promtool.
func obsMetrics(args []string) error {
	fs := flag.NewFlagSet("obs metrics", flag.ContinueOnError)
	addr := addrFlag(fs)
	token := tokenFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := unaryCtx()
	defer cancel()
	text, err := newClient(*addr, *token).Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

func obsSlow(args []string) error {
	fs := flag.NewFlagSet("obs slow", flag.ContinueOnError)
	addr := addrFlag(fs)
	token := tokenFlag(fs)
	limit := fs.Int("limit", 0, "show at most N entries, newest first (0 = everything retained)")
	asJSON := fs.Bool("json", false, "emit the raw JSON response instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := unaryCtx()
	defer cancel()
	out, err := newClient(*addr, *token).DebugSlow(ctx, *limit)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	title := fmt.Sprintf("Slow requests (%d retained of %d recorded", len(out.Requests), out.Recorded)
	if out.ThresholdSec > 0 {
		title += fmt.Sprintf(", threshold %.3gs", out.ThresholdSec)
	}
	title += ")"
	t := report.NewTable(title, "route", "tag", "tenant", "duration (s)", "phases", "error")
	for _, e := range out.Requests {
		t.AddRow(e.Route, orDash(e.Tag), orDash(e.Tenant),
			strconv.FormatFloat(e.DurationSec, 'f', 3, 64),
			orDash(phaseSummary(e.Phases)), orDash(e.Error))
	}
	fmt.Println(t.String())
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// phaseSummary renders phase timings as "queue=0.010 search=1.200" in
// the order the server recorded them.
func phaseSummary(phases []obs.PhaseTiming) string {
	parts := make([]string, len(phases))
	for i, p := range phases {
		parts[i] = fmt.Sprintf("%s=%.3f", p.Phase, p.Seconds)
	}
	return strings.Join(parts, " ")
}
