// Command cimloop runs the CiMLoop reproduction from the command line:
// list and run paper experiments, inspect macro models, and evaluate
// textual system specifications.
//
// Usage:
//
//	cimloop list
//	cimloop run <experiment|all> [-fast] [-csv] [-mappings N] [-seed N] [-search-workers N]
//	cimloop macros
//	cimloop spec <file.yaml> [-network NAME] [-mappings N] [-search-workers N]
//	cimloop serve [-addr :8080] [-workers N] [-mappings N] [-cache N] [-search-workers N]
//	              [-cache-dir DIR] [-jobs-dir DIR] [-max-body BYTES]
//	              [-node-id ID -peers id=url,...] [-vnodes N] [-blob URL]
//	cimloop blobd [-addr :8090] -dir DIR
//	cimloop cluster status [-addr URL]
//	cimloop jobs submit|list|status|wait|cancel [...] [-addr URL]
//	cimloop obs slow|metrics [-addr URL]
//
// The jobs subcommands are a thin shell over the typed Go SDK
// (internal/client) against the v1 wire contract (internal/serve/api,
// documented in docs/API.md): submissions can carry a scheduling class
// (-priority interactive|batch; interactive jobs dispatch first), `jobs
// list` filters and pages (-status, -limit, -cursor), and `jobs wait`
// streams progress over Server-Sent Events, falling back to polling
// only when the stream is unavailable (-poll forces the fallback).
//
// -search-workers fans each layer's candidate mapping evaluations across
// a bounded goroutine pool. The parallel search is bit-identical to the
// serial one (deterministic minimum-cost, lowest-index winner), so the
// flag only changes latency, never results; under `serve` the default
// (0) picks the width adaptively per layer from measured candidate cost.
// -sample-shards additionally parallelizes candidate *generation* across
// independent seeded streams with a deterministic merge — that one does
// select a different candidate set, so results are reproducible only at
// equal (seed, shards).
//
// -cache-dir and -jobs-dir enable durable warm starts (package persist):
// compiled engines, per-layer contexts, and job records persist across
// restarts, so a restarted server serves repeated requests as cache hits
// and still answers /v1/jobs/{id} for jobs finished before the restart.
//
// -node-id/-peers turn a serve instance into one member of a static
// consistent-hash ring (requests owned by a peer forward to it), -blob
// layers a shared warm tier under the cache so any node's compile
// warm-starts the others, `cimloop blobd` runs that tier, and `cimloop
// cluster status` renders GET /v1/cluster. See docs/CLUSTER.md.
//
// Observability (see docs/OBSERVABILITY.md): every serve instance
// exposes Prometheus-format metrics at GET /metrics and a slow-request
// ring buffer at GET /v1/debug/slow; `cimloop obs metrics|slow` reads
// both from the command line. -debug-addr starts a SECOND listener
// (loopback recommended) with net/http/pprof plus /metrics and
// /healthz — pprof is never mounted on the public address. A server
// started with -tenants reloads the tenant file on SIGHUP: the new
// file is validated first and the previous set is kept on any error,
// so a bad rotation cannot lock out (or open up) a live server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	cimloop "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/macros"
	"repro/internal/report"
	"repro/internal/specfile"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cimloop:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return nil
	case "run":
		return runExperiments(args[1:])
	case "macros":
		return listMacros()
	case "spec":
		return runSpec(args[1:])
	case "serve":
		return runServe(args[1:])
	case "blobd":
		return runBlobd(args[1:])
	case "cluster":
		return runCluster(args[1:])
	case "jobs":
		return runJobs(args[1:])
	case "sweeps":
		return runSweeps(args[1:])
	case "obs":
		return runObs(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	}
	usage()
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cimloop list                                       list experiments
  cimloop run <experiment|all> [-fast] [-csv] ...    regenerate paper tables/figures
  cimloop macros                                     show macro parameters (Table III)
  cimloop spec <file.yaml> [-network NAME] ...       evaluate a textual specification
  cimloop serve [-addr :8080] [-workers N] [-cache-dir DIR] [-jobs-dir DIR] ...
                [-node-id ID -peers id=url,...] [-blob URL]
                                                     run the batch-evaluation HTTP service
  cimloop blobd [-addr :8090] -dir DIR               run the shared warm-start blob tier
  cimloop cluster status [-addr URL]                 show ring membership, health, ownership
  cimloop jobs submit -macros a,b -networks x [-priority interactive] ...
                                                     submit an async sweep to a serve instance
  cimloop jobs list [-status S] [-limit N] [-cursor ID]  page and filter jobs
  cimloop jobs status <id>|wait <id>|cancel <id>     inspect and control async jobs
                                                     (wait streams progress via SSE)
  cimloop sweeps ls [-dir ./sweeps | -addr URL]      list declarative sweep definitions
  cimloop sweeps show <name> [-dir ./sweeps]         show one definition's parameter schema
  cimloop sweeps validate [DIR]                      validate every definition in a directory
  cimloop sweeps run <name> [-p k=v ...] [-dir ./sweeps | -addr URL [-async]]
                                                     run a definition offline or on a server
  cimloop obs metrics [-addr URL]                    dump the Prometheus text exposition
  cimloop obs slow [-addr URL] [-limit N] [-json]    show the slowest recent requests
                                                     with per-phase timings`)
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "evaluation goroutines (0 = one per CPU)")
	searchWorkers := fs.Int("search-workers", 0,
		"per-request mapping-search fan-out, budget shared with the worker pool (0 = adaptive per layer from measured candidate cost; negative = serial)")
	sampleShards := fs.Int("sample-shards", 0,
		"candidate-generation shards per layer search; >1 samples a different (still deterministic) candidate set, so results are comparable only at equal (seed, shards) (0 = 1 stream, the historical sequence)")
	mappings := fs.Int("mappings", 0, "default per-layer mapping budget (0 = 60)")
	cacheEntries := fs.Int("cache", 0, "engine/context cache entries (0 = default)")
	cacheDir := fs.String("cache-dir", "",
		"directory for durable engine/context warm starts (empty = in-memory only)")
	jobsDir := fs.String("jobs-dir", "",
		"directory for job durability: terminal snapshots survive restarts, interrupted jobs replay (empty = in-memory only)")
	asyncThreshold := fs.Int("async-threshold", 0,
		"sweep size that returns 202 + a job instead of blocking (0 = default; negative = only on explicit \"async\": true or /v1/jobs)")
	jobQueue := fs.Int("job-queue", 0, "pending async jobs before 429 + Retry-After (0 = default)")
	jobRetention := fs.Int("job-retention", 0, "finished jobs kept for /v1/jobs (0 = default)")
	maxBody := fs.Int64("max-body", 0, "request-body byte bound; larger bodies get 413 (0 = 1 MiB default)")
	nodeID := fs.String("node-id", "",
		"this node's identity in the consistent-hash ring; must appear in -peers")
	peers := fs.String("peers", "",
		"static ring membership as id=url,id=url,... (requires -node-id)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per ring member (0 = default)")
	blob := fs.String("blob", "",
		"shared blob-tier base URL (a cimloop blobd instance); any node's compile warm-starts the others")
	tenantsFile := fs.String("tenants", "",
		"tenant file (YAML): bearer tokens, fair-queuing weights, per-tenant quotas; enables auth (empty = open server); SIGHUP reloads it")
	sweepsDir := fs.String("sweeps", "",
		"directory of declarative sweep definitions (sweeps/*.yaml) served at /v1/experiments/{name} (empty = none); SIGHUP reloads it")
	debugAddr := fs.String("debug-addr", "",
		"extra listener with net/http/pprof, /metrics, and /healthz; bind to loopback — pprof is deliberately absent from -addr (empty = off)")
	slowThreshold := fs.Duration("slow-threshold", 0,
		"record only requests at least this slow in /v1/debug/slow (0 = record everything; negative = disable the slow log)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tenants *cimloop.Tenants
	if *tenantsFile != "" {
		// A requested-but-broken tenant file must fail at startup: booting
		// an open server where auth was asked for is the worst failure mode.
		var err error
		if tenants, err = cimloop.LoadTenantsFile(*tenantsFile); err != nil {
			return err
		}
	}
	// The facade's constructor wires the experiment runner so
	// /v1/experiments can list and regenerate paper artifacts.
	srv := cimloop.NewServer(cimloop.BatchOptions{
		Workers:        *workers,
		SearchWorkers:  *searchWorkers,
		SampleShards:   *sampleShards,
		MaxMappings:    *mappings,
		CacheEntries:   *cacheEntries,
		CacheDir:       *cacheDir,
		JobsDir:        *jobsDir,
		AsyncThreshold: *asyncThreshold,
		MaxQueuedJobs:  *jobQueue,
		JobRetention:   *jobRetention,
		MaxBodyBytes:   *maxBody,
		ClusterNodeID:  *nodeID,
		ClusterPeers:   *peers,
		ClusterVNodes:  *vnodes,
		BlobURL:        *blob,
		Tenants:        tenants,
		SlowThreshold:  *slowThreshold,
	})
	// Requested-but-broken durability should fail loudly at startup, not
	// silently serve cold forever.
	if err := srv.PersistError(); err != nil {
		return err
	}
	// Same contract for clustering: a misconfigured ring (node-id missing
	// from -peers, unparseable peer list) must not boot as a silent
	// single-node island.
	if err := srv.ClusterError(); err != nil {
		return err
	}
	if *sweepsDir != "" {
		// Same fail-fast contract as tenants and durability: a requested
		// definition directory that does not load (or that shadows a
		// built-in experiment name) stops the boot instead of serving a
		// partial experiment surface.
		if err := srv.ReloadSweepDefsDir(*sweepsDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cimloop: serving %d sweep definitions from %s\n",
			len(srv.SweepDefNames()), *sweepsDir)
	}
	if ps := srv.PersistStats(); ps.Enabled {
		fmt.Fprintf(os.Stderr, "cimloop: warm start: %d engines, %d contexts, %d jobs restored, %d replayed, %d skipped\n",
			ps.Warm.Engines, ps.Warm.Contexts, ps.Warm.Jobs, ps.Warm.Replayed, ps.Warm.Skipped)
	}
	// SIGINT/SIGTERM drain in flight requests and flush the write-behind
	// persistence queues before exit, so a restarted instance starts warm.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *tenantsFile != "" || *sweepsDir != "" {
		// SIGHUP rotates credentials and sweep definitions without a
		// restart. Both reloads validate before swapping, so a half-written
		// tenant file or a broken definition logs an error and the running
		// set stays in force.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if *tenantsFile != "" {
					if err := srv.ReloadTenantsFile(*tenantsFile); err != nil {
						fmt.Fprintf(os.Stderr, "cimloop: tenant reload failed, keeping previous set: %v\n", err)
					} else {
						fmt.Fprintf(os.Stderr, "cimloop: reloaded tenant file %s\n", *tenantsFile)
					}
				}
				if *sweepsDir != "" {
					if err := srv.ReloadSweepDefsDir(*sweepsDir); err != nil {
						fmt.Fprintf(os.Stderr, "cimloop: sweep-definition reload failed, keeping previous set: %v\n", err)
					} else {
						fmt.Fprintf(os.Stderr, "cimloop: reloaded %d sweep definitions from %s\n",
							len(srv.SweepDefNames()), *sweepsDir)
					}
				}
			}
		}()
	}
	if *debugAddr != "" {
		// The debug listener is a separate server on a separate address so
		// pprof's heap and CPU profiles are never one bearer token away from
		// the public API.
		dbg := &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		go func() {
			fmt.Fprintf(os.Stderr, "cimloop: debug listener (pprof, metrics) on %s\n", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "cimloop: debug listener: %v\n", err)
			}
		}()
		go func() {
			<-ctx.Done()
			dbg.Close()
		}()
	}
	fmt.Fprintf(os.Stderr, "cimloop: serving on %s\n", *addr)
	return srv.ListenAndServeCtx(ctx, *addr)
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fast := fs.Bool("fast", false, "reduced sizes for quick runs")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	mappings := fs.Int("mappings", 0, "mapping search budget (0 = default)")
	seed := fs.Int64("seed", 0, "random seed")
	searchWorkers := fs.Int("search-workers", 0,
		"per-layer mapping-search fan-out (0 = one per CPU; results identical at any width)")
	if len(args) == 0 {
		return fmt.Errorf("run: missing experiment name (try 'cimloop list')")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	opts := experiments.Options{Fast: *fast, MaxMappings: *mappings, Seed: *seed, SearchWorkers: *searchWorkers}
	names := []string{name}
	if name == "all" {
		names = experiments.Names()
	}
	for _, n := range names {
		tables, err := experiments.Run(n, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}
	return nil
}

func listMacros() error {
	t := report.NewTable("Macro models (paper Table III)",
		"macro", "node", "device", "input bits", "weight bits", "array", "ADC bits")
	for _, r := range macros.TableIII() {
		t.AddRow(r.Macro, r.Node, r.Device, r.InputBits, r.WeightBits, r.Array, r.ADCBits)
	}
	fmt.Println(t.String())
	return nil
}

func runSpec(args []string) error {
	fs := flag.NewFlagSet("spec", flag.ContinueOnError)
	network := fs.String("network", "toy", "workload to evaluate")
	mappings := fs.Int("mappings", 50, "mapping search budget")
	seed := fs.Int64("seed", 0, "random seed")
	searchWorkers := fs.Int("search-workers", 0,
		"per-layer mapping-search fan-out (0 = one per CPU; results identical at any width)")
	if len(args) == 0 {
		return fmt.Errorf("spec: missing file path")
	}
	path := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	text, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	arch, err := specfile.Parse(string(text))
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		return err
	}
	net, err := workload.ByName(*network)
	if err != nil {
		return err
	}
	sw := *searchWorkers
	if sw <= 0 {
		sw = runtime.NumCPU()
	}
	res, err := eng.EvaluateNetworkOptsCtx(context.Background(), net, core.SearchOptions{
		MaxMappings: *mappings, Seed: *seed, SearchWorkers: sw})
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("%s running %s", arch.Name, net.Name),
		"metric", "value")
	t.AddRow("energy (J)", report.Num(res.Energy))
	t.AddRow("energy/MAC (pJ)", report.Num(res.EnergyPerMAC()*1e12))
	t.AddRow("TOPS/W", report.Num(res.TOPSPerW()))
	t.AddRow("GOPS", report.Num(res.GOPS()))
	t.AddRow("area (mm^2)", report.Num(res.AreaUm2/1e6))
	fmt.Println(t.String())
	return nil
}
