package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMacros(t *testing.T) {
	if err := run([]string{"macros"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperimentFast(t *testing.T) {
	if err := run([]string{"run", "table3", "-fast"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "fig4", "-fast", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"run"},
		{"run", "nope", "-fast"},
		{"spec"},
		{"spec", "/does/not/exist.yaml"},
	}
	for _, c := range cases {
		if err := run(c); err == nil {
			t.Errorf("run(%v): want error", c)
		}
	}
}

func TestRunHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "macro.yaml")
	spec := `
name: cli-test
node_nm: 45
hierarchy:
  - component: buffer
    class: sram-buffer
    temporal_reuse: [Inputs, Weights, Outputs]
  - container: columns
    mesh_x: 8
    spatial_reuse: [Inputs]
    children:
      - component: adc
        class: adc
        no_coalesce: [Outputs]
      - container: rows
        mesh_y: 8
        spatial_reuse: [Outputs]
        children:
          - component: cell
            class: sram-cell
            compute: true
            temporal_reuse: [Weights]
`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"spec", path, "-network", "toy", "-mappings", "4"}); err != nil {
		t.Fatal(err)
	}
	// Bad spec content errors cleanly.
	bad := filepath.Join(dir, "bad.yaml")
	if err := os.WriteFile(bad, []byte("name: x\nnode_nm: 3\nhierarchy: []"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"spec", bad}); err == nil {
		t.Fatal("want error for bad spec")
	}
	// Unknown network errors cleanly.
	if err := run([]string{"spec", path, "-network", "nope"}); err == nil {
		t.Fatal("want error for unknown network")
	}
}

func TestRunServeFlagErrors(t *testing.T) {
	if err := run([]string{"serve", "-no-such-flag"}); err == nil {
		t.Fatal("bad serve flag must error")
	}
}
