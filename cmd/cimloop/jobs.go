package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/report"
	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
)

// runJobs is the `cimloop jobs` subcommand: a thin shell over the Go SDK
// (internal/client) for the async job API of a running `cimloop serve`
// instance — the CLI holds no wire knowledge of its own.
//
//	cimloop jobs submit -macros a,b -networks x[,y] [-priority interactive] [...]
//	cimloop jobs list [-status running] [-limit N] [-cursor ID]
//	cimloop jobs status <id>
//	cimloop jobs wait <id> [-timeout 0] [-poll]
//	cimloop jobs cancel <id>
func runJobs(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("jobs: missing verb (submit, list, status, wait, cancel)")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "submit":
		return jobsSubmit(rest)
	case "list":
		return jobsList(rest)
	case "status", "wait", "cancel":
		if len(rest) == 0 {
			return fmt.Errorf("jobs %s: missing job ID", verb)
		}
		id, rest := rest[0], rest[1:]
		switch verb {
		case "status":
			return jobsStatus(id, rest)
		case "wait":
			return jobsWait(id, rest)
		default:
			return jobsCancel(id, rest)
		}
	}
	return fmt.Errorf("jobs: unknown verb %q (have submit, list, status, wait, cancel)", verb)
}

// addrFlag registers the shared -addr flag.
func addrFlag(fs *flag.FlagSet) *string {
	return fs.String("addr", "http://localhost:8080", "base URL of the cimloop serve instance")
}

// tokenFlag registers the shared -token flag (falling back to the
// CIMLOOP_TOKEN environment variable, so the secret can stay out of
// shell history and process listings).
func tokenFlag(fs *flag.FlagSet) *string {
	return fs.String("token", os.Getenv("CIMLOOP_TOKEN"),
		"bearer token for a multi-tenant server (default $CIMLOOP_TOKEN; empty = no auth header)")
}

// newClient builds the SDK client with the shared flags applied.
func newClient(addr, token string) *client.Client {
	var opts []client.Option
	if token != "" {
		opts = append(opts, client.WithToken(token))
	}
	return client.New(addr, opts...)
}

// unaryCtx bounds one-shot calls (submit, list, status, cancel) so a
// hung server fails the command instead of wedging it; waits manage
// their own deadlines (-timeout, streaming).
func unaryCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func jobsSubmit(args []string) error {
	fs := flag.NewFlagSet("jobs submit", flag.ContinueOnError)
	addr := addrFlag(fs)
	token := tokenFlag(fs)
	macroList := fs.String("macros", "", "comma-separated macro models to sweep")
	networks := fs.String("networks", "", "comma-separated workloads to sweep")
	scenarios := fs.String("scenarios", "", "comma-separated full-system scenarios (optional)")
	layers := fs.Int("layers", 0, "cap evaluated layers per network (0 = all)")
	mappings := fs.Int("mappings", 0, "per-layer mapping budget (0 = server default)")
	priority := fs.String("priority", "",
		"scheduling class: interactive jobs dispatch before batch jobs (default batch)")
	jobTimeout := fs.Duration("timeout", 0,
		"per-job deadline enforced server-side from job start (0 = none); an expired job fails with a deadline error")
	wait := fs.Bool("wait", false, "block until the job finishes and print its table")
	poll := fs.Bool("poll", false, "with -wait: poll instead of streaming progress via SSE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pri, err := jobs.ParsePriority(*priority)
	if err != nil {
		return err
	}
	req := api.SweepRequest{
		Macros:      splitList(*macroList),
		Networks:    splitList(*networks),
		Scenarios:   splitList(*scenarios),
		Layers:      *layers,
		MaxMappings: *mappings,
		TimeoutSec:  jobTimeout.Seconds(),
		Priority:    pri,
	}
	if len(req.Macros) == 0 || len(req.Networks) == 0 {
		return fmt.Errorf("jobs submit: need -macros and -networks")
	}
	c := newClient(*addr, *token)
	ctx, cancel := unaryCtx()
	acc, err := c.SubmitJob(ctx, req)
	cancel()
	if err != nil {
		return err
	}
	fmt.Printf("accepted %s (%s, %d requests): poll with `cimloop jobs status %s` or stream with `cimloop jobs wait %s`\n",
		acc.Job.ID, acc.Job.Priority, acc.Job.Total, acc.Job.ID, acc.Job.ID)
	if !*wait {
		return nil
	}
	return waitAndPrint(c, acc.Job.ID, 0, *poll)
}

func jobsList(args []string) error {
	fs := flag.NewFlagSet("jobs list", flag.ContinueOnError)
	addr := addrFlag(fs)
	token := tokenFlag(fs)
	status := fs.String("status", "", "filter by status (queued, running, succeeded, failed, cancelled)")
	limit := fs.Int("limit", 0, "page size (0 = server default)")
	cursor := fs.String("cursor", "", "resume after this job ID (next_cursor from the previous page)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := unaryCtx()
	defer cancel()
	out, err := newClient(*addr, *token).Jobs(ctx, api.JobListQuery{
		Status: jobs.Status(*status),
		Limit:  *limit,
		Cursor: *cursor,
	})
	if err != nil {
		return err
	}
	t := report.NewTable("Jobs", "id", "label", "priority", "status", "progress", "first error")
	for _, j := range out.Jobs {
		firstErr := j.FirstError
		if firstErr == "" {
			firstErr = "-"
		}
		t.AddRow(j.ID, j.Label, string(j.Priority), string(j.Status),
			fmt.Sprintf("%d/%d", j.Completed, j.Total), firstErr)
	}
	fmt.Println(t.String())
	if out.NextCursor != "" {
		fmt.Printf("more: cimloop jobs list -cursor %s\n", out.NextCursor)
	}
	return nil
}

// printSnapshot renders one job snapshot as key/value rows.
func printSnapshot(j jobs.Snapshot) {
	t := report.NewTable("Job "+j.ID, "field", "value")
	t.AddRow("label", j.Label)
	t.AddRow("status", string(j.Status))
	t.AddRow("priority", string(j.Priority))
	if j.Tenant != "" {
		t.AddRow("tenant", j.Tenant)
	}
	if j.Resumes > 0 {
		t.AddRow("resumes", strconv.Itoa(j.Resumes))
	}
	t.AddRow("progress", fmt.Sprintf("%d/%d", j.Completed, j.Total))
	if j.FirstError != "" {
		t.AddRow("first error", j.FirstError)
	}
	if j.Error != "" {
		t.AddRow("error", j.Error)
	}
	t.AddRow("elapsed (s)", strconv.FormatFloat(j.ElapsedSec, 'f', 3, 64))
	fmt.Println(t.String())
	if table, ok := j.Result.(string); ok && table != "" {
		fmt.Println(table)
	}
}

func jobsStatus(id string, args []string) error {
	fs := flag.NewFlagSet("jobs status", flag.ContinueOnError)
	addr := addrFlag(fs)
	token := tokenFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := unaryCtx()
	defer cancel()
	snap, err := newClient(*addr, *token).Job(ctx, id)
	if err != nil {
		return err
	}
	printSnapshot(snap)
	return nil
}

func jobsWait(id string, args []string) error {
	fs := flag.NewFlagSet("jobs wait", flag.ContinueOnError)
	addr := addrFlag(fs)
	token := tokenFlag(fs)
	timeout := fs.Duration("timeout", 0, "give up after this long (0 = wait forever)")
	poll := fs.Bool("poll", false, "poll instead of streaming progress via SSE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return waitAndPrint(newClient(*addr, *token), id, *timeout, *poll)
}

// waitAndPrint drives the SDK's WaitJob to a terminal state, echoing
// progress transitions (and the transport carrying them) to stderr, then
// prints the final snapshot. Progress arrives via SSE unless the server
// cannot stream (or -poll forces the fallback). A failed or cancelled
// job is a non-zero exit; a job evicted from retention mid-wait names
// that condition instead of blaming the ID.
func waitAndPrint(c *client.Client, id string, timeout time.Duration, forcePoll bool) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	seen := false
	snap, err := c.WaitJob(ctx, id, client.WaitOptions{
		DisableStream: forcePoll,
		OnTransport: func(transport string) {
			switch transport {
			case "sse":
				fmt.Fprintf(os.Stderr, "wait: streaming progress via SSE\n")
			default:
				fmt.Fprintf(os.Stderr, "wait: polling for progress\n")
			}
		},
		OnEvent: func(ev api.JobEvent) {
			seen = true
			fmt.Fprintf(os.Stderr, "%s: %s %d/%d\n", ev.Job.ID, ev.Job.Status, ev.Job.Completed, ev.Job.Total)
		},
	})
	if err != nil {
		var apiErr *api.Error
		if seen && errors.As(err, &apiErr) && apiErr.HTTPStatus == http.StatusNotFound {
			return fmt.Errorf("job %s finished but was evicted from retention before its result was read; raise the server's -job-retention", id)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("job %s still not terminal after %s", id, timeout)
		}
		return err
	}
	printSnapshot(snap)
	if snap.Status != jobs.StatusSucceeded {
		return fmt.Errorf("job %s %s", snap.ID, snap.Status)
	}
	return nil
}

func jobsCancel(id string, args []string) error {
	fs := flag.NewFlagSet("jobs cancel", flag.ContinueOnError)
	addr := addrFlag(fs)
	token := tokenFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := unaryCtx()
	defer cancel()
	snap, err := newClient(*addr, *token).CancelJob(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("cancel requested: %s is %s (%d/%d)\n", snap.ID, snap.Status, snap.Completed, snap.Total)
	return nil
}
