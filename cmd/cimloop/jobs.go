package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/serve/jobs"
)

// runJobs is the `cimloop jobs` subcommand: an HTTP client for the async
// job API of a running `cimloop serve` instance.
//
//	cimloop jobs submit -macros a,b -networks x[,y] [...]   -> job ID
//	cimloop jobs list
//	cimloop jobs status <id>
//	cimloop jobs wait <id> [-interval 500ms] [-timeout 0]
//	cimloop jobs cancel <id>
func runJobs(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("jobs: missing verb (submit, list, status, wait, cancel)")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "submit":
		return jobsSubmit(rest)
	case "list":
		return jobsList(rest)
	case "status", "wait", "cancel":
		if len(rest) == 0 {
			return fmt.Errorf("jobs %s: missing job ID", verb)
		}
		id, rest := rest[0], rest[1:]
		switch verb {
		case "status":
			return jobsStatus(id, rest)
		case "wait":
			return jobsWait(id, rest)
		default:
			return jobsCancel(id, rest)
		}
	}
	return fmt.Errorf("jobs: unknown verb %q (have submit, list, status, wait, cancel)", verb)
}

// addrFlag registers the shared -addr flag.
func addrFlag(fs *flag.FlagSet) *string {
	return fs.String("addr", "http://localhost:8080", "base URL of the cimloop serve instance")
}

// httpError is a non-2xx response with its decoded error envelope.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.status, e.msg)
}

// jobsClient wraps the HTTP round trips. Errors from the server's JSON
// error envelope are surfaced as Go errors.
type jobsClient struct {
	base string
	hc   *http.Client
}

func newJobsClient(addr string) *jobsClient {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &jobsClient{base: base, hc: &http.Client{Timeout: 30 * time.Second}}
}

// do issues one request and decodes the JSON response into out,
// translating non-2xx statuses (and their error envelopes) into errors.
func (c *jobsClient) do(method, path string, body any, out any) error {
	var rdr io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var envelope struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				msg += "; retry after " + ra + "s"
			}
		}
		return &httpError{status: resp.StatusCode, msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// sweepBody mirrors the server's sweep/jobs request body.
type sweepBody struct {
	Macros      []string `json:"macros,omitempty"`
	Networks    []string `json:"networks,omitempty"`
	Scenarios   []string `json:"scenarios,omitempty"`
	Layers      int      `json:"layers,omitempty"`
	MaxMappings int      `json:"max_mappings,omitempty"`
	TimeoutSec  float64  `json:"timeout_sec,omitempty"`
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func jobsSubmit(args []string) error {
	fs := flag.NewFlagSet("jobs submit", flag.ContinueOnError)
	addr := addrFlag(fs)
	macroList := fs.String("macros", "", "comma-separated macro models to sweep")
	networks := fs.String("networks", "", "comma-separated workloads to sweep")
	scenarios := fs.String("scenarios", "", "comma-separated full-system scenarios (optional)")
	layers := fs.Int("layers", 0, "cap evaluated layers per network (0 = all)")
	mappings := fs.Int("mappings", 0, "per-layer mapping budget (0 = server default)")
	jobTimeout := fs.Duration("timeout", 0,
		"per-job deadline enforced server-side from job start (0 = none); an expired job fails with a deadline error")
	wait := fs.Bool("wait", false, "block until the job finishes and print its table")
	interval := fs.Duration("interval", 500*time.Millisecond, "initial poll interval with -wait (doubles while idle)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body := sweepBody{
		Macros:    splitList(*macroList),
		Networks:  splitList(*networks),
		Scenarios: splitList(*scenarios),
		Layers:    *layers, MaxMappings: *mappings,
		TimeoutSec: jobTimeout.Seconds(),
	}
	if len(body.Macros) == 0 || len(body.Networks) == 0 {
		return fmt.Errorf("jobs submit: need -macros and -networks")
	}
	c := newJobsClient(*addr)
	var accepted struct {
		Job       jobs.Snapshot `json:"job"`
		StatusURL string        `json:"status_url"`
	}
	if err := c.do("POST", "/v1/jobs", body, &accepted); err != nil {
		return err
	}
	fmt.Printf("accepted %s (%d requests): poll with `cimloop jobs status %s` or `cimloop jobs wait %s`\n",
		accepted.Job.ID, accepted.Job.Total, accepted.Job.ID, accepted.Job.ID)
	if !*wait {
		return nil
	}
	return waitAndPrint(c, accepted.Job.ID, *interval, 0)
}

func jobsList(args []string) error {
	fs := flag.NewFlagSet("jobs list", flag.ContinueOnError)
	addr := addrFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var out struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}
	if err := newJobsClient(*addr).do("GET", "/v1/jobs", nil, &out); err != nil {
		return err
	}
	t := report.NewTable("Jobs", "id", "label", "status", "progress", "first error")
	for _, j := range out.Jobs {
		firstErr := j.FirstError
		if firstErr == "" {
			firstErr = "-"
		}
		t.AddRow(j.ID, j.Label, string(j.Status),
			fmt.Sprintf("%d/%d", j.Completed, j.Total), firstErr)
	}
	fmt.Println(t.String())
	return nil
}

// printSnapshot renders one job snapshot as key/value rows.
func printSnapshot(j jobs.Snapshot) {
	t := report.NewTable("Job "+j.ID, "field", "value")
	t.AddRow("label", j.Label)
	t.AddRow("status", string(j.Status))
	t.AddRow("progress", fmt.Sprintf("%d/%d", j.Completed, j.Total))
	if j.FirstError != "" {
		t.AddRow("first error", j.FirstError)
	}
	if j.Error != "" {
		t.AddRow("error", j.Error)
	}
	t.AddRow("elapsed (s)", strconv.FormatFloat(j.ElapsedSec, 'f', 3, 64))
	fmt.Println(t.String())
	if table, ok := j.Result.(string); ok && table != "" {
		fmt.Println(table)
	}
}

func jobsStatus(id string, args []string) error {
	fs := flag.NewFlagSet("jobs status", flag.ContinueOnError)
	addr := addrFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var snap jobs.Snapshot
	if err := newJobsClient(*addr).do("GET", "/v1/jobs/"+id, nil, &snap); err != nil {
		return err
	}
	printSnapshot(snap)
	return nil
}

func jobsWait(id string, args []string) error {
	fs := flag.NewFlagSet("jobs wait", flag.ContinueOnError)
	addr := addrFlag(fs)
	interval := fs.Duration("interval", 500*time.Millisecond,
		"initial poll interval (doubles while the job makes no progress)")
	timeout := fs.Duration("timeout", 0, "give up after this long (0 = wait forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return waitAndPrint(newJobsClient(*addr), id, *interval, *timeout)
}

// waitMaxInterval caps the poll backoff: a long-running overnight sweep
// is checked every few seconds instead of hammering the server at the
// initial rate for hours.
const waitMaxInterval = 8 * time.Second

// waitAndPrint polls the job to a terminal state, echoing progress
// transitions to stderr, then prints the final snapshot. The poll
// interval backs off exponentially (doubling up to waitMaxInterval) while
// the job reports no new completions, and resets to the initial interval
// on progress — fast feedback when the job moves, light touch when it
// doesn't. A failed or cancelled job is a non-zero exit.
func waitAndPrint(c *jobsClient, id string, interval, timeout time.Duration) error {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	lastCompleted := -1
	seen := false
	delay := interval
	for {
		var snap jobs.Snapshot
		if err := c.do("GET", "/v1/jobs/"+id, nil, &snap); err != nil {
			// A job that existed and then 404s was evicted by retention
			// between polls; name the real condition instead of blaming
			// the ID.
			var he *httpError
			if seen && errors.As(err, &he) && he.status == http.StatusNotFound {
				return fmt.Errorf("job %s finished but was evicted from retention before its result was read; raise the server's -job-retention or poll faster", id)
			}
			return err
		}
		seen = true
		if snap.Completed != lastCompleted {
			lastCompleted = snap.Completed
			delay = interval // progress: back to the responsive rate
			fmt.Fprintf(os.Stderr, "%s: %s %d/%d\n", snap.ID, snap.Status, snap.Completed, snap.Total)
		}
		if snap.Status.Terminal() {
			printSnapshot(snap)
			if snap.Status != jobs.StatusSucceeded {
				return fmt.Errorf("job %s %s", snap.ID, snap.Status)
			}
			return nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %s", id, snap.Status, timeout)
		}
		sleep := delay
		if !deadline.IsZero() {
			// Never sleep past the deadline: an 8s backoff must not turn
			// a -timeout 10s into an 18s wait.
			if remaining := time.Until(deadline); remaining < sleep {
				sleep = remaining
			}
		}
		if sleep > 0 {
			time.Sleep(sleep)
		}
		if delay *= 2; delay > waitMaxInterval {
			delay = waitMaxInterval
		}
		if delay < interval {
			delay = interval // an interval above the cap stays honored
		}
	}
}

func jobsCancel(id string, args []string) error {
	fs := flag.NewFlagSet("jobs cancel", flag.ContinueOnError)
	addr := addrFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var snap jobs.Snapshot
	if err := newJobsClient(*addr).do("POST", "/v1/jobs/"+id+"/cancel", nil, &snap); err != nil {
		return err
	}
	fmt.Printf("cancel requested: %s is %s (%d/%d)\n", snap.ID, snap.Status, snap.Completed, snap.Total)
	return nil
}
