package main

import (
	"go/parser"
	"go/token"
	"testing"
)

func findingsFor(t *testing.T, src string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, file)
}

func TestFlagsShadowingDeclarations(t *testing.T) {
	src := `package p

func f(cap int) (len int) {
	max := 1
	var copy = 2
	for min := range []int{} {
		_ = min
	}
	_ = max
	_ = copy
	return cap
}

type delete struct{}
`
	got := findingsFor(t, src)
	want := map[string]string{
		"cap":    "parameter",
		"len":    "result",
		"max":    "variable",
		"copy":   "variable",
		"min":    "range variable",
		"delete": "type",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %d", len(got), got, len(want))
	}
	for _, f := range got {
		if want[f.name] != f.what {
			t.Errorf("%s reported as %q, want %q", f.name, f.what, want[f.name])
		}
	}
}

func TestStructFieldsAndUsesAreExempt(t *testing.T) {
	src := `package p

// Field names are only reachable via selectors; they cannot shadow.
type rowSet struct {
	cap int
	len int
}

func g(s []int) int {
	// Plain uses of builtins are of course fine.
	t := make([]int, len(s), cap(s))
	copy(t, s)
	return max(len(t), 1)
}

// Plain assignment (=, not :=) to an existing name declares nothing.
func h(x int) int {
	x = cap([]int{})
	return x
}
`
	if got := findingsFor(t, src); len(got) != 0 {
		t.Fatalf("want no findings, got %v", got)
	}
}
