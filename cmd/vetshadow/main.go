// Command vetshadow flags declarations that shadow Go's predeclared
// built-in functions (cap, len, max, copy, ...). Shadowing a builtin is
// legal Go, but it silently disables the builtin for the rest of the
// scope — this repo once had a `cap` parameter shadow the capacity
// builtin inside the sampler hot path, which is exactly the class of
// bug that reads fine and bites later. CI runs this over the whole
// repo; it exits 1 with file:line diagnostics when it finds any.
//
// Struct field names are deliberately exempt: a field named `cap` is
// only reachable through a selector (x.cap) and cannot shadow the
// builtin in any expression.
//
// Usage: vetshadow [dir ...]   (defaults to ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// builtinFuncs are the predeclared function identifiers. Predeclared
// types (int, string, error, ...) are not listed: shadowing those is a
// different (and far more visible) sin, and flagging them would drown
// the signal.
var builtinFuncs = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"complex": true, "copy": true, "delete": true, "imag": true,
	"len": true, "make": true, "max": true, "min": true,
	"new": true, "panic": true, "print": true, "println": true,
	"real": true, "recover": true,
}

type finding struct {
	pos  token.Position
	name string
	what string
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var findings []finding
	fset := token.NewFileSet()
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
			findings = append(findings, checkFile(fset, file)...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetshadow:", err)
			os.Exit(2)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, f := range findings {
		fmt.Printf("%s: %s %q shadows builtin\n", f.pos, f.what, f.name)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// checkFile walks one file and reports every declaration of a builtin
// function name: short-variable assignments, var/const specs, function
// parameters and results, range-clause variables, and named types.
func checkFile(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	report := func(id *ast.Ident, what string) {
		if id != nil && builtinFuncs[id.Name] {
			out = append(out, finding{pos: fset.Position(id.Pos()), name: id.Name, what: what})
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						report(id, "variable")
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				report(id, "variable")
			}
		case *ast.FuncType:
			for _, field := range fieldList(n.Params) {
				for _, id := range field.Names {
					report(id, "parameter")
				}
			}
			for _, field := range fieldList(n.Results) {
				for _, id := range field.Names {
					report(id, "result")
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Key.(*ast.Ident); ok {
					report(id, "range variable")
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					report(id, "range variable")
				}
			}
		case *ast.TypeSpec:
			report(n.Name, "type")
		case *ast.StructType:
			// Field names live behind a selector; they cannot shadow.
			// Descend into field types only (a func-typed field still has
			// parameters worth checking via its own FuncType node).
			return true
		}
		return true
	})
	return out
}

func fieldList(l *ast.FieldList) []*ast.Field {
	if l == nil {
		return nil
	}
	return l.List
}
