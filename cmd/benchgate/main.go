// Command benchgate is the CI benchmark-regression gate: it parses `go
// test -bench` output, compares it against a committed baseline
// (BENCH_baseline.json), and fails when a benchmark regressed beyond the
// tolerance.
//
// Raw ns/op numbers are machine-dependent, so the comparison is
// normalized by a reference benchmark present in both the baseline and
// the current run: every baseline figure is scaled by
// current(ref)/baseline(ref) before the tolerance is applied. A CI runner
// half as fast as the baseline machine doubles every allowance; what
// trips the gate is a benchmark slowing down relative to its peers.
//
//	go test -run xxx -bench 'SearchLayer|Sweep' -benchtime 3x -count 3 . > bench.txt
//	go run ./cmd/benchgate bench.txt             # gate against the baseline
//	go run ./cmd/benchgate -update bench.txt     # rewrite the baseline
//
// The gate also asserts the intra-request search fan-out actually scales:
// with -min-speedup S, BenchmarkSearchLayerSerial must be at least S
// times slower than BenchmarkSearchLayerParallel8 in the current run.
// The check is skipped on hosts with fewer than four CPUs (a 1-core
// container cannot exhibit parallel speedup, only preserve correctness).
//
// Similarly, -min-warm-speedup W asserts the durable warm start still
// pays: BenchmarkSweepColdCache must be at least W times slower than
// BenchmarkSweepWarmFromDisk. Unlike the parallel assertion this one
// holds on any CPU count — the win is avoided recomputation, not
// parallelism — so it is never skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Baseline is the committed benchmark record.
type Baseline struct {
	// Note documents the recording machine and the refresh command.
	Note string `json:"note,omitempty"`
	// Reference names the benchmark used to normalize machine speed.
	Reference string `json:"reference"`
	// CPUs is the logical CPU count of the recording host. A baseline
	// recorded below 4 CPUs has no meaningful multi-core figures, so the
	// Serial-vs-Parallel8 speedup gate skips (with a visible warning)
	// rather than judging parallel scaling against serial-machine data.
	CPUs int `json:"cpus,omitempty"`
	// NsPerOp maps benchmark name (without the -procs suffix) to its
	// recorded ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// warnf emits a skip notice both as plain output and as a GitHub Actions
// workflow command, so a skipped gate surfaces as an annotation on the
// run instead of a line lost in the log. Outside Actions the `::warning`
// line is inert stdout.
func warnf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	fmt.Println("benchgate: " + msg)
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		fmt.Printf("::warning title=benchgate::%s\n", msg)
	}
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench reads `go test -bench` output and returns the minimum ns/op
// per benchmark name (minimum across -count repetitions, the
// least-noise estimator for a regression gate).
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results in %s", path)
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
	update := flag.Bool("update", false, "rewrite the baseline from the bench output instead of gating")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional slowdown after normalization")
	ref := flag.String("ref", "BenchmarkEvaluateMapping", "reference benchmark for machine-speed normalization")
	minSpeedup := flag.Float64("min-speedup", 0,
		"required SearchLayerSerial/SearchLayerParallel8 ratio (0 disables; skipped below 4 CPUs)")
	minWarmSpeedup := flag.Float64("min-warm-speedup", 0,
		"required SweepColdCache/SweepWarmFromDisk ratio (0 disables)")
	note := flag.String("note", "", "note stored in the baseline on -update")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] bench_output.txt")
		os.Exit(2)
	}
	cur, err := parseBench(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *update {
		b := Baseline{Note: *note, Reference: *ref, CPUs: runtime.NumCPU(), NsPerOp: cur}
		if b.Note == "" {
			b.Note = fmt.Sprintf("recorded on a %d-CPU host; refresh: go test -run xxx -bench . -benchtime 3x -count 3 . > bench.txt && go run ./cmd/benchgate -update bench.txt", runtime.NumCPU())
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks, reference %s)\n", *baselinePath, len(cur), *ref)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}
	// The baseline's recorded reference wins unless -ref was given
	// explicitly on the command line.
	refSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "ref" {
			refSet = true
		}
	})
	if base.Reference != "" && !refSet {
		*ref = base.Reference
	}
	curRef, okCur := cur[*ref]
	baseRef, okBase := base.NsPerOp[*ref]
	if !okCur || !okBase || baseRef <= 0 {
		fatal(fmt.Errorf("reference benchmark %s missing from current run or baseline; run it alongside the gated set", *ref))
	}
	scale := curRef / baseRef
	fmt.Printf("benchgate: machine-speed scale %.3f (reference %s: %.0f ns/op now, %.0f recorded)\n",
		scale, *ref, curRef, baseRef)

	// Every baseline benchmark must be present in the current run: a
	// renamed benchmark, a drifted -bench regex, or a run that died
	// part-way would otherwise drop out of the gate silently.
	var names, missing []string
	for name := range base.NsPerOp {
		if name == *ref {
			continue
		}
		if _, ok := cur[name]; ok {
			names = append(names, name)
		} else {
			missing = append(missing, name)
		}
	}
	sort.Strings(names)
	sort.Strings(missing)
	failed := 0
	if len(missing) > 0 {
		fmt.Printf("benchgate: %d baseline benchmark(s) absent from this run (regex drift? partial run?):\n", len(missing))
		for _, name := range missing {
			fmt.Printf("  %s\n", name)
		}
		failed += len(missing)
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no gated benchmarks overlap between %s and the current run — -bench regex too narrow?", *baselinePath))
	}
	for _, name := range names {
		allowed := base.NsPerOp[name] * scale * (1 + *tolerance)
		got := cur[name]
		delta := got/(base.NsPerOp[name]*scale) - 1
		status := "ok"
		if got > allowed {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("  %-40s %12.0f ns/op  allowed %12.0f  (%+.1f%%)  %s\n",
			name, got, allowed, delta*100, status)
	}

	if *minSpeedup > 0 {
		serial, okS := cur["BenchmarkSearchLayerSerial"]
		par, okP := cur["BenchmarkSearchLayerParallel8"]
		_, okBaseS := base.NsPerOp["BenchmarkSearchLayerSerial"]
		_, okBaseP := base.NsPerOp["BenchmarkSearchLayerParallel8"]
		switch {
		case base.CPUs > 0 && base.CPUs < 4:
			warnf("committed baseline was recorded on %d CPU(s) and lacks meaningful multi-core entries — Serial-vs-Parallel8 gate skipped; refresh %s on a >=4-CPU host", base.CPUs, *baselinePath)
		case !okBaseS || !okBaseP:
			warnf("committed baseline lacks the SearchLayer serial/parallel pair — Serial-vs-Parallel8 gate skipped; refresh %s with the full bench set", *baselinePath)
		case runtime.NumCPU() < 4:
			warnf("%d CPUs on this host — parallel-speedup assertion skipped", runtime.NumCPU())
		case !okS || !okP:
			warnf("SearchLayer serial/parallel pair not in this run — speedup assertion skipped")
		default:
			speedup := serial / par
			fmt.Printf("benchgate: search fan-out speedup %.2fx at 8 workers (need >= %.2fx)\n", speedup, *minSpeedup)
			if speedup < *minSpeedup {
				fmt.Println("benchgate: FAIL — parallel mapping search no longer scales")
				failed++
			}
		}
	}

	if *minWarmSpeedup > 0 {
		cold, okC := cur["BenchmarkSweepColdCache"]
		warm, okW := cur["BenchmarkSweepWarmFromDisk"]
		if !okC || !okW {
			fmt.Println("benchgate: SweepColdCache/SweepWarmFromDisk pair not in this run — warm-start assertion skipped")
		} else {
			speedup := cold / warm
			fmt.Printf("benchgate: warm-from-disk speedup %.2fx over cold (need >= %.2fx)\n", speedup, *minWarmSpeedup)
			if speedup < *minWarmSpeedup {
				fmt.Println("benchgate: FAIL — warm starts no longer beat recompilation")
				failed++
			}
		}
	}

	if failed > 0 {
		fmt.Printf("benchgate: FAIL — %d check(s) regressed, went missing, or stopped scaling\n", failed)
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
