package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	out := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSearchLayerSerial    	     252	   8812500 ns/op	       256.0 cands
BenchmarkSearchLayerSerial    	     260	   8500000 ns/op	       256.0 cands
BenchmarkSearchLayerParallel8-8 	     289	   7240013.5 ns/op
BenchmarkSweepWarmCache       	     100	    123456 ns/op
PASS
ok  	repro	6.134s
`
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	// Repetitions collapse to the minimum; the -procs suffix is stripped.
	if got["BenchmarkSearchLayerSerial"] != 8500000 {
		t.Fatalf("serial min = %g", got["BenchmarkSearchLayerSerial"])
	}
	if got["BenchmarkSearchLayerParallel8"] != 7240013.5 {
		t.Fatalf("parallel = %g", got["BenchmarkSearchLayerParallel8"])
	}
	if got["BenchmarkSweepWarmCache"] != 123456 {
		t.Fatalf("sweep = %g", got["BenchmarkSweepWarmCache"])
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
}

func TestParseBenchEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(path, []byte("no benchmarks here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseBench(path); err == nil {
		t.Fatal("empty bench output parsed without error")
	}
}
