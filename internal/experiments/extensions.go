package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/report"
	"repro/internal/workload"
)

// Extension experiments beyond the paper's figures: the device-swap
// capability (the NVMExplorer plug-in role, §III-C2) and the ADC-sharing
// knob (the column-mux design choice NeuroSim bakes in).

// Devices sweeps the Base macro across memory-cell device families at a
// fixed architecture, the paper's "varied device technologies" capability.
func Devices(o Options) ([]*report.Table, error) {
	size := 128
	if o.Fast {
		size = 32
	}
	net := o.subset(workload.ResNet18(), 3)
	t := report.NewTable("Extension: device families under one architecture (Base macro)",
		"device", "fJ/MAC", "TOPS/W", "GOPS", "cell area share")
	for _, dev := range []string{"reram", "sram", "stt", "edram"} {
		arch, err := macros.Base(macros.Config{Rows: size, Cols: size, Device: dev})
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(arch)
		if err != nil {
			return nil, err
		}
		res, err := eng.EvaluateNetworkOptsCtx(context.Background(), net, core.SearchOptions{
			MaxMappings: o.mappings(), Seed: o.Seed, SearchWorkers: o.searchWorkers()})
		if err != nil {
			return nil, err
		}
		// Cell share of area.
		var cellArea float64
		areas := eng.AreaBreakdown()
		for i := range arch.Levels {
			if arch.Levels[i].Name == "cell" {
				cellArea = areas[i]
			}
		}
		t.AddRow(dev,
			report.Num(res.EnergyPerMAC()*1e15),
			report.Num(res.TOPSPerW()),
			report.Num(res.GOPS()),
			report.Pct(cellArea/eng.Area()))
	}
	t.Note = "same hierarchy, mapper, and workload; only the device model swaps"
	return []*report.Table{t}, nil
}

// ADCShare sweeps the column-mux depth: sharing one ADC across more
// columns trades throughput (serialized strobes) for area.
func ADCShare(o Options) ([]*report.Table, error) {
	size := 128
	if o.Fast {
		size = 32
	}
	t := report.NewTable("Extension: ADC sharing (columns per converter)",
		"columns/ADC", "TOPS/W", "GOPS", "area (mm^2)")
	for _, share := range []int{1, 2, 4, 8} {
		arch, err := macros.Base(macros.Config{Rows: size, Cols: size, ADCShare: share})
		if err != nil {
			return nil, err
		}
		r, err := evalMaxUtil(arch, o)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", share),
			report.Num(r.TOPSPerW()), report.Num(r.GOPS()), report.Num(r.AreaUm2/1e6))
	}
	t.Note = "more sharing: smaller ADC area, proportionally lower throughput"
	return []*report.Table{t}, nil
}

// Beyond compares a CiM macro against the paper's §VII "beyond CiM"
// targets — a conventional digital PE array and a photonic accelerator —
// on one workload, all under the same specification and mapper.
func Beyond(o Options) ([]*report.Table, error) {
	net := o.subset(workload.ResNet18(), 3)
	t := report.NewTable("Extension: beyond CiM (one methodology, three paradigms)",
		"architecture", "fJ/MAC", "TOPS/W", "GOPS", "area (mm^2)")
	archs := []struct {
		name  string
		build func(macros.Config) (*core.Arch, error)
		cfg   macros.Config
	}{
		{"CiM (Macro D)", macros.D, macros.Config{}},
		{"digital PE array", macros.DigitalAccelerator, macros.Config{}},
		{"photonic mesh", macros.Photonic, macros.Config{}},
	}
	for _, a := range archs {
		if o.Fast {
			a.cfg.Rows, a.cfg.Cols = 16, 16
		}
		arch, err := a.build(a.cfg)
		if err != nil {
			return nil, err
		}
		res, err := evalNet(arch, net, o)
		if err != nil {
			return nil, err
		}
		t.AddRow(a.name,
			report.Num(res.EnergyPerMAC()*1e15),
			report.Num(res.TOPSPerW()),
			report.Num(res.GOPS()),
			report.Num(res.AreaUm2/1e6))
	}
	t.Note = "same container-hierarchy spec, mapper, and workload pipeline across all three"
	return []*report.Table{t}, nil
}
