package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/system"
	"repro/internal/workload"
)

// fig2Sizes returns the array-size sweep.
func fig2Sizes(o Options) []int {
	if o.Fast {
		return []int{16, 32, 64}
	}
	return []int{64, 128, 256, 512, 1024}
}

// adcBitsFor sizes the ADC for a design point: the column-sum dynamic
// range grows with DAC resolution, cell bits, and the number of summed
// rows (the paper's Titanium-law coupling [38]), so exploring
// high-resolution DACs or larger arrays implies costlier ADCs. Clipped to
// the practical 4-12 bit range fabricated macros use.
func adcBitsFor(rows, dacBits, cellBits int) int {
	extra := 0
	for r := rows; r > 1; r >>= 2 {
		extra++ // +1 bit per 4x rows: partial-sum clipping absorbs the rest
	}
	bits := dacBits + cellBits + extra
	if bits < 4 {
		bits = 4
	}
	if bits > 12 {
		bits = 12
	}
	return bits
}

// Fig2a reproduces the motivation study: the macro with the best macro
// energy is not the macro that yields the best system energy, because
// larger arrays keep more weights on-chip and cut memory-hierarchy
// traffic.
func Fig2a(o Options) ([]*report.Table, error) {
	net := o.subset(workload.ResNet18(), 4)
	t := report.NewTable("Fig. 2a: macro vs. system energy across CiM array sizes (ResNet18)",
		"array size", "macro energy (norm)", "system energy (norm)")
	type point struct{ macroE, sysE float64 }
	var pts []point
	sizes := fig2Sizes(o)
	// One request per array size, fanned across the batch executor.
	reqs := make([]serve.Request, 0, len(sizes))
	for _, size := range sizes {
		macroArch, err := macros.Base(macros.Config{
			Rows: size, Cols: size,
			ADCBits: adcBitsFor(size, 1, 2),
		})
		if err != nil {
			return nil, err
		}
		sys, err := system.Build(macroArch, system.WeightStationary, system.Config{Macros: 1})
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, serve.Request{
			Tag:  fmt.Sprintf("%dx%d", size, size),
			Arch: sys, Net: net,
			MaxMappings: o.mappings(), Seed: o.Seed,
		})
	}
	resList, err := sweepNets(reqs, o)
	if err != nil {
		return nil, err
	}
	for _, res := range resList {
		buckets := bucketEnergy(res, net, map[string][]string{
			"offmacro": {"dram", "global_buffer", "router"},
		}, "macro")
		pts = append(pts, point{buckets["macro"], buckets["macro"] + buckets["offmacro"]})
	}
	maxM, maxS := 0.0, 0.0
	for _, p := range pts {
		if p.macroE > maxM {
			maxM = p.macroE
		}
		if p.sysE > maxS {
			maxS = p.sysE
		}
	}
	bestM, bestS := 0, 0
	for i, p := range pts {
		if p.macroE < pts[bestM].macroE {
			bestM = i
		}
		if p.sysE < pts[bestS].sysE {
			bestS = i
		}
		t.AddRow(fmt.Sprintf("%dx%d", sizes[i], sizes[i]),
			report.Num(p.macroE/maxM), report.Num(p.sysE/maxS))
	}
	t.Note = fmt.Sprintf("best macro: %dx%d; best system: %dx%d (paper: the two differ)",
		sizes[bestM], sizes[bestM], sizes[bestS], sizes[bestS])
	return []*report.Table{t}, nil
}

// Fig2b reproduces the co-design study: starting from the lowest-macro-
// energy configuration, optimizing circuits (DAC resolution) or
// architecture (array size) individually is beaten by co-optimizing both.
func Fig2b(o Options) ([]*report.Table, error) {
	net := o.subset(workload.ResNet18(), 4)
	base := fig2Sizes(o)[0]
	large := fig2Sizes(o)[len(fig2Sizes(o))-2]
	if o.Fast {
		large = fig2Sizes(o)[len(fig2Sizes(o))-1]
	}
	configs := []struct {
		name    string
		size    int
		dacBits int
	}{
		{"baseline (best macro)", base, 1},
		{"optimize circuits (hi-res DAC)", base, 4},
		{"optimize architecture (larger array)", large, 4},
		{"co-optimize (larger array + lo-res DAC)", large, 1},
	}
	t := report.NewTable("Fig. 2b: co-optimizing circuits and architecture (ResNet18 system energy)",
		"configuration", "system energy (norm)")
	reqs := make([]serve.Request, 0, len(configs))
	for _, c := range configs {
		macroArch, err := macros.Base(macros.Config{
			Rows: c.size, Cols: c.size, DACBits: c.dacBits,
			ADCBits: adcBitsFor(c.size, c.dacBits, 2),
		})
		if err != nil {
			return nil, err
		}
		sys, err := system.Build(macroArch, system.WeightStationary, system.Config{Macros: 1})
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, serve.Request{
			Tag: c.name, Arch: sys, Net: net,
			MaxMappings: o.mappings(), Seed: o.Seed,
		})
	}
	resList, err := sweepNets(reqs, o)
	if err != nil {
		return nil, err
	}
	var energies []float64
	for _, res := range resList {
		energies = append(energies, res.Energy)
	}
	maxE := 0.0
	for _, e := range energies {
		if e > maxE {
			maxE = e
		}
	}
	for i, c := range configs {
		t.AddRow(c.name, report.Num(energies[i]/maxE))
	}
	t.Note = "paper: co-optimization beats optimizing either level alone"
	return []*report.Table{t}, nil
}

// Fig12 reproduces the Macro A mapping study: summing outputs across N
// adjacent columns cuts ADC energy but multiplies DAC converts, and the
// 3-column configuration uniquely suits ResNet18's 3x3 kernels.
func Fig12(o Options) ([]*report.Table, error) {
	groups := []int{1, 2, 3, 4, 6, 8}
	cols := 768
	rows := 768
	if o.Fast {
		rows, cols = 24, 24
	}
	resnet := o.subset(convOnly(workload.ResNet18()), 3)
	t := report.NewTable("Fig. 12: Macro A output reuse across columns",
		"workload", "columns/output", "ADC+Accum (norm)", "DAC (norm)", "other (norm)", "total (norm)")

	run := func(wname string, groupDims []string, netFor func(g int) (*workload.Network, error)) error {
		type bucketed struct{ adc, dac, other, total float64 }
		var rowsOut []bucketed
		maxTotal := 0.0
		for _, g := range groups {
			arch, err := macros.A(macros.Config{Rows: rows, Cols: cols, GroupCols: g})
			if err != nil {
				return err
			}
			// The fabricated chip's group wiring is fixed: grouped
			// columns sum adjacent kernel columns (S) for convolutions;
			// the matched matrix workload reduces over C. Restrict the
			// mapper accordingly (the paper's mapping restriction).
			for i := range arch.Levels {
				if arch.Levels[i].Name == "group_cols" {
					arch.SpatialPrefs[i] = append([]string(nil), groupDims...)
				}
			}
			net, err := netFor(g)
			if err != nil {
				return err
			}
			res, err := evalNet(arch, net, o)
			if err != nil {
				return err
			}
			b := bucketEnergy(res, net, map[string][]string{
				"adc": {"adc", "shift_add"},
				"dac": {"dac"},
			}, "other")
			e := bucketed{b["adc"], b["dac"], b["other"], b["adc"] + b["dac"] + b["other"]}
			rowsOut = append(rowsOut, e)
			if e.total > maxTotal {
				maxTotal = e.total
			}
		}
		for i, g := range groups {
			e := rowsOut[i]
			t.AddRow(wname, fmt.Sprintf("%d", g),
				report.Num(e.adc/maxTotal), report.Num(e.dac/maxTotal),
				report.Num(e.other/maxTotal), report.Num(e.total/maxTotal))
		}
		return nil
	}
	// The maximum-utilization workload matches each configuration's
	// array: summing outputs across g columns means the reduction spans
	// rows*g and g-fold fewer independent outputs fit.
	if err := run("max-utilization", []string{"C"}, func(g int) (*workload.Network, error) {
		return workload.MaxUtilization(rows*g, cols/g, 256)
	}); err != nil {
		return nil, err
	}
	if err := run("ResNet18 (variable utilization)", []string{"S"}, func(int) (*workload.Network, error) {
		return resnet, nil
	}); err != nil {
		return nil, err
	}
	t.Note = "more columns/output: ADC energy falls, DAC energy rises; 3 columns fit 3x3 kernels"
	return []*report.Table{t}, nil
}

// convOnly filters a network to its 3x3-kernel convolutions (the layers
// that make the 3-column-reuse story).
func convOnly(n *workload.Network) *workload.Network {
	cp := *n
	cp.Layers = nil
	for _, l := range n.Layers {
		if b, err := l.Op.DimBound("S"); err == nil && b == 3 {
			cp.Layers = append(cp.Layers, l)
		}
	}
	if len(cp.Layers) == 0 {
		cp.Layers = n.Layers
	}
	return &cp
}

// maxUtilRequest wraps an arch and its matched maximum-utilization
// workload as one executor request — the batch form of evalMaxUtil, so
// design-point grids fan across the shared worker pool.
func maxUtilRequest(arch *core.Arch, tag string, o Options) (serve.Request, error) {
	layer, err := maxUtilLayer(arch, "")
	if err != nil {
		return serve.Request{}, err
	}
	net := &workload.Network{Name: "max-utilization", Layers: []workload.Layer{layer}}
	return serve.Request{Tag: tag, Arch: arch, Net: net, MaxMappings: 2, Seed: o.Seed}, nil
}

// Fig13 reproduces the Macro B circuits study: analog adder width trades
// flexibility for compute density across weight precisions. The width x
// precision design grid runs through the batch executor.
func Fig13(o Options) ([]*report.Table, error) {
	t := report.NewTable("Fig. 13: Macro B analog adder width vs. weight bits",
		"adder operands", "weight bits", "TOPS/mm^2")
	widths := []int{1, 2, 4, 8}
	bitsList := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if o.Fast {
		bitsList = []int{1, 2, 4, 8}
	}
	size := 64
	if o.Fast {
		size = 16
	}
	type point struct{ w, bits int }
	var pts []point
	var reqs []serve.Request
	for _, w := range widths {
		for _, bits := range bitsList {
			arch, err := macros.B(macros.Config{
				Rows: size, Cols: size, GroupCols: w,
				WeightBits: bits, CellBits: 1,
			})
			if err != nil {
				return nil, err
			}
			req, err := maxUtilRequest(arch, fmt.Sprintf("adder%d/wb%d", w, bits), o)
			if err != nil {
				return nil, err
			}
			pts = append(pts, point{w, bits})
			reqs = append(reqs, req)
		}
	}
	resList, err := sweepNets(reqs, o)
	if err != nil {
		return nil, err
	}
	for i, res := range resList {
		r := res.PerLayer[0]
		mm2 := r.AreaUm2 / 1e6
		t.AddRow(fmt.Sprintf("%d", pts[i].w), fmt.Sprintf("%d", pts[i].bits), report.Num(r.GOPS()/1e3/mm2))
	}
	t.Note = "wider adders increase density at high weight precision but idle at low precision; 8-operand pays too much area"
	return []*report.Table{t}, nil
}

// Fig14 reproduces the Macro C architecture study: larger arrays amortize
// ADC energy when workload tensors are large enough to utilize them.
func Fig14(o Options) ([]*report.Table, error) {
	sizes := []int{64, 128, 256, 512, 1024}
	if o.Fast {
		sizes = []int{16, 32, 64}
	}
	mu, err := workload.MaxUtilization(sizes[len(sizes)-1], sizes[len(sizes)-1], 64)
	if err != nil {
		return nil, err
	}
	nets := []struct {
		name string
		net  *workload.Network
	}{
		{"max-utilization", mu},
		{"large tensors (ViT)", o.subset(workload.ViTBase(), 3)},
		{"medium tensors (ResNet18)", o.subset(workload.ResNet18(), 3)},
		{"small tensors (MobileNetV3)", o.subset(workload.MobileNetV3Large(), 3)},
	}
	t := report.NewTable("Fig. 14: Macro C energy/MAC across array sizes and workloads",
		"workload", "array", "DAC+MAC (pJ)", "ADC+Accum (pJ)", "control (pJ)", "total (pJ)")
	// The workload x array-size matrix is a grid sweep: fan it across the
	// batch executor.
	type cell struct {
		name string
		net  *workload.Network
		size int
	}
	var cells []cell
	var reqs []serve.Request
	for _, n := range nets {
		for _, size := range sizes {
			// Macro C's analog weights are read at an effective 2-bit
			// precision per cycle (partial-sum clipping); the ADC grows
			// with the summed row count.
			arch, err := macros.C(macros.Config{
				Rows: size, Cols: size,
				ADCBits: adcBitsFor(size, 1, 2),
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{n.name, n.net, size})
			reqs = append(reqs, serve.Request{
				Tag:  fmt.Sprintf("%s/%dx%d", n.name, size, size),
				Arch: arch, Net: n.net,
				MaxMappings: o.mappings(), Seed: o.Seed,
			})
		}
	}
	resList, err := sweepNets(reqs, o)
	if err != nil {
		return nil, err
	}
	for i, res := range resList {
		b := bucketEnergy(res, cells[i].net, map[string][]string{
			"dacmac": {"dac", "cell"},
			"adc":    {"adc", "analog_accum"},
		}, "control")
		perMAC := 1e12 / float64(res.MACs)
		t.AddRow(cells[i].name, fmt.Sprintf("%dx%d", cells[i].size, cells[i].size),
			report.Num(b["dacmac"]*perMAC), report.Num(b["adc"]*perMAC),
			report.Num(b["control"]*perMAC),
			report.Num((b["dacmac"]+b["adc"]+b["control"])*perMAC))
	}
	t.Note = "energy falls with array size for large workloads, saturates for medium, and reverses for small tensors"
	return []*report.Table{t}, nil
}

// Fig15 reproduces the full-system study: weight-stationary CiM saves
// energy, limited by off-chip input/output movement unless tensors stay
// on-chip.
func Fig15(o Options) ([]*report.Table, error) {
	macroCfg := macros.Config{}
	if o.Fast {
		macroCfg.Rows, macroCfg.Cols = 32, 16
	}
	nets := []struct {
		name string
		net  *workload.Network
	}{
		{"large tensors (GPT-2)", o.subset(workload.GPT2(), 2)},
		{"mixed tensors (ResNet18)", o.subset(workload.ResNet18(), 3)},
	}
	t := report.NewTable("Fig. 15: Macro D full-system energy per MAC",
		"scenario", "workload", "DRAM (pJ)", "global buffer (pJ)", "macro+on-chip (pJ)", "total (pJ)")
	// The scenario x workload matrix is a grid sweep: fan it across the
	// batch executor. Scenario studies pin the dataflow (budget 1).
	scenarios := []system.Scenario{system.AllDRAM, system.WeightStationary, system.OnChipIO}
	type cell struct {
		sc   system.Scenario
		name string
		net  *workload.Network
	}
	var cells []cell
	var reqs []serve.Request
	for _, sc := range scenarios {
		for _, n := range nets {
			macroArch, err := macros.D(macroCfg)
			if err != nil {
				return nil, err
			}
			sys, err := system.Build(macroArch, sc, system.Config{Macros: 4})
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{sc, n.name, n.net})
			reqs = append(reqs, serve.Request{
				Tag:  sc.String() + "/" + n.name,
				Arch: sys, Net: n.net,
				MaxMappings: 1, Seed: o.Seed,
			})
		}
	}
	resList, err := sweepNets(reqs, o)
	if err != nil {
		return nil, err
	}
	for i, res := range resList {
		var dram, gb, macroE float64
		var macs int64
		for li, r := range res.PerLayer {
			d, g, m := system.BreakdownBuckets(r)
			rep := float64(cells[i].net.Layers[li].Repeat)
			dram += d * rep
			gb += g * rep
			macroE += m * rep
			macs += r.MACs * int64(cells[i].net.Layers[li].Repeat)
		}
		perMAC := 1e12 / float64(macs)
		t.AddRow(cells[i].sc.String(), cells[i].name,
			report.Num(dram*perMAC), report.Num(gb*perMAC), report.Num(macroE*perMAC),
			report.Num((dram+gb+macroE)*perMAC))
	}
	t.Note = "weight-stationary cuts DRAM energy; keeping inputs/outputs on-chip removes most of the rest"
	return []*report.Table{t}, nil
}

// Fig16 reproduces the cross-macro comparison: Macros A, B, D scaled to
// 7 nm with a common ADC, swept over weight and input precision.
func Fig16(o Options) ([]*report.Table, error) {
	t := report.NewTable("Fig. 16: cross-macro TOPS/W at 7 nm",
		"weight bits", "input bits", "Macro A", "Macro B", "Macro D")
	weightBits := []int{1, 2, 4, 6, 8}
	inputBits := []int{1, 2, 4, 6, 8}
	if o.Fast {
		weightBits = []int{1, 4, 8}
		inputBits = []int{1, 4, 8}
	}
	size := 64
	groupA := 4
	if o.Fast {
		size = 16
	}
	// One request per (weight bits, input bits, macro): the whole
	// cross-macro precision grid fans across the batch executor.
	builds := []func(macros.Config) (*core.Arch, error){macros.A, macros.B, macros.D}
	macroNames := []string{"A", "B", "D"}
	var reqs []serve.Request
	for _, wb := range weightBits {
		for _, ib := range inputBits {
			for i, build := range builds {
				cfg := macros.Config{
					NodeNm: 7, ADCBits: 8,
					InputBits: ib, WeightBits: wb,
					Rows: size, Cols: size,
				}
				switch i {
				case 0: // A: 1b analog MACs, digital accumulation
					cfg.DACBits, cfg.CellBits, cfg.GroupCols = 1, 1, groupA
					if o.Fast {
						cfg.GroupCols = 4
					}
				case 1: // B: 4b DAC, 1b cells, analog adder
					cfg.DACBits, cfg.CellBits, cfg.GroupCols = minInt(4, ib), 1, 4
				case 2: // D: full-precision C-2C MAC
					cfg.DACBits, cfg.CellBits = ib, wb
				}
				arch, err := build(cfg)
				if err != nil {
					return nil, err
				}
				req, err := maxUtilRequest(arch,
					fmt.Sprintf("macro-%s/wb%d/ib%d", macroNames[i], wb, ib), o)
				if err != nil {
					return nil, err
				}
				reqs = append(reqs, req)
			}
		}
	}
	resList, err := sweepNets(reqs, o)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, wb := range weightBits {
		for _, ib := range inputBits {
			eff := make([]float64, len(builds))
			for i := range builds {
				eff[i] = resList[idx].PerLayer[0].TOPSPerW()
				idx++
			}
			t.AddRow(fmt.Sprintf("%d", wb), fmt.Sprintf("%d", ib),
				report.Num(eff[0]), report.Num(eff[1]), report.Num(eff[2]))
		}
	}
	t.Note = "Macro A wins at low precision (bit-scalable); B/D amortize output reuse at higher precision"
	return []*report.Table{t}, nil
}

// AblationAmortization quantifies the mapping-invariant amortization of
// Algorithm 1: evaluating N mappings with one shared layer context vs.
// re-running the data-value-dependent setup per mapping.
func AblationAmortization(o Options) ([]*report.Table, error) {
	arch, err := fig6Arch(o)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		return nil, err
	}
	layer := workload.ResNet18().Layers[5]
	n := 200
	if o.Fast {
		n = 40
	}
	ctx, err := eng.PrepareLayer(layer)
	if err != nil {
		return nil, err
	}
	m, err := eng.GreedyMapping(ctx)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := eng.EvaluateMapping(ctx, m); err != nil {
			return nil, err
		}
	}
	amortized := time.Since(start).Seconds()

	start = time.Now()
	for i := 0; i < n; i++ {
		c2, err := eng.PrepareLayer(layer)
		if err != nil {
			return nil, err
		}
		if _, err := eng.EvaluateMapping(c2, m); err != nil {
			return nil, err
		}
	}
	unamortized := time.Since(start).Seconds()

	t := report.NewTable("Ablation: mapping-invariant energy amortization (Algorithm 1)",
		"strategy", fmt.Sprintf("time for %d mappings (ms)", n), "speedup")
	t.AddRow("recompute per mapping", report.Num(unamortized*1e3), "1x")
	t.AddRow("amortized (CiMLoop)", report.Num(amortized*1e3),
		fmt.Sprintf("%.1fx", unamortized/amortized))
	return []*report.Table{t}, nil
}
