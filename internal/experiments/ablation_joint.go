package experiments

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/valuesim"
	"repro/internal/workload"
)

// AblationJoint quantifies the independent-distributions assumption
// (paper §III-D1): per-component energy of the independence-based
// statistical model vs. the value-level ground truth (which embodies the
// true joint distribution), and the cost of obtaining each. The paper
// argues independent distributions are sufficient for high accuracy while
// being O(N*T) instead of O(N^T) to record — this ablation measures both
// sides of that trade.
func AblationJoint(o Options) ([]*report.Table, error) {
	arch, err := fig6Arch(o)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		return nil, err
	}
	layer := workload.ResNet18().Layers[4]
	cfg := valuesim.Config{Steps: o.steps(), Seed: o.Seed + 3}

	startJoint := time.Now()
	cmp, err := valuesim.Compare(eng, layer, cfg, nil, nil)
	if err != nil {
		return nil, err
	}
	jointTime := time.Since(startJoint).Seconds()

	startIndep := time.Now()
	if _, err := eng.PrepareLayer(layer); err != nil {
		return nil, err
	}
	indepTime := time.Since(startIndep).Seconds()

	t := report.NewTable("Ablation: independent distributions vs. joint (value-level) per component",
		"component", "joint/ground truth (J)", "independent (J)", "error")
	for _, name := range []string{"dac", "cell", "adc", "shift_add"} {
		pc, ok := cmp.PerComponent[name]
		if !ok {
			continue
		}
		errPct := 0.0
		if pc[0] > 0 {
			errPct = math.Abs(pc[1]-pc[0]) / pc[0]
		}
		t.AddRow(name, report.Num(pc[0]), report.Num(pc[1]), report.Pct(errPct))
	}
	t.AddRow("total", report.Num(cmp.SimEnergy), report.Num(cmp.StatEnergy), report.Pct(cmp.RelError))
	t.Note = "independent-distribution setup " + report.Num(indepTime*1e3) + " ms vs " +
		report.Num(jointTime*1e3) + " ms to simulate the joint behaviour"
	return []*report.Table{t}, nil
}
