package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func fastOpts() Options {
	return Options{Fast: true, Seed: 1, Workers: 2}
}

// Every registered experiment must run in fast mode and produce at least
// one non-empty table.
func TestAllExperimentsRunFast(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tables, err := Run(name, fastOpts())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", name)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s: empty table %q", name, tab.Title)
				}
				if tab.String() == "" || tab.CSV() == "" {
					t.Fatalf("%s: empty rendering", name)
				}
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", fastOpts()); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestNamesCoverEveryPaperArtifact(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig4", "fig6", "table2", "table3",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16",
	}
	have := map[string]bool{}
	for _, n := range Names() {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %s missing", w)
		}
	}
}

// parse a numeric cell, tolerating percent suffixes.
func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

// Fig. 6 shape: the data-value-dependent average error must beat the
// fixed-energy average error.
func TestFig6Shape(t *testing.T) {
	tables, err := Fig6(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	avg := rows[len(rows)-2]
	if avg[0] != "Avg." {
		t.Fatalf("expected Avg. row, got %v", avg)
	}
	dvd, fixed := num(t, avg[1]), num(t, avg[2])
	if dvd >= fixed {
		t.Fatalf("data-value-dependent avg error %.2f%% should beat fixed %.2f%%", dvd, fixed)
	}
	if dvd > 15 {
		t.Fatalf("data-value-dependent error %.2f%% too high", dvd)
	}
}

// Fig. 4 shape: the data-value-dependence spread must exceed 2x and the
// best encoding must differ between the CNN and transformer workloads.
func TestFig4Shape(t *testing.T) {
	tables, err := Fig4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	maxV := 0.0
	// rows: workload, encoding, dacA, dacB
	best := map[string]string{} // workload -> best encoding (min of dacA)
	bestVal := map[string]float64{}
	for _, r := range tab.Rows {
		a, b := num(t, r[2]), num(t, r[3])
		if a > maxV {
			maxV = a
		}
		if b > maxV {
			maxV = b
		}
		w := r[0]
		if v, ok := bestVal[w]; !ok || a < v {
			bestVal[w] = a
			best[w] = r[1]
		}
	}
	if maxV < 2 {
		t.Fatalf("data-value-dependence spread %.2fx, want > 2x", maxV)
	}
	if len(best) == 2 {
		vals := []string{}
		for _, v := range best {
			vals = append(vals, v)
		}
		if vals[0] == vals[1] {
			t.Logf("note: best encoding identical across workloads (%v); paper expects a difference", vals[0])
		}
	}
}

// Table II shape: amortized many-mapping rate beats the 1-mapping rate,
// and the statistical model beats the value-level simulator.
func TestTable2Shape(t *testing.T) {
	tables, err := Table2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	simRate := num(t, rows[0][2])
	oneRate := num(t, rows[1][2])
	manyRate := num(t, rows[1][3])
	// In fast mode the simulated array is tiny, so only the amortized
	// statistical rate is guaranteed to dominate; at full scale the
	// 1-mapping rate beats the simulator too (the paper's 0.28 vs 0.07).
	if manyRate <= simRate {
		t.Fatalf("amortized statistical rate %.3g should beat simulator %.3g", manyRate, simRate)
	}
	if manyRate <= oneRate {
		t.Fatalf("amortized rate %.3g should beat 1-mapping rate %.3g", manyRate, oneRate)
	}
}

// Fig. 12 shape: for the max-utilization workload, ADC energy falls and
// DAC energy rises as more columns share an output.
func TestFig12Shape(t *testing.T) {
	tables, err := Fig12(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var first, last []string
	for _, r := range tables[0].Rows {
		if r[0] != "max-utilization" {
			continue
		}
		if first == nil {
			first = r
		}
		last = r
	}
	if first == nil || last == nil {
		t.Fatal("no max-utilization rows")
	}
	if num(t, last[2]) >= num(t, first[2]) {
		t.Fatalf("ADC energy should fall with column sharing: %s -> %s", first[2], last[2])
	}
	if num(t, last[3]) <= num(t, first[3]) {
		t.Fatalf("DAC energy should rise with column sharing: %s -> %s", first[3], last[3])
	}
}

// Fig. 15 shape: AllDRAM total exceeds WeightStationary, which is at
// least OnChipIO, for each workload.
func TestFig15Shape(t *testing.T) {
	tables, err := Fig15(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	totals := map[string]map[string]float64{} // workload -> scenario -> total
	for _, r := range tables[0].Rows {
		sc, w := r[0], r[1]
		if totals[w] == nil {
			totals[w] = map[string]float64{}
		}
		totals[w][sc] = num(t, r[5])
	}
	for w, m := range totals {
		if m["all-tensors-from-dram"] <= m["weight-stationary"] {
			t.Errorf("%s: AllDRAM (%g) should exceed WeightStationary (%g)",
				w, m["all-tensors-from-dram"], m["weight-stationary"])
		}
		if m["weight-stationary"] < m["weight-stationary+onchip-io"] {
			t.Errorf("%s: OnChipIO (%g) should not exceed WeightStationary (%g)",
				w, m["weight-stationary+onchip-io"], m["weight-stationary"])
		}
	}
}

// Fig. 14 shape: for the max-utilization workload, energy/MAC trends down
// with array size (stepwise, since ADC resolution grows one bit per 4x
// rows) and the largest array clearly beats the smallest.
func TestFig14Shape(t *testing.T) {
	tables, err := Fig14(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64 = -1, -1
	for _, r := range tables[0].Rows {
		if r[0] != "max-utilization" {
			continue
		}
		tot := num(t, r[5])
		if first < 0 {
			first = tot
		}
		if tot > first*1.10 {
			t.Fatalf("max-util energy/MAC rose past the smallest array: %g vs %g", tot, first)
		}
		last = tot
	}
	if first < 0 {
		t.Fatal("no max-utilization rows")
	}
	if last >= first*0.9 {
		t.Fatalf("largest array (%g) should clearly beat smallest (%g)", last, first)
	}
}
