package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/enc"
	"repro/internal/macros"
	"repro/internal/mapper"
	"repro/internal/report"
	"repro/internal/spec"
	"repro/internal/tech"
	"repro/internal/tensor"
	"repro/internal/valuesim"
	"repro/internal/workload"
)

// Fig4 reproduces the motivation figure: DAC energy per convert across
// (DAC circuit, encoding, workload) combinations, showing a >2.5x
// data-value-dependence and that the best encoding differs per workload.
func Fig4(o Options) ([]*report.Table, error) {
	node, err := tech.ByNm(65)
	if err != nil {
		return nil, err
	}
	params := circuits.Params{Node: node}
	const bits = 8
	dacA, err := circuits.NewDAC(params, circuits.DACCapacitive, bits)
	if err != nil {
		return nil, err
	}
	dacB, err := circuits.NewDAC(params, circuits.DACResistive, bits)
	if err != nil {
		return nil, err
	}

	cnn := workload.ResNet18().Layers[4]     // unsigned sparse inputs
	transformer := workload.GPT2().Layers[0] // signed dense inputs
	workloads := []struct {
		name  string
		layer workload.Layer
	}{
		{"[CNN] unsigned sparse", cnn},
		{"[Transformer] signed dense", transformer},
	}
	encodings := []string{"differential", "offset"}

	t := report.NewTable("Fig. 4: DAC energy per convert (data-value-dependence)",
		"workload", "encoding", "DAC A (norm)", "DAC B (norm)")
	var minE = -1.0
	type cell struct{ a, b float64 }
	grid := map[string]cell{}
	for _, w := range workloads {
		// Signed encodings need signed levels. Unsigned CNN activations
		// occupy the non-negative half of the signed range (preserving
		// their zero-sparsity, which differential encoding exploits);
		// transformer activations are natively signed.
		quantBits := bits
		if !w.layer.Act.Signed {
			quantBits = bits - 1
		}
		signedPMF, err := w.layer.InputPMF(quantBits)
		if err != nil {
			return nil, err
		}
		for _, encName := range encodings {
			e, err := enc.ByName(encName, bits)
			if err != nil {
				return nil, err
			}
			rails, err := e.TransformPMF(signedPMF)
			if err != nil {
				return nil, err
			}
			var ea, eb float64
			for _, r := range rails {
				ma, err := dacA.MeanEnergy(circuits.Operands{Input: r})
				if err != nil {
					return nil, err
				}
				mb, err := dacB.MeanEnergy(circuits.Operands{Input: r})
				if err != nil {
					return nil, err
				}
				ea += ma
				eb += mb
			}
			grid[w.name+"/"+encName] = cell{ea, eb}
			for _, v := range []float64{ea, eb} {
				if minE < 0 || v < minE {
					minE = v
				}
			}
		}
	}
	maxRatio := 0.0
	for _, w := range workloads {
		for _, encName := range encodings {
			c := grid[w.name+"/"+encName]
			t.AddRow(w.name, encName, report.Num(c.a/minE), report.Num(c.b/minE))
			for _, v := range []float64{c.a / minE, c.b / minE} {
				if v > maxRatio {
					maxRatio = v
				}
			}
		}
	}
	t.Note = fmt.Sprintf("max/min energy ratio %.2fx (paper: >2.5x)", maxRatio)
	return []*report.Table{t}, nil
}

// fig6Arch builds the accuracy-study macro: value-dependent components
// dominate (capacitive DACs, ReRAM cells, value-aware ADC) so the
// statistical approximation is actually stressed.
func fig6Arch(o Options) (*core.Arch, error) {
	cfg := macros.Config{Rows: 64, Cols: 32, ValueAwareADC: true}
	if o.Fast {
		cfg.Rows, cfg.Cols = 32, 16
	}
	return macros.Base(cfg)
}

// Fig6 reproduces the accuracy study: per-ResNet18-layer full-macro energy
// error of the data-value-dependent statistical model vs. the value-level
// ground truth, against a fixed-energy model using network-global average
// distributions.
func Fig6(o Options) ([]*report.Table, error) {
	arch, err := fig6Arch(o)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		return nil, err
	}
	net := o.subset(workload.ResNet18(), 6)
	cfg := valuesim.Config{Steps: o.steps(), Seed: o.Seed + 17}

	// First pass: per-layer comparisons and empirical PMFs.
	var ins, ws []*dist.PMF
	var dvd []float64
	for _, l := range net.Layers {
		cmp, err := valuesim.Compare(eng, l, cfg, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("fig6 layer %s: %w", l.Name, err)
		}
		dvd = append(dvd, cmp.RelError)
		_, inPMF, wPMF, err := valuesim.Simulate(eng, l, cfg)
		if err != nil {
			return nil, err
		}
		ins = append(ins, inPMF)
		ws = append(ws, wPMF)
	}
	avgIn, avgW, err := valuesim.AveragePMFs(ins, ws)
	if err != nil {
		return nil, err
	}
	var fixed []float64
	for _, l := range net.Layers {
		cmp, err := valuesim.Compare(eng, l, cfg, avgIn, avgW)
		if err != nil {
			return nil, err
		}
		fixed = append(fixed, cmp.RelError)
	}

	t := report.NewTable("Fig. 6: full-macro energy error vs. value-level ground truth",
		"ResNet18 layer", "CiMLoop (data-value-dependent)", "non-data-value-dependent")
	sumD, maxD, sumF, maxF := 0.0, 0.0, 0.0, 0.0
	for i, l := range net.Layers {
		t.AddRow(l.Name, report.Pct(dvd[i]), report.Pct(fixed[i]))
		sumD += dvd[i]
		sumF += fixed[i]
		if dvd[i] > maxD {
			maxD = dvd[i]
		}
		if fixed[i] > maxF {
			maxF = fixed[i]
		}
	}
	n := float64(len(net.Layers))
	t.AddRow("Avg.", report.Pct(sumD/n), report.Pct(sumF/n))
	t.AddRow("Max.", report.Pct(maxD), report.Pct(maxF))
	t.Note = "paper: 3%/7% avg/max for CiMLoop vs 28%/70% for fixed-energy"
	return []*report.Table{t}, nil
}

// Table2 reproduces the modeling-speed comparison: (mappings x layers)/s
// for the value-level simulator vs. the statistical model at 1 and many
// mappings, single- and multi-core.
func Table2(o Options) ([]*report.Table, error) {
	arch, err := fig6Arch(o)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		return nil, err
	}
	layer := workload.ResNet18().Layers[5]
	manyMappings := 5000
	if o.Fast {
		manyMappings = 200
	}

	// Value-level simulator: one mapping (it has no mapper), one core.
	start := time.Now()
	if _, _, _, err := valuesim.Simulate(eng, layer, valuesim.Config{Steps: o.steps(), Seed: o.Seed}); err != nil {
		return nil, err
	}
	simRate := 1 / time.Since(start).Seconds()

	// Statistical model, 1 core, 1 mapping (includes per-layer setup).
	start = time.Now()
	ctx, err := eng.PrepareLayer(layer)
	if err != nil {
		return nil, err
	}
	greedy, err := eng.GreedyMapping(ctx)
	if err != nil {
		return nil, err
	}
	if _, err := eng.EvaluateMapping(ctx, greedy); err != nil {
		return nil, err
	}
	oneRate := 1 / time.Since(start).Seconds()

	// Statistical model, many mappings: setup amortizes (Algorithm 1).
	cands, err := mapper.Sample(arch.Levels, ctx.Sliced, arch.MapperOptions(manyMappings, o.Seed))
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for _, m := range cands {
		if _, err := eng.EvaluateMapping(ctx, m); err != nil {
			return nil, err
		}
	}
	manyRate := float64(len(cands)) / time.Since(start).Seconds()

	// Multi-core: same work split across workers.
	workers := o.workers()
	start = time.Now()
	var wg sync.WaitGroup
	chunk := (len(cands) + workers - 1) / workers
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for _, m := range cands[lo:hi] {
				if _, err := eng.EvaluateMapping(ctx, m); err != nil {
					errCh <- err
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	parRate := float64(len(cands)) / time.Since(start).Seconds()

	t := report.NewTable("Table II: modeling speed, (mappings x layers)/second",
		"model", "cores", "1 mapping", fmt.Sprintf("%d mappings", len(cands)))
	t.AddRow("value-level simulator (NeuroSim role)", "1", report.Num(simRate), "-")
	t.AddRow("CiMLoop statistical", "1", report.Num(oneRate), report.Num(manyRate))
	t.AddRow("CiMLoop statistical", fmt.Sprintf("%d", workers), "-", report.Num(parRate))
	t.Note = "paper: 0.07 (NeuroSim) vs 0.28/83 (1 core) and 2.25/1076 (16 cores)"
	return []*report.Table{t}, nil
}

// Table3 prints the parameterized attributes of Macros A-D.
func Table3(Options) ([]*report.Table, error) {
	t := report.NewTable("Table III: parameterized attributes of Macros A-D",
		"macro", "node", "device", "input bits", "weight bits", "array", "ADC bits")
	for _, r := range macros.TableIII() {
		t.AddRow(r.Macro, r.Node, r.Device, r.InputBits, r.WeightBits, r.Array, r.ADCBits)
	}
	return []*report.Table{t}, nil
}

// Fig7 validates energy efficiency and throughput across supply voltages
// for Macros A, B (small and large data values), and D.
func Fig7(o Options) ([]*report.Table, error) {
	t := report.NewTable("Fig. 7: energy efficiency & throughput vs. supply voltage",
		"macro", "supply (V)", "data", "TOPS/W", "GOPS")
	type sweep struct {
		name     string
		build    func(macros.Config) (*core.Arch, error)
		cfg      macros.Config
		voltages []float64
		data     []string // "", "small", "large"
	}
	sweeps := []sweep{
		{"A", macros.A, macros.Config{}, []float64{0.85, 1.2}, []string{""}},
		{"B", macros.B, macros.Config{}, []float64{0.6, 0.8}, []string{"small", "large"}},
		{"D", macros.D, macros.Config{}, []float64{0.7, 0.9, 1.1}, []string{""}},
	}
	for _, s := range sweeps {
		if o.Fast {
			s.cfg.Rows, s.cfg.Cols = 16, 16
			if s.name == "A" {
				s.cfg.Rows, s.cfg.Cols = 24, 24
			}
		}
		for _, v := range s.voltages {
			cfg := s.cfg
			cfg.Vdd = v
			arch, err := s.build(cfg)
			if err != nil {
				return nil, err
			}
			eng, err := core.NewEngine(arch)
			if err != nil {
				return nil, err
			}
			for _, data := range s.data {
				layer, err := maxUtilLayer(arch, data)
				if err != nil {
					return nil, err
				}
				r, err := eng.EvaluateLayer(layer, 2, o.Seed)
				if err != nil {
					return nil, err
				}
				label := data
				if label == "" {
					label = "-"
				}
				t.AddRow(s.name, report.Num(v), label, report.Num(r.TOPSPerW()), report.Num(r.GOPS()))
			}
		}
	}
	t.Note = "energy scales with V^2, frequency with the alpha-power law; Macro B energy is data-value-dependent"
	return []*report.Table{t}, nil
}

// maxUtilLayer returns a maximum-utilization layer matched to the arch's
// array, with optional small/large data value statistics.
func maxUtilLayer(arch *core.Arch, data string) (workload.Layer, error) {
	rows, cols := archArrayDims(arch)
	n, err := workload.MaxUtilization(rows, cols, 256)
	if err != nil {
		return workload.Layer{}, err
	}
	l := n.Layers[0]
	switch data {
	case "small":
		l.Act.Mean, l.Act.Sparsity = 0.08, 0.6
	case "large":
		l.Act.Mean, l.Act.Sparsity = 0.7, 0.0
		l.Act.Std = 0.15
	}
	return l, nil
}

// archArrayDims extracts (rows, cols) from an arch's spatial levels: rows
// are output-reduced meshes, everything else is columns.
func archArrayDims(arch *core.Arch) (rows, cols int) {
	rows, cols = 1, 1
	for i := range arch.Levels {
		lv := &arch.Levels[i]
		if lv.Kind != spec.SpatialLevel {
			continue
		}
		if lv.SpatialReuse[tensor.Output] {
			rows *= lv.Mesh
		} else {
			cols *= lv.Mesh
		}
	}
	return rows, cols
}

// Fig8 validates energy efficiency and throughput across input-bit counts
// for Macros B and C.
func Fig8(o Options) ([]*report.Table, error) {
	t := report.NewTable("Fig. 8: energy efficiency & throughput vs. input bits",
		"macro", "input bits", "TOPS/W", "GOPS")
	for _, bits := range []int{1, 2, 4, 8} {
		cfg := macros.Config{InputBits: bits, DACBits: minInt(4, bits)}
		if o.Fast {
			cfg.Rows, cfg.Cols = 16, 16
		}
		arch, err := macros.B(cfg)
		if err != nil {
			return nil, err
		}
		r, err := evalMaxUtil(arch, o)
		if err != nil {
			return nil, err
		}
		t.AddRow("B", fmt.Sprintf("%d", bits), report.Num(r.TOPSPerW()), report.Num(r.GOPS()))
	}
	for _, bits := range []int{1, 2, 4, 8} {
		cfg := macros.Config{InputBits: bits, DACBits: 1}
		if o.Fast {
			cfg.Rows, cfg.Cols = 16, 16
		}
		arch, err := macros.C(cfg)
		if err != nil {
			return nil, err
		}
		r, err := evalMaxUtil(arch, o)
		if err != nil {
			return nil, err
		}
		t.AddRow("C", fmt.Sprintf("%d", bits), report.Num(r.TOPSPerW()), report.Num(r.GOPS()))
	}
	t.Note = "fewer input bits -> fewer array activations per MAC -> higher TOPS/W, lower-resolution workloads"
	return []*report.Table{t}, nil
}

func evalMaxUtil(arch *core.Arch, o Options) (*core.Result, error) {
	eng, err := core.NewEngine(arch)
	if err != nil {
		return nil, err
	}
	layer, err := maxUtilLayer(arch, "")
	if err != nil {
		return nil, err
	}
	return eng.EvaluateLayer(layer, 2, o.Seed)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig9 validates energy breakdowns: Macro C at 1/4/8 input bits and
// Macro D, as percent of total.
func Fig9(o Options) ([]*report.Table, error) {
	t := report.NewTable("Fig. 9: energy breakdown (percent of total)",
		"config", "component", "share")
	for _, bits := range []int{1, 4, 8} {
		cfg := macros.Config{InputBits: bits, DACBits: 1}
		if o.Fast {
			cfg.Rows, cfg.Cols = 16, 16
		}
		arch, err := macros.C(cfg)
		if err != nil {
			return nil, err
		}
		r, err := evalMaxUtil(arch, o)
		if err != nil {
			return nil, err
		}
		shares := levelShares(r, map[string]string{
			"adc": "ADC+Accumulate", "analog_accum": "ADC+Accumulate",
			"dac": "DAC", "cell": "Array", "buffer": "Control",
		})
		for _, b := range []string{"ADC+Accumulate", "DAC", "Array", "Control"} {
			t.AddRow(fmt.Sprintf("Macro C, %db inputs", bits), b, report.Pct(shares[b]))
		}
	}
	cfgD := macros.Config{}
	if o.Fast {
		cfgD.Rows, cfgD.Cols = 16, 16
	}
	archD, err := macros.D(cfgD)
	if err != nil {
		return nil, err
	}
	r, err := evalMaxUtil(archD, o)
	if err != nil {
		return nil, err
	}
	shares := levelShares(r, map[string]string{
		"dac": "DAC", "adc": "ADC", "mac": "CiM Array", "buffer": "Misc",
	})
	for _, b := range []string{"DAC", "ADC", "CiM Array", "Misc"} {
		t.AddRow("Macro D", b, report.Pct(shares[b]))
	}
	t.Note = "paper: ADC share of Macro C shrinks as more input bits amortize each convert"
	return []*report.Table{t}, nil
}

// levelShares maps level names into buckets and returns each bucket's
// share of total energy.
func levelShares(r *core.Result, buckets map[string]string) map[string]float64 {
	out := map[string]float64{}
	for _, le := range r.Levels {
		b, ok := buckets[le.Name]
		if !ok {
			b = "Misc"
		}
		out[b] += le.Total
	}
	for k := range out {
		out[k] /= r.Energy
	}
	return out
}

// Fig10 validates area breakdowns of Macros A-D as percent of total.
func Fig10(o Options) ([]*report.Table, error) {
	t := report.NewTable("Fig. 10: area breakdown (percent of total)",
		"macro", "component", "share")
	type m struct {
		name  string
		build func(macros.Config) (*core.Arch, error)
	}
	for _, mm := range []m{{"A", macros.A}, {"B", macros.B}, {"C", macros.C}, {"D", macros.D}} {
		cfg := macros.Config{}
		if o.Fast {
			cfg.Rows, cfg.Cols = 16, 16
			if mm.name == "A" {
				cfg.Rows, cfg.Cols, cfg.GroupCols = 24, 24, 3
			}
		}
		arch, err := mm.build(cfg)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(arch)
		if err != nil {
			return nil, err
		}
		areas := eng.AreaBreakdown()
		total := eng.Area()
		buckets := map[string]float64{}
		for i, a := range areas {
			name := arch.Levels[i].Name
			switch name {
			case "adc":
				buckets["ADC"] += a
			case "dac", "drivers":
				buckets["DAC+Drivers"] += a
			case "cell", "mac":
				buckets["Array"] += a
			case "analog_adder", "analog_accum":
				buckets["Analog adder/accum"] += a
			case "shift_add":
				buckets["Digital postprocessing"] += a
			case "buffer":
				buckets["Buffer"] += a
			default:
				if a > 0 {
					buckets["Misc"] += a
				}
			}
		}
		for _, b := range []string{"ADC", "DAC+Drivers", "Array", "Analog adder/accum", "Digital postprocessing", "Buffer", "Misc"} {
			if buckets[b] == 0 {
				continue
			}
			t.AddRow(mm.name, b, report.Pct(buckets[b]/total))
		}
	}
	return []*report.Table{t}, nil
}

// Fig11 validates Macro B's data-value-dependent energy: energy per MAC
// as the average MAC value grows (the paper measures a 2.3x swing).
func Fig11(o Options) ([]*report.Table, error) {
	cfg := macros.Config{}
	if o.Fast {
		cfg.Rows, cfg.Cols = 16, 16
	}
	arch, err := macros.B(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 11: Macro B energy/MAC vs. average MAC value",
		"avg MAC value (0-15)", "energy/MAC (fJ)")
	var lo, hi float64
	sweep := []struct{ mean, wstd float64 }{
		{0.02, 0.05}, {0.1, 0.1}, {0.2, 0.15}, {0.35, 0.25},
		{0.5, 0.35}, {0.65, 0.45}, {0.8, 0.55}, {0.95, 0.65},
	}
	for i, pt := range sweep {
		layer, err := maxUtilLayer(arch, "")
		if err != nil {
			return nil, err
		}
		layer.Act.Sparsity = 0
		layer.Act.Mean = pt.mean
		layer.Act.Std = 0.06
		layer.Wgt.Std = pt.wstd
		ctx, err := eng.PrepareLayer(layer)
		if err != nil {
			return nil, err
		}
		m, err := eng.GreedyMapping(ctx)
		if err != nil {
			return nil, err
		}
		r, err := eng.EvaluateMapping(ctx, m)
		if err != nil {
			return nil, err
		}
		// The figure measures the MAC path (DAC, cells, adder, ADC,
		// accumulation) as the chip measurement does; buffer staging is
		// value-independent and excluded.
		var macPath float64
		for _, le := range r.Levels {
			switch le.Name {
			case "dac", "cell", "adc", "analog_adder", "shift_add", "input_regs":
				macPath += le.Total
			}
		}
		// Average MAC value on the 0-15 scale of the figure: mean input
		// slice times mean |weight| slice normalized to 4b x 4b products.
		avgMAC := ctx.InputSlicePMF.Mean() * ctx.WeightSlicePMF.Mean() / (15 * 15) * 15 * 16
		perMAC := macPath / float64(r.MACs) * 1e15
		t.AddRow(report.Num(avgMAC), report.Num(perMAC))
		if i == 0 {
			lo = perMAC
		}
		hi = perMAC
	}
	t.Note = fmt.Sprintf("swing %.2fx (paper: 2.3x)", hi/lo)
	return []*report.Table{t}, nil
}
