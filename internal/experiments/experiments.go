// Package experiments regenerates every table and figure of the paper's
// evaluation (§II motivation, §IV accuracy/speed, §V case studies). Each
// experiment returns report tables carrying the same rows/series the paper
// plots; EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/workload"
)

// Options tunes experiment cost. The zero value selects full-size runs;
// Fast shrinks arrays, layer subsets, and mapping budgets for tests and
// benchmarks while preserving every trend.
type Options struct {
	Fast        bool
	MaxMappings int
	Seed        int64
	Workers     int
	// SearchWorkers fans each layer's candidate mapping evaluations
	// across a worker pool on the single-network paths (0: match Workers).
	// Results are bit-identical to serial search, so figures are
	// reproduced faster, not differently.
	SearchWorkers int
}

func (o Options) mappings() int {
	if o.MaxMappings > 0 {
		return o.MaxMappings
	}
	if o.Fast {
		return 6
	}
	return 60
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

func (o Options) searchWorkers() int {
	if o.SearchWorkers > 0 {
		return o.SearchWorkers
	}
	return o.workers()
}

// steps returns the value-level simulation length.
func (o Options) steps() int {
	if o.Fast {
		return 6
	}
	return 32
}

// subset returns up to n layers of a network in Fast mode (all otherwise).
func (o Options) subset(net *workload.Network, n int) *workload.Network {
	if !o.Fast || len(net.Layers) <= n {
		return net
	}
	cp := *net
	stride := len(net.Layers) / n
	if stride < 1 {
		stride = 1
	}
	cp.Layers = nil
	for i := 0; i < len(net.Layers) && len(cp.Layers) < n; i += stride {
		cp.Layers = append(cp.Layers, net.Layers[i])
	}
	return &cp
}

// Runner regenerates one experiment.
type Runner func(Options) ([]*report.Table, error)

var registry = map[string]Runner{
	"fig2a":  Fig2a,
	"fig2b":  Fig2b,
	"fig4":   Fig4,
	"fig6":   Fig6,
	"table2": Table2,
	"table3": Table3,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"fig16":  Fig16,

	"ablation-amortization": AblationAmortization,
	"ablation-joint":        AblationJoint,

	"ext-devices":  Devices,
	"ext-adcshare": ADCShare,
	"ext-beyond":   Beyond,
}

// Names lists the registered experiments in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment.
func Run(name string, o Options) ([]*report.Table, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(o)
}

// evalNet evaluates a network on an architecture with the option budget.
// Single-network figure paths (the ones no grid sweep covers) get their
// parallelism here: each layer's candidate evaluations fan across the
// search workers, with answers identical to the serial evaluator.
func evalNet(arch *core.Arch, net *workload.Network, o Options) (*core.NetworkResult, error) {
	eng, err := core.NewEngine(arch)
	if err != nil {
		return nil, err
	}
	return eng.EvaluateNetworkOptsCtx(context.Background(), net, core.SearchOptions{
		MaxMappings:   o.mappings(),
		Seed:          o.Seed,
		SearchWorkers: o.searchWorkers(),
	})
}

// sweeper is the shared batch executor: design-point grids (Fig. 2's
// array sizes, Fig. 15's scenario matrix) fan across its worker pool, and
// its content-addressed cache keeps engines and layer contexts warm
// across experiment runs — the cross-request extension of the paper's
// per-layer amortization.
var sweeper = serve.NewServer(serve.BatchOptions{})

// sweepNets runs prebuilt (arch, net) requests through the shared
// executor and unwraps the per-layer network results in request order.
func sweepNets(reqs []serve.Request, o Options) ([]*core.NetworkResult, error) {
	results, err := sweeper.SweepN(reqs, o.workers())
	if err != nil {
		return nil, err
	}
	out := make([]*core.NetworkResult, len(results))
	for i, r := range results {
		if r.Err != "" {
			return nil, fmt.Errorf("experiments: sweep request %d (%s): %s", i, r.Tag, r.Err)
		}
		out[i] = r.NetworkResult
	}
	return out, nil
}

// bucketEnergy sums network per-layer level energies into named buckets by
// level-name membership, weighted by layer repeats; levels not listed land
// in fallback.
func bucketEnergy(res *core.NetworkResult, net *workload.Network, buckets map[string][]string, fallback string) map[string]float64 {
	member := map[string]string{}
	for b, names := range buckets {
		for _, n := range names {
			member[n] = b
		}
	}
	out := map[string]float64{}
	for li, r := range res.PerLayer {
		rep := 1.0
		if li < len(net.Layers) {
			rep = float64(net.Layers[li].Repeat)
		}
		for _, le := range r.Levels {
			b, ok := member[le.Name]
			if !ok {
				b = fallback
			}
			out[b] += le.Total * rep
		}
	}
	return out
}
