// Package circuits is the component plug-in suite: energy and area models
// for the devices and circuits CiM macros are built from (paper §III-C2).
// It plays the role of Accelergy's plug-ins (ADC plug-in, NeuroSim
// components, Aladdin digital models, the Library plug-in).
//
// Every model exposes two views of the same physics:
//
//   - EnergyAt(in, weight, out): energy of one action with concrete operand
//     values — consumed by the value-level simulator (the NeuroSim role).
//   - MeanEnergy(Operands): expected energy per action given operand value
//     PMFs — consumed by the statistical model.
//
// Because both views share one definition, differences between the
// statistical model and the value-level simulator isolate the statistical
// approximation itself, exactly as the paper's Fig. 6 isolates it.
//
// Energies are in joules, areas in square micrometers. Models are
// calibrated at a 65 nm reference node and scaled with package tech.
package circuits

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/tech"
)

// Operands carries the value PMFs a component's action depends on. Any
// field may be nil when the component does not use it; models fall back to
// a representative fixed value (mid-scale), which is exactly the
// fixed-energy approximation the paper's accuracy study compares against.
type Operands struct {
	Input  *dist.PMF // encoded+sliced level at the input port
	Weight *dist.PMF // stored weight level
	Output *dist.PMF // value at the output port
}

// Model is one hardware component plug-in.
type Model interface {
	// Name identifies the model class (e.g. "adc", "dac-capacitive").
	Name() string
	// EnergyAt returns the energy in joules of one action with concrete
	// operand levels.
	EnergyAt(in, weight, out float64) float64
	// MeanEnergy returns the expected energy per action under the given
	// operand PMFs.
	MeanEnergy(ops Operands) (float64, error)
	// Area returns the component area in µm².
	Area() float64
}

// Params carries the technology context shared by all constructors.
type Params struct {
	Node tech.Node
	Vdd  float64 // supply voltage; 0 selects the node's nominal Vdd
}

// refNode is the calibration node for all base constants.
var refNode = mustNode(65)

func mustNode(nm int) tech.Node {
	n, err := tech.ByNm(nm)
	if err != nil {
		panic("circuits: " + err.Error())
	}
	return n
}

// effectiveVdd resolves the supply voltage, defaulting to nominal.
func (p Params) effectiveVdd() float64 {
	if p.Vdd == 0 {
		return p.Node.Vdd
	}
	return p.Vdd
}

// validate checks the params are usable and returns the resolved supply.
func (p Params) validate() (float64, error) {
	if p.Node.Nm == 0 {
		return 0, errors.New("circuits: params missing technology node")
	}
	v := p.effectiveVdd()
	if v <= 0 {
		return 0, fmt.Errorf("circuits: supply voltage %g must be positive", v)
	}
	return v, nil
}

// scaleEnergy converts a 65 nm-nominal reference energy to the params'
// node and supply voltage.
func scaleEnergy(eRef float64, p Params, vdd float64) float64 {
	e := tech.ScaleEnergy(eRef, refNode, p.Node)
	r := vdd / p.Node.Vdd
	return e * r * r
}

// scaleArea converts a 65 nm reference area to the params' node.
func scaleArea(aRef float64, p Params) float64 {
	return tech.ScaleArea(aRef, refNode, p.Node)
}

// meanInput evaluates E[f(in)] under ops.Input, falling back to f(fallback)
// when no PMF is supplied.
func meanInput(ops Operands, fallback float64, f func(float64) float64) float64 {
	if ops.Input == nil {
		return f(fallback)
	}
	return ops.Input.Expected(f)
}

func meanWeight(ops Operands, fallback float64, f func(float64) float64) float64 {
	if ops.Weight == nil {
		return f(fallback)
	}
	return ops.Weight.Expected(f)
}

func meanOutput(ops Operands, fallback float64, f func(float64) float64) float64 {
	if ops.Output == nil {
		return f(fallback)
	}
	return ops.Output.Expected(f)
}

func fullScale(bits int) float64 {
	return float64(int64(1)<<uint(bits) - 1)
}

func checkBitsRange(what string, bits, lo, hi int) error {
	if bits < lo || bits > hi {
		return fmt.Errorf("circuits: %s bits %d out of [%d,%d]", what, bits, lo, hi)
	}
	return nil
}
