package circuits

import "math"

// Photonic component models, supporting the paper's conclusion that the
// methodology extends beyond CiM to photonic accelerators (ref [78]):
// Mach-Zehnder modulators encode electrical inputs onto light, weight
// banks attenuate/interfere, and photodetectors with transimpedance
// amplifiers read summed optical power back out. The laser is a static
// cost per activation amortized across the rows it feeds.
const (
	mziStaticRef      = 25e-15 // per-convert bias/driver energy at 65 nm
	mziSwitchRef      = 55e-15 // full-swing phase-shifter charge at 65 nm
	mziAreaRef        = 900.0  // µm² (photonic devices are large)
	photodetectorRef  = 80e-15 // per-read detector + TIA energy at 65 nm
	photodetectorArea = 350.0
	laserPerRowRef    = 40e-15 // wall-plug laser energy per row per cycle
	laserArea         = 2000.0
)

// MZIModulator models a Mach-Zehnder input modulator: energy per convert
// grows with the encoded magnitude (phase-shifter drive).
type MZIModulator struct {
	bits    int
	eStatic float64
	eSwitch float64
	area    float64
}

// NewMZIModulator constructs a modulator for the given input resolution.
func NewMZIModulator(p Params, bits int) (*MZIModulator, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("mzi", bits, 1, 12); err != nil {
		return nil, err
	}
	return &MZIModulator{
		bits:    bits,
		eStatic: scaleEnergy(mziStaticRef, p, vdd),
		eSwitch: scaleEnergy(mziSwitchRef, p, vdd),
		area:    mziAreaRef, // photonic structures do not shrink with CMOS node
	}, nil
}

// Name implements Model.
func (m *MZIModulator) Name() string { return "mzi-modulator" }

// EnergyAt implements Model.
func (m *MZIModulator) EnergyAt(in, _, _ float64) float64 {
	n := clampNorm(in, fullScale(m.bits))
	// Phase drive is sinusoidal in the target transmission; charge grows
	// sublinearly then saturates.
	return m.eStatic + m.eSwitch*math.Sin(n*math.Pi/2)
}

// MeanEnergy implements Model.
func (m *MZIModulator) MeanEnergy(ops Operands) (float64, error) {
	fs := fullScale(m.bits)
	return meanInput(ops, fs/2, func(v float64) float64 { return m.EnergyAt(v, 0, 0) }), nil
}

// Area implements Model.
func (m *MZIModulator) Area() float64 { return m.area }

// Photodetector models a photodetector + transimpedance amplifier reading
// a summed optical signal (fixed per read; the downstream ADC is modeled
// separately).
type Photodetector struct {
	ePerOp float64
	area   float64
}

// NewPhotodetector constructs a photodetector front end.
func NewPhotodetector(p Params) (*Photodetector, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	return &Photodetector{
		ePerOp: scaleEnergy(photodetectorRef, p, vdd),
		area:   photodetectorArea,
	}, nil
}

// Name implements Model.
func (d *Photodetector) Name() string { return "photodetector" }

// EnergyAt implements Model.
func (d *Photodetector) EnergyAt(_, _, _ float64) float64 { return d.ePerOp }

// MeanEnergy implements Model.
func (d *Photodetector) MeanEnergy(Operands) (float64, error) { return d.ePerOp, nil }

// Area implements Model.
func (d *Photodetector) Area() float64 { return d.area }

// PhotonicWeightCell models one weight element of a photonic mesh (an
// attenuator/interferometer arm): the optical MAC itself is nearly free
// dynamically; the cost is the laser light supplying the row, amortized
// per MAC.
type PhotonicWeightCell struct {
	ePerMAC float64
	area    float64
}

// NewPhotonicWeightCell constructs a photonic weight element.
func NewPhotonicWeightCell(p Params) (*PhotonicWeightCell, error) {
	if _, err := p.validate(); err != nil {
		return nil, err
	}
	return &PhotonicWeightCell{
		ePerMAC: laserPerRowRef, // laser wall-plug per element-pass
		area:    laserArea,
	}, nil
}

// Name implements Model.
func (c *PhotonicWeightCell) Name() string { return "photonic-cell" }

// EnergyAt implements Model (laser power burns regardless of value).
func (c *PhotonicWeightCell) EnergyAt(_, _, _ float64) float64 { return c.ePerMAC }

// MeanEnergy implements Model.
func (c *PhotonicWeightCell) MeanEnergy(Operands) (float64, error) { return c.ePerMAC, nil }

// Area implements Model.
func (c *PhotonicWeightCell) Area() float64 { return c.area }
