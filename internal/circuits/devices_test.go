package circuits

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/tech"
)

func TestSTTRAMCell(t *testing.T) {
	n, _ := tech.ByNm(22)
	p := Params{Node: n}
	c, err := NewSTTRAMCell(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "stt-cell" || c.Area() <= 0 {
		t.Fatalf("basic contract: %s %g", c.Name(), c.Area())
	}
	// Binary conductance window: a set bit conducts more.
	if c.Conductance(1) <= c.Conductance(0) {
		t.Fatal("conductance window inverted")
	}
	// Even a zero weight leaks through the low-conductance state.
	if c.EnergyAt(1, 0, 0) <= 0 {
		t.Fatal("low-resistance state should still consume on read")
	}
	if c.EnergyAt(1, 1, 0) <= c.EnergyAt(1, 0, 0) {
		t.Fatal("set bit should consume more")
	}
	if c.WriteEnergy() <= c.EnergyAt(1, 1, 0) {
		t.Fatal("STT writes must cost far more than reads")
	}
	// MeanEnergy matches expectation over a PMF.
	in, _ := dist.UniformInts(0, 1)
	w, _ := dist.UniformInts(0, 1)
	me, err := c.MeanEnergy(Operands{Input: in, Weight: w})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, pi := range in.Points() {
		for _, pw := range w.Points() {
			want += pi.Prob * pw.Prob * c.EnergyAt(pi.Value, pw.Value, 0)
		}
	}
	if math.Abs(me-want) > 1e-12*want {
		t.Fatalf("MeanEnergy %g, expectation %g", me, want)
	}
	if _, err := NewSTTRAMCell(p, 0); err == nil {
		t.Fatal("want error for zero input bits")
	}
}

func TestEDRAMCell(t *testing.T) {
	n, _ := tech.ByNm(45)
	p := Params{Node: n}
	c, err := NewEDRAMCell(p, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "edram-cell" || c.Area() <= 0 {
		t.Fatal("basic contract")
	}
	if c.EnergyAt(0, 15, 0) != 0 {
		t.Fatal("zero input should gate the cell")
	}
	if c.EnergyAt(15, 15, 0) <= c.EnergyAt(4, 4, 0) {
		t.Fatal("energy must grow with operand magnitudes")
	}
	// Refresh surcharge keeps eDRAM above an equivalent pure-capacitive op.
	bare := c.cap * c.vdd * c.vdd
	if c.EnergyAt(15, 15, 0) <= bare {
		t.Fatal("refresh surcharge missing")
	}
	if _, err := NewEDRAMCell(p, 0, 4); err == nil {
		t.Fatal("want error for zero bits")
	}
}

func TestNewCellByDevice(t *testing.T) {
	n, _ := tech.ByNm(45)
	p := Params{Node: n}
	for _, dev := range []string{"reram", "sram", "stt", "edram"} {
		m, program, err := NewCellByDevice(dev, p, 2, 2)
		if err != nil {
			t.Fatalf("%s: %v", dev, err)
		}
		if m == nil || program <= 0 {
			t.Fatalf("%s: model %v program %g", dev, m, program)
		}
		// Writes should always cost at least as much as a typical read.
		if read := m.EnergyAt(2, 2, 0); program < read {
			t.Fatalf("%s: program %g < read %g", dev, program, read)
		}
	}
	if _, _, err := NewCellByDevice("pcm", p, 2, 2); err == nil {
		t.Fatal("want error for unknown device")
	}
}
