package circuits

import (
	"fmt"
	"math"
)

// Digital reference constants at 65 nm, nominal Vdd. Magnitudes follow the
// Aladdin-style per-operation models the paper's Library plug-in wraps.
const (
	digitalAdderPerBitRef = 5e-15
	digitalAdderAreaBit   = 30.0
	registerPerBitRef     = 1.2e-15
	registerAreaBit       = 10.0
	muxPerBitRef          = 0.4e-15
	muxAreaBit            = 5.0
	multiplierPerBit2Ref  = 5e-15
	multiplierAreaBit2    = 55.0
	rowDriverPerCellRef   = 0.3e-15 // C·V² per attached cell at full activity
	rowDriverAreaPerCell  = 2.0
	senseAmpRef           = 2e-15
	senseAmpAreaRef       = 15.0
	wirePerBitMmRef       = 200e-15
	wireAreaPerMm         = 50.0
)

// activityOf estimates the switching activity of a digital value: the
// fraction of bits toggling, approximated from the value's magnitude
// relative to full scale (small codes toggle fewer bits).
func activityOf(v, fs float64) float64 {
	n := clampNorm(v, fs)
	if n == 0 {
		return zeroGateFraction
	}
	// log-magnitude bit occupancy: a value occupying k of B bits toggles
	// roughly k/B of the datapath.
	return 0.25 + 0.75*math.Log2(1+n*255)/8
}

// DigitalAdder models a ripple/carry-select adder whose switching energy
// tracks the operand magnitude.
type DigitalAdder struct {
	bits   int
	ePerOp float64
	area   float64
}

// NewDigitalAdder constructs a bits-wide digital adder.
func NewDigitalAdder(p Params, bits int) (*DigitalAdder, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("digital adder", bits, 1, 64); err != nil {
		return nil, err
	}
	return &DigitalAdder{
		bits:   bits,
		ePerOp: scaleEnergy(digitalAdderPerBitRef*float64(bits), p, vdd),
		area:   scaleArea(digitalAdderAreaBit*float64(bits), p),
	}, nil
}

// Name implements Model.
func (d *DigitalAdder) Name() string { return "digital-adder" }

// EnergyAt implements Model.
func (d *DigitalAdder) EnergyAt(_, _, out float64) float64 {
	return d.ePerOp * activityOf(out, math.Exp2(float64(d.bits))-1)
}

// MeanEnergy implements Model.
func (d *DigitalAdder) MeanEnergy(ops Operands) (float64, error) {
	fs := math.Exp2(float64(d.bits)) - 1
	return meanOutput(ops, fs/4, func(v float64) float64 { return d.EnergyAt(0, 0, v) }), nil
}

// Area implements Model.
func (d *DigitalAdder) Area() float64 { return d.area }

// Register models a bits-wide pipeline/accumulator register.
type Register struct {
	bits   int
	ePerOp float64
	area   float64
}

// NewRegister constructs a bits-wide register.
func NewRegister(p Params, bits int) (*Register, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("register", bits, 1, 128); err != nil {
		return nil, err
	}
	return &Register{
		bits:   bits,
		ePerOp: scaleEnergy(registerPerBitRef*float64(bits), p, vdd),
		area:   scaleArea(registerAreaBit*float64(bits), p),
	}, nil
}

// Name implements Model.
func (r *Register) Name() string { return "register" }

// EnergyAt implements Model (half the bits toggle on average).
func (r *Register) EnergyAt(_, _, _ float64) float64 { return r.ePerOp * 0.5 }

// MeanEnergy implements Model.
func (r *Register) MeanEnergy(Operands) (float64, error) { return r.ePerOp * 0.5, nil }

// Area implements Model.
func (r *Register) Area() float64 { return r.area }

// Multiplexer models a ways-to-1 multiplexer on a bits-wide datapath.
type Multiplexer struct {
	bits   int
	ways   int
	ePerOp float64
	area   float64
}

// NewMultiplexer constructs a multiplexer.
func NewMultiplexer(p Params, bits, ways int) (*Multiplexer, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("mux", bits, 1, 128); err != nil {
		return nil, err
	}
	if ways < 2 || ways > 4096 {
		return nil, fmt.Errorf("circuits: mux ways %d out of [2,4096]", ways)
	}
	depth := math.Ceil(math.Log2(float64(ways)))
	return &Multiplexer{
		bits: bits, ways: ways,
		ePerOp: scaleEnergy(muxPerBitRef*float64(bits)*depth, p, vdd),
		area:   scaleArea(muxAreaBit*float64(bits)*float64(ways-1), p),
	}, nil
}

// Name implements Model.
func (m *Multiplexer) Name() string { return "multiplexer" }

// EnergyAt implements Model.
func (m *Multiplexer) EnergyAt(_, _, _ float64) float64 { return m.ePerOp }

// MeanEnergy implements Model.
func (m *Multiplexer) MeanEnergy(Operands) (float64, error) { return m.ePerOp, nil }

// Area implements Model.
func (m *Multiplexer) Area() float64 { return m.area }

// DigitalMAC models a full digital multiply-accumulate unit (the compute
// element of Digital CiM macros such as Colonnade).
type DigitalMAC struct {
	inBits, wBits int
	eMul, eAdd    float64
	area          float64
}

// NewDigitalMAC constructs a digital MAC for the given operand widths.
func NewDigitalMAC(p Params, inBits, wBits int) (*DigitalMAC, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("digital mac input", inBits, 1, 32); err != nil {
		return nil, err
	}
	if err := checkBitsRange("digital mac weight", wBits, 1, 32); err != nil {
		return nil, err
	}
	outBits := inBits + wBits
	return &DigitalMAC{
		inBits: inBits, wBits: wBits,
		eMul: scaleEnergy(multiplierPerBit2Ref*float64(inBits)*float64(wBits), p, vdd),
		eAdd: scaleEnergy(digitalAdderPerBitRef*float64(outBits), p, vdd),
		area: scaleArea(multiplierAreaBit2*float64(inBits)*float64(wBits)+digitalAdderAreaBit*float64(outBits), p),
	}, nil
}

// Name implements Model.
func (d *DigitalMAC) Name() string { return "digital-mac" }

// EnergyAt implements Model: multiplier activity tracks the input operand
// magnitudes; the accumulate add is charged at typical activity.
func (d *DigitalMAC) EnergyAt(in, weight, _ float64) float64 {
	ai := activityOf(in, fullScale(d.inBits))
	aw := activityOf(weight, fullScale(d.wBits))
	return d.eMul*ai*aw + d.eAdd*0.5
}

// MeanEnergy implements Model.
func (d *DigitalMAC) MeanEnergy(ops Operands) (float64, error) {
	fi, fw := fullScale(d.inBits), fullScale(d.wBits)
	ai := meanInput(ops, fi/2, func(v float64) float64 { return activityOf(v, fi) })
	aw := meanWeight(ops, fw/2, func(v float64) float64 { return activityOf(v, fw) })
	return d.eMul*ai*aw + d.eAdd*0.5, nil
}

// Area implements Model.
func (d *DigitalMAC) Area() float64 { return d.area }

// ShiftAdd models the shift-and-add accumulator that recombines bit-serial
// partial sums (one action per partial-sum merge).
type ShiftAdd struct {
	bits   int
	ePerOp float64
	area   float64
}

// NewShiftAdd constructs a shift-add unit on a bits-wide accumulator.
func NewShiftAdd(p Params, bits int) (*ShiftAdd, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("shift-add", bits, 1, 64); err != nil {
		return nil, err
	}
	return &ShiftAdd{
		bits:   bits,
		ePerOp: scaleEnergy((digitalAdderPerBitRef+registerPerBitRef)*float64(bits), p, vdd),
		area:   scaleArea((digitalAdderAreaBit+registerAreaBit)*float64(bits), p),
	}, nil
}

// Name implements Model.
func (s *ShiftAdd) Name() string { return "shift-add" }

// EnergyAt implements Model.
func (s *ShiftAdd) EnergyAt(_, _, out float64) float64 {
	return s.ePerOp * activityOf(out, math.Exp2(float64(s.bits))-1)
}

// MeanEnergy implements Model.
func (s *ShiftAdd) MeanEnergy(ops Operands) (float64, error) {
	fs := math.Exp2(float64(s.bits)) - 1
	return meanOutput(ops, fs/4, func(v float64) float64 { return s.EnergyAt(0, 0, v) }), nil
}

// Area implements Model.
func (s *ShiftAdd) Area() float64 { return s.area }

// RowDriver models the word-line driver charging a row of cells: energy
// per activation is the attached wire/gate capacitance times V², scaled by
// the driven input's activity.
type RowDriver struct {
	cells  int
	inBits int
	eFull  float64
	area   float64
}

// NewRowDriver constructs a driver for a row of the given cell count.
func NewRowDriver(p Params, cells, inBits int) (*RowDriver, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if cells <= 0 || cells > 1<<20 {
		return nil, fmt.Errorf("circuits: row driver cells %d out of [1,2^20]", cells)
	}
	if err := checkBitsRange("row driver input", inBits, 1, 16); err != nil {
		return nil, err
	}
	return &RowDriver{
		cells:  cells,
		inBits: inBits,
		eFull:  scaleEnergy(rowDriverPerCellRef*float64(cells), p, vdd),
		area:   scaleArea(rowDriverAreaPerCell*float64(cells), p),
	}, nil
}

// Name implements Model.
func (r *RowDriver) Name() string { return "row-driver" }

// EnergyAt implements Model.
func (r *RowDriver) EnergyAt(in, _, _ float64) float64 {
	return r.eFull * activityOf(in, fullScale(r.inBits))
}

// MeanEnergy implements Model.
func (r *RowDriver) MeanEnergy(ops Operands) (float64, error) {
	fs := fullScale(r.inBits)
	return meanInput(ops, fs/2, func(v float64) float64 { return r.EnergyAt(v, 0, 0) }), nil
}

// Area implements Model.
func (r *RowDriver) Area() float64 { return r.area }

// SenseAmp models a column sense amplifier (fixed energy per read).
type SenseAmp struct {
	ePerOp float64
	area   float64
}

// NewSenseAmp constructs a sense amplifier.
func NewSenseAmp(p Params) (*SenseAmp, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	return &SenseAmp{
		ePerOp: scaleEnergy(senseAmpRef, p, vdd),
		area:   scaleArea(senseAmpAreaRef, p),
	}, nil
}

// Name implements Model.
func (s *SenseAmp) Name() string { return "sense-amp" }

// EnergyAt implements Model.
func (s *SenseAmp) EnergyAt(_, _, _ float64) float64 { return s.ePerOp }

// MeanEnergy implements Model.
func (s *SenseAmp) MeanEnergy(Operands) (float64, error) { return s.ePerOp, nil }

// Area implements Model.
func (s *SenseAmp) Area() float64 { return s.area }

// Wire models on-chip interconnect: energy per bit transported over the
// configured length.
type Wire struct {
	lengthMm float64
	bits     int
	ePerOp   float64
	area     float64
}

// NewWire constructs a bits-wide wire of the given length in millimeters.
func NewWire(p Params, bits int, lengthMm float64) (*Wire, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("wire", bits, 1, 1024); err != nil {
		return nil, err
	}
	if lengthMm <= 0 || lengthMm > 100 {
		return nil, fmt.Errorf("circuits: wire length %g mm out of (0,100]", lengthMm)
	}
	return &Wire{
		lengthMm: lengthMm,
		bits:     bits,
		ePerOp:   scaleEnergy(wirePerBitMmRef*float64(bits)*lengthMm, p, vdd),
		area:     scaleArea(wireAreaPerMm*lengthMm, p),
	}, nil
}

// Name implements Model.
func (w *Wire) Name() string { return "wire" }

// EnergyAt implements Model.
func (w *Wire) EnergyAt(in, _, _ float64) float64 {
	return w.ePerOp * activityOf(in, math.Exp2(float64(w.bits))-1)
}

// MeanEnergy implements Model.
func (w *Wire) MeanEnergy(ops Operands) (float64, error) {
	fs := math.Exp2(float64(w.bits)) - 1
	return meanInput(ops, fs/2, func(v float64) float64 { return w.EnergyAt(v, 0, 0) }), nil
}

// Area implements Model.
func (w *Wire) Area() float64 { return w.area }
