package circuits

import (
	"fmt"
)

// This file adds the remaining memory-cell device families the paper
// lists (§II-B "Devices": SRAM, DRAM, ReRAM, STT-RAM) and a device
// registry playing the NVMExplorer plug-in's role: letting users swap the
// device model under a macro without touching the rest of the system.

// STT-RAM reference constants. STT-MRAM reads are resistive like ReRAM but
// with a narrow high/low resistance window and higher read current;
// writes (spin-transfer switching) are far more expensive than reads.
const (
	sttGLow        = 4e-6  // siemens (high-resistance state)
	sttGHigh       = 10e-6 // siemens (low-resistance state)
	sttVRead       = 0.15  // volts
	sttTRead       = 2e-9  // seconds
	sttCellAreaF2  = 40.0
	sttWriteEnergy = 0.5e-12 // joules per cell write
)

// STTRAMCell models a 1T-1MTJ spin-transfer-torque cell computing a
// binary analog MAC: the narrow resistance window only supports 1-bit
// weights per device, so multi-bit weights always slice across devices.
type STTRAMCell struct {
	inBits int
	area   float64
}

// NewSTTRAMCell constructs an STT-RAM compute cell (1-bit weights).
func NewSTTRAMCell(p Params, inBits int) (*STTRAMCell, error) {
	if _, err := p.validate(); err != nil {
		return nil, err
	}
	if err := checkBitsRange("stt input", inBits, 1, 12); err != nil {
		return nil, err
	}
	f := float64(p.Node.Nm) * 1e-3
	return &STTRAMCell{inBits: inBits, area: sttCellAreaF2 * f * f}, nil
}

// Name implements Model.
func (s *STTRAMCell) Name() string { return "stt-cell" }

// Conductance maps a 1-bit weight to the MTJ conductance.
func (s *STTRAMCell) Conductance(w float64) float64 {
	if w != 0 {
		return sttGHigh
	}
	return sttGLow
}

// EnergyAt implements Model: resistive read, binary weight.
func (s *STTRAMCell) EnergyAt(in, weight, _ float64) float64 {
	fs := fullScale(s.inBits)
	v := sttVRead * clampNorm(in, fs)
	return s.Conductance(weight) * v * v * sttTRead
}

// MeanEnergy implements Model (separable).
func (s *STTRAMCell) MeanEnergy(ops Operands) (float64, error) {
	fs := fullScale(s.inBits)
	v2 := meanInput(ops, fs/2, func(in float64) float64 {
		v := sttVRead * clampNorm(in, fs)
		return v * v
	})
	g := meanWeight(ops, 1, s.Conductance)
	return g * v2 * sttTRead, nil
}

// Area implements Model.
func (s *STTRAMCell) Area() float64 { return s.area }

// WriteEnergy returns the per-cell programming cost (spin-transfer
// switching), used as the compute level's weight-fill energy.
func (s *STTRAMCell) WriteEnergy() float64 { return sttWriteEnergy }

// eDRAM reference constants: a 1T1C gain cell computing charge-domain
// MACs; cheap cells, destructive reads, periodic refresh (charged as a
// per-access surcharge at this level of abstraction).
const (
	edramCellCapRef   = 1.5e-15
	edramCellAreaF2   = 60.0
	edramRefreshShare = 0.15 // refresh surcharge as a fraction of access energy
)

// EDRAMCell models an embedded-DRAM compute cell (eDRAM-CIM style).
type EDRAMCell struct {
	vdd    float64
	cap    float64
	inBits int
	wBits  int
	area   float64
}

// NewEDRAMCell constructs an eDRAM compute cell.
func NewEDRAMCell(p Params, inBits, wBits int) (*EDRAMCell, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("edram input", inBits, 1, 12); err != nil {
		return nil, err
	}
	if err := checkBitsRange("edram weight", wBits, 1, 12); err != nil {
		return nil, err
	}
	f := float64(p.Node.Nm) * 1e-3
	return &EDRAMCell{
		vdd:    vdd,
		cap:    edramCellCapRef * float64(p.Node.Nm) / 65.0,
		inBits: inBits, wBits: wBits,
		area: edramCellAreaF2 * f * f,
	}, nil
}

// Name implements Model.
func (e *EDRAMCell) Name() string { return "edram-cell" }

// EnergyAt implements Model: charge-domain product plus refresh share.
func (e *EDRAMCell) EnergyAt(in, weight, _ float64) float64 {
	fi, fw := fullScale(e.inBits), fullScale(e.wBits)
	dynamic := e.cap * e.vdd * e.vdd * clampNorm(in, fi) * clampNorm(weight, fw)
	return dynamic * (1 + edramRefreshShare)
}

// MeanEnergy implements Model (separable).
func (e *EDRAMCell) MeanEnergy(ops Operands) (float64, error) {
	fi, fw := fullScale(e.inBits), fullScale(e.wBits)
	ai := meanInput(ops, fi/2, func(v float64) float64 { return clampNorm(v, fi) })
	aw := meanWeight(ops, fw/2, func(v float64) float64 { return clampNorm(v, fw) })
	return e.cap * e.vdd * e.vdd * ai * aw * (1 + edramRefreshShare), nil
}

// Area implements Model.
func (e *EDRAMCell) Area() float64 { return e.area }

// NewCellByDevice constructs a compute-cell model by device family name —
// the NVMExplorer-style swap point. Supported: "reram", "sram", "stt",
// "edram". The returned default program (weight write) energy suits the
// device.
func NewCellByDevice(device string, p Params, inBits, wBits int) (Model, float64, error) {
	switch device {
	case "reram":
		m, err := NewReRAMCell(p, inBits, wBits)
		return m, 1e-12, err
	case "sram":
		m, err := NewSRAMComputeCell(p, inBits, wBits)
		return m, 20e-15, err
	case "stt":
		m, err := NewSTTRAMCell(p, inBits)
		if err != nil {
			return nil, 0, err
		}
		return m, m.WriteEnergy(), nil
	case "edram":
		m, err := NewEDRAMCell(p, inBits, wBits)
		return m, 30e-15, err
	}
	return nil, 0, fmt.Errorf("circuits: unknown device family %q (want reram/sram/stt/edram)", device)
}
