package circuits

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/tech"
)

func params(t *testing.T, nm int) Params {
	t.Helper()
	n, err := tech.ByNm(nm)
	if err != nil {
		t.Fatal(err)
	}
	return Params{Node: n}
}

// allModels constructs one of every model for generic conformance tests.
func allModels(t *testing.T) []Model {
	t.Helper()
	p := params(t, 65)
	adc, err := NewADC(p, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	adcVA, err := NewADC(p, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	dacA, err := NewDAC(p, DACCapacitive, 8)
	if err != nil {
		t.Fatal(err)
	}
	dacB, err := NewDAC(p, DACResistive, 8)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewReRAMCell(p, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewSRAMComputeCell(p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2c, err := NewC2CMac(p, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	aa, err := NewAnalogAdder(p, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := NewAnalogAccumulator(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	da, err := NewDigitalAdder(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegister(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	mux, err := NewMultiplexer(p, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := NewDigitalMAC(p, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewShiftAdd(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewRowDriver(p, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSenseAmp(p)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWire(p, 8, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return []Model{adc, adcVA, dacA, dacB, rr, sr, c2c, aa, ac, da, reg, mux, dm, sa, rd, se, w}
}

func TestAllModelsBasicContract(t *testing.T) {
	for _, m := range allModels(t) {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
		if m.Area() <= 0 {
			t.Errorf("%s area = %g", m.Name(), m.Area())
		}
		e := m.EnergyAt(10, 10, 10)
		if e < 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			t.Errorf("%s EnergyAt = %g", m.Name(), e)
		}
		me, err := m.MeanEnergy(Operands{})
		if err != nil {
			t.Errorf("%s MeanEnergy(empty): %v", m.Name(), err)
		}
		if me < 0 || math.IsNaN(me) {
			t.Errorf("%s MeanEnergy = %g", m.Name(), me)
		}
	}
}

// MeanEnergy on delta PMFs must equal EnergyAt on the same concrete values:
// the statistical and value-level views agree pointwise.
func TestMeanEnergyMatchesEnergyAtOnDeltas(t *testing.T) {
	for _, m := range allModels(t) {
		for _, v := range []float64{0, 1, 7, 100} {
			ops := Operands{Input: dist.Delta(v), Weight: dist.Delta(v), Output: dist.Delta(v)}
			me, err := m.MeanEnergy(ops)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			ea := m.EnergyAt(v, v, v)
			if math.Abs(me-ea) > 1e-9*math.Max(me, ea)+1e-30 {
				t.Errorf("%s at v=%g: MeanEnergy=%g EnergyAt=%g", m.Name(), v, me, ea)
			}
		}
	}
}

// For separable models, MeanEnergy over a PMF must equal the probability-
// weighted average of EnergyAt.
func TestMeanEnergyIsExpectationForValueDependentModels(t *testing.T) {
	p := params(t, 65)
	in, _ := dist.UniformInts(0, 255)
	w, _ := dist.UniformInts(0, 255)

	dac, _ := NewDAC(p, DACCapacitive, 8)
	want := 0.0
	for _, pt := range in.Points() {
		want += pt.Prob * dac.EnergyAt(pt.Value, 0, 0)
	}
	got, err := dac.MeanEnergy(Operands{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("DAC: MeanEnergy=%g, expectation=%g", got, want)
	}

	rr, _ := NewReRAMCell(p, 8, 8)
	want = 0.0
	for _, pi := range in.Points() {
		for _, pw := range w.Points() {
			want += pi.Prob * pw.Prob * rr.EnergyAt(pi.Value, pw.Value, 0)
		}
	}
	got, err = rr.MeanEnergy(Operands{Input: in, Weight: w})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("ReRAM: MeanEnergy=%g, expectation=%g", got, want)
	}
}

func TestADC(t *testing.T) {
	p := params(t, 65)
	a8, _ := NewADC(p, 8, false)
	a4, _ := NewADC(p, 4, false)
	if a8.EnergyAt(0, 0, 0) <= a4.EnergyAt(0, 0, 0) {
		t.Error("8b ADC must cost more than 4b")
	}
	if a8.Area() <= a4.Area() {
		t.Error("8b ADC must be larger than 4b")
	}
	if a8.Bits() != 8 {
		t.Errorf("Bits() = %d", a8.Bits())
	}
	va, _ := NewADC(p, 8, true)
	if va.EnergyAt(0, 0, 10) >= va.EnergyAt(0, 0, 250) {
		t.Error("value-aware ADC should be cheaper for small codes")
	}
	if va.EnergyAt(0, 0, -250) != va.EnergyAt(0, 0, 250) {
		t.Error("value-aware ADC should use magnitude")
	}
	if _, err := NewADC(p, 0, false); err == nil {
		t.Error("want error for 0-bit ADC")
	}
	if _, err := NewADC(p, 15, false); err == nil {
		t.Error("want error for 15-bit ADC")
	}
	if _, err := NewADC(Params{}, 8, false); err == nil {
		t.Error("want error for missing node")
	}
}

func TestDACValueDependenceAndGating(t *testing.T) {
	p := params(t, 65)
	a, _ := NewDAC(p, DACCapacitive, 8)
	b, _ := NewDAC(p, DACResistive, 8)
	if a.Name() != "dac-capacitive" || b.Name() != "dac-resistive" {
		t.Fatalf("names: %s, %s", a.Name(), b.Name())
	}
	// Capacitive: linear in code. Resistive: quadratic plus fixed burn.
	smallA, largeA := a.EnergyAt(16, 0, 0), a.EnergyAt(240, 0, 0)
	if largeA <= smallA {
		t.Error("capacitive DAC energy must grow with code")
	}
	// For the resistive DAC, small codes are dominated by the fixed term.
	smallB, largeB := b.EnergyAt(16, 0, 0), b.EnergyAt(240, 0, 0)
	if largeB <= smallB {
		t.Error("resistive DAC energy must grow with code")
	}
	ratioA := largeA / smallA
	ratioB := largeB / smallB
	if ratioA <= ratioB {
		t.Errorf("capacitive DAC should be more value-sensitive at low codes: %g vs %g", ratioA, ratioB)
	}
	// Zero gating.
	if g := a.EnergyAt(0, 0, 0); g >= a.EnergyAt(1, 0, 0) {
		t.Errorf("zero convert should be gated: %g", g)
	}
	if _, err := NewDAC(p, DACKind(9), 8); err == nil {
		t.Error("want error for unknown DAC kind")
	}
	if _, err := NewDAC(p, DACCapacitive, 0); err == nil {
		t.Error("want error for 0-bit DAC")
	}
	if a.Bits() != 8 {
		t.Errorf("Bits() = %d", a.Bits())
	}
}

func TestReRAMCell(t *testing.T) {
	p := params(t, 130)
	r, err := NewReRAMCell(p, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Conductance(0) >= r.Conductance(255) {
		t.Error("conductance must grow with weight level")
	}
	if r.Conductance(-255) != r.Conductance(255) {
		t.Error("conductance uses magnitude")
	}
	// Energy quadratic in input voltage: 2x input -> 4x energy.
	e1 := r.EnergyAt(60, 128, 0)
	e2 := r.EnergyAt(120, 128, 0)
	if math.Abs(e2-4*e1) > 1e-9*e2 {
		t.Errorf("ReRAM energy not quadratic in input: %g vs %g", e1, e2)
	}
	// Magnitude sanity: a full-scale read should be single-digit fJ.
	eMax := r.EnergyAt(255, 255, 0)
	if eMax < 0.1e-15 || eMax > 20e-15 {
		t.Errorf("ReRAM full-scale read = %g J, want ~fJ scale", eMax)
	}
	if _, err := NewReRAMCell(p, 0, 8); err == nil {
		t.Error("want error for 0 input bits")
	}
	if _, err := NewReRAMCell(p, 8, 13); err == nil {
		t.Error("want error for oversized weight bits")
	}
}

func TestSRAMComputeCell(t *testing.T) {
	p := params(t, 7)
	s, err := NewSRAMComputeCell(p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.EnergyAt(0, 1, 0) != 0 {
		t.Error("zero input should consume nothing")
	}
	if s.EnergyAt(1, 0, 0) != 0 {
		t.Error("zero weight should consume nothing")
	}
	if s.EnergyAt(1, 1, 0) <= 0 {
		t.Error("1x1 bit op should consume energy")
	}
	if _, err := NewSRAMComputeCell(p, 0, 1); err == nil {
		t.Error("want error for 0 input bits")
	}
}

func TestC2CMac(t *testing.T) {
	p := params(t, 22)
	c, err := NewC2CMac(p, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.EnergyAt(255, 255, 0) <= c.EnergyAt(10, 10, 0) {
		t.Error("C2C energy must grow with operand magnitudes")
	}
	if _, err := NewC2CMac(p, 0, 8); err == nil {
		t.Error("want error for 0 input bits")
	}
}

func TestAnalogAdderAccumulator(t *testing.T) {
	p := params(t, 7)
	a, err := NewAnalogAdder(p, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Operands() != 4 {
		t.Errorf("Operands() = %d", a.Operands())
	}
	if a.EnergyAt(0, 0, 255) <= a.EnergyAt(0, 0, 0) {
		t.Error("analog adder energy must grow with summed value")
	}
	a8, _ := NewAnalogAdder(p, 8, 8)
	if a8.Area() <= a.Area() {
		t.Error("wider adders must be larger")
	}
	if _, err := NewAnalogAdder(p, 0, 8); err == nil {
		t.Error("want error for 0 operands")
	}
	if _, err := NewAnalogAdder(p, 100, 8); err == nil {
		t.Error("want error for too many operands")
	}
	ac, err := NewAnalogAccumulator(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ac.EnergyAt(0, 0, 1000) <= ac.EnergyAt(0, 0, 0) {
		t.Error("accumulator energy must grow with stored value")
	}
	if _, err := NewAnalogAccumulator(p, 0); err == nil {
		t.Error("want error for 0 output bits")
	}
}

func TestDigitalComponents(t *testing.T) {
	p := params(t, 65)
	da, _ := NewDigitalAdder(p, 16)
	if da.EnergyAt(0, 0, 60000) <= da.EnergyAt(0, 0, 1) {
		t.Error("adder switching should grow with magnitude")
	}
	if _, err := NewDigitalAdder(p, 0); err == nil {
		t.Error("want error for 0-bit adder")
	}
	dm, _ := NewDigitalMAC(p, 8, 8)
	dm4, _ := NewDigitalMAC(p, 4, 4)
	if dm.EnergyAt(128, 128, 0) <= dm4.EnergyAt(8, 8, 0) {
		t.Error("8x8 MAC must cost more than 4x4")
	}
	if _, err := NewDigitalMAC(p, 0, 8); err == nil {
		t.Error("want error for 0-bit MAC")
	}
	mux, _ := NewMultiplexer(p, 8, 16)
	if mux.EnergyAt(0, 0, 0) <= 0 {
		t.Error("mux energy must be positive")
	}
	if _, err := NewMultiplexer(p, 8, 1); err == nil {
		t.Error("want error for 1-way mux")
	}
	sa, _ := NewShiftAdd(p, 20)
	if sa.EnergyAt(0, 0, 1<<19) <= sa.EnergyAt(0, 0, 1) {
		t.Error("shift-add switching should grow with magnitude")
	}
	if _, err := NewShiftAdd(p, 0); err == nil {
		t.Error("want error for 0-bit shift-add")
	}
	reg, _ := NewRegister(p, 16)
	if reg.EnergyAt(0, 0, 0) <= 0 {
		t.Error("register energy must be positive")
	}
	if _, err := NewRegister(p, 0); err == nil {
		t.Error("want error for 0-bit register")
	}
}

func TestRowDriverSenseAmpWire(t *testing.T) {
	p := params(t, 65)
	rd256, _ := NewRowDriver(p, 256, 8)
	rd1024, _ := NewRowDriver(p, 1024, 8)
	if rd1024.EnergyAt(255, 0, 0) <= rd256.EnergyAt(255, 0, 0) {
		t.Error("longer rows must cost more to drive")
	}
	if _, err := NewRowDriver(p, 0, 8); err == nil {
		t.Error("want error for 0 cells")
	}
	se, _ := NewSenseAmp(p)
	if se.EnergyAt(0, 0, 0) <= 0 {
		t.Error("sense amp energy must be positive")
	}
	w1, _ := NewWire(p, 8, 1)
	w5, _ := NewWire(p, 8, 5)
	if w5.EnergyAt(128, 0, 0) <= w1.EnergyAt(128, 0, 0) {
		t.Error("longer wires must cost more")
	}
	if _, err := NewWire(p, 8, 0); err == nil {
		t.Error("want error for 0 length")
	}
	if _, err := NewWire(p, 0, 1); err == nil {
		t.Error("want error for 0 bits")
	}
}

func TestTechnologyScalingReducesEnergyAndArea(t *testing.T) {
	coarse := params(t, 65)
	fine := params(t, 7)
	a65, _ := NewADC(coarse, 8, false)
	a7, _ := NewADC(fine, 8, false)
	if a7.EnergyAt(0, 0, 0) >= a65.EnergyAt(0, 0, 0) {
		t.Error("7nm ADC should cost less than 65nm")
	}
	if a7.Area() >= a65.Area() {
		t.Error("7nm ADC should be smaller than 65nm")
	}
}

func TestVoltageScalingQuadratic(t *testing.T) {
	n, _ := tech.ByNm(65)
	pNom := Params{Node: n}
	pLow := Params{Node: n, Vdd: n.Vdd / 2}
	aNom, _ := NewADC(pNom, 8, false)
	aLow, _ := NewADC(pLow, 8, false)
	r := aLow.EnergyAt(0, 0, 0) / aNom.EnergyAt(0, 0, 0)
	if math.Abs(r-0.25) > 1e-9 {
		t.Errorf("half-voltage energy ratio = %g, want 0.25", r)
	}
	if _, err := NewADC(Params{Node: n, Vdd: -1}, 8, false); err == nil {
		t.Error("want error for negative Vdd")
	}
}

// Property: every model's EnergyAt is non-negative and finite over a wide
// operand range.
func TestQuickEnergyNonNegative(t *testing.T) {
	models := allModels(t)
	f := func(in, w, out int16) bool {
		for _, m := range models {
			e := m.EnergyAt(float64(in), float64(w), float64(out))
			if e < 0 || math.IsNaN(e) || math.IsInf(e, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
