package circuits

import (
	"fmt"
)

// Base constants, calibrated at the 65 nm reference node and nominal Vdd.
// Magnitudes follow published surveys (ADC survey [53], Saberi DAC analysis
// [54], NeuroSim cell models [6], Wan ReRAM macro [18]); precise values
// matter less than the functional forms they parameterize.
const (
	adcFoMRef          = 30e-15 // J per conversion step (Walden FoM) at 65 nm
	adcAreaPerStepRef  = 40.0   // µm² per conversion step at 65 nm
	dacCapUnitRef      = 1.0e-15
	dacCapFixedRef     = 10e-15
	dacResFixedRef     = 120e-15
	dacResVarRef       = 260e-15
	dacAreaCapRef      = 300.0
	dacAreaResRef      = 550.0
	zeroGateFraction   = 0.05 // residual energy fraction when gating a zero
	sramCellCapRef     = 5e-15
	sramCellAreaF2     = 250.0 // 8T compute bitcell in F²
	reramCellAreaF2    = 30.0  // 1T1R in F²
	c2cMacEnergyRef    = 90e-15
	c2cMacAreaRef      = 900.0
	analogAdderE0Ref   = 6e-15
	analogAdderKRef    = 26e-15
	analogAdderAreaRef = 420.0
	analogAccumE0Ref   = 8e-15
	analogAccumKRef    = 20e-15
	analogAccumAreaRef = 560.0
)

// ADC models a successive-approximation analog-to-digital converter using
// the regression form of the paper's ADC plug-in [52]: energy per convert
// scales with 2^resolution times a technology figure of merit. The
// ValueAware variant models bit-level-sparsity-aware SAR ADCs [35] whose
// switching energy falls for small codes.
type ADC struct {
	params     Params
	vdd        float64
	bits       int
	valueAware bool
	ePerConv   float64 // full-scale energy per conversion
	area       float64
}

// NewADC constructs an ADC with the given output resolution.
func NewADC(p Params, bits int, valueAware bool) (*ADC, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("adc", bits, 1, 14); err != nil {
		return nil, err
	}
	steps := float64(int64(1) << uint(bits))
	return &ADC{
		params:     p,
		vdd:        vdd,
		bits:       bits,
		valueAware: valueAware,
		ePerConv:   scaleEnergy(adcFoMRef*steps, p, vdd),
		area:       scaleArea(adcAreaPerStepRef*steps, p),
	}, nil
}

// Name implements Model.
func (a *ADC) Name() string { return "adc" }

// Bits returns the ADC resolution.
func (a *ADC) Bits() int { return a.bits }

// EnergyAt implements Model. For value-aware ADCs, energy falls linearly
// with the converted magnitude toward a 30% floor.
func (a *ADC) EnergyAt(_, _, out float64) float64 {
	if !a.valueAware {
		return a.ePerConv
	}
	fs := fullScale(a.bits)
	v := out
	if v < 0 {
		v = -v
	}
	if v > fs {
		v = fs
	}
	return a.ePerConv * (0.3 + 0.7*v/fs)
}

// MeanEnergy implements Model.
func (a *ADC) MeanEnergy(ops Operands) (float64, error) {
	if !a.valueAware {
		return a.ePerConv, nil
	}
	fs := fullScale(a.bits)
	return meanOutput(ops, fs/2, func(v float64) float64 { return a.EnergyAt(0, 0, v) }), nil
}

// Area implements Model.
func (a *ADC) Area() float64 { return a.area }

// DACKind selects the DAC circuit style of Fig. 4.
type DACKind int

// The two DAC circuit families compared in Fig. 4.
const (
	// DACCapacitive is a binary-weighted capacitive DAC: switching energy
	// grows linearly with the converted code ("DAC A").
	DACCapacitive DACKind = iota
	// DACResistive is a resistive-ladder DAC: a fixed static burn per
	// convert plus output-drive energy quadratic in the code ("DAC B").
	DACResistive
)

// DAC models a digital-to-analog converter whose per-convert energy is
// data-value-dependent (paper §II-D, Fig. 4). Converting a zero is gated
// to a small residual.
type DAC struct {
	params Params
	kind   DACKind
	bits   int
	eUnit  float64 // per-code-step energy (capacitive)
	eFixed float64 // fixed per-convert energy
	eVar   float64 // full-scale quadratic term (resistive)
	area   float64
}

// NewDAC constructs a DAC of the given kind and input resolution.
func NewDAC(p Params, kind DACKind, bits int) (*DAC, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("dac", bits, 1, 12); err != nil {
		return nil, err
	}
	d := &DAC{params: p, kind: kind, bits: bits}
	switch kind {
	case DACCapacitive:
		d.eUnit = scaleEnergy(dacCapUnitRef, p, vdd)
		d.eFixed = scaleEnergy(dacCapFixedRef, p, vdd)
		d.area = scaleArea(dacAreaCapRef*float64(bits)/8, p)
	case DACResistive:
		d.eFixed = scaleEnergy(dacResFixedRef, p, vdd)
		d.eVar = scaleEnergy(dacResVarRef, p, vdd)
		d.area = scaleArea(dacAreaResRef*float64(bits)/8, p)
	default:
		return nil, fmt.Errorf("circuits: unknown DAC kind %d", kind)
	}
	return d, nil
}

// Name implements Model.
func (d *DAC) Name() string {
	if d.kind == DACCapacitive {
		return "dac-capacitive"
	}
	return "dac-resistive"
}

// Bits returns the DAC resolution.
func (d *DAC) Bits() int { return d.bits }

// EnergyAt implements Model. in is the (non-negative) code converted.
func (d *DAC) EnergyAt(in, _, _ float64) float64 {
	fs := fullScale(d.bits)
	v := in
	if v < 0 {
		v = -v
	}
	if v > fs {
		v = fs
	}
	switch d.kind {
	case DACCapacitive:
		// Switched capacitors consume nothing for a zero code, so zero
		// converts gate down to leakage.
		e := d.eFixed + d.eUnit*v*fullScale(8)/fs // normalized to 8b code steps
		if v == 0 {
			return e * zeroGateFraction
		}
		return e
	default:
		// A resistive ladder burns its string current on every convert
		// regardless of code; only the output drive is value-dependent.
		n := v / fs
		return d.eFixed + d.eVar*n*n
	}
}

// MeanEnergy implements Model.
func (d *DAC) MeanEnergy(ops Operands) (float64, error) {
	fs := fullScale(d.bits)
	return meanInput(ops, fs/2, func(v float64) float64 { return d.EnergyAt(v, 0, 0) }), nil
}

// Area implements Model.
func (d *DAC) Area() float64 { return d.area }

// ReRAMCell models a 1T1R resistive memory cell computing an analog MAC:
// read energy is conductance × voltage² × read time (paper Algorithm 1).
// The stored weight level maps linearly onto [GMin, GMax]; the input level
// scales the applied read voltage.
type ReRAMCell struct {
	params     Params
	gMin, gMax float64 // siemens
	vRead      float64 // volts at full-scale input
	tRead      float64 // seconds
	inBits     int
	wBits      int
	area       float64
}

// NewReRAMCell constructs a ReRAM cell. Defaults follow the Wan et al.
// CMOS-RRAM macro scale: GMin 0.5 µS, GMax 40 µS, 0.2 V read, 1 ns.
func NewReRAMCell(p Params, inBits, wBits int) (*ReRAMCell, error) {
	if _, err := p.validate(); err != nil {
		return nil, err
	}
	if err := checkBitsRange("reram input", inBits, 1, 12); err != nil {
		return nil, err
	}
	if err := checkBitsRange("reram weight", wBits, 1, 12); err != nil {
		return nil, err
	}
	f := float64(p.Node.Nm) * 1e-3 // feature size in µm
	return &ReRAMCell{
		params: p,
		gMin:   0.5e-6, gMax: 40e-6,
		vRead: 0.2, tRead: 1e-9,
		inBits: inBits, wBits: wBits,
		area: reramCellAreaF2 * f * f,
	}, nil
}

// Name implements Model.
func (r *ReRAMCell) Name() string { return "reram-cell" }

// Conductance maps a weight level to device conductance.
func (r *ReRAMCell) Conductance(w float64) float64 {
	fs := fullScale(r.wBits)
	if w < 0 {
		w = -w
	}
	if w > fs {
		w = fs
	}
	return r.gMin + (r.gMax-r.gMin)*w/fs
}

// EnergyAt implements Model: E = G(w) · (Vread·in/fs)² · Tread.
func (r *ReRAMCell) EnergyAt(in, weight, _ float64) float64 {
	fs := fullScale(r.inBits)
	if in < 0 {
		in = -in
	}
	if in > fs {
		in = fs
	}
	v := r.vRead * in / fs
	return r.Conductance(weight) * v * v * r.tRead
}

// MeanEnergy implements Model: E[G(w)]·E[V(in)²]·T — the separable
// expectation of Algorithm 1 lines 5–7.
func (r *ReRAMCell) MeanEnergy(ops Operands) (float64, error) {
	fsIn := fullScale(r.inBits)
	v2 := meanInput(ops, fsIn/2, func(in float64) float64 {
		if in < 0 {
			in = -in
		}
		if in > fsIn {
			in = fsIn
		}
		v := r.vRead * in / fsIn
		return v * v
	})
	g := meanWeight(ops, fullScale(r.wBits)/2, r.Conductance)
	return g * v2 * r.tRead, nil
}

// Area implements Model.
func (r *ReRAMCell) Area() float64 { return r.area }

// SRAMComputeCell models an 8T SRAM compute bitcell: bit-line discharge
// energy C·V² gated by the AND of the input bit activity and stored weight
// bit (NeuroSim-style charge-domain model). Input and weight levels are
// normalized by their full scales so multi-bit slices also work.
type SRAMComputeCell struct {
	params Params
	vdd    float64
	cap    float64 // bit-line capacitance at this node
	inBits int
	wBits  int
	area   float64
}

// NewSRAMComputeCell constructs an SRAM compute bitcell.
func NewSRAMComputeCell(p Params, inBits, wBits int) (*SRAMComputeCell, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("sram input", inBits, 1, 12); err != nil {
		return nil, err
	}
	if err := checkBitsRange("sram weight", wBits, 1, 12); err != nil {
		return nil, err
	}
	f := float64(p.Node.Nm) * 1e-3
	// Bit-line capacitance scales with feature size.
	c := sramCellCapRef * float64(p.Node.Nm) / 65.0
	return &SRAMComputeCell{
		params: p, vdd: vdd, cap: c,
		inBits: inBits, wBits: wBits,
		area: sramCellAreaF2 * f * f,
	}, nil
}

// Name implements Model.
func (s *SRAMComputeCell) Name() string { return "sram-compute-cell" }

// EnergyAt implements Model: E = C·V²·(in/fs)·(w/fs).
func (s *SRAMComputeCell) EnergyAt(in, weight, _ float64) float64 {
	fi, fw := fullScale(s.inBits), fullScale(s.wBits)
	if in < 0 {
		in = -in
	}
	if weight < 0 {
		weight = -weight
	}
	if in > fi {
		in = fi
	}
	if weight > fw {
		weight = fw
	}
	return s.cap * s.vdd * s.vdd * (in / fi) * (weight / fw)
}

// MeanEnergy implements Model (separable in input and weight).
func (s *SRAMComputeCell) MeanEnergy(ops Operands) (float64, error) {
	fi, fw := fullScale(s.inBits), fullScale(s.wBits)
	ai := meanInput(ops, fi/2, func(v float64) float64 {
		if v < 0 {
			v = -v
		}
		if v > fi {
			v = fi
		}
		return v / fi
	})
	aw := meanWeight(ops, fw/2, func(v float64) float64 {
		if v < 0 {
			v = -v
		}
		if v > fw {
			v = fw
		}
		return v / fw
	})
	return s.cap * s.vdd * s.vdd * ai * aw, nil
}

// Area implements Model.
func (s *SRAMComputeCell) Area() float64 { return s.area }

// C2CMac models the charge-domain C-2C ladder 8-bit MAC unit of Macro D
// (Wang et al., 22 nm): one unit multiplies a full multi-bit input by a
// full multi-bit weight, so a single action replaces many bitwise cell
// operations. Switching energy depends on both operand magnitudes.
type C2CMac struct {
	params Params
	inBits int
	wBits  int
	eBase  float64
	area   float64
}

// NewC2CMac constructs a C-2C ladder MAC unit.
func NewC2CMac(p Params, inBits, wBits int) (*C2CMac, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("c2c input", inBits, 1, 12); err != nil {
		return nil, err
	}
	if err := checkBitsRange("c2c weight", wBits, 1, 12); err != nil {
		return nil, err
	}
	scale := float64(inBits) * float64(wBits) / 64.0
	return &C2CMac{
		params: p, inBits: inBits, wBits: wBits,
		eBase: scaleEnergy(c2cMacEnergyRef*scale, p, vdd),
		area:  scaleArea(c2cMacAreaRef*scale, p),
	}, nil
}

// Name implements Model.
func (c *C2CMac) Name() string { return "c2c-mac" }

// EnergyAt implements Model.
func (c *C2CMac) EnergyAt(in, weight, _ float64) float64 {
	fi, fw := fullScale(c.inBits), fullScale(c.wBits)
	ni := clampNorm(in, fi)
	nw := clampNorm(weight, fw)
	return c.eBase * (0.25 + 0.75*ni*nw)
}

// MeanEnergy implements Model (separable product of normalized operands).
func (c *C2CMac) MeanEnergy(ops Operands) (float64, error) {
	fi, fw := fullScale(c.inBits), fullScale(c.wBits)
	ai := meanInput(ops, fi/2, func(v float64) float64 { return clampNorm(v, fi) })
	aw := meanWeight(ops, fw/2, func(v float64) float64 { return clampNorm(v, fw) })
	return c.eBase * (0.25 + 0.75*ai*aw), nil
}

// Area implements Model.
func (c *C2CMac) Area() float64 { return c.area }

// AnalogAdder models the switched-capacitor analog adder of Macro B
// (Sinangil et al.): per-operation charge transfer grows with the summed
// analog magnitude, the effect validated in Fig. 11.
type AnalogAdder struct {
	params   Params
	operands int
	outBits  int
	e0, k    float64
	area     float64
}

// NewAnalogAdder constructs an analog adder summing the given number of
// operands; outBits sets the full scale of the summed value.
func NewAnalogAdder(p Params, operands, outBits int) (*AnalogAdder, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if operands < 1 || operands > 64 {
		return nil, fmt.Errorf("circuits: analog adder operands %d out of [1,64]", operands)
	}
	if err := checkBitsRange("analog adder output", outBits, 1, 16); err != nil {
		return nil, err
	}
	return &AnalogAdder{
		params: p, operands: operands, outBits: outBits,
		e0:   scaleEnergy(analogAdderE0Ref, p, vdd),
		k:    scaleEnergy(analogAdderKRef, p, vdd),
		area: scaleArea(analogAdderAreaRef*(1+0.35*float64(operands-1)), p),
	}, nil
}

// Name implements Model.
func (a *AnalogAdder) Name() string { return "analog-adder" }

// Operands returns the adder width.
func (a *AnalogAdder) Operands() int { return a.operands }

// EnergyAt implements Model: E = e0 + k·(out/fs).
func (a *AnalogAdder) EnergyAt(_, _, out float64) float64 {
	return a.e0 + a.k*clampNorm(out, fullScale(a.outBits))
}

// MeanEnergy implements Model.
func (a *AnalogAdder) MeanEnergy(ops Operands) (float64, error) {
	fs := fullScale(a.outBits)
	return meanOutput(ops, fs/2, func(v float64) float64 { return a.EnergyAt(0, 0, v) }), nil
}

// Area implements Model.
func (a *AnalogAdder) Area() float64 { return a.area }

// AnalogAccumulator models the switched-capacitor analog accumulator of
// Macro C (Wan et al.): outputs are accumulated across cycles before one
// ADC read, with per-accumulate energy growing with the stored magnitude.
type AnalogAccumulator struct {
	params  Params
	outBits int
	e0, k   float64
	area    float64
}

// NewAnalogAccumulator constructs an analog accumulator.
func NewAnalogAccumulator(p Params, outBits int) (*AnalogAccumulator, error) {
	vdd, err := p.validate()
	if err != nil {
		return nil, err
	}
	if err := checkBitsRange("analog accumulator output", outBits, 1, 16); err != nil {
		return nil, err
	}
	return &AnalogAccumulator{
		params: p, outBits: outBits,
		e0:   scaleEnergy(analogAccumE0Ref, p, vdd),
		k:    scaleEnergy(analogAccumKRef, p, vdd),
		area: scaleArea(analogAccumAreaRef, p),
	}, nil
}

// Name implements Model.
func (a *AnalogAccumulator) Name() string { return "analog-accumulator" }

// EnergyAt implements Model.
func (a *AnalogAccumulator) EnergyAt(_, _, out float64) float64 {
	return a.e0 + a.k*clampNorm(out, fullScale(a.outBits))
}

// MeanEnergy implements Model.
func (a *AnalogAccumulator) MeanEnergy(ops Operands) (float64, error) {
	fs := fullScale(a.outBits)
	return meanOutput(ops, fs/2, func(v float64) float64 { return a.EnergyAt(0, 0, v) }), nil
}

// Area implements Model.
func (a *AnalogAccumulator) Area() float64 { return a.area }

func clampNorm(v, fs float64) float64 {
	if v < 0 {
		v = -v
	}
	if v > fs {
		v = fs
	}
	if fs == 0 {
		return 0
	}
	return v / fs
}
