package specfile

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// Every shipped spec file must parse, compile, and evaluate.
func TestShippedSpecFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "specs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no shipped spec files")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			text, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			arch, err := Parse(string(text))
			if err != nil {
				t.Fatal(err)
			}
			eng, err := core.NewEngine(arch)
			if err != nil {
				t.Fatal(err)
			}
			r, err := eng.EvaluateLayer(workload.Toy().Layers[0], 4, 1)
			if err != nil {
				t.Fatal(err)
			}
			if r.Energy <= 0 {
				t.Fatalf("energy %g", r.Energy)
			}
		})
	}
}
