// Package specfile decodes textual CiM system specifications (the YAML
// container-hierarchy of paper Fig. 5b, parsed by package yamlite) into
// runnable architectures. It lets users define new macros — components,
// connections, reuse directives, mapping guidance — without touching
// simulator source, which is the paper's flexibility contribution (§VI
// contrasts this with tools requiring source changes).
package specfile

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/tech"
	"repro/internal/tensor"
	"repro/internal/yamlite"
)

// Parse decodes a specification document into an architecture.
func Parse(text string) (*core.Arch, error) {
	doc, err := yamlite.Parse(text)
	if err != nil {
		return nil, err
	}
	root, ok := doc.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("specfile: top level must be a mapping")
	}
	d := &decoder{}
	name := d.str(root, "name", "")
	if name == "" {
		return nil, fmt.Errorf("specfile: missing name")
	}
	nodeNm := int(d.num(root, "node_nm", 0))
	node, err := tech.ByNm(nodeNm)
	if err != nil {
		return nil, err
	}
	hraw, ok := root["hierarchy"].([]any)
	if !ok {
		return nil, fmt.Errorf("specfile: missing hierarchy list")
	}
	children, err := d.nodes(hraw)
	if err != nil {
		return nil, err
	}
	container := &spec.Container{Name: name + ".root", Children: children}
	levels, err := spec.Flatten(container)
	if err != nil {
		return nil, err
	}
	arch := &core.Arch{
		Name:             name,
		Levels:           levels,
		Node:             node,
		Vdd:              d.num(root, "vdd", 0),
		ClockHz:          d.num(root, "clock_hz", 100e6),
		InputBits:        int(d.num(root, "input_bits", 8)),
		WeightBits:       int(d.num(root, "weight_bits", 8)),
		DACBits:          int(d.num(root, "dac_bits", 1)),
		CellBits:         int(d.num(root, "cell_bits", 1)),
		InputEncoding:    d.str(root, "input_encoding", "unsigned"),
		WeightEncoding:   d.str(root, "weight_encoding", "offset"),
		TemporalLevel:    -1,
		WeightSliceLevel: -1,
		InputSliceLevel:  -1,
	}
	if err := d.mapperGuidance(root, arch); err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	return arch, nil
}

// decoder accumulates the first type error encountered.
type decoder struct {
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("specfile: "+format, args...)
	}
}

func (d *decoder) num(m map[string]any, key string, def float64) float64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	f, ok := v.(float64)
	if !ok {
		d.fail("%s must be a number, got %T", key, v)
		return def
	}
	return f
}

func (d *decoder) str(m map[string]any, key, def string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.fail("%s must be a string, got %T", key, v)
		return def
	}
	return s
}

func (d *decoder) boolean(m map[string]any, key string) bool {
	v, ok := m[key]
	if !ok || v == nil {
		return false
	}
	b, ok := v.(bool)
	if !ok {
		d.fail("%s must be a boolean, got %T", key, v)
		return false
	}
	return b
}

// tensors decodes ["Inputs", "Weights", "Outputs"] lists.
func (d *decoder) tensors(m map[string]any, key string) []tensor.Kind {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	list, ok := v.([]any)
	if !ok {
		d.fail("%s must be a list of tensor names", key)
		return nil
	}
	var out []tensor.Kind
	for _, it := range list {
		s, ok := it.(string)
		if !ok {
			d.fail("%s entries must be strings", key)
			return nil
		}
		switch s {
		case "Inputs":
			out = append(out, tensor.Input)
		case "Weights":
			out = append(out, tensor.Weight)
		case "Outputs":
			out = append(out, tensor.Output)
		default:
			d.fail("%s: unknown tensor %q (want Inputs/Weights/Outputs)", key, s)
			return nil
		}
	}
	return out
}

func (d *decoder) attrs(m map[string]any) map[string]float64 {
	v, ok := m["attrs"]
	if !ok || v == nil {
		return nil
	}
	am, ok := v.(map[string]any)
	if !ok {
		d.fail("attrs must be a mapping")
		return nil
	}
	out := make(map[string]float64, len(am))
	for k, av := range am {
		f, ok := av.(float64)
		if !ok {
			d.fail("attr %s must be a number", k)
			return nil
		}
		out[k] = f
	}
	return out
}

// nodes decodes a hierarchy list into spec nodes.
func (d *decoder) nodes(items []any) ([]spec.Node, error) {
	var out []spec.Node
	for i, raw := range items {
		m, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("specfile: hierarchy entry %d must be a mapping", i)
		}
		switch {
		case m["component"] != nil:
			c := &spec.Component{
				Name:         d.str(m, "component", ""),
				Class:        d.str(m, "class", ""),
				Attrs:        d.attrs(m),
				MeshX:        int(d.num(m, "mesh_x", 0)),
				MeshY:        int(d.num(m, "mesh_y", 0)),
				IsCompute:    d.boolean(m, "compute"),
				Directives:   map[tensor.Kind]spec.Directive{},
				SpatialReuse: map[tensor.Kind]bool{},
			}
			for _, t := range d.tensors(m, "temporal_reuse") {
				c.Directives[t] = spec.TemporalReuse
			}
			for _, t := range d.tensors(m, "coalesce") {
				c.Directives[t] = spec.Coalesce
			}
			for _, t := range d.tensors(m, "no_coalesce") {
				c.Directives[t] = spec.NoCoalesce
			}
			for _, t := range d.tensors(m, "spatial_reuse") {
				c.SpatialReuse[t] = true
			}
			out = append(out, c)
		case m["container"] != nil:
			kids, ok := m["children"].([]any)
			if !ok {
				return nil, fmt.Errorf("specfile: container %v needs a children list", m["container"])
			}
			children, err := d.nodes(kids)
			if err != nil {
				return nil, err
			}
			c := &spec.Container{
				Name:         d.str(m, "container", ""),
				MeshX:        int(d.num(m, "mesh_x", 0)),
				MeshY:        int(d.num(m, "mesh_y", 0)),
				SpatialReuse: map[tensor.Kind]bool{},
				Children:     children,
			}
			for _, t := range d.tensors(m, "spatial_reuse") {
				c.SpatialReuse[t] = true
			}
			out = append(out, c)
		default:
			return nil, fmt.Errorf("specfile: hierarchy entry %d needs 'component' or 'container'", i)
		}
	}
	return out, nil
}

// mapperGuidance decodes the optional mapping section: per-level spatial
// preferences (by level name), inner dims, and slice placements.
func (d *decoder) mapperGuidance(root map[string]any, arch *core.Arch) error {
	mv, ok := root["mapping"]
	if !ok || mv == nil {
		return nil
	}
	m, ok := mv.(map[string]any)
	if !ok {
		return fmt.Errorf("specfile: mapping must be a mapping")
	}
	levelIdx := func(name string) (int, error) {
		for i := range arch.Levels {
			if arch.Levels[i].Name == name || arch.Levels[i].Name == name+".mesh" {
				return i, nil
			}
		}
		return 0, fmt.Errorf("specfile: mapping references unknown level %q", name)
	}
	if sp, ok := m["spatial_prefs"].(map[string]any); ok {
		arch.SpatialPrefs = map[int][]string{}
		for name, v := range sp {
			idx, err := levelIdx(name)
			if err != nil {
				return err
			}
			list, ok := v.([]any)
			if !ok {
				return fmt.Errorf("specfile: spatial_prefs for %q must be a list", name)
			}
			for _, it := range list {
				s, ok := it.(string)
				if !ok {
					return fmt.Errorf("specfile: spatial_prefs entries must be strings")
				}
				arch.SpatialPrefs[idx] = append(arch.SpatialPrefs[idx], s)
			}
		}
	}
	if id, ok := m["inner_dims"].([]any); ok {
		for _, it := range id {
			s, ok := it.(string)
			if !ok {
				return fmt.Errorf("specfile: inner_dims entries must be strings")
			}
			arch.InnerDims = append(arch.InnerDims, s)
		}
	}
	if s := d.str(m, "weight_slice_level", ""); s != "" {
		idx, err := levelIdx(s)
		if err != nil {
			return err
		}
		arch.WeightSliceLevel = idx
	}
	if s := d.str(m, "input_slice_level", ""); s != "" {
		idx, err := levelIdx(s)
		if err != nil {
			return err
		}
		arch.InputSliceLevel = idx
	}
	return nil
}
