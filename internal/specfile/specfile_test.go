package specfile

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// exampleSpec is the Fig. 5b-style system used across these tests.
const exampleSpec = `
name: custom-macro
node_nm: 45
clock_hz: 100e6
input_bits: 8
weight_bits: 8
dac_bits: 1
cell_bits: 2
hierarchy:
  - component: buffer
    class: sram-buffer
    attrs: {capacity_kb: 64}
    temporal_reuse: [Inputs, Weights, Outputs]
  - component: dac
    class: dac
    no_coalesce: [Inputs]
  - container: columns
    mesh_x: 32
    spatial_reuse: [Inputs]
    children:
      - component: shift_add
        class: shift-add
        attrs: {bits: 24}
        temporal_reuse: [Outputs]
      - component: adc
        class: adc
        attrs: {resolution: 8}
        no_coalesce: [Outputs]
      - container: rows
        mesh_y: 64
        spatial_reuse: [Outputs]
        children:
          - component: cell
            class: reram-cell
            compute: true
            temporal_reuse: [Weights]
mapping:
  spatial_prefs:
    columns: [K]
    rows: [C, R, S]
  inner_dims: [C, R, S]
  weight_slice_level: columns
  input_slice_level: shift_add
`

func TestParseExample(t *testing.T) {
	arch, err := Parse(exampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Name != "custom-macro" || arch.Node.Nm != 45 {
		t.Fatalf("header wrong: %s %d", arch.Name, arch.Node.Nm)
	}
	if arch.InputBits != 8 || arch.CellBits != 2 {
		t.Fatalf("bits wrong: %d %d", arch.InputBits, arch.CellBits)
	}
	// Flattened: buffer, dac, columns, shift_add, adc, rows, cell.
	if len(arch.Levels) != 7 {
		t.Fatalf("levels = %d: %+v", len(arch.Levels), archLevelNames(arch))
	}
	if arch.Levels[2].Kind != spec.SpatialLevel || arch.Levels[2].Mesh != 32 {
		t.Fatalf("columns level wrong: %+v", arch.Levels[2])
	}
	if !arch.Levels[2].SpatialReuse[tensor.Input] {
		t.Fatal("columns must multicast inputs")
	}
	if arch.WeightSliceLevel != 2 || arch.InputSliceLevel != 3 {
		t.Fatalf("slice levels: %d %d", arch.WeightSliceLevel, arch.InputSliceLevel)
	}
	if got := arch.SpatialPrefs[5]; len(got) != 3 || got[0] != "C" {
		t.Fatalf("rows prefs: %v", got)
	}
}

func TestParsedArchRuns(t *testing.T) {
	arch, err := Parse(exampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.EvaluateLayer(workload.Toy().Layers[0], 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy <= 0 || r.GOPS() <= 0 {
		t.Fatalf("parsed arch evaluation invalid: %+v", r)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		edit func(string) string
	}{
		{"missing name", func(s string) string { return strings.Replace(s, "name: custom-macro", "x: y", 1) }},
		{"bad node", func(s string) string { return strings.Replace(s, "node_nm: 45", "node_nm: 3", 1) }},
		{"no hierarchy", func(s string) string { return strings.Replace(s, "hierarchy:", "hierarchy_x:", 1) }},
		{"unknown tensor", func(s string) string {
			return strings.Replace(s, "[Inputs, Weights, Outputs]", "[Bananas]", 1)
		}},
		{"no compute", func(s string) string { return strings.Replace(s, "compute: true", "compute: false", 1) }},
		{"bad pref level", func(s string) string { return strings.Replace(s, "columns: [K]", "nowhere: [K]", 1) }},
		{"attr not number", func(s string) string {
			return strings.Replace(s, "{capacity_kb: 64}", "{capacity_kb: big}", 1)
		}},
		{"string bits", func(s string) string { return strings.Replace(s, "input_bits: 8", "input_bits: eight", 1) }},
	}
	for _, c := range cases {
		if _, err := Parse(c.edit(exampleSpec)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestParseRejectsNonMapping(t *testing.T) {
	if _, err := Parse("- 1\n- 2"); err == nil {
		t.Fatal("want error for list document")
	}
	if _, err := Parse("::"); err == nil {
		t.Fatal("want error for junk")
	}
}

func TestContainerNeedsChildren(t *testing.T) {
	bad := `
name: x
node_nm: 45
hierarchy:
  - container: empty
    mesh_x: 2
`
	if _, err := Parse(bad); err == nil {
		t.Fatal("want error for container without children")
	}
}

func archLevelNames(a *core.Arch) []string {
	out := make([]string, len(a.Levels))
	for i := range a.Levels {
		out[i] = a.Levels[i].Name
	}
	return out
}
