package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: fmt.Sprintf("node-%c", 'a'+i), Addr: fmt.Sprintf("http://10.0.0.%d:8080", i+1)}
	}
	return nodes
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("eng|fingerprint-%04d", i)
	}
	return keys
}

// assign maps every key to its owner ID.
func assign(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		n, ok := r.Owner(k)
		if !ok {
			out[k] = ""
			continue
		}
		out[k] = n.ID
	}
	return out
}

// TestRingDeterministicAcrossConstruction: the assignment is a pure
// function of the member set — member order, duplicates, and repeated
// construction (a process restart) must not move a single key.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	nodes := testNodes(5)
	keys := testKeys(2000)
	want := assign(NewRing(nodes, 0), keys)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]Node(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Inject duplicates: static -peers lists get copy-pasted.
		shuffled = append(shuffled, shuffled[rng.Intn(len(shuffled))])
		got := assign(NewRing(shuffled, 0), keys)
		for k, owner := range want {
			if got[k] != owner {
				t.Fatalf("trial %d: key %q moved %s -> %s on reconstruction", trial, k, owner, got[k])
			}
		}
	}
}

// TestRingPinnedAssignment pins a handful of concrete assignments: the
// hash placement is part of the cluster's persistent contract (every
// node of every version must agree on owners), so a change to the hash
// or the vnode grammar must fail loudly here, not skew-route in prod.
func TestRingPinnedAssignment(t *testing.T) {
	r := NewRing(testNodes(3), 0)
	pinned := map[string]string{
		"eng|fingerprint-0000":                "node-a",
		"eng|fingerprint-0001":                "node-c",
		"eng|fingerprint-0002":                "node-a",
		"eng|fingerprint-0003":                "node-c",
		"eng|fingerprint-0004":                "node-a",
		"eval|macro=base|spec=|scenario=|n=1": "node-a",
	}
	for key, want := range pinned {
		if n, _ := r.Owner(key); n.ID != want {
			t.Errorf("Owner(%q) = %s, pinned %s (hash function or vnode grammar changed!)", key, n.ID, want)
		}
	}
}

// TestRingMinimalMovementOnJoin: adding one member to an n-node ring
// must move roughly 1/(n+1) of the keys — all of them TO the new
// member; no key may shuffle between surviving members.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	nodes := testNodes(4)
	keys := testKeys(4000)
	before := assign(NewRing(nodes, 0), keys)
	after := assign(NewRing(append(testNodes(4), Node{ID: "node-new", Addr: "http://10.0.0.99:8080"}), 0), keys)

	moved := 0
	for _, k := range keys {
		if before[k] == after[k] {
			continue
		}
		moved++
		if after[k] != "node-new" {
			t.Fatalf("key %q moved %s -> %s, but only the joining node may gain keys", k, before[k], after[k])
		}
	}
	frac := float64(moved) / float64(len(keys))
	// Fair share is 1/5; vnode placement noise allows a wide but
	// bounded corridor.
	if frac < 0.10 || frac > 0.30 {
		t.Fatalf("join moved %.1f%% of keys, want ~20%%", frac*100)
	}
}

// TestRingMinimalMovementOnLeave: removing a member must move exactly
// that member's keys; every other assignment is untouched.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	nodes := testNodes(5)
	keys := testKeys(4000)
	before := assign(NewRing(nodes, 0), keys)
	after := assign(NewRing(nodes[:4], 0), keys) // node-e departs

	for _, k := range keys {
		if before[k] != "node-e" {
			if after[k] != before[k] {
				t.Fatalf("key %q was owned by surviving %s but moved to %s", k, before[k], after[k])
			}
		} else if after[k] == "node-e" || after[k] == "" {
			t.Fatalf("departed node still owns key %q", k)
		}
	}
}

// TestRingBalance: with the default vnode count, every member's exact
// hash-circle share stays near fair, and the shares sum to 1.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		r := NewRing(testNodes(n), 0)
		shares := r.Shares()
		total := 0.0
		fair := 1.0 / float64(n)
		for id, s := range shares {
			total += s
			if s < fair*0.5 || s > fair*1.7 {
				t.Errorf("%d nodes: %s owns %.3f of the circle, fair is %.3f", n, id, s, fair)
			}
		}
		if total < 0.999 || total > 1.001 {
			t.Errorf("%d nodes: shares sum to %.6f, want 1", n, total)
		}
	}
}

// TestRingSuccessors: the preference list starts at the owner, holds
// distinct members, and covers the whole ring when asked.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(testNodes(4), 0)
	for _, k := range testKeys(50) {
		owner, _ := r.Owner(k)
		succ := r.Successors(k, 4)
		if len(succ) != 4 {
			t.Fatalf("Successors returned %d members, want 4", len(succ))
		}
		if succ[0].ID != owner.ID {
			t.Fatalf("preference list starts at %s, owner is %s", succ[0].ID, owner.ID)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n.ID] {
				t.Fatalf("duplicate member %s in preference list", n.ID)
			}
			seen[n.ID] = true
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if _, ok := NewRing(nil, 0).Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	one := NewRing([]Node{{ID: "solo", Addr: "http://x"}}, 0)
	for _, k := range testKeys(20) {
		if n, ok := one.Owner(k); !ok || n.ID != "solo" {
			t.Fatalf("single-node ring routed %q to %q", k, n.ID)
		}
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers("a=http://h1:1, b=h2:2 ,c=https://h3/")
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{{ID: "a", Addr: "http://h1:1"}, {ID: "b", Addr: "http://h2:2"}, {ID: "c", Addr: "https://h3"}}
	if len(nodes) != len(want) {
		t.Fatalf("got %d nodes", len(nodes))
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("peer %d = %+v, want %+v", i, nodes[i], want[i])
		}
	}
	for _, bad := range []string{"", "a=", "=url", "a=u,a=v", "justtext"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestEvalRouteKey(t *testing.T) {
	if EvalRouteKey("", "", "", 0) != "" {
		t.Fatal("unroutable request must yield empty key")
	}
	a := EvalRouteKey("base", "", "weight-stationary", 0)
	b := EvalRouteKey("base", "", "weight-stationary", 1)
	if a != b {
		t.Fatal("SystemMacros 0 and 1 must route identically (both mean one macro)")
	}
	if EvalRouteKey("base", "", "", 1) == EvalRouteKey("macro-a", "", "", 1) {
		t.Fatal("different macros must route differently")
	}
}
