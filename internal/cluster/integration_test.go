// Multi-node integration coverage: three real serve instances joined
// into a ring over a shared blob tier, exercised over HTTP exactly as a
// deployment would be. The package is cluster_test (not cluster) so it
// can import internal/serve without a cycle — serve imports cluster for
// the ring and remote tier.
package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/workload"
)

// lateHandler lets the httptest listeners exist before the servers they
// delegate to: ring members need each other's addresses at construction.
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h = h
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type testNode struct {
	id  string
	srv *serve.Server
	ts  *httptest.Server
}

// startRing boots a blob tier plus three serve nodes that share it, all
// behind real listeners.
func startRing(t *testing.T) (nodes []*testNode, blob *cluster.BlobServer, blobTS *httptest.Server) {
	t.Helper()
	blob, err := cluster.NewBlobServer(t.TempDir())
	if err != nil {
		t.Fatalf("blob server: %v", err)
	}
	blobTS = httptest.NewServer(blob)
	t.Cleanup(blobTS.Close)

	ids := []string{"node-a", "node-b", "node-c"}
	handlers := make([]*lateHandler, len(ids))
	var peerParts []string
	for i, id := range ids {
		handlers[i] = &lateHandler{}
		ts := httptest.NewServer(handlers[i])
		t.Cleanup(ts.Close)
		nodes = append(nodes, &testNode{id: id, ts: ts})
		peerParts = append(peerParts, id+"="+ts.URL)
	}
	peers := strings.Join(peerParts, ",")
	for i, n := range nodes {
		srv := serve.NewServer(serve.BatchOptions{
			Workers:        2,
			AsyncThreshold: -1,
			ClusterNodeID:  n.id,
			ClusterPeers:   peers,
			BlobURL:        blobTS.URL,
		})
		if err := srv.ClusterError(); err != nil {
			t.Fatalf("%s: cluster config: %v", n.id, err)
		}
		t.Cleanup(srv.Close)
		n.srv = srv
		handlers[i].set(srv.Handler())
	}
	return nodes, blob, blobTS
}

// evaluate POSTs /v1/evaluate to node. pinned sets the forward hop
// guard, so the node must serve locally instead of routing to the ring
// owner.
func evaluate(t *testing.T, node *testNode, macro string, pinned bool) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"macro":%q,"network":"toy","max_mappings":2}`, macro)
	req, err := http.NewRequest(http.MethodPost, node.ts.URL+"/v1/evaluate",
		bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if pinned {
		req.Header.Set(serve.ForwardHeader, "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("evaluate %s on %s: %v", macro, node.id, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestClusterWarmShareAndDegradation is the end-to-end ring story: a
// cold compile on one node warm-starts the others through the blob
// tier; requests forward to their ring owner; a dead peer degrades to
// local evaluation; a dead blob tier degrades to local tiers and shows
// up unhealthy in /v1/cluster.
func TestClusterWarmShareAndDegradation(t *testing.T) {
	nodes, blob, blobTS := startRing(t)
	a, b, c := nodes[0], nodes[1], nodes[2]

	toy, err := workload.ByName("toy")
	if err != nil {
		t.Fatalf("toy workload: %v", err)
	}
	// One engine record plus one context record per layer.
	wantObjects := 1 + len(toy.Layers)

	// --- Warm share: cold compile on A, zero compiles on B and C. ---
	if resp := evaluate(t, a, "base", true); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold evaluate on A: status %d", resp.StatusCode)
	}
	if got := a.srv.CacheStats().Compiles; got == 0 {
		t.Fatalf("A compiled nothing (compiles=%d)", got)
	}
	// The write-through to the blob tier is write-behind; wait for it.
	deadline := time.Now().Add(10 * time.Second)
	for blob.Stats().Objects < wantObjects {
		if time.Now().After(deadline) {
			t.Fatalf("blob tier has %d objects, want %d", blob.Stats().Objects, wantObjects)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, n := range []*testNode{b, c} {
		if resp := evaluate(t, n, "base", true); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm evaluate on %s: status %d", n.id, resp.StatusCode)
		}
		st := n.srv.CacheStats()
		if st.Compiles != 0 {
			t.Fatalf("%s recompiled: compiles=%d, want 0 (warm-share)", n.id, st.Compiles)
		}
		if st.Restored == 0 {
			t.Fatalf("%s restored nothing from the blob tier", n.id)
		}
	}

	// --- Forwarding: an unpinned request lands on its ring owner. ---
	ring := cluster.NewRing([]cluster.Node{
		{ID: a.id, Addr: a.ts.URL}, {ID: b.id, Addr: b.ts.URL}, {ID: c.id, Addr: c.ts.URL},
	}, 0)
	byID := map[string]*testNode{a.id: a, b.id: b, c.id: c}
	// Pick a macro owned by someone other than the node we send to, so
	// the request must forward.
	var fwdMacro string
	var owner, sender *testNode
	for _, m := range []string{"macro-a", "macro-b", "macro-c", "macro-d"} {
		o, ok := ring.Owner(cluster.EvalRouteKey(m, "", "", 0))
		if !ok {
			t.Fatalf("ring owner lookup failed")
		}
		owner = byID[o.ID]
		for _, n := range nodes {
			if n != owner {
				fwdMacro, sender = m, n
				break
			}
		}
		break
	}
	resp := evaluate(t, sender, fwdMacro, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded evaluate: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(serve.ForwardedToHeader); got != owner.id {
		t.Fatalf("forwarded-to header %q, want owner %q", got, owner.id)
	}
	if owner.srv.CacheStats().Compiles == 0 {
		t.Fatalf("owner %s did not compile the forwarded request", owner.id)
	}

	// --- Dead peer: forwarding fails over to local evaluation. ---
	// Wait for the owner's write-behind put of the forwarded macro to
	// land before killing it, so the fallback below can warm-start.
	deadline = time.Now().Add(10 * time.Second)
	for blob.Stats().Objects < 2*wantObjects {
		if time.Now().After(deadline) {
			t.Fatalf("blob tier has %d objects, want %d", blob.Stats().Objects, 2*wantObjects)
		}
		time.Sleep(10 * time.Millisecond)
	}
	owner.ts.Close()
	compilesBefore := sender.srv.CacheStats().Compiles
	resp = evaluate(t, sender, fwdMacro, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate with dead owner: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(serve.ForwardedToHeader); got != "" {
		t.Fatalf("dead owner still reported as forward target %q", got)
	}
	st := sender.srv.ClusterStatus(context.Background())
	if st.Forward.Errors == 0 {
		t.Fatalf("forward failure not counted: %+v", st.Forward)
	}
	// The owner's cold compile reached the blob tier, so the fallback
	// node warm-starts rather than recompiling.
	if got := sender.srv.CacheStats().Compiles; got != compilesBefore {
		t.Fatalf("%s recompiled %q despite the blob tier holding it (compiles %d -> %d)",
			sender.id, fwdMacro, compilesBefore, got)
	}

	// --- Blob outage: requests keep succeeding, tier reports unhealthy. ---
	blobTS.Close()
	deadline = time.Now().Add(10 * time.Second)
	macros := []string{"digital-cim", "tpu-like", "photonic"}
	for i := 0; ; i++ {
		if resp := evaluate(t, sender, macros[i%len(macros)], true); resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate during blob outage: status %d", resp.StatusCode)
		}
		cs := sender.srv.ClusterStatus(context.Background())
		if cs.Blob == nil {
			t.Fatalf("cluster status lost its blob section")
		}
		if !cs.Blob.Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blob tier never reported unhealthy: %+v", cs.Blob)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
