package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
)

// RemoteStats counts one node's traffic against the shared blob tier.
type RemoteStats struct {
	Gets   uint64 `json:"gets"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
	Errors uint64 `json:"errors"`
	// Dropped counts write-behind records refused by a full queue or a
	// tripped breaker (the tier is a cache; losing a write costs another
	// node one compile, never correctness).
	Dropped uint64 `json:"dropped"`
	// Healthy is the circuit breaker's current verdict.
	Healthy bool `json:"healthy"`
}

// RemoteOptions tunes a Remote. The zero value picks the defaults.
type RemoteOptions struct {
	// HTTPClient substitutes the transport (tests).
	HTTPClient *http.Client
	// OpTimeout bounds one GET/PUT round trip (default 2s): the tier is
	// an optimization, and a slow tier must degrade to a local miss, not
	// a slow request.
	OpTimeout time.Duration
	// FailThreshold is the consecutive-failure count that trips the
	// breaker (default 3).
	FailThreshold int
	// Cooldown is how long a tripped breaker fast-fails before letting
	// one probe through (default 5s).
	Cooldown time.Duration
	// QueueLen bounds the write-behind backlog (default 256).
	QueueLen int

	// now is swapped in tests to drive the breaker clock.
	now func() time.Time
}

func (o RemoteOptions) opTimeout() time.Duration {
	if o.OpTimeout > 0 {
		return o.OpTimeout
	}
	return 2 * time.Second
}

func (o RemoteOptions) failThreshold() int {
	if o.FailThreshold > 0 {
		return o.FailThreshold
	}
	return 3
}

func (o RemoteOptions) cooldown() time.Duration {
	if o.Cooldown > 0 {
		return o.Cooldown
	}
	return 5 * time.Second
}

func (o RemoteOptions) queueLen() int {
	if o.QueueLen > 0 {
		return o.QueueLen
	}
	return 256
}

// Remote is the persist.Store-shaped client of a blob tier: Get reads
// through with a short deadline, Put rides a write-behind queue so the
// hot path never blocks on the network, and a circuit breaker converts
// an unreachable tier into fast local misses (with a periodic probe to
// notice recovery). Safe for concurrent use.
type Remote struct {
	base string
	hc   *http.Client
	opts RemoteOptions

	queue chan remoteOp
	wg    sync.WaitGroup
	// closing guards queue sends against Close, mirroring persist.Store.
	closing sync.RWMutex
	closed  bool

	// breaker state.
	mu         sync.Mutex
	consecFail int
	downUntil  time.Time

	gets, hits, misses, puts, errors, dropped atomic.Uint64
}

type remoteOp struct {
	name   string
	encode func() ([]byte, error) // nil: delete
	ack    chan struct{}          // flush barrier
}

// NewRemote returns a client of the blob tier at base ("host:port" or a
// full URL) and starts its write-behind worker.
func NewRemote(base string, opts RemoteOptions) *Remote {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	r := &Remote{
		base: strings.TrimRight(base, "/"),
		hc:   opts.HTTPClient,
		opts: opts,
	}
	if r.hc == nil {
		r.hc = &http.Client{}
	}
	if r.opts.now == nil {
		r.opts.now = time.Now
	}
	r.queue = make(chan remoteOp, r.opts.queueLen())
	r.wg.Add(1)
	go r.writer()
	return r
}

// BaseURL reports the tier's resolved base URL.
func (r *Remote) BaseURL() string { return r.base }

// Stats snapshots the counters and the breaker verdict.
func (r *Remote) Stats() RemoteStats {
	return RemoteStats{
		Gets: r.gets.Load(), Hits: r.hits.Load(), Misses: r.misses.Load(),
		Puts: r.puts.Load(), Errors: r.errors.Load(), Dropped: r.dropped.Load(),
		Healthy: r.Healthy(),
	}
}

// Healthy reports the breaker's verdict: false while tripped (including
// the cooldown window between probes).
func (r *Remote) Healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.consecFail < r.opts.failThreshold()
}

// allowed reports whether an operation may hit the network now: always
// while healthy; after the breaker trips, only one probe per cooldown.
func (r *Remote) allowed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.consecFail < r.opts.failThreshold() {
		return true
	}
	if now := r.opts.now(); !now.Before(r.downUntil) {
		// Half-open: admit this probe and push the next window out, so a
		// still-dead tier costs one timeout per cooldown, not per request.
		r.downUntil = now.Add(r.opts.cooldown())
		return true
	}
	return false
}

func (r *Remote) noteSuccess() {
	r.mu.Lock()
	r.consecFail = 0
	r.mu.Unlock()
}

func (r *Remote) noteFailure() {
	r.errors.Add(1)
	r.mu.Lock()
	r.consecFail++
	if r.consecFail >= r.opts.failThreshold() {
		r.downUntil = r.opts.now().Add(r.opts.cooldown())
	}
	r.mu.Unlock()
}

// Get fetches one record from the tier. ok is false on a clean miss —
// including a tripped breaker, which is deliberately indistinguishable
// from a miss to the caller: both mean "compile locally". err is set
// only for records the tier returned but this node must not use
// (corrupt envelope, key mismatch).
func (r *Remote) Get(ctx context.Context, kind persist.Kind, key string) (persist.Record, bool, error) {
	if !r.allowed() {
		r.dropped.Add(1)
		return persist.Record{}, false, nil
	}
	r.gets.Add(1)
	ctx, cancel := context.WithTimeout(ctx, r.opts.opTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.objURL(kind, key), nil)
	if err != nil {
		return persist.Record{}, false, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		r.noteFailure()
		return persist.Record{}, false, nil
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		r.noteSuccess() // the tier answered; absence is a healthy miss
		r.misses.Add(1)
		return persist.Record{}, false, nil
	case resp.StatusCode != http.StatusOK:
		r.noteFailure()
		return persist.Record{}, false, nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
	if err != nil || len(data) > maxBlobBytes {
		r.noteFailure()
		return persist.Record{}, false, nil
	}
	r.noteSuccess()
	rec, err := persist.DecodeRecord(data)
	if err != nil {
		return persist.Record{}, false, fmt.Errorf("cluster: remote record %s: %w", persist.RecordName(kind, key), err)
	}
	if rec.Kind != kind || rec.Key != key {
		return persist.Record{}, false, fmt.Errorf("cluster: remote record %s carries key %q, wanted %q",
			persist.RecordName(kind, key), rec.Key, key)
	}
	r.hits.Add(1)
	return rec, true, nil
}

// Put enqueues a write-through of one record: encode runs on the writer
// goroutine (the caller pays neither serialization nor network time),
// and a full queue or tripped breaker drops the record.
func (r *Remote) Put(kind persist.Kind, key string, costSec float64, encode func() ([]byte, error)) {
	op := remoteOp{name: persist.RecordName(kind, key), encode: func() ([]byte, error) {
		payload, err := encode()
		if err != nil {
			return nil, err
		}
		return persist.EncodeRecord(persist.Record{Kind: kind, Key: key, CostSec: costSec, Payload: payload})
	}}
	r.send(op, false)
}

// Delete enqueues removal of one record from the tier (no-op if absent).
func (r *Remote) Delete(kind persist.Kind, key string) {
	r.send(remoteOp{name: persist.RecordName(kind, key)}, false)
}

// Flush blocks until every previously enqueued write has been attempted.
func (r *Remote) Flush() {
	ack := make(chan struct{})
	if r.send(remoteOp{ack: ack}, true) {
		<-ack
	}
}

// Close flushes the queue and stops the writer. Later Puts are dropped.
func (r *Remote) Close() {
	r.closing.Lock()
	already := r.closed
	r.closed = true
	if !already {
		close(r.queue)
	}
	r.closing.Unlock()
	r.wg.Wait()
}

func (r *Remote) send(op remoteOp, block bool) bool {
	r.closing.RLock()
	defer r.closing.RUnlock()
	if r.closed {
		if op.ack == nil {
			r.dropped.Add(1)
		}
		return false
	}
	if block {
		r.queue <- op
		return true
	}
	select {
	case r.queue <- op:
		return true
	default:
		r.dropped.Add(1)
		return false
	}
}

func (r *Remote) writer() {
	defer r.wg.Done()
	for op := range r.queue {
		switch {
		case op.ack != nil:
			close(op.ack)
		case !r.allowed():
			r.dropped.Add(1)
		case op.encode == nil:
			r.roundTrip(http.MethodDelete, op.name, nil, http.StatusNoContent, http.StatusNotFound)
		default:
			data, err := op.encode()
			if err != nil {
				r.dropped.Add(1)
				continue
			}
			if r.roundTrip(http.MethodPut, op.name, data, http.StatusNoContent) {
				r.puts.Add(1)
			}
		}
	}
}

// roundTrip performs one writer-side request, feeding the breaker.
func (r *Remote) roundTrip(method, name string, body []byte, okStatus ...int) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.opTimeout())
	defer cancel()
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.base+"/"+name, rdr)
	if err != nil {
		r.noteFailure()
		return false
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		r.noteFailure()
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	for _, s := range okStatus {
		if resp.StatusCode == s {
			r.noteSuccess()
			return true
		}
	}
	r.noteFailure()
	return false
}

func (r *Remote) objURL(kind persist.Kind, key string) string {
	return r.base + "/" + persist.RecordName(kind, key)
}

// Probe checks the tier root once (the /v1/cluster health report calls
// it so a tripped breaker can report recovery without waiting for
// traffic). It respects the breaker's cooldown.
func (r *Remote) Probe(ctx context.Context) bool {
	if !r.allowed() {
		return false
	}
	ctx, cancel := context.WithTimeout(ctx, r.opts.opTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/", nil)
	if err != nil {
		return false
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		r.noteFailure()
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.noteFailure()
		return false
	}
	r.noteSuccess()
	return true
}
