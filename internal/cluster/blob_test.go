package cluster

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/persist"
)

func newBlobFixture(t *testing.T) (*BlobServer, *httptest.Server) {
	t.Helper()
	bs, err := NewBlobServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(bs)
	t.Cleanup(ts.Close)
	return bs, ts
}

func mustEncode(t *testing.T, rec persist.Record) []byte {
	t.Helper()
	data, err := persist.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func doReq(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestBlobRoundTrip(t *testing.T) {
	bs, ts := newBlobFixture(t)
	rec := persist.Record{Kind: persist.KindEngine, Key: "eng|abc", CostSec: 1.5, Payload: []byte(`{"x":1}`)}
	name := persist.RecordName(rec.Kind, rec.Key)
	data := mustEncode(t, rec)

	if resp := doReq(t, http.MethodPut, ts.URL+"/"+name, data); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	resp := doReq(t, http.MethodGet, ts.URL+"/"+name, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	got, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(got, data) {
		t.Fatal("GET returned different bytes than PUT stored")
	}
	back, err := persist.DecodeRecord(got)
	if err != nil || back.Key != rec.Key || string(back.Payload) != string(rec.Payload) {
		t.Fatalf("round-tripped record mismatch: %+v err %v", back, err)
	}
	if st := bs.Stats(); st.Objects != 1 || st.Puts != 1 || st.Gets != 1 {
		t.Fatalf("stats %+v", st)
	}

	if resp := doReq(t, http.MethodDelete, ts.URL+"/"+name, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodGet, ts.URL+"/"+name, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete: %d", resp.StatusCode)
	}
	// Deletes are idempotent (a retried write-behind op must not error).
	if resp := doReq(t, http.MethodDelete, ts.URL+"/"+name, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("second DELETE status %d", resp.StatusCode)
	}
}

func TestBlobRejectsBadObjects(t *testing.T) {
	bs, ts := newBlobFixture(t)
	rec := persist.Record{Kind: persist.KindEngine, Key: "eng|abc", Payload: []byte("{}")}
	name := persist.RecordName(rec.Kind, rec.Key)
	good := mustEncode(t, rec)

	// Corrupt envelope: flip a payload byte so the CRC fails.
	bad := append([]byte(nil), good...)
	bad[len(bad)-6] ^= 0xff
	if resp := doReq(t, http.MethodPut, ts.URL+"/"+name, bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt PUT accepted with %d", resp.StatusCode)
	}
	// Valid envelope under the wrong name: poisoned fingerprint.
	other := persist.RecordName(persist.KindEngine, "eng|other")
	if resp := doReq(t, http.MethodPut, ts.URL+"/"+other, good); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misnamed PUT accepted with %d", resp.StatusCode)
	}
	// Traversal and garbage names never reach the filesystem.
	for _, path := range []string{"/..%2fescape.cws", "/" + strings.Repeat("x", 40), "/.tmp-123"} {
		if resp := doReq(t, http.MethodPut, ts.URL+path, good); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad name %q accepted with %d", path, resp.StatusCode)
		}
	}
	if st := bs.Stats(); st.Objects != 0 || st.Rejected < 4 {
		t.Fatalf("stats after rejects: %+v", st)
	}
}

func TestBlobIndex(t *testing.T) {
	_, ts := newBlobFixture(t)
	rec := persist.Record{Kind: persist.KindLayerContext, Key: "ctx|a|b", Payload: []byte("{}")}
	doReq(t, http.MethodPut, ts.URL+"/"+persist.RecordName(rec.Kind, rec.Key), mustEncode(t, rec))

	resp := doReq(t, http.MethodGet, ts.URL+"/?names=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"objects": 1`) ||
		!strings.Contains(string(body), persist.RecordName(rec.Kind, rec.Key)) {
		t.Fatalf("index body: %s", body)
	}
}
