package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/persist"
)

// maxBlobBytes bounds one stored object (64 MiB — far beyond any
// engine or layer-context envelope; a runaway PUT cannot fill the disk
// in one request).
const maxBlobBytes = 64 << 20

// blobName matches the persist record-file scheme: "<kind>-<hex32>.cws".
// Everything else — traversal attempts, temp files, dotfiles — is
// rejected before touching the filesystem.
var blobName = regexp.MustCompile(`^[a-z0-9]{1,16}-[0-9a-f]{32}\.cws$`)

// BlobStats counts a blob server's request activity. All fields are
// cumulative; safe to read while serving.
type BlobStats struct {
	Objects  int    `json:"objects"`
	Gets     uint64 `json:"gets"`
	Misses   uint64 `json:"misses"`
	Puts     uint64 `json:"puts"`
	Deletes  uint64 `json:"deletes"`
	Rejected uint64 `json:"rejected"`
}

// BlobServer is the shared warm-start tier: an HTTP object store over a
// directory of persist envelopes. Objects are named by RecordName, so
// the namespace is content-addressed; bodies are validated as envelopes
// before they touch disk, so the tier can never serve a corrupt record
// it accepted (a bit-flip after write is still caught by the reader's
// checksum). One process owns the directory; writes are atomic
// (temp + rename).
//
//	GET    /            store summary (JSON BlobStats; ?names=1 lists)
//	GET    /{name}      envelope bytes, or 404
//	PUT    /{name}      validate + store, 204
//	DELETE /{name}      remove (idempotent), 204
//
// Run it standalone via `cimloop blobd`, or mount it inside another
// mux. It implements http.Handler rooted at "/".
type BlobServer struct {
	dir string

	gets, misses, puts, deletes, rejected atomic.Uint64
}

// NewBlobServer creates (if needed) the storage directory and returns
// the handler.
func NewBlobServer(dir string) (*BlobServer, error) {
	if dir == "" {
		return nil, fmt.Errorf("cluster: empty blob directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return &BlobServer{dir: dir}, nil
}

// Dir returns the storage directory.
func (b *BlobServer) Dir() string { return b.dir }

// Stats snapshots the counters plus the current object count.
func (b *BlobServer) Stats() BlobStats {
	n := 0
	if entries, err := os.ReadDir(b.dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && blobName.MatchString(e.Name()) {
				n++
			}
		}
	}
	return BlobStats{
		Objects: n,
		Gets:    b.gets.Load(), Misses: b.misses.Load(),
		Puts: b.puts.Load(), Deletes: b.deletes.Load(),
		Rejected: b.rejected.Load(),
	}
}

func (b *BlobServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/")
	if name == "" {
		b.serveIndex(w, r)
		return
	}
	if !blobName.MatchString(name) {
		b.rejected.Add(1)
		http.Error(w, "cluster: invalid object name", http.StatusBadRequest)
		return
	}
	path := filepath.Join(b.dir, name)
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		data, err := os.ReadFile(path)
		if err != nil {
			b.misses.Add(1)
			http.Error(w, "cluster: no such object", http.StatusNotFound)
			return
		}
		b.gets.Add(1)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(data)))
		if r.Method == http.MethodHead {
			return
		}
		_, _ = w.Write(data)
	case http.MethodPut:
		data, err := io.ReadAll(io.LimitReader(r.Body, maxBlobBytes+1))
		if err != nil || len(data) > maxBlobBytes {
			b.rejected.Add(1)
			http.Error(w, "cluster: object too large or unreadable", http.StatusRequestEntityTooLarge)
			return
		}
		// Validate the envelope end to end: a record the tier accepted is
		// always decodable by every node, and the stored name must match
		// the record's own key (an object filed under the wrong name would
		// poison warm starts for that fingerprint).
		rec, err := persist.DecodeRecord(data)
		if err != nil {
			b.rejected.Add(1)
			http.Error(w, fmt.Sprintf("cluster: not a valid envelope: %v", err), http.StatusBadRequest)
			return
		}
		if persist.RecordName(rec.Kind, rec.Key) != name {
			b.rejected.Add(1)
			http.Error(w, "cluster: object name does not match record key", http.StatusBadRequest)
			return
		}
		if err := b.writeAtomic(path, data); err != nil {
			http.Error(w, fmt.Sprintf("cluster: store failed: %v", err), http.StatusInternalServerError)
			return
		}
		b.puts.Add(1)
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			http.Error(w, fmt.Sprintf("cluster: delete failed: %v", err), http.StatusInternalServerError)
			return
		}
		b.deletes.Add(1)
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT, DELETE")
		http.Error(w, "cluster: method not allowed", http.StatusMethodNotAllowed)
	}
}

// serveIndex answers the store root: stats (the health probe) and, on
// request, the object listing.
func (b *BlobServer) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "cluster: method not allowed", http.StatusMethodNotAllowed)
		return
	}
	out := struct {
		BlobStats
		Names []string `json:"names,omitempty"`
	}{BlobStats: b.Stats()}
	if r.URL.Query().Get("names") == "1" {
		if entries, err := os.ReadDir(b.dir); err == nil {
			for _, e := range entries {
				if !e.IsDir() && blobName.MatchString(e.Name()) {
					out.Names = append(out.Names, e.Name())
				}
			}
			sort.Strings(out.Names)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func (b *BlobServer) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(b.dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
