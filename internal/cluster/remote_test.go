package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/persist"
)

func TestRemotePutGetRoundTrip(t *testing.T) {
	_, ts := newBlobFixture(t)
	r := NewRemote(ts.URL, RemoteOptions{})
	defer r.Close()

	r.Put(persist.KindEngine, "eng|fp1", 2.5, func() ([]byte, error) {
		return []byte(`{"arch":true}`), nil
	})
	r.Flush()

	rec, ok, err := r.Get(context.Background(), persist.KindEngine, "eng|fp1")
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if rec.Key != "eng|fp1" || rec.CostSec != 2.5 || string(rec.Payload) != `{"arch":true}` {
		t.Fatalf("record %+v", rec)
	}
	if _, ok, err := r.Get(context.Background(), persist.KindEngine, "eng|absent"); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
	st := r.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || !st.Healthy {
		t.Fatalf("stats %+v", st)
	}
}

func TestRemoteRejectsForeignKey(t *testing.T) {
	// A tier answering with a record for a different key (a misbehaving
	// proxy, a hash collision in a foreign store) must yield an error,
	// never a silently wrong warm start.
	mux := http.NewServeMux()
	wrong, _ := persist.EncodeRecord(persist.Record{Kind: persist.KindEngine, Key: "eng|other", Payload: []byte("{}")})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) { w.Write(wrong) })
	ts := httptest.NewServer(mux)
	defer ts.Close()

	r := NewRemote(ts.URL, RemoteOptions{})
	defer r.Close()
	if _, ok, err := r.Get(context.Background(), persist.KindEngine, "eng|mine"); ok || err == nil {
		t.Fatalf("foreign record: ok=%v err=%v", ok, err)
	}
}

func TestRemoteBreakerTripsAndRecovers(t *testing.T) {
	var down atomic.Bool
	_, ts := newBlobFixture(t)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		resp, err := http.Get(ts.URL + req.URL.Path)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
	}))
	defer proxy.Close()

	clock := time.Unix(1000, 0)
	r := NewRemote(proxy.URL, RemoteOptions{
		FailThreshold: 2,
		Cooldown:      10 * time.Second,
		now:           func() time.Time { return clock },
	})
	defer r.Close()

	down.Store(true)
	ctx := context.Background()
	// Two failures trip the breaker...
	r.Get(ctx, persist.KindEngine, "eng|a")
	r.Get(ctx, persist.KindEngine, "eng|b")
	if r.Healthy() {
		t.Fatal("breaker did not trip after threshold failures")
	}
	// ...and while tripped, requests are dropped without touching the
	// network (they count as dropped, not gets).
	before := r.Stats().Gets
	if _, ok, _ := r.Get(ctx, persist.KindEngine, "eng|c"); ok {
		t.Fatal("tripped breaker returned a hit")
	}
	if got := r.Stats().Gets; got != before {
		t.Fatalf("tripped breaker still hit the network (gets %d -> %d)", before, got)
	}

	// After the cooldown, one probe goes through; with the tier healthy
	// again it resets the breaker.
	down.Store(false)
	clock = clock.Add(11 * time.Second)
	if _, ok, err := r.Get(ctx, persist.KindEngine, "eng|d"); ok || err != nil {
		t.Fatalf("probe miss expected: ok=%v err=%v", ok, err)
	}
	if !r.Healthy() {
		t.Fatal("breaker did not recover after a successful probe")
	}
}

func TestRemoteProbe(t *testing.T) {
	_, ts := newBlobFixture(t)
	r := NewRemote(ts.URL, RemoteOptions{})
	defer r.Close()
	if !r.Probe(context.Background()) {
		t.Fatal("probe against a live tier failed")
	}
	ts.Close()
	if r.Probe(context.Background()) {
		t.Fatal("probe against a dead tier succeeded")
	}
}

func TestRemoteCloseDropsLatePuts(t *testing.T) {
	_, ts := newBlobFixture(t)
	r := NewRemote(ts.URL, RemoteOptions{})
	r.Close()
	r.Put(persist.KindEngine, "eng|late", 0, func() ([]byte, error) { return []byte("{}"), nil })
	if st := r.Stats(); st.Dropped != 1 || st.Puts != 0 {
		t.Fatalf("stats after late put: %+v", st)
	}
}
