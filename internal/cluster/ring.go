package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Node is one ring member: a stable identifier (the unit of ownership)
// and the base URL other nodes reach it at.
type Node struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// DefaultVirtualNodes is the per-member virtual-node count when a Ring
// is built with vnodes <= 0. 128 points per member keeps the largest
// ownership share within a few percent of fair for small clusters while
// the ring stays tiny (a 16-node ring is 2048 points).
const DefaultVirtualNodes = 128

// Ring is a deterministic consistent-hash ring: a pure function of its
// member set and virtual-node count. Two processes given the same
// members — in any order, with any duplication — build byte-identical
// rings, so every node computes the same owner for every key without
// coordination. Immutable after New; safe for concurrent use.
type Ring struct {
	nodes  []Node   // unique members, sorted by ID
	points []uint64 // sorted vnode positions on the hash circle
	owner  []int    // owner[i] indexes nodes for points[i]
	vnodes int
}

// NewRing builds a ring from members. Duplicate IDs collapse to the
// first occurrence, order is irrelevant (members are sorted by ID), and
// vnodes <= 0 selects DefaultVirtualNodes. An empty member set yields a
// ring that owns nothing (Owner reports false).
func NewRing(members []Node, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	nodes := make([]Node, 0, len(members))
	for _, m := range members {
		if m.ID == "" || seen[m.ID] {
			continue
		}
		seen[m.ID] = true
		nodes = append(nodes, m)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	r := &Ring{nodes: nodes, vnodes: vnodes}
	type point struct {
		pos  uint64
		node int
	}
	pts := make([]point, 0, len(nodes)*vnodes)
	for ni, n := range nodes {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{hashPoint(n.ID, v), ni})
		}
	}
	// Position ties (astronomically unlikely with a 64-bit circle) break
	// by node index — deterministic because nodes are sorted by ID.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].pos != pts[j].pos {
			return pts[i].pos < pts[j].pos
		}
		return pts[i].node < pts[j].node
	})
	r.points = make([]uint64, len(pts))
	r.owner = make([]int, len(pts))
	for i, p := range pts {
		r.points[i] = p.pos
		r.owner[i] = p.node
	}
	return r
}

// hashPoint places one virtual node on the circle. The vnode index is
// folded into the hashed text (not the position) so a member's points
// are scattered, not clustered.
func hashPoint(id string, vnode int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", id, vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// hashKey places a key on the circle. Keys and vnodes share the hash
// function but not the input grammar ("key|" prefix), so a key can never
// collide with a vnode by construction.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte("key|" + key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the unique members, sorted by ID. The slice is shared;
// do not mutate.
func (r *Ring) Nodes() []Node { return r.nodes }

// Len is the unique member count.
func (r *Ring) Len() int { return len(r.nodes) }

// VirtualNodes reports the per-member virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Owner maps a key to its owning member: the first virtual node at or
// clockwise after the key's position. ok is false only for an empty
// ring.
func (r *Ring) Owner(key string) (Node, bool) {
	if len(r.points) == 0 {
		return Node{}, false
	}
	pos := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= pos })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point succeeds its last
	}
	return r.nodes[r.owner[i]], true
}

// Successors returns up to n distinct members in ownership order
// starting at the key's owner — the preference list for failover (the
// owner first, then the members whose arcs follow it).
func (r *Ring) Successors(key string, n int) []Node {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	pos := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= pos })
	out := make([]Node, 0, n)
	seen := make(map[int]bool, n)
	for step := 0; step < len(r.points) && len(out) < n; step++ {
		ni := r.owner[(i+step)%len(r.points)]
		if !seen[ni] {
			seen[ni] = true
			out = append(out, r.nodes[ni])
		}
	}
	return out
}

// Shares returns each member's exact fraction of the hash circle — the
// expected share of a uniformly hashed key population it owns. Fractions
// sum to 1 for a non-empty ring.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.nodes))
	if len(r.points) == 0 {
		return shares
	}
	const circle = float64(1<<63) * 2 // 2^64 as float64
	for i, pos := range r.points {
		// The arc ENDING at points[i] belongs to its owner; it starts at
		// the previous point (wrapping below zero for the first).
		var arc uint64
		if i == 0 {
			arc = pos + (^r.points[len(r.points)-1] + 1) // pos - last, mod 2^64
		} else {
			arc = pos - r.points[i-1]
		}
		shares[r.nodes[r.owner[i]].ID] += float64(arc) / circle
	}
	return shares
}

// ParsePeers parses a static membership list of the form
// "id=url[,id=url...]" (the -peers flag). IDs must be unique and
// non-empty; URLs must be non-empty.
func ParsePeers(s string) ([]Node, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty peers list")
	}
	var nodes []Node
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: malformed peer %q (want id=url)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		nodes = append(nodes, Node{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty peers list")
	}
	return nodes, nil
}

// EvalRouteKey derives the routing key of an evaluation request from its
// wire fields alone — no architecture resolution, so both the SDK and
// the forwarding middleware compute it identically and cheaply. Requests
// for the same (architecture source, system wrap) route to the same
// owner, which is where the engine and layer contexts are (or will be)
// cached. Returns "" for requests with no routable source (prebuilt
// in-process values); callers then skip routing.
func EvalRouteKey(macro, spec, scenario string, systemMacros int) string {
	if macro == "" && spec == "" {
		return ""
	}
	if systemMacros <= 0 {
		systemMacros = 1
	}
	return fmt.Sprintf("eval|macro=%s|spec=%s|scenario=%s|n=%d", macro, spec, scenario, systemMacros)
}
