// Package cluster turns a set of cimloop serve instances into a ring of
// cooperating nodes that share their most expensive asset: compiled
// engines and per-layer amortized contexts.
//
// Three pieces compose, each usable alone:
//
//   - Ring: a deterministic consistent-hash ring over static membership.
//     Every node builds the same ring from the same -peers list (order
//     and duplicates do not matter), so any node can compute any key's
//     owner locally — no coordinator, no gossip round. Virtual nodes
//     spread each member across the hash circle for balance, and
//     membership changes move only the departed/arrived arcs.
//
//   - BlobServer: a tiny HTTP object store speaking the persist envelope
//     format (self-describing, checksummed, fingerprint-keyed). Any
//     node's cold compile is written through to it, so every other node
//     warm-starts from one collective compile per fingerprint,
//     fleet-wide. Run it standalone (`cimloop blobd`) or point nodes at
//     any S3-alike that honors GET/PUT by name.
//
//   - Remote: the persist.Store-shaped client of a blob tier, layered as
//     L3 under the in-memory cache (L1) and the local disk store (L2).
//     Writes ride a write-behind queue off the hot path; reads carry a
//     short deadline; a circuit breaker turns a dead tier into fast
//     local misses instead of per-request timeouts, and probes it back
//     to health on a cooldown.
//
// The serving layer (internal/serve) wires these together: cache misses
// read through L3 before compiling, computed fills write through, and a
// forwarding middleware routes evaluation requests to the key's owner so
// cache-heavy work lands where the cache is warm. See docs/CLUSTER.md.
package cluster
