// Package obs is the unified observability layer: a dependency-free,
// race-safe metrics registry with Prometheus text exposition, plus
// lightweight request tracing (spans carried on context.Context) and a
// ring-buffer slow-request log.
//
// Every subsystem reports into one *Registry owned by the server; the
// /metrics endpoint and the /healthz view both read from it, so there
// is a single source of truth for operational counters.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultMaxLabelSets bounds the number of distinct label-value
// combinations a single labeled family will track. Combinations beyond
// the bound collapse into a single overflow series whose label values
// are all "other", so a misbehaving client cannot grow the scrape
// output without bound.
const DefaultMaxLabelSets = 64

// LatencyBuckets are the fixed histogram bucket bounds (seconds) used
// for every latency histogram in the server. Spanning 1ms..60s covers
// cache hits through cold multi-layer sweeps.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and scrape-time collectors. All
// methods are safe for concurrent use. Instrument handles (Counter,
// Gauge, Histogram) are cheap to update from hot paths: a counter
// increment is one atomic add.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []func(*Emit)
	dropped    atomic.Uint64 // label sets collapsed into overflow series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histograms only
	fn      func() float64

	mu       sync.Mutex
	series   map[string]*series
	order    []*series
	maxSets  int
	overflow *series
	reg      *Registry
}

type series struct {
	labelVals []string
	val       atomicFloat    // counter / gauge value
	counts    []atomic.Int64 // histogram: len(buckets)+1, last is +Inf
	sum       atomicFloat
	n         atomic.Int64
}

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

func (r *Registry) family(name, help string, k kind, labels []string, buckets []float64, fn func() float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    k,
		labels:  labels,
		buckets: buckets,
		fn:      fn,
		series:  make(map[string]*series),
		maxSets: DefaultMaxLabelSets,
		reg:     r,
	}
	r.families[name] = f
	return f
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	if len(f.labels) > 0 && len(f.series) >= f.maxSets {
		if f.overflow == nil {
			vals := make([]string, len(f.labels))
			for i := range vals {
				vals[i] = "other"
			}
			f.overflow = f.newSeries(vals)
			f.order = append(f.order, f.overflow)
		}
		f.reg.dropped.Add(1)
		return f.overflow
	}
	s := f.newSeries(append([]string(nil), values...))
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

func (f *family) newSeries(values []string) *series {
	s := &series{labelVals: values}
	if f.kind == kindHistogram {
		s.counts = make([]atomic.Int64, len(f.buckets)+1)
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Add adds v; v must be non-negative.
func (c *Counter) Add(v float64) { c.s.val.Add(v) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.s.val.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.s.val.Store(v) }

// Add adjusts the value by v (may be negative).
func (g *Gauge) Add(v float64) { g.s.val.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.s.val.Load() }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	buckets []float64
	s       *series
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.s.counts[i].Add(1)
	h.s.sum.Add(v)
	h.s.n.Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.s.n.Load() }

// Sum returns the sum of all observations so far.
func (h *Histogram) Sum() float64 { return h.s.sum.Load() }

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on
// first use; collapses into the overflow series past the cardinality
// bound).
func (v *CounterVec) With(values ...string) *Counter { return &Counter{s: v.f.get(values)} }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{s: v.f.get(values)} }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{buckets: v.f.buckets, s: v.f.get(values)}
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil, nil, nil)
	return &Counter{s: f.get(nil)}
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, labels, nil, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, labels, nil, nil)}
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindGauge, nil, nil, fn)
}

// CounterFunc registers a counter whose value is read at scrape time.
// Use it to expose an existing monotonic counter (e.g. cache hits)
// without migrating its storage.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.family(name, help, kindCounter, nil, nil, fn)
}

// Histogram registers (or fetches) an unlabeled histogram. A nil
// buckets slice means LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	f := r.family(name, help, kindHistogram, nil, buckets, nil)
	return &Histogram{buckets: f.buckets, s: f.get(nil)}
}

// HistogramVec registers (or fetches) a labeled histogram family. A
// nil buckets slice means LatencyBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return &HistogramVec{f: r.family(name, help, kindHistogram, labels, buckets, nil)}
}

// SetMaxLabelSets overrides the cardinality bound for one family.
func (r *Registry) SetMaxLabelSets(name string, n int) {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return
	}
	f.mu.Lock()
	f.maxSets = n
	f.mu.Unlock()
}

// DroppedLabelSets returns how many label-set lookups were collapsed
// into overflow series because of the cardinality bound.
func (r *Registry) DroppedLabelSets() uint64 { return r.dropped.Load() }

// Collect registers a scrape-time collector. Collectors emit snapshot
// samples (typically derived from an existing Stats() producer) that
// are merged into the text output alongside registered instruments.
func (r *Registry) Collect(fn func(*Emit)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Emit receives samples from a collector during a scrape.
type Emit struct {
	fams map[string]*emitFamily
	ord  []*emitFamily
}

type emitFamily struct {
	name    string
	help    string
	kind    kind
	samples []emitSample
}

type emitSample struct {
	labels []string // alternating key, value
	val    float64
}

func (e *Emit) add(name, help string, k kind, val float64, labels []string) {
	if len(labels)%2 != 0 {
		panic("obs: Emit labels must be key/value pairs")
	}
	f, ok := e.fams[name]
	if !ok {
		f = &emitFamily{name: name, help: help, kind: k}
		e.fams[name] = f
		e.ord = append(e.ord, f)
	}
	f.samples = append(f.samples, emitSample{labels: append([]string(nil), labels...), val: val})
}

// Counter emits one counter sample. labels alternate key, value.
func (e *Emit) Counter(name, help string, val float64, labels ...string) {
	e.add(name, help, kindCounter, val, labels)
}

// Gauge emits one gauge sample. labels alternate key, value.
func (e *Emit) Gauge(name, help string, val float64, labels ...string) {
	e.add(name, help, kindGauge, val, labels)
}

// WriteText renders the registry in Prometheus text exposition format:
// families sorted by name, each with # HELP and # TYPE lines, series
// in creation order, histograms expanded into cumulative _bucket /
// _sum / _count series.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	collectors := append(make([]func(*Emit), 0, len(r.collectors)), r.collectors...)
	r.mu.RUnlock()

	e := &Emit{fams: make(map[string]*emitFamily)}
	for _, fn := range collectors {
		fn(e)
	}

	type block struct {
		name string
		text string
	}
	blocks := make([]block, 0, len(fams)+len(e.ord))
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.writeText(&b)
		blocks = append(blocks, block{f.name, b.String()})
	}
	for _, ef := range e.ord {
		b.Reset()
		ef.writeText(&b)
		blocks = append(blocks, block{ef.name, b.String()})
	}
	if n := r.dropped.Load(); n > 0 {
		blocks = append(blocks, block{
			"obs_label_sets_dropped_total",
			"# HELP obs_label_sets_dropped_total Label sets collapsed into overflow series by the cardinality bound.\n" +
				"# TYPE obs_label_sets_dropped_total counter\n" +
				"obs_label_sets_dropped_total " + formatFloat(float64(n)) + "\n",
		})
	}
	sort.SliceStable(blocks, func(i, j int) bool { return blocks[i].name < blocks[j].name })
	for _, blk := range blocks {
		if _, err := io.WriteString(w, blk.text); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(b *strings.Builder) {
	writeHeader(b, f.name, f.help, f.kind)
	if f.fn != nil {
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(f.fn()))
		b.WriteByte('\n')
		return
	}
	f.mu.Lock()
	order := append([]*series(nil), f.order...)
	f.mu.Unlock()
	for _, s := range order {
		switch f.kind {
		case kindHistogram:
			var cum int64
			for i, bound := range f.buckets {
				cum += s.counts[i].Load()
				writeSample(b, f.name+"_bucket", f.labels, s.labelVals, "le", formatFloat(bound), float64(cum))
			}
			cum += s.counts[len(f.buckets)].Load()
			writeSample(b, f.name+"_bucket", f.labels, s.labelVals, "le", "+Inf", float64(cum))
			writeSample(b, f.name+"_sum", f.labels, s.labelVals, "", "", s.sum.Load())
			writeSample(b, f.name+"_count", f.labels, s.labelVals, "", "", float64(s.n.Load()))
		default:
			writeSample(b, f.name, f.labels, s.labelVals, "", "", s.val.Load())
		}
	}
}

func (f *emitFamily) writeText(b *strings.Builder) {
	writeHeader(b, f.name, f.help, f.kind)
	for _, s := range f.samples {
		b.WriteString(f.name)
		if len(s.labels) > 0 {
			b.WriteByte('{')
			for i := 0; i < len(s.labels); i += 2 {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(s.labels[i])
				b.WriteString(`="`)
				b.WriteString(escapeLabel(s.labels[i+1]))
				b.WriteByte('"')
			}
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(formatFloat(s.val))
		b.WriteByte('\n')
	}
}

func writeHeader(b *strings.Builder, name, help string, k kind) {
	if help != "" {
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(k.String())
	b.WriteByte('\n')
}

func writeSample(b *strings.Builder, name string, labels, values []string, extraKey, extraVal string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		b.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraKey != "" {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry as Prometheus
// text format (version 0.0.4).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
