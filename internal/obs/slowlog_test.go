package obs

import (
	"fmt"
	"testing"
	"time"
)

// TestSlowLogEvictionOrder fills the ring past capacity and checks that
// the oldest entries are evicted and Snapshot returns newest first.
func TestSlowLogEvictionOrder(t *testing.T) {
	l := NewSlowLog(3, 0)
	for i := 0; i < 5; i++ {
		ok := l.Record(SlowEntry{Route: fmt.Sprintf("r%d", i), DurationSec: float64(i)})
		if !ok {
			t.Fatalf("entry %d not recorded", i)
		}
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []string{"r4", "r3", "r2"} {
		if got[i].Route != want {
			t.Errorf("snapshot[%d] = %s, want %s (newest first)", i, got[i].Route, want)
		}
	}
	if l.Recorded() != 5 {
		t.Errorf("Recorded = %d, want 5", l.Recorded())
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
}

func TestSlowLogPartialFill(t *testing.T) {
	l := NewSlowLog(8, 0)
	l.Record(SlowEntry{Route: "a"})
	l.Record(SlowEntry{Route: "b"})
	got := l.Snapshot()
	if len(got) != 2 || got[0].Route != "b" || got[1].Route != "a" {
		t.Errorf("snapshot = %v", got)
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(4, 100*time.Millisecond)
	if l.Record(SlowEntry{Route: "fast", DurationSec: 0.05}) {
		t.Error("sub-threshold entry recorded")
	}
	if !l.Record(SlowEntry{Route: "slow", DurationSec: 0.2}) {
		t.Error("above-threshold entry dropped")
	}
	if !l.Record(SlowEntry{Route: "exact", DurationSec: 0.1}) {
		t.Error("at-threshold entry dropped (threshold is inclusive)")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	// Negative threshold disables recording.
	off := NewSlowLog(4, -1)
	if off.Record(SlowEntry{Route: "x", DurationSec: 10}) {
		t.Error("disabled log recorded an entry")
	}
}

func TestSlowLogRecordSpan(t *testing.T) {
	l := NewSlowLog(2, 0)
	sp := NewSpan("POST /v1/evaluate")
	sp.Tenant = "team-a"
	sp.SetTag("base/toy")
	sp.Observe("search", 40*time.Millisecond)
	sp.SetError("boom")
	if !l.RecordSpan(sp, 50*time.Millisecond) {
		t.Fatal("span not recorded")
	}
	e := l.Snapshot()[0]
	if e.Route != "POST /v1/evaluate" || e.Tenant != "team-a" || e.Tag != "base/toy" || e.Error != "boom" {
		t.Errorf("entry = %+v", e)
	}
	if e.DurationSec != 0.05 {
		t.Errorf("duration = %v", e.DurationSec)
	}
	if len(e.Phases) != 1 || e.Phases[0].Phase != "search" {
		t.Errorf("phases = %v", e.Phases)
	}
	var nilLog *SlowLog
	if nilLog.RecordSpan(sp, time.Second) {
		t.Error("nil log recorded")
	}
	if nilLog.Snapshot() != nil || nilLog.Len() != 0 || nilLog.Recorded() != 0 {
		t.Error("nil log should report zero values")
	}
}
