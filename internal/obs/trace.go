package obs

import (
	"context"
	"sync"
	"time"
)

// PhaseTiming is one named phase of a traced request and the total
// time spent in it. Phases accumulate: a sweep item that searches five
// layers records one "search" phase holding the sum.
type PhaseTiming struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// Span is a lightweight trace of one request (an HTTP request or one
// sweep item). It is carried on context.Context through serve → jobs →
// core → mapper → persist → cluster; layers below serve never import
// it directly — they just pass the context and serve-side wrappers
// attribute the time. All methods are safe for concurrent use and
// nil-safe, so code paths without a span pay one nil check.
type Span struct {
	Route  string // bounded route or operation name, e.g. "POST /v1/sweep"
	Tenant string // tenant ID, "" when tenancy is off

	start time.Time

	mu     sync.Mutex
	tag    string
	errMsg string
	order  []string
	phases map[string]float64
}

// NewSpan starts a span for the given route/operation.
func NewSpan(route string) *Span {
	return &Span{Route: route, start: time.Now(), phases: make(map[string]float64, 6)}
}

// Start returns when the span began.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// SetTag attaches a request-specific detail (e.g. the evaluation tag
// "macro/network/scenario") for the slow log.
func (s *Span) SetTag(tag string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tag = tag
	s.mu.Unlock()
}

// SetError records the terminal error message, if any.
func (s *Span) SetError(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.mu.Lock()
	s.errMsg = msg
	s.mu.Unlock()
}

// Observe adds d to the named phase.
func (s *Span) Observe(phase string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if _, ok := s.phases[phase]; !ok {
		s.order = append(s.order, phase)
	}
	s.phases[phase] += d.Seconds()
	s.mu.Unlock()
}

// Phases returns the accumulated phase timings in first-observed order.
func (s *Span) Phases() []PhaseTiming {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PhaseTiming, 0, len(s.order))
	for _, p := range s.order {
		out = append(out, PhaseTiming{Phase: p, Seconds: s.phases[p]})
	}
	return out
}

// Phase returns the accumulated seconds for one phase.
func (s *Span) Phase(name string) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.phases[name]
}

// Tag returns the request detail set with SetTag.
func (s *Span) Tag() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tag
}

// Err returns the error message set with SetError.
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errMsg
}

type spanKey struct{}

// ContextWith returns a context carrying the span.
func ContextWith(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ObservePhase adds d to the named phase of the span on ctx, if any.
func ObservePhase(ctx context.Context, phase string, d time.Duration) {
	FromContext(ctx).Observe(phase, d)
}

// Timed starts timing a phase on the span carried by ctx and returns a
// stop function:
//
//	defer obs.Timed(ctx, "compile")()
func Timed(ctx context.Context, phase string) func() {
	s := FromContext(ctx)
	if s == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { s.Observe(phase, time.Since(t0)) }
}
