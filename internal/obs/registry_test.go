package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestObsTextGolden pins the Prometheus text exposition byte-for-byte.
// A registry populated with every instrument shape must render exactly
// testdata/registry.golden.txt; regenerate deliberately with:
//
//	go test ./internal/obs -run Golden -update
func TestObsTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Total requests.").Add(3)
	r.CounterVec("demo_dispatches_total", "Dispatches by tenant.", "tenant").With("team-a").Add(5)
	r.CounterVec("demo_dispatches_total", "Dispatches by tenant.", "tenant").With("team-b").Add(2)
	r.Gauge("demo_queue_depth", "Jobs queued.").Set(4)
	r.GaugeVec("demo_share", "Share by tenant and class.", "tenant", "class").With("team-a", "batch").Set(0.25)
	r.GaugeFunc("demo_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	r.CounterFunc("demo_hits_total", "Cache hits.", func() float64 { return 42 })
	h := r.Histogram("demo_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(2)
	hv := r.HistogramVec("demo_phase_seconds", "Phase latency.", []float64{0.1, 1}, "phase")
	hv.With("search").Observe(0.5)
	hv.With("compile").Observe(0.01)
	r.Collect(func(e *Emit) {
		e.Counter("demo_collected_total", "Collector-sourced counter.", 7, "tenant", "team-a")
		e.Gauge("demo_collected_gauge", "Collector-sourced gauge.", 1.5)
	})

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	golden := filepath.Join("testdata", "registry.golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("text output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestObsConcurrentInstruments hammers every instrument kind from many
// goroutines; under -race this is the data-race property test, and the
// final values must be exact (no lost updates).
func TestObsConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	vec := r.CounterVec("cv_total", "", "k")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5})
	hv := r.HistogramVec("hv_seconds", "", []float64{0.5}, "k")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				vec.With("a").Inc()
				vec.With("b").Add(2)
				g.Add(1)
				h.Observe(0.25)
				h.Observe(0.75)
				hv.With("a").Observe(0.25)
			}
		}(w)
	}
	wg.Wait()

	total := float64(workers * perWorker)
	if got := c.Value(); got != total {
		t.Errorf("counter = %v, want %v", got, total)
	}
	if got := vec.With("a").Value(); got != total {
		t.Errorf("vec[a] = %v, want %v", got, total)
	}
	if got := vec.With("b").Value(); got != 2*total {
		t.Errorf("vec[b] = %v, want %v", got, 2*total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %v, want %v", got, total)
	}
	if got := h.Count(); got != int64(2*total) {
		t.Errorf("histogram count = %v, want %v", got, 2*total)
	}
	if got := h.Sum(); got != total*(0.25+0.75) {
		t.Errorf("histogram sum = %v, want %v", got, total)
	}
	if got := hv.With("a").Count(); got != int64(total) {
		t.Errorf("histogram vec count = %v, want %v", got, total)
	}
}

// TestObsConcurrentScrape interleaves updates with scrapes to make the
// race detector cover the encode path too.
func TestObsConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("s_total", "", "k")
	r.Collect(func(e *Emit) { e.Gauge("s_gauge", "", 1) })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				vec.With(string(rune('a' + i%4))).Inc()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestObsLabelCardinalityBound checks that a labeled family stops
// minting series at the bound and collapses the excess into a single
// {k="other"} overflow series, counted in DroppedLabelSets.
func TestObsLabelCardinalityBound(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("bound_total", "", "k")
	r.SetMaxLabelSets("bound_total", 3)
	for i := 0; i < 10; i++ {
		vec.With(strings.Repeat("x", i+1)).Inc()
	}
	if got := r.DroppedLabelSets(); got != 7 {
		t.Errorf("DroppedLabelSets = %d, want 7", got)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 3 real series + the overflow series; nothing beyond.
	if got := strings.Count(out, "bound_total{"); got != 4 {
		t.Errorf("series count = %d, want 4 (3 + overflow)\n%s", got, out)
	}
	if !strings.Contains(out, `bound_total{k="other"} 7`) {
		t.Errorf("missing overflow series:\n%s", out)
	}
	if !strings.Contains(out, "obs_label_sets_dropped_total 7") {
		t.Errorf("missing dropped-label-sets self metric:\n%s", out)
	}
}

func TestObsReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "help")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Errorf("re-registered counter should share storage, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different kind should panic")
		}
	}()
	r.Gauge("same_total", "help")
}

func TestObsLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "k").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{k="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("escaped label missing; got:\n%s", buf.String())
	}
}

func TestObsHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", "", []float64{1, 2})
	h.Observe(1) // exactly on a bound counts into that bucket (le semantics)
	h.Observe(3) // above all bounds lands only in +Inf
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`edge_seconds_bucket{le="1"} 1`,
		`edge_seconds_bucket{le="2"} 1`,
		`edge_seconds_bucket{le="+Inf"} 2`,
		`edge_seconds_count 2`,
		`edge_seconds_sum 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
