package obs

import (
	"sync"
	"time"
)

// SlowEntry is one finished request captured by the slow log. It is
// part of the wire contract (returned verbatim by /v1/debug/slow).
type SlowEntry struct {
	Route       string        `json:"route"`
	Tag         string        `json:"tag,omitempty"`
	Tenant      string        `json:"tenant,omitempty"`
	Start       time.Time     `json:"start"`
	DurationSec float64       `json:"duration_sec"`
	Phases      []PhaseTiming `json:"phases,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of the most recent requests
// at or above a duration threshold. A threshold of zero records every
// finished span, which keeps /v1/debug/slow useful out of the box; a
// negative threshold disables recording entirely.
type SlowLog struct {
	threshold time.Duration

	mu       sync.Mutex
	buf      []SlowEntry
	next     int
	filled   bool
	recorded uint64
}

// NewSlowLog returns a ring of the given capacity (minimum 1 when
// capacity <= 0 is given) and threshold.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 1
	}
	return &SlowLog{buf: make([]SlowEntry, capacity), threshold: threshold}
}

// Threshold returns the recording threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// RecordSpan captures a finished span with the given total duration.
// It returns whether the entry was recorded.
func (l *SlowLog) RecordSpan(s *Span, d time.Duration) bool {
	if l == nil || s == nil {
		return false
	}
	return l.Record(SlowEntry{
		Route:       s.Route,
		Tag:         s.Tag(),
		Tenant:      s.Tenant,
		Start:       s.Start(),
		DurationSec: d.Seconds(),
		Phases:      s.Phases(),
		Error:       s.Err(),
	})
}

// Record inserts one entry, evicting the oldest once the ring is full.
func (l *SlowLog) Record(e SlowEntry) bool {
	if l == nil || l.threshold < 0 || e.DurationSec < l.threshold.Seconds() {
		return false
	}
	l.mu.Lock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.filled = true
	}
	l.recorded++
	l.mu.Unlock()
	return true
}

// Snapshot returns the retained entries, newest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = len(l.buf)
	}
	out := make([]SlowEntry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

// Recorded returns the total number of entries ever recorded,
// including ones since evicted from the ring.
func (l *SlowLog) Recorded() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recorded
}

// Len returns how many entries the ring currently retains.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filled {
		return len(l.buf)
	}
	return l.next
}
