package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanPhasesAccumulate(t *testing.T) {
	sp := NewSpan("POST /v1/sweep")
	sp.Observe("search", 100*time.Millisecond)
	sp.Observe("compile", 50*time.Millisecond)
	sp.Observe("search", 200*time.Millisecond)
	got := sp.Phases()
	if len(got) != 2 {
		t.Fatalf("phases = %v, want 2 entries", got)
	}
	// First-observed order, accumulated totals.
	if got[0].Phase != "search" || got[1].Phase != "compile" {
		t.Errorf("order = %v, want search then compile", got)
	}
	if diff := got[0].Seconds - 0.3; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("search total = %v, want 0.3", got[0].Seconds)
	}
	if sp.Phase("compile") != 0.05 {
		t.Errorf("Phase(compile) = %v", sp.Phase("compile"))
	}
}

func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	sp.Observe("x", time.Second) // must not panic
	sp.SetTag("t")
	sp.SetError("e")
	if sp.Phases() != nil || sp.Tag() != "" || sp.Err() != "" || sp.Phase("x") != 0 {
		t.Error("nil span should report zero values")
	}
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Error("FromContext on bare ctx should be nil")
	}
	ObservePhase(ctx, "x", time.Second) // no-op
	Timed(ctx, "x")()                   // no-op
}

func TestSpanContextRoundTrip(t *testing.T) {
	sp := NewSpan("op")
	ctx := ContextWith(context.Background(), sp)
	if FromContext(ctx) != sp {
		t.Fatal("span lost on context round trip")
	}
	ObservePhase(ctx, "queue", 10*time.Millisecond)
	stop := Timed(ctx, "work")
	stop()
	if sp.Phase("queue") != 0.01 {
		t.Errorf("queue = %v", sp.Phase("queue"))
	}
	if len(sp.Phases()) != 2 {
		t.Errorf("phases = %v", sp.Phases())
	}
}

func TestSpanConcurrent(t *testing.T) {
	sp := NewSpan("op")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp.Observe(fmt.Sprintf("p%d", w%3), time.Millisecond)
				_ = sp.Phases()
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for _, p := range sp.Phases() {
		total += p.Seconds
	}
	want := 8 * 500 * 0.001
	if diff := total - want; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("total = %v, want %v", total, want)
	}
}
