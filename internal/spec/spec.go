// Package spec implements CiMLoop's flexible specification (paper §III-B):
// a container-hierarchy that describes circuits and architecture in one
// representation, with per-component, per-tensor data movement and reuse
// directives.
//
// A specification is a tree of Containers holding Components. Each
// Component declares, for each tensor (Inputs, Weights, Outputs), one of
// the paper's reuse directives:
//
//   - Bypass (default: the tensor does not touch this component)
//   - TemporalReuse (the component stores the tensor across cycles)
//   - Coalesce (no temporal reuse, but multiple accesses of the same value
//     merge into one access of backing storage — e.g. an adder's output)
//   - NoCoalesce (no temporal reuse and no merging — e.g. a DAC: every use
//     refetches from backing storage)
//
// Containers (and components, as shorthand) may declare a spatial mesh and
// per-tensor spatial reuse: a spatially reused tensor is multicast (inputs/
// weights) or reduced (outputs) across instances; otherwise it is unicast.
//
// Flatten converts the tree into the ordered list of levels the mapping
// analysis consumes.
package spec

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// Directive is a per-tensor data movement/reuse declaration.
type Directive int

// The reuse directives of the paper's specification.
const (
	Bypass Directive = iota
	TemporalReuse
	Coalesce
	NoCoalesce
)

// String returns the YAML-style directive name.
func (d Directive) String() string {
	switch d {
	case Bypass:
		return "bypass"
	case TemporalReuse:
		return "temporal_reuse"
	case Coalesce:
		return "coalesce"
	case NoCoalesce:
		return "no_coalesce"
	}
	return fmt.Sprintf("Directive(%d)", int(d))
}

// Component is a leaf of the hierarchy: anything that may move or reuse
// data, from an SRAM bitcell to a DRAM channel (paper's definition).
type Component struct {
	Name  string
	Class string // circuit class, e.g. "adc", "dac", "sram-buffer"
	// Attrs carries class-specific attributes (resolution, capacity...).
	Attrs map[string]float64
	// Directives maps each tensor to its reuse directive; missing tensors
	// bypass the component.
	Directives map[tensor.Kind]Directive
	// MeshX and MeshY replicate the component spatially (shorthand for an
	// enclosing single-child container). Zero means 1.
	MeshX, MeshY int
	// SpatialReuse marks tensors reused (multicast/reduced) across this
	// component's own mesh.
	SpatialReuse map[tensor.Kind]bool
	// IsCompute marks the component that performs MAC operations (the
	// memory cell or MAC unit). Exactly one per specification.
	IsCompute bool
}

// Container groups components and sub-containers; children are ordered
// outermost-first, as in the paper's YAML (each entry contains all
// subsequent entries).
type Container struct {
	Name         string
	MeshX, MeshY int
	SpatialReuse map[tensor.Kind]bool
	Children     []Node
}

// Node is either a *Component or a *Container.
type Node interface {
	nodeName() string
}

func (c *Component) nodeName() string { return c.Name }
func (c *Container) nodeName() string { return c.Name }

// mesh returns the resolved instance count of a (meshX, meshY) pair.
func mesh(x, y int) int {
	if x <= 0 {
		x = 1
	}
	if y <= 0 {
		y = 1
	}
	return x * y
}

// allTensors lists the three tensor roles.
var allTensors = []tensor.Kind{tensor.Input, tensor.Weight, tensor.Output}

// Validate checks structural invariants of the hierarchy: unique names,
// sane meshes and directives, and exactly one compute component.
func Validate(root *Container) error {
	if root == nil {
		return errors.New("spec: nil hierarchy")
	}
	names := make(map[string]bool)
	computeCount := 0
	var walk func(n Node) error
	walk = func(n Node) error {
		name := n.nodeName()
		if name == "" {
			return errors.New("spec: node with empty name")
		}
		if names[name] {
			return fmt.Errorf("spec: duplicate node name %q", name)
		}
		names[name] = true
		switch v := n.(type) {
		case *Container:
			if v.MeshX < 0 || v.MeshY < 0 {
				return fmt.Errorf("spec: container %q has negative mesh", name)
			}
			if len(v.Children) == 0 {
				return fmt.Errorf("spec: container %q has no children", name)
			}
			for _, c := range v.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
		case *Component:
			if v.Class == "" {
				return fmt.Errorf("spec: component %q has no class", name)
			}
			if v.MeshX < 0 || v.MeshY < 0 {
				return fmt.Errorf("spec: component %q has negative mesh", name)
			}
			hasDirective := false
			for k, d := range v.Directives {
				if d < Bypass || d > NoCoalesce {
					return fmt.Errorf("spec: component %q has invalid directive %d for %s", name, d, k)
				}
				if d != Bypass {
					hasDirective = true
				}
			}
			if v.IsCompute {
				computeCount++
			} else if !hasDirective {
				return fmt.Errorf("spec: component %q touches no tensor (all bypass)", name)
			}
			for k := range v.SpatialReuse {
				if k != tensor.Input && k != tensor.Weight && k != tensor.Output {
					return fmt.Errorf("spec: component %q spatial reuse on unknown tensor %d", name, k)
				}
			}
		default:
			return fmt.Errorf("spec: unknown node type %T", n)
		}
		return nil
	}
	if err := walk(root); err != nil {
		return err
	}
	if computeCount != 1 {
		return fmt.Errorf("spec: need exactly one compute component, found %d", computeCount)
	}
	return nil
}

// LevelKind classifies flattened hierarchy levels.
type LevelKind int

// Level kinds produced by Flatten.
const (
	// SpatialLevel is a fan-out point: Mesh instances of everything inside.
	SpatialLevel LevelKind = iota
	// StorageLevel stores at least one tensor across cycles.
	StorageLevel
	// TransitLevel processes tensors without temporal reuse (DACs, ADCs,
	// adders); actions are counted per value crossing it.
	TransitLevel
	// ComputeLevel is the MAC-performing component (innermost).
	ComputeLevel
)

// String names the level kind.
func (k LevelKind) String() string {
	switch k {
	case SpatialLevel:
		return "spatial"
	case StorageLevel:
		return "storage"
	case TransitLevel:
		return "transit"
	case ComputeLevel:
		return "compute"
	}
	return fmt.Sprintf("LevelKind(%d)", int(k))
}

// Level is one entry of the flattened hierarchy, ordered outermost-first.
type Level struct {
	Name  string
	Kind  LevelKind
	Class string
	Attrs map[string]float64
	// Keeps marks tensors stored at this level (TemporalReuse), including
	// output accumulation.
	Keeps map[tensor.Kind]bool
	// Transits marks tensors processed transiently.
	Transits map[tensor.Kind]bool
	// CoalesceT marks which transiting tensors coalesce.
	CoalesceT map[tensor.Kind]bool
	// Mesh is the instance fan-out (SpatialLevel only; 1 otherwise).
	Mesh int
	// MeshX and MeshY are the fan-out's dimensions (Mesh = X*Y).
	MeshX, MeshY int
	// SpatialReuse marks tensors multicast/reduced across the mesh.
	SpatialReuse map[tensor.Kind]bool
}

// KeepsTensor reports whether the level stores t.
func (l *Level) KeepsTensor(t tensor.Kind) bool { return l.Keeps[t] }

// Flatten validates the hierarchy and converts it into the ordered level
// list, outermost first, ending at the compute level. Component meshes are
// expanded into explicit spatial levels.
func Flatten(root *Container) ([]Level, error) {
	if err := Validate(root); err != nil {
		return nil, err
	}
	var levels []Level
	var walk func(n Node) error
	walk = func(n Node) error {
		switch v := n.(type) {
		case *Container:
			if m := mesh(v.MeshX, v.MeshY); m > 1 {
				levels = append(levels, Level{
					Name:         v.Name,
					Kind:         SpatialLevel,
					Mesh:         m,
					MeshX:        maxInt(v.MeshX, 1),
					MeshY:        maxInt(v.MeshY, 1),
					SpatialReuse: copyReuse(v.SpatialReuse),
				})
			}
			for _, c := range v.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
		case *Component:
			if m := mesh(v.MeshX, v.MeshY); m > 1 {
				levels = append(levels, Level{
					Name:         v.Name + ".mesh",
					Kind:         SpatialLevel,
					Mesh:         m,
					MeshX:        maxInt(v.MeshX, 1),
					MeshY:        maxInt(v.MeshY, 1),
					SpatialReuse: copyReuse(v.SpatialReuse),
				})
			}
			lv := Level{
				Name:      v.Name,
				Class:     v.Class,
				Attrs:     copyAttrs(v.Attrs),
				Keeps:     map[tensor.Kind]bool{},
				Transits:  map[tensor.Kind]bool{},
				CoalesceT: map[tensor.Kind]bool{},
				Mesh:      1,
				MeshX:     1,
				MeshY:     1,
			}
			for _, t := range allTensors {
				switch v.Directives[t] {
				case TemporalReuse:
					lv.Keeps[t] = true
				case Coalesce:
					lv.Transits[t] = true
					lv.CoalesceT[t] = true
				case NoCoalesce:
					lv.Transits[t] = true
				}
			}
			switch {
			case v.IsCompute:
				lv.Kind = ComputeLevel
			case len(lv.Keeps) > 0:
				lv.Kind = StorageLevel
			default:
				lv.Kind = TransitLevel
			}
			levels = append(levels, lv)
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	// The compute component must be innermost.
	if levels[len(levels)-1].Kind != ComputeLevel {
		return nil, errors.New("spec: compute component must be the innermost node")
	}
	for _, l := range levels[:len(levels)-1] {
		if l.Kind == ComputeLevel {
			return nil, errors.New("spec: compute component must be the innermost node")
		}
	}
	return levels, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func copyReuse(m map[tensor.Kind]bool) map[tensor.Kind]bool {
	out := make(map[tensor.Kind]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = true
		}
	}
	return out
}

func copyAttrs(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
