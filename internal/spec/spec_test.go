package spec

import (
	"testing"

	"repro/internal/tensor"
)

// paperMacro builds the Fig. 5a/5b example system: buffer, macro with
// adder + DAC bank, two columns each with an ADC and two memory cells.
func paperMacro() *Container {
	return &Container{
		Name: "system",
		Children: []Node{
			&Component{
				Name: "buffer", Class: "sram-buffer",
				Directives: map[tensor.Kind]Directive{
					tensor.Input:  TemporalReuse,
					tensor.Output: TemporalReuse,
				},
			},
			&Container{
				Name: "macro",
				Children: []Node{
					&Component{
						Name: "adder", Class: "digital-adder",
						Directives: map[tensor.Kind]Directive{tensor.Output: Coalesce},
					},
					&Component{
						Name: "dac_bank", Class: "dac",
						Directives: map[tensor.Kind]Directive{tensor.Input: NoCoalesce},
					},
					&Container{
						Name:         "column",
						MeshX:        2,
						SpatialReuse: map[tensor.Kind]bool{tensor.Input: true},
						Children: []Node{
							&Component{
								Name: "adc", Class: "adc",
								Directives: map[tensor.Kind]Directive{tensor.Output: NoCoalesce},
							},
							&Component{
								Name: "memory_cell", Class: "sram-cell",
								MeshY:        2,
								SpatialReuse: map[tensor.Kind]bool{tensor.Output: true},
								Directives:   map[tensor.Kind]Directive{tensor.Weight: TemporalReuse},
								IsCompute:    true,
							},
						},
					},
				},
			},
		},
	}
}

func TestValidateAcceptsPaperExample(t *testing.T) {
	if err := Validate(paperMacro()); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenPaperExample(t *testing.T) {
	levels, err := Flatten(paperMacro())
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"buffer", "adder", "dac_bank", "column", "adc", "memory_cell.mesh", "memory_cell"}
	if len(levels) != len(wantNames) {
		t.Fatalf("got %d levels, want %d: %+v", len(levels), len(wantNames), levels)
	}
	for i, w := range wantNames {
		if levels[i].Name != w {
			t.Errorf("level %d = %q, want %q", i, levels[i].Name, w)
		}
	}
	if levels[0].Kind != StorageLevel || !levels[0].Keeps[tensor.Input] || !levels[0].Keeps[tensor.Output] {
		t.Errorf("buffer level wrong: %+v", levels[0])
	}
	if levels[0].Keeps[tensor.Weight] {
		t.Error("buffer must bypass weights")
	}
	if levels[1].Kind != TransitLevel || !levels[1].CoalesceT[tensor.Output] {
		t.Errorf("adder level wrong: %+v", levels[1])
	}
	if levels[2].Kind != TransitLevel || levels[2].CoalesceT[tensor.Input] || !levels[2].Transits[tensor.Input] {
		t.Errorf("dac level wrong: %+v", levels[2])
	}
	if levels[3].Kind != SpatialLevel || levels[3].Mesh != 2 || !levels[3].SpatialReuse[tensor.Input] {
		t.Errorf("column level wrong: %+v", levels[3])
	}
	if levels[5].Kind != SpatialLevel || levels[5].Mesh != 2 || !levels[5].SpatialReuse[tensor.Output] {
		t.Errorf("cell mesh level wrong: %+v", levels[5])
	}
	if levels[6].Kind != ComputeLevel || !levels[6].Keeps[tensor.Weight] {
		t.Errorf("compute level wrong: %+v", levels[6])
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Error("want error for nil root")
	}

	dup := paperMacro()
	dup.Children[0].(*Component).Name = "macro"
	if err := Validate(dup); err == nil {
		t.Error("want error for duplicate name")
	}

	noCompute := paperMacro()
	cells := noCompute.Children[1].(*Container).Children[2].(*Container).Children[1].(*Component)
	cells.IsCompute = false
	if err := Validate(noCompute); err == nil {
		t.Error("want error for missing compute")
	}

	twoCompute := paperMacro()
	twoCompute.Children[1].(*Container).Children[1].(*Component).IsCompute = true
	if err := Validate(twoCompute); err == nil {
		t.Error("want error for two computes")
	}

	noClass := paperMacro()
	noClass.Children[0].(*Component).Class = ""
	if err := Validate(noClass); err == nil {
		t.Error("want error for missing class")
	}

	allBypass := paperMacro()
	allBypass.Children[0].(*Component).Directives = nil
	if err := Validate(allBypass); err == nil {
		t.Error("want error for component touching nothing")
	}

	emptyName := paperMacro()
	emptyName.Children[0].(*Component).Name = ""
	if err := Validate(emptyName); err == nil {
		t.Error("want error for empty name")
	}

	negMesh := paperMacro()
	negMesh.Children[1].(*Container).Children[2].(*Container).MeshX = -1
	if err := Validate(negMesh); err == nil {
		t.Error("want error for negative mesh")
	}

	emptyContainer := &Container{Name: "x"}
	if err := Validate(emptyContainer); err == nil {
		t.Error("want error for empty container")
	}

	badDirective := paperMacro()
	badDirective.Children[0].(*Component).Directives[tensor.Input] = Directive(99)
	if err := Validate(badDirective); err == nil {
		t.Error("want error for invalid directive")
	}
}

func TestFlattenRequiresComputeInnermost(t *testing.T) {
	root := &Container{
		Name: "sys",
		Children: []Node{
			&Component{Name: "cell", Class: "sram-cell",
				Directives: map[tensor.Kind]Directive{tensor.Weight: TemporalReuse}, IsCompute: true},
			&Component{Name: "buffer", Class: "sram-buffer",
				Directives: map[tensor.Kind]Directive{tensor.Input: TemporalReuse}},
		},
	}
	if _, err := Flatten(root); err == nil {
		t.Fatal("want error when compute is not innermost")
	}
}

func TestDirectiveAndKindStrings(t *testing.T) {
	for d, want := range map[Directive]string{
		Bypass: "bypass", TemporalReuse: "temporal_reuse",
		Coalesce: "coalesce", NoCoalesce: "no_coalesce",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
	if Directive(42).String() == "" {
		t.Error("unknown directive should still render")
	}
	for k, want := range map[LevelKind]string{
		SpatialLevel: "spatial", StorageLevel: "storage",
		TransitLevel: "transit", ComputeLevel: "compute",
	} {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
	if LevelKind(42).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestFlattenCopiesAttrs(t *testing.T) {
	root := paperMacro()
	comp := root.Children[1].(*Container).Children[1].(*Component)
	comp.Attrs = map[string]float64{"resolution": 8}
	levels, err := Flatten(root)
	if err != nil {
		t.Fatal(err)
	}
	var dacLevel *Level
	for i := range levels {
		if levels[i].Name == "dac_bank" {
			dacLevel = &levels[i]
		}
	}
	if dacLevel == nil || dacLevel.Attrs["resolution"] != 8 {
		t.Fatal("attrs not propagated")
	}
	comp.Attrs["resolution"] = 4
	if dacLevel.Attrs["resolution"] != 8 {
		t.Fatal("attrs must be copied, not aliased")
	}
}

func TestMeshDefaults(t *testing.T) {
	// Mesh of (0,0) means a single instance: no spatial level emitted.
	root := &Container{
		Name: "sys",
		Children: []Node{
			&Component{Name: "buf", Class: "sram-buffer",
				Directives: map[tensor.Kind]Directive{tensor.Input: TemporalReuse}},
			&Component{Name: "cell", Class: "sram-cell",
				Directives: map[tensor.Kind]Directive{tensor.Weight: TemporalReuse}, IsCompute: true},
		},
	}
	levels, err := Flatten(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 {
		t.Fatalf("got %d levels, want 2", len(levels))
	}
	for _, l := range levels {
		if l.Kind == SpatialLevel {
			t.Error("no spatial level expected for mesh 1")
		}
	}
}

func TestKeepsTensor(t *testing.T) {
	levels, err := Flatten(paperMacro())
	if err != nil {
		t.Fatal(err)
	}
	if !levels[0].KeepsTensor(tensor.Input) || levels[0].KeepsTensor(tensor.Weight) {
		t.Fatal("KeepsTensor wrong")
	}
}
