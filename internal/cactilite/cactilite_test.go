package cactilite

import (
	"testing"
	"testing/quick"

	"repro/internal/tech"
)

func node(t *testing.T, nm int) tech.Node {
	t.Helper()
	n, err := tech.ByNm(nm)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBufferBasics(t *testing.T) {
	n := node(t, 65)
	b, err := NewBuffer("gb", 64*8192, 64, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "gb" || b.CapacityBits() != 64*8192 || b.WordBits() != 64 {
		t.Fatalf("accessors wrong: %s %d %d", b.Name(), b.CapacityBits(), b.WordBits())
	}
	if b.ReadEnergyPerBit() <= 0 || b.WriteEnergyPerBit() <= b.ReadEnergyPerBit() {
		t.Fatalf("read=%g write=%g", b.ReadEnergyPerBit(), b.WriteEnergyPerBit())
	}
	if b.ReadEnergy() != b.ReadEnergyPerBit()*64 {
		t.Fatal("word read energy mismatch")
	}
	if b.WriteEnergy() != b.WriteEnergyPerBit()*64 {
		t.Fatal("word write energy mismatch")
	}
	if b.Area() <= 0 || b.LeakagePower() <= 0 {
		t.Fatalf("area=%g leak=%g", b.Area(), b.LeakagePower())
	}
	// Read energy magnitude: a 64KB 65nm buffer should be ~0.1-1 pJ/bit.
	e := b.ReadEnergyPerBit()
	if e < 20e-15 || e > 2e-12 {
		t.Fatalf("64KB read energy %g J/bit out of plausible range", e)
	}
}

func TestBufferScalesWithCapacityAndNode(t *testing.T) {
	n65 := node(t, 65)
	n7 := node(t, 7)
	small, _ := NewBuffer("s", 8*8192, 64, n65, 0)
	large, _ := NewBuffer("l", 1024*8192, 64, n65, 0)
	if large.ReadEnergyPerBit() <= small.ReadEnergyPerBit() {
		t.Error("larger buffers must cost more per bit")
	}
	if large.Area() <= small.Area() {
		t.Error("larger buffers must be bigger")
	}
	b65, _ := NewBuffer("b", 64*8192, 64, n65, 0)
	b7, _ := NewBuffer("b", 64*8192, 64, n7, 0)
	if b7.ReadEnergyPerBit() >= b65.ReadEnergyPerBit() {
		t.Error("finer node must cost less")
	}
	if b7.Area() >= b65.Area() {
		t.Error("finer node must be smaller")
	}
}

func TestBufferVoltageScaling(t *testing.T) {
	n := node(t, 65)
	nom, _ := NewBuffer("b", 8192, 8, n, 0)
	low, _ := NewBuffer("b", 8192, 8, n, n.Vdd/2)
	r := low.ReadEnergyPerBit() / nom.ReadEnergyPerBit()
	if r < 0.24 || r > 0.26 {
		t.Fatalf("half-voltage ratio = %g, want 0.25", r)
	}
}

func TestBufferErrors(t *testing.T) {
	n := node(t, 65)
	cases := []struct {
		name     string
		capacity int64
		word     int
		node     tech.Node
		vdd      float64
	}{
		{"", 8192, 8, n, 0},
		{"b", 0, 8, n, 0},
		{"b", 1 << 40, 8, n, 0},
		{"b", 8192, 0, n, 0},
		{"b", 64, 128, n, 0},
		{"b", 8192, 8, tech.Node{}, 0},
		{"b", 8192, 8, n, -1},
	}
	for i, c := range cases {
		if _, err := NewBuffer(c.name, c.capacity, c.word, c.node, c.vdd); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestDRAM(t *testing.T) {
	d, err := NewDRAM("dram", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "dram" {
		t.Fatal("name")
	}
	if d.AccessEnergyPerBit() < 1e-12 || d.AccessEnergyPerBit() > 20e-12 {
		t.Fatalf("DRAM energy %g J/bit implausible", d.AccessEnergyPerBit())
	}
	if d.BandwidthBitsPerSec() != 128e9 {
		t.Fatalf("default bandwidth = %g", d.BandwidthBitsPerSec())
	}
	if _, err := NewDRAM("", 0); err == nil {
		t.Error("want error for empty name")
	}
	if _, err := NewDRAM("d", -5); err == nil {
		t.Error("want error for negative bandwidth")
	}
	if _, err := NewDRAM("d", 1e9); err == nil {
		t.Error("want error for absurd bandwidth")
	}
}

// Property: per-bit read energy is monotone non-decreasing in capacity.
func TestQuickBufferMonotoneInCapacity(t *testing.T) {
	n := node(t, 22)
	f := func(a, b uint32) bool {
		ca := int64(a%1_000_000) + 64
		cb := int64(b%1_000_000) + 64
		if ca > cb {
			ca, cb = cb, ca
		}
		ba, err1 := NewBuffer("a", ca, 8, n, 0)
		bb, err2 := NewBuffer("b", cb, 8, n, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		return ba.ReadEnergyPerBit() <= bb.ReadEnergyPerBit() && ba.Area() <= bb.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
