// Package cactilite is a CACTI-style memory model (paper plug-in [50]):
// SRAM buffer energy/area as a function of capacity, word width, and
// technology node, plus an off-chip DRAM channel model. It supplies the
// memory-hierarchy levels that surround CiM macros in full systems
// (Fig. 15) — the global buffer, macro-local input/output buffers, and
// DRAM backing storage.
package cactilite

import (
	"fmt"
	"math"

	"repro/internal/tech"
)

// Reference constants at 65 nm, nominal Vdd.
const (
	readE0PerBitRef   = 50e-15         // fixed per-bit access cost
	readE1PerBitRef   = 30e-15         // per-bit cost growing with sqrt(capacity KB)
	writeFactor       = 1.2            // write / read energy ratio
	sramCellAreaF2    = 150.0          // 6T storage bitcell in F²
	arrayOverhead     = 1.45           // decoder/precharge/sense overhead factor
	leakagePerKBRef   = 10e-6          // watts per KB at 65 nm
	dramEnergyPerBit  = 4e-12          // off-chip DRAM access energy (node-independent)
	maxBufferCapacity = int64(1) << 33 // 1 GiB in bits
)

// Buffer models an on-chip SRAM scratchpad.
type Buffer struct {
	name         string
	capacityBits int64
	wordBits     int
	node         tech.Node
	vdd          float64
	readPerBit   float64
	writePerBit  float64
	area         float64
	leakage      float64
}

// NewBuffer constructs an SRAM buffer. capacityBits is total storage,
// wordBits the access word width. vdd of 0 selects the node's nominal.
func NewBuffer(name string, capacityBits int64, wordBits int, node tech.Node, vdd float64) (*Buffer, error) {
	if name == "" {
		return nil, fmt.Errorf("cactilite: buffer requires a name")
	}
	if capacityBits <= 0 || capacityBits > maxBufferCapacity {
		return nil, fmt.Errorf("cactilite: buffer %q capacity %d bits out of (0, 2^33]", name, capacityBits)
	}
	if wordBits <= 0 || int64(wordBits) > capacityBits {
		return nil, fmt.Errorf("cactilite: buffer %q word width %d out of (0, capacity]", name, wordBits)
	}
	if node.Nm == 0 {
		return nil, fmt.Errorf("cactilite: buffer %q missing technology node", name)
	}
	if vdd == 0 {
		vdd = node.Vdd
	}
	if vdd <= 0 {
		return nil, fmt.Errorf("cactilite: buffer %q supply %g must be positive", name, vdd)
	}
	ref, err := tech.ByNm(65)
	if err != nil {
		return nil, err
	}
	kb := float64(capacityBits) / 8192.0
	readRef := readE0PerBitRef + readE1PerBitRef*math.Sqrt(kb)
	vr := vdd / node.Vdd
	read := tech.ScaleEnergy(readRef, ref, node) * vr * vr
	f := float64(node.Nm) * 1e-3 // feature size in µm
	cellArea := sramCellAreaF2 * f * f
	return &Buffer{
		name:         name,
		capacityBits: capacityBits,
		wordBits:     wordBits,
		node:         node,
		vdd:          vdd,
		readPerBit:   read,
		writePerBit:  read * writeFactor,
		area:         float64(capacityBits) * cellArea * arrayOverhead,
		leakage:      tech.ScaleEnergy(leakagePerKBRef, ref, node) * kb,
	}, nil
}

// Name returns the buffer's name.
func (b *Buffer) Name() string { return b.name }

// CapacityBits returns the total storage in bits.
func (b *Buffer) CapacityBits() int64 { return b.capacityBits }

// WordBits returns the access word width.
func (b *Buffer) WordBits() int { return b.wordBits }

// ReadEnergyPerBit returns joules per bit read.
func (b *Buffer) ReadEnergyPerBit() float64 { return b.readPerBit }

// WriteEnergyPerBit returns joules per bit written.
func (b *Buffer) WriteEnergyPerBit() float64 { return b.writePerBit }

// ReadEnergy returns joules for one word read.
func (b *Buffer) ReadEnergy() float64 { return b.readPerBit * float64(b.wordBits) }

// WriteEnergy returns joules for one word write.
func (b *Buffer) WriteEnergy() float64 { return b.writePerBit * float64(b.wordBits) }

// Area returns the buffer area in µm².
func (b *Buffer) Area() float64 { return b.area }

// LeakagePower returns static power in watts.
func (b *Buffer) LeakagePower() float64 { return b.leakage }

// DRAM models an off-chip DRAM channel with a flat per-bit access energy,
// the standard first-order treatment for system studies.
type DRAM struct {
	name      string
	perBit    float64
	bandwidth float64 // bits per second
}

// NewDRAM constructs a DRAM channel. bandwidthGbps of 0 defaults to
// 128 Gb/s (a single LPDDR-class channel).
func NewDRAM(name string, bandwidthGbps float64) (*DRAM, error) {
	if name == "" {
		return nil, fmt.Errorf("cactilite: dram requires a name")
	}
	if bandwidthGbps == 0 {
		bandwidthGbps = 128
	}
	if bandwidthGbps < 0 || bandwidthGbps > 1e5 {
		return nil, fmt.Errorf("cactilite: dram %q bandwidth %g Gb/s out of range", name, bandwidthGbps)
	}
	return &DRAM{name: name, perBit: dramEnergyPerBit, bandwidth: bandwidthGbps * 1e9}, nil
}

// Name returns the channel name.
func (d *DRAM) Name() string { return d.name }

// AccessEnergyPerBit returns joules per bit transferred (read or write).
func (d *DRAM) AccessEnergyPerBit() float64 { return d.perBit }

// BandwidthBitsPerSec returns the channel bandwidth.
func (d *DRAM) BandwidthBitsPerSec() float64 { return d.bandwidth }
