package mapper

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mapping"
)

// costByString is a deterministic, concurrency-safe cost function: a hash
// of the mapping's textual form, so distinct mappings get distinct costs
// and both search paths see identical values.
func costByString(m *mapping.Mapping) (float64, error) {
	var h uint64 = 1469598103934665603
	for _, c := range []byte(m.String()) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return float64(h % 100003), nil
}

// TestSearchParallelMatchesSerial is the equivalence property: across
// seeds, budgets, and worker counts the parallel search returns the
// identical best mapping, cost, and evaluated count as the serial search.
func TestSearchParallelMatchesSerial(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	for seed := int64(0); seed < 8; seed++ {
		for _, budget := range []int{1, 7, 64} {
			for _, workers := range []int{2, 3, 8, 64} {
				opts := defaultOpts()
				opts.Seed = seed
				opts.MaxMappings = budget
				want, wantN, wantErr := Search(levels, e, opts, costByString)
				got, gotN, gotErr := SearchParallel(levels, e, opts, workers, costByString)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d budget %d workers %d: err %v vs %v", seed, budget, workers, gotErr, wantErr)
				}
				if gotN != wantN {
					t.Fatalf("seed %d budget %d workers %d: evaluated %d vs %d", seed, budget, workers, gotN, wantN)
				}
				if got.Cost != want.Cost || got.Mapping.String() != want.Mapping.String() {
					t.Fatalf("seed %d budget %d workers %d: best (%g, %s) vs (%g, %s)",
						seed, budget, workers, got.Cost, got.Mapping, want.Cost, want.Mapping)
				}
			}
		}
	}
}

// TestSearchParallelTieBreaksByIndex forces every candidate to the same
// cost and checks the winner is the first candidate — the serial loop's
// strict-less-than tie-breaking.
func TestSearchParallelTieBreaksByIndex(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	opts := defaultOpts()
	opts.MaxMappings = 32
	flat := func(*mapping.Mapping) (float64, error) { return 42, nil }
	want, _, err := Search(levels, e, opts, flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, _, err := SearchParallel(levels, e, opts, workers, flat)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mapping.String() != want.Mapping.String() {
			t.Fatalf("workers %d: tie broke to %s, serial keeps %s", workers, got.Mapping, want.Mapping)
		}
	}
}

// TestSearchParallelFirstError checks the error reported when every
// candidate fails is the first candidate's, matching serial order even
// though workers finish out of order.
func TestSearchParallelFirstError(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	opts := defaultOpts()
	opts.MaxMappings = 16
	var idx atomic.Int64
	failAll := func(m *mapping.Mapping) (float64, error) {
		idx.Add(1)
		return 0, fmt.Errorf("cost failed for %s", m)
	}
	wantRes, wantN, wantErr := Search(levels, e, opts, failAll)
	if wantRes != nil || wantErr == nil {
		t.Fatalf("serial: result %v err %v, want nil result and an error", wantRes, wantErr)
	}
	got, gotN, gotErr := SearchParallel(levels, e, opts, 8, failAll)
	if got != nil {
		t.Fatalf("parallel returned a result %v despite every candidate failing", got)
	}
	if gotN != wantN {
		t.Fatalf("evaluated %d vs serial %d", gotN, wantN)
	}
	if gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("first error %q, serial reports %q", gotErr, wantErr)
	}
}

// TestSearchParallelSkipsFailingCandidates mirrors the serial test: a cost
// function that rejects the greedy (first) candidate still yields the best
// of the rest, and the evaluated count excludes the failure.
func TestSearchParallelSkipsFailingCandidates(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	opts := defaultOpts()
	opts.MaxMappings = 24
	// Fail exactly the greedy mapping by value, so the rejected candidate
	// is the same regardless of evaluation order.
	greedy, err := Greedy(levels, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	failGreedy := func(m *mapping.Mapping) (float64, error) {
		if m.String() == greedy.String() {
			return 0, errors.New("rejected")
		}
		return costByString(m)
	}
	want, wantN, err := Search(levels, e, opts, failGreedy)
	if err != nil {
		t.Fatal(err)
	}
	got, gotN, err := SearchParallel(levels, e, opts, 8, failGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN || got.Mapping.String() != want.Mapping.String() {
		t.Fatalf("parallel (%d, %s) vs serial (%d, %s)", gotN, got.Mapping, wantN, want.Mapping)
	}
}

// TestSearchParallelCancelledBeforeStart checks an already-cancelled
// context evaluates nothing and returns ctx.Err(), like the serial path.
func TestSearchParallelCancelledBeforeStart(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	opts := defaultOpts()
	opts.MaxMappings = 32
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	res, evaluated, err := SearchParallelCtx(ctx, levels, e, opts, 8, func(m *mapping.Mapping) (float64, error) {
		calls.Add(1)
		return costByString(m)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil || evaluated != 0 || calls.Load() != 0 {
		t.Fatalf("res %v evaluated %d calls %d after pre-cancellation", res, evaluated, calls.Load())
	}
}

// TestSearchParallelCancelMidFanOut cancels while the pool is mid-flight:
// the first evaluation triggers cancellation, and the search must drain
// promptly, return ctx.Err(), and evaluate well under the full budget.
// Run under -race this also exercises the worker/feeder shutdown path.
func TestSearchParallelCancelMidFanOut(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	opts := defaultOpts()
	opts.MaxMappings = 64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	gate := make(chan struct{})
	var once sync.Once
	res, evaluated, err := SearchParallelCtx(ctx, levels, e, opts, 4, func(m *mapping.Mapping) (float64, error) {
		n := calls.Add(1)
		if n == 1 {
			cancel()
			once.Do(func() { close(gate) })
		} else {
			// Later workers block until cancellation is visible, so the
			// run deterministically stops early.
			<-gate
		}
		return costByString(m)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled search returned a result %v", res)
	}
	if evaluated >= opts.MaxMappings/2 {
		t.Fatalf("evaluated %d of %d candidates despite mid-fan-out cancellation", evaluated, opts.MaxMappings)
	}
}

// TestSearchParallelConcurrentSearches runs many parallel searches against
// the same inputs concurrently (the serve pool's shape) and checks every
// one agrees with the serial answer. Meaningful chiefly under -race.
func TestSearchParallelConcurrentSearches(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	opts := defaultOpts()
	opts.MaxMappings = 32
	want, wantN, err := Search(levels, e, opts, costByString)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, gotN, err := SearchParallel(levels, e, opts, 4, costByString)
			if err != nil {
				errs <- err
				return
			}
			if gotN != wantN || got.Cost != want.Cost || got.Mapping.String() != want.Mapping.String() {
				errs <- fmt.Errorf("diverged: (%d, %g, %s) vs (%d, %g, %s)",
					gotN, got.Cost, got.Mapping, wantN, want.Cost, want.Mapping)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSearchParallelSingleWorkerFallsBack checks workers <= 1 takes the
// serial path byte for byte.
func TestSearchParallelSingleWorkerFallsBack(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	opts := defaultOpts()
	opts.MaxMappings = 16
	want, wantN, err := Search(levels, e, opts, costByString)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, -3} {
		got, gotN, err := SearchParallel(levels, e, opts, workers, costByString)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != wantN || got.Mapping.String() != want.Mapping.String() {
			t.Fatalf("workers=%d diverged from serial", workers)
		}
	}
}

// TestSampleSeqMatchesSample pins the streaming generator to the batch
// Sample: same mappings, same order, contiguous indices.
func TestSampleSeqMatchesSample(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	for seed := int64(0); seed < 4; seed++ {
		opts := defaultOpts()
		opts.Seed = seed
		opts.MaxMappings = 40
		want, err := Sample(levels, e, opts)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		err = sampleSeq(levels, e, opts, func(i int, m *mapping.Mapping) bool {
			if i != len(got) {
				t.Fatalf("index %d out of order (have %d)", i, len(got))
			}
			got = append(got, m.String())
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d candidates vs Sample's %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i].String() {
				t.Fatalf("seed %d candidate %d: %s vs %s", seed, i, got[i], want[i])
			}
		}
		// Early stop is honored.
		n := 0
		if err := sampleSeq(levels, e, opts, func(int, *mapping.Mapping) bool { n++; return n < 3 }); err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("yield=false stopped after %d candidates, want 3", n)
		}
	}
}
