package mapper

import (
	"testing"

	"repro/internal/mapping"
	"repro/internal/spec"
	"repro/internal/tensor"
)

// shardedGrid runs f over a small grid of (levels, einsum) shapes so the
// sharded properties are checked on more than one mapping space.
func shardedGrid(t *testing.T, f func(t *testing.T, levels []spec.Level, e *tensor.Einsum)) {
	t.Helper()
	cases := []struct {
		name       string
		rows, cols int
		m, k, n    int
	}{
		{"exact-fit", 64, 32, 16, 64, 32},
		{"ragged", 48, 24, 10, 56, 36},
		{"tiny", 8, 8, 4, 8, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f(t, cimLevels(c.rows, c.cols), mvm(t, c.m, c.k, c.n))
		})
	}
}

// TestShardedSingleShardMatchesUnsharded pins the tentpole's anchor
// property: Shards == 1 routes through the concurrent pipeline yet
// reproduces the unsharded Sample sequence byte for byte — same
// candidates, same order, same count — across seeds and budgets.
func TestShardedSingleShardMatchesUnsharded(t *testing.T) {
	shardedGrid(t, func(t *testing.T, levels []spec.Level, e *tensor.Einsum) {
		for seed := int64(0); seed < 6; seed++ {
			for _, budget := range []int{1, 2, 7, 40} {
				opts := defaultOpts()
				opts.Seed = seed
				opts.MaxMappings = budget
				want, err := Sample(levels, e, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Shards = 1
				got, err := Sample(levels, e, opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("seed %d budget %d: %d candidates sharded vs %d unsharded", seed, budget, len(got), len(want))
				}
				for i := range got {
					if got[i].String() != want[i].String() {
						t.Fatalf("seed %d budget %d candidate %d: %s vs %s", seed, budget, i, got[i], want[i])
					}
				}
			}
		}
	})
}

// TestShardedSequenceDeterministicAndDistinct checks, for every shard
// count: two independent runs produce the identical global sequence (no
// scheduling dependence), the greedy mapping leads it, every candidate is
// distinct (cross-shard dedup), valid, and the budget is honored.
func TestShardedSequenceDeterministicAndDistinct(t *testing.T) {
	shardedGrid(t, func(t *testing.T, levels []spec.Level, e *tensor.Einsum) {
		greedy, err := Greedy(levels, e, defaultOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 3, 8} {
			opts := defaultOpts()
			opts.MaxMappings = 48
			opts.Shards = shards
			first, err := Sample(levels, e, opts)
			if err != nil {
				t.Fatal(err)
			}
			again, err := Sample(levels, e, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(first) != len(again) {
				t.Fatalf("shards %d: run lengths %d vs %d", shards, len(first), len(again))
			}
			if len(first) == 0 || first[0].String() != greedy.String() {
				t.Fatalf("shards %d: sequence does not start with the greedy mapping", shards)
			}
			if len(first) > opts.MaxMappings {
				t.Fatalf("shards %d: %d candidates exceed budget %d", shards, len(first), opts.MaxMappings)
			}
			seen := make(map[string]bool, len(first))
			for i := range first {
				k := first[i].String()
				if k != again[i].String() {
					t.Fatalf("shards %d candidate %d differs between runs: %s vs %s", shards, i, k, again[i])
				}
				if seen[k] {
					t.Fatalf("shards %d: duplicate candidate %s at index %d", shards, k, i)
				}
				seen[k] = true
				if err := mapping.Validate(levels, e, first[i]); err != nil {
					t.Fatalf("shards %d candidate %d invalid: %v", shards, i, err)
				}
			}
		}
	})
}

// TestShardedSameWinnerAcrossWorkers is the search-level determinism
// property: for a given (Seed, Shards) the (cost, index) winner and the
// evaluated count are identical whether candidates are evaluated serially
// or by any number of workers.
func TestShardedSameWinnerAcrossWorkers(t *testing.T) {
	shardedGrid(t, func(t *testing.T, levels []spec.Level, e *tensor.Einsum) {
		for _, shards := range []int{1, 2, 4, 8} {
			opts := defaultOpts()
			opts.MaxMappings = 48
			opts.Shards = shards
			want, wantN, err := Search(levels, e, opts, costByString)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				got, gotN, err := SearchParallel(levels, e, opts, workers, costByString)
				if err != nil {
					t.Fatal(err)
				}
				if gotN != wantN || got.Cost != want.Cost || got.Mapping.String() != want.Mapping.String() {
					t.Fatalf("shards %d workers %d: (%d, %g, %s) vs serial (%d, %g, %s)",
						shards, workers, gotN, got.Cost, got.Mapping, wantN, want.Cost, want.Mapping)
				}
			}
		}
	})
}

// TestShardedEarlyStop checks yield=false stops a sharded generation
// promptly and cleanly — under -race this also exercises the done-channel
// shutdown of still-producing shard goroutines.
func TestShardedEarlyStop(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	opts := defaultOpts()
	opts.MaxMappings = 64
	opts.Shards = 8
	n := 0
	if err := sampleSeq(levels, e, opts, func(int, *mapping.Mapping) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("yield=false stopped after %d candidates, want 3", n)
	}
}
