package mapper

import (
	"context"
	"errors"
	"sync"

	"repro/internal/mapping"
	"repro/internal/spec"
	"repro/internal/tensor"
)

// SearchParallel is Search with candidate cost evaluations fanned across a
// bounded pool of workers. It returns exactly what the serial Search
// returns — the same winner (minimum cost, ties broken by the lowest
// candidate index), the same first evaluation error, and the same
// evaluated count — so callers can switch between the two freely. The
// cost function must be safe for concurrent use.
func SearchParallel(levels []spec.Level, e *tensor.Einsum, opts Options, workers int, cost func(*mapping.Mapping) (float64, error)) (*Result, int, error) {
	return SearchParallelCtx(context.Background(), levels, e, opts, workers, cost)
}

// searchPartial accumulates one worker's share of the reduction. Both
// folds are order-independent: the winner is the lexicographic minimum of
// (cost, candidate index) — which is exactly the serial loop's "strictly
// lower cost wins, earlier candidate keeps ties" — and the reported error
// is the one with the lowest candidate index. Merging partials therefore
// yields the serial answer no matter how candidates were interleaved, and
// memory stays constant in the budget instead of O(MaxMappings).
type searchPartial struct {
	best      *mapping.Mapping
	bestCost  float64
	bestIdx   int
	firstErr  error
	errIdx    int
	evaluated int
}

func (p *searchPartial) observe(i int, m *mapping.Mapping, cost float64, err error) {
	if err != nil {
		if p.firstErr == nil || i < p.errIdx {
			p.firstErr, p.errIdx = err, i
		}
		return
	}
	p.evaluated++
	if p.best == nil || cost < p.bestCost || (cost == p.bestCost && i < p.bestIdx) {
		p.best, p.bestCost, p.bestIdx = m, cost, i
	}
}

func (p *searchPartial) merge(q *searchPartial) {
	if q.firstErr != nil {
		if p.firstErr == nil || q.errIdx < p.errIdx {
			p.firstErr, p.errIdx = q.firstErr, q.errIdx
		}
	}
	p.evaluated += q.evaluated
	if q.best != nil {
		if p.best == nil || q.bestCost < p.bestCost || (q.bestCost == p.bestCost && q.bestIdx < p.bestIdx) {
			p.best, p.bestCost, p.bestIdx = q.best, q.bestCost, q.bestIdx
		}
	}
}

// SearchParallelCtx is SearchParallel under a context. Candidate
// generation streams from the sampler into the worker pool, so evaluation
// overlaps generation instead of waiting for the whole sample; the
// candidate sequence is nevertheless identical to Sample's, and the
// winner is a deterministic (cost, candidate index) reduction merged
// after all workers finish. Cancellation is checked before every
// candidate evaluation, exactly like the serial path: a cancelled search
// stops feeding the pool, drains promptly, and returns ctx.Err() with the
// partial evaluated count. workers <= 1 falls through to SearchCtx.
func SearchParallelCtx(ctx context.Context, levels []spec.Level, e *tensor.Einsum, opts Options, workers int, cost func(*mapping.Mapping) (float64, error)) (*Result, int, error) {
	if workers <= 1 {
		return SearchCtx(ctx, levels, e, opts, cost)
	}
	if opts.MaxMappings <= 0 {
		opts.MaxMappings = 100
	}
	if workers > opts.MaxMappings {
		workers = opts.MaxMappings
	}

	type candidate struct {
		i int
		m *mapping.Mapping
	}
	feed := make(chan candidate, workers)
	var mu sync.Mutex
	var total searchPartial
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local searchPartial
			for c := range feed {
				// The same per-candidate cancellation check as the serial
				// loop; after cancellation workers keep draining the feed
				// without evaluating so close(feed) is never stranded.
				if ctx.Err() != nil {
					continue
				}
				v, err := cost(c.m)
				local.observe(c.i, c.m, v, err)
			}
			mu.Lock()
			total.merge(&local)
			mu.Unlock()
		}()
	}

	sampleErr := sampleSeq(levels, e, opts, func(i int, m *mapping.Mapping) bool {
		if ctx.Err() != nil {
			return false
		}
		feed <- candidate{i, m}
		return true
	})
	close(feed)
	wg.Wait()
	if sampleErr != nil {
		// Same contract as the cancellation path below: report how much
		// work was done before the generator failed.
		return nil, total.evaluated, sampleErr
	}
	if err := ctx.Err(); err != nil {
		return nil, total.evaluated, err
	}
	if total.best == nil {
		if total.firstErr != nil {
			return nil, 0, total.firstErr
		}
		return nil, 0, errors.New("mapper: no valid mapping found")
	}
	return &Result{Mapping: total.best, Cost: total.bestCost}, total.evaluated, nil
}
