package mapper

import (
	"errors"
	"testing"

	"repro/internal/mapping"
	"repro/internal/spec"
	"repro/internal/tensor"
)

// cimLevels models a simple CiM macro: buffer -> columns mesh -> rows mesh
// -> cells, as the mapper will see it from macros.
func cimLevels(rows, cols int) []spec.Level {
	return []spec.Level{
		{Name: "buffer", Kind: spec.StorageLevel,
			Keeps: map[tensor.Kind]bool{tensor.Input: true, tensor.Weight: true, tensor.Output: true}},
		{Name: "columns", Kind: spec.SpatialLevel, Mesh: cols, MeshX: cols, MeshY: 1,
			SpatialReuse: map[tensor.Kind]bool{tensor.Input: true}},
		{Name: "rows", Kind: spec.SpatialLevel, Mesh: rows, MeshX: 1, MeshY: rows,
			SpatialReuse: map[tensor.Kind]bool{tensor.Output: true}},
		{Name: "cell", Kind: spec.ComputeLevel,
			Keeps: map[tensor.Kind]bool{tensor.Weight: true}},
	}
}

func mvm(t *testing.T, m, k, n int) *tensor.Einsum {
	t.Helper()
	e, err := tensor.MatMul("mvm", m, k, n)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func defaultOpts() Options {
	return Options{
		SpatialPrefs: map[int][]string{1: {"K"}, 2: {"C"}},
		InnerDims:    []string{"C"},
		Seed:         1,
	}
}

func TestGreedyFillsArray(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 16, 64, 32)
	m, err := Greedy(levels, e, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	c, err := mapping.Analyze(levels, e, m)
	if err != nil {
		t.Fatal(err)
	}
	if c.Utilization != 1 {
		t.Fatalf("exact-fit workload should reach full utilization, got %g (%s)", c.Utilization, m)
	}
	if c.Instances != 64*32 {
		t.Fatalf("instances = %d, want 2048", c.Instances)
	}
}

func TestGreedyPadsNonDividingDims(t *testing.T) {
	levels := cimLevels(64, 32)
	// K=27 (3x3x3 conv-ish reduction) does not divide 64.
	e := mvm(t, 10, 27, 20)
	m, err := Greedy(levels, e, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	c, err := mapping.Analyze(levels, e, m)
	if err != nil {
		t.Fatal(err)
	}
	// 27 rows of 64 used, 20 cols of 32: utilization 27*20/(27*20) with
	// spatial factors 27 and 20 => full; greedy takes min(bound, mesh).
	if c.Utilization != 1 {
		t.Fatalf("utilization = %g (%s)", c.Utilization, m)
	}
}

func TestGreedySplitsOversizedDims(t *testing.T) {
	levels := cimLevels(16, 8)
	e := mvm(t, 4, 100, 30)
	m, err := Greedy(levels, e, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	c, err := mapping.Analyze(levels, e, m)
	if err != nil {
		t.Fatal(err)
	}
	// K=100 on 16 rows: spatial 16, temporal ceil(100/16)=7 -> padded 112.
	// N=30 on 8 cols: spatial 8, temporal 4 -> padded 32.
	if c.MACs != int64(4)*112*32 {
		t.Fatalf("padded MACs = %d (%s)", c.MACs, m)
	}
}

func TestGreedyRespectsFixedLoops(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 4, 64, 16)
	opts := defaultOpts()
	// Pin a weight-slice-like factor of 2 onto the columns mesh.
	opts.Fixed = map[int][]mapping.Loop{1: {{Dim: "M", Factor: 1}}}
	m, err := Greedy(levels, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range m.LevelLoops[1] {
		if l.Dim == "M" && l.Factor == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("fixed loop dropped: %s", m)
	}
}

func TestGreedyErrors(t *testing.T) {
	levels := cimLevels(64, 32)
	e := mvm(t, 4, 8, 8)
	opts := defaultOpts()
	// Unknown preferred dims are skipped, not errors (prefs are
	// arch-static while workloads vary).
	opts.SpatialPrefs = map[int][]string{1: {"Z"}}
	if _, err := Greedy(levels, e, opts); err != nil {
		t.Errorf("unknown preferred dim should be skipped: %v", err)
	}
	opts = defaultOpts()
	opts.Fixed = map[int][]mapping.Loop{1: {{Dim: "Z", Factor: 2}}}
	if _, err := Greedy(levels, e, opts); err == nil {
		t.Error("want error for unknown fixed dim")
	}
	opts = defaultOpts()
	opts.Fixed = map[int][]mapping.Loop{1: {{Dim: "K", Factor: 0}}}
	if _, err := Greedy(levels, e, opts); err == nil {
		t.Error("want error for zero fixed factor")
	}
	opts = defaultOpts()
	opts.TemporalLevel = 2 // a spatial level
	if _, err := Greedy(levels, e, opts); err == nil {
		t.Error("want error for non-storage temporal level")
	}
	noStorage := []spec.Level{
		{Name: "cell", Kind: spec.ComputeLevel, Keeps: map[tensor.Kind]bool{tensor.Weight: true}},
	}
	if _, err := Greedy(noStorage, e, Options{}); err == nil {
		t.Error("want error when no storage level exists")
	}
}

func TestSampleGeneratesDistinctValidMappings(t *testing.T) {
	levels := cimLevels(32, 16)
	e := mvm(t, 8, 32, 16)
	opts := defaultOpts()
	opts.MaxMappings = 50
	ms, err := Sample(levels, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) < 10 {
		t.Fatalf("expected a healthy candidate pool, got %d", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if err := mapping.Validate(levels, e, m); err != nil {
			t.Fatalf("invalid sampled mapping %s: %v", m, err)
		}
		if seen[m.String()] {
			t.Fatalf("duplicate mapping %s", m)
		}
		seen[m.String()] = true
	}
}

func TestSampleDeterministicBySeed(t *testing.T) {
	levels := cimLevels(32, 16)
	e := mvm(t, 8, 32, 16)
	opts := defaultOpts()
	opts.MaxMappings = 20
	a, err := Sample(levels, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(levels, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("mapping %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestSearchMinimizesCost(t *testing.T) {
	levels := cimLevels(32, 16)
	e := mvm(t, 8, 32, 16)
	opts := defaultOpts()
	opts.MaxMappings = 30
	// Cost = padded MACs: rewards high utilization.
	cost := func(m *mapping.Mapping) (float64, error) {
		c, err := mapping.Analyze(levels, e, m)
		if err != nil {
			return 0, err
		}
		return float64(c.MACs), nil
	}
	best, n, err := Search(levels, e, opts, cost)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("evaluated only %d mappings", n)
	}
	if best.Cost != float64(e.MACs()) {
		t.Fatalf("best cost %g, want un-padded %d", best.Cost, e.MACs())
	}
}

func TestSearchAllCandidatesFail(t *testing.T) {
	levels := cimLevels(32, 16)
	e := mvm(t, 8, 32, 16)
	opts := defaultOpts()
	opts.MaxMappings = 5
	wantErr := errors.New("boom")
	_, _, err := Search(levels, e, opts, func(*mapping.Mapping) (float64, error) {
		return 0, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestSearchSkipsFailingCandidates(t *testing.T) {
	levels := cimLevels(32, 16)
	e := mvm(t, 8, 32, 16)
	opts := defaultOpts()
	opts.MaxMappings = 10
	calls := 0
	best, _, err := Search(levels, e, opts, func(m *mapping.Mapping) (float64, error) {
		calls++
		if calls%2 == 0 {
			return 0, errors.New("flaky")
		}
		return float64(calls), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost != 1 {
		t.Fatalf("best cost %g, want 1", best.Cost)
	}
}
