package mapper

import (
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/spec"
	"repro/internal/tensor"
)

// The sharded candidate pipeline lifts the serial-sampler ceiling on
// parallel search: with a single seeded stream, generation is the Amdahl
// bottleneck that bounds SearchParallelCtx speedup no matter how many
// evaluation workers run. Here G independent generators (shard g draws
// from Seed ^ g) produce candidates concurrently, and a cheap merger
// interleaves them into one global sequence.
//
// Determinism is the design constraint, not an afterthought. Each shard's
// stream is a pure function of (Seed, g): its own rng, its own in-shard
// dedup set (seeded with the greedy mapping's key), and the same tries
// budget as the unsharded loop. The merger visits live shards in fixed
// round-robin order starting at shard 0, takes exactly one fresh
// candidate per visit (cross-shard duplicates are skipped by pulling the
// *same* shard's next candidate, so a dup never perturbs the rotation),
// assigns global indices sequentially, and drops a shard from the
// rotation only when its stream is exhausted — which is itself
// deterministic. No step depends on goroutine timing, so the global
// sequence — and any (cost, index) reduction over it — is bit-identical
// across runs and worker counts for a given (Seed, Shards).

// shardCand carries one candidate from a shard generator to the merger,
// with its mapping.String key precomputed on the shard goroutine so the
// merger's cross-shard dedup costs a map probe, not a re-render.
type shardCand struct {
	key string
	m   *mapping.Mapping
}

// shardChanDepth buffers each shard's channel so generators run ahead of
// the merger instead of handing off synchronously.
const shardChanDepth = 8

// sampleSeqSharded continues the candidate sequence after the greedy
// mapping (already yielded as index 0 by sampleSeq) using opts.Shards
// concurrent generators and a deterministic merge. greedyKey is the
// greedy mapping's String key; every shard dedups against it.
func sampleSeqSharded(levels []spec.Level, e *tensor.Einsum, opts Options, greedyKey string, yield func(int, *mapping.Mapping) bool) error {
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	// done tells generators to stop when the merge ends early (budget
	// reached or yield returned false); closing it unblocks any shard
	// parked on a full channel.
	done := make(chan struct{})
	defer close(done)

	sl := storageLevels(levels)
	chans := make([]chan shardCand, shards)
	for g := 0; g < shards; g++ {
		ch := make(chan shardCand, shardChanDepth)
		chans[g] = ch
		go func(g int, ch chan<- shardCand) {
			defer close(ch)
			// Identical budgets to the unsharded loop, so Shards == 1
			// reproduces it byte-for-byte: at most MaxMappings-1 sampled
			// candidates after greedy, at most MaxMappings*20 draws.
			rng := rand.New(rand.NewSource(opts.Seed ^ int64(g)))
			seen := map[string]bool{greedyKey: true}
			produced, tries := 0, 0
			for produced < opts.MaxMappings-1 && tries < opts.MaxMappings*20 {
				tries++
				m, ok := sampleOne(levels, e, opts, rng, sl)
				if !ok {
					continue
				}
				key := m.String()
				if seen[key] {
					continue
				}
				if mapping.Validate(levels, e, m) != nil {
					continue
				}
				seen[key] = true
				produced++
				select {
				case ch <- shardCand{key: key, m: m}:
				case <-done:
					return
				}
			}
		}(g, ch)
	}

	// Deterministic merge: fixed round-robin over live shards.
	live := make([]int, shards)
	for g := range live {
		live[g] = g
	}
	merged := map[string]bool{greedyKey: true}
	n := 1
	at := 0
	for n < opts.MaxMappings && len(live) > 0 {
		if at >= len(live) {
			at = 0
		}
		g := live[at]
		for {
			c, ok := <-chans[g]
			if !ok {
				// Shard exhausted: remove it; `at` now points at the next
				// shard in rotation.
				live = append(live[:at], live[at+1:]...)
				break
			}
			if merged[c.key] {
				// Cross-shard duplicate: pull this same shard's next
				// candidate so the rotation is unaffected.
				continue
			}
			merged[c.key] = true
			if !yield(n, c.m) {
				return nil
			}
			n++
			at++
			break
		}
	}
	return nil
}
