package persist

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestColumnarCodecRoundTrip is the binary analogue of
// TestLayerContextCodecRoundTrip: for every (macro, layer) pair the
// columnar encode -> decode -> re-encode cycle is a byte-level fixed
// point, and a context restored from the columnar payload evaluates
// exactly like one restored from the JSON payload — which itself
// evaluates like the original (pinned by the JSON test).
func TestColumnarCodecRoundTrip(t *testing.T) {
	layers := []workload.Layer{
		workload.ResNet18().Layers[0],
		workload.ResNet18().Layers[5],
		workload.ViTBase().Layers[0],
	}
	for _, tc := range codecGrid(t) {
		eng, err := core.NewEngine(tc.arch)
		if err != nil {
			t.Fatal(err)
		}
		for _, layer := range layers {
			ctx, err := eng.PrepareLayer(layer)
			if err != nil {
				t.Fatal(err)
			}
			data, err := EncodeLayerContextColumnar(ctx)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := DecodeLayerContextColumnar(data)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, layer.Name, err)
			}
			if restored.LevelCount() != ctx.LevelCount() {
				t.Fatalf("%s/%s: level count %d, want %d",
					tc.name, layer.Name, restored.LevelCount(), ctx.LevelCount())
			}

			m, err := eng.GreedyMapping(ctx)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eng.EvaluateMapping(ctx, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.EvaluateMapping(restored, m)
			if err != nil {
				t.Fatalf("%s/%s: evaluating with restored context: %v", tc.name, layer.Name, err)
			}
			if got.Cycles != want.Cycles || got.MACs != want.MACs ||
				got.PaddedMACs != want.PaddedMACs || got.Utilization != want.Utilization {
				t.Fatalf("%s/%s: restored context evaluates differently:\n got %+v\nwant %+v",
					tc.name, layer.Name, got, want)
			}
			if !ulpEqual(got.Energy, want.Energy) || !ulpEqual(got.TimeSec, want.TimeSec) {
				t.Fatalf("%s/%s: restored context energy/time diverge:\n got %+v\nwant %+v",
					tc.name, layer.Name, got, want)
			}
			for i := range want.Levels {
				for k, v := range want.Levels[i].ByTensor {
					if got.Levels[i].ByTensor[k] != v {
						t.Fatalf("%s/%s level %s tensor %v: %g != %g (must be bit-equal)",
							tc.name, layer.Name, want.Levels[i].Name, k,
							got.Levels[i].ByTensor[k], v)
					}
				}
			}

			// Fixed point: re-encoding the decoded context reproduces the
			// payload byte for byte (sorted energy kinds, raw float bits).
			data2, err := EncodeLayerContextColumnar(restored)
			if err != nil {
				t.Fatal(err)
			}
			if string(data2) != string(data) {
				t.Fatalf("%s/%s: re-encoding a columnar context changed the bytes", tc.name, layer.Name)
			}

			// Cross-codec agreement: decoding the JSON payload and the
			// columnar payload yields contexts whose columnar encodings are
			// identical — the two formats carry the same bits.
			jsonData, err := EncodeLayerContext(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fromJSON, err := DecodeLayerContextKind(KindLayerContext, jsonData)
			if err != nil {
				t.Fatal(err)
			}
			data3, err := EncodeLayerContextColumnar(fromJSON)
			if err != nil {
				t.Fatal(err)
			}
			if string(data3) != string(data) {
				t.Fatalf("%s/%s: JSON-restored and columnar-restored contexts encode differently", tc.name, layer.Name)
			}
		}
	}
}

// TestColumnarDecodeRejectsGarbage: structural corruption in any section
// surfaces as an error, never a panic or a half-built context.
func TestColumnarDecodeRejectsGarbage(t *testing.T) {
	eng, err := core.NewEngine(codecGrid(t)[0].arch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := eng.PrepareLayer(workload.ResNet18().Layers[0])
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodeLayerContextColumnar(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad version": append([]byte{99}, good[1:]...),
		"huge string": func() []byte { b := append([]byte(nil), good...); b[1] = 0xff; return b }(),
		"trailing":    append(append([]byte(nil), good...), 0),
	}
	// Every truncation point must fail: the reader bounds-checks each
	// section, so a short payload can never yield a context.
	for _, cut := range []int{1, 4, 16, len(good) / 4, len(good) / 2, len(good) - 3} {
		cases[fmt.Sprintf("truncated at %d", cut)] = good[:cut]
	}
	for name, payload := range cases {
		if _, err := DecodeLayerContextColumnar(payload); err == nil {
			t.Fatalf("%s: decode accepted corrupt payload", name)
		}
	}
	if _, err := DecodeLayerContextKind(KindEngine, good); err == nil {
		t.Fatal("DecodeLayerContextKind accepted a non-context kind")
	}
}

// TestColumnarEnvelopeRoundTrip: the new kind travels through the
// envelope, and RecordName gives columnar records their own filenames.
func TestColumnarEnvelopeRoundTrip(t *testing.T) {
	eng, err := core.NewEngine(codecGrid(t)[0].arch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := eng.PrepareLayer(workload.ResNet18().Layers[0])
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeLayerContextColumnar(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Kind: KindLayerContextCol, Key: "ctx|a|b", CostSec: 0.25, Payload: payload}
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != KindLayerContextCol || dec.Key != rec.Key || dec.CostSec != rec.CostSec {
		t.Fatalf("decoded record header %+v, want %+v", dec, rec)
	}
	if _, err := DecodeLayerContextKind(dec.Kind, dec.Payload); err != nil {
		t.Fatal(err)
	}
	if RecordName(KindLayerContextCol, "k") == RecordName(KindLayerContext, "k") {
		t.Fatal("columnar and JSON records of one key must not share a filename")
	}
}
