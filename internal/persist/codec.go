package persist

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// Kind-specific payload codecs. Payloads are JSON: the envelope already
// carries the binary framing (magic, version, checksum), and every value
// being persisted is plain data — architectures, energy tables, PMF
// points, job snapshots — for which Go's JSON round-trips float64 values
// bit-exactly (shortest round-trip formatting). Decoders validate before
// returning so a decoded value is always usable.

// EncodeEngine serializes a compiled engine as its architecture — the
// plain-data form an engine is deterministically compiled from.
func EncodeEngine(e *core.Engine) ([]byte, error) {
	return json.Marshal(e.Arch())
}

// DecodeEngine rebuilds a compiled engine from an EncodeEngine payload by
// recompiling the architecture (microseconds; the expensive per-layer
// pipeline lives in layer contexts, not engines).
func DecodeEngine(payload []byte) (*core.Engine, error) {
	var arch core.Arch
	if err := json.Unmarshal(payload, &arch); err != nil {
		return nil, fmt.Errorf("persist: engine payload: %w", err)
	}
	eng, err := core.NewEngine(&arch)
	if err != nil {
		return nil, fmt.Errorf("persist: engine payload: %w", err)
	}
	return eng, nil
}

// EncodeLayerContext serializes a per-layer amortized context via its
// plain-data view.
func EncodeLayerContext(c *core.LayerContext) ([]byte, error) {
	return json.Marshal(c.Export())
}

// DecodeLayerContext rebuilds an evaluable layer context from an
// EncodeLayerContext payload without re-running the preparation pipeline.
func DecodeLayerContext(payload []byte) (*core.LayerContext, error) {
	var data core.LayerContextData
	if err := json.Unmarshal(payload, &data); err != nil {
		return nil, fmt.Errorf("persist: layer context payload: %w", err)
	}
	return core.RestoreLayerContext(&data)
}
