package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/tensor"
)

// Kind-specific payload codecs. Engine and job payloads are JSON: the
// envelope already carries the binary framing (magic, version, checksum),
// the values are plain data, and Go's JSON round-trips float64 values
// bit-exactly (shortest round-trip formatting). Layer contexts — the
// records a boot scan decodes by the hundred — additionally have a binary
// columnar form (KindLayerContextCol) whose PMF points and energy tables
// are raw float64 columns: the JSON cost of a context is almost entirely
// float parsing, and the columnar payload removes it. Decoders validate
// before returning so a decoded value is always usable.

// EncodeEngine serializes a compiled engine as its architecture — the
// plain-data form an engine is deterministically compiled from.
func EncodeEngine(e *core.Engine) ([]byte, error) {
	return json.Marshal(e.Arch())
}

// DecodeEngine rebuilds a compiled engine from an EncodeEngine payload by
// recompiling the architecture (microseconds; the expensive per-layer
// pipeline lives in layer contexts, not engines).
func DecodeEngine(payload []byte) (*core.Engine, error) {
	var arch core.Arch
	if err := json.Unmarshal(payload, &arch); err != nil {
		return nil, fmt.Errorf("persist: engine payload: %w", err)
	}
	eng, err := core.NewEngine(&arch)
	if err != nil {
		return nil, fmt.Errorf("persist: engine payload: %w", err)
	}
	return eng, nil
}

// EncodeLayerContext serializes a per-layer amortized context via its
// plain-data view.
func EncodeLayerContext(c *core.LayerContext) ([]byte, error) {
	return json.Marshal(c.Export())
}

// DecodeLayerContext rebuilds an evaluable layer context from an
// EncodeLayerContext payload without re-running the preparation pipeline.
func DecodeLayerContext(payload []byte) (*core.LayerContext, error) {
	var data core.LayerContextData
	if err := json.Unmarshal(payload, &data); err != nil {
		return nil, fmt.Errorf("persist: layer context payload: %w", err)
	}
	return core.RestoreLayerContext(&data)
}

// DecodeLayerContextKind dispatches on the record kind, accepting both
// the legacy JSON payload (KindLayerContext) and the binary columnar one
// (KindLayerContextCol) — the JSON fallback that keeps old stores and
// mixed-version blob tiers readable.
func DecodeLayerContextKind(kind Kind, payload []byte) (*core.LayerContext, error) {
	switch kind {
	case KindLayerContext:
		return DecodeLayerContext(payload)
	case KindLayerContextCol:
		return DecodeLayerContextColumnar(payload)
	}
	return nil, fmt.Errorf("persist: kind %s does not hold a layer context", kind)
}

// The columnar layer-context payload, all integers big-endian like the
// envelope around it:
//
//	u8  colCodecVersion
//	meta (layer, sliced einsum, rails; see appendMeta):
//	    layer: str name, einsum op, i64 repeat,
//	           u8 signed, 4 x f64 act stats, f64 wgt std
//	    einsum sliced
//	    2 x i64 (input rails, weight rails)
//	2 x PMF section (input, weight):
//	    u32 n, n x u64 value bits, n x u64 prob bits
//	u32 level count, per level:
//	    u8 kind count, per kind ascending:
//	        u8 tensor kind, 3 x u64 (read, write, cross) bits
//
// where str is u16 length + bytes and einsum is u8 presence, then
// str name, u16-counted dims (str, i64 bound) and spaces (str, u8 kind,
// u16-counted axes of u16-counted coefs (str dim, i64 coeff)).
//
// Floats are stored as raw IEEE-754 bits, so a round trip is exact by
// construction and re-encoding a decoded payload reproduces it byte for
// byte (slices keep order; the energy kinds are written sorted to keep
// the byte form canonical). The meta is binary too: profiling the boot
// scan showed a JSON meta head costing ~10x the float columns it fronts.

// colCodecVersion versions the columnar payload independently of the
// envelope, so the layout can evolve without renumbering the kind.
const colCodecVersion = 1

// errColumnar tags malformed columnar payloads.
var errColumnar = errors.New("persist: corrupt columnar layer context")

func appendString(buf []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("persist: columnar layer context: %d-byte string", len(s))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

func appendEinsum(buf []byte, e *tensor.Einsum) ([]byte, error) {
	if e == nil {
		return append(buf, 0), nil
	}
	buf = append(buf, 1)
	var err error
	if buf, err = appendString(buf, e.Name); err != nil {
		return nil, err
	}
	if len(e.Dims) > math.MaxUint16 || len(e.Spaces) > math.MaxUint16 {
		return nil, fmt.Errorf("persist: columnar layer context: oversized einsum %q", e.Name)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Dims)))
	for _, d := range e.Dims {
		if buf, err = appendString(buf, d.Name); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(d.Bound))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Spaces)))
	for _, sp := range e.Spaces {
		if buf, err = appendString(buf, sp.Name); err != nil {
			return nil, err
		}
		if sp.Kind < 0 || int(sp.Kind) > 255 {
			return nil, fmt.Errorf("persist: columnar layer context: tensor kind %d out of byte range", sp.Kind)
		}
		buf = append(buf, byte(sp.Kind))
		if len(sp.Axes) > math.MaxUint16 {
			return nil, fmt.Errorf("persist: columnar layer context: oversized data space %q", sp.Name)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(sp.Axes)))
		for _, ax := range sp.Axes {
			if len(ax) > math.MaxUint16 {
				return nil, fmt.Errorf("persist: columnar layer context: oversized axis in %q", sp.Name)
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(ax)))
			for _, c := range ax {
				if buf, err = appendString(buf, c.Dim); err != nil {
					return nil, err
				}
				buf = binary.BigEndian.AppendUint64(buf, uint64(c.Coeff))
			}
		}
	}
	return buf, nil
}

func appendMeta(buf []byte, d *core.LayerContextData) ([]byte, error) {
	var err error
	if buf, err = appendString(buf, d.Layer.Name); err != nil {
		return nil, err
	}
	if buf, err = appendEinsum(buf, d.Layer.Op); err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.Layer.Repeat))
	if d.Layer.Act.Signed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, f := range []float64{
		d.Layer.Act.Sparsity, d.Layer.Act.Mean, d.Layer.Act.Std,
		d.Layer.Act.Corr, d.Layer.Wgt.Std,
	} {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
	}
	if buf, err = appendEinsum(buf, d.Sliced); err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.InputRails))
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.WeightRails))
	return buf, nil
}

// EncodeLayerContextColumnar serializes a layer context in the binary
// columnar form (KindLayerContextCol).
func EncodeLayerContextColumnar(c *core.LayerContext) ([]byte, error) {
	d := c.Export()
	size := 256 +
		2*(4+16*max(len(d.InputSlicePMF), len(d.WeightSlicePMF))) +
		4 + len(d.Energies)*(1+4*25)
	buf := make([]byte, 0, size)
	buf = append(buf, colCodecVersion)
	var err error
	if buf, err = appendMeta(buf, d); err != nil {
		return nil, err
	}
	buf = appendPMFColumn(buf, d.InputSlicePMF)
	buf = appendPMFColumn(buf, d.WeightSlicePMF)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(d.Energies)))
	for _, m := range d.Energies {
		if len(m) > 255 {
			return nil, fmt.Errorf("persist: columnar layer context: %d tensor kinds in one level", len(m))
		}
		kinds := make([]int, 0, len(m))
		for t := range m {
			if t < 0 || int(t) > 255 {
				return nil, fmt.Errorf("persist: columnar layer context: tensor kind %d out of byte range", t)
			}
			kinds = append(kinds, int(t))
		}
		sort.Ints(kinds)
		buf = append(buf, byte(len(kinds)))
		for _, t := range kinds {
			ae := m[tensor.Kind(t)]
			buf = append(buf, byte(t))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(ae.Read))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(ae.Write))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(ae.Cross))
		}
	}
	return buf, nil
}

func appendPMFColumn(buf []byte, pts []dist.Point) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pts)))
	for _, p := range pts {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.Value))
	}
	for _, p := range pts {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.Prob))
	}
	return buf
}

// colReader walks a columnar payload with bounds checking; every read
// fails once `bad` is set, so call sites stay linear.
type colReader struct {
	data []byte
	off  int
	bad  bool
}

func (r *colReader) bytes(n int) []byte {
	if r.bad || n < 0 || r.off+n > len(r.data) {
		r.bad = true
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *colReader) u8() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *colReader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *colReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *colReader) i64() int64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func (r *colReader) str() string {
	return string(r.bytes(int(r.u16())))
}

func (r *colReader) einsum() *tensor.Einsum {
	switch r.u8() {
	case 0:
		return nil
	case 1:
	default:
		r.bad = true
		return nil
	}
	e := &tensor.Einsum{Name: r.str()}
	nDims := int(r.u16())
	if r.bad || 2*nDims > len(r.data)-r.off {
		r.bad = true
		return nil
	}
	e.Dims = make([]tensor.Dim, nDims)
	for i := range e.Dims {
		e.Dims[i] = tensor.Dim{Name: r.str(), Bound: int(r.i64())}
	}
	nSpaces := int(r.u16())
	if r.bad || 2*nSpaces > len(r.data)-r.off {
		r.bad = true
		return nil
	}
	e.Spaces = make([]tensor.DataSpace, nSpaces)
	for i := range e.Spaces {
		sp := tensor.DataSpace{Name: r.str(), Kind: tensor.Kind(r.u8())}
		nAxes := int(r.u16())
		if r.bad || 2*nAxes > len(r.data)-r.off {
			r.bad = true
			return nil
		}
		sp.Axes = make([]tensor.Axis, nAxes)
		for a := range sp.Axes {
			nCoefs := int(r.u16())
			if r.bad || 2*nCoefs > len(r.data)-r.off {
				r.bad = true
				return nil
			}
			ax := make(tensor.Axis, nCoefs)
			for c := range ax {
				ax[c] = tensor.Coef{Dim: r.str(), Coeff: int(r.i64())}
			}
			sp.Axes[a] = ax
		}
		e.Spaces[i] = sp
	}
	return e
}

func (r *colReader) f64() float64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

func (r *colReader) pmf() []dist.Point {
	n := int(r.u32())
	if r.bad || n < 0 || r.off+16*n > len(r.data) {
		r.bad = true
		return nil
	}
	if n == 0 {
		return nil
	}
	pts := make([]dist.Point, n)
	for i := range pts {
		pts[i].Value = r.f64()
	}
	for i := range pts {
		pts[i].Prob = r.f64()
	}
	return pts
}

// DecodeLayerContextColumnar rebuilds an evaluable layer context from an
// EncodeLayerContextColumnar payload.
func DecodeLayerContextColumnar(payload []byte) (*core.LayerContext, error) {
	r := &colReader{data: payload}
	if v := r.u8(); r.bad || v != colCodecVersion {
		return nil, fmt.Errorf("%w: codec version %d, supported %d", errColumnar, v, colCodecVersion)
	}
	data := &core.LayerContextData{}
	data.Layer.Name = r.str()
	data.Layer.Op = r.einsum()
	data.Layer.Repeat = int(r.i64())
	data.Layer.Act.Signed = r.u8() != 0
	data.Layer.Act.Sparsity = r.f64()
	data.Layer.Act.Mean = r.f64()
	data.Layer.Act.Std = r.f64()
	data.Layer.Act.Corr = r.f64()
	data.Layer.Wgt.Std = r.f64()
	data.Sliced = r.einsum()
	data.InputRails = int(r.i64())
	data.WeightRails = int(r.i64())
	if r.bad {
		return nil, fmt.Errorf("%w: truncated meta", errColumnar)
	}
	data.InputSlicePMF = r.pmf()
	data.WeightSlicePMF = r.pmf()
	nLevels := int(r.u32())
	if r.bad || nLevels < 0 || nLevels > len(payload) {
		return nil, fmt.Errorf("%w: level count", errColumnar)
	}
	data.Energies = make([]map[tensor.Kind]core.AccessEnergy, nLevels)
	for i := range data.Energies {
		nKinds := int(r.u8())
		m := make(map[tensor.Kind]core.AccessEnergy, nKinds)
		for k := 0; k < nKinds; k++ {
			t := tensor.Kind(r.u8())
			m[t] = core.AccessEnergy{Read: r.f64(), Write: r.f64(), Cross: r.f64()}
		}
		data.Energies[i] = m
	}
	if r.bad {
		return nil, fmt.Errorf("%w: truncated energy tables", errColumnar)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errColumnar, len(payload)-r.off)
	}
	return core.RestoreLayerContext(data)
}
