package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func payload(s string) func() ([]byte, error) {
	return func() ([]byte, error) { return []byte(s), nil }
}

func scanAll(t *testing.T, s *Store) (map[string]Record, ScanStats) {
	t.Helper()
	var mu sync.Mutex
	got := map[string]Record{}
	stats, err := s.Scan(4, func(rec Record) error {
		mu.Lock()
		defer mu.Unlock()
		got[rec.Key] = rec
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func TestStoreWriteScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(KindEngine, "eng|aa", 2.5, payload("engine"))
	s.Put(KindLayerContext, "ctx|aa|bb", 0.5, payload("context"))
	s.PutBlocking(KindJob, "wal|job-000001", 0, payload("wal"))
	s.Flush()
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, stats := scanAll(t, s2)
	if stats.Files != 3 || stats.Loaded != 3 || stats.Skipped != 0 {
		t.Fatalf("scan stats = %+v, want 3 loaded", stats)
	}
	if rec := got["eng|aa"]; rec.Kind != KindEngine || rec.CostSec != 2.5 || string(rec.Payload) != "engine" {
		t.Fatalf("engine record = %+v", rec)
	}
	if rec := got["ctx|aa|bb"]; rec.Kind != KindLayerContext || string(rec.Payload) != "context" {
		t.Fatalf("context record = %+v", rec)
	}
}

func TestStoreRewriteAndDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(KindJob, "wal|j1", 0, payload("v1"))
	s.Put(KindJob, "wal|j1", 0, payload("v2"))
	s.Flush()
	got, stats := scanAll(t, s)
	if stats.Files != 1 {
		t.Fatalf("rewriting a key must replace its file, have %d files", stats.Files)
	}
	if string(got["wal|j1"].Payload) != "v2" {
		t.Fatalf("last write must win, got %q", got["wal|j1"].Payload)
	}

	s.Delete(KindJob, "wal|j1")
	s.Flush()
	if _, stats := scanAll(t, s); stats.Files != 0 {
		t.Fatalf("deleted key must leave no file, have %d", stats.Files)
	}
	// Deleting again is a no-op, not an error.
	s.Delete(KindJob, "wal|j1")
	s.Flush()
	if st := s.Stats(); st.WriteErrors != 0 {
		t.Fatalf("double delete must not count as a write error: %+v", st)
	}
}

// TestStoreScanReclaimsBadFiles drops corrupt, truncated, foreign, and
// callback-rejected files: all skipped, all deleted, none fatal.
func TestStoreScanReclaimsBadFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(KindEngine, "eng|good", 1, payload("good"))
	s.Put(KindEngine, "eng|rejected", 1, payload("rejected"))
	s.Flush()

	good, err := EncodeRecord(Record{Kind: KindEngine, Key: "eng|x", CostSec: 1, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)/2] ^= 0xff
	for name, data := range map[string][]byte{
		"corrupt" + fileSuffix:   corrupt,
		"truncated" + fileSuffix: good[:len(good)-7],
		"empty" + fileSuffix:     {},
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Files without the store suffix are not the store's to manage.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var keys []string
	stats, err := s.Scan(4, func(rec Record) error {
		if rec.Key == "eng|rejected" {
			return fmt.Errorf("callback rejects this record")
		}
		mu.Lock()
		defer mu.Unlock()
		keys = append(keys, rec.Key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	if stats.Files != 5 || stats.Loaded != 1 || stats.Skipped != 4 {
		t.Fatalf("scan stats = %+v, want files=5 loaded=1 skipped=4", stats)
	}
	if len(keys) != 1 || keys[0] != "eng|good" {
		t.Fatalf("loaded keys = %v, want only eng|good", keys)
	}
	// Bad files are reclaimed; the good record and the foreign file stay.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("after scan dir has %v, want the good record and README.txt", names)
	}
}

// TestStoreScanOrderedAdmitsByDescendingCost pins the cost-ordered
// admission contract: callbacks fire serially, most expensive record
// first, ties broken by ascending key — so a budgeted cache fed by a
// boot warm-scan keeps the compiles that are costliest to redo.
func TestStoreScanOrderedAdmitsByDescendingCost(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(KindEngine, "eng|cheap", 0.25, payload("cheap"))
	s.Put(KindEngine, "eng|mid", 1.5, payload("mid"))
	s.Put(KindEngine, "eng|dear", 8, payload("dear"))
	// Equal costs: the tie-break is the key, ascending.
	s.Put(KindLayerContext, "ctx|a|tie", 1.5, payload("tie-a"))
	s.Put(KindLayerContext, "ctx|b|tie", 1.5, payload("tie-b"))
	s.Flush()

	var keys []string
	stats, err := s.ScanOrdered(4, func(rec Record) error {
		keys = append(keys, rec.Key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 5 || stats.Loaded != 5 || stats.Skipped != 0 {
		t.Fatalf("scan stats = %+v, want 5 loaded", stats)
	}
	want := []string{"eng|dear", "ctx|a|tie", "ctx|b|tie", "eng|mid", "eng|cheap"}
	if fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Fatalf("admission order = %v, want %v", keys, want)
	}
}

// TestStoreScanOrderedReclaimsRejected: a record the admission callback
// refuses is counted skipped and its file deleted, like Scan.
func TestStoreScanOrderedReclaimsRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(KindEngine, "eng|keep", 2, payload("keep"))
	s.Put(KindEngine, "eng|reject", 5, payload("reject"))
	s.Flush()

	stats, err := s.ScanOrdered(2, func(rec Record) error {
		if rec.Key == "eng|reject" {
			return fmt.Errorf("refused")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 2 || stats.Loaded != 1 || stats.Skipped != 1 {
		t.Fatalf("scan stats = %+v, want loaded=1 skipped=1", stats)
	}
	if _, err := os.Stat(filepath.Join(dir, RecordName(KindEngine, "eng|reject"))); !os.IsNotExist(err) {
		t.Fatal("rejected record's file must be deleted")
	}
	if _, err := os.Stat(filepath.Join(dir, RecordName(KindEngine, "eng|keep"))); err != nil {
		t.Fatal("accepted record's file must survive")
	}
}

// TestStoreCloseDropsLateWrites: Put/Delete/Flush after Close must not
// panic or block; they count as dropped.
func TestStoreCloseDropsLateWrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	s.Put(KindEngine, "eng|late", 1, payload("late"))
	s.PutBlocking(KindJob, "wal|late", 0, payload("late"))
	s.Delete(KindJob, "wal|late")
	s.Flush()
	if st := s.Stats(); st.Dropped != 3 || st.Written != 0 {
		t.Fatalf("stats after closed writes = %+v, want 3 dropped", st)
	}
}

func TestStoreOpenRejectsFileAsDir(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file); err == nil {
		t.Fatal("opening a store over a regular file must fail")
	}
}
