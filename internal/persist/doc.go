// Package persist is the durable warm-start store: a versioned,
// fingerprint-addressed on-disk cache of the expensive state the serving
// layer otherwise recomputes after every restart — compiled engines,
// per-layer amortized contexts (the PMFs and per-action energy tables of
// Algorithm 1 lines 3-7), and async-job records.
//
// # File format
//
// Every record is one file containing a self-describing binary envelope:
//
//	offset  size  field
//	0       4     magic "CWS1" (CiM warm-start store)
//	4       2     format version, big-endian uint16 (currently 1)
//	6       1     record kind (KindEngine, KindLayerContext, KindJob)
//	7       8     cost, big-endian IEEE-754 float64 — measured compile
//	              seconds for cache entries (feeds the GDSF eviction
//	              weight on warm start), zero for job records
//	15      4     key length, big-endian uint32
//	19      n     key (the content-addressed cache key or job record key)
//	19+n    4     payload length, big-endian uint32
//	23+n    m     payload (kind-specific JSON, see codec.go)
//	23+n+m  4     CRC-32 (IEEE) of all preceding bytes
//
// Filenames are derived from the kind and a hash of the key
// ("<kind>-<sha256(key) prefix>.cws"), so rewriting a key atomically
// replaces its record; the authoritative key lives inside the envelope.
//
// # Versioning and corruption policy
//
// The store is a cache, never a source of truth, so reads are strictly
// best-effort: a file with a bad magic, an unknown format version, a
// truncated envelope, or a checksum mismatch is skipped AND deleted during
// Scan — never a fatal error. Format changes bump the version; old files
// are then reclaimed on the next scan rather than migrated. Payload-level
// schema drift is caught one level up: the serving layer recomputes each
// record's content fingerprint after decoding and discards mismatches, so
// a stale file can at worst cost a recompute, never a wrong answer.
//
// # Write-behind
//
// Writes go through a single background writer goroutine. Put is
// non-blocking — when the queue is full the record is dropped and counted
// (the hot path must never wait on disk; a dropped record only means a
// colder next restart). PutBlocking waits for queue space and is meant for
// durability-bearing records (job WAL entries) written off the hot path.
package persist
