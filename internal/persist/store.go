package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// fileSuffix marks store files; Scan ignores everything else in the dir.
const fileSuffix = ".cws"

// tmpPrefix marks in-flight writes; Open reaps leftovers from crashes.
const tmpPrefix = ".tmp-"

// defaultQueue bounds the write-behind backlog. A full queue drops
// non-blocking Puts (the store is a cache; losing a write only costs a
// colder restart) and briefly blocks PutBlocking callers.
const defaultQueue = 1024

// Stats counts the store's write-behind and scan activity. Counter
// snapshots; safe to read concurrently with writes.
type Stats struct {
	Written     uint64 `json:"written"`
	Deleted     uint64 `json:"deleted"`
	WriteErrors uint64 `json:"write_errors"`
	Dropped     uint64 `json:"dropped"`
}

// ScanStats summarizes one Scan pass.
type ScanStats struct {
	// Files is the number of store files seen.
	Files int `json:"files"`
	// Loaded counts records decoded and accepted by the callback.
	Loaded int `json:"loaded"`
	// Skipped counts records rejected — corrupt, version-mismatched, or
	// refused by the callback; all are deleted from disk.
	Skipped int `json:"skipped"`
}

// op is one queued writer action: a pending write (encode != nil) or a
// deletion (encode == nil), or a flush barrier (ack != nil).
type op struct {
	name   string
	encode func() ([]byte, error)
	ack    chan struct{}
}

// Store is a directory of envelope files with a single background writer.
// All methods are safe for concurrent use.
type Store struct {
	dir   string
	queue chan op
	wg    sync.WaitGroup

	// closing guards queue sends against Close: senders hold it for
	// reading, Close takes it for writing before closing the channel, so a
	// fill completing during shutdown is dropped instead of panicking.
	closing sync.RWMutex
	closed  bool

	written     atomic.Uint64
	deleted     atomic.Uint64
	writeErrors atomic.Uint64
	dropped     atomic.Uint64

	// observe, when set (via SetObserver, before the first Put), is
	// invoked from the writer goroutine with each completed write's
	// duration (encode + fsync + rename) and outcome — the seam the
	// serving layer hangs its persist-latency histogram on.
	observe func(d time.Duration, ok bool)
}

// SetObserver installs the write-latency callback. Call it right after
// Open, before any Put: the writer goroutine reads the field only when
// handling ops, and ops are ordered after the set through the queue
// channel, so no lock is needed.
func (s *Store) SetObserver(fn func(d time.Duration, ok bool)) { s.observe = fn }

// Open creates (if needed) the store directory and starts the writer.
// The directory is owned by one store in one process at a time; stale
// temp files left by a crashed predecessor are reaped here.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasPrefix(e.Name(), tmpPrefix) {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	s := &Store{dir: dir, queue: make(chan op, defaultQueue)}
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the write-behind counters.
func (s *Store) Stats() Stats {
	return Stats{
		Written:     s.written.Load(),
		Deleted:     s.deleted.Load(),
		WriteErrors: s.writeErrors.Load(),
		Dropped:     s.dropped.Load(),
	}
}

// RecordName maps a record key to its stable file (or object) name.
// Keys embed hex fingerprints and separator characters, so the name is a
// hash of the key; the authoritative key is stored inside the envelope.
// The disk store and the cluster blob tier share this scheme, so a file
// copied between the two tiers keeps its identity.
func RecordName(kind Kind, key string) string {
	sum := sha256.Sum256([]byte(key))
	return fmt.Sprintf("%s-%s%s", kind, hex.EncodeToString(sum[:16]), fileSuffix)
}

// fileName is RecordName joined onto the store directory.
func (s *Store) fileName(kind Kind, key string) string {
	return filepath.Join(s.dir, RecordName(kind, key))
}

// Put enqueues a record without blocking: encode runs on the writer
// goroutine (so the caller pays neither serialization nor disk time), and
// a full queue drops the record. Encode must capture immutable state.
func (s *Store) Put(kind Kind, key string, costSec float64, encode func() ([]byte, error)) {
	s.enqueue(kind, key, costSec, encode, false)
}

// PutBlocking enqueues a record, waiting for queue space. Use it for
// records that carry durability (job WAL entries) rather than cached
// recomputables.
func (s *Store) PutBlocking(kind Kind, key string, costSec float64, encode func() ([]byte, error)) {
	s.enqueue(kind, key, costSec, encode, true)
}

func (s *Store) enqueue(kind Kind, key string, costSec float64, encode func() ([]byte, error), block bool) {
	o := op{name: s.fileName(kind, key), encode: func() ([]byte, error) {
		payload, err := encode()
		if err != nil {
			return nil, err
		}
		return EncodeRecord(Record{Kind: kind, Key: key, CostSec: costSec, Payload: payload})
	}}
	s.send(o, block)
}

// send enqueues one writer op unless the store is closed (or, for
// non-blocking sends, the queue is full); refused ops count as dropped.
func (s *Store) send(o op, block bool) bool {
	s.closing.RLock()
	defer s.closing.RUnlock()
	if s.closed {
		if o.ack == nil { // a refused flush barrier is not a lost record
			s.dropped.Add(1)
		}
		return false
	}
	if block {
		s.queue <- o
		return true
	}
	select {
	case s.queue <- o:
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// Delete enqueues removal of a key's record (no-op if absent). Deletions
// follow earlier writes of the same key in FIFO order, so a
// write-then-delete sequence leaves no file behind.
func (s *Store) Delete(kind Kind, key string) {
	s.send(op{name: s.fileName(kind, key)}, true)
}

// Flush blocks until every previously enqueued write and deletion has
// reached disk.
func (s *Store) Flush() {
	ack := make(chan struct{})
	if s.send(op{ack: ack}, true) {
		<-ack
	}
}

// Close flushes and stops the writer. Later Puts and Deletes are dropped.
func (s *Store) Close() {
	s.closing.Lock()
	already := s.closed
	s.closed = true
	if !already {
		close(s.queue)
	}
	s.closing.Unlock()
	s.wg.Wait()
}

// writer drains the queue: atomic writes (temp file + rename), deletions,
// and flush barriers.
func (s *Store) writer() {
	defer s.wg.Done()
	for o := range s.queue {
		switch {
		case o.ack != nil:
			close(o.ack)
		case o.encode == nil:
			switch err := os.Remove(o.name); {
			case err == nil:
				s.deleted.Add(1)
			case !os.IsNotExist(err):
				s.writeErrors.Add(1)
			}
		default:
			start := time.Now()
			err := s.writeFile(o)
			if err != nil {
				s.writeErrors.Add(1)
			} else {
				s.written.Add(1)
			}
			if s.observe != nil {
				s.observe(time.Since(start), err == nil)
			}
		}
	}
}

func (s *Store) writeFile(o op) error {
	data, err := o.encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	// Sync before the rename: an atomic rename of unsynced data can
	// survive a crash as an empty or partial file under the final name,
	// and job WAL records are only as durable as this write. All of it
	// happens on the writer goroutine, never a request path.
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, o.name); err != nil {
		os.Remove(name)
		return err
	}
	s.syncDir()
	return nil
}

// syncDir flushes the directory entry after a rename so the new name
// itself survives a crash (best effort: some filesystems reject it).
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Scan decodes every store file, fanning decode + callback across at most
// workers goroutines (fn must be safe for concurrent calls). A record
// that fails to decode — or for which fn returns an error — is counted as
// skipped and its file deleted: the store is a cache, so the only recovery
// from a bad entry is recomputation, and keeping the file would re-fail
// every boot. Scan itself fails only when the directory is unreadable.
func (s *Store) Scan(workers int, fn func(Record) error) (ScanStats, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return ScanStats{}, fmt.Errorf("persist: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), fileSuffix) {
			names = append(names, filepath.Join(s.dir, e.Name()))
		}
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}
	var (
		mu    sync.Mutex
		stats = ScanStats{Files: len(names)}
		feed  = make(chan string)
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range feed {
				ok := s.loadOne(name, fn)
				mu.Lock()
				if ok {
					stats.Loaded++
				} else {
					stats.Skipped++
				}
				mu.Unlock()
			}
		}()
	}
	for _, name := range names {
		feed <- name
	}
	close(feed)
	wg.Wait()
	return stats, nil
}

// ScanOrdered is Scan with a cost-ordered admission pass: files are read
// and decoded across at most workers goroutines, then fn is called
// serially in descending CostSec order (ties broken by key, ascending,
// so the order is deterministic). Use it for boot warm-starts feeding a
// budgeted cache: the most expensive compiles are admitted first, so if
// the cache cannot hold everything it keeps the records that are
// costliest to recompute. A record that fails to decode — or that fn
// refuses — is counted as skipped and its file deleted, exactly like
// Scan.
func (s *Store) ScanOrdered(workers int, fn func(Record) error) (ScanStats, error) {
	type loaded struct {
		name string
		rec  Record
	}
	var (
		mu   sync.Mutex
		recs []loaded
	)
	// Collect pass: reuse Scan's fan-out with a callback that only
	// accumulates, so the parallel half (read + decode + checksum) is
	// shared and only admission is serialized.
	stats, err := s.Scan(workers, func(rec Record) error {
		mu.Lock()
		recs = append(recs, loaded{name: s.fileName(rec.Kind, rec.Key), rec: rec})
		mu.Unlock()
		return nil
	})
	if err != nil {
		return stats, err
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].rec.CostSec != recs[j].rec.CostSec {
			return recs[i].rec.CostSec > recs[j].rec.CostSec
		}
		return recs[i].rec.Key < recs[j].rec.Key
	})
	for _, l := range recs {
		if ferr := fn(l.rec); ferr != nil {
			os.Remove(l.name)
			stats.Loaded--
			stats.Skipped++
		}
	}
	return stats, nil
}

// loadOne reads, decodes, and hands one file to the callback, deleting it
// on any failure.
func (s *Store) loadOne(name string, fn func(Record) error) bool {
	data, err := os.ReadFile(name)
	if err == nil {
		var rec Record
		if rec, err = DecodeRecord(data); err == nil {
			err = fn(rec)
		}
	}
	if err != nil {
		os.Remove(name)
		return false
	}
	return true
}
