package persist

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/workload"
)

// codecGrid is the property-test grid: every published macro family
// represented in the cache benchmarks x layers with distinct statistics
// (sparse CNN, dense signed transformer).
func codecGrid(t *testing.T) []struct {
	name string
	arch *core.Arch
} {
	t.Helper()
	out := []struct {
		name string
		arch *core.Arch
	}{}
	for _, name := range []string{"base", "macro-b", "macro-d"} {
		arch, err := macros.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			name string
			arch *core.Arch
		}{name, arch})
	}
	return out
}

// TestEngineCodecRoundTrip: a decoded engine evaluates exactly like the
// original (same area, clock, and per-mapping energies).
func TestEngineCodecRoundTrip(t *testing.T) {
	for _, tc := range codecGrid(t) {
		eng, err := core.NewEngine(tc.arch)
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeEngine(eng)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeEngine(data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if dec.Area() != eng.Area() || dec.ClockHz() != eng.ClockHz() {
			t.Fatalf("%s: decoded engine area/clock %g/%g, want %g/%g",
				tc.name, dec.Area(), dec.ClockHz(), eng.Area(), eng.ClockHz())
		}
	}
}

// ulpEqual tolerates only last-ULP accumulation differences: the
// evaluator sums per-tensor energies by ranging over a Go map, whose
// randomized iteration order can flip the final rounding bit between two
// evaluations of the *same* context. Any genuine codec drift (a
// renormalized PMF, a truncated float) is orders of magnitude larger.
func ulpEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= scale*1e-14
}

// TestLayerContextCodecRoundTrip is the bit-equality property: for every
// (macro, layer) pair, a context that went encode -> decode carries
// bit-identical data (the re-encode is a byte-level fixed point, and
// every per-tensor energy is float-exact) and produces the same
// evaluation results for the same mapping — exact for counts, within one
// accumulation ULP for map-order-summed aggregates (see ulpEqual).
func TestLayerContextCodecRoundTrip(t *testing.T) {
	layers := []workload.Layer{
		workload.ResNet18().Layers[0], // sparse unsigned CNN layer
		workload.ResNet18().Layers[5], // deeper, different stats
		workload.ViTBase().Layers[0],  // dense signed transformer layer
	}
	for _, tc := range codecGrid(t) {
		eng, err := core.NewEngine(tc.arch)
		if err != nil {
			t.Fatal(err)
		}
		for _, layer := range layers {
			ctx, err := eng.PrepareLayer(layer)
			if err != nil {
				t.Fatal(err)
			}
			data, err := EncodeLayerContext(ctx)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := DecodeLayerContext(data)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, layer.Name, err)
			}
			if restored.LevelCount() != ctx.LevelCount() {
				t.Fatalf("%s/%s: level count %d, want %d",
					tc.name, layer.Name, restored.LevelCount(), ctx.LevelCount())
			}

			m, err := eng.GreedyMapping(ctx)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eng.EvaluateMapping(ctx, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.EvaluateMapping(restored, m)
			if err != nil {
				t.Fatalf("%s/%s: evaluating with restored context: %v", tc.name, layer.Name, err)
			}
			if got.Cycles != want.Cycles || got.MACs != want.MACs ||
				got.PaddedMACs != want.PaddedMACs || got.Utilization != want.Utilization ||
				got.DRAMLimited != want.DRAMLimited {
				t.Fatalf("%s/%s: restored context evaluates differently:\n got %+v\nwant %+v",
					tc.name, layer.Name, got, want)
			}
			if !ulpEqual(got.Energy, want.Energy) || !ulpEqual(got.TimeSec, want.TimeSec) ||
				!ulpEqual(got.LeakageJ, want.LeakageJ) {
				t.Fatalf("%s/%s: restored context energy/time diverge:\n got %+v\nwant %+v",
					tc.name, layer.Name, got, want)
			}
			for i := range want.Levels {
				if !ulpEqual(got.Levels[i].Total, want.Levels[i].Total) {
					t.Fatalf("%s/%s level %s: energy %g != %g",
						tc.name, layer.Name, want.Levels[i].Name,
						got.Levels[i].Total, want.Levels[i].Total)
				}
				// Per-tensor values come straight from the context's energy
				// tables without re-accumulation: these must be bit-equal.
				for k, v := range want.Levels[i].ByTensor {
					if got.Levels[i].ByTensor[k] != v {
						t.Fatalf("%s/%s level %s tensor %v: %g != %g (must be bit-equal)",
							tc.name, layer.Name, want.Levels[i].Name, k,
							got.Levels[i].ByTensor[k], v)
					}
				}
			}

			// A second encode of the restored context is byte-identical:
			// the codec is a fixed point, so repeated restarts never drift.
			data2, err := EncodeLayerContext(restored)
			if err != nil {
				t.Fatal(err)
			}
			if string(data2) != string(data) {
				t.Fatalf("%s/%s: re-encoding a restored context changed the bytes", tc.name, layer.Name)
			}
		}
	}
}

// TestLayerContextDecodeRejectsGarbage: payload-level validation failures
// surface as errors, not panics or half-built contexts.
func TestLayerContextDecodeRejectsGarbage(t *testing.T) {
	for _, payload := range []string{
		"",                   // empty
		"{",                  // malformed JSON
		"{}",                 // no sliced einsum
		`{"sliced": null}`,   // still no einsum
		`{"energies": [{}]}`, // energies without structure
	} {
		if _, err := DecodeLayerContext([]byte(payload)); err == nil {
			t.Fatalf("payload %q must fail to decode", payload)
		}
	}
	if _, err := DecodeEngine([]byte(`{"Name": "x"}`)); err == nil {
		t.Fatal("an arch that fails validation must fail to decode")
	}
}
