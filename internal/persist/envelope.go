package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Kind tags what a record's payload decodes to.
type Kind uint8

// Record kinds. Values are part of the on-disk format; never renumber.
const (
	// KindEngine is a compiled engine, serialized as its architecture
	// (JSON core.Arch); the decoder is core.NewEngine.
	KindEngine Kind = 1
	// KindLayerContext is a per-layer amortized context, serialized as
	// JSON core.LayerContextData.
	KindLayerContext Kind = 2
	// KindJob is an async-job record: a terminal snapshot or a queued-job
	// WAL entry, distinguished by key prefix (see internal/serve).
	KindJob Kind = 3
	// KindLayerContextCol is a layer context in the binary columnar
	// payload format (EncodeLayerContextColumnar): PMF points and energy
	// tables as raw float64 columns instead of JSON, cutting
	// warm-from-disk decode cost. Readers accept both kinds; new writes
	// use this one.
	KindLayerContextCol Kind = 4
	// KindCheckpoint is one completed grid item of a running sweep job
	// (EncodeCheckpointRecord), written through the write-behind queue as
	// the item finishes so WAL replay resumes from the last checkpoint
	// instead of item zero.
	KindCheckpoint Kind = 5
)

// String names the kind for filenames and diagnostics.
func (k Kind) String() string {
	switch k {
	case KindEngine:
		return "eng"
	case KindLayerContext:
		return "ctx"
	case KindJob:
		return "job"
	case KindLayerContextCol:
		return "ctxc"
	case KindCheckpoint:
		return "ckpt"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

func (k Kind) valid() bool { return k >= KindEngine && k <= KindCheckpoint }

// Record is one persisted entry: a kind, its content-addressed key, the
// measured cost of recomputing it (seconds; cache records only), and the
// kind-specific payload.
type Record struct {
	Kind    Kind
	Key     string
	CostSec float64
	Payload []byte
}

// FormatVersion is the current envelope format. Decoding any other
// version returns ErrVersion (the file is then reclaimed by Scan).
const FormatVersion = 1

var magic = [4]byte{'C', 'W', 'S', '1'}

// ErrCorrupt marks an envelope that failed structural validation:
// truncated, bad magic, impossible lengths, or checksum mismatch.
var ErrCorrupt = errors.New("persist: corrupt record")

// ErrVersion marks an envelope written by a different format version.
var ErrVersion = errors.New("persist: format version mismatch")

// envelopeOverhead is the byte count of everything but key and payload.
const envelopeOverhead = 4 + 2 + 1 + 8 + 4 + 4 + 4

// EncodeRecord serializes a record into the self-describing envelope.
func EncodeRecord(r Record) ([]byte, error) {
	if !r.Kind.valid() {
		return nil, fmt.Errorf("persist: invalid record kind %d", r.Kind)
	}
	if r.Key == "" {
		return nil, errors.New("persist: record has no key")
	}
	buf := make([]byte, 0, envelopeOverhead+len(r.Key)+len(r.Payload))
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, FormatVersion)
	buf = append(buf, byte(r.Kind))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r.CostSec))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Key)))
	buf = append(buf, r.Key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Payload)))
	buf = append(buf, r.Payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeRecord parses an envelope, verifying structure and checksum. It
// returns ErrVersion for well-formed envelopes of another format version
// and ErrCorrupt for everything unparseable; both mean "skip and delete".
func DecodeRecord(data []byte) (Record, error) {
	if len(data) < envelopeOverhead {
		return Record{}, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return Record{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	// Checksum first: a corrupted version field must not masquerade as a
	// clean version mismatch.
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return Record{}, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != FormatVersion {
		return Record{}, fmt.Errorf("%w: file version %d, supported %d", ErrVersion, v, FormatVersion)
	}
	r := Record{
		Kind:    Kind(data[6]),
		CostSec: math.Float64frombits(binary.BigEndian.Uint64(data[7:15])),
	}
	if !r.Kind.valid() {
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, data[6])
	}
	if math.IsNaN(r.CostSec) || math.IsInf(r.CostSec, 0) || r.CostSec < 0 {
		return Record{}, fmt.Errorf("%w: invalid cost %g", ErrCorrupt, r.CostSec)
	}
	keyLen := int(binary.BigEndian.Uint32(data[15:19]))
	rest := len(data) - envelopeOverhead
	if keyLen <= 0 || keyLen > rest {
		return Record{}, fmt.Errorf("%w: key length %d exceeds record", ErrCorrupt, keyLen)
	}
	r.Key = string(data[19 : 19+keyLen])
	off := 19 + keyLen
	payloadLen := int(binary.BigEndian.Uint32(data[off : off+4]))
	if payloadLen != rest-keyLen {
		return Record{}, fmt.Errorf("%w: payload length %d does not match record size", ErrCorrupt, payloadLen)
	}
	r.Payload = append([]byte(nil), data[off+4:off+4+payloadLen]...)
	return r, nil
}
