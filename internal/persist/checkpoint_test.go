package persist

import (
	"bytes"
	"errors"
	"testing"
)

func testCheckpoint() CheckpointRecord {
	return CheckpointRecord{
		JobID:   "job-000042",
		Index:   7,
		Payload: []byte(`{"energy_j":1.5}`),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := testCheckpoint()
	data, err := EncodeCheckpointRecord(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpointRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.JobID != want.JobID || got.Index != want.Index || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
	// An empty payload is legal (an item whose result serialized to
	// nothing still marks the item finished).
	data, err = EncodeCheckpointRecord(CheckpointRecord{JobID: "job-000001", Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeCheckpointRecord(data); err != nil || len(got.Payload) != 0 {
		t.Fatalf("empty payload round trip: %+v %v", got, err)
	}
}

func TestCheckpointRejectsInvalid(t *testing.T) {
	if _, err := EncodeCheckpointRecord(CheckpointRecord{Index: 1}); err == nil {
		t.Fatal("encode without a job ID must fail")
	}
	if _, err := EncodeCheckpointRecord(CheckpointRecord{JobID: "j", Index: -1}); err == nil {
		t.Fatal("encode with a negative index must fail")
	}
}

func TestCheckpointTruncation(t *testing.T) {
	data, err := EncodeCheckpointRecord(testCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := DecodeCheckpointRecord(data[:n]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", n, len(data))
		}
	}
}

func TestCheckpointBadMagicAndVersion(t *testing.T) {
	data, err := EncodeCheckpointRecord(testCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := DecodeCheckpointRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[5] = 99
	if _, err := DecodeCheckpointRecord(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}
}

// TestCheckpointInsideEnvelope pins the composed on-disk form: a
// checkpoint payload inside a KindCheckpoint envelope survives the full
// encode/decode stack.
func TestCheckpointInsideEnvelope(t *testing.T) {
	inner, err := EncodeCheckpointRecord(testCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	env, err := EncodeRecord(Record{Kind: KindCheckpoint, Key: "ckpt|job-000042|000007", Payload: inner})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeRecord(env)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != KindCheckpoint || rec.Kind.String() != "ckpt" {
		t.Fatalf("kind %v (%s)", rec.Kind, rec.Kind)
	}
	got, err := DecodeCheckpointRecord(rec.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.JobID != "job-000042" || got.Index != 7 {
		t.Fatalf("nested round trip: %+v", got)
	}
}
