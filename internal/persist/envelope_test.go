package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

func testRecord() Record {
	return Record{
		Kind:    KindLayerContext,
		Key:     "ctx|abcdef|123456",
		CostSec: 1.25e-3,
		Payload: []byte(`{"hello":"world"}`),
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	want := testRecord()
	data, err := EncodeRecord(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.Key != want.Key || got.CostSec != want.CostSec {
		t.Fatalf("header round trip: got %+v want %+v", got, want)
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("payload round trip: got %q want %q", got.Payload, want.Payload)
	}
}

func TestEnvelopeRejectsInvalidRecords(t *testing.T) {
	if _, err := EncodeRecord(Record{Kind: Kind(99), Key: "k"}); err == nil {
		t.Fatal("unknown kind must not encode")
	}
	if _, err := EncodeRecord(Record{Kind: KindEngine}); err == nil {
		t.Fatal("empty key must not encode")
	}
}

// TestEnvelopeTruncation decodes every proper prefix of a valid envelope:
// all must fail cleanly (never panic, never return a record).
func TestEnvelopeTruncation(t *testing.T) {
	data, err := EncodeRecord(testRecord())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := DecodeRecord(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes must fail", n, len(data))
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation to %d: unexpected error class %v", n, err)
		}
	}
}

// TestEnvelopeBitFlips flips one bit in every byte position: the checksum
// (or an earlier structural check) must catch each corruption.
func TestEnvelopeBitFlips(t *testing.T) {
	data, err := EncodeRecord(testRecord())
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0x40
		if _, err := DecodeRecord(corrupted); err == nil {
			t.Fatalf("bit flip at byte %d must fail decoding", i)
		}
	}
}

func TestEnvelopeVersionMismatch(t *testing.T) {
	data, err := EncodeRecord(testRecord())
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the version field and re-seal the checksum so the only
	// defect is the version itself.
	binary.BigEndian.PutUint16(data[4:6], FormatVersion+1)
	reseal(data)
	if _, err := DecodeRecord(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version must return ErrVersion, got %v", err)
	}

	// A corrupted version byte without a matching checksum is corruption,
	// not a clean version mismatch.
	data2, _ := EncodeRecord(testRecord())
	binary.BigEndian.PutUint16(data2[4:6], FormatVersion+1)
	if _, err := DecodeRecord(data2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad checksum must win over version mismatch, got %v", err)
	}
}

func TestEnvelopeBadMagic(t *testing.T) {
	data, err := EncodeRecord(testRecord())
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	reseal(data)
	if _, err := DecodeRecord(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic must return ErrCorrupt, got %v", err)
	}
}

// reseal recomputes the trailing checksum after a deliberate mutation.
func reseal(data []byte) {
	body := data[:len(data)-4]
	binary.BigEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))
}
