package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CheckpointRecord is one completed grid item of a sweep job: which job,
// which item index, and the item's serialized result (the serving layer
// stores the JSON api.EvalResult). Checkpoints ride the write-behind
// queue as KindCheckpoint envelopes while the job runs; at boot,
// warm-scan hands them to WAL replay so only unfinished items are
// re-evaluated, and the terminal hook deletes them with the WAL.
type CheckpointRecord struct {
	JobID   string
	Index   int
	Payload []byte
}

// checkpointMagic guards the payload format inside the (already
// checksummed) persist envelope; ckptVersion is bumped on layout change.
var checkpointMagic = [4]byte{'C', 'K', 'P', '1'}

const ckptVersion = 1

// ckptOverhead is the byte count of everything but the job ID and the
// payload: magic, version, job-ID length, index, payload length.
const ckptOverhead = 4 + 2 + 4 + 4 + 4

// EncodeCheckpointRecord serializes a checkpoint for use as a
// KindCheckpoint envelope payload.
func EncodeCheckpointRecord(c CheckpointRecord) ([]byte, error) {
	if c.JobID == "" {
		return nil, errors.New("persist: checkpoint has no job ID")
	}
	if c.Index < 0 {
		return nil, fmt.Errorf("persist: negative checkpoint index %d", c.Index)
	}
	buf := make([]byte, 0, ckptOverhead+len(c.JobID)+len(c.Payload))
	buf = append(buf, checkpointMagic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, ckptVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.JobID)))
	buf = append(buf, c.JobID...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.Index))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Payload)))
	buf = append(buf, c.Payload...)
	return buf, nil
}

// DecodeCheckpointRecord parses an encoded checkpoint, validating
// structure (the enclosing envelope already validated the checksum).
// Every failure is ErrCorrupt: the caller skips and deletes the record,
// re-evaluating that item instead.
func DecodeCheckpointRecord(data []byte) (CheckpointRecord, error) {
	if len(data) < ckptOverhead {
		return CheckpointRecord{}, fmt.Errorf("%w: %d bytes is shorter than a checkpoint", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != checkpointMagic {
		return CheckpointRecord{}, fmt.Errorf("%w: bad checkpoint magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != ckptVersion {
		return CheckpointRecord{}, fmt.Errorf("%w: checkpoint version %d, supported %d", ErrVersion, v, ckptVersion)
	}
	idLen := int(binary.BigEndian.Uint32(data[6:10]))
	rest := len(data) - ckptOverhead
	if idLen <= 0 || idLen > rest {
		return CheckpointRecord{}, fmt.Errorf("%w: job-ID length %d exceeds record", ErrCorrupt, idLen)
	}
	c := CheckpointRecord{JobID: string(data[10 : 10+idLen])}
	off := 10 + idLen
	idx := binary.BigEndian.Uint32(data[off : off+4])
	if idx > 1<<31-1 {
		return CheckpointRecord{}, fmt.Errorf("%w: checkpoint index %d out of range", ErrCorrupt, idx)
	}
	c.Index = int(idx)
	payloadLen := int(binary.BigEndian.Uint32(data[off+4 : off+8]))
	if payloadLen != rest-idLen {
		return CheckpointRecord{}, fmt.Errorf("%w: payload length %d does not match record size", ErrCorrupt, payloadLen)
	}
	c.Payload = append([]byte(nil), data[off+8:off+8+payloadLen]...)
	return c, nil
}
