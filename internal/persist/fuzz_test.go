package persist

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord hammers the envelope decoder with arbitrary bytes:
// it must never panic, and any input it accepts must re-encode to a
// byte-identical envelope (the decoder admits only canonical forms).
func FuzzDecodeRecord(f *testing.F) {
	seed, err := EncodeRecord(Record{Kind: KindEngine, Key: "eng|abc", CostSec: 1.25, Payload: []byte(`{"a":1}`)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	ck, err := EncodeCheckpointRecord(testCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	env, err := EncodeRecord(Record{Kind: KindCheckpoint, Key: "ckpt|job-000001|000000", Payload: ck})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(env)
	f.Add([]byte("CWS1 not a record"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		out, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %+v: %v", rec, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted non-canonical envelope:\n in  %x\n out %x", data, out)
		}
	})
}

// FuzzDecodeCheckpointRecord is the same property for the checkpoint
// payload codec: no panics, and accepted inputs are canonical.
func FuzzDecodeCheckpointRecord(f *testing.F) {
	seed, err := EncodeCheckpointRecord(testCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	empty, err := EncodeCheckpointRecord(CheckpointRecord{JobID: "job-000001"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte("CKP1 junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeCheckpointRecord(data)
		if err != nil {
			return
		}
		out, err := EncodeCheckpointRecord(rec)
		if err != nil {
			t.Fatalf("decoded checkpoint does not re-encode: %+v: %v", rec, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted non-canonical checkpoint:\n in  %x\n out %x", data, out)
		}
	})
}
