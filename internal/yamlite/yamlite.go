// Package yamlite parses the YAML subset used by CiMLoop-style textual
// specifications (paper Fig. 5b): indentation-nested mappings, "- " list
// items, inline flow lists [a, b] and maps {k: v}, and scalar strings,
// numbers, and booleans. Comments start with '#'.
//
// It is deliberately small: no anchors, no multi-document streams, no
// block scalars — just enough to describe container-hierarchies without a
// third-party dependency.
package yamlite

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse decodes a document into nested map[string]any / []any / scalar
// values (string, float64, bool, nil).
func Parse(text string) (any, error) {
	p := &parser{}
	for ln, raw := range strings.Split(text, "\n") {
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.ContainsRune(line, '\t') {
			return nil, fmt.Errorf("yamlite: line %d: tabs are not allowed for indentation", ln+1)
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		p.lines = append(p.lines, srcLine{no: ln + 1, indent: indent, text: strings.TrimSpace(line)})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("yamlite: empty document")
	}
	v, next, err := p.parseBlock(0, p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(p.lines) {
		return nil, fmt.Errorf("yamlite: line %d: unexpected dedent/content", p.lines[next].no)
	}
	return v, nil
}

type srcLine struct {
	no     int
	indent int
	text   string
}

type parser struct {
	lines []srcLine
}

// parseBlock parses the consecutive lines starting at index i whose indent
// is exactly `indent`, returning the value and the next unconsumed index.
func (p *parser) parseBlock(i, indent int) (any, int, error) {
	if i >= len(p.lines) {
		return nil, i, fmt.Errorf("yamlite: unexpected end of document")
	}
	if strings.HasPrefix(p.lines[i].text, "- ") || p.lines[i].text == "-" {
		return p.parseList(i, indent)
	}
	return p.parseMap(i, indent)
}

func (p *parser) parseMap(i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, fmt.Errorf("yamlite: line %d: unexpected indent", ln.no)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, i, fmt.Errorf("yamlite: line %d: list item inside mapping", ln.no)
		}
		key, rest, err := splitKey(ln.text, ln.no)
		if err != nil {
			return nil, i, err
		}
		if _, dup := m[key]; dup {
			return nil, i, fmt.Errorf("yamlite: line %d: duplicate key %q", ln.no, key)
		}
		if rest != "" {
			v, err := parseScalarOrFlow(rest, ln.no)
			if err != nil {
				return nil, i, err
			}
			m[key] = v
			i++
			continue
		}
		// Nested block value.
		i++
		if i >= len(p.lines) || p.lines[i].indent <= indent {
			m[key] = nil
			continue
		}
		v, next, err := p.parseBlock(i, p.lines[i].indent)
		if err != nil {
			return nil, i, err
		}
		m[key] = v
		i = next
	}
	return m, i, nil
}

func (p *parser) parseList(i, indent int) (any, int, error) {
	var list []any
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, fmt.Errorf("yamlite: line %d: unexpected indent", ln.no)
		}
		if !strings.HasPrefix(ln.text, "-") {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			// Nested block item.
			i++
			if i >= len(p.lines) || p.lines[i].indent <= indent {
				list = append(list, nil)
				continue
			}
			v, next, err := p.parseBlock(i, p.lines[i].indent)
			if err != nil {
				return nil, i, err
			}
			list = append(list, v)
			i = next
			continue
		}
		if key, after, err := splitKey(rest, ln.no); err == nil && !strings.HasPrefix(rest, "[") && !strings.HasPrefix(rest, "{") {
			// "- key: value" starts an inline map item whose further keys
			// sit at indent+2 (aligned under the key).
			item := map[string]any{}
			if after != "" {
				v, err := parseScalarOrFlow(after, ln.no)
				if err != nil {
					return nil, i, err
				}
				item[key] = v
			} else {
				// value is a nested block under this line
				childIndent := indent + 2
				if i+1 < len(p.lines) && p.lines[i+1].indent > indent+2 {
					childIndent = p.lines[i+1].indent
					v, next, err := p.parseBlock(i+1, childIndent)
					if err != nil {
						return nil, i, err
					}
					item[key] = v
					i = next - 1
				} else {
					item[key] = nil
				}
			}
			// Continuation keys of this item.
			j := i + 1
			for j < len(p.lines) && p.lines[j].indent == indent+2 &&
				!strings.HasPrefix(p.lines[j].text, "- ") && p.lines[j].text != "-" {
				k2, rest2, err := splitKey(p.lines[j].text, p.lines[j].no)
				if err != nil {
					return nil, i, err
				}
				if _, dup := item[k2]; dup {
					return nil, i, fmt.Errorf("yamlite: line %d: duplicate key %q", p.lines[j].no, k2)
				}
				if rest2 != "" {
					v, err := parseScalarOrFlow(rest2, p.lines[j].no)
					if err != nil {
						return nil, i, err
					}
					item[k2] = v
					j++
					continue
				}
				j++
				if j >= len(p.lines) || p.lines[j].indent <= indent+2 {
					item[k2] = nil
					continue
				}
				v, next, err := p.parseBlock(j, p.lines[j].indent)
				if err != nil {
					return nil, i, err
				}
				item[k2] = v
				j = next
			}
			list = append(list, item)
			i = j
			continue
		}
		v, err := parseScalarOrFlow(rest, ln.no)
		if err != nil {
			return nil, i, err
		}
		list = append(list, v)
		i++
	}
	return list, i, nil
}

// splitKey splits "key: rest"; rest may be empty.
func splitKey(s string, lineNo int) (key, rest string, err error) {
	idx := -1
	inQuote := false
	depth := 0
	for i, r := range s {
		switch r {
		case '"':
			inQuote = !inQuote
		case '[', '{':
			if !inQuote {
				depth++
			}
		case ']', '}':
			if !inQuote {
				depth--
			}
		case ':':
			if !inQuote && depth == 0 {
				if i+1 >= len(s) || s[i+1] == ' ' {
					idx = i
				}
			}
		}
		if idx >= 0 {
			break
		}
	}
	if idx < 0 {
		return "", "", fmt.Errorf("yamlite: line %d: expected 'key: value', got %q", lineNo, s)
	}
	key = strings.TrimSpace(s[:idx])
	if key == "" {
		return "", "", fmt.Errorf("yamlite: line %d: empty key", lineNo)
	}
	return key, strings.TrimSpace(s[idx+1:]), nil
}

// parseScalarOrFlow decodes an inline value: flow list, flow map, quoted
// string, number, boolean, null, or bare string.
func parseScalarOrFlow(s string, lineNo int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "["):
		items, err := splitFlow(s, '[', ']', lineNo)
		if err != nil {
			return nil, err
		}
		out := make([]any, 0, len(items))
		for _, it := range items {
			v, err := parseScalarOrFlow(it, lineNo)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, "{"):
		items, err := splitFlow(s, '{', '}', lineNo)
		if err != nil {
			return nil, err
		}
		out := make(map[string]any, len(items))
		for _, it := range items {
			k, rest, err := splitKey(it, lineNo)
			if err != nil {
				return nil, err
			}
			v, err := parseScalarOrFlow(rest, lineNo)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	}
	return parseScalar(s, lineNo)
}

// splitFlow splits "[a, b, {c: d}]"-style content at top-level commas.
func splitFlow(s string, opener, closer rune, lineNo int) ([]string, error) {
	if !strings.HasSuffix(s, string(closer)) {
		return nil, fmt.Errorf("yamlite: line %d: unterminated %c...%c", lineNo, opener, closer)
	}
	inner := s[1 : len(s)-1]
	var items []string
	depth := 0
	inQuote := false
	start := 0
	for i, r := range inner {
		switch r {
		case '"':
			inQuote = !inQuote
		case '[', '{':
			if !inQuote {
				depth++
			}
		case ']', '}':
			if !inQuote {
				depth--
			}
		case ',':
			if !inQuote && depth == 0 {
				items = append(items, strings.TrimSpace(inner[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(inner[start:])
	if last != "" {
		items = append(items, last)
	}
	return items, nil
}

func parseScalar(s string, lineNo int) (any, error) {
	switch s {
	case "null", "~", "":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if strings.HasPrefix(s, `"`) {
		if !strings.HasSuffix(s, `"`) || len(s) < 2 {
			return nil, fmt.Errorf("yamlite: line %d: unterminated string %s", lineNo, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], `\"`, `"`), nil
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	return s, nil
}

func stripComment(line string) string {
	inQuote := false
	for i, r := range line {
		switch r {
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}
