package yamlite

import (
	"reflect"
	"strconv"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, text string) any {
	t.Helper()
	v, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return v
}

func TestScalars(t *testing.T) {
	v := mustParse(t, `
a: 1.5
b: hello
c: "quoted: text"
d: true
e: null
f: -3
`)
	m := v.(map[string]any)
	want := map[string]any{
		"a": 1.5, "b": "hello", "c": "quoted: text",
		"d": true, "e": nil, "f": -3.0,
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("got %#v, want %#v", m, want)
	}
}

func TestNestedMaps(t *testing.T) {
	v := mustParse(t, `
outer:
  inner:
    leaf: 7
  other: x
`)
	m := v.(map[string]any)
	outer := m["outer"].(map[string]any)
	inner := outer["inner"].(map[string]any)
	if inner["leaf"] != 7.0 || outer["other"] != "x" {
		t.Fatalf("nesting wrong: %#v", m)
	}
}

func TestLists(t *testing.T) {
	v := mustParse(t, `
items:
  - 1
  - two
  - [3, 4]
`)
	items := v.(map[string]any)["items"].([]any)
	if len(items) != 3 || items[0] != 1.0 || items[1] != "two" {
		t.Fatalf("items = %#v", items)
	}
	flow := items[2].([]any)
	if flow[0] != 3.0 || flow[1] != 4.0 {
		t.Fatalf("flow = %#v", flow)
	}
}

func TestListOfMaps(t *testing.T) {
	v := mustParse(t, `
hierarchy:
  - component: buffer
    class: sram-buffer
    temporal_reuse: [Inputs, Outputs]
  - container: columns
    mesh_x: 128
    children:
      - component: cell
        compute: true
`)
	h := v.(map[string]any)["hierarchy"].([]any)
	if len(h) != 2 {
		t.Fatalf("hierarchy = %#v", h)
	}
	buf := h[0].(map[string]any)
	if buf["component"] != "buffer" || buf["class"] != "sram-buffer" {
		t.Fatalf("buffer = %#v", buf)
	}
	reuse := buf["temporal_reuse"].([]any)
	if len(reuse) != 2 || reuse[0] != "Inputs" {
		t.Fatalf("reuse = %#v", reuse)
	}
	cont := h[1].(map[string]any)
	if cont["mesh_x"] != 128.0 {
		t.Fatalf("container = %#v", cont)
	}
	children := cont["children"].([]any)
	cell := children[0].(map[string]any)
	if cell["compute"] != true {
		t.Fatalf("cell = %#v", cell)
	}
}

func TestInlineMaps(t *testing.T) {
	v := mustParse(t, `attrs: {capacity_kb: 64, word_bits: 32}`)
	attrs := v.(map[string]any)["attrs"].(map[string]any)
	if attrs["capacity_kb"] != 64.0 || attrs["word_bits"] != 32.0 {
		t.Fatalf("attrs = %#v", attrs)
	}
}

func TestComments(t *testing.T) {
	v := mustParse(t, `
a: 1 # trailing comment
# full-line comment
b: "text # not a comment"
`)
	m := v.(map[string]any)
	if m["a"] != 1.0 || m["b"] != "text # not a comment" {
		t.Fatalf("got %#v", m)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"",
		"\t a: 1",
		"a: 1\na: 2",
		"a: [1, 2",
		"a: \"unterminated",
		"- x\nkey: value\n- y",
		"key value without colon",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): want error", c)
		}
	}
}

func TestEmptyValueBecomesNil(t *testing.T) {
	v := mustParse(t, "a:\nb: 1")
	m := v.(map[string]any)
	if m["a"] != nil || m["b"] != 1.0 {
		t.Fatalf("got %#v", m)
	}
}

func TestTopLevelList(t *testing.T) {
	v := mustParse(t, "- 1\n- 2\n- 3")
	l := v.([]any)
	if len(l) != 3 || l[2] != 3.0 {
		t.Fatalf("got %#v", l)
	}
}

// Property: numbers round-trip through rendering as scalars.
func TestQuickNumbersParse(t *testing.T) {
	f := func(x float64) bool {
		if x != x || x > 1e300 || x < -1e300 { // NaN/overflow guard
			return true
		}
		v, err := Parse("n: " + trimFloat(x))
		if err != nil {
			return false
		}
		got, ok := v.(map[string]any)["n"].(float64)
		if !ok {
			return false
		}
		return almostEqual(got, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func trimFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	return d <= 1e-9*scale+1e-12
}
