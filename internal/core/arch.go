// Package core is CiMLoop's primary contribution: the fast, accurate,
// data-value-dependent statistical energy model (paper §III).
//
// The pipeline follows §III-C/§III-D and Algorithm 1:
//
//  1. Workload operand distributions: per-layer PMFs of inputs, weights,
//     and outputs (package workload).
//  2. Encoding and slicing: PMFs are transformed by the architecture's
//     data representation (package enc); bit slices are exposed to the
//     mapper as extra einsum dimensions, exactly as CiMLoop exposes them
//     to Timeloop.
//  3. Component energy: each component's plug-in (package circuits)
//     reduces the propagated value distribution to an average energy per
//     action — computed once per (layer, architecture) and amortized over
//     every mapping evaluated (the paper's mapping-invariant assumption,
//     §III-D3).
//
// Action counts come from the mapping analysis (package mapping); energy
// is actions × average energy per action, so evaluating one more mapping
// costs only the count analysis, which is why CiMLoop is orders of
// magnitude faster than value-level simulation (Table II).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cactilite"
	"repro/internal/circuits"
	"repro/internal/mapper"
	"repro/internal/mapping"
	"repro/internal/spec"
	"repro/internal/tech"
	"repro/internal/tensor"
)

// Slice dimension names injected into workload einsums (paper §III-C2:
// "computations across multiple slices are exposed to the mapper").
const (
	DimInputSlice  = "_IB"
	DimWeightSlice = "_WB"
)

// Arch couples a flattened container-hierarchy with its technology context,
// data representation, and mapper guidance. It is what a macro definition
// (package macros) produces.
type Arch struct {
	Name   string
	Levels []spec.Level

	Node tech.Node
	Vdd  float64 // supply voltage; 0 selects nominal
	// ClockHz is the array activation rate at nominal Vdd.
	ClockHz float64

	// Operand precisions and slice widths.
	InputBits  int // workload input precision
	WeightBits int // workload weight precision
	DACBits    int // input bits converted per DAC step (slice width)
	CellBits   int // weight bits stored per device (slice width)

	// Encodings (package enc names: "unsigned", "offset", "differential",
	// "twos-complement", "magnitude", "xnor").
	InputEncoding  string
	WeightEncoding string

	// Mapper guidance.
	SpatialPrefs  map[int][]string
	InnerDims     []string
	TemporalLevel int
	// TemporalTargets routes specific dims' leftover temporal loops to
	// specific storage levels.
	TemporalTargets map[string]int
	// WeightSliceLevel places the weight-slice dim spatially at the given
	// spatial level index; -1 keeps it temporal.
	WeightSliceLevel int
	// InputSliceLevel places the input-slice dim spatially; -1 (usual)
	// keeps it temporal (bit-serial DACs).
	InputSliceLevel int

	// ADCShare is the column-mux depth: how many columns share one ADC.
	// Sharing serializes conversions (cycles multiply) and shrinks ADC
	// area. Zero means 1 (one converter per column).
	ADCShare int
}

// Validate checks the architecture's static consistency.
func (a *Arch) Validate() error {
	if a.Name == "" {
		return errors.New("core: arch has no name")
	}
	if len(a.Levels) == 0 {
		return fmt.Errorf("core: arch %q has no levels", a.Name)
	}
	if a.Node.Nm == 0 {
		return fmt.Errorf("core: arch %q missing technology node", a.Name)
	}
	if a.ClockHz <= 0 {
		return fmt.Errorf("core: arch %q clock %g must be positive", a.Name, a.ClockHz)
	}
	for _, b := range []struct {
		name string
		v    int
	}{
		{"input bits", a.InputBits}, {"weight bits", a.WeightBits},
		{"dac bits", a.DACBits}, {"cell bits", a.CellBits},
	} {
		if b.v <= 0 || b.v > 16 {
			return fmt.Errorf("core: arch %q %s %d out of [1,16]", a.Name, b.name, b.v)
		}
	}
	if a.DACBits > a.InputBits {
		return fmt.Errorf("core: arch %q dac bits %d exceed input bits %d", a.Name, a.DACBits, a.InputBits)
	}
	if a.CellBits > a.WeightBits {
		return fmt.Errorf("core: arch %q cell bits %d exceed weight bits %d", a.Name, a.CellBits, a.WeightBits)
	}
	if a.ADCShare < 0 || a.ADCShare > 1024 {
		return fmt.Errorf("core: arch %q adc share %d out of [0,1024]", a.Name, a.ADCShare)
	}
	return nil
}

// adcShare resolves the column-mux depth.
func (a *Arch) adcShare() int {
	if a.ADCShare <= 0 {
		return 1
	}
	return a.ADCShare
}

// effectiveVdd resolves the supply voltage.
func (a *Arch) effectiveVdd() float64 {
	if a.Vdd == 0 {
		return a.Node.Vdd
	}
	return a.Vdd
}

// ResolveInputEncoding returns the encoding used for input activations:
// the configured one, except that signed operands on an unsigned-only
// encoding fall back to offset encoding (representation may change per
// layer, paper §II-D).
func (a *Arch) ResolveInputEncoding(signed bool) string {
	name := a.InputEncoding
	if name == "" {
		name = "unsigned"
	}
	if signed && name == "unsigned" {
		return "offset"
	}
	return name
}

// ResolveWeightEncoding returns the encoding used for weights (always
// signed-capable; default offset).
func (a *Arch) ResolveWeightEncoding() string {
	if a.WeightEncoding == "" {
		return "offset"
	}
	return a.WeightEncoding
}

// InputSlices returns the number of input bit slices.
func (a *Arch) InputSlices() int { return (a.InputBits + a.DACBits - 1) / a.DACBits }

// WeightSlices returns the number of weight bit slices (devices per
// weight rail).
func (a *Arch) WeightSlices() int { return (a.WeightBits + a.CellBits - 1) / a.CellBits }

// binding attaches an energy/area model to one flattened level.
type binding struct {
	level     *spec.Level
	levelIdx  int
	instances int64 // product of enclosing mesh sizes

	// Storage backed by a memory model (per-bit costs):
	buffer *cactilite.Buffer
	dram   *cactilite.DRAM
	// Storage or transit or compute backed by a circuit model (per-value
	// costs):
	model circuits.Model
	// programEnergy is the per-value cost of writing a weight into a
	// compute cell (device programming).
	programEnergy float64
}

// Engine is a compiled architecture ready to evaluate layers and mappings.
type Engine struct {
	arch     *Arch
	bindings []binding
	area     float64 // µm², all instances
	clock    float64 // effective clock at the arch's supply
	leakage  float64 // watts of static power across all buffers
}

// NewEngine validates and compiles an architecture: binds every level to
// its component model and computes total area.
func NewEngine(a *Arch) (*Engine, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	vdd := a.effectiveVdd()
	freqScale, err := a.Node.FrequencyAtVoltage(vdd)
	if err != nil {
		return nil, fmt.Errorf("core: arch %q: %w", a.Name, err)
	}
	e := &Engine{arch: a, clock: a.ClockHz * freqScale}
	params := circuits.Params{Node: a.Node, Vdd: vdd}
	instances := int64(1)
	for i := range a.Levels {
		lv := &a.Levels[i]
		b := binding{level: lv, levelIdx: i, instances: instances}
		if lv.Kind == spec.SpatialLevel {
			instances *= int64(lv.Mesh)
			e.bindings = append(e.bindings, b)
			continue
		}
		if err := e.bind(&b, params); err != nil {
			return nil, fmt.Errorf("core: arch %q level %q: %w", a.Name, lv.Name, err)
		}
		e.bindings = append(e.bindings, b)
	}
	for _, b := range e.bindings {
		e.area += b.areaPerInstance() * float64(b.instances)
		if b.buffer != nil {
			e.leakage += b.buffer.LeakagePower() * float64(b.instances)
		}
	}
	return e, nil
}

// LeakagePower returns the total static power of the architecture's
// buffers in watts.
func (e *Engine) LeakagePower() float64 { return e.leakage }

// attr reads a level attribute with a default.
func attr(lv *spec.Level, key string, def float64) float64 {
	if v, ok := lv.Attrs[key]; ok {
		return v
	}
	return def
}

// bind attaches the circuit or memory model selected by the level's class.
func (e *Engine) bind(b *binding, params circuits.Params) error {
	lv := b.level
	a := e.arch
	var err error
	switch lv.Class {
	case "dram":
		b.dram, err = cactilite.NewDRAM(lv.Name, attr(lv, "bandwidth_gbps", 0))
	case "sram-buffer":
		capacityBits := int64(attr(lv, "capacity_kb", 64) * 8192)
		wordBits := int(attr(lv, "word_bits", 64))
		b.buffer, err = cactilite.NewBuffer(lv.Name, capacityBits, wordBits, a.Node, a.effectiveVdd())
	case "adc":
		bits := int(attr(lv, "resolution", 8))
		b.model, err = circuits.NewADC(params, bits, attr(lv, "value_aware", 0) != 0)
	case "dac":
		kind := circuits.DACCapacitive
		if attr(lv, "kind", 0) != 0 {
			kind = circuits.DACResistive
		}
		b.model, err = circuits.NewDAC(params, kind, a.DACBits)
	case "analog-adder":
		b.model, err = circuits.NewAnalogAdder(params, int(attr(lv, "operands", 2)), int(attr(lv, "out_bits", 8)))
	case "analog-accumulator":
		b.model, err = circuits.NewAnalogAccumulator(params, int(attr(lv, "out_bits", 10)))
	case "digital-adder":
		b.model, err = circuits.NewDigitalAdder(params, int(attr(lv, "bits", 16)))
	case "shift-add":
		b.model, err = circuits.NewShiftAdd(params, int(attr(lv, "bits", 24)))
	case "register":
		b.model, err = circuits.NewRegister(params, int(attr(lv, "bits", 24)))
	case "multiplexer":
		b.model, err = circuits.NewMultiplexer(params, int(attr(lv, "bits", 8)), int(attr(lv, "ways", 2)))
	case "row-driver":
		b.model, err = circuits.NewRowDriver(params, int(attr(lv, "cells", 256)), a.DACBits)
	case "sense-amp":
		b.model, err = circuits.NewSenseAmp(params)
	case "wire":
		b.model, err = circuits.NewWire(params, int(attr(lv, "bits", 8)), attr(lv, "length_mm", 1))
	case "reram-cell":
		var cell *circuits.ReRAMCell
		cell, err = circuits.NewReRAMCell(params, a.DACBits, a.CellBits)
		b.model = cell
		b.programEnergy = attr(lv, "program_energy", 1e-12)
	case "sram-cell":
		b.model, err = circuits.NewSRAMComputeCell(params, a.DACBits, a.CellBits)
		b.programEnergy = attr(lv, "program_energy", 20e-15)
	case "stt-cell":
		var cell *circuits.STTRAMCell
		cell, err = circuits.NewSTTRAMCell(params, a.DACBits)
		if err == nil {
			b.model = cell
			b.programEnergy = attr(lv, "program_energy", cell.WriteEnergy())
		}
	case "edram-cell":
		b.model, err = circuits.NewEDRAMCell(params, a.DACBits, a.CellBits)
		b.programEnergy = attr(lv, "program_energy", 30e-15)
	case "mzi-modulator":
		b.model, err = circuits.NewMZIModulator(params, a.DACBits)
	case "photodetector":
		b.model, err = circuits.NewPhotodetector(params)
	case "photonic-cell":
		b.model, err = circuits.NewPhotonicWeightCell(params)
		b.programEnergy = attr(lv, "program_energy", 2e-12)
	case "c2c-mac":
		b.model, err = circuits.NewC2CMac(params, a.InputBits, a.WeightBits)
		b.programEnergy = attr(lv, "program_energy", 20e-15)
	case "digital-mac":
		b.model, err = circuits.NewDigitalMAC(params, a.DACBits, a.CellBits)
		b.programEnergy = attr(lv, "program_energy", 20e-15)
	default:
		return fmt.Errorf("unknown component class %q", lv.Class)
	}
	return err
}

// areaPerInstance returns the level's per-instance area in µm², honoring
// the area_scale attribute (e.g. ADC sharing: one converter per mux
// group).
func (b *binding) areaPerInstance() float64 {
	scale := attr(b.level, "area_scale", 1)
	switch {
	case b.buffer != nil:
		return b.buffer.Area() * scale
	case b.model != nil:
		return b.model.Area() * scale
	default:
		return 0 // spatial levels and DRAM (off-chip) have no on-chip area
	}
}

// Area returns the architecture's total on-chip area in µm².
func (e *Engine) Area() float64 { return e.area }

// ClockHz returns the effective array activation rate at the configured
// supply voltage.
func (e *Engine) ClockHz() float64 { return e.clock }

// Arch returns the engine's architecture.
func (e *Engine) Arch() *Arch { return e.arch }

// ComponentModel returns the circuit model bound at level i, or nil for
// spatial levels and memory-backed storage. The value-level simulator uses
// this so both models share one energy definition.
func (e *Engine) ComponentModel(i int) circuits.Model {
	if i < 0 || i >= len(e.bindings) {
		return nil
	}
	return e.bindings[i].model
}

// BufferAt returns the cactilite buffer bound at level i, or nil.
func (e *Engine) BufferAt(i int) *cactilite.Buffer {
	if i < 0 || i >= len(e.bindings) {
		return nil
	}
	return e.bindings[i].buffer
}

// ProgramEnergyAt returns the per-value weight programming energy at the
// compute level i (0 for other levels).
func (e *Engine) ProgramEnergyAt(i int) float64 {
	if i < 0 || i >= len(e.bindings) {
		return 0
	}
	return e.bindings[i].programEnergy
}

// AreaBreakdown returns per-level area (all instances), parallel to the
// level list.
func (e *Engine) AreaBreakdown() []float64 {
	out := make([]float64, len(e.bindings))
	for i, b := range e.bindings {
		out[i] = b.areaPerInstance() * float64(b.instances)
	}
	return out
}

// reductionDepthBelow returns the number of simultaneously summed analog
// values arriving at the boundary just above level b: the product of mesh
// sizes of output-reduced spatial levels inside b. This is an architecture
// property (mapping-invariant), used to synthesize ADC input value
// distributions.
func (a *Arch) reductionDepthBelow(b int) int64 {
	depth := int64(1)
	for j := b; j < len(a.Levels); j++ {
		lv := &a.Levels[j]
		if lv.Kind != spec.SpatialLevel {
			continue
		}
		if lv.SpatialReuse[tensor.Output] {
			depth *= int64(lv.Mesh)
			continue
		}
		// A coalescing transit between b and j also reduces.
		for c := b; c < j; c++ {
			if a.Levels[c].Kind == spec.TransitLevel && a.Levels[c].CoalesceT[tensor.Output] {
				depth *= int64(lv.Mesh)
				break
			}
		}
	}
	return depth
}

// OutputBits returns the accumulated-output precision for a reduction of
// the given depth.
func (a *Arch) OutputBits(reduction int64) int {
	bits := a.InputBits + a.WeightBits + int(math.Ceil(math.Log2(float64(reduction+1))))
	if bits > 32 {
		bits = 32
	}
	return bits
}

// SlicedEinsum augments a workload einsum with the architecture's slice
// dimensions, exposing them to the mapper (paper §III-C2).
//
// Weight slices index distinct devices (different columns hold different
// bits of a weight), so the weight projection gains a _WB axis: weight
// data genuinely multiplies. Input slices are extracted locally from an
// already-fetched value (a DAC bank or input register slices the bits), so
// _IB is a pure repetition dimension: it multiplies array activations and
// DAC converts without inflating input data volume — any level holding
// inputs reuses them across input-slice steps for free.
func (a *Arch) SlicedEinsum(e *tensor.Einsum) (*tensor.Einsum, error) {
	ib, wb := a.InputSlices(), a.WeightSlices()
	out := &tensor.Einsum{Name: e.Name + "+sliced"}
	out.Dims = append(out.Dims, e.Dims...)
	out.Dims = append(out.Dims,
		tensor.Dim{Name: DimInputSlice, Bound: ib},
		tensor.Dim{Name: DimWeightSlice, Bound: wb},
	)
	for _, s := range e.Spaces {
		ns := tensor.DataSpace{Name: s.Name, Kind: s.Kind}
		ns.Axes = append(ns.Axes, s.Axes...)
		if s.Kind == tensor.Weight {
			ns.Axes = append(ns.Axes, tensor.Axis{{Dim: DimWeightSlice, Coeff: 1}})
		}
		out.Spaces = append(out.Spaces, ns)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// MapperOptions assembles the mapper guidance for a sliced einsum:
// spatial preferences, pinned slice loops, and temporal routing.
func (a *Arch) MapperOptions(maxMappings int, seed int64) mapper.Options {
	fixed := map[int][]mapping.Loop{}
	prefs := map[int][]string{}
	for k, v := range a.SpatialPrefs {
		prefs[k] = append([]string(nil), v...)
	}
	inner := append([]string(nil), a.InnerDims...)
	// pin places a slice dim at its level, clamping spatial factors to
	// the mesh: excess slices (e.g. 8 weight bits on a 4-operand analog
	// adder) spill into temporal passes handled by the mapper.
	pin := func(level int, dim string, slices int) {
		factor := slices
		if level < len(a.Levels) && a.Levels[level].Kind == spec.SpatialLevel && a.Levels[level].Mesh < factor {
			factor = a.Levels[level].Mesh
		}
		fixed[level] = append(fixed[level], mapping.Loop{Dim: dim, Factor: factor})
	}
	// Temporal weight-slice passes always go outermost: each pass
	// programs the arrays once, instead of re-streaming weights inside
	// the batch loops. This covers both fully-temporal slicing and the
	// spill left over when slices exceed a pinned spatial mesh.
	outer := []string{DimWeightSlice}
	if a.WeightSliceLevel >= 0 {
		pin(a.WeightSliceLevel, DimWeightSlice, a.WeightSlices())
	}
	if a.InputSliceLevel >= 0 {
		pin(a.InputSliceLevel, DimInputSlice, a.InputSlices())
	} else {
		inner = append([]string{DimInputSlice}, inner...)
	}
	targets := make(map[string]int, len(a.TemporalTargets))
	for k, v := range a.TemporalTargets {
		targets[k] = v
	}
	return mapper.Options{
		MaxMappings:     maxMappings,
		Seed:            seed,
		Fixed:           fixed,
		SpatialPrefs:    prefs,
		InnerDims:       inner,
		OuterDims:       outer,
		TemporalLevel:   a.TemporalLevel,
		TemporalTargets: targets,
	}
}
