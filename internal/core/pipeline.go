package core

import (
	"fmt"

	"repro/internal/circuits"
	"repro/internal/dist"
	"repro/internal/enc"
	"repro/internal/spec"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// accessEnergies is the per-value energy of each access type at one level
// for one tensor, computed once per (layer, architecture).
type accessEnergies struct {
	read  float64 // J per value read
	write float64 // J per value written
	cross float64 // J per value crossing (transit) or per MAC (compute)
}

// LayerContext carries everything that is computed once per (layer,
// architecture) and amortized across mappings: the sliced einsum, the
// operand PMFs after encoding/slicing, and per-component average energies
// (Algorithm 1 lines 3–7).
type LayerContext struct {
	Layer  workload.Layer
	Sliced *tensor.Einsum

	// energies[levelIdx][kind]
	energies []map[tensor.Kind]accessEnergies

	// Rail multipliers from the encodings (a differential encoding drives
	// two physical rails per operand).
	inputRails  int
	weightRails int

	// Value PMFs retained for inspection and the value simulator.
	InputSlicePMF  *dist.PMF
	WeightSlicePMF *dist.PMF
}

// PrepareLayer runs the data-value-dependent pipeline for one layer:
// operand PMFs → encoding → slicing → per-component average energy per
// action. Operand PMFs are synthesized from the layer's statistics.
func (e *Engine) PrepareLayer(l workload.Layer) (*LayerContext, error) {
	inPMF, err := l.InputPMF(e.arch.InputBits)
	if err != nil {
		return nil, err
	}
	wPMF, err := l.WeightPMF(e.arch.WeightBits)
	if err != nil {
		return nil, err
	}
	return e.PrepareLayerWithPMFs(l, inPMF, wPMF)
}

// PrepareLayerWithPMFs is PrepareLayer with caller-supplied operand
// distributions — e.g. empirical PMFs recorded from profiled tensors, the
// paper's RecordOperandPMFs (Algorithm 1 line 3). Values must be integer
// levels within the architecture's operand precisions.
func (e *Engine) PrepareLayerWithPMFs(l workload.Layer, inPMF, wPMF *dist.PMF) (*LayerContext, error) {
	a := e.arch
	sliced, err := a.SlicedEinsum(l.Op)
	if err != nil {
		return nil, err
	}
	ctx := &LayerContext{Layer: l, Sliced: sliced}

	// Step 2a: encoding. Unsigned workloads presented to a signed-capable
	// encoding are fine; signed workloads fall back to a signed encoding.
	inEncName := a.ResolveInputEncoding(inPMF.Min() < 0)
	wEncName := a.ResolveWeightEncoding()
	inRail, rails, err := encodeAverageRail(inEncName, a.InputBits, inPMF)
	if err != nil {
		return nil, fmt.Errorf("core: input encoding: %w", err)
	}
	ctx.inputRails = rails
	wRail, wRails, err := encodeAverageRail(wEncName, a.WeightBits, wPMF)
	if err != nil {
		return nil, fmt.Errorf("core: weight encoding: %w", err)
	}
	ctx.weightRails = wRails

	// Step 2b: slicing.
	inSlicing, err := enc.NewSlicing(a.InputBits, a.DACBits)
	if err != nil {
		return nil, err
	}
	ctx.InputSlicePMF, err = inSlicing.AverageSlicePMF(inRail)
	if err != nil {
		return nil, err
	}
	wSlicing, err := enc.NewSlicing(a.WeightBits, a.CellBits)
	if err != nil {
		return nil, err
	}
	ctx.WeightSlicePMF, err = wSlicing.AverageSlicePMF(wRail)
	if err != nil {
		return nil, err
	}

	// Step 3: per-component average energies.
	ctx.energies = make([]map[tensor.Kind]accessEnergies, len(e.bindings))
	cellProduct := dist.Mul(ctx.InputSlicePMF, ctx.WeightSlicePMF).Rebin(512)
	sums := make(map[int64]*dist.PMF)
	for i := range e.bindings {
		b := &e.bindings[i]
		m, err := e.levelEnergies(b, ctx, cellProduct, sums)
		if err != nil {
			return nil, fmt.Errorf("core: level %q: %w", b.level.Name, err)
		}
		ctx.energies[i] = m
	}
	return ctx, nil
}

// encodeAverageRail encodes a PMF and returns the average rail PMF plus
// the rail count.
func encodeAverageRail(name string, bits int, p *dist.PMF) (*dist.PMF, int, error) {
	encoding, err := enc.ByName(name, bits)
	if err != nil {
		return nil, 0, err
	}
	rails, err := encoding.TransformPMF(p)
	if err != nil {
		return nil, 0, err
	}
	avg := rails[0]
	for i := 1; i < len(rails); i++ {
		avg, err = dist.Mix(avg, rails[i], float64(i)/float64(i+1))
		if err != nil {
			return nil, 0, err
		}
	}
	return avg, len(rails), nil
}

// columnSumPMF synthesizes the distribution of the analog sum arriving at
// the boundary above level b: depth-wise sum of independent cell products
// (the independence assumption of §III-D1). Results are cached per depth
// within one layer context via the sums map.
func (e *Engine) columnSumPMF(b int, cellProduct *dist.PMF, sums map[int64]*dist.PMF) (*dist.PMF, error) {
	depth := e.arch.reductionDepthBelow(b)
	const maxDepth = 65536
	if depth > maxDepth {
		depth = maxDepth
	}
	if p, ok := sums[depth]; ok {
		return p, nil
	}
	sum, err := dist.SumNCapped(cellProduct.Rebin(128), int(depth), 256)
	if err != nil {
		return nil, err
	}
	sum = sum.Rebin(512)
	sums[depth] = sum
	return sum, nil
}

// quantizePMFTo rescales a non-negative value PMF onto [0, 2^bits-1]
// using the given theoretical full-scale value, so the statistical model
// and the value-level simulator quantize identically.
func quantizePMFTo(p *dist.PMF, bits int, fullScale float64) *dist.PMF {
	if fullScale <= 0 {
		return dist.Delta(0)
	}
	fs := float64(int64(1)<<uint(bits) - 1)
	return p.Map(func(v float64) float64 {
		if v < 0 {
			v = 0
		}
		if v > fullScale {
			v = fullScale
		}
		return v / fullScale * fs
	})
}

// ColumnFullScale returns the theoretical maximum analog column sum at the
// boundary above level b: max slice product times the reduction depth.
func (a *Arch) ColumnFullScale(b int) float64 {
	maxIn := float64(int64(1)<<uint(a.DACBits) - 1)
	maxW := float64(int64(1)<<uint(a.CellBits) - 1)
	return maxIn * maxW * float64(a.reductionDepthBelow(b))
}

// levelEnergies computes the per-value access energies for one level.
func (e *Engine) levelEnergies(b *binding, ctx *LayerContext, cellProduct *dist.PMF, sums map[int64]*dist.PMF) (map[tensor.Kind]accessEnergies, error) {
	a := e.arch
	lv := b.level
	out := make(map[tensor.Kind]accessEnergies)
	reduction := a.reductionDepthBelow(b.levelIdx + 1)
	outBits := a.OutputBits(reduction)
	// Outputs are re-quantized to operand precision before entering
	// memory (the standard requantization step of fabricated macros);
	// full accumulator width exists only in the datapath.
	storedOutBits := a.InputBits + a.WeightBits
	if storedOutBits > outBits {
		storedOutBits = outBits
	}
	bitsOf := func(t tensor.Kind) int {
		switch t {
		case tensor.Input:
			return a.InputBits
		case tensor.Weight:
			return a.WeightBits
		default:
			return storedOutBits
		}
	}

	switch lv.Kind {
	case spec.SpatialLevel:
		return out, nil

	case spec.StorageLevel:
		switch {
		case b.buffer != nil:
			for t := range lv.Keeps {
				bits := float64(bitsOf(t))
				out[t] = accessEnergies{
					read:  b.buffer.ReadEnergyPerBit() * bits,
					write: b.buffer.WriteEnergyPerBit() * bits,
				}
			}
		case b.dram != nil:
			for t := range lv.Keeps {
				bits := float64(bitsOf(t))
				out[t] = accessEnergies{
					read:  b.dram.AccessEnergyPerBit() * bits,
					write: b.dram.AccessEnergyPerBit() * bits,
				}
			}
		case b.model != nil:
			// Value-based storage: output accumulators (analog
			// accumulator, shift-add) see the accumulated-sum
			// distribution; input/weight registers see the operand
			// slice distributions.
			for t := range lv.Keeps {
				var ops circuits.Operands
				switch t {
				case tensor.Input:
					ops.Input = ctx.InputSlicePMF
				case tensor.Weight:
					ops.Weight = ctx.WeightSlicePMF
				default:
					sum, err := e.columnSumPMF(b.levelIdx+1, cellProduct, sums)
					if err != nil {
						return nil, err
					}
					ops.Output = sum
				}
				me, err := b.model.MeanEnergy(ops)
				if err != nil {
					return nil, err
				}
				// One action per value written; reading the settled value
				// out is folded into that cost for accumulators. Register
				// reads feeding DACs each slice cost one register op.
				if t == tensor.Output {
					out[t] = accessEnergies{write: me}
				} else {
					out[t] = accessEnergies{read: me, write: me}
				}
			}
		default:
			return nil, fmt.Errorf("storage level has no bound model")
		}
		return out, nil

	case spec.TransitLevel:
		for t := range lv.Transits {
			var ops circuits.Operands
			switch t {
			case tensor.Input:
				ops.Input = ctx.InputSlicePMF
			case tensor.Weight:
				ops.Weight = ctx.WeightSlicePMF
			default:
				sum, err := e.columnSumPMF(b.levelIdx+1, cellProduct, sums)
				if err != nil {
					return nil, err
				}
				// ADCs see the sum quantized to their own full scale.
				if adc, ok := b.model.(*circuits.ADC); ok {
					sum = quantizePMFTo(sum, adc.Bits(), a.ColumnFullScale(b.levelIdx+1))
				}
				ops.Output = sum
			}
			me, err := b.model.MeanEnergy(ops)
			if err != nil {
				return nil, err
			}
			out[t] = accessEnergies{cross: me}
		}
		return out, nil

	case spec.ComputeLevel:
		me, err := b.model.MeanEnergy(circuits.Operands{
			Input:  ctx.InputSlicePMF,
			Weight: ctx.WeightSlicePMF,
		})
		if err != nil {
			return nil, err
		}
		out[tensor.Output] = accessEnergies{cross: me}
		// Weight programming cost (fills into the cells).
		out[tensor.Weight] = accessEnergies{write: b.programEnergy}
		return out, nil
	}
	return nil, fmt.Errorf("unknown level kind %v", lv.Kind)
}
