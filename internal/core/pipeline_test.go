package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/spec"
	"repro/internal/tech"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Internal-package tests covering pipeline pieces not reachable through
// the black-box suite.

func testArch(t *testing.T) *Arch {
	t.Helper()
	node, err := tech.ByNm(45)
	if err != nil {
		t.Fatal(err)
	}
	levels := []spec.Level{
		{Name: "buffer", Kind: spec.StorageLevel, Class: "sram-buffer",
			Attrs: map[string]float64{"capacity_kb": 8},
			Keeps: map[tensor.Kind]bool{tensor.Input: true, tensor.Weight: true, tensor.Output: true}},
		{Name: "dac", Kind: spec.TransitLevel, Class: "dac",
			Transits: map[tensor.Kind]bool{tensor.Input: true}, CoalesceT: map[tensor.Kind]bool{}},
		{Name: "cols", Kind: spec.SpatialLevel, Mesh: 4, MeshX: 4, MeshY: 1,
			SpatialReuse: map[tensor.Kind]bool{tensor.Input: true}},
		{Name: "adc", Kind: spec.TransitLevel, Class: "adc",
			Attrs:    map[string]float64{"resolution": 6},
			Transits: map[tensor.Kind]bool{tensor.Output: true}, CoalesceT: map[tensor.Kind]bool{}},
		{Name: "rows", Kind: spec.SpatialLevel, Mesh: 8, MeshX: 1, MeshY: 8,
			SpatialReuse: map[tensor.Kind]bool{tensor.Output: true}},
		{Name: "cell", Kind: spec.ComputeLevel, Class: "sram-cell",
			Keeps: map[tensor.Kind]bool{tensor.Weight: true}},
	}
	// CellBits == WeightBits: one device per weight, so the columns mesh
	// is governed purely by the workload's K dimension.
	return &Arch{
		Name: "test", Levels: levels, Node: node, ClockHz: 1e8,
		InputBits: 4, WeightBits: 4, DACBits: 1, CellBits: 4,
		SpatialPrefs:     map[int][]string{2: {"K"}, 4: {"C"}},
		InnerDims:        []string{"C"},
		WeightSliceLevel: -1, InputSliceLevel: -1, TemporalLevel: -1,
	}
}

func TestReductionDepthBelow(t *testing.T) {
	a := testArch(t)
	// Below the ADC (boundary 4): the rows mesh reduces outputs: depth 8.
	if d := a.reductionDepthBelow(4); d != 8 {
		t.Fatalf("depth below adc = %d, want 8", d)
	}
	// Below the buffer: same 8 (cols mesh does not reduce outputs).
	if d := a.reductionDepthBelow(1); d != 8 {
		t.Fatalf("depth below buffer = %d, want 8", d)
	}
	// At the innermost boundary: nothing below.
	if d := a.reductionDepthBelow(len(a.Levels)); d != 1 {
		t.Fatalf("innermost depth = %d, want 1", d)
	}
}

func TestColumnFullScale(t *testing.T) {
	a := testArch(t)
	// 1b DAC slices (max 1) x 4b cells (max 15) x 8 rows = 120.
	if fs := a.ColumnFullScale(4); fs != 120 {
		t.Fatalf("full scale = %g, want 120", fs)
	}
}

func TestOutputBits(t *testing.T) {
	a := testArch(t)
	if b := a.OutputBits(1); b != 4+4+1 {
		t.Fatalf("OutputBits(1) = %d", b)
	}
	if b := a.OutputBits(255); b != 4+4+8 {
		t.Fatalf("OutputBits(255) = %d", b)
	}
	if b := a.OutputBits(1 << 40); b != 32 {
		t.Fatalf("OutputBits(huge) = %d, want capped 32", b)
	}
}

func TestQuantizePMFTo(t *testing.T) {
	p, err := dist.UniformInts(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	q := quantizePMFTo(p, 4, 100)
	if q.Min() < 0 || q.Max() > 15 {
		t.Fatalf("range [%g, %g]", q.Min(), q.Max())
	}
	// Values past full scale clamp.
	big := dist.Delta(1e9)
	q = quantizePMFTo(big, 4, 100)
	if q.Max() != 15 {
		t.Fatalf("clamp failed: %g", q.Max())
	}
	if q := quantizePMFTo(p, 4, 0); q.Max() != 0 {
		t.Fatal("zero full scale must collapse to delta(0)")
	}
}

func TestEncodeAverageRail(t *testing.T) {
	p, err := dist.UniformInts(-8, 7)
	if err != nil {
		t.Fatal(err)
	}
	avg, rails, err := encodeAverageRail("differential", 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if rails != 2 {
		t.Fatalf("rails = %d", rails)
	}
	if avg.Min() < 0 {
		t.Fatal("rail values must be non-negative")
	}
	if _, _, err := encodeAverageRail("nope", 4, p); err == nil {
		t.Fatal("want error for unknown encoding")
	}
}

func TestResolveEncodings(t *testing.T) {
	a := testArch(t)
	if got := a.ResolveInputEncoding(false); got != "unsigned" {
		t.Fatalf("unsigned default = %q", got)
	}
	if got := a.ResolveInputEncoding(true); got != "offset" {
		t.Fatalf("signed fallback = %q", got)
	}
	a.InputEncoding = "differential"
	if got := a.ResolveInputEncoding(true); got != "differential" {
		t.Fatalf("explicit encoding overridden: %q", got)
	}
	if got := a.ResolveWeightEncoding(); got != "offset" {
		t.Fatalf("weight default = %q", got)
	}
}

func TestEngineRunsOnInternalArch(t *testing.T) {
	a := testArch(t)
	eng, err := NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	e, err := tensor.MatMul("mm", 4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	layer := layerFor(e)
	ctx, err := eng.PrepareLayer(layer)
	if err != nil {
		t.Fatal(err)
	}
	m, err := eng.GreedyMapping(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.EvaluateMapping(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy <= 0 || math.IsNaN(r.Energy) {
		t.Fatalf("energy %g", r.Energy)
	}
	// Full utilization on the matched shape.
	if r.Utilization != 1 {
		t.Fatalf("utilization %g (%s)", r.Utilization, m)
	}
}

func TestIdleInstancesChargeZeroValueEnergy(t *testing.T) {
	a := testArch(t)
	eng, err := NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	// K=1: only 1 of 4 columns mapped; the other 3 ADCs still strobe.
	small, err := tensor.MatMul("small", 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tensor.MatMul("full", 4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	adcPerMAC := func(e *tensor.Einsum) float64 {
		ctx, err := eng.PrepareLayer(layerFor(e))
		if err != nil {
			t.Fatal(err)
		}
		m, err := eng.GreedyMapping(ctx)
		if err != nil {
			t.Fatal(err)
		}
		r, err := eng.EvaluateMapping(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, le := range r.Levels {
			if le.Name == "adc" {
				return le.Total / float64(r.MACs)
			}
		}
		t.Fatal("no adc level")
		return 0
	}
	if s, f := adcPerMAC(small), adcPerMAC(full); s <= f {
		t.Fatalf("underutilized columns should raise ADC energy per MAC: %g vs %g", s, f)
	}
}

func layerFor(e *tensor.Einsum) workload.Layer {
	return workload.Layer{
		Name: e.Name, Op: e, Repeat: 1,
		Act: workload.ActStats{Sparsity: 0.3, Mean: 0.2, Std: 0.2, Corr: 0.3},
		Wgt: workload.WeightStats{Std: 0.2},
	}
}
