package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/workload"
)

func cancelTestEngine(t *testing.T) (*core.Engine, *core.LayerContext) {
	t.Helper()
	arch, err := macros.Base(macros.Config{Rows: 16, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		t.Fatal(err)
	}
	lctx, err := eng.PrepareLayer(workload.Toy().Layers[0])
	if err != nil {
		t.Fatal(err)
	}
	return eng, lctx
}

// TestSearchLayerCtxCancelled checks an already-cancelled context makes
// the search return ctx.Err() before evaluating any mapping.
func TestSearchLayerCtxCancelled(t *testing.T) {
	eng, lctx := cancelTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, evaluated, err := eng.SearchLayerCtx(ctx, lctx, 64, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if evaluated != 0 {
		t.Fatalf("evaluated %d mappings after cancellation, want 0", evaluated)
	}
}

// countdownCtx reports Canceled after its Err method has been polled a
// fixed number of times: a deterministic stand-in for "cancelled while
// the search is underway" that needs no timing assumptions.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	left  int
	fired bool
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		c.fired = true
		return context.Canceled
	}
	c.left--
	return nil
}

// TestSearchLayerCtxStopsMidSearch checks cancellation during the search
// aborts the candidate loop instead of finishing the mapping budget.
func TestSearchLayerCtxStopsMidSearch(t *testing.T) {
	eng, lctx := cancelTestEngine(t)
	const budget = 64
	// Sanity: the uncancelled search evaluates more candidates than the
	// countdown allows, so an early return is attributable to the context.
	_, full, err := eng.SearchLayerCtx(context.Background(), lctx, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full <= 3 {
		t.Skipf("search only evaluates %d candidates; cannot observe an early stop", full)
	}
	ctx := &countdownCtx{Context: context.Background(), left: 3}
	_, evaluated, err := eng.SearchLayerCtx(ctx, lctx, budget, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !ctx.fired {
		t.Fatal("search never polled the context")
	}
	if evaluated >= full {
		t.Fatalf("evaluated %d of %d candidates despite mid-search cancellation", evaluated, full)
	}
}

// TestEvaluateNetworkCtxDeadline checks an expired deadline propagates
// out of the per-layer pipeline.
func TestEvaluateNetworkCtxDeadline(t *testing.T) {
	arch, err := macros.Base(macros.Config{Rows: 16, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = eng.EvaluateNetworkCtx(ctx, workload.Toy(), 8, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestEvaluateNetworkCtxBackground checks the ctx-aware path computes
// exactly what the ctx-free path computes.
func TestEvaluateNetworkCtxBackground(t *testing.T) {
	arch, err := macros.Base(macros.Config{Rows: 16, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.EvaluateNetwork(workload.Toy(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.EvaluateNetworkCtx(context.Background(), workload.Toy(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Energy != want.Energy || got.MACs != want.MACs {
		t.Fatalf("ctx path diverged: energy %g vs %g, MACs %d vs %d",
			got.Energy, want.Energy, got.MACs, want.MACs)
	}
}
