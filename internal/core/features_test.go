package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/workload"
)

func TestLeakageIncludedAndReported(t *testing.T) {
	a, err := macros.Base(macros.Config{Rows: 32, Cols: 32})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	if eng.LeakagePower() <= 0 {
		t.Fatal("buffered architectures must leak")
	}
	n, err := workload.MaxUtilization(32, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.EvaluateLayer(n.Layers[0], 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.LeakageJ <= 0 {
		t.Fatal("leakage energy missing from result")
	}
	if r.LeakageJ >= r.Energy {
		t.Fatalf("leakage %g cannot exceed total %g", r.LeakageJ, r.Energy)
	}
	// Leakage scales with runtime: a slower (bit-serial) config leaks more
	// per layer.
	slow, err := macros.Base(macros.Config{Rows: 32, Cols: 32, DACBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := macros.Base(macros.Config{Rows: 32, Cols: 32, DACBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	leakOf := func(a *core.Arch) float64 {
		e, err := core.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.EvaluateLayer(n.Layers[0], 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r.LeakageJ
	}
	if leakOf(slow) <= leakOf(fast) {
		t.Fatal("longer runtime must leak more")
	}
}

func TestADCShareTradesThroughputForArea(t *testing.T) {
	n, err := workload.MaxUtilization(32, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	evalShare := func(share int) *core.Result {
		a, err := macros.Base(macros.Config{Rows: 32, Cols: 32, ADCShare: share})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		r, err := eng.EvaluateLayer(n.Layers[0], 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	one := evalShare(1)
	eight := evalShare(8)
	if eight.Cycles != 8*one.Cycles {
		t.Fatalf("8-way sharing should serialize 8x: %d vs %d", eight.Cycles, one.Cycles)
	}
	if eight.AreaUm2 >= one.AreaUm2 {
		t.Fatalf("sharing should shrink area: %g vs %g", eight.AreaUm2, one.AreaUm2)
	}
	bad, err := macros.Base(macros.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad.ADCShare = -1
	if _, err := core.NewEngine(bad); err == nil {
		t.Fatal("want error for negative ADC share")
	}
}

func TestDeviceSwapChangesEnergyNotStructure(t *testing.T) {
	n, err := workload.MaxUtilization(32, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	energies := map[string]float64{}
	var levelCount int
	for _, dev := range []string{"reram", "sram", "stt", "edram"} {
		a, err := macros.Base(macros.Config{Rows: 32, Cols: 32, Device: dev})
		if err != nil {
			t.Fatal(err)
		}
		if levelCount == 0 {
			levelCount = len(a.Levels)
		} else if len(a.Levels) != levelCount {
			t.Fatalf("%s: device swap changed the hierarchy (%d vs %d levels)", dev, len(a.Levels), levelCount)
		}
		eng, err := core.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		r, err := eng.EvaluateLayer(n.Layers[0], 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		energies[dev] = r.Energy
	}
	// Devices must actually differ in energy.
	if energies["reram"] == energies["sram"] {
		t.Fatal("device swap had no energy effect")
	}
	if _, err := macros.Base(macros.Config{Device: "pcm"}); err == nil {
		t.Fatal("want error for unknown device")
	}
}
