package core

import (
	"context"
	"fmt"

	"repro/internal/mapper"
	"repro/internal/mapping"
	"repro/internal/spec"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// LevelEnergy is the energy attributed to one level for one layer.
type LevelEnergy struct {
	Name     string
	Class    string
	Kind     spec.LevelKind
	ByTensor map[tensor.Kind]float64
	Total    float64
}

// Result is the evaluation of one (layer, mapping) pair.
type Result struct {
	Arch    string
	Layer   string
	Mapping *mapping.Mapping

	Energy float64 // joules for the whole layer
	Levels []LevelEnergy

	Cycles      int64
	TimeSec     float64
	MACs        int64 // actual workload MACs (unsliced definition)
	PaddedMACs  int64 // hardware MAC-slice activations
	Utilization float64
	AreaUm2     float64
	// LeakageJ is the buffers' static energy over the layer runtime
	// (included in Energy).
	LeakageJ float64
	// DRAMLimited reports that off-chip bandwidth, not compute, set the
	// layer's runtime.
	DRAMLimited bool
}

// OPS returns the operation count (2 ops per MAC, the convention of the
// paper's TOPS/W and GOPS numbers).
func (r *Result) OPS() float64 { return 2 * float64(r.MACs) }

// TOPSPerW returns energy efficiency in tera-operations per watt.
func (r *Result) TOPSPerW() float64 {
	if r.Energy <= 0 {
		return 0
	}
	return r.OPS() / r.Energy / 1e12
}

// GOPS returns throughput in giga-operations per second.
func (r *Result) GOPS() float64 {
	if r.TimeSec <= 0 {
		return 0
	}
	return r.OPS() / r.TimeSec / 1e9
}

// EnergyPerMAC returns joules per actual MAC.
func (r *Result) EnergyPerMAC() float64 {
	if r.MACs == 0 {
		return 0
	}
	return r.Energy / float64(r.MACs)
}

// EvaluateMapping computes energy, cycles, and throughput of one mapping
// using the layer context's precomputed per-action energies (Algorithm 1
// lines 8–10: only the count analysis runs per mapping).
func (e *Engine) EvaluateMapping(ctx *LayerContext, m *mapping.Mapping) (*Result, error) {
	counts, err := mapping.Analyze(e.arch.Levels, ctx.Sliced, m)
	if err != nil {
		return nil, err
	}
	share := int64(e.arch.adcShare())
	res := &Result{
		Arch:        e.arch.Name,
		Layer:       ctx.Layer.Name,
		Mapping:     m,
		Cycles:      counts.Cycles * share, // ADC sharing serializes strobes
		MACs:        ctx.Layer.Op.MACs(),
		PaddedMACs:  counts.MACs,
		Utilization: counts.Utilization,
		AreaUm2:     e.area,
	}
	res.TimeSec = float64(res.Cycles) / e.clock
	// Off-chip bandwidth can cap throughput: a layer moving more DRAM
	// bits than the channel delivers in the compute time is DRAM-bound.
	for i := range e.bindings {
		b := &e.bindings[i]
		if b.dram == nil {
			continue
		}
		var bits float64
		for t, tc := range counts.PerLevel[i] {
			per := float64(e.arch.InputBits)
			switch t {
			case tensor.Weight:
				per = float64(e.arch.WeightBits)
			case tensor.Output:
				per = float64(e.arch.InputBits + e.arch.WeightBits)
			}
			bits += float64(tc.Reads+tc.Writes) * per
		}
		if bw := b.dram.BandwidthBitsPerSec(); bw > 0 {
			if dramTime := bits / bw; dramTime > res.TimeSec {
				res.TimeSec = dramTime
				res.DRAMLimited = true
			}
		}
	}
	railsIn := float64(ctx.inputRails)
	railsW := float64(ctx.weightRails)

	for i := range e.bindings {
		b := &e.bindings[i]
		le := LevelEnergy{
			Name:     b.level.Name,
			Class:    b.level.Class,
			Kind:     b.level.Kind,
			ByTensor: map[tensor.Kind]float64{},
		}
		// Idle-instance factor: the mapping uses MappedOutside[i] of the
		// level's physical instances; the rest still fire every strobe
		// with zero-valued operands (an underutilized array's idle
		// columns still convert — the Fig. 2a/14 penalty). The factor is
		// capped at the column-mux depth: macros share one converter per
		// ~8 columns, so unmapped columns beyond a mux group never strobe.
		const muxCap = 7.0
		idlePerMapped := 0.0
		if mapped := counts.MappedOutside[i]; mapped > 0 && b.instances > mapped {
			idlePerMapped = float64(b.instances-mapped) / float64(mapped)
			if idlePerMapped > muxCap {
				idlePerMapped = muxCap
			}
		}
		idleE := 0.0
		if b.model != nil && idlePerMapped > 0 {
			idleE = b.model.EnergyAt(0, 0, 0)
		}
		for t, tc := range counts.PerLevel[i] {
			ae, ok := ctx.energies[i][t]
			if !ok {
				continue
			}
			var joules float64
			switch b.level.Kind {
			case spec.StorageLevel:
				joules = float64(tc.Reads)*ae.read + float64(tc.Writes)*ae.write
			case spec.TransitLevel:
				mult := 1.0
				switch t {
				case tensor.Input:
					mult = railsIn
				case tensor.Weight, tensor.Output:
					mult = railsW
				}
				joules = float64(tc.Crossings) * (ae.cross*mult + idlePerMapped*idleE)
			case spec.ComputeLevel:
				if t == tensor.Weight {
					joules = float64(tc.Writes) * ae.write * railsW
				}
			}
			if joules != 0 {
				le.ByTensor[t] += joules
				le.Total += joules
			}
		}
		if b.level.Kind == spec.ComputeLevel {
			macE := ctx.energies[i][tensor.Output].cross
			joules := float64(counts.MACs) * (macE*railsIn*railsW + idlePerMapped*idleE)
			le.ByTensor[tensor.Output] += joules
			le.Total += joules
		}
		if b.buffer != nil && e.leakage > 0 {
			leak := b.buffer.LeakagePower() * float64(b.instances) * res.TimeSec
			le.Total += leak
			res.LeakageJ += leak
		}
		res.Levels = append(res.Levels, le)
		res.Energy += le.Total
	}
	return res, nil
}

// GreedyMapping returns the architecture's deterministic utilization-
// greedy mapping for a prepared layer (used when a fixed, reproducible
// schedule is needed, e.g. to match the value-level simulator).
func (e *Engine) GreedyMapping(ctx *LayerContext) (*mapping.Mapping, error) {
	opts := e.arch.MapperOptions(1, 0)
	return mapper.Greedy(e.arch.Levels, ctx.Sliced, opts)
}

// SearchOptions bundles the per-layer mapping-search knobs.
type SearchOptions struct {
	// MaxMappings caps the candidate budget (<=0 selects the mapper's
	// default).
	MaxMappings int
	// Seed drives candidate sampling.
	Seed int64
	// SearchWorkers fans candidate cost evaluations across a bounded
	// worker pool; <= 1 keeps the serial path. The parallel search returns
	// bit-identical results (deterministic minimum-cost, lowest-index
	// winner), so the knob trades goroutines for single-request latency
	// without changing any answer.
	SearchWorkers int
	// SampleShards splits candidate *generation* across this many
	// independent seeded streams with a deterministic merge
	// (mapper.Options.Shards), lifting the serial-sampler ceiling on
	// SearchWorkers speedup. Unlike SearchWorkers, the shard count is part
	// of the result's identity: values > 1 sample a different (still
	// deterministic) candidate set, so results are reproducible only at
	// equal (Seed, SampleShards). <= 1 keeps today's single-stream
	// sequence.
	SampleShards int
}

// SearchLayer finds the lowest-energy mapping for a prepared layer,
// evaluating up to maxMappings candidates. It returns the best result and
// the number of mappings evaluated.
func (e *Engine) SearchLayer(ctx *LayerContext, maxMappings int, seed int64) (*Result, int, error) {
	return e.SearchLayerCtx(context.Background(), ctx, maxMappings, seed)
}

// SearchLayerCtx is SearchLayer under a context: the candidate loop
// checks for cancellation before each mapping evaluation, so a cancelled
// or expired context makes the search return ctx.Err() promptly instead
// of finishing the whole budget. Deadlines and job cancellation in the
// serving layer reach in-flight work through this path.
func (e *Engine) SearchLayerCtx(ctx context.Context, lctx *LayerContext, maxMappings int, seed int64) (*Result, int, error) {
	return e.SearchLayerOptsCtx(ctx, lctx, SearchOptions{MaxMappings: maxMappings, Seed: seed})
}

// SearchLayerOptsCtx is the full form of the per-layer search: the
// SearchOptions select the budget, seed, and intra-search parallelism.
// With SearchWorkers > 1 candidate evaluations fan across a worker pool
// (mapper.SearchParallelCtx) and the winning mapping is re-evaluated once
// to build the Result — EvaluateMapping is deterministic, so the Result is
// bit-identical to the serial path's.
func (e *Engine) SearchLayerOptsCtx(ctx context.Context, lctx *LayerContext, so SearchOptions) (*Result, int, error) {
	opts := e.arch.MapperOptions(so.MaxMappings, so.Seed)
	if so.SampleShards > 1 {
		opts.Shards = so.SampleShards
	}
	if so.SearchWorkers > 1 {
		cost := func(m *mapping.Mapping) (float64, error) {
			r, err := e.EvaluateMapping(lctx, m)
			if err != nil {
				return 0, err
			}
			return r.Energy, nil
		}
		best, evaluated, err := mapper.SearchParallelCtx(ctx, e.arch.Levels, lctx.Sliced, opts, so.SearchWorkers, cost)
		if err != nil {
			return nil, 0, err
		}
		r, err := e.EvaluateMapping(lctx, best.Mapping)
		if err != nil {
			return nil, 0, err
		}
		return r, evaluated, nil
	}
	var best *Result
	cost := func(m *mapping.Mapping) (float64, error) {
		r, err := e.EvaluateMapping(lctx, m)
		if err != nil {
			return 0, err
		}
		if best == nil || r.Energy < best.Energy {
			best = r
		}
		return r.Energy, nil
	}
	_, evaluated, err := mapper.SearchCtx(ctx, e.arch.Levels, lctx.Sliced, opts, cost)
	if err != nil {
		return nil, 0, err
	}
	return best, evaluated, nil
}

// EvaluateLayer prepares a layer and searches for its best mapping.
func (e *Engine) EvaluateLayer(l workload.Layer, maxMappings int, seed int64) (*Result, error) {
	return e.EvaluateLayerCtx(context.Background(), l, maxMappings, seed)
}

// EvaluateLayerCtx is EvaluateLayer under a context (see SearchLayerCtx).
func (e *Engine) EvaluateLayerCtx(ctx context.Context, l workload.Layer, maxMappings int, seed int64) (*Result, error) {
	r, _, err := e.EvaluateLayerOptsCtx(ctx, l, SearchOptions{MaxMappings: maxMappings, Seed: seed})
	return r, err
}

// EvaluateLayerOptsCtx prepares a layer and searches its mapping space
// with the full option set, additionally returning the number of mappings
// evaluated.
func (e *Engine) EvaluateLayerOptsCtx(ctx context.Context, l workload.Layer, so SearchOptions) (*Result, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	lctx, err := e.PrepareLayer(l)
	if err != nil {
		return nil, 0, err
	}
	return e.SearchLayerOptsCtx(ctx, lctx, so)
}

// NetworkResult aggregates per-layer best results over a whole network.
type NetworkResult struct {
	Arch     string
	Network  string
	PerLayer []*Result // best mapping per distinct layer
	// Energy and TimeSec include layer repeats.
	Energy  float64
	TimeSec float64
	MACs    int64
	AreaUm2 float64
	// MappingsEvaluated counts candidate mappings costed across all
	// layers (not scaled by repeats) — the search-throughput denominator.
	MappingsEvaluated int64
}

// TOPSPerW returns network-level energy efficiency.
func (n *NetworkResult) TOPSPerW() float64 {
	if n.Energy <= 0 {
		return 0
	}
	return 2 * float64(n.MACs) / n.Energy / 1e12
}

// GOPS returns network-level throughput.
func (n *NetworkResult) GOPS() float64 {
	if n.TimeSec <= 0 {
		return 0
	}
	return 2 * float64(n.MACs) / n.TimeSec / 1e9
}

// EnergyPerMAC returns network-average joules per MAC.
func (n *NetworkResult) EnergyPerMAC() float64 {
	if n.MACs == 0 {
		return 0
	}
	return n.Energy / float64(n.MACs)
}

// EvaluateNetwork searches the best mapping for every layer of a network
// and aggregates energy and time across repeats.
func (e *Engine) EvaluateNetwork(n *workload.Network, maxMappings int, seed int64) (*NetworkResult, error) {
	return e.EvaluateNetworkCtx(context.Background(), n, maxMappings, seed)
}

// EvaluateNetworkCtx is EvaluateNetwork under a context: cancellation is
// checked between layers and inside each layer's mapping search.
func (e *Engine) EvaluateNetworkCtx(ctx context.Context, n *workload.Network, maxMappings int, seed int64) (*NetworkResult, error) {
	return e.EvaluateNetworkOptsCtx(ctx, n, SearchOptions{MaxMappings: maxMappings, Seed: seed})
}

// EvaluateNetworkOptsCtx is EvaluateNetwork with the full option set:
// SearchWorkers > 1 fans each layer's candidate evaluations across a
// worker pool for single-request latency, with results bit-identical to
// the serial path (layer i still searches with Seed+i).
func (e *Engine) EvaluateNetworkOptsCtx(ctx context.Context, n *workload.Network, so SearchOptions) (*NetworkResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	out := &NetworkResult{Arch: e.arch.Name, Network: n.Name, AreaUm2: e.area}
	for i, l := range n.Layers {
		lso := so
		lso.Seed = so.Seed + int64(i)
		r, evaluated, err := e.EvaluateLayerOptsCtx(ctx, l, lso)
		if err != nil {
			return nil, fmt.Errorf("core: network %q layer %q: %w", n.Name, l.Name, err)
		}
		out.PerLayer = append(out.PerLayer, r)
		rep := float64(l.Repeat)
		out.Energy += r.Energy * rep
		out.TimeSec += r.TimeSec * rep
		out.MACs += r.MACs * int64(l.Repeat)
		out.MappingsEvaluated += int64(evaluated)
	}
	return out, nil
}
