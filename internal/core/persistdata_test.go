package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/workload"
)

func preparedContext(t *testing.T) (*core.Engine, *core.LayerContext) {
	t.Helper()
	arch, err := macros.Base(macros.Config{Rows: 32, Cols: 32})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := eng.PrepareLayer(workload.Toy().Layers[0])
	if err != nil {
		t.Fatal(err)
	}
	return eng, ctx
}

func TestLayerContextExportRestore(t *testing.T) {
	eng, ctx := preparedContext(t)
	data := ctx.Export()
	if len(data.Energies) != ctx.LevelCount() {
		t.Fatalf("export has %d energy tables, want %d", len(data.Energies), ctx.LevelCount())
	}
	if data.InputRails <= 0 || data.WeightRails <= 0 {
		t.Fatalf("export rails %d/%d must be positive", data.InputRails, data.WeightRails)
	}
	if len(data.InputSlicePMF) == 0 || len(data.WeightSlicePMF) == 0 {
		t.Fatal("export must carry the slice PMFs")
	}
	restored, err := core.RestoreLayerContext(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.LevelCount() != ctx.LevelCount() {
		t.Fatalf("restored level count %d, want %d", restored.LevelCount(), ctx.LevelCount())
	}
	// Export of the restored context must carry identical values — the
	// flatten/rebuild pair is lossless.
	rdata := restored.Export()
	for i := range data.Energies {
		for k, want := range data.Energies[i] {
			if got := rdata.Energies[i][k]; got != want {
				t.Fatalf("level %d tensor %v: restored energies %+v, want %+v", i, k, got, want)
			}
		}
	}
	if rdata.InputRails != data.InputRails || rdata.WeightRails != data.WeightRails {
		t.Fatalf("restored rails %d/%d, want %d/%d",
			rdata.InputRails, rdata.WeightRails, data.InputRails, data.WeightRails)
	}
	// A restored context is evaluable with the engine it was prepared on.
	m, err := eng.GreedyMapping(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.EvaluateMapping(restored, m); err != nil {
		t.Fatalf("restored context must be evaluable: %v", err)
	}
}

func TestRestoreLayerContextValidation(t *testing.T) {
	_, ctx := preparedContext(t)
	if _, err := core.RestoreLayerContext(nil); err == nil {
		t.Fatal("nil data must fail")
	}
	for _, mutate := range []struct {
		name string
		fn   func(*core.LayerContextData)
	}{
		{"no sliced einsum", func(d *core.LayerContextData) { d.Sliced = nil }},
		{"no layer einsum", func(d *core.LayerContextData) { d.Layer.Op = nil }},
		{"zero input rails", func(d *core.LayerContextData) { d.InputRails = 0 }},
		{"negative weight rails", func(d *core.LayerContextData) { d.WeightRails = -1 }},
		{"no energies", func(d *core.LayerContextData) { d.Energies = nil }},
		{"empty input pmf", func(d *core.LayerContextData) { d.InputSlicePMF = nil }},
		{"unsorted weight pmf", func(d *core.LayerContextData) {
			d.WeightSlicePMF[0], d.WeightSlicePMF[1] = d.WeightSlicePMF[1], d.WeightSlicePMF[0]
		}},
	} {
		data := ctx.Export()
		// Deep-copy the PMF slices so mutations don't alias the live context.
		data.InputSlicePMF = append(data.InputSlicePMF[:0:0], data.InputSlicePMF...)
		data.WeightSlicePMF = append(data.WeightSlicePMF[:0:0], data.WeightSlicePMF...)
		mutate.fn(data)
		if _, err := core.RestoreLayerContext(data); err == nil {
			t.Fatalf("%s: restore must fail", mutate.name)
		}
	}
}
