package core

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Plain-data views of the amortized per-layer state, for serialization.
//
// A LayerContext is the expensive half of an evaluation — the
// data-value-dependent pipeline of Algorithm 1 lines 3-7 (PMF synthesis,
// encoding, slicing, and per-component average energies) — but its
// contents are plain numbers: once computed, it is just tables. Export
// flattens a context into exported, JSON-ready structs; RestoreLayerContext
// rebuilds a context from them without re-running the pipeline. The two
// are exact inverses: a restored context evaluates every mapping
// bit-identically to the original (package persist relies on this for
// warm starts).
//
// Engines need no analogous view: an Engine is compiled from its Arch —
// already plain data — in microseconds, so its serialized form is the
// Arch itself and its decoder is NewEngine.

// AccessEnergy is the exported view of one level's per-value access
// energies for one tensor role (joules per read/write/crossing).
type AccessEnergy struct {
	Read  float64 `json:"read,omitempty"`
	Write float64 `json:"write,omitempty"`
	Cross float64 `json:"cross,omitempty"`
}

// LayerContextData is the plain-data view of a LayerContext. All fields
// are exported and JSON-serializable; float values round-trip bit-exactly
// through encoding/json (shortest round-trip formatting).
type LayerContextData struct {
	Layer  workload.Layer `json:"layer"`
	Sliced *tensor.Einsum `json:"sliced"`

	// Energies is indexed [levelIdx][tensorKind], parallel to the flattened
	// level list of the architecture the context was prepared against.
	Energies []map[tensor.Kind]AccessEnergy `json:"energies"`

	InputRails  int `json:"input_rails"`
	WeightRails int `json:"weight_rails"`

	InputSlicePMF  []dist.Point `json:"input_slice_pmf"`
	WeightSlicePMF []dist.Point `json:"weight_slice_pmf"`
}

// Export flattens the context into its plain-data view.
func (c *LayerContext) Export() *LayerContextData {
	d := &LayerContextData{
		Layer:       c.Layer,
		Sliced:      c.Sliced,
		InputRails:  c.inputRails,
		WeightRails: c.weightRails,
	}
	if c.InputSlicePMF != nil {
		d.InputSlicePMF = c.InputSlicePMF.Points()
	}
	if c.WeightSlicePMF != nil {
		d.WeightSlicePMF = c.WeightSlicePMF.Points()
	}
	d.Energies = make([]map[tensor.Kind]AccessEnergy, len(c.energies))
	for i, m := range c.energies {
		em := make(map[tensor.Kind]AccessEnergy, len(m))
		for t, ae := range m {
			em[t] = AccessEnergy{Read: ae.read, Write: ae.write, Cross: ae.cross}
		}
		d.Energies[i] = em
	}
	return d
}

// RestoreLayerContext rebuilds an evaluable LayerContext from its
// plain-data view, validating structural invariants but not re-running the
// preparation pipeline. The caller is responsible for pairing the context
// with an engine of the matching architecture (the persist layer does this
// by content fingerprint).
func RestoreLayerContext(d *LayerContextData) (*LayerContext, error) {
	if d == nil {
		return nil, errors.New("core: nil layer context data")
	}
	if d.Sliced == nil {
		return nil, errors.New("core: layer context data has no sliced einsum")
	}
	if err := d.Sliced.Validate(); err != nil {
		return nil, fmt.Errorf("core: layer context sliced einsum: %w", err)
	}
	if d.Layer.Op == nil {
		return nil, errors.New("core: layer context data has no layer einsum")
	}
	if err := d.Layer.Op.Validate(); err != nil {
		return nil, fmt.Errorf("core: layer context layer einsum: %w", err)
	}
	if d.InputRails <= 0 || d.WeightRails <= 0 {
		return nil, fmt.Errorf("core: layer context rails %d/%d must be positive", d.InputRails, d.WeightRails)
	}
	if len(d.Energies) == 0 {
		return nil, errors.New("core: layer context data has no energy tables")
	}
	inPMF, err := dist.Restore(d.InputSlicePMF)
	if err != nil {
		return nil, fmt.Errorf("core: layer context input slice PMF: %w", err)
	}
	wPMF, err := dist.Restore(d.WeightSlicePMF)
	if err != nil {
		return nil, fmt.Errorf("core: layer context weight slice PMF: %w", err)
	}
	ctx := &LayerContext{
		Layer:          d.Layer,
		Sliced:         d.Sliced,
		inputRails:     d.InputRails,
		weightRails:    d.WeightRails,
		InputSlicePMF:  inPMF,
		WeightSlicePMF: wPMF,
		energies:       make([]map[tensor.Kind]accessEnergies, len(d.Energies)),
	}
	for i, m := range d.Energies {
		em := make(map[tensor.Kind]accessEnergies, len(m))
		for t, ae := range m {
			em[t] = accessEnergies{read: ae.Read, write: ae.Write, cross: ae.Cross}
		}
		ctx.energies[i] = em
	}
	return ctx, nil
}

// LevelCount returns the number of per-level energy tables in the
// context — the flattened level count of the architecture it was prepared
// against. Persisted contexts are validated against their engine with it.
func (c *LayerContext) LevelCount() int { return len(c.energies) }
