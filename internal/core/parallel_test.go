package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/workload"
)

// TestSearchLayerParallelMatchesSerial is the engine-level equivalence
// property: the parallel per-layer search returns the identical best
// mapping, energy, and evaluated count as the serial search across seeds
// and worker counts — every metric, not just the winner's energy.
func TestSearchLayerParallelMatchesSerial(t *testing.T) {
	eng, lctx := cancelTestEngine(t)
	for seed := int64(0); seed < 5; seed++ {
		want, wantN, err := eng.SearchLayerOptsCtx(context.Background(), lctx,
			core.SearchOptions{MaxMappings: 48, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, gotN, err := eng.SearchLayerOptsCtx(context.Background(), lctx,
				core.SearchOptions{MaxMappings: 48, Seed: seed, SearchWorkers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if gotN != wantN {
				t.Fatalf("seed %d workers %d: evaluated %d vs %d", seed, workers, gotN, wantN)
			}
			if got.Energy != want.Energy || got.Cycles != want.Cycles ||
				got.Utilization != want.Utilization || got.TimeSec != want.TimeSec ||
				got.Mapping.String() != want.Mapping.String() {
				t.Fatalf("seed %d workers %d diverged:\n  parallel %g J %d cyc %s\n  serial   %g J %d cyc %s",
					seed, workers, got.Energy, got.Cycles, got.Mapping,
					want.Energy, want.Cycles, want.Mapping)
			}
		}
	}
}

// TestEvaluateNetworkParallelMatchesSerial checks the network roll-up —
// energies, times, per-layer mappings, and the evaluated count — is
// unchanged by intra-layer parallelism.
func TestEvaluateNetworkParallelMatchesSerial(t *testing.T) {
	arch, err := macros.Base(macros.Config{Rows: 16, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		t.Fatal(err)
	}
	net := workload.Toy()
	want, err := eng.EvaluateNetworkOptsCtx(context.Background(), net,
		core.SearchOptions{MaxMappings: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.EvaluateNetworkOptsCtx(context.Background(), net,
		core.SearchOptions{MaxMappings: 16, Seed: 7, SearchWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got.Energy != want.Energy || got.TimeSec != want.TimeSec ||
		got.MACs != want.MACs || got.MappingsEvaluated != want.MappingsEvaluated {
		t.Fatalf("parallel network result diverged: %+v vs %+v", got, want)
	}
	if want.MappingsEvaluated == 0 {
		t.Fatal("MappingsEvaluated not populated")
	}
	for i := range want.PerLayer {
		if got.PerLayer[i].Mapping.String() != want.PerLayer[i].Mapping.String() {
			t.Fatalf("layer %d picked %s, serial picks %s",
				i, got.PerLayer[i].Mapping, want.PerLayer[i].Mapping)
		}
	}
}

// TestSearchLayerParallelCancelled checks an already-cancelled context
// short-circuits the parallel search like the serial one.
func TestSearchLayerParallelCancelled(t *testing.T) {
	eng, lctx := cancelTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, evaluated, err := eng.SearchLayerOptsCtx(ctx, lctx,
		core.SearchOptions{MaxMappings: 64, Seed: 1, SearchWorkers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if evaluated != 0 {
		t.Fatalf("evaluated %d mappings after cancellation, want 0", evaluated)
	}
}

// TestSearchLayerParallelStopsMidSearch is the parallel twin of the serial
// countdown test: cancellation observed mid-fan-out aborts the search
// before the budget is exhausted.
func TestSearchLayerParallelStopsMidSearch(t *testing.T) {
	eng, lctx := cancelTestEngine(t)
	const budget = 64
	_, full, err := eng.SearchLayerOptsCtx(context.Background(), lctx,
		core.SearchOptions{MaxMappings: budget, Seed: 1, SearchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if full <= 8 {
		t.Skipf("search only evaluates %d candidates; cannot observe an early stop", full)
	}
	ctx := &countdownCtx{Context: context.Background(), left: 3}
	_, evaluated, err := eng.SearchLayerOptsCtx(ctx, lctx,
		core.SearchOptions{MaxMappings: budget, Seed: 1, SearchWorkers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !ctx.fired {
		t.Fatal("parallel search never polled the context")
	}
	if evaluated >= full {
		t.Fatalf("evaluated %d of %d candidates despite mid-search cancellation", evaluated, full)
	}
}
