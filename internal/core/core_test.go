package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/spec"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func allMacros(t *testing.T) map[string]*core.Arch {
	t.Helper()
	out := map[string]*core.Arch{}
	for _, name := range []string{"base", "macro-a", "macro-b", "macro-c", "macro-d", "digital-cim"} {
		a, err := macros.ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = a
	}
	return out
}

func TestNewEngineAllMacros(t *testing.T) {
	for name, a := range allMacros(t) {
		e, err := core.NewEngine(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.Area() <= 0 {
			t.Errorf("%s: area = %g", name, e.Area())
		}
		if e.ClockHz() <= 0 {
			t.Errorf("%s: clock = %g", name, e.ClockHz())
		}
		if e.Arch() != a {
			t.Errorf("%s: Arch() mismatch", name)
		}
		sum := 0.0
		for _, v := range e.AreaBreakdown() {
			sum += v
		}
		if math.Abs(sum-e.Area()) > 1e-9*e.Area() {
			t.Errorf("%s: breakdown sum %g != area %g", name, sum, e.Area())
		}
	}
}

func TestEvaluateLayerAllMacros(t *testing.T) {
	toy := workload.Toy()
	for name, a := range allMacros(t) {
		e, err := core.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range toy.Layers {
			r, err := e.EvaluateLayer(l, 8, 1)
			if err != nil {
				t.Fatalf("%s layer %s: %v", name, l.Name, err)
			}
			if r.Energy <= 0 || math.IsNaN(r.Energy) || math.IsInf(r.Energy, 0) {
				t.Fatalf("%s layer %s: energy %g", name, l.Name, r.Energy)
			}
			if r.Cycles <= 0 || r.TimeSec <= 0 {
				t.Fatalf("%s layer %s: cycles %d time %g", name, l.Name, r.Cycles, r.TimeSec)
			}
			if r.Utilization <= 0 || r.Utilization > 1 {
				t.Fatalf("%s layer %s: utilization %g", name, l.Name, r.Utilization)
			}
			// Level breakdown sums to the total.
			sum := 0.0
			for _, le := range r.Levels {
				sum += le.Total
			}
			if math.Abs(sum-r.Energy) > 1e-9*r.Energy {
				t.Fatalf("%s layer %s: breakdown %g != energy %g", name, l.Name, sum, r.Energy)
			}
			if r.TOPSPerW() <= 0 || r.GOPS() <= 0 || r.EnergyPerMAC() <= 0 {
				t.Fatalf("%s layer %s: derived metrics invalid", name, l.Name)
			}
		}
	}
}

func TestEnergyEfficiencyPlausible(t *testing.T) {
	// Macro B (7nm) should land within an order of magnitude of its
	// published few-hundred TOPS/W at 4b/4b.
	a, err := macros.B(macros.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	n, err := workload.MaxUtilization(64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.EvaluateLayer(n.Layers[0], 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eff := r.TOPSPerW()
	if eff < 30 || eff > 3000 {
		t.Fatalf("Macro B efficiency %.1f TOPS/W implausible (published ~351)", eff)
	}
}

func TestVoltageScalingTradesEnergyForSpeed(t *testing.T) {
	mk := func(vdd float64) *core.Result {
		a, err := macros.D(macros.Config{Vdd: vdd})
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		n, err := workload.MaxUtilization(512, 128, 32)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.EvaluateLayer(n.Layers[0], 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	low := mk(0.65)
	high := mk(0.95)
	if low.Energy >= high.Energy {
		t.Fatalf("lower supply must cost less energy: %g vs %g", low.Energy, high.Energy)
	}
	if low.TimeSec <= high.TimeSec {
		t.Fatalf("lower supply must be slower: %g vs %g", low.TimeSec, high.TimeSec)
	}
}

func TestDataValueDependence(t *testing.T) {
	// The same macro on a sparse vs. dense layer: sparse inputs gate DACs
	// and cells, so macro energy per MAC must drop.
	a, err := macros.Base(macros.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(sparsity float64) workload.Layer {
		n, err := workload.MaxUtilization(128, 128, 16)
		if err != nil {
			t.Fatal(err)
		}
		l := n.Layers[0]
		l.Act.Sparsity = sparsity
		return l
	}
	dense, err := e.EvaluateLayer(mk(0.0), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := e.EvaluateLayer(mk(0.9), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Energy >= dense.Energy {
		t.Fatalf("sparse inputs must reduce energy: %g vs %g", sparse.Energy, dense.Energy)
	}
}

func TestLargerArrayAmortizesADC(t *testing.T) {
	// Macro C array sweep on a large matmul: bigger arrays sum more rows
	// per ADC convert, cutting energy/MAC (Fig. 14 mechanics).
	perMAC := func(size int) float64 {
		a, err := macros.C(macros.Config{Rows: size, Cols: size})
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		n, err := workload.MaxUtilization(1024, 1024, 8)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.EvaluateLayer(n.Layers[0], 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r.EnergyPerMAC()
	}
	small := perMAC(64)
	large := perMAC(512)
	if large >= small {
		t.Fatalf("larger array should amortize ADC energy: %g vs %g J/MAC", large, small)
	}
}

func TestNetworkEvaluation(t *testing.T) {
	a, err := macros.Base(macros.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	n := workload.Toy()
	res, err := e.EvaluateNetwork(n, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLayer) != len(n.Layers) {
		t.Fatalf("per-layer results %d != layers %d", len(res.PerLayer), len(n.Layers))
	}
	if res.MACs != n.MACs() {
		t.Fatalf("MACs %d != %d", res.MACs, n.MACs())
	}
	if res.Energy <= 0 || res.TimeSec <= 0 || res.TOPSPerW() <= 0 || res.GOPS() <= 0 || res.EnergyPerMAC() <= 0 {
		t.Fatal("invalid aggregates")
	}
	bad := workload.Toy()
	bad.Layers[0].Repeat = 0
	if _, err := e.EvaluateNetwork(bad, 4, 1); err == nil {
		t.Fatal("want error for invalid network")
	}
}

func TestArchValidation(t *testing.T) {
	good, err := macros.Base(macros.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(a *core.Arch)) error {
		a, err := macros.Base(macros.Config{})
		if err != nil {
			t.Fatal(err)
		}
		f(a)
		_, err = core.NewEngine(a)
		return err
	}
	if _, err := core.NewEngine(good); err != nil {
		t.Fatal(err)
	}
	cases := []func(a *core.Arch){
		func(a *core.Arch) { a.Name = "" },
		func(a *core.Arch) { a.Levels = nil },
		func(a *core.Arch) { a.ClockHz = 0 },
		func(a *core.Arch) { a.InputBits = 0 },
		func(a *core.Arch) { a.WeightBits = 40 },
		func(a *core.Arch) { a.DACBits = a.InputBits + 1 },
		func(a *core.Arch) { a.CellBits = a.WeightBits + 1 },
		func(a *core.Arch) { a.Vdd = -1 },
		func(a *core.Arch) { a.Levels[1].Class = "nonsense" },
	}
	for i, f := range cases {
		if err := mutate(f); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestSlicedEinsum(t *testing.T) {
	a, err := macros.Base(macros.Config{InputBits: 8, WeightBits: 8, DACBits: 2, CellBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.InputSlices() != 4 || a.WeightSlices() != 2 {
		t.Fatalf("slices = %d/%d", a.InputSlices(), a.WeightSlices())
	}
	e, err := tensor.MatMul("mm", 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.SlicedEinsum(e)
	if err != nil {
		t.Fatal(err)
	}
	if s.MACs() != e.MACs()*4*2 {
		t.Fatalf("sliced MACs = %d", s.MACs())
	}
	ib, err := s.DimBound(core.DimInputSlice)
	if err != nil || ib != 4 {
		t.Fatalf("input slice bound = %d, %v", ib, err)
	}
	// Weight slices index distinct devices: _WB is relevant to weights.
	rd, err := s.RelevantDims("Weights")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rd {
		if d == core.DimWeightSlice {
			found = true
		}
	}
	if !found {
		t.Fatal("weight slice dim not relevant to weights")
	}
	// Input slices are extracted locally from a fetched value: _IB is a
	// pure repetition dim, relevant to no tensor (so input holders reuse
	// values across bit-serial steps for free).
	for _, space := range []string{"Inputs", "Outputs", "Weights"} {
		rd, _ := s.RelevantDims(space)
		for _, d := range rd {
			if d == core.DimInputSlice {
				t.Fatalf("input slice dim must not be relevant to %s", space)
			}
			if space != "Weights" && d == core.DimWeightSlice {
				t.Fatalf("weight slice dim must not be relevant to %s", space)
			}
		}
	}
}

func TestBitSerialCostsMoreCycles(t *testing.T) {
	// Base macro with 1b DAC steps needs 8x the cycles of 8b steps.
	mk := func(dacBits int) int64 {
		a, err := macros.Base(macros.Config{DACBits: dacBits})
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		n, err := workload.MaxUtilization(128, 128, 16)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.EvaluateLayer(n.Layers[0], 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	serial := mk(1)
	parallel := mk(8)
	if serial != 8*parallel {
		t.Fatalf("bit-serial cycles %d, want 8x %d", serial, parallel)
	}
}

func TestMacroBAnalogAdderCutsADCEnergy(t *testing.T) {
	// Macro B with a 4-operand analog adder merges the 4 weight-bit
	// columns before the ADC; a 1-operand "adder" (no merging) pays 4x
	// the ADC converts.
	adcEnergy := func(group int) float64 {
		a, err := macros.B(macros.Config{GroupCols: group})
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		n, err := workload.MaxUtilization(64, 64, 32)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.EvaluateLayer(n.Layers[0], 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, le := range r.Levels {
			if le.Class == "adc" {
				return le.Total
			}
		}
		t.Fatal("no adc level found")
		return 0
	}
	merged := adcEnergy(4)
	unmerged := adcEnergy(1)
	if merged >= unmerged {
		t.Fatalf("analog adder should cut ADC energy: %g vs %g", merged, unmerged)
	}
}

func TestReductionDepthMatchesHierarchy(t *testing.T) {
	a, err := macros.Base(macros.Config{Rows: 64, Cols: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Find the ADC level and confirm its column-sum depth equals rows.
	adcIdx := -1
	for i := range a.Levels {
		if a.Levels[i].Class == "adc" {
			adcIdx = i
		}
	}
	if adcIdx < 0 {
		t.Fatal("no adc level")
	}
	// Exposed indirectly: outputBits grows with reduction depth. Just
	// check the macro builds and evaluates; depth correctness is covered
	// by the ADC energy ratio test above.
	if _, err := core.NewEngine(a); err != nil {
		t.Fatal(err)
	}
	_ = spec.StorageLevel
}
