package macros

import (
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/tech"
	"repro/internal/tensor"
)

// This file implements the paper's "beyond CiM" claim (§VII): the same
// container-hierarchy methodology models traditional digital accelerators
// and photonic accelerators without simulator changes.

// DigitalAccelerator returns a conventional weight-stationary digital PE
// array (TPU/Eyeriss-class): full-precision digital MACs with per-PE
// weight registers, no analog conversion anywhere. Defaults: 16x16 PEs at
// 22 nm, 8b/8b.
func DigitalAccelerator(cfg Config) (*core.Arch, error) {
	cfg.fill(Config{
		Rows: 16, Cols: 16, InputBits: 8, WeightBits: 8,
		ADCBits: 1, DACBits: 8, CellBits: 8, NodeNm: 22,
		ClockHz: 800e6, GroupCols: 1, BufferKB: 256,
	})
	if err := cfg.check("digital-accelerator"); err != nil {
		return nil, err
	}
	node, err := tech.ByNm(cfg.NodeNm)
	if err != nil {
		return nil, err
	}
	root := &spec.Container{
		Name: "digital-accelerator",
		Children: []spec.Node{
			&spec.Component{Name: "buffer", Class: "sram-buffer",
				Attrs:      map[string]float64{"capacity_kb": cfg.BufferKB},
				Directives: directives{tensor.Input: spec.TemporalReuse, tensor.Weight: spec.TemporalReuse, tensor.Output: spec.TemporalReuse}},
			&spec.Component{Name: "input_regs", Class: "register",
				Attrs:      map[string]float64{"bits": float64(cfg.InputBits)},
				Directives: directives{tensor.Input: spec.TemporalReuse}},
			&spec.Container{Name: "pe_cols", MeshX: cfg.Cols,
				SpatialReuse: reuse(tensor.Input),
				Children: []spec.Node{
					&spec.Component{Name: "psum_regs", Class: "register",
						Attrs:      map[string]float64{"bits": 24},
						Directives: directives{tensor.Output: spec.TemporalReuse}},
					&spec.Container{Name: "pe_rows", MeshY: cfg.Rows,
						SpatialReuse: reuse(tensor.Output),
						Children: []spec.Node{
							&spec.Component{Name: "pe", Class: "digital-mac",
								Directives: directives{tensor.Weight: spec.TemporalReuse},
								IsCompute:  true},
						}},
				}},
		},
	}
	levels, err := spec.Flatten(root)
	if err != nil {
		return nil, err
	}
	return &core.Arch{
		Name:   "digital-accelerator",
		Levels: levels,
		Node:   node, Vdd: cfg.Vdd, ClockHz: cfg.ClockHz,
		InputBits: cfg.InputBits, WeightBits: cfg.WeightBits,
		DACBits: cfg.DACBits, CellBits: cfg.CellBits,
		InputEncoding: "unsigned", WeightEncoding: "twos-complement",
		SpatialPrefs: prefs(levels,
			prefEntry("pe_cols", "K"),
			prefEntry("pe_rows", "C", "R", "S"),
		),
		InnerDims:        []string{"C", "R", "S"},
		WeightSliceLevel: -1,
		InputSliceLevel:  -1,
		TemporalLevel:    -1,
	}, nil
}

// Photonic returns a photonic tensor-core style accelerator: MZI
// modulators encode inputs onto light, a photonic weight mesh computes
// the analog MAC optically (laser wall-plug power dominates), and
// photodetectors plus ADCs read summed outputs — the paper's ref [78]
// target, expressed in the same specification.
func Photonic(cfg Config) (*core.Arch, error) {
	cfg.fill(Config{
		Rows: 64, Cols: 64, InputBits: 8, WeightBits: 8,
		ADCBits: 8, DACBits: 8, CellBits: 8, NodeNm: 22,
		ClockHz:   5e9, // photonics' draw: very high activation rates
		GroupCols: 1, BufferKB: 128,
	})
	if err := cfg.check("photonic"); err != nil {
		return nil, err
	}
	node, err := tech.ByNm(cfg.NodeNm)
	if err != nil {
		return nil, err
	}
	root := &spec.Container{
		Name: "photonic-macro",
		Children: []spec.Node{
			&spec.Component{Name: "buffer", Class: "sram-buffer",
				Attrs:      map[string]float64{"capacity_kb": cfg.BufferKB},
				Directives: directives{tensor.Input: spec.TemporalReuse, tensor.Weight: spec.TemporalReuse, tensor.Output: spec.TemporalReuse}},
			&spec.Component{Name: "input_regs", Class: "register",
				Attrs:      map[string]float64{"bits": float64(cfg.InputBits)},
				Directives: directives{tensor.Input: spec.TemporalReuse}},
			&spec.Component{Name: "modulators", Class: "mzi-modulator",
				Directives: directives{tensor.Input: spec.NoCoalesce}},
			&spec.Container{Name: "columns", MeshX: cfg.Cols,
				SpatialReuse: reuse(tensor.Input),
				Children: []spec.Node{
					&spec.Component{Name: "adc", Class: "adc",
						Attrs:      map[string]float64{"resolution": float64(cfg.ADCBits)},
						Directives: directives{tensor.Output: spec.NoCoalesce}},
					&spec.Component{Name: "detector", Class: "photodetector",
						Directives: directives{tensor.Output: spec.NoCoalesce}},
					&spec.Container{Name: "rows", MeshY: cfg.Rows,
						SpatialReuse: reuse(tensor.Output),
						Children: []spec.Node{
							&spec.Component{Name: "mesh_cell", Class: "photonic-cell",
								Directives: directives{tensor.Weight: spec.TemporalReuse},
								IsCompute:  true},
						}},
				}},
		},
	}
	levels, err := spec.Flatten(root)
	if err != nil {
		return nil, err
	}
	return &core.Arch{
		Name:   "photonic",
		Levels: levels,
		Node:   node, Vdd: cfg.Vdd, ClockHz: cfg.ClockHz,
		InputBits: cfg.InputBits, WeightBits: cfg.WeightBits,
		DACBits: cfg.DACBits, CellBits: cfg.CellBits,
		InputEncoding: "unsigned", WeightEncoding: "offset",
		SpatialPrefs: prefs(levels,
			prefEntry("columns", "K"),
			prefEntry("rows", "C", "R", "S"),
		),
		InnerDims:        []string{"C", "R", "S"},
		WeightSliceLevel: -1,
		InputSliceLevel:  -1,
		TemporalLevel:    -1,
	}, nil
}
