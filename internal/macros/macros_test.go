package macros

import (
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func TestAllMacrosBuildAndValidate(t *testing.T) {
	for _, name := range []string{"base", "macro-a", "macro-b", "macro-c", "macro-d", "digital-cim"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if _, err := core.NewEngine(a); err != nil {
			t.Errorf("%s: engine: %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("want error for unknown macro")
	}
}

func TestTableIIIDefaults(t *testing.T) {
	// Constructors' defaults must line up with the published Table III.
	a, err := A(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Macro A's grouped columns reduce outputs, so they count as part of
	// the reduction fan-in; the physical cell count must still be
	// 768x768.
	rows, cols := archDims(a)
	if rows*cols != 768*768 || a.Node.Nm != 65 {
		t.Errorf("A: %dx%d @%dnm", rows, cols, a.Node.Nm)
	}
	b, err := B(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows, cols = archDims(b)
	if rows != 64 || cols != 64 || b.Node.Nm != 7 || b.InputBits != 4 || b.WeightBits != 4 {
		t.Errorf("B: %dx%d @%dnm %db/%db", rows, cols, b.Node.Nm, b.InputBits, b.WeightBits)
	}
	c, err := C(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows, cols = archDims(c)
	if rows != 256 || cols != 256 || c.Node.Nm != 130 {
		t.Errorf("C: %dx%d @%dnm", rows, cols, c.Node.Nm)
	}
	if c.CellBits != c.WeightBits {
		t.Errorf("C must store analog (full-precision) weights: cell %d weight %d", c.CellBits, c.WeightBits)
	}
	d, err := D(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows, cols = archDims(d)
	if rows != 512 || cols != 128 || d.Node.Nm != 22 || d.InputBits != 8 {
		t.Errorf("D: %dx%d @%dnm %db", rows, cols, d.Node.Nm, d.InputBits)
	}
	if len(TableIII()) != 4 {
		t.Error("TableIII must list four macros")
	}
}

func archDims(a *core.Arch) (rows, cols int) {
	rows, cols = 1, 1
	for i := range a.Levels {
		lv := &a.Levels[i]
		if lv.Kind != spec.SpatialLevel {
			continue
		}
		if lv.SpatialReuse[tensor.Output] {
			rows *= lv.Mesh
		} else {
			cols *= lv.Mesh
		}
	}
	return rows, cols
}

func TestConfigErrors(t *testing.T) {
	if _, err := Base(Config{Rows: -1}); err == nil {
		t.Error("want error for negative rows")
	}
	if _, err := A(Config{GroupCols: 5}); err == nil {
		t.Error("want error for group not dividing columns")
	}
	if _, err := Base(Config{NodeNm: 3}); err == nil {
		t.Error("want error for unsupported node")
	}
}

// Mesh-of-one collapse: GroupCols 1 must still produce a valid arch whose
// slice levels resolve correctly (regression for the hardcoded-index bug).
func TestGroupOfOneCollapses(t *testing.T) {
	b, err := B(Config{Rows: 16, Cols: 16, GroupCols: 1})
	if err != nil {
		t.Fatal(err)
	}
	// group_cols mesh is gone; weight slices must fall back to temporal.
	if b.WeightSliceLevel != -1 {
		t.Fatalf("WeightSliceLevel = %d, want -1 after group collapse", b.WeightSliceLevel)
	}
	eng, err := core.NewEngine(b)
	if err != nil {
		t.Fatal(err)
	}
	n, err := workload.MaxUtilization(16, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.EvaluateLayer(n.Layers[0], 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization < 0.5 {
		t.Fatalf("collapsed-group arch underutilized: %g", r.Utilization)
	}
	// A slice-level name must resolve by name, never by position.
	aArch, err := A(Config{Rows: 12, Cols: 12, GroupCols: 1})
	if err != nil {
		t.Fatal(err)
	}
	if aArch.InputSliceLevel < 0 {
		t.Fatal("macro A lost its shift_add input-slice level")
	}
	if aArch.Levels[aArch.InputSliceLevel].Name != "shift_add" {
		t.Fatalf("input slice level resolves to %q", aArch.Levels[aArch.InputSliceLevel].Name)
	}
}

// Macro A's grouped columns must NOT share inputs (each member column
// converts its own inputs — the DAC-cost side of the Fig. 3 tradeoff).
func TestMacroAGroupInputUnicast(t *testing.T) {
	a, err := A(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Levels {
		lv := &a.Levels[i]
		if lv.Name == "group_cols" {
			if lv.SpatialReuse[tensor.Input] {
				t.Fatal("group_cols must not multicast inputs")
			}
			if !lv.SpatialReuse[tensor.Output] {
				t.Fatal("group_cols must wire-sum outputs")
			}
			return
		}
	}
	t.Fatal("group_cols level not found")
}

// Macro energy ordering sanity at matched precision and node: the digital
// CiM macro (no ADC) should not beat analog macros by orders of magnitude
// or vice versa — all should land within a plausible band.
func TestMacroEfficienciesPlausible(t *testing.T) {
	for _, name := range []string{"base", "macro-b", "macro-d"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		rows, cols := archDims(a)
		n, err := workload.MaxUtilization(rows, cols, 64)
		if err != nil {
			t.Fatal(err)
		}
		r, err := eng.EvaluateLayer(n.Layers[0], 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		eff := r.TOPSPerW()
		if eff < 0.1 || eff > 5000 {
			t.Errorf("%s: %.1f TOPS/W out of plausible band", name, eff)
		}
	}
}

// The paper's conclusion: the same specification models non-CiM
// accelerators. Both "beyond CiM" architectures must build, evaluate, and
// show their signature behaviors.
func TestBeyondCiM(t *testing.T) {
	// Digital accelerator: no analog components anywhere.
	da, err := ByName("digital-accelerator")
	if err != nil {
		t.Fatal(err)
	}
	for i := range da.Levels {
		switch da.Levels[i].Class {
		case "adc", "dac", "analog-adder", "analog-accumulator":
			t.Fatalf("digital accelerator contains analog class %q", da.Levels[i].Class)
		}
	}
	engD, err := core.NewEngine(da)
	if err != nil {
		t.Fatal(err)
	}
	n, err := workload.MaxUtilization(16, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := engD.EvaluateLayer(n.Layers[0], 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Energy <= 0 || rd.GOPS() <= 0 {
		t.Fatal("digital accelerator evaluation invalid")
	}

	// Photonic: very high clock -> throughput per area should beat the
	// digital accelerator even though TOPS/W may not.
	ph, err := ByName("photonic")
	if err != nil {
		t.Fatal(err)
	}
	engP, err := core.NewEngine(ph)
	if err != nil {
		t.Fatal(err)
	}
	np, err := workload.MaxUtilization(64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := engP.EvaluateLayer(np.Layers[0], 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Energy <= 0 || rp.GOPS() <= 0 {
		t.Fatal("photonic evaluation invalid")
	}
	if rp.GOPS() <= rd.GOPS() {
		t.Fatalf("photonic throughput (%.1f GOPS) should beat the digital array (%.1f GOPS)", rp.GOPS(), rd.GOPS())
	}
}
