// Package macros provides container-hierarchy models of the published CiM
// macros the paper validates against (§V, Table III, Fig. 3):
//
//   - Base macro (Lu et al. [15], the NeuroSim-style topology): DACs on
//     rows, ADC per column group, digital shift-add accumulation.
//   - Macro A (Jia et al. [16], 65 nm SRAM 768×768): analog outputs summed
//     on wires across groups of adjacent columns, bit-serial digital
//     accumulation for multi-bit operands.
//   - Macro B (Sinangil et al. [17], 7 nm SRAM 64×64): an analog adder
//     sums columns storing different bits of the same weight before one
//     4-bit ADC read.
//   - Macro C (Wan et al. [18][19], 130 nm ReRAM 256×256): an analog
//     accumulator sums partial results across input-bit cycles before the
//     ADC.
//   - Macro D (Wang et al. [20][21], 22 nm SRAM 512×128): a C-2C ladder
//     charge-domain 8-bit MAC unit that internally reuses outputs across
//     weight bits.
//   - Digital CiM (Kim et al. [22], Colonnade-style): fully digital
//     bit-serial MACs, no ADC.
//
// Each constructor returns a *core.Arch: the flattened hierarchy plus
// technology context, data representation, and mapping guidance (including
// the paper's mapping restrictions, e.g. which dims may occupy adjacent
// columns).
package macros

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/tech"
	"repro/internal/tensor"
)

// Config parameterizes a macro build. Zero fields select the macro's
// published defaults (Table III).
type Config struct {
	Rows, Cols int
	InputBits  int
	WeightBits int
	ADCBits    int
	DACBits    int // input bits per DAC step
	CellBits   int // weight bits per device
	NodeNm     int
	Vdd        float64 // 0 = nominal
	ClockHz    float64
	// GroupCols is the number of adjacent columns whose outputs are
	// combined (wire-summed for Macro A, analog-added for Macro B).
	GroupCols int
	// BufferKB sizes the macro-local buffer.
	BufferKB float64
	// DACResistive selects the resistive DAC model instead of capacitive.
	DACResistive bool
	// ValueAwareADC selects the value-aware ADC energy model.
	ValueAwareADC bool
	// Device selects the compute-cell family for macros that support
	// swapping ("reram", "sram", "stt", "edram"); empty keeps the macro's
	// published device.
	Device string
	// ADCShare is the column-mux depth (columns per ADC). Zero keeps the
	// macro's default.
	ADCShare int
}

func (c *Config) fill(d Config) {
	if c.Rows == 0 {
		c.Rows = d.Rows
	}
	if c.Cols == 0 {
		c.Cols = d.Cols
	}
	if c.InputBits == 0 {
		c.InputBits = d.InputBits
	}
	if c.WeightBits == 0 {
		c.WeightBits = d.WeightBits
	}
	if c.ADCBits == 0 {
		c.ADCBits = d.ADCBits
	}
	if c.DACBits == 0 {
		c.DACBits = d.DACBits
	}
	if c.CellBits == 0 {
		c.CellBits = d.CellBits
	}
	if c.NodeNm == 0 {
		c.NodeNm = d.NodeNm
	}
	if c.ClockHz == 0 {
		c.ClockHz = d.ClockHz
	}
	if c.GroupCols == 0 {
		c.GroupCols = d.GroupCols
	}
	if c.BufferKB == 0 {
		c.BufferKB = d.BufferKB
	}
	if c.Vdd == 0 {
		c.Vdd = d.Vdd
	}
}

func (c *Config) check(name string) error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("macros: %s array %dx%d invalid", name, c.Rows, c.Cols)
	}
	if c.GroupCols <= 0 || c.Cols%c.GroupCols != 0 {
		return fmt.Errorf("macros: %s group of %d does not divide %d columns", name, c.GroupCols, c.Cols)
	}
	return nil
}

// reuse is shorthand for a spatial reuse set.
func reuse(kinds ...tensor.Kind) map[tensor.Kind]bool {
	m := make(map[tensor.Kind]bool, len(kinds))
	for _, k := range kinds {
		m[k] = true
	}
	return m
}

// directives is shorthand for a directive map.
type directives = map[tensor.Kind]spec.Directive

// levelIndex resolves a flattened level by name, returning -1 when absent
// (meshes of one collapse, so positions cannot be hardcoded).
func levelIndex(levels []spec.Level, name string) int {
	for i := range levels {
		if levels[i].Name == name {
			return i
		}
	}
	return -1
}

// prefs builds a SpatialPrefs map from (level name, dims) pairs, skipping
// levels absent from this configuration.
func prefs(levels []spec.Level, entries ...struct {
	Name string
	Dims []string
}) map[int][]string {
	out := map[int][]string{}
	for _, e := range entries {
		if idx := levelIndex(levels, e.Name); idx >= 0 {
			out[idx] = append(out[idx], e.Dims...)
		}
	}
	return out
}

// prefEntry builds one prefs entry.
func prefEntry(name string, dims ...string) struct {
	Name string
	Dims []string
} {
	return struct {
		Name string
		Dims []string
	}{name, dims}
}

// Base returns the Base macro (NeuroSim-style, [15]): bit-serial DACs on
// rows, one ADC per column, digital shift-add accumulating input-bit and
// weight-slice partial sums. Defaults: 45 nm ReRAM-like 128×128, 8b/8b
// operands, 1b DAC steps, 2b cells, 8b ADC.
func Base(cfg Config) (*core.Arch, error) {
	cfg.fill(Config{
		Rows: 128, Cols: 128, InputBits: 8, WeightBits: 8,
		ADCBits: 8, DACBits: 1, CellBits: 2, NodeNm: 45,
		ClockHz: 100e6, GroupCols: 1, BufferKB: 64,
	})
	if cfg.Device == "" {
		cfg.Device = "reram"
	}
	cellClass, ok := map[string]string{
		"reram": "reram-cell", "sram": "sram-cell",
		"stt": "stt-cell", "edram": "edram-cell",
	}[cfg.Device]
	if !ok {
		return nil, fmt.Errorf("macros: base: unknown device %q", cfg.Device)
	}
	if cfg.Device == "stt" {
		cfg.CellBits = 1 // MTJs store one bit
	}
	if cfg.ADCShare == 0 {
		cfg.ADCShare = 1
	}
	if err := cfg.check("base"); err != nil {
		return nil, err
	}
	node, err := tech.ByNm(cfg.NodeNm)
	if err != nil {
		return nil, err
	}
	root := &spec.Container{
		Name: "base-macro",
		Children: []spec.Node{
			&spec.Component{Name: "buffer", Class: "sram-buffer",
				Attrs:      map[string]float64{"capacity_kb": cfg.BufferKB},
				Directives: directives{tensor.Input: spec.TemporalReuse, tensor.Weight: spec.TemporalReuse, tensor.Output: spec.TemporalReuse}},
			&spec.Component{Name: "input_regs", Class: "register",
				Attrs:      map[string]float64{"bits": float64(cfg.InputBits)},
				Directives: directives{tensor.Input: spec.TemporalReuse}},
			&spec.Component{Name: "dac", Class: "dac",
				Attrs:      map[string]float64{"kind": boolAttr(cfg.DACResistive)},
				Directives: directives{tensor.Input: spec.NoCoalesce}},
			&spec.Container{Name: "columns", MeshX: cfg.Cols,
				SpatialReuse: reuse(tensor.Input),
				Children: []spec.Node{
					&spec.Component{Name: "shift_add", Class: "shift-add",
						Attrs:      map[string]float64{"bits": 24},
						Directives: directives{tensor.Output: spec.TemporalReuse}},
					&spec.Component{Name: "adc", Class: "adc",
						Attrs: map[string]float64{
							"resolution":  float64(cfg.ADCBits),
							"value_aware": boolAttr(cfg.ValueAwareADC),
							"area_scale":  1 / float64(cfg.ADCShare),
						},
						Directives: directives{tensor.Output: spec.NoCoalesce}},
					&spec.Container{Name: "rows", MeshY: cfg.Rows,
						SpatialReuse: reuse(tensor.Output),
						Children: []spec.Node{
							&spec.Component{Name: "cell", Class: cellClass,
								Directives: directives{tensor.Weight: spec.TemporalReuse},
								IsCompute:  true},
						}},
				}},
		},
	}
	levels, err := spec.Flatten(root)
	if err != nil {
		return nil, err
	}
	// Level indices: 0 buffer, 1 input_regs, 2 dac, 3 columns mesh,
	// 4 shift_add, 5 adc, 6 rows mesh, 7 cell.
	return &core.Arch{
		Name:   "base",
		Levels: levels,
		Node:   node, Vdd: cfg.Vdd, ClockHz: cfg.ClockHz,
		InputBits: cfg.InputBits, WeightBits: cfg.WeightBits,
		DACBits: cfg.DACBits, CellBits: cfg.CellBits,
		ADCShare:      cfg.ADCShare,
		InputEncoding: "unsigned", WeightEncoding: "offset",
		SpatialPrefs: prefs(levels,
			prefEntry("columns", "K"),
			prefEntry("rows", "C", "R", "S"),
		),
		InnerDims: []string{"C", "R", "S"},
		// Weight slices across adjacent columns; bit-serial inputs
		// accumulate in the shift-add. Leftover temporals at the buffer.
		WeightSliceLevel: levelIndex(levels, "columns"),
		InputSliceLevel:  levelIndex(levels, "shift_add"),
		TemporalLevel:    -1,
	}, nil
}

func boolAttr(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// A returns Macro A (Jia et al. [16]): 65 nm SRAM 768×768, bit-scalable
// 1b analog MACs, outputs wire-summed across groups of GroupCols adjacent
// columns (Fig. 12 sweeps GroupCols), digital bit-serial accumulation for
// multi-bit inputs and weights.
func A(cfg Config) (*core.Arch, error) {
	cfg.fill(Config{
		Rows: 768, Cols: 768, InputBits: 4, WeightBits: 4,
		ADCBits: 8, DACBits: 1, CellBits: 1, NodeNm: 65,
		ClockHz: 100e6, GroupCols: 3, BufferKB: 128,
	})
	if err := cfg.check("A"); err != nil {
		return nil, err
	}
	node, err := tech.ByNm(cfg.NodeNm)
	if err != nil {
		return nil, err
	}
	groups := cfg.Cols / cfg.GroupCols
	root := &spec.Container{
		Name: "macro-a",
		Children: []spec.Node{
			&spec.Component{Name: "buffer", Class: "sram-buffer",
				Attrs:      map[string]float64{"capacity_kb": cfg.BufferKB},
				Directives: directives{tensor.Input: spec.TemporalReuse, tensor.Weight: spec.TemporalReuse, tensor.Output: spec.TemporalReuse}},
			&spec.Component{Name: "input_regs", Class: "register",
				Attrs:      map[string]float64{"bits": float64(cfg.InputBits)},
				Directives: directives{tensor.Input: spec.TemporalReuse}},
			&spec.Component{Name: "dac", Class: "dac",
				Directives: directives{tensor.Input: spec.NoCoalesce}},
			&spec.Container{Name: "col_groups", MeshX: groups,
				SpatialReuse: reuse(tensor.Input),
				Children: []spec.Node{
					&spec.Component{Name: "shift_add", Class: "shift-add",
						Attrs:      map[string]float64{"bits": 24},
						Directives: directives{tensor.Output: spec.TemporalReuse}},
					&spec.Component{Name: "adc", Class: "adc",
						Attrs:      map[string]float64{"resolution": float64(cfg.ADCBits)},
						Directives: directives{tensor.Output: spec.NoCoalesce}},
					&spec.Container{Name: "group_cols", MeshX: cfg.GroupCols,
						// Outputs summed on wires across the group's
						// columns. Inputs are NOT shared within a group:
						// each member column computes a different slice
						// of the reduction, so every column needs its own
						// DAC converts — the "↓ input reuse, ↑ DAC
						// converts" cost of Fig. 3's Macro A.
						SpatialReuse: reuse(tensor.Output),
						Children: []spec.Node{
							&spec.Container{Name: "rows", MeshY: cfg.Rows,
								SpatialReuse: reuse(tensor.Output),
								Children: []spec.Node{
									&spec.Component{Name: "cell", Class: "sram-cell",
										Directives: directives{tensor.Weight: spec.TemporalReuse},
										IsCompute:  true},
								}},
						}},
				}},
		},
	}
	levels, err := spec.Flatten(root)
	if err != nil {
		return nil, err
	}
	// Levels: 0 buffer, 1 input_regs, 2 dac, 3 col_groups, 4 shift_add,
	// 5 adc, 6 group_cols, 7 rows, 8 cell.
	return &core.Arch{
		Name:   "macro-a",
		Levels: levels,
		Node:   node, Vdd: cfg.Vdd, ClockHz: cfg.ClockHz,
		InputBits: cfg.InputBits, WeightBits: cfg.WeightBits,
		DACBits: cfg.DACBits, CellBits: cfg.CellBits,
		InputEncoding: "unsigned", WeightEncoding: "offset",
		// Mapping restriction: grouped columns must share outputs, so
		// only reduction dims may occupy them (S first: 3x3 kernels fit
		// a 3-column group, the Fig. 12 sweet spot).
		SpatialPrefs: prefs(levels,
			prefEntry("col_groups", "K"),
			prefEntry("group_cols", "S", "C"),
			prefEntry("rows", "C", "R", "S"),
		),
		InnerDims:        []string{"C", "R", "S"},
		WeightSliceLevel: -1, // weight bits processed serially (digital accumulation)
		InputSliceLevel:  levelIndex(levels, "shift_add"),
		TemporalLevel:    -1,
	}, nil
}

// B returns Macro B (Sinangil et al. [17]): 7 nm SRAM 64×64, 4b inputs
// and weights, an analog adder summing GroupCols adjacent columns that
// store different bits of the same weight, then a 4b ADC.
func B(cfg Config) (*core.Arch, error) {
	cfg.fill(Config{
		Rows: 64, Cols: 64, InputBits: 4, WeightBits: 4,
		ADCBits: 4, DACBits: 4, CellBits: 1, NodeNm: 7,
		ClockHz: 200e6, GroupCols: 4, BufferKB: 16,
	})
	if err := cfg.check("B"); err != nil {
		return nil, err
	}
	node, err := tech.ByNm(cfg.NodeNm)
	if err != nil {
		return nil, err
	}
	groups := cfg.Cols / cfg.GroupCols
	root := &spec.Container{
		Name: "macro-b",
		Children: []spec.Node{
			&spec.Component{Name: "buffer", Class: "sram-buffer",
				Attrs:      map[string]float64{"capacity_kb": cfg.BufferKB},
				Directives: directives{tensor.Input: spec.TemporalReuse, tensor.Weight: spec.TemporalReuse, tensor.Output: spec.TemporalReuse}},
			&spec.Component{Name: "input_regs", Class: "register",
				Attrs:      map[string]float64{"bits": float64(cfg.InputBits)},
				Directives: directives{tensor.Input: spec.TemporalReuse}},
			&spec.Component{Name: "dac", Class: "dac",
				Directives: directives{tensor.Input: spec.NoCoalesce}},
			&spec.Container{Name: "col_groups", MeshX: groups,
				SpatialReuse: reuse(tensor.Input),
				Children: []spec.Node{
					&spec.Component{Name: "shift_add", Class: "shift-add",
						Attrs:      map[string]float64{"bits": 20},
						Directives: directives{tensor.Output: spec.TemporalReuse}},
					&spec.Component{Name: "adc", Class: "adc",
						Attrs:      map[string]float64{"resolution": float64(cfg.ADCBits), "value_aware": 1},
						Directives: directives{tensor.Output: spec.NoCoalesce}},
					&spec.Component{Name: "analog_adder", Class: "analog-adder",
						Attrs:      map[string]float64{"operands": float64(cfg.GroupCols), "out_bits": 8},
						Directives: directives{tensor.Output: spec.Coalesce}},
					&spec.Container{Name: "group_cols", MeshX: cfg.GroupCols,
						SpatialReuse: reuse(tensor.Input),
						Children: []spec.Node{
							&spec.Container{Name: "rows", MeshY: cfg.Rows,
								SpatialReuse: reuse(tensor.Output),
								Children: []spec.Node{
									&spec.Component{Name: "cell", Class: "sram-cell",
										Directives: directives{tensor.Weight: spec.TemporalReuse},
										IsCompute:  true},
								}},
						}},
				}},
		},
	}
	levels, err := spec.Flatten(root)
	if err != nil {
		return nil, err
	}
	// Levels: 0 buffer, 1 input_regs, 2 dac, 3 col_groups, 4 shift_add,
	// 5 adc, 6 analog_adder, 7 group_cols, 8 rows, 9 cell.
	return &core.Arch{
		Name:   "macro-b",
		Levels: levels,
		Node:   node, Vdd: cfg.Vdd, ClockHz: cfg.ClockHz,
		InputBits: cfg.InputBits, WeightBits: cfg.WeightBits,
		DACBits: cfg.DACBits, CellBits: cfg.CellBits,
		InputEncoding: "unsigned", WeightEncoding: "offset",
		SpatialPrefs: prefs(levels,
			prefEntry("col_groups", "K"),
			prefEntry("rows", "C", "R", "S"),
		),
		InnerDims: []string{"C", "R", "S"},
		// Mapping restriction of Fig. 3: the grouped columns store
		// different bits of the same weight (temporal spill when absent).
		WeightSliceLevel: levelIndex(levels, "group_cols"),
		InputSliceLevel:  levelIndex(levels, "shift_add"),
		TemporalLevel:    -1,
	}, nil
}

// C returns Macro C (Wan et al. [18][19]): 130 nm ReRAM 256×256, analog
// multi-bit weights (one device per weight), bit-serial 1b inputs whose
// partial sums accumulate in an analog accumulator across cycles before
// one ADC read.
func C(cfg Config) (*core.Arch, error) {
	cfg.fill(Config{
		Rows: 256, Cols: 256, InputBits: 8, WeightBits: 8,
		ADCBits: 8, DACBits: 1, CellBits: 8, NodeNm: 130,
		ClockHz: 50e6, GroupCols: 1, BufferKB: 64,
	})
	if err := cfg.check("C"); err != nil {
		return nil, err
	}
	if cfg.CellBits != cfg.WeightBits {
		// Analog weights: the full weight lives on one device.
		cfg.CellBits = cfg.WeightBits
	}
	node, err := tech.ByNm(cfg.NodeNm)
	if err != nil {
		return nil, err
	}
	root := &spec.Container{
		Name: "macro-c",
		Children: []spec.Node{
			&spec.Component{Name: "buffer", Class: "sram-buffer",
				Attrs:      map[string]float64{"capacity_kb": cfg.BufferKB},
				Directives: directives{tensor.Input: spec.TemporalReuse, tensor.Weight: spec.TemporalReuse, tensor.Output: spec.TemporalReuse}},
			&spec.Component{Name: "input_regs", Class: "register",
				Attrs:      map[string]float64{"bits": float64(cfg.InputBits)},
				Directives: directives{tensor.Input: spec.TemporalReuse}},
			&spec.Component{Name: "dac", Class: "dac",
				Directives: directives{tensor.Input: spec.NoCoalesce}},
			&spec.Container{Name: "columns", MeshX: cfg.Cols,
				SpatialReuse: reuse(tensor.Input),
				Children: []spec.Node{
					&spec.Component{Name: "adc", Class: "adc",
						Attrs:      map[string]float64{"resolution": float64(cfg.ADCBits)},
						Directives: directives{tensor.Output: spec.NoCoalesce}},
					&spec.Component{Name: "analog_accum", Class: "analog-accumulator",
						Attrs:      map[string]float64{"out_bits": 12},
						Directives: directives{tensor.Output: spec.TemporalReuse}},
					&spec.Container{Name: "rows", MeshY: cfg.Rows,
						SpatialReuse: reuse(tensor.Output),
						Children: []spec.Node{
							&spec.Component{Name: "cell", Class: "reram-cell",
								Directives: directives{tensor.Weight: spec.TemporalReuse},
								IsCompute:  true},
						}},
				}},
		},
	}
	levels, err := spec.Flatten(root)
	if err != nil {
		return nil, err
	}
	// Levels: 0 buffer, 1 input_regs, 2 dac, 3 columns, 4 adc,
	// 5 analog_accum, 6 rows, 7 cell.
	return &core.Arch{
		Name:   "macro-c",
		Levels: levels,
		Node:   node, Vdd: cfg.Vdd, ClockHz: cfg.ClockHz,
		InputBits: cfg.InputBits, WeightBits: cfg.WeightBits,
		DACBits: cfg.DACBits, CellBits: cfg.CellBits,
		InputEncoding: "unsigned", WeightEncoding: "offset",
		SpatialPrefs: prefs(levels,
			prefEntry("columns", "K"),
			prefEntry("rows", "C", "R", "S"),
		),
		InnerDims:        []string{"C", "R", "S"},
		WeightSliceLevel: -1,
		// Mapping restriction of Fig. 3: consecutive cycles carry
		// different input bits, accumulated in analog before the ADC.
		InputSliceLevel: levelIndex(levels, "analog_accum"),
		TemporalLevel:   -1,
	}, nil
}

// D returns Macro D (Wang et al. [20][21]): 22 nm SRAM 512×128 with a
// C-2C ladder charge-domain MAC computing full 8b×8b products per unit,
// internally reusing outputs across weight bits.
func D(cfg Config) (*core.Arch, error) {
	cfg.fill(Config{
		Rows: 512, Cols: 128, InputBits: 8, WeightBits: 8,
		ADCBits: 8, DACBits: 8, CellBits: 8, NodeNm: 22,
		ClockHz: 500e6, GroupCols: 1, BufferKB: 32,
	})
	if err := cfg.check("D"); err != nil {
		return nil, err
	}
	node, err := tech.ByNm(cfg.NodeNm)
	if err != nil {
		return nil, err
	}
	root := &spec.Container{
		Name: "macro-d",
		Children: []spec.Node{
			&spec.Component{Name: "buffer", Class: "sram-buffer",
				Attrs:      map[string]float64{"capacity_kb": cfg.BufferKB},
				Directives: directives{tensor.Input: spec.TemporalReuse, tensor.Weight: spec.TemporalReuse, tensor.Output: spec.TemporalReuse}},
			&spec.Component{Name: "input_regs", Class: "register",
				Attrs:      map[string]float64{"bits": float64(cfg.InputBits)},
				Directives: directives{tensor.Input: spec.TemporalReuse}},
			&spec.Component{Name: "dac", Class: "dac",
				Directives: directives{tensor.Input: spec.NoCoalesce}},
			&spec.Container{Name: "columns", MeshX: cfg.Cols,
				SpatialReuse: reuse(tensor.Input),
				Children: []spec.Node{
					&spec.Component{Name: "adc", Class: "adc",
						Attrs:      map[string]float64{"resolution": float64(cfg.ADCBits)},
						Directives: directives{tensor.Output: spec.NoCoalesce}},
					&spec.Container{Name: "rows", MeshY: cfg.Rows,
						SpatialReuse: reuse(tensor.Output),
						Children: []spec.Node{
							&spec.Component{Name: "mac", Class: "c2c-mac",
								Directives: directives{tensor.Weight: spec.TemporalReuse},
								IsCompute:  true},
						}},
				}},
		},
	}
	levels, err := spec.Flatten(root)
	if err != nil {
		return nil, err
	}
	// Levels: 0 buffer, 1 input_regs, 2 dac, 3 columns, 4 adc, 5 rows,
	// 6 mac.
	return &core.Arch{
		Name:   "macro-d",
		Levels: levels,
		Node:   node, Vdd: cfg.Vdd, ClockHz: cfg.ClockHz,
		InputBits: cfg.InputBits, WeightBits: cfg.WeightBits,
		DACBits: cfg.DACBits, CellBits: cfg.CellBits,
		InputEncoding: "unsigned", WeightEncoding: "offset",
		SpatialPrefs: prefs(levels,
			prefEntry("columns", "K"),
			prefEntry("rows", "C", "R", "S"),
		),
		InnerDims:        []string{"C", "R", "S"},
		WeightSliceLevel: -1,
		InputSliceLevel:  -1,
		TemporalLevel:    -1,
	}, nil
}

// Digital returns a Colonnade-style digital CiM macro [22]: bit-serial
// digital MACs, no DAC or ADC.
func Digital(cfg Config) (*core.Arch, error) {
	cfg.fill(Config{
		Rows: 128, Cols: 128, InputBits: 8, WeightBits: 8,
		ADCBits: 1, DACBits: 1, CellBits: 1, NodeNm: 65,
		ClockHz: 200e6, GroupCols: 1, BufferKB: 64,
	})
	if err := cfg.check("digital"); err != nil {
		return nil, err
	}
	node, err := tech.ByNm(cfg.NodeNm)
	if err != nil {
		return nil, err
	}
	root := &spec.Container{
		Name: "digital-cim",
		Children: []spec.Node{
			&spec.Component{Name: "buffer", Class: "sram-buffer",
				Attrs:      map[string]float64{"capacity_kb": cfg.BufferKB},
				Directives: directives{tensor.Input: spec.TemporalReuse, tensor.Weight: spec.TemporalReuse, tensor.Output: spec.TemporalReuse}},
			&spec.Component{Name: "input_regs", Class: "register",
				Attrs:      map[string]float64{"bits": float64(cfg.InputBits)},
				Directives: directives{tensor.Input: spec.TemporalReuse}},
			&spec.Component{Name: "drivers", Class: "row-driver",
				Attrs:      map[string]float64{"cells": float64(cfg.Cols)},
				Directives: directives{tensor.Input: spec.NoCoalesce}},
			&spec.Container{Name: "columns", MeshX: cfg.Cols,
				SpatialReuse: reuse(tensor.Input),
				Children: []spec.Node{
					&spec.Component{Name: "shift_add", Class: "shift-add",
						Attrs:      map[string]float64{"bits": 24},
						Directives: directives{tensor.Output: spec.TemporalReuse}},
					&spec.Container{Name: "rows", MeshY: cfg.Rows,
						SpatialReuse: reuse(tensor.Output),
						Children: []spec.Node{
							&spec.Component{Name: "mac", Class: "digital-mac",
								Directives: directives{tensor.Weight: spec.TemporalReuse},
								IsCompute:  true},
						}},
				}},
		},
	}
	levels, err := spec.Flatten(root)
	if err != nil {
		return nil, err
	}
	return &core.Arch{
		Name:   "digital-cim",
		Levels: levels,
		Node:   node, Vdd: cfg.Vdd, ClockHz: cfg.ClockHz,
		InputBits: cfg.InputBits, WeightBits: cfg.WeightBits,
		DACBits: cfg.DACBits, CellBits: cfg.CellBits,
		InputEncoding: "unsigned", WeightEncoding: "twos-complement",
		SpatialPrefs: prefs(levels,
			prefEntry("columns", "K"),
			prefEntry("rows", "C", "R", "S"),
		),
		InnerDims:        []string{"C", "R", "S"},
		WeightSliceLevel: -1,
		InputSliceLevel:  levelIndex(levels, "shift_add"),
		TemporalLevel:    -1,
	}, nil
}

// ByName constructs a macro by its canonical name with default config.
func ByName(name string) (*core.Arch, error) {
	switch name {
	case "base":
		return Base(Config{})
	case "a", "macro-a":
		return A(Config{})
	case "b", "macro-b":
		return B(Config{})
	case "c", "macro-c":
		return C(Config{})
	case "d", "macro-d":
		return D(Config{})
	case "digital", "digital-cim":
		return Digital(Config{})
	case "digital-accelerator", "tpu-like":
		return DigitalAccelerator(Config{})
	case "photonic":
		return Photonic(Config{})
	}
	return nil, fmt.Errorf("macros: unknown macro %q", name)
}

// TableIII returns the parameterized attributes of Macros A-D as the
// paper's Table III reports them.
func TableIII() []struct {
	Macro, Node, Device, InputBits, WeightBits, Array, ADCBits string
} {
	return []struct {
		Macro, Node, Device, InputBits, WeightBits, Array, ADCBits string
	}{
		{"A", "65nm", "SRAM", "1-8", "1-8", "768x768", "8"},
		{"B", "7nm", "SRAM", "4", "4", "64x64", "4"},
		{"C", "130nm", "ReRAM", "1-8", "Analog", "256x256", "1-10"},
		{"D", "22nm", "SRAM", "8", "8", "512x128*", "8"},
	}
}
