package sweepdef

import (
	"fmt"
	"math/rand"
	"strings"
)

// Generate builds a random-but-valid sweep definition from seed by
// emitting YAML text and feeding it through the real Parse path — so a
// generated definition exercises the same parser, coercion, and
// validation as a checked-in file, and the property suite's contract is
// "every generated definition parses, validates, compiles, and
// evaluates". Grids are kept deliberately cheap (toy-scale networks,
// tiny mapping budgets) so a few hundred of them evaluate end-to-end in
// CI under -race. The same seed always yields the same definition.
func Generate(seed int64) (*Definition, string, error) {
	rng := rand.New(rand.NewSource(seed))

	// Cheap macros only: the full-system evaluators over "toy" stay
	// fast even when the grid crosses a few of them.
	macroPool := []string{"base", "macro-a", "macro-b", "digital"}
	scenarioPool := ScenarioNames()

	pick := func(pool []string, n int) []string {
		idx := rng.Perm(len(pool))[:n]
		out := make([]string, n)
		for i, j := range idx {
			out[i] = pool[j]
		}
		return out
	}

	macros := pick(macroPool, 1+rng.Intn(2))
	scenarios := pick(scenarioPool, 1+rng.Intn(len(scenarioPool)))
	sysMacros := []string{"1"}
	if rng.Intn(2) == 0 {
		sysMacros = append(sysMacros, "2")
	}

	mappings := 2 + rng.Intn(5) // 2..6
	shards := 1 + rng.Intn(2)   // 1..2
	// Stay at or below one search worker: asking for fan-out extras
	// parks each request in the server's blocking budget wait when the
	// pool is contended, which only adds dead wall-clock to a suite
	// whose property is definition validity.
	workers := rng.Intn(3) - 1    // -1..1
	layers := rng.Intn(3)         // 0..2
	evalSeed := rng.Intn(1 << 16) // deterministic per definition

	var b strings.Builder
	fmt.Fprintf(&b, "name: gen-%08x\n", uint32(seed))
	fmt.Fprintf(&b, "description: generated property-test definition (seed %d)\n", seed)
	if rng.Intn(2) == 0 {
		b.WriteString("priority: interactive\n")
	} else {
		b.WriteString("priority: batch\n")
	}

	// Sometimes declare parameters and reference them from the axes and
	// budgets, so templating and coercion stay on the tested path. The
	// defaults keep the grid cheap; the property suite compiles with no
	// arguments, so defaults are what actually runs.
	useNetParam := rng.Intn(2) == 0
	useBudgetParam := rng.Intn(2) == 0
	if useNetParam || useBudgetParam {
		b.WriteString("params:\n")
		if useNetParam {
			b.WriteString("  - name: net\n")
			b.WriteString("    type: string\n")
			b.WriteString("    default: toy\n")
			b.WriteString("    choices: [toy]\n")
		}
		if useBudgetParam {
			b.WriteString("  - name: mappings\n")
			b.WriteString("    type: int\n")
			fmt.Fprintf(&b, "    default: %d\n", mappings)
			b.WriteString("    min: 1\n")
			b.WriteString("    max: 16\n")
		}
	}

	b.WriteString("axes:\n")
	fmt.Fprintf(&b, "  macros: [%s]\n", strings.Join(macros, ", "))
	if useNetParam {
		b.WriteString("  networks: [\"{net}\"]\n")
	} else {
		b.WriteString("  networks: [toy]\n")
	}
	fmt.Fprintf(&b, "  scenarios: [%s]\n", strings.Join(scenarios, ", "))
	fmt.Fprintf(&b, "  system_macros: [%s]\n", strings.Join(sysMacros, ", "))

	b.WriteString("budgets:\n")
	if useBudgetParam {
		b.WriteString("  max_mappings: \"{mappings}\"\n")
	} else {
		fmt.Fprintf(&b, "  max_mappings: %d\n", mappings)
	}
	fmt.Fprintf(&b, "  sample_shards: %d\n", shards)
	fmt.Fprintf(&b, "  search_workers: %d\n", workers)
	fmt.Fprintf(&b, "layers: %d\n", layers)
	fmt.Fprintf(&b, "seed: %d\n", evalSeed)

	text := b.String()
	def, err := Parse(fmt.Sprintf("gen-%08x.yaml", uint32(seed)), text)
	if err != nil {
		return nil, text, fmt.Errorf("sweepdef: Generate(%d) produced an invalid definition: %w", seed, err)
	}
	return def, text, nil
}
