package sweepdef

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validDoc = `name: fig15-scenarios
description: Macro-B full-system scenario grid
priority: batch
params:
  - name: network
    type: string
    description: workload to sweep
    default: resnet18
    choices: [resnet18, vit-base, gpt2]
  - name: mappings
    type: int
    default: 30
    min: 1
    max: 500
axes:
  macros: [macro-b]
  networks: ["{network}"]
  scenarios: [all-tensors-from-dram, weight-stationary]
  system_macros: [1, 4]
budgets:
  max_mappings: "{mappings}"
  sample_shards: 1
  search_workers: 0
layers: 1
seed: 7
`

func TestParseValidDefinition(t *testing.T) {
	d, err := Parse("fig15.yaml", validDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Name != "fig15-scenarios" || d.Priority != "batch" {
		t.Fatalf("identity = %q/%q", d.Name, d.Priority)
	}
	if len(d.Params) != 2 || d.Params[0].Name != "network" || d.Params[1].Type != "int" {
		t.Fatalf("params = %+v", d.Params)
	}
	if got := d.Params[1].Default; got != 30 {
		t.Fatalf("int default = %v (%T), want 30", got, got)
	}
	if d.Params[1].Min == nil || *d.Params[1].Min != 1 || *d.Params[1].Max != 500 {
		t.Fatalf("range = %v..%v", d.Params[1].Min, d.Params[1].Max)
	}
}

func TestCompileCrossProductAtDefaults(t *testing.T) {
	d, err := Parse("fig15.yaml", validDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	reqs, err := d.Compile(nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// 1 macro x 1 network x 2 scenarios x 2 system-macro counts.
	if len(reqs) != 4 {
		t.Fatalf("grid = %d requests, want 4", len(reqs))
	}
	first := reqs[0]
	if first.Macro != "macro-b" || first.Network != "resnet18" || first.MaxMappings != 30 {
		t.Fatalf("first request = %+v", first)
	}
	if first.Layers != 1 || first.Seed != 7 || first.SampleShards != 1 {
		t.Fatalf("budgets not threaded: %+v", first)
	}
}

func TestCompileBindsAndCoercesParams(t *testing.T) {
	d, err := Parse("fig15.yaml", validDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// String "60" coerces to int 60 (the CLI binds -p name=value strings).
	reqs, err := d.Compile(map[string]any{"network": "gpt2", "mappings": "60"})
	if err != nil {
		t.Fatalf("Compile(bound): %v", err)
	}
	if reqs[0].Network != "gpt2" || reqs[0].MaxMappings != 60 {
		t.Fatalf("binding not applied: %+v", reqs[0])
	}
}

func TestCompileRejectsBadBindings(t *testing.T) {
	d, err := Parse("fig15.yaml", validDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for name, args := range map[string]map[string]any{
		"unknown parameter":  {"nope": 1},
		"choice violation":   {"network": "alexnet"},
		"below min":          {"mappings": 0},
		"above max":          {"mappings": 501},
		"type mismatch":      {"mappings": "lots"},
		"non-integral float": {"mappings": 2.5},
	} {
		if _, err := d.Compile(args); err == nil {
			t.Errorf("%s: Compile(%v) succeeded, want error", name, args)
		}
	}
}

func TestParseErrorsCarryFileAndLine(t *testing.T) {
	cases := map[string]string{
		"missing name": `axes:
  macros: [base]
  networks: [toy]
`,
		"unknown top key": `name: x
bogus: 1
axes:
  macros: [base]
  networks: [toy]
`,
		"param without default": `name: x
params:
  - name: p
    type: int
axes:
  macros: [base]
  networks: [toy]
`,
		"unknown axis": `name: x
axes:
  macros: [base]
  networks: [toy]
  planets: [mars]
`,
		"unknown macro": `name: x
axes:
  macros: [warp-core]
  networks: [toy]
`,
		"unknown scenario": `name: x
axes:
  macros: [base]
  networks: [toy]
  scenarios: [zero-copy]
`,
		"duplicate param": `name: x
params:
  - name: p
    type: int
    default: 1
  - name: p
    type: int
    default: 2
axes:
  macros: [base]
  networks: [toy]
`,
		"undeclared placeholder": `name: x
axes:
  macros: [base]
  networks: ["{net}"]
`,
	}
	for name, doc := range cases {
		_, err := Parse("bad.yaml", doc)
		if err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, "bad.yaml") || !strings.Contains(msg, "line ") {
			t.Errorf("%s: error %q lacks file/line attribution", name, msg)
		}
	}
}

func TestCompileRejectsOversizedGrid(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("name: huge\naxes:\n  macros: [base]\n  networks: [toy]\n  system_macros: [")
	for i := 0; i < MaxGridRequests+1; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("1")
	}
	sb.WriteString("]\n")
	if _, err := Parse("huge.yaml", sb.String()); err == nil || !strings.Contains(err.Error(), "exceeds the cap") {
		t.Fatalf("oversized grid error = %v", err)
	}
}

func TestLoadDirRejectsBrokenFile(t *testing.T) {
	dir := t.TempDir()
	ok := filepath.Join(dir, "ok.yaml")
	if err := os.WriteFile(ok, []byte(validDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(valid): %v", err)
	}
	if set.Len() != 1 || set.Names()[0] != "fig15-scenarios" {
		t.Fatalf("set = %v", set.Names())
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.yml"), []byte("name: [\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("LoadDir with a broken file succeeded, want error")
	}
}

func TestNewSetRejectsDuplicateNames(t *testing.T) {
	a, err := Parse("a.yaml", validDoc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("b.yaml", validDoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSet([]*Definition{a, b}); err == nil {
		t.Fatal("NewSet with duplicate names succeeded, want error")
	}
}

func TestGenerateIsDeterministicAndValid(t *testing.T) {
	d1, text1, err := Generate(42)
	if err != nil {
		t.Fatalf("Generate(42): %v", err)
	}
	_, text2, err := Generate(42)
	if err != nil {
		t.Fatalf("Generate(42) again: %v", err)
	}
	if text1 != text2 {
		t.Fatalf("Generate(42) not deterministic:\n%s\n---\n%s", text1, text2)
	}
	if d1.Name == "" {
		t.Fatal("generated definition has no name")
	}
	for seed := int64(0); seed < 100; seed++ {
		d, _, err := Generate(seed)
		if err != nil {
			t.Fatalf("Generate(%d): %v", seed, err)
		}
		reqs, err := d.Compile(nil)
		if err != nil {
			t.Fatalf("Generate(%d).Compile: %v", seed, err)
		}
		if len(reqs) == 0 || len(reqs) > MaxGridRequests {
			t.Fatalf("Generate(%d) grid size %d out of bounds", seed, len(reqs))
		}
	}
}

// FuzzParse asserts the parser's contract on arbitrary documents: it
// never panics, and every rejection carries the source file (and, for
// structural errors, a line number) so tooling can point at the problem.
func FuzzParse(f *testing.F) {
	f.Add(validDoc)
	f.Add("name: x\naxes:\n  macros: [base]\n  networks: [toy]\n")
	f.Add("")
	f.Add("name: [\n")
	f.Add("name: x\nparams:\n  - name: p\n    type: int\n    default: {q}\n")
	f.Add("name: \"\x00\"\naxes: {}\n")
	f.Add("axes:\n  system_macros: [\"{p}\"]\n")
	f.Fuzz(func(t *testing.T, doc string) {
		d, err := Parse("fuzz.yaml", doc)
		if err != nil {
			if !strings.Contains(err.Error(), "fuzz.yaml") {
				t.Fatalf("error %q does not name the source file", err)
			}
			return
		}
		// Accepted definitions must round-trip through the rest of the
		// surface without panicking.
		_ = d.Info()
		if _, err := d.Compile(nil); err != nil {
			t.Fatalf("Parse accepted a definition Compile rejects: %v", err)
		}
	})
}
