package sweepdef_test

import (
	"testing"

	"repro/internal/serve"
	"repro/internal/sweepdef"
)

// TestSweepdefGeneratedDefinitionsEvaluate is the generator's end-to-end
// property: every seeded definition parses, validates, compiles, and —
// the part no amount of static checking covers — evaluates through the
// real batch executor without an error result. Run with -race in CI;
// the generator keeps grids toy-scale so 100 seeds stay cheap.
func TestSweepdefGeneratedDefinitionsEvaluate(t *testing.T) {
	seeds := int64(100)
	if testing.Short() {
		seeds = 10
	}
	// Serial layer search: 100 concurrent toy grids would otherwise
	// spend most of their wall clock parked in the shared fan-out
	// budget's blocking wait, and the property under test is definition
	// validity, not search parallelism.
	srv := serve.NewServer(serve.BatchOptions{SearchWorkers: -1})
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			def, text, err := sweepdef.Generate(seed)
			if err != nil {
				t.Fatalf("Generate(%d): %v", seed, err)
			}
			reqs, err := def.Compile(nil)
			if err != nil {
				t.Fatalf("Generate(%d).Compile:\n%s\n%v", seed, text, err)
			}
			results, err := srv.Sweep(reqs)
			if err != nil {
				t.Fatalf("seed %d: Sweep: %v\n%s", seed, err, text)
			}
			for i, res := range results {
				if res == nil {
					t.Fatalf("seed %d: request %d returned nil result\n%s", seed, i, text)
				}
				if res.Err != "" {
					t.Fatalf("seed %d: request %d (%s/%s) evaluated with error %q\n%s",
						seed, i, reqs[i].Macro, reqs[i].Network, res.Err, text)
				}
			}
		})
	}
}
