// Package sweepdef turns YAML files under a sweeps/ directory into
// first-class, parameterized experiments: each file declares a macro x
// network x scenario grid, search budgets, a scheduling class, and typed
// parameters with defaults and ranges, and compiles — after binding
// parameter values into "{param}" placeholders — into the typed request
// grids of the batch-evaluation service (api.EvalRequest). The serving
// layer registers a directory of definitions behind GET /v1/experiments
// and POST /v1/experiments/{name}; the CLI runs the same files offline.
// Scenario coverage is data, not code: adding an experiment is writing a
// file, and the whole surface is fuzzable (see FuzzParse) and property-
// testable (see Generate).
//
// A definition looks like:
//
//	name: fig15-scenarios
//	description: Macro-B full-system scenario grid (paper Fig. 15)
//	priority: batch
//	params:
//	  - name: network
//	    type: string
//	    default: resnet18
//	    choices: [resnet18, vit-base, gpt2]
//	  - name: mappings
//	    type: int
//	    default: 30
//	    min: 1
//	    max: 500
//	axes:
//	  macros: [macro-b]
//	  networks: ["{network}"]
//	  scenarios: [all-tensors-from-dram, weight-stationary]
//	  system_macros: [1, 4]
//	budgets:
//	  max_mappings: "{mappings}"
//	  sample_shards: 1
//	  search_workers: 0
//	layers: 0
//	seed: 0
//
// Axis entries and budget values may be "{param}" templates; every
// declared parameter carries a default, so a definition always compiles
// with no arguments — which is exactly what Validate checks, so a broken
// checked-in file fails `cimloop sweeps validate` (and CI) instead of
// failing at serve time.
package sweepdef

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/macros"
	"repro/internal/serve/api"
	"repro/internal/system"
	"repro/internal/workload"
	"repro/internal/yamlite"
)

// Param is one declared, typed parameter of a definition. Every
// parameter has a default, so binding an empty argument map always
// succeeds and Validate can dry-run the compile.
type Param struct {
	// Name is the placeholder identity: "{name}" in axis entries and
	// budget values substitutes this parameter's bound value.
	Name string
	// Type is one of "string", "int", "float", or "bool".
	Type string
	// Description is free-form documentation, surfaced in the parameter
	// schema of GET /v1/experiments.
	Description string
	// Default is the value used when the caller binds nothing. Its Go
	// type matches Type (string, int, float64, bool).
	Default any
	// Min and Max bound int/float parameters inclusively (nil = open).
	Min, Max *float64
	// Choices restricts a string parameter to an explicit set.
	Choices []string
}

// Definition is one parsed sweep definition. Axis entries and the
// budget/layer/seed fields may hold "{param}" templates; Compile resolves
// them against bound parameter values.
type Definition struct {
	Name        string
	Description string
	// Priority is the default async scheduling class ("", "interactive",
	// or "batch"); requests may override it.
	Priority string
	Params   []Param

	// Axes: the grid is the cross product macros x networks x scenarios x
	// system_macros. Scenarios and SystemMacros may be empty (bare macro,
	// single instance).
	Macros       []string
	Networks     []string
	Scenarios    []string
	SystemMacros []any // int or "{param}" string

	// Budgets and workload shaping. Each is an int literal or a "{param}"
	// string.
	MaxMappings   any
	SampleShards  any
	SearchWorkers any
	Layers        any
	Seed          any

	// File is the path the definition was loaded from ("" when parsed
	// from text without one).
	File string

	text string // raw document, for line attribution in bind errors
}

// MaxGridRequests caps one compiled grid. A definition (or a parameter
// binding) whose cross product exceeds it is rejected instead of fanning
// an unbounded sweep into the executor.
const MaxGridRequests = 4096

// paramNameRe pins parameter names to placeholder-safe identifiers.
var paramNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// errf formats a definition error carrying the source file and a line
// number, so tooling (and the fuzz harness) can always point somewhere:
// "sweepdef: sweeps/fig15.yaml: line 12: ...".
func errf(file string, line int, format string, args ...any) error {
	return fmt.Errorf("sweepdef: %s: line %d: %s", file, line, fmt.Sprintf(format, args...))
}

// lineOf locates the first line whose content starts with "key:" (plain
// or as a "- key:" list entry), for attributing semantic errors to a
// source line. Falls back to 1 when the key is not found textually.
func lineOf(text, key string) int {
	for i, ln := range strings.Split(text, "\n") {
		t := strings.TrimSpace(ln)
		t = strings.TrimPrefix(t, "- ")
		if strings.HasPrefix(t, key+":") {
			return i + 1
		}
	}
	return 1
}

// Parse decodes one definition document. file is used only for error
// attribution; every returned error names it and a line.
func Parse(file, text string) (*Definition, error) {
	doc, err := yamlite.Parse(text)
	if err != nil {
		// yamlite errors already carry "line N"; keep it verbatim.
		return nil, fmt.Errorf("sweepdef: %s: %w", file, err)
	}
	root, ok := doc.(map[string]any)
	if !ok {
		return nil, errf(file, 1, "top level must be a mapping")
	}
	d := &Definition{File: file, text: text}
	for key, v := range root {
		switch key {
		case "name":
			s, ok := v.(string)
			if !ok || s == "" {
				return nil, errf(file, lineOf(text, key), "'name' must be a non-empty string")
			}
			d.Name = s
		case "description":
			s, ok := v.(string)
			if !ok {
				return nil, errf(file, lineOf(text, key), "'description' must be a string")
			}
			d.Description = s
		case "priority":
			s, ok := v.(string)
			if !ok || (s != "" && s != "interactive" && s != "batch") {
				return nil, errf(file, lineOf(text, key), "'priority' must be \"interactive\" or \"batch\"")
			}
			d.Priority = s
		case "params":
			if err := d.parseParams(v); err != nil {
				return nil, err
			}
		case "axes":
			if err := d.parseAxes(v); err != nil {
				return nil, err
			}
		case "budgets":
			if err := d.parseBudgets(v); err != nil {
				return nil, err
			}
		case "layers":
			d.Layers = v
		case "seed":
			d.Seed = v
		default:
			return nil, errf(file, lineOf(text, key), "unknown key %q", key)
		}
	}
	if d.Name == "" {
		return nil, errf(file, 1, "missing 'name'")
	}
	if len(d.Macros) == 0 {
		return nil, errf(file, lineOf(text, "axes"), "'axes.macros' must list at least one macro")
	}
	if len(d.Networks) == 0 {
		return nil, errf(file, lineOf(text, "axes"), "'axes.networks' must list at least one network")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Definition) parseParams(v any) error {
	list, ok := v.([]any)
	if !ok {
		return errf(d.File, lineOf(d.text, "params"), "'params' must be a list")
	}
	seen := map[string]bool{}
	for n, raw := range list {
		entry, ok := raw.(map[string]any)
		if !ok {
			return errf(d.File, lineOf(d.text, "params"), "param %d is not a mapping", n+1)
		}
		var p Param
		for key, pv := range entry {
			switch key {
			case "name":
				p.Name, _ = pv.(string)
			case "type":
				p.Type, _ = pv.(string)
			case "description":
				p.Description, _ = pv.(string)
			case "default":
				p.Default = pv
			case "min", "max":
				f, ok := pv.(float64)
				if !ok {
					return errf(d.File, lineOf(d.text, key), "param %d: '%s' must be a number", n+1, key)
				}
				if key == "min" {
					p.Min = &f
				} else {
					p.Max = &f
				}
			case "choices":
				cl, ok := pv.([]any)
				if !ok {
					return errf(d.File, lineOf(d.text, "choices"), "param %d: 'choices' must be a list", n+1)
				}
				for _, c := range cl {
					cs, ok := c.(string)
					if !ok {
						return errf(d.File, lineOf(d.text, "choices"), "param %d: choices must be strings", n+1)
					}
					p.Choices = append(p.Choices, cs)
				}
			default:
				return errf(d.File, lineOf(d.text, key), "param %d: unknown key %q", n+1, key)
			}
		}
		line := lineOf(d.text, "name")
		if p.Name != "" {
			line = lineOf(d.text, "name: "+p.Name)
		}
		if !paramNameRe.MatchString(p.Name) {
			return errf(d.File, lineOf(d.text, "params"), "param %d: 'name' must match %s", n+1, paramNameRe)
		}
		if seen[p.Name] {
			return errf(d.File, line, "duplicate param %q", p.Name)
		}
		seen[p.Name] = true
		switch p.Type {
		case "string", "int", "float", "bool":
		default:
			return errf(d.File, line, "param %q: type must be string, int, float, or bool (got %q)", p.Name, p.Type)
		}
		if p.Default == nil {
			return errf(d.File, line, "param %q: a 'default' is required (definitions must compile unparameterized)", p.Name)
		}
		def, err := coerce(p.Type, p.Default)
		if err != nil {
			return errf(d.File, line, "param %q: default %v", p.Name, err)
		}
		p.Default = def
		if (p.Min != nil || p.Max != nil) && p.Type != "int" && p.Type != "float" {
			return errf(d.File, line, "param %q: min/max apply only to int and float params", p.Name)
		}
		if len(p.Choices) > 0 && p.Type != "string" {
			return errf(d.File, line, "param %q: choices apply only to string params", p.Name)
		}
		if p.Min != nil && p.Max != nil && *p.Min > *p.Max {
			return errf(d.File, line, "param %q: min %v exceeds max %v", p.Name, *p.Min, *p.Max)
		}
		if err := checkRange(p, p.Default); err != nil {
			return errf(d.File, line, "param %q: default %v", p.Name, err)
		}
		d.Params = append(d.Params, p)
	}
	return nil
}

func (d *Definition) parseAxes(v any) error {
	m, ok := v.(map[string]any)
	if !ok {
		return errf(d.File, lineOf(d.text, "axes"), "'axes' must be a mapping")
	}
	strAxis := func(key string, raw any) ([]string, error) {
		list, ok := raw.([]any)
		if !ok {
			return nil, errf(d.File, lineOf(d.text, key), "'axes.%s' must be a list of strings", key)
		}
		out := make([]string, 0, len(list))
		for _, e := range list {
			s, ok := e.(string)
			if !ok || s == "" {
				return nil, errf(d.File, lineOf(d.text, key), "'axes.%s' entries must be non-empty strings", key)
			}
			out = append(out, s)
		}
		return out, nil
	}
	for key, raw := range m {
		var err error
		switch key {
		case "macros":
			d.Macros, err = strAxis(key, raw)
		case "networks":
			d.Networks, err = strAxis(key, raw)
		case "scenarios":
			d.Scenarios, err = strAxis(key, raw)
		case "system_macros":
			list, ok := raw.([]any)
			if !ok {
				return errf(d.File, lineOf(d.text, key), "'axes.system_macros' must be a list")
			}
			d.SystemMacros = list
		default:
			return errf(d.File, lineOf(d.text, "axes"), "unknown axis %q", key)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *Definition) parseBudgets(v any) error {
	m, ok := v.(map[string]any)
	if !ok {
		return errf(d.File, lineOf(d.text, "budgets"), "'budgets' must be a mapping")
	}
	for key, raw := range m {
		switch key {
		case "max_mappings":
			d.MaxMappings = raw
		case "sample_shards":
			d.SampleShards = raw
		case "search_workers":
			d.SearchWorkers = raw
		default:
			return errf(d.File, lineOf(d.text, "budgets"), "unknown budget %q", key)
		}
	}
	return nil
}

// coerce converts a bound (or default) value to a parameter's declared
// type. YAML and JSON both deliver numbers as float64 and may deliver
// numerics as strings (CLI -p flags always do), so the conversion is
// forgiving about representation and strict about value.
func coerce(typ string, v any) (any, error) {
	switch typ {
	case "string":
		if s, ok := v.(string); ok {
			return s, nil
		}
		return nil, fmt.Errorf("must be a string, got %T", v)
	case "bool":
		switch t := v.(type) {
		case bool:
			return t, nil
		case string:
			b, err := strconv.ParseBool(t)
			if err != nil {
				return nil, fmt.Errorf("must be a bool, got %q", t)
			}
			return b, nil
		}
		return nil, fmt.Errorf("must be a bool, got %T", v)
	case "int":
		switch t := v.(type) {
		case float64:
			if t != math.Trunc(t) || math.IsInf(t, 0) || math.IsNaN(t) {
				return nil, fmt.Errorf("must be an integer, got %v", t)
			}
			return int(t), nil
		case int:
			return t, nil
		case string:
			n, err := strconv.Atoi(strings.TrimSpace(t))
			if err != nil {
				return nil, fmt.Errorf("must be an integer, got %q", t)
			}
			return n, nil
		}
		return nil, fmt.Errorf("must be an integer, got %T", v)
	case "float":
		switch t := v.(type) {
		case float64:
			return t, nil
		case int:
			return float64(t), nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
			if err != nil {
				return nil, fmt.Errorf("must be a number, got %q", t)
			}
			return f, nil
		}
		return nil, fmt.Errorf("must be a number, got %T", v)
	}
	return nil, fmt.Errorf("unknown type %q", typ)
}

// checkRange enforces a parameter's min/max/choices on a coerced value.
func checkRange(p Param, v any) error {
	var f float64
	switch t := v.(type) {
	case int:
		f = float64(t)
	case float64:
		f = t
	case string:
		if len(p.Choices) > 0 {
			for _, c := range p.Choices {
				if c == t {
					return nil
				}
			}
			return fmt.Errorf("%q is not one of %v", t, p.Choices)
		}
		return nil
	default:
		return nil
	}
	if p.Min != nil && f < *p.Min {
		return fmt.Errorf("%v is below min %v", v, *p.Min)
	}
	if p.Max != nil && f > *p.Max {
		return fmt.Errorf("%v is above max %v", v, *p.Max)
	}
	return nil
}

// Bind validates caller-supplied arguments against the declared
// parameters and returns the full bound map (defaults filled in).
// Unknown argument names are rejected — a typo must not silently sweep
// the default grid.
func (d *Definition) Bind(args map[string]any) (map[string]any, error) {
	byName := make(map[string]*Param, len(d.Params))
	for i := range d.Params {
		byName[d.Params[i].Name] = &d.Params[i]
	}
	for name := range args {
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("sweepdef: %s: unknown parameter %q (declared: %s)", d.Name, name, d.paramNames())
		}
	}
	bound := make(map[string]any, len(d.Params))
	for _, p := range d.Params {
		v, supplied := args[p.Name]
		if !supplied {
			bound[p.Name] = p.Default
			continue
		}
		cv, err := coerce(p.Type, v)
		if err != nil {
			return nil, fmt.Errorf("sweepdef: %s: parameter %q: %v", d.Name, p.Name, err)
		}
		if err := checkRange(p, cv); err != nil {
			return nil, fmt.Errorf("sweepdef: %s: parameter %q: %v", d.Name, p.Name, err)
		}
		bound[p.Name] = cv
	}
	return bound, nil
}

func (d *Definition) paramNames() string {
	if len(d.Params) == 0 {
		return "none"
	}
	names := make([]string, len(d.Params))
	for i, p := range d.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// placeholderRe matches "{param}" templates inside axis entries.
var placeholderRe = regexp.MustCompile(`\{([a-z][a-z0-9_]*)\}`)

// substitute resolves every "{param}" placeholder in s against the bound
// map, formatting non-string values with %v.
func substitute(s string, bound map[string]any) (string, error) {
	var badName string
	out := placeholderRe.ReplaceAllStringFunc(s, func(m string) string {
		name := m[1 : len(m)-1]
		v, ok := bound[name]
		if !ok {
			if badName == "" {
				badName = name
			}
			return m
		}
		return fmt.Sprintf("%v", v)
	})
	if badName != "" {
		return "", fmt.Errorf("undeclared parameter %q", badName)
	}
	return out, nil
}

// resolveInt resolves an int-valued field that may be an int literal, a
// YAML number, or a "{param}" template. nil resolves to 0 (the field's
// "keep the server default" value).
func resolveInt(field string, v any, bound map[string]any) (int, error) {
	switch t := v.(type) {
	case nil:
		return 0, nil
	case float64:
		if t != math.Trunc(t) {
			return 0, fmt.Errorf("'%s' must be an integer, got %v", field, t)
		}
		return int(t), nil
	case int:
		return t, nil
	case string:
		s, err := substitute(t, bound)
		if err != nil {
			return 0, fmt.Errorf("'%s': %v", field, err)
		}
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return 0, fmt.Errorf("'%s' must resolve to an integer, got %q", field, s)
		}
		return n, nil
	}
	return 0, fmt.Errorf("'%s' must be an integer or \"{param}\" template, got %T", field, v)
}

// Compile binds args (see Bind) and expands the definition into its
// request grid: the cross product of the resolved axes, with budgets and
// workload shaping applied to every request. The scenario and
// system_macros axes default to one empty/unset entry.
func (d *Definition) Compile(args map[string]any) ([]api.EvalRequest, error) {
	bound, err := d.Bind(args)
	if err != nil {
		return nil, err
	}
	resolveAxis := func(name string, in []string) ([]string, error) {
		out := make([]string, len(in))
		for i, s := range in {
			r, err := substitute(s, bound)
			if err != nil {
				return nil, fmt.Errorf("sweepdef: %s: axis %s: %v", d.Name, name, err)
			}
			if r == "" {
				return nil, fmt.Errorf("sweepdef: %s: axis %s: entry %d resolves to an empty string", d.Name, name, i+1)
			}
			out[i] = r
		}
		return out, nil
	}
	macroAxis, err := resolveAxis("macros", d.Macros)
	if err != nil {
		return nil, err
	}
	netAxis, err := resolveAxis("networks", d.Networks)
	if err != nil {
		return nil, err
	}
	scenarioAxis, err := resolveAxis("scenarios", d.Scenarios)
	if err != nil {
		return nil, err
	}
	for _, sc := range scenarioAxis {
		if !KnownScenario(sc) {
			return nil, fmt.Errorf("sweepdef: %s: unknown scenario %q (have %s)", d.Name, sc, strings.Join(ScenarioNames(), ", "))
		}
	}
	sysAxis := make([]int, 0, len(d.SystemMacros))
	for i, raw := range d.SystemMacros {
		n, err := resolveInt(fmt.Sprintf("axes.system_macros[%d]", i+1), raw, bound)
		if err != nil {
			return nil, fmt.Errorf("sweepdef: %s: %v", d.Name, err)
		}
		if n < 1 {
			return nil, fmt.Errorf("sweepdef: %s: axes.system_macros entries must be >= 1, got %d", d.Name, n)
		}
		sysAxis = append(sysAxis, n)
	}
	if len(scenarioAxis) == 0 {
		scenarioAxis = []string{""}
	}
	if len(sysAxis) == 0 {
		sysAxis = []int{0}
	}
	ints := map[string]int{}
	for _, f := range []struct {
		name string
		raw  any
		min  int
	}{
		{"budgets.max_mappings", d.MaxMappings, 0},
		{"budgets.sample_shards", d.SampleShards, 0},
		{"budgets.search_workers", d.SearchWorkers, -1 << 30},
		{"layers", d.Layers, 0},
		{"seed", d.Seed, -1 << 30},
	} {
		n, err := resolveInt(f.name, f.raw, bound)
		if err != nil {
			return nil, fmt.Errorf("sweepdef: %s: %v", d.Name, err)
		}
		if n < f.min {
			return nil, fmt.Errorf("sweepdef: %s: '%s' must be >= %d, got %d", d.Name, f.name, f.min, n)
		}
		ints[f.name] = n
	}
	total := len(macroAxis) * len(netAxis) * len(scenarioAxis) * len(sysAxis)
	if total > MaxGridRequests {
		return nil, fmt.Errorf("sweepdef: %s: grid of %d requests exceeds the cap of %d", d.Name, total, MaxGridRequests)
	}
	reqs := make([]api.EvalRequest, 0, total)
	for _, m := range macroAxis {
		if _, err := macros.ByName(m); err != nil {
			return nil, fmt.Errorf("sweepdef: %s: %v", d.Name, err)
		}
		for _, n := range netAxis {
			if _, err := workload.ByName(n); err != nil {
				return nil, fmt.Errorf("sweepdef: %s: %v", d.Name, err)
			}
			for _, sc := range scenarioAxis {
				for _, sm := range sysAxis {
					reqs = append(reqs, api.EvalRequest{
						Macro:         m,
						Network:       n,
						Scenario:      sc,
						SystemMacros:  sm,
						Layers:        ints["layers"],
						MaxMappings:   ints["budgets.max_mappings"],
						SampleShards:  ints["budgets.sample_shards"],
						SearchWorkers: ints["budgets.search_workers"],
						Seed:          int64(ints["seed"]),
					})
				}
			}
		}
	}
	return reqs, nil
}

// Validate checks the definition end to end by compiling it with every
// parameter at its default: axis names must resolve to known macros,
// networks, and scenarios, budgets to integers in range, and the grid
// must be non-empty and bounded. Parse calls it, so a loaded definition
// is always runnable unparameterized.
func (d *Definition) Validate() error {
	if _, err := d.Compile(nil); err != nil {
		// Attribute the failure to a source line where one is findable.
		return errf(d.File, lineOf(d.text, "axes"), "%v", err)
	}
	return nil
}

// Info renders the definition's listing entry: identity, parameter
// schema, and the grid size at defaults.
func (d *Definition) Info() api.ExperimentInfo {
	info := api.ExperimentInfo{
		Name:        d.Name,
		Description: d.Description,
		Source:      "sweep",
		File:        filepath.Base(d.File),
		Priority:    d.Priority,
	}
	if reqs, err := d.Compile(nil); err == nil {
		info.Requests = len(reqs)
	}
	for _, p := range d.Params {
		info.Params = append(info.Params, api.ExperimentParam{
			Name:        p.Name,
			Type:        p.Type,
			Description: p.Description,
			Default:     p.Default,
			Min:         p.Min,
			Max:         p.Max,
			Choices:     p.Choices,
		})
	}
	return info
}

// ScenarioNames lists the full-system scenario names a definition may
// reference, as system.Scenario.String prints them.
func ScenarioNames() []string {
	return []string{
		system.AllDRAM.String(),
		system.WeightStationary.String(),
		system.OnChipIO.String(),
	}
}

// KnownScenario reports whether name is a valid scenario axis entry.
func KnownScenario(name string) bool {
	for _, s := range ScenarioNames() {
		if s == name {
			return true
		}
	}
	return false
}

// Set is a loaded directory of definitions, name-addressable.
type Set struct {
	defs   []*Definition
	byName map[string]*Definition
}

// NewSet builds a set from parsed definitions, rejecting duplicates.
func NewSet(defs []*Definition) (*Set, error) {
	s := &Set{byName: make(map[string]*Definition, len(defs))}
	for _, d := range defs {
		if prev, ok := s.byName[d.Name]; ok {
			return nil, fmt.Errorf("sweepdef: duplicate definition %q (%s and %s)", d.Name, prev.File, d.File)
		}
		s.byName[d.Name] = d
		s.defs = append(s.defs, d)
	}
	sort.Slice(s.defs, func(i, j int) bool { return s.defs[i].Name < s.defs[j].Name })
	return s, nil
}

// Load reads and parses one definition file.
func Load(path string) (*Definition, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweepdef: %w", err)
	}
	return Parse(path, string(data))
}

// LoadDir loads every *.yaml / *.yml file in dir into a Set. The
// directory must exist and hold at least one definition; any broken file
// fails the whole load (validate-first: a serving registry is swapped
// atomically or not at all).
func LoadDir(dir string) (*Set, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sweepdef: %w", err)
	}
	var defs []*Definition
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext != ".yaml" && ext != ".yml" {
			continue
		}
		d, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		defs = append(defs, d)
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("sweepdef: no *.yaml definitions in %s", dir)
	}
	return NewSet(defs)
}

// Len reports the number of definitions in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.defs)
}

// Get resolves a definition by name.
func (s *Set) Get(name string) (*Definition, bool) {
	if s == nil {
		return nil, false
	}
	d, ok := s.byName[name]
	return d, ok
}

// All lists the definitions sorted by name.
func (s *Set) All() []*Definition {
	if s == nil {
		return nil
	}
	return s.defs
}

// Names lists the definition names in sorted order.
func (s *Set) Names() []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.defs))
	for i, d := range s.defs {
		out[i] = d.Name
	}
	return out
}

// Infos renders every definition's listing entry, sorted by name.
func (s *Set) Infos() []api.ExperimentInfo {
	if s == nil {
		return nil
	}
	out := make([]api.ExperimentInfo, len(s.defs))
	for i, d := range s.defs {
		out[i] = d.Info()
	}
	return out
}
