package sweepdef_test

import (
	"math"
	"testing"

	"repro/internal/serve"
	"repro/internal/sweepdef"
)

// loadCheckedIn loads the repository's sweeps/ directory; the test file
// lives two levels below the repo root.
func loadCheckedIn(t *testing.T) *sweepdef.Set {
	t.Helper()
	set, err := sweepdef.LoadDir("../../sweeps")
	if err != nil {
		t.Fatalf("LoadDir(sweeps/): %v", err)
	}
	return set
}

func TestCheckedInDefinitionsValidate(t *testing.T) {
	set := loadCheckedIn(t)
	want := []string{
		"beyond-cmos", "fig15-scenarios", "mapping-budget-scaling",
		"photonic-transformer", "quick-smoke", "table-iii-macros",
	}
	names := set.Names()
	if len(names) < len(want) {
		t.Fatalf("sweeps/ holds %d definitions %v, want at least %v", len(names), names, want)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("sweeps/ is missing definition %q", n)
		}
	}
	for _, def := range set.All() {
		if _, err := def.Compile(nil); err != nil {
			t.Errorf("%s: compile at defaults: %v", def.Name, err)
		}
	}
}

// pin asserts a metric against a recorded value within a 1% band: the
// mapping search is deterministic at fixed (seed, shards), so drift
// means the energy/timing models or the definitions changed.
func pin(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 0.01*math.Abs(want) {
		t.Errorf("%s = %.6g, want %.6g (±1%%)", what, got, want)
	}
}

// TestPhotonicTransformerPinned runs the checked-in photonic-transformer
// definition — the beyond-CMOS MZI-mesh macro (internal/macros/beyond.go,
// internal/circuits/photonic.go) on the transformer attention block —
// and pins the resulting efficiency numbers.
func TestPhotonicTransformerPinned(t *testing.T) {
	set := loadCheckedIn(t)
	def, ok := set.Get("photonic-transformer")
	if !ok {
		t.Fatal("no photonic-transformer definition")
	}
	reqs, err := def.Compile(map[string]any{"mappings": 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.BatchOptions{})
	results, err := srv.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (dram, weight-stationary)", len(results))
	}
	byTag := map[string]float64{}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Tag, r.Err)
		}
		byTag[r.Tag] = r.EnergyPerMACpJ
	}
	// Keeping weights resident cuts the photonic system's energy/MAC by
	// ~7x on this attention block: modulation and DRAM traffic dominate
	// the all-tensors-from-dram scenario.
	pin(t, "photonic dram energy/MAC (pJ)",
		byTag["system(photonic,all-tensors-from-dram)/transformer"], 14.42)
	pin(t, "photonic weight-stationary energy/MAC (pJ)",
		byTag["system(photonic,weight-stationary)/transformer"], 1.969)
}

// TestBeyondCMOSPinned runs the checked-in beyond-cmos definition on the
// toy workload and pins the three architecture classes' efficiency —
// and their ordering: photonic beats the TPU-like digital array on this
// workload, and both beat the digital CiM macro.
func TestBeyondCMOSPinned(t *testing.T) {
	set := loadCheckedIn(t)
	def, ok := set.Get("beyond-cmos")
	if !ok {
		t.Fatal("no beyond-cmos definition")
	}
	reqs, err := def.Compile(map[string]any{"network": "toy", "mappings": 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.BatchOptions{})
	results, err := srv.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	eff := map[string]float64{}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Tag, r.Err)
		}
		eff[r.Arch] = r.TOPSPerW
	}
	pin(t, "photonic TOPS/W", eff["photonic"], 1.510)
	pin(t, "digital-accelerator TOPS/W", eff["digital-accelerator"], 1.335)
	pin(t, "digital-cim TOPS/W", eff["digital-cim"], 0.2008)
	if !(eff["photonic"] > eff["digital-accelerator"] && eff["digital-accelerator"] > eff["digital-cim"]) {
		t.Errorf("efficiency ordering photonic > tpu-like > digital-cim violated: %v", eff)
	}
}
