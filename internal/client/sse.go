package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/serve/api"
)

// ErrStreamEnded is returned by StreamJobEvents when the server closes
// the stream before delivering a terminal event — typically a dropped
// connection. Callers resume with the last event ID they saw.
var ErrStreamEnded = fmt.Errorf("client: event stream ended before the terminal event")

// StreamJobEvents connects to GET /v1/jobs/{id}/events and invokes fn
// for every Server-Sent Event until the terminal event (returns nil), fn
// returns an error (returned as-is), ctx ends (ctx.Err()), or the
// connection drops (ErrStreamEnded). lastEventID resumes a previous
// stream: pass 0 for a fresh one, or the Version of the last snapshot
// seen to skip straight to newer states.
func (c *Client) StreamJobEvents(ctx context.Context, id string, lastEventID int64, fn func(api.JobEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	c.authorize(req)
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastEventID, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	if ct := resp.Header.Get("Content-Type"); resp.StatusCode != http.StatusOK || !strings.HasPrefix(ct, "text/event-stream") {
		// Not a stream: decode the error envelope (404, 400, or an older
		// server that has no events endpoint).
		_, apiErr, decodeErr := readResponse(resp)
		if decodeErr != nil {
			return decodeErr
		}
		if apiErr != nil {
			return apiErr
		}
		return fmt.Errorf("client: %s is not an event stream (HTTP %d, %s)", req.URL.Path, resp.StatusCode, ct)
	}
	defer resp.Body.Close()
	// Close the body when ctx ends so the blocking Read below unsticks
	// even mid-event.
	watch := make(chan struct{})
	defer close(watch)
	go func() {
		select {
		case <-ctx.Done():
			resp.Body.Close()
		case <-watch:
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxSSELineBytes)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Dispatch boundary.
			if len(data) == 0 {
				continue
			}
			var ev api.JobEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("client: bad event payload: %w", err)
			}
			data = nil
			if err := fn(ev); err != nil {
				return err
			}
			if ev.Type == api.JobEventTerminal {
				return nil
			}
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		default:
			// id:/event:/comment lines — the payload is self-describing
			// (JobEvent.Type, Job.Version), so the framing fields are
			// redundant here and standard SSE clients still get them.
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrStreamEnded, err)
	}
	return ErrStreamEnded
}

// maxSSELineBytes bounds one SSE line: a terminal event carries a full
// job snapshot with per-item results, which for grid-sized sweeps runs
// to megabytes.
const maxSSELineBytes = 32 << 20
