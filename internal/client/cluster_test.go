package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/serve/api"
)

// lateHandler lets listeners exist before the servers they delegate to:
// ring members need each other's addresses at construction.
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h = h
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// liveRing boots a three-node ring (no blob tier) behind real listeners.
func liveRing(t *testing.T) (srvs map[string]*serve.Server, urls map[string]string, listeners map[string]*httptest.Server) {
	t.Helper()
	ids := []string{"node-a", "node-b", "node-c"}
	srvs = make(map[string]*serve.Server)
	urls = make(map[string]string)
	listeners = make(map[string]*httptest.Server)
	handlers := make(map[string]*lateHandler)
	var peerParts []string
	for _, id := range ids {
		handlers[id] = &lateHandler{}
		ts := httptest.NewServer(handlers[id])
		t.Cleanup(ts.Close)
		urls[id] = ts.URL
		listeners[id] = ts
		peerParts = append(peerParts, id+"="+ts.URL)
	}
	peers := strings.Join(peerParts, ",")
	for _, id := range ids {
		srv := serve.NewServer(serve.BatchOptions{
			Workers: 2, AsyncThreshold: -1,
			ClusterNodeID: id, ClusterPeers: peers,
		})
		if err := srv.ClusterError(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		t.Cleanup(srv.Close)
		srvs[id] = srv
		handlers[id].set(srv.Handler())
	}
	return srvs, urls, listeners
}

// TestClusterClientRoutesToOwner: the client discovers the ring from one
// seed and lands each evaluation directly on its owner — no server-side
// forwarding hop occurs.
func TestClusterClientRoutesToOwner(t *testing.T) {
	srvs, urls, _ := liveRing(t)
	ctx := context.Background()
	cc := NewCluster([]string{urls["node-a"]})

	req := api.EvalRequest{Macro: "base", Network: "toy", MaxMappings: 2}
	res, err := cc.Evaluate(ctx, req)
	if err != nil || res.EnergyJ <= 0 {
		t.Fatalf("evaluate: %+v %v", res, err)
	}
	owner, ok := clusterOwner(t, urls, req)
	if !ok {
		t.Fatalf("no ring owner for request")
	}
	var localTotal, fwdTotal uint64
	for id, s := range srvs {
		st := s.ClusterStatus(ctx)
		localTotal += st.Forward.Local
		fwdTotal += st.Forward.Forwarded + st.Forward.Received
		if id == owner && st.Forward.Local == 0 {
			t.Fatalf("owner %s did not serve the request locally: %+v", id, st.Forward)
		}
	}
	if localTotal != 1 || fwdTotal != 0 {
		t.Fatalf("client-side routing should skip forwarding: local=%d forwarded+received=%d",
			localTotal, fwdTotal)
	}

	// Status reaches the ring through any member.
	st, err := cc.Status(ctx)
	if err != nil || !st.Enabled || len(st.Nodes) != 3 {
		t.Fatalf("status: %+v %v", st, err)
	}
}

// clusterOwner recomputes the ring owner the same way client and servers
// do.
func clusterOwner(t *testing.T, urls map[string]string, req api.EvalRequest) (string, bool) {
	t.Helper()
	var members []cluster.Node
	for id, u := range urls {
		members = append(members, cluster.Node{ID: id, Addr: u})
	}
	n, ok := cluster.NewRing(members, 0).Owner(
		cluster.EvalRouteKey(req.Macro, req.Spec, req.Scenario, req.SystemMacros))
	return n.ID, ok
}

// TestClusterClientFailsOver: a dead owner moves the call to the next
// node on the ring instead of failing it.
func TestClusterClientFailsOver(t *testing.T) {
	srvs, urls, listeners := liveRing(t)
	ctx := context.Background()
	req := api.EvalRequest{Macro: "macro-b", Network: "toy", MaxMappings: 2}
	owner, ok := clusterOwner(t, urls, req)
	if !ok {
		t.Fatalf("no ring owner for request")
	}
	// Seed with a surviving node; discovery still learns the full ring.
	var seed string
	for id, u := range urls {
		if id != owner {
			seed = u
			break
		}
	}
	cc := NewCluster([]string{seed})
	if err := cc.Discover(ctx); err != nil {
		t.Fatalf("discover: %v", err)
	}
	// Kill the owner's listener so calls to it fail at the transport.
	listeners[owner].Close()
	srvs[owner].Close()

	res, err := cc.Evaluate(ctx, req)
	if err != nil || res.EnergyJ <= 0 {
		t.Fatalf("failover evaluate: %+v %v", res, err)
	}
}

// TestClusterClientSingleNode: against a non-clustered server the
// cluster client degrades to plain calls through the seed.
func TestClusterClientSingleNode(t *testing.T) {
	_, c := liveServer(t, serve.BatchOptions{Workers: 2, AsyncThreshold: -1})
	cc := NewCluster([]string{c.BaseURL()})
	res, err := cc.Evaluate(context.Background(), api.EvalRequest{
		Macro: "base", Network: "toy", MaxMappings: 2})
	if err != nil || res.EnergyJ <= 0 {
		t.Fatalf("single-node evaluate: %+v %v", res, err)
	}
	st, err := cc.Status(context.Background())
	if err != nil || st.Enabled {
		t.Fatalf("single-node status: %+v %v", st, err)
	}
}
