package client

import (
	"context"
	"errors"
	"sync"

	"repro/internal/cluster"
	"repro/internal/serve/api"
)

// ClusterClient talks to a ring of serve instances, routing each
// evaluation to its ring owner client-side — the request lands directly
// on the node holding (or about to hold) the warm engine and contexts,
// skipping the server-side forwarding hop. Membership is discovered from
// any seed's GET /v1/cluster; the client and the servers compute the
// same cluster.EvalRouteKey from the same wire fields, so both sides
// always agree on the owner. When the owner is unreachable the client
// fails over along the ring's successor list, and against a non-
// clustered server it degrades to plain single-node calls. Safe for
// concurrent use.
type ClusterClient struct {
	seeds []string
	opts  []Option

	mu      sync.Mutex
	ring    *cluster.Ring
	clients map[string]*Client // by node ID; seed addrs use the addr itself
}

// NewCluster returns a client over the ring reachable through seeds
// (each "host:port" or a full URL — typically the same list the servers
// were started with). Options apply to every per-node client. Membership
// is discovered lazily on first use; Discover forces it.
func NewCluster(seeds []string, opts ...Option) *ClusterClient {
	return &ClusterClient{
		seeds:   append([]string(nil), seeds...),
		opts:    opts,
		clients: make(map[string]*Client),
	}
}

// client returns (building once) the per-node client for key/addr.
func (cc *ClusterClient) client(key, addr string) *Client {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	c, ok := cc.clients[key]
	if !ok {
		c = New(addr, cc.opts...)
		cc.clients[key] = c
	}
	return c
}

// Discover queries the seeds in order for /v1/cluster and rebuilds the
// ring from the first clustered answer. A reachable seed that reports
// clustering disabled stops the scan: the deployment is single-node and
// every call goes through that seed. Only when every seed is unreachable
// does Discover return an error.
func (cc *ClusterClient) Discover(ctx context.Context) error {
	var lastErr error
	for _, seed := range cc.seeds {
		st, err := cc.client(seed, seed).ClusterStatus(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		cc.mu.Lock()
		if st.Enabled {
			members := make([]cluster.Node, 0, len(st.Nodes))
			for _, n := range st.Nodes {
				members = append(members, cluster.Node{ID: n.ID, Addr: n.Addr})
			}
			cc.ring = cluster.NewRing(members, st.VirtualNodes)
		} else {
			cc.ring = nil
		}
		cc.mu.Unlock()
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("client: no cluster seeds configured")
	}
	return lastErr
}

// preference returns the per-node clients to try for key, owner first.
// With no ring (undiscovered or single-node) it is the seed list.
func (cc *ClusterClient) preference(ctx context.Context, key string) []*Client {
	cc.mu.Lock()
	undiscovered := cc.ring == nil && len(cc.clients) == 0
	cc.mu.Unlock()
	if undiscovered {
		_ = cc.Discover(ctx) // best effort; seeds remain the fallback
	}
	cc.mu.Lock()
	ring := cc.ring
	cc.mu.Unlock()
	if ring == nil || key == "" {
		out := make([]*Client, 0, len(cc.seeds))
		for _, seed := range cc.seeds {
			out = append(out, cc.client(seed, seed))
		}
		return out
	}
	var out []*Client
	for _, n := range ring.Successors(key, ring.Len()) {
		out = append(out, cc.client(n.ID, n.Addr))
	}
	return out
}

// Evaluate routes one evaluation to its ring owner, failing over along
// the successor list when nodes are unreachable. A served response —
// success or a typed *api.Error — is final; only transport failures move
// to the next node (a peer that answered has already evaluated or
// validated the request).
func (cc *ClusterClient) Evaluate(ctx context.Context, req api.EvalRequest) (*api.EvalResult, error) {
	key := cluster.EvalRouteKey(req.Macro, req.Spec, req.Scenario, req.SystemMacros)
	var lastErr error
	for _, c := range cc.preference(ctx, key) {
		res, err := c.Evaluate(ctx, req)
		if err == nil {
			return res, nil
		}
		var apiErr *api.Error
		if errors.As(err, &apiErr) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("client: no reachable cluster node")
	}
	return nil, lastErr
}

// Status fetches /v1/cluster from the first reachable node (ring members
// first, then seeds).
func (cc *ClusterClient) Status(ctx context.Context) (api.ClusterResponse, error) {
	var lastErr error
	for _, c := range cc.preference(ctx, "") {
		st, err := c.ClusterStatus(ctx)
		if err == nil {
			return st, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("client: no reachable cluster node")
	}
	return api.ClusterResponse{}, lastErr
}
