// Package client is the Go SDK for the cimloop batch-evaluation
// service's v1 HTTP API. It speaks exactly the typed wire contract of
// internal/serve/api — one definition of every request/response shape,
// compile-checked on both sides — and adds the client-side mechanics a
// raw HTTP caller would have to hand-roll: context plumbing, decoding
// the structured error envelope into Go errors, automatic retry with
// backoff honoring Retry-After on backpressure, Server-Sent-Events
// streaming of job progress with Last-Event-ID resume, and a WaitJob
// that degrades gracefully from SSE to long-polling to plain polling.
//
// Quickstart:
//
//	c := client.New("localhost:8080")
//	acc, err := c.SubmitJob(ctx, api.SweepRequest{
//	    Macros:   []string{"base", "macro-b"},
//	    Networks: []string{"resnet18"},
//	    Priority: jobs.PriorityInteractive,
//	})
//	snap, err := c.WaitJob(ctx, acc.Job.ID, client.WaitOptions{
//	    OnEvent: func(ev api.JobEvent) { fmt.Println(ev.Job.Completed) },
//	})
//
// Errors from non-2xx responses are *api.Error values: check them with
// errors.As or api.IsCode(err, api.CodeQueueFull).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
)

// Client talks to one serve instance. The zero value is not usable; use
// New. Safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	token      string
	// sleep is swapped in tests so retry backoff doesn't slow the suite.
	sleep func(context.Context, time.Duration) error
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). Note the client is used for SSE streams
// too, so a global Timeout would sever long streams — prefer transport-
// level timeouts.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithMaxRetries bounds automatic retries of backpressured requests
// (default 3; 0 disables).
func WithMaxRetries(n int) Option {
	return func(c *Client) { c.maxRetries = n }
}

// WithToken sends "Authorization: Bearer <token>" on every request
// (including SSE streams), for servers running with a tenant file.
// Empty means no header — the default for single-tenant servers.
func WithToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// New returns a client for the serve instance at addr ("host:port" or a
// full URL).
func New(addr string, opts ...Option) *Client {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base: base,
		// No global Timeout: SSE streams and long-polls are long-lived by
		// design; callers bound individual calls with their ctx.
		hc:         &http.Client{},
		maxRetries: 3,
		sleep:      sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL reports the resolved server base URL.
func (c *Client) BaseURL() string { return c.base }

// authorize stamps the bearer token onto a request when one is set.
func (c *Client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// roundTrip issues one request, retrying backpressure (429 +
// queue_full) with the server's Retry-After hint, and returns the
// status plus raw 2xx body. Non-2xx responses come back as *api.Error.
// Every unary call — do and the 200-vs-202 split in Sweep — goes
// through here, so the retry contract cannot drift between methods.
func (c *Client) roundTrip(ctx context.Context, method, path string, body any) (int, []byte, error) {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
	}
	for attempt := 0; ; attempt++ {
		var rdr io.Reader
		if payload != nil {
			rdr = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rdr)
		if err != nil {
			return 0, nil, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.authorize(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			return 0, nil, err
		}
		status := resp.StatusCode
		raw, apiErr, decodeErr := readResponse(resp)
		if decodeErr != nil {
			return status, nil, decodeErr
		}
		if apiErr == nil {
			return status, raw, nil
		}
		// Retry only the explicit backpressure signal: a full queue is
		// transient by contract, and no job was created, so resubmitting
		// cannot duplicate work. Everything else is the caller's problem.
		if apiErr.Code != api.CodeQueueFull || attempt >= c.maxRetries {
			return status, nil, apiErr
		}
		if err := c.sleep(ctx, retryDelay(apiErr, attempt)); err != nil {
			return status, nil, apiErr
		}
	}
}

// do is roundTrip plus decoding the 2xx body into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	_, raw, err := c.roundTrip(ctx, method, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// retryDelay picks the backoff before retrying a queue_full response:
// the server's hint when present, else exponential from 500ms.
func retryDelay(e *api.Error, attempt int) time.Duration {
	if e.RetryAfterSec > 0 {
		return time.Duration(e.RetryAfterSec) * time.Second
	}
	return 500 * time.Millisecond << attempt
}

// readResponse consumes the body: raw bytes on 2xx, an *api.Error
// envelope otherwise. The last return is a transport/read failure.
func readResponse(resp *http.Response) ([]byte, *api.Error, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode >= 300 {
		e := &api.Error{}
		if json.Unmarshal(raw, e) != nil || e.Code == "" {
			// Not an envelope (a proxy interjected, or a pre-v1 server):
			// preserve the raw body as the message.
			e = &api.Error{Code: api.CodeInternal, Message: strings.TrimSpace(string(raw))}
		}
		e.HTTPStatus = resp.StatusCode
		if e.RetryAfterSec == 0 {
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				e.RetryAfterSec = ra
			}
		}
		return nil, e, nil
	}
	return raw, nil, nil
}

// maxResponseBytes bounds any single response read (64 MiB: a full
// retention of grid results fits with room to spare; a runaway stream
// does not OOM the CLI).
const maxResponseBytes = 64 << 20

// Healthz fetches the server's liveness and stats snapshot.
func (c *Client) Healthz(ctx context.Context) (api.HealthzResponse, error) {
	var out api.HealthzResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Metrics fetches the server's Prometheus text exposition from
// GET /metrics, returned verbatim (the format is line-oriented text,
// not JSON — pipe it to a scraper or grep it).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	_, raw, err := c.roundTrip(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// DebugSlow fetches the server's slow-request ring buffer (newest
// first). limit > 0 caps the entries returned; 0 returns everything
// retained.
func (c *Client) DebugSlow(ctx context.Context, limit int) (api.SlowResponse, error) {
	path := "/v1/debug/slow"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out api.SlowResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// ClusterStatus fetches the server's ring membership, per-node health,
// key-ownership split, and blob-tier state. A single-node server answers
// with Enabled false.
func (c *Client) ClusterStatus(ctx context.Context) (api.ClusterResponse, error) {
	var out api.ClusterResponse
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &out)
	return out, err
}

// Evaluate runs one synchronous evaluation.
func (c *Client) Evaluate(ctx context.Context, req api.EvalRequest) (*api.EvalResult, error) {
	var out api.EvalResult
	if err := c.do(ctx, http.MethodPost, "/v1/evaluate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep runs a sweep. Exactly one of the returns is non-nil on success:
// the response for a synchronous sweep, or the accepted job when the
// server promoted the sweep to an async job (grid at the async
// threshold, or req.Async set). Backpressure on the promotion path is
// retried exactly like SubmitJob's.
func (c *Client) Sweep(ctx context.Context, req api.SweepRequest) (*api.SweepResponse, *api.JobAccepted, error) {
	status, raw, err := c.roundTrip(ctx, http.MethodPost, "/v1/sweep", req)
	if err != nil {
		return nil, nil, err
	}
	if status == http.StatusAccepted {
		var acc api.JobAccepted
		if err := json.Unmarshal(raw, &acc); err != nil {
			return nil, nil, err
		}
		return nil, &acc, nil
	}
	var out api.SweepResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, nil, err
	}
	return &out, nil, nil
}

// SubmitJob submits a sweep as an async job (always 202; retries
// backpressure per the client's retry policy).
func (c *Client) SubmitJob(ctx context.Context, req api.SweepRequest) (api.JobAccepted, error) {
	var out api.JobAccepted
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out)
	return out, err
}

// Job fetches one job snapshot.
func (c *Client) Job(ctx context.Context, id string) (jobs.Snapshot, error) {
	var out jobs.Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// PollJob is the long-poll form of Job: the server parks the request
// until the job's version exceeds afterVersion or wait elapses, then
// answers the current snapshot either way (compare versions to tell).
func (c *Client) PollJob(ctx context.Context, id string, afterVersion int64, wait time.Duration) (jobs.Snapshot, error) {
	q := url.Values{}
	q.Set("after_version", strconv.FormatInt(afterVersion, 10))
	if wait > 0 {
		q.Set("wait_sec", strconv.FormatFloat(wait.Seconds(), 'f', -1, 64))
	}
	var out jobs.Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"?"+q.Encode(), nil, &out)
	return out, err
}

// Jobs lists retained jobs with optional status filtering and
// pagination.
func (c *Client) Jobs(ctx context.Context, q api.JobListQuery) (api.JobListResponse, error) {
	v := url.Values{}
	if q.Status != "" {
		v.Set("status", string(q.Status))
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Cursor != "" {
		v.Set("cursor", q.Cursor)
	}
	path := "/v1/jobs"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var out api.JobListResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// CancelJob requests cancellation (idempotent) and returns the job's
// snapshot at that moment.
func (c *Client) CancelJob(ctx context.Context, id string) (jobs.Snapshot, error) {
	var out jobs.Snapshot
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/cancel", nil, &out)
	return out, err
}

// Macros lists the published macro models (paper Table III).
func (c *Client) Macros(ctx context.Context) (api.MacrosResponse, error) {
	var out api.MacrosResponse
	err := c.do(ctx, http.MethodGet, "/v1/macros", nil, &out)
	return out, err
}

// Networks lists the model-zoo workloads.
func (c *Client) Networks(ctx context.Context) (api.NetworksResponse, error) {
	var out api.NetworksResponse
	err := c.do(ctx, http.MethodGet, "/v1/networks", nil, &out)
	return out, err
}

// Experiments lists the reproducible paper artifacts.
func (c *Client) Experiments(ctx context.Context) (api.ExperimentsResponse, error) {
	var out api.ExperimentsResponse
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out)
	return out, err
}

// RunExperiment regenerates one paper table or figure server-side.
func (c *Client) RunExperiment(ctx context.Context, req api.ExperimentRunRequest) (api.ExperimentRunResponse, error) {
	var out api.ExperimentRunResponse
	err := c.do(ctx, http.MethodPost, "/v1/experiments", req, &out)
	return out, err
}

// ListExperiments lists the built-in experiments AND the server's
// registered sweeps/ definitions with their parameter schemas. It is
// Experiments under a clearer name; both hit GET /v1/experiments.
func (c *Client) ListExperiments(ctx context.Context) (api.ExperimentsResponse, error) {
	return c.Experiments(ctx)
}

// RunNamedExperiment runs one registered sweep definition by name,
// binding the request's parameters into its declared axes and budgets
// (POST /v1/experiments/{name}). Exactly one of the returns is non-nil
// on success, mirroring Sweep: the synchronous response, or the accepted
// job when the request asked for async or the compiled grid reached the
// server's promotion threshold.
func (c *Client) RunNamedExperiment(ctx context.Context, name string, req api.NamedExperimentRequest) (*api.SweepResponse, *api.JobAccepted, error) {
	status, raw, err := c.roundTrip(ctx, http.MethodPost, "/v1/experiments/"+url.PathEscape(name), req)
	if err != nil {
		return nil, nil, err
	}
	if status == http.StatusAccepted {
		var acc api.JobAccepted
		if err := json.Unmarshal(raw, &acc); err != nil {
			return nil, nil, err
		}
		return nil, &acc, nil
	}
	var out api.SweepResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, nil, err
	}
	return &out, nil, nil
}
