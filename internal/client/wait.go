package client

import (
	"context"
	"errors"
	"time"

	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
)

// WaitOptions tunes WaitJob.
type WaitOptions struct {
	// OnEvent observes every progress/terminal event, whichever transport
	// delivered it (polling transports synthesize events from snapshots).
	OnEvent func(api.JobEvent)
	// OnTransport is notified each time a transport is (re-)established:
	// "sse" or "poll". The CLI uses it to tell the user how progress is
	// arriving; tests use it to assert SSE actually carried the wait.
	OnTransport func(transport string)
	// DisableStream skips SSE entirely and long-polls (debugging aid and
	// escape hatch for proxies that mangle streams).
	DisableStream bool
	// PollWait is one long-poll round's park time (default 30s, clamped
	// to the server's cap).
	PollWait time.Duration
}

// sseMaxResumes bounds SSE reconnects after mid-stream drops before
// WaitJob gives up on streaming and falls back to polling. Resumes pass
// Last-Event-ID, so nothing is lost across the gap.
const sseMaxResumes = 3

// WaitJob blocks until the job reaches a terminal state and returns the
// final snapshot (full payloads included). Progress arrives by SSE when
// the server speaks it, resuming dropped streams via Last-Event-ID;
// otherwise — and only then — WaitJob degrades to version-cursor
// long-polling, which itself degrades to plain polling against servers
// that ignore the cursor parameters. Cancellation and deadlines come
// from ctx.
func (c *Client) WaitJob(ctx context.Context, id string, opts WaitOptions) (jobs.Snapshot, error) {
	var cursor int64
	if !opts.DisableStream {
		snap, done, err := c.waitBySSE(ctx, id, &cursor, opts)
		if done {
			return snap, err
		}
		// A structured API error that is not a transport failure (404,
		// invalid request) will repeat under polling; surface it now.
		var apiErr *api.Error
		if errors.As(err, &apiErr) && apiErr.Code != api.CodeInternal {
			return jobs.Snapshot{}, err
		}
		if opts.OnTransport != nil {
			opts.OnTransport("poll")
		}
	} else if opts.OnTransport != nil {
		opts.OnTransport("poll")
	}
	return c.waitByPoll(ctx, id, cursor, opts)
}

// waitBySSE drives the stream to the terminal event. done reports the
// wait finished (terminal snapshot, ctx end, or caller error); !done
// means "fall back to polling from *cursor onward".
func (c *Client) waitBySSE(ctx context.Context, id string, cursor *int64, opts WaitOptions) (jobs.Snapshot, bool, error) {
	var last jobs.Snapshot
	streamed := false
	for resumes := 0; ; resumes++ {
		err := c.StreamJobEvents(ctx, id, *cursor, func(ev api.JobEvent) error {
			if !streamed {
				streamed = true
				if opts.OnTransport != nil {
					opts.OnTransport("sse")
				}
			}
			last = ev.Job
			if ev.Job.Version > *cursor {
				*cursor = ev.Job.Version
			}
			if opts.OnEvent != nil {
				opts.OnEvent(ev)
			}
			return nil
		})
		switch {
		case err == nil:
			return last, true, nil
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return jobs.Snapshot{}, true, err
		case errors.Is(err, ErrStreamEnded) && streamed && resumes < sseMaxResumes:
			continue // resume from *cursor with Last-Event-ID
		default:
			return jobs.Snapshot{}, false, err
		}
	}
}

// waitByPoll long-polls the version cursor to a terminal state. Against
// a server that ignores after_version/wait_sec it still terminates —
// every round returns the current snapshot — it just pays a client-side
// backoff between unchanged rounds.
func (c *Client) waitByPoll(ctx context.Context, id string, cursor int64, opts WaitOptions) (jobs.Snapshot, error) {
	wait := opts.PollWait
	if wait <= 0 {
		wait = 30 * time.Second
	}
	idleDelay := 250 * time.Millisecond
	for {
		snap, err := c.PollJob(ctx, id, cursor, wait)
		if err != nil {
			return jobs.Snapshot{}, err
		}
		progressed := snap.Version > cursor
		if progressed {
			cursor = snap.Version
			idleDelay = 250 * time.Millisecond
			if opts.OnEvent != nil {
				ev := api.JobEvent{Type: api.JobEventProgress, Job: snap}
				if snap.Done() {
					ev.Type = api.JobEventTerminal
				}
				opts.OnEvent(ev)
			}
		}
		if snap.Done() {
			return snap, nil
		}
		if !progressed {
			// No news: either the park elapsed or the server ignored the
			// cursor. Back off so a cursor-blind server is not hammered.
			if err := c.sleep(ctx, idleDelay); err != nil {
				return jobs.Snapshot{}, err
			}
			if idleDelay *= 2; idleDelay > 8*time.Second {
				idleDelay = 8 * time.Second
			}
		}
	}
}
