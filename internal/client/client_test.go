package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
)

// liveServer runs the real serving stack behind httptest.
func liveServer(t *testing.T, opts serve.BatchOptions) (*serve.Server, *Client) {
	t.Helper()
	srv := serve.NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, New(ts.URL)
}

func TestClientTypedRoundTrips(t *testing.T) {
	_, c := liveServer(t, serve.BatchOptions{Workers: 2, AsyncThreshold: -1})
	ctx := context.Background()

	h, err := c.Healthz(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %+v %v", h, err)
	}
	res, err := c.Evaluate(ctx, api.EvalRequest{Macro: "macro-b", Network: "toy", MaxMappings: 2})
	if err != nil || res.EnergyJ <= 0 || res.Network != "toy" {
		t.Fatalf("evaluate: %+v %v", res, err)
	}
	sweep, acc, err := c.Sweep(ctx, api.SweepRequest{
		Macros: []string{"base", "macro-b"}, Networks: []string{"toy"}, MaxMappings: 2,
	})
	if err != nil || acc != nil || sweep == nil || len(sweep.Results) != 2 {
		t.Fatalf("sync sweep: %+v %+v %v", sweep, acc, err)
	}
	if sweep.Table == "" || sweep.Cache.Misses == 0 {
		t.Fatalf("sweep extras: %+v", sweep)
	}
	// Async opt-in flips the same call to a job handoff.
	sweep2, acc2, err := c.Sweep(ctx, api.SweepRequest{
		Macros: []string{"base"}, Networks: []string{"toy"}, MaxMappings: 2, Async: true,
		Priority: jobs.PriorityInteractive,
	})
	if err != nil || sweep2 != nil || acc2 == nil {
		t.Fatalf("async sweep: %+v %+v %v", sweep2, acc2, err)
	}
	if acc2.Job.Priority != jobs.PriorityInteractive || acc2.EventsURL == "" {
		t.Fatalf("accepted: %+v", acc2)
	}
	final, err := c.WaitJob(ctx, acc2.Job.ID, WaitOptions{})
	if err != nil || final.Status != jobs.StatusSucceeded {
		t.Fatalf("wait: %+v %v", final, err)
	}

	list, err := c.Jobs(ctx, api.JobListQuery{Status: jobs.StatusSucceeded, Limit: 10})
	if err != nil || len(list.Jobs) != 1 {
		t.Fatalf("list: %+v %v", list, err)
	}
	m, err := c.Macros(ctx)
	if err != nil || len(m.Macros) == 0 {
		t.Fatalf("macros: %v %v", m, err)
	}
	n, err := c.Networks(ctx)
	if err != nil || len(n.Networks) == 0 {
		t.Fatalf("networks: %v %v", n, err)
	}
}

// TestClientErrorEnvelope: non-2xx responses decode into *api.Error with
// the transport status attached.
func TestClientErrorEnvelope(t *testing.T) {
	_, c := liveServer(t, serve.BatchOptions{})
	_, err := c.Job(context.Background(), "job-999999")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %T %v", err, err)
	}
	if apiErr.Code != api.CodeNotFound || apiErr.HTTPStatus != http.StatusNotFound {
		t.Fatalf("envelope: %+v", apiErr)
	}
	if !api.IsCode(err, api.CodeNotFound) {
		t.Fatal("IsCode")
	}
	// Unknown routes are envelopes too (the middleware), so the SDK's
	// error surface is uniform.
	if err := c.do(context.Background(), http.MethodGet, "/nope", nil, nil); !api.IsCode(err, api.CodeNotFound) {
		t.Fatalf("route 404: %v", err)
	}
}

// TestClientRetryHonorsRetryAfter: queue_full responses are retried with
// the server's hint, and the submission eventually lands.
func TestClientRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"code": "queue_full", "message": "full", "retry_after_sec": 7}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"job": {"id": "job-000001", "status": "queued", "version": 1}, "status_url": "/v1/jobs/job-000001", "events_url": "/v1/jobs/job-000001/events"}`)
	}))
	defer stub.Close()

	c := New(stub.URL)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	acc, err := c.SubmitJob(context.Background(), api.SweepRequest{Macros: []string{"base"}, Networks: []string{"toy"}})
	if err != nil || acc.Job.ID != "job-000001" {
		t.Fatalf("submit: %+v %v", acc, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	if len(slept) != 2 || slept[0] != 7*time.Second || slept[1] != 7*time.Second {
		t.Fatalf("backoffs %v, want the server's 7s hint", slept)
	}

	// Exhausted retries surface the envelope.
	calls.Store(-100)
	c2 := New(stub.URL, WithMaxRetries(1))
	c2.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	_, err = c2.SubmitJob(context.Background(), api.SweepRequest{Macros: []string{"base"}})
	if !api.IsCode(err, api.CodeQueueFull) {
		t.Fatalf("exhausted: %v", err)
	}
}

// TestWaitJobStreamsSSE: against the real server, WaitJob carries the
// wait over SSE (transport callback proves it) and returns the terminal
// snapshot with its payloads.
func TestWaitJobStreamsSSE(t *testing.T) {
	srv, c := liveServer(t, serve.BatchOptions{Workers: 2, AsyncThreshold: -1})
	acc, err := c.SubmitJob(context.Background(), api.SweepRequest{
		Macros: []string{"base", "macro-b"}, Networks: []string{"toy"}, MaxMappings: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var transports []string
	var events int
	final, err := c.WaitJob(context.Background(), acc.Job.ID, WaitOptions{
		OnTransport: func(tr string) { transports = append(transports, tr) },
		OnEvent:     func(ev api.JobEvent) { events++ },
	})
	if err != nil || final.Status != jobs.StatusSucceeded {
		t.Fatalf("wait: %+v %v", final, err)
	}
	if len(transports) == 0 || transports[0] != "sse" {
		t.Fatalf("transports %v, want SSE first", transports)
	}
	if events == 0 {
		t.Fatal("no events observed")
	}
	if table, _ := final.Result.(string); !strings.Contains(table, "Batch sweep") {
		t.Fatalf("terminal result: %v", final.Result)
	}
	_ = srv
}

// TestWaitJobFallsBackToPolling: a server with no events endpoint (here:
// a stub that 404s the stream with a non-envelope body, like a proxy)
// still completes the wait via the poll path.
func TestWaitJobFallsBackToPolling(t *testing.T) {
	var version atomic.Int64
	version.Store(2)
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			http.Error(w, "stream? never heard of it", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		v := version.Add(1)
		status, completed := "running", 0
		if v >= 5 {
			status, completed = "succeeded", 1
		}
		fmt.Fprintf(w, `{"id": "job-000001", "status": %q, "version": %d, "completed": %d, "total": 1}`, status, v, completed)
	}))
	defer stub.Close()

	c := New(stub.URL)
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	var transports []string
	final, err := c.WaitJob(context.Background(), "job-000001", WaitOptions{
		OnTransport: func(tr string) { transports = append(transports, tr) },
	})
	if err != nil || final.Status != jobs.StatusSucceeded {
		t.Fatalf("wait: %+v %v", final, err)
	}
	if len(transports) == 0 || transports[len(transports)-1] != "poll" {
		t.Fatalf("transports %v, want poll fallback", transports)
	}
}

// TestWaitJobDisableStream: the explicit polling mode never touches the
// events endpoint.
func TestWaitJobDisableStream(t *testing.T) {
	srv, c := liveServer(t, serve.BatchOptions{Workers: 1, AsyncThreshold: -1})
	acc, err := c.SubmitJob(context.Background(), api.SweepRequest{
		Macros: []string{"base"}, Networks: []string{"toy"}, MaxMappings: 1, Layers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var transports []string
	final, err := c.WaitJob(context.Background(), acc.Job.ID, WaitOptions{
		DisableStream: true,
		OnTransport:   func(tr string) { transports = append(transports, tr) },
	})
	if err != nil || !final.Done() {
		t.Fatalf("wait: %+v %v", final, err)
	}
	for _, tr := range transports {
		if tr == "sse" {
			t.Fatalf("transports %v: stream used despite DisableStream", transports)
		}
	}
	_ = srv
}

// TestClientObsEndpoints covers the SDK face of the observability
// surfaces: Metrics returns the raw Prometheus exposition, DebugSlow
// decodes the slow-request ring (newest first) and honors limit.
func TestClientObsEndpoints(t *testing.T) {
	_, c := liveServer(t, serve.BatchOptions{Workers: 2, AsyncThreshold: -1})
	ctx := context.Background()
	if _, err := c.Evaluate(ctx, api.EvalRequest{Macro: "base", Network: "toy", MaxMappings: 2}); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil || !strings.Contains(text, "cimloop_evaluate_seconds_count") {
		t.Fatalf("metrics: %v\n%s", err, text)
	}
	slow, err := c.DebugSlow(ctx, 0)
	if err != nil || slow.Recorded == 0 || len(slow.Requests) == 0 {
		t.Fatalf("slow: %+v %v", slow, err)
	}
	// Newest first: the evaluate's HTTP span leads (the slow GET itself
	// is recorded only after its response is written).
	if slow.Requests[0].Route != "POST /v1/evaluate" {
		t.Fatalf("newest slow entry = %+v", slow.Requests[0])
	}
	limited, err := c.DebugSlow(ctx, 1)
	if err != nil || len(limited.Requests) != 1 {
		t.Fatalf("slow limit=1: %+v %v", limited, err)
	}
}
