package valuesim

import (
	"testing"

	"repro/internal/macros"
	"repro/internal/workload"
)

// Compare must hold on the analog-adder (Macro B) and analog-accumulator
// (Macro C) output paths too, not just the Base topology.
func TestCompareAcrossMacroFamilies(t *testing.T) {
	layer := workload.ResNet18().Layers[2]
	cfg := Config{Steps: 8, Seed: 9}

	bEng := smallEngine(t, macros.B, macros.Config{Rows: 16, Cols: 16, GroupCols: 4})
	cmp, err := Compare(bEng, layer, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.RelError > 0.25 {
		t.Fatalf("macro B statistical error %.1f%% too high", 100*cmp.RelError)
	}
	if _, ok := cmp.PerComponent["analog_adder"]; !ok {
		t.Fatalf("analog adder missing from comparison: %v", cmp.PerComponent)
	}

	cEng := smallEngine(t, macros.C, macros.Config{Rows: 16, Cols: 16})
	cmp, err = Compare(cEng, layer, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.RelError > 0.25 {
		t.Fatalf("macro C statistical error %.1f%% too high", 100*cmp.RelError)
	}
	if _, ok := cmp.PerComponent["analog_accum"]; !ok {
		t.Fatalf("analog accumulator missing from comparison: %v", cmp.PerComponent)
	}
}

// The photonic and plain-digital architectures evaluate through the
// statistical engine; the value simulator rejects the photonic hierarchy
// gracefully rather than mis-simulating it.
func TestSimulateRejectsUnknownTopologies(t *testing.T) {
	eng := smallEngine(t, macros.Photonic, macros.Config{Rows: 8, Cols: 8})
	layer := workload.Toy().Layers[0]
	if _, _, _, err := Simulate(eng, layer, Config{Steps: 2, Seed: 1}); err == nil {
		t.Fatal("want error for unsupported photonic transit classes")
	}
}
