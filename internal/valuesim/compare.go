package valuesim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Comparison is an accuracy measurement of the statistical model against
// the value-level ground truth for one layer (one bar of Fig. 6).
type Comparison struct {
	Sim  *Result
	Stat *core.Result
	// SimEnergy and StatEnergy are compute-path macro energies.
	SimEnergy  float64
	StatEnergy float64
	// RelError is |stat - sim| / sim.
	RelError float64
	// PerComponent maps component names to (sim, stat) energies.
	PerComponent map[string][2]float64
}

// Compare simulates a layer at value level, then evaluates the statistical
// model on exactly the same matrix-vector operation — same schedule (the
// deterministic greedy mapping), same empirical operand marginals (the
// simulator's recorded PMFs), same circuit models — and reports the energy
// disagreement, which isolates the statistical approximation (independent
// distributions + mapping-invariant per-action energy).
//
// Passing a non-nil pmfOverride pair evaluates the statistical side with
// those distributions instead of the empirical ones: supplying
// network-global average PMFs reproduces the paper's non-data-value-
// dependent fixed-energy comparator.
func Compare(eng *core.Engine, layer workload.Layer, cfg Config, inOverride, wOverride *dist.PMF) (*Comparison, error) {
	sim, inPMF, wPMF, err := Simulate(eng, layer, cfg)
	if err != nil {
		return nil, err
	}
	if inOverride != nil {
		inPMF = inOverride
	}
	if wOverride != nil {
		wPMF = wOverride
	}

	// The matched operation: steps input vectors through a rows x cols
	// array.
	op, err := tensor.MatMul(layer.Name+"+matched", sim.Steps, sim.Rows, sim.LogicalCols)
	if err != nil {
		return nil, err
	}
	matched := layer
	matched.Op = op

	ctx, err := eng.PrepareLayerWithPMFs(matched, inPMF, wPMF)
	if err != nil {
		return nil, err
	}
	m, err := eng.GreedyMapping(ctx)
	if err != nil {
		return nil, err
	}
	stat, err := eng.EvaluateMapping(ctx, m)
	if err != nil {
		return nil, err
	}

	cmp := &Comparison{Sim: sim, Stat: stat, PerComponent: map[string][2]float64{}}
	cmp.SimEnergy = sim.Energy
	for _, le := range stat.Levels {
		simE, inSim := sim.ByComponent[le.Name]
		if !inSim {
			continue
		}
		statE := le.Total
		if le.Kind.String() == "compute" {
			// Exclude one-time weight programming: the simulator charges
			// the steady-state compute path only.
			statE -= le.ByTensor[tensor.Weight]
		}
		cmp.StatEnergy += statE
		cmp.PerComponent[le.Name] = [2]float64{simE, statE}
	}
	if cmp.SimEnergy > 0 {
		cmp.RelError = math.Abs(cmp.StatEnergy-cmp.SimEnergy) / cmp.SimEnergy
	}
	return cmp, nil
}

// AveragePMFs merges per-layer empirical PMFs into one network-global
// distribution pair: the information a fixed-energy model would use
// (paper §IV-A, "data values averaged over all layers").
func AveragePMFs(ins, ws []*dist.PMF) (*dist.PMF, *dist.PMF, error) {
	if len(ins) == 0 || len(ins) != len(ws) {
		return nil, nil, fmt.Errorf("valuesim: mismatched PMF lists (%d, %d)", len(ins), len(ws))
	}
	avg := func(ps []*dist.PMF) (*dist.PMF, error) {
		out := ps[0]
		for i := 1; i < len(ps); i++ {
			var err error
			out, err = dist.Mix(out, ps[i], float64(i)/float64(i+1))
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	ai, err := avg(ins)
	if err != nil {
		return nil, nil, err
	}
	aw, err := avg(ws)
	if err != nil {
		return nil, nil, err
	}
	return ai, aw, nil
}
