package valuesim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/macros"
	"repro/internal/workload"
)

func engineFor(t *testing.T, name string) *core.Engine {
	t.Helper()
	a, err := macros.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// smallEngine shrinks a macro for fast value-level simulation.
func smallEngine(t *testing.T, build func(macros.Config) (*core.Arch, error), cfg macros.Config) *core.Engine {
	t.Helper()
	a, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSimulateBasics(t *testing.T) {
	e := smallEngine(t, macros.Base, macros.Config{Rows: 16, Cols: 16})
	layer := workload.ResNet18().Layers[2]
	res, inPMF, wPMF, err := Simulate(e, layer, Config{Steps: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy <= 0 || math.IsNaN(res.Energy) {
		t.Fatalf("energy = %g", res.Energy)
	}
	// 16 rows x 4 logical cols x 4 weight slices x 8 input slices x 4 steps.
	wantMACs := int64(16) * 4 * 4 * 8 * 4
	if res.MACs != wantMACs {
		t.Fatalf("MACs = %d, want %d", res.MACs, wantMACs)
	}
	if res.Rows != 16 || res.LogicalCols != 4 {
		t.Fatalf("shape = %dx%d", res.Rows, res.LogicalCols)
	}
	if err := inPMF.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := wPMF.Validate(); err != nil {
		t.Fatal(err)
	}
	// Components that must appear.
	for _, name := range []string{"dac", "cell", "adc", "shift_add"} {
		if res.ByComponent[name] <= 0 {
			t.Errorf("component %s has no energy: %v", name, res.ByComponent)
		}
	}
	// Breakdown sums to total.
	sum := 0.0
	for _, v := range res.ByComponent {
		sum += v
	}
	if math.Abs(sum-res.Energy) > 1e-12*res.Energy {
		t.Fatalf("breakdown %g != total %g", sum, res.Energy)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	e := smallEngine(t, macros.Base, macros.Config{Rows: 8, Cols: 8})
	layer := workload.Toy().Layers[0]
	a, _, _, err := Simulate(e, layer, Config{Steps: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := Simulate(e, layer, Config{Steps: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy {
		t.Fatalf("non-deterministic: %g vs %g", a.Energy, b.Energy)
	}
	c, _, _, err := Simulate(e, layer, Config{Steps: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Energy == a.Energy {
		t.Fatal("different seeds gave identical energy")
	}
}

func TestSimulateErrors(t *testing.T) {
	e := smallEngine(t, macros.Base, macros.Config{Rows: 8, Cols: 8})
	layer := workload.Toy().Layers[0]
	if _, _, _, err := Simulate(e, layer, Config{Steps: 0}); err == nil {
		t.Fatal("want error for zero steps")
	}
}

func TestSimulateAllMacroShapes(t *testing.T) {
	layer := workload.ResNet18().Layers[3]
	cases := []struct {
		name  string
		build func(macros.Config) (*core.Arch, error)
		cfg   macros.Config
	}{
		{"base", macros.Base, macros.Config{Rows: 8, Cols: 8}},
		{"a", macros.A, macros.Config{Rows: 12, Cols: 12, GroupCols: 3}},
		{"b", macros.B, macros.Config{Rows: 8, Cols: 8, GroupCols: 4}},
		{"c", macros.C, macros.Config{Rows: 8, Cols: 8}},
		{"d", macros.D, macros.Config{Rows: 8, Cols: 8}},
		{"digital", macros.Digital, macros.Config{Rows: 8, Cols: 8}},
	}
	for _, c := range cases {
		e := smallEngine(t, c.build, c.cfg)
		res, _, _, err := Simulate(e, layer, Config{Steps: 2, Seed: 3})
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if res.Energy <= 0 {
			t.Errorf("%s: energy %g", c.name, res.Energy)
		}
	}
}

// The headline accuracy property (Fig. 6): the statistical model with
// per-layer empirical distributions lands close to the value-level ground
// truth, while a fixed global-average-distribution model errs much more.
func TestStatisticalModelTracksGroundTruth(t *testing.T) {
	e := smallEngine(t, macros.Base, macros.Config{Rows: 32, Cols: 16})
	net := workload.ResNet18()
	layers := net.Layers[1:6]
	cfg := Config{Steps: 8, Seed: 11}

	var dvdErrs []float64
	var ins, ws []*dist.PMF
	var cmps []*Comparison
	for _, l := range layers {
		cmp, err := Compare(e, l, cfg, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		dvdErrs = append(dvdErrs, cmp.RelError)
		cmps = append(cmps, cmp)
		_, inPMF, wPMF, err := Simulate(e, l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ins = append(ins, inPMF)
		ws = append(ws, wPMF)
	}
	avgIn, avgW, err := AveragePMFs(ins, ws)
	if err != nil {
		t.Fatal(err)
	}
	var fixedErrs []float64
	for _, l := range layers {
		cmp, err := Compare(e, l, cfg, avgIn, avgW)
		if err != nil {
			t.Fatal(err)
		}
		fixedErrs = append(fixedErrs, cmp.RelError)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	dvd, fixed := mean(dvdErrs), mean(fixedErrs)
	t.Logf("data-value-dependent error %.1f%%, fixed-energy error %.1f%%", 100*dvd, 100*fixed)
	if dvd > 0.15 {
		t.Fatalf("statistical model error %.1f%% too high (paper: ~3%%)", 100*dvd)
	}
	if fixed <= dvd {
		t.Fatalf("fixed-energy model (%.1f%%) should err more than data-value-dependent (%.1f%%)", 100*fixed, 100*dvd)
	}
}

func TestCompareActionCountsMatch(t *testing.T) {
	// The two models must agree on DAC action counts exactly: DAC energy
	// is a pure function of the input marginal, so sim and stat DAC
	// energies should match to within PMF arithmetic tolerance.
	e := smallEngine(t, macros.Base, macros.Config{Rows: 16, Cols: 8})
	layer := workload.ResNet18().Layers[4]
	cmp, err := Compare(e, layer, Config{Steps: 8, Seed: 5}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pc, ok := cmp.PerComponent["dac"]
	if !ok {
		t.Fatalf("no dac in comparison: %v", cmp.PerComponent)
	}
	simE, statE := pc[0], pc[1]
	if simE <= 0 || statE <= 0 {
		t.Fatalf("dac energies: %g, %g", simE, statE)
	}
	rel := math.Abs(simE-statE) / simE
	if rel > 0.01 {
		t.Fatalf("dac energy mismatch %.2f%% (sim %g vs stat %g): action counts disagree", 100*rel, simE, statE)
	}
	// Cells are near-separable, but finite-sample correlation between a
	// row's input activity and its weights leaves a few percent of
	// genuine statistical error — the effect Fig. 6 studies. Bound it.
	pc, ok = cmp.PerComponent["cell"]
	if !ok {
		t.Fatal("no cell in comparison")
	}
	rel = math.Abs(pc[0]-pc[1]) / pc[0]
	if rel > 0.10 {
		t.Fatalf("cell energy mismatch %.2f%% (sim %g vs stat %g)", 100*rel, pc[0], pc[1])
	}
}

func TestAveragePMFsErrors(t *testing.T) {
	if _, _, err := AveragePMFs(nil, nil); err == nil {
		t.Fatal("want error for empty lists")
	}
}

func TestDetectShapeRejectsUnknownClasses(t *testing.T) {
	e := engineFor(t, "base")
	a := e.Arch()
	levels := append(a.Levels[:0:0], a.Levels...)
	levels[1].Class = "exotic"
	if _, err := detectShape(levels); err == nil {
		t.Fatal("want error for unsupported transit class")
	}
}
