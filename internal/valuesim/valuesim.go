// Package valuesim is the value-level ground-truth simulator: the role
// NeuroSim plays in the paper's evaluation (§IV). It executes concrete
// sampled tensors through a CiM macro step by step, bit-slice by
// bit-slice, computing every component's energy from the actual values it
// propagates — no distributions, no independence assumption, no
// mapping-invariance assumption.
//
// Critically, it consumes the same circuit models (via the engine's
// bindings) and the same encodings as the statistical model, so the
// difference between the two isolates exactly the statistical
// approximation — what Fig. 6 measures — and the speed gap between the two
// is what Table II measures.
//
// The simulator covers the macro compute path (DACs, cells, analog
// adders/accumulators, ADCs, digital accumulation). Buffer traffic is
// value-independent and identical in both models by construction, so
// comparisons are made over the compute-path components.
package valuesim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/enc"
	"repro/internal/spec"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// macroShape is the structural view of a flattened CiM macro hierarchy.
type macroShape struct {
	dacIdx      int // input converter/driver transit (-1 if none)
	shiftAddIdx int // digital output accumulator (-1 if none)
	adcIdx      int // output converter transit (-1 if none)
	adderIdx    int // analog output coalescer (-1 if none)
	accumIdx    int // analog accumulator storage (-1 if none)
	computeIdx  int
	rows        int // innermost output-reduced mesh
	groupCols   int // columns merged per ADC read (analog adder groups)
	physCols    int // physical column count outside the groups
}

// detectShape maps a flattened hierarchy onto the canonical macro
// structure (the Base/A/B/C/D/Digital topologies of package macros).
func detectShape(levels []spec.Level) (*macroShape, error) {
	s := &macroShape{
		dacIdx: -1, shiftAddIdx: -1, adcIdx: -1,
		adderIdx: -1, accumIdx: -1, computeIdx: -1,
		rows: 1, groupCols: 1, physCols: 1,
	}
	haveBuffer := false
	var meshes []int
	for i := range levels {
		lv := &levels[i]
		switch lv.Kind {
		case spec.StorageLevel:
			switch lv.Class {
			case "sram-buffer", "dram":
				haveBuffer = true
			case "analog-accumulator":
				s.accumIdx = i
			case "shift-add", "register":
				if lv.Keeps[tensor.Output] {
					s.shiftAddIdx = i
				}
				// Input/weight registers are cheap staging; they are not
				// part of the simulated compute path.
			default:
				return nil, fmt.Errorf("valuesim: unsupported storage class %q", lv.Class)
			}
		case spec.TransitLevel:
			switch lv.Class {
			case "dac", "row-driver":
				s.dacIdx = i
			case "adc":
				s.adcIdx = i
			case "analog-adder", "digital-adder":
				if lv.CoalesceT[tensor.Output] {
					s.adderIdx = i
				}
			case "wire", "sense-amp", "multiplexer":
				// Fixed-energy pass-throughs; negligible and skipped.
			default:
				return nil, fmt.Errorf("valuesim: unsupported transit class %q", lv.Class)
			}
		case spec.SpatialLevel:
			meshes = append(meshes, i)
		case spec.ComputeLevel:
			s.computeIdx = i
		}
	}
	if !haveBuffer || s.computeIdx < 0 {
		return nil, errors.New("valuesim: hierarchy lacks a buffer or compute level")
	}
	for _, mi := range meshes {
		lv := &levels[mi]
		switch {
		case lv.SpatialReuse[tensor.Output]:
			s.rows *= lv.Mesh
		case s.adderIdx >= 0 && mi > s.adderIdx:
			s.groupCols *= lv.Mesh
		default:
			s.physCols *= lv.Mesh
		}
	}
	return s, nil
}

// Result is the outcome of one value-level simulation.
type Result struct {
	// Energy is the compute-path energy in joules for the simulated steps.
	Energy float64
	// ByComponent maps level names to their energy.
	ByComponent map[string]float64
	// MACs is the number of MAC-slice operations executed.
	MACs int64
	// Steps is the number of input vectors streamed.
	Steps int
	// Rows and LogicalCols describe the simulated matrix-vector shape.
	Rows, LogicalCols int
}

// Config controls a simulation.
type Config struct {
	// Steps is the number of input vectors streamed through the array.
	Steps int
	// Seed drives operand sampling.
	Seed int64
}

// Simulate runs sampled operands matching the layer's statistics through
// the macro and returns per-value energies plus the empirical operand PMFs
// (the profiling step of Algorithm 1 line 3, for feeding the statistical
// model the same marginals).
func Simulate(eng *core.Engine, layer workload.Layer, cfg Config) (*Result, *dist.PMF, *dist.PMF, error) {
	if cfg.Steps <= 0 {
		return nil, nil, nil, fmt.Errorf("valuesim: steps %d must be positive", cfg.Steps)
	}
	a := eng.Arch()
	shape, err := detectShape(a.Levels)
	if err != nil {
		return nil, nil, nil, err
	}
	wbSlices := a.WeightSlices()
	ibSlices := a.InputSlices()

	// Resolve where weight slices live: within an analog-added group
	// (Macro B), across separate logical columns (Base), or inside one
	// device (Macros C/D, wbSlices == 1).
	logicalCols := shape.physCols
	if shape.groupCols > 1 {
		if wbSlices > shape.groupCols {
			return nil, nil, nil, fmt.Errorf("valuesim: %d weight slices exceed %d grouped columns", wbSlices, shape.groupCols)
		}
	} else if wbSlices > 1 {
		if logicalCols%wbSlices != 0 {
			return nil, nil, nil, fmt.Errorf("valuesim: %d weight slices do not divide %d columns", wbSlices, logicalCols)
		}
		logicalCols /= wbSlices
	}

	ops, err := layer.SampleOperands(shape.rows, logicalCols, cfg.Steps, a.InputBits, a.WeightBits, cfg.Seed)
	if err != nil {
		return nil, nil, nil, err
	}

	inEnc, err := enc.ByName(a.ResolveInputEncoding(layer.Act.Signed), a.InputBits)
	if err != nil {
		return nil, nil, nil, err
	}
	wEnc, err := enc.ByName(a.ResolveWeightEncoding(), a.WeightBits)
	if err != nil {
		return nil, nil, nil, err
	}
	inSlicing, err := enc.NewSlicing(a.InputBits, a.DACBits)
	if err != nil {
		return nil, nil, nil, err
	}
	wSlicing, err := enc.NewSlicing(a.WeightBits, a.CellBits)
	if err != nil {
		return nil, nil, nil, err
	}

	// Pre-encode weights into per-slice cell values; record raw levels.
	wCells := make([][][]int, shape.rows) // [row][logicalCol][slice]
	wSamples := make([]float64, 0, shape.rows*logicalCols)
	for r := 0; r < shape.rows; r++ {
		wCells[r] = make([][]int, logicalCols)
		for c := 0; c < logicalCols; c++ {
			raw := ops.Weights[r][c]
			wSamples = append(wSamples, float64(raw))
			rails, err := wEnc.Encode(raw)
			if err != nil {
				return nil, nil, nil, err
			}
			slices := make([]int, wbSlices)
			for k := 0; k < wbSlices; k++ {
				slices[k] = wSlicing.SliceValue(rails[0], k)
			}
			wCells[r][c] = slices
		}
	}
	inSamples := make([]float64, 0, cfg.Steps*shape.rows)
	for t := range ops.Inputs {
		for _, v := range ops.Inputs[t] {
			inSamples = append(inSamples, float64(v))
		}
	}

	models := shapeModels(eng, shape)
	if models.cell == nil {
		return nil, nil, nil, errors.New("valuesim: no compute model bound")
	}
	res := &Result{
		ByComponent: map[string]float64{},
		Steps:       cfg.Steps,
		Rows:        shape.rows,
		LogicalCols: logicalCols,
	}
	adcFullScale := a.ColumnFullScale(shape.adcBoundary())
	adcBits := 8
	if adc, ok := models.adc.(*circuits.ADC); ok {
		adcBits = adc.Bits()
	}
	charge := func(idx int, joules float64) {
		if idx < 0 || joules == 0 {
			return
		}
		res.Energy += joules
		res.ByComponent[a.Levels[idx].Name] += joules
	}

	accum := make([]float64, logicalCols)
	inSlice := make([]int, shape.rows)
	for t := 0; t < cfg.Steps; t++ {
		for c := range accum {
			accum[c] = 0
		}
		for ib := 0; ib < ibSlices; ib++ {
			for r := 0; r < shape.rows; r++ {
				rails, err := inEnc.Encode(ops.Inputs[t][r])
				if err != nil {
					return nil, nil, nil, err
				}
				v := inSlicing.SliceValue(rails[0], ib)
				inSlice[r] = v
				if models.dac != nil {
					charge(shape.dacIdx, models.dac.EnergyAt(float64(v), 0, 0))
				}
			}
			for c := 0; c < logicalCols; c++ {
				groupSum := 0.0
				for k := 0; k < wbSlices; k++ {
					colSum := 0
					for r := 0; r < shape.rows; r++ {
						w := wCells[r][c][k]
						charge(shape.computeIdx, models.cell.EnergyAt(float64(inSlice[r]), float64(w), 0))
						colSum += inSlice[r] * w
						res.MACs++
					}
					if models.adder != nil {
						// The analog adder consumes each member column;
						// the group reads out once below.
						charge(shape.adderIdx, models.adder.EnergyAt(0, 0, float64(colSum)))
						groupSum += float64(colSum) * float64(int64(1)<<uint(k*a.CellBits))
						continue
					}
					// Each weight-slice column reads out individually.
					readout(res, charge, models, shape, a, adcBits, adcFullScale, float64(colSum), accum, c, ib, ibSlices)
				}
				if models.adder != nil {
					readout(res, charge, models, shape, a, adcBits, adcFullScale, groupSum, accum, c, ib, ibSlices)
				}
			}
		}
	}

	inPMF, err := dist.FromSamples(inSamples)
	if err != nil {
		return nil, nil, nil, err
	}
	wPMF, err := dist.FromSamples(wSamples)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, inPMF, wPMF, nil
}

// adcBoundary returns the boundary index for the ADC full-scale.
func (s *macroShape) adcBoundary() int {
	if s.adcIdx >= 0 {
		return s.adcIdx + 1
	}
	return s.computeIdx
}

// shapeModelsSet carries the bound circuit models for the macro shape.
type shapeModelsSet struct {
	dac, cell, adc, adder, accumM, shiftAdd circuits.Model
}

func shapeModels(eng *core.Engine, s *macroShape) *shapeModelsSet {
	m := &shapeModelsSet{cell: eng.ComponentModel(s.computeIdx)}
	if s.dacIdx >= 0 {
		m.dac = eng.ComponentModel(s.dacIdx)
	}
	if s.adcIdx >= 0 {
		m.adc = eng.ComponentModel(s.adcIdx)
	}
	if s.adderIdx >= 0 {
		m.adder = eng.ComponentModel(s.adderIdx)
	}
	if s.accumIdx >= 0 {
		m.accumM = eng.ComponentModel(s.accumIdx)
	}
	if s.shiftAddIdx >= 0 {
		m.shiftAdd = eng.ComponentModel(s.shiftAddIdx)
	}
	return m
}

// readout models the output path for one column sum at one input slice:
// analog accumulation across input slices (Macro C) or immediate ADC
// conversion, followed by digital accumulation.
func readout(res *Result, charge func(int, float64), m *shapeModelsSet, s *macroShape, a *core.Arch, adcBits int, adcFullScale, sum float64, accum []float64, col, ib, ibSlices int) {
	if m.accumM != nil {
		accum[col] += sum * float64(int64(1)<<uint(ib*a.DACBits))
		charge(s.accumIdx, m.accumM.EnergyAt(0, 0, accum[col]))
		if ib == ibSlices-1 && m.adc != nil {
			full := adcFullScale * (math.Exp2(float64(a.InputBits)) - 1) / (math.Exp2(float64(a.DACBits)) - 1)
			charge(s.adcIdx, m.adc.EnergyAt(0, 0, quantizeCode(accum[col], full, adcBits)))
		}
		return
	}
	if m.adc != nil {
		charge(s.adcIdx, m.adc.EnergyAt(0, 0, quantizeCode(sum, adcFullScale, adcBits)))
	}
	if m.shiftAdd != nil {
		charge(s.shiftAddIdx, m.shiftAdd.EnergyAt(0, 0, sum))
	}
}

// quantizeCode maps an analog sum onto an ADC output code, matching the
// statistical model's quantization.
func quantizeCode(v, fullScale float64, bits int) float64 {
	if fullScale <= 0 {
		return 0
	}
	if v < 0 {
		v = 0
	}
	if v > fullScale {
		v = fullScale
	}
	return v / fullScale * float64(int64(1)<<uint(bits)-1)
}
