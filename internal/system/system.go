// Package system composes CiM macros into full systems (paper §V-B4,
// Fig. 15): a DRAM backing store, an on-chip global buffer, a router, and
// a mesh of parallel macros. It implements the figure's three data-
// placement scenarios:
//
//   - AllDRAM: every tensor streams from DRAM with no weight
//     stationarity (the reload-per-use loop order).
//   - WeightStationary: weights pre-loaded into the arrays once per
//     layer; inputs/outputs still travel to/from DRAM each layer.
//   - OnChipIO: weights stationary and inputs/outputs pinned in the
//     global buffer between layers (the layer-fusion regime).
package system

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/tensor"
)

// Scenario selects the Fig. 15 data placement.
type Scenario int

// The three scenarios of Fig. 15.
const (
	AllDRAM Scenario = iota
	WeightStationary
	OnChipIO
)

// String names the scenario as the figure does.
func (s Scenario) String() string {
	switch s {
	case AllDRAM:
		return "all-tensors-from-dram"
	case WeightStationary:
		return "weight-stationary"
	case OnChipIO:
		return "weight-stationary+onchip-io"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Config parameterizes a full system.
type Config struct {
	// Macros is the number of parallel macros on the chip.
	Macros int
	// GlobalBufferKB sizes the shared on-chip buffer.
	GlobalBufferKB float64
	// DRAMBandwidthGbps sets the off-chip channel (0: default).
	DRAMBandwidthGbps float64
}

// Build wraps a macro architecture into a full system for the given
// scenario. The macro's own levels are preserved; DRAM, global buffer,
// router, and the macro mesh are prepended, and the macro's mapper
// guidance is re-indexed.
func Build(macro *core.Arch, sc Scenario, cfg Config) (*core.Arch, error) {
	if macro == nil {
		return nil, fmt.Errorf("system: nil macro architecture")
	}
	if err := macro.Validate(); err != nil {
		return nil, err
	}
	if cfg.Macros == 0 {
		cfg.Macros = 4
	}
	if cfg.Macros < 1 || cfg.Macros > 4096 {
		return nil, fmt.Errorf("system: macro count %d out of [1,4096]", cfg.Macros)
	}
	if cfg.GlobalBufferKB == 0 {
		cfg.GlobalBufferKB = 1024
	}
	if sc < AllDRAM || sc > OnChipIO {
		return nil, fmt.Errorf("system: unknown scenario %d", sc)
	}

	// DRAM holds weights always; inputs/outputs only when they travel
	// off-chip between layers.
	dramKeeps := map[tensor.Kind]bool{tensor.Weight: true}
	if sc != OnChipIO {
		dramKeeps[tensor.Input] = true
		dramKeeps[tensor.Output] = true
	}
	prepended := []spec.Level{
		{
			Name: "dram", Kind: spec.StorageLevel, Class: "dram",
			Attrs: map[string]float64{"bandwidth_gbps": cfg.DRAMBandwidthGbps},
			Keeps: dramKeeps, Mesh: 1, MeshX: 1, MeshY: 1,
		},
		{
			Name: "global_buffer", Kind: spec.StorageLevel, Class: "sram-buffer",
			Attrs: map[string]float64{"capacity_kb": cfg.GlobalBufferKB, "word_bits": 256},
			Keeps: map[tensor.Kind]bool{tensor.Input: true, tensor.Output: true},
			Mesh:  1, MeshX: 1, MeshY: 1,
		},
		{
			Name: "router", Kind: spec.TransitLevel, Class: "wire",
			Attrs:     map[string]float64{"bits": 64, "length_mm": 3},
			Transits:  map[tensor.Kind]bool{tensor.Input: true, tensor.Output: true},
			CoalesceT: map[tensor.Kind]bool{},
			Mesh:      1, MeshX: 1, MeshY: 1,
		},
		{
			Name: "macro_mesh", Kind: spec.SpatialLevel,
			Mesh: cfg.Macros, MeshX: cfg.Macros, MeshY: 1,
			SpatialReuse: map[tensor.Kind]bool{tensor.Input: true},
		},
	}
	offset := len(prepended)
	levels := append(prepended, macro.Levels...)

	out := *macro
	out.Name = fmt.Sprintf("system(%s,%s)", macro.Name, sc)
	out.Levels = levels
	out.SpatialPrefs = map[int][]string{
		// Parallel macros split output channels.
		offset - 1: {"K", "P"},
	}
	for k, v := range macro.SpatialPrefs {
		out.SpatialPrefs[k+offset] = append([]string(nil), v...)
	}
	if macro.WeightSliceLevel >= 0 {
		out.WeightSliceLevel = macro.WeightSliceLevel + offset
	}
	if macro.InputSliceLevel >= 0 {
		out.InputSliceLevel = macro.InputSliceLevel + offset
	}
	// Loop placement encodes the scenario. Weight-stationary scenarios
	// cache pixel/batch dims (M, N, P, Q) at the global buffer inside the
	// weight-tile dims, so each weight tile streams from DRAM exactly
	// once while inputs are served on-chip. The AllDRAM strawman keeps
	// everything at DRAM with weight dims innermost, re-streaming weights
	// from DRAM for every output-pixel tile.
	out.TemporalLevel = -1
	switch sc {
	case AllDRAM:
		out.InnerDims = append([]string{"K", "C", "R", "S"}, macro.InnerDims...)
		out.TemporalTargets = nil
	default:
		// K innermost among the DRAM loops keeps inputs resident across
		// weight-tile changes.
		out.InnerDims = []string{"K"}
		out.TemporalTargets = map[string]int{"M": 1, "N": 1, "P": 1, "Q": 1}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// BreakdownBuckets groups a full-system result's per-level energies into
// the Fig. 15 reporting buckets: off-chip DRAM, global buffer, and
// macro + other on-chip data movement.
func BreakdownBuckets(r *core.Result) (dram, globalBuffer, macroOnChip float64) {
	for _, le := range r.Levels {
		switch le.Name {
		case "dram":
			dram += le.Total
		case "global_buffer":
			globalBuffer += le.Total
		default:
			macroOnChip += le.Total
		}
	}
	return dram, globalBuffer, macroOnChip
}
