package system

import (
	"testing"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/workload"
)

func macroD(t *testing.T) *core.Arch {
	t.Helper()
	a, err := macros.D(macros.Config{Rows: 64, Cols: 32})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildAllScenarios(t *testing.T) {
	for _, sc := range []Scenario{AllDRAM, WeightStationary, OnChipIO} {
		sys, err := Build(macroD(t), sc, Config{Macros: 2})
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if sys.Levels[0].Class != "dram" {
			t.Fatalf("%s: outermost level %q", sc, sys.Levels[0].Class)
		}
		e, err := core.NewEngine(sys)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		l := workload.Toy().Layers[0]
		r, err := e.EvaluateLayer(l, 6, 1)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if r.Energy <= 0 {
			t.Fatalf("%s: energy %g", sc, r.Energy)
		}
		dram, gb, macro := BreakdownBuckets(r)
		if dram < 0 || gb <= 0 || macro <= 0 {
			t.Fatalf("%s: buckets %g/%g/%g", sc, dram, gb, macro)
		}
	}
}

func TestScenarioOrdering(t *testing.T) {
	// The headline Fig. 15 shape: AllDRAM >> WeightStationary >= OnChipIO
	// in total energy, with DRAM the dominant bucket of AllDRAM.
	l := workload.GPT2().Layers[1] // 1024x768x768 matmul
	energy := map[Scenario]float64{}
	dramShare := map[Scenario]float64{}
	for _, sc := range []Scenario{AllDRAM, WeightStationary, OnChipIO} {
		sys, err := Build(macroD(t), sc, Config{Macros: 4})
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEngine(sys)
		if err != nil {
			t.Fatal(err)
		}
		// Scenario studies pin the dataflow: greedy mapping only, so the
		// search cannot undo the scenario's loop order.
		r, err := e.EvaluateLayer(l, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		energy[sc] = r.Energy
		dram, _, _ := BreakdownBuckets(r)
		dramShare[sc] = dram / r.Energy
	}
	if energy[AllDRAM] <= energy[WeightStationary] {
		t.Fatalf("AllDRAM (%g) should exceed WeightStationary (%g)", energy[AllDRAM], energy[WeightStationary])
	}
	if energy[WeightStationary] < energy[OnChipIO] {
		t.Fatalf("OnChipIO (%g) should not exceed WeightStationary (%g)", energy[OnChipIO], energy[WeightStationary])
	}
	if dramShare[AllDRAM] < 0.5 {
		t.Fatalf("AllDRAM should be DRAM-dominated, got %.0f%%", 100*dramShare[AllDRAM])
	}
	if dramShare[OnChipIO] >= dramShare[WeightStationary] {
		t.Fatalf("OnChipIO DRAM share (%.2f) should drop below WeightStationary (%.2f)",
			dramShare[OnChipIO], dramShare[WeightStationary])
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, AllDRAM, Config{}); err == nil {
		t.Error("want error for nil macro")
	}
	if _, err := Build(macroD(t), Scenario(9), Config{}); err == nil {
		t.Error("want error for unknown scenario")
	}
	if _, err := Build(macroD(t), AllDRAM, Config{Macros: -1}); err == nil {
		t.Error("want error for negative macro count")
	}
	bad := macroD(t)
	bad.ClockHz = 0
	if _, err := Build(bad, AllDRAM, Config{}); err == nil {
		t.Error("want error for invalid macro arch")
	}
}

func TestScenarioString(t *testing.T) {
	if AllDRAM.String() == "" || WeightStationary.String() == "" || OnChipIO.String() == "" {
		t.Fatal("scenario names empty")
	}
	if Scenario(9).String() == "" {
		t.Fatal("unknown scenario should render")
	}
}
