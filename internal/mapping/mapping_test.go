package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
	"repro/internal/tensor"
)

// testLevels builds a simple 4-level hierarchy for matmul tests:
// DRAM-like buffer (keeps all) -> spatial mesh -> local buffer (keeps
// inputs+outputs) -> compute (keeps weights).
func testLevels(mesh int, reuse map[tensor.Kind]bool) []spec.Level {
	return []spec.Level{
		{Name: "main", Kind: spec.StorageLevel,
			Keeps: map[tensor.Kind]bool{tensor.Input: true, tensor.Weight: true, tensor.Output: true}},
		{Name: "mesh", Kind: spec.SpatialLevel, Mesh: mesh, MeshX: mesh, MeshY: 1, SpatialReuse: reuse},
		{Name: "local", Kind: spec.StorageLevel,
			Keeps: map[tensor.Kind]bool{tensor.Input: true, tensor.Output: true}},
		{Name: "pe", Kind: spec.ComputeLevel,
			Keeps: map[tensor.Kind]bool{tensor.Weight: true}},
	}
}

func mm(t *testing.T, m, k, n int) *tensor.Einsum {
	t.Helper()
	e, err := tensor.MatMul("mm", m, k, n)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidateMapping(t *testing.T) {
	levels := testLevels(4, nil)
	e := mm(t, 4, 8, 4)
	good := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 4}, {Dim: "C", Factor: 2}},
		{{Dim: "K", Factor: 4}},
		{{Dim: "C", Factor: 4}},
		nil,
	}}
	if err := Validate(levels, e, good); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		m    *Mapping
	}{
		{"nil", nil},
		{"wrong length", &Mapping{LevelLoops: [][]Loop{nil}}},
		{"unknown dim", &Mapping{LevelLoops: [][]Loop{
			{{Dim: "Z", Factor: 4}}, nil, nil, nil}}},
		{"zero factor", &Mapping{LevelLoops: [][]Loop{
			{{Dim: "M", Factor: 0}}, nil, nil, nil}}},
		{"loops on compute", &Mapping{LevelLoops: [][]Loop{
			{{Dim: "M", Factor: 4}, {Dim: "C", Factor: 8}, {Dim: "K", Factor: 4}},
			nil, nil, {{Dim: "C", Factor: 1}}}}},
		{"mesh overflow", &Mapping{LevelLoops: [][]Loop{
			{{Dim: "M", Factor: 4}, {Dim: "C", Factor: 8}},
			{{Dim: "K", Factor: 8}}, nil, nil}}},
		{"undercovered dim", &Mapping{LevelLoops: [][]Loop{
			{{Dim: "M", Factor: 2}, {Dim: "C", Factor: 8}, {Dim: "K", Factor: 4}},
			nil, nil, nil}}},
	}
	for _, c := range cases {
		if err := Validate(levels, e, c.m); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestAnalyzeBasicsWeightStationaryMatmul(t *testing.T) {
	// 4x8x4 matmul on a 4-wide mesh. N across the mesh, K at compute
	// (weights stationary), M temporal at main.
	levels := testLevels(4, map[tensor.Kind]bool{tensor.Input: true})
	e := mm(t, 4, 8, 4)
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 4}},
		{{Dim: "K", Factor: 4}},
		{{Dim: "C", Factor: 8}},
		nil,
	}}
	c, err := Analyze(levels, e, m)
	if err != nil {
		t.Fatal(err)
	}
	if c.MACs != 4*8*4 || c.ActualMACs != 4*8*4 || c.Utilization != 1 {
		t.Fatalf("MACs=%d actual=%d util=%g", c.MACs, c.ActualMACs, c.Utilization)
	}
	if c.Cycles != 4*8 {
		t.Fatalf("cycles = %d, want 32", c.Cycles)
	}
	if c.Instances != 4 {
		t.Fatalf("instances = %d", c.Instances)
	}
	// Weights: 32 values total at main, arriving once.
	wMain := c.PerLevel[0][tensor.Weight]
	wPE := c.PerLevel[3][tensor.Weight]
	if wMain.Tile != 32 || wMain.Writes != 32 {
		t.Fatalf("main weights: %+v", wMain)
	}
	// Each PE cell holds one weight at a time (K iterates at local).
	if wPE.Tile != 1 {
		t.Fatalf("pe weight tile = %d", wPE.Tile)
	}
	// Weights are NOT stationary here: K (x8, relevant, breaks the run),
	// N spatial relevant (x4), then M (x4, irrelevant but outside the
	// broken run) refetch: 1*8*4*4 = 128.
	if wMain.Reads != 128 || wPE.Writes != 128 {
		t.Fatalf("weight fills: mainReads=%d peWrites=%d", wMain.Reads, wPE.Writes)
	}
	// Inputs: local keeps inputs; tile at local = K=8 (M,N outside).
	iLocal := c.PerLevel[2][tensor.Input]
	if iLocal.Tile != 8 {
		t.Fatalf("local input tile = %d", iLocal.Tile)
	}
	// Input fills: M relevant temporal outside (x4), N spatial irrelevant
	// but multicast (x1): parent reads = 8*4 = 32 = input volume.
	iMain := c.PerLevel[0][tensor.Input]
	if iMain.Reads != 32 {
		t.Fatalf("main input reads = %d, want 32", iMain.Reads)
	}
	// Each of the 4 instances receives a copy: 32*4 local writes.
	if iLocal.Writes != 128 {
		t.Fatalf("local input writes = %d, want 128", iLocal.Writes)
	}
	// Inputs read from local by compute: every MAC consumes one: 128.
	if iLocal.Reads != 128 {
		t.Fatalf("local input reads = %d, want 128", iLocal.Reads)
	}
	// Outputs: local accumulates; every MAC updates (128 RMW), plus 16
	// drain reads when tiles complete.
	oLocal := c.PerLevel[2][tensor.Output]
	if oLocal.Writes != 128 || oLocal.Reads != 128+16 {
		t.Fatalf("local output: %+v", oLocal)
	}
	// Main receives exactly the output volume (16), written once each.
	oMain := c.PerLevel[0][tensor.Output]
	if oMain.Writes != 16 {
		t.Fatalf("main output writes = %d, want 16", oMain.Writes)
	}
}

func TestAnalyzeUtilizationPadding(t *testing.T) {
	// K=6 mapped with factor 8: padding.
	levels := testLevels(4, nil)
	e := mm(t, 4, 6, 4)
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 4}},
		{{Dim: "K", Factor: 4}},
		{{Dim: "C", Factor: 8}},
		nil,
	}}
	c, err := Analyze(levels, e, m)
	if err != nil {
		t.Fatal(err)
	}
	if c.MACs != 128 || c.ActualMACs != 96 {
		t.Fatalf("MACs=%d actual=%d", c.MACs, c.ActualMACs)
	}
	if c.Utilization != 0.75 {
		t.Fatalf("utilization = %g", c.Utilization)
	}
	// Weight storage traffic is scaled to actual data: 6*4=24 values.
	wMain := c.PerLevel[0][tensor.Weight]
	if wMain.Tile != 24 {
		t.Fatalf("padded-scaled weight tile = %d, want 24", wMain.Tile)
	}
}

func TestSpatialReuseCollapsesParentReads(t *testing.T) {
	e := mm(t, 2, 4, 4)
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 2}},
		{{Dim: "K", Factor: 4}},
		{{Dim: "C", Factor: 4}},
		nil,
	}}
	// Without input multicast: each of the 4 instances reads separately.
	noReuse := testLevels(4, nil)
	cNo, err := Analyze(noReuse, e, m)
	if err != nil {
		t.Fatal(err)
	}
	// With input multicast: one read serves all 4.
	withReuse := testLevels(4, map[tensor.Kind]bool{tensor.Input: true})
	cYes, err := Analyze(withReuse, e, m)
	if err != nil {
		t.Fatal(err)
	}
	rNo := cNo.PerLevel[0][tensor.Input].Reads
	rYes := cYes.PerLevel[0][tensor.Input].Reads
	if rNo != 4*rYes {
		t.Fatalf("multicast should cut parent reads 4x: %d vs %d", rNo, rYes)
	}
}

func TestOutputSpatialReductionCollapsesUpdates(t *testing.T) {
	// Map reduction dim K across the mesh. With output spatial reuse
	// (wire summing), local updates collapse by the mesh factor.
	e := mm(t, 2, 4, 2)
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 2}, {Dim: "K", Factor: 2}},
		{{Dim: "C", Factor: 4}},
		nil,
		nil,
	}}
	levelsFor := func(reuse map[tensor.Kind]bool) []spec.Level {
		// Outputs kept at main only, so reduction targets main.
		return []spec.Level{
			{Name: "main", Kind: spec.StorageLevel,
				Keeps: map[tensor.Kind]bool{tensor.Input: true, tensor.Weight: true, tensor.Output: true}},
			{Name: "mesh", Kind: spec.SpatialLevel, Mesh: 4, MeshX: 4, MeshY: 1, SpatialReuse: reuse},
			{Name: "local", Kind: spec.StorageLevel,
				Keeps: map[tensor.Kind]bool{tensor.Input: true}},
			{Name: "pe", Kind: spec.ComputeLevel,
				Keeps: map[tensor.Kind]bool{tensor.Weight: true}},
		}
	}
	cNo, err := Analyze(levelsFor(nil), e, m)
	if err != nil {
		t.Fatal(err)
	}
	cYes, err := Analyze(levelsFor(map[tensor.Kind]bool{tensor.Output: true}), e, m)
	if err != nil {
		t.Fatal(err)
	}
	uNo := cNo.PerLevel[0][tensor.Output].Writes
	uYes := cYes.PerLevel[0][tensor.Output].Writes
	if uNo != 4*uYes {
		t.Fatalf("wire reduction should cut output updates 4x: %d vs %d", uNo, uYes)
	}
}

func TestTransitCrossingsDAC(t *testing.T) {
	// DAC (no-coalesce on inputs) between main and the mesh: every input
	// consumption crosses it (no holder below), collapsed by multicast
	// below only when the spatial loop is input-irrelevant and reused.
	levels := []spec.Level{
		{Name: "main", Kind: spec.StorageLevel,
			Keeps: map[tensor.Kind]bool{tensor.Input: true, tensor.Weight: true, tensor.Output: true}},
		{Name: "dac", Kind: spec.TransitLevel,
			Transits: map[tensor.Kind]bool{tensor.Input: true}, CoalesceT: map[tensor.Kind]bool{}},
		{Name: "mesh", Kind: spec.SpatialLevel, Mesh: 4, MeshX: 4, MeshY: 1,
			SpatialReuse: map[tensor.Kind]bool{tensor.Input: true}},
		{Name: "pe", Kind: spec.ComputeLevel,
			Keeps: map[tensor.Kind]bool{tensor.Weight: true}},
	}
	e := mm(t, 2, 4, 4)
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 2}, {Dim: "C", Factor: 4}},
		nil,
		{{Dim: "K", Factor: 4}},
		nil,
	}}
	c, err := Analyze(levels, e, m)
	if err != nil {
		t.Fatal(err)
	}
	// MACs = 32; N spatial is input-irrelevant and multicast: DAC
	// converts = 32/4 = 8 (each input converted once per use).
	dac := c.PerLevel[1][tensor.Input]
	if dac.Crossings != 8 {
		t.Fatalf("dac crossings = %d, want 8", dac.Crossings)
	}
}

func TestCoalescerReducesADCConvertsAboveIt(t *testing.T) {
	// Analog adder (coalesce outputs) above a spatial level mapping the
	// reduction dim K: crossings above the adder are collapsed, below are
	// not.
	mkLevels := func(withCoalescer bool) []spec.Level {
		adder := spec.Level{Name: "adder", Kind: spec.TransitLevel,
			Transits:  map[tensor.Kind]bool{tensor.Output: true},
			CoalesceT: map[tensor.Kind]bool{},
		}
		if withCoalescer {
			adder.CoalesceT[tensor.Output] = true
		}
		return []spec.Level{
			{Name: "main", Kind: spec.StorageLevel,
				Keeps: map[tensor.Kind]bool{tensor.Input: true, tensor.Weight: true, tensor.Output: true}},
			{Name: "adc", Kind: spec.TransitLevel,
				Transits: map[tensor.Kind]bool{tensor.Output: true}, CoalesceT: map[tensor.Kind]bool{}},
			adder,
			{Name: "mesh", Kind: spec.SpatialLevel, Mesh: 4, MeshX: 4, MeshY: 1},
			{Name: "pe", Kind: spec.ComputeLevel,
				Keeps: map[tensor.Kind]bool{tensor.Weight: true}},
		}
	}
	e := mm(t, 2, 4, 2)
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 2}, {Dim: "K", Factor: 2}},
		nil,
		nil,
		{{Dim: "C", Factor: 4}},
		nil,
	}}
	cYes, err := Analyze(mkLevels(true), e, m)
	if err != nil {
		t.Fatal(err)
	}
	cNo, err := Analyze(mkLevels(false), e, m)
	if err != nil {
		t.Fatal(err)
	}
	// The adder itself consumes all partial sums: MACs = 2*2*4 = 16.
	if got := cYes.PerLevel[2][tensor.Output].Crossings; got != 16 {
		t.Fatalf("adder crossings = %d, want 16", got)
	}
	// ADC above the adder: coalesced 16/4=4 vs uncoalesced 16.
	adcYes := cYes.PerLevel[1][tensor.Output].Crossings
	adcNo := cNo.PerLevel[1][tensor.Output].Crossings
	if adcYes != 4 || adcNo != 16 {
		t.Fatalf("adc crossings = %d (coalesced) / %d (not), want 4/16", adcYes, adcNo)
	}
}

func TestMappingString(t *testing.T) {
	m := &Mapping{LevelLoops: [][]Loop{{{Dim: "M", Factor: 4}}, nil}}
	if s := m.String(); s != "L0[M:4]" {
		t.Fatalf("String() = %q", s)
	}
	empty := &Mapping{LevelLoops: [][]Loop{nil, nil}}
	if s := empty.String(); s != "(empty mapping)" {
		t.Fatalf("empty String() = %q", s)
	}
}

// The closed-form parentTraffic must match the brute-force oracle across
// permutations that exercise the irrelevant-run rule.
func TestParentTrafficMatchesOracleOnPermutations(t *testing.T) {
	levels := testLevels(2, map[tensor.Kind]bool{tensor.Input: true})
	e := mm(t, 4, 4, 2)
	// All permutations of M, K at the main level with K split.
	perms := [][]Loop{
		{{Dim: "M", Factor: 4}, {Dim: "C", Factor: 2}},
		{{Dim: "C", Factor: 2}, {Dim: "M", Factor: 4}},
		{{Dim: "M", Factor: 2}, {Dim: "C", Factor: 2}, {Dim: "M", Factor: 2}},
		{{Dim: "C", Factor: 2}, {Dim: "M", Factor: 4}, {Dim: "C", Factor: 1}},
	}
	for pi, perm := range perms {
		m := &Mapping{LevelLoops: [][]Loop{
			perm,
			{{Dim: "K", Factor: 2}},
			{{Dim: "C", Factor: 2}},
			nil,
		}}
		for _, tk := range []tensor.Kind{tensor.Input, tensor.Weight, tensor.Output} {
			for h := 0; h < len(levels); h++ {
				if !levels[h].Keeps[tk] {
					continue
				}
				for b := 0; b <= h; b++ {
					want, err := OracleParentTraffic(levels, e, m, tk, h, b)
					if err != nil {
						t.Fatalf("perm %d %s h=%d b=%d: %v", pi, tk, h, b, err)
					}
					got, err := ParentTrafficClosedForm(levels, e, m, tk, h, b)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("perm %d %s h=%d b=%d: closed=%d oracle=%d",
							pi, tk, h, b, got, want)
					}
				}
			}
		}
	}
}

// Randomized mappings: closed form == oracle for every holder/boundary.
func TestParentTrafficMatchesOracleRandomized(t *testing.T) {
	levels := testLevels(4, map[tensor.Kind]bool{tensor.Input: true, tensor.Output: true})
	e := mm(t, 4, 8, 4)
	rng := rand.New(rand.NewSource(11))
	dims := []string{"M", "C", "K"}
	bounds := map[string]int{"M": 4, "C": 8, "K": 4}
	for trial := 0; trial < 60; trial++ {
		// Random split of each dim across main (temporal), mesh
		// (spatial), local (temporal).
		loops := make([][]Loop, 4)
		spatialBudget := 4
		for _, d := range dims {
			b := bounds[d]
			f1 := divisorOf(rng, b)
			rest := b / f1
			f2 := divisorOf(rng, rest)
			f3 := rest / f2
			if f1 > 1 {
				loops[0] = append(loops[0], Loop{Dim: d, Factor: f1})
			}
			if f2 > 1 && spatialBudget/f2 >= 1 && f2 <= spatialBudget {
				loops[1] = append(loops[1], Loop{Dim: d, Factor: f2})
				spatialBudget /= f2
			} else if f2 > 1 {
				loops[2] = append(loops[2], Loop{Dim: d, Factor: f2})
			}
			if f3 > 1 {
				loops[2] = append(loops[2], Loop{Dim: d, Factor: f3})
			}
		}
		// Shuffle within temporal levels to vary permutations.
		rng.Shuffle(len(loops[0]), func(i, j int) { loops[0][i], loops[0][j] = loops[0][j], loops[0][i] })
		rng.Shuffle(len(loops[2]), func(i, j int) { loops[2][i], loops[2][j] = loops[2][j], loops[2][i] })
		m := &Mapping{LevelLoops: loops}
		if err := Validate(levels, e, m); err != nil {
			t.Fatalf("trial %d: invalid mapping %s: %v", trial, m, err)
		}
		for _, tk := range []tensor.Kind{tensor.Input, tensor.Weight, tensor.Output} {
			for h := 0; h < len(levels); h++ {
				if !levels[h].Keeps[tk] {
					continue
				}
				for b := 0; b <= h; b++ {
					want, err := OracleParentTraffic(levels, e, m, tk, h, b)
					if err != nil {
						t.Fatal(err)
					}
					got, err := ParentTrafficClosedForm(levels, e, m, tk, h, b)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("trial %d mapping %s %s h=%d b=%d: closed=%d oracle=%d",
							trial, m, tk, h, b, got, want)
					}
				}
			}
		}
	}
}

func divisorOf(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 1
	}
	var divs []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	return divs[rng.Intn(len(divs))]
}

func TestOracleErrors(t *testing.T) {
	levels := testLevels(2, nil)
	e := mm(t, 2, 2, 2)
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 2}, {Dim: "C", Factor: 2}},
		{{Dim: "K", Factor: 2}},
		nil,
		nil,
	}}
	if _, err := OracleParentTraffic(levels, e, m, tensor.Weight, 1, 0); err == nil {
		t.Error("want error for non-holder level")
	}
	if _, err := OracleParentTraffic(levels, e, m, tensor.Weight, 3, 5); err == nil {
		t.Error("want error for boundary below holder")
	}
	if _, err := ParentTrafficClosedForm(levels, e, m, tensor.Weight, 1, 0); err == nil {
		t.Error("want error for non-holder level in closed form")
	}
}

func TestConsumptionClosedForm(t *testing.T) {
	levels := testLevels(4, map[tensor.Kind]bool{tensor.Input: true})
	e := mm(t, 2, 4, 4)
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 2}, {Dim: "C", Factor: 4}},
		{{Dim: "K", Factor: 4}},
		nil,
		nil,
	}}
	// Inputs at boundary 2 (inside mesh): MACs=32, N spatial reused and
	// irrelevant is inside boundary 1 but outside boundary 2.
	got, err := ConsumptionClosedForm(levels, e, m, tensor.Input, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("consumption above mesh = %d, want 8", got)
	}
	got, err = ConsumptionClosedForm(levels, e, m, tensor.Input, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Fatalf("consumption below mesh = %d, want 32", got)
	}
}
