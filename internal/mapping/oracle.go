package mapping

import (
	"fmt"

	"repro/internal/spec"
	"repro/internal/tensor"
)

// OracleParentTraffic computes, by literally enumerating the temporal loop
// nest, the padded value count of tensor t crossing the boundary just
// above level b, where h is the first holder of t at or inside b. It is
// the ground-truth oracle for the closed-form parentTraffic: a refill
// happens whenever the tuple of t-relevant temporal loop indices outside h
// changes between consecutive steps, which reproduces the "innermost
// irrelevant run reuses for free, everything further out refetches"
// behavior from first principles.
//
// Exponential in the nest size; intended for tests on small mappings.
func OracleParentTraffic(levels []spec.Level, e *tensor.Einsum, m *Mapping, t tensor.Kind, h, b int) (int64, error) {
	a, err := newAnalyzer(levels, e, m)
	if err != nil {
		return 0, err
	}
	if h < 0 || h >= len(levels) || !levels[h].Keeps[t] {
		return 0, fmt.Errorf("mapping: oracle: level %d does not hold %s", h, t)
	}
	if b < 0 || b > h {
		return 0, fmt.Errorf("mapping: oracle: boundary %d not above holder %d", b, h)
	}

	// Temporal loops in global order (outermost first).
	var tloops []loopRef
	total := int64(1)
	for _, l := range a.loops {
		if !l.spatial {
			tloops = append(tloops, l)
			total *= int64(l.Factor)
		}
	}
	if total > 1<<22 {
		return 0, fmt.Errorf("mapping: oracle: nest too large (%d steps)", total)
	}

	rel := a.relevant[t]
	// relevantOutside[i] marks temporal loops whose index participates in
	// the tile signature: relevant dims at levels outside h.
	relevantOutside := make([]bool, len(tloops))
	for i, l := range tloops {
		relevantOutside[i] = l.level < h && rel[l.Dim]
	}

	idx := make([]int, len(tloops))
	var prev []int
	refills := int64(0)
	for step := int64(0); step < total; step++ {
		sig := make([]int, 0, len(tloops))
		for i := range tloops {
			if relevantOutside[i] {
				sig = append(sig, idx[i])
			}
		}
		if prev == nil || !equalInts(sig, prev) {
			refills++
			prev = sig
		}
		// Advance the odometer: innermost loop varies fastest.
		for i := len(tloops) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < tloops[i].Factor {
				break
			}
			idx[i] = 0
		}
	}

	// Spatial multiplier: distinct parent accesses across the mesh.
	spatialKeys := int64(1)
	for _, l := range a.loops {
		if !l.spatial || l.level >= h {
			continue
		}
		if rel[l.Dim] || !a.reducedAt(t, l.level, b) {
			spatialKeys *= int64(l.Factor)
		}
	}
	return refills * spatialKeys * a.tileVolume(t, h), nil
}

// ParentTrafficClosedForm exposes the analytical parentTraffic for tests.
func ParentTrafficClosedForm(levels []spec.Level, e *tensor.Einsum, m *Mapping, t tensor.Kind, h, b int) (int64, error) {
	a, err := newAnalyzer(levels, e, m)
	if err != nil {
		return 0, err
	}
	if h < 0 || h >= len(levels) || !levels[h].Keeps[t] {
		return 0, fmt.Errorf("mapping: level %d does not hold %s", h, t)
	}
	return a.parentTraffic(t, h, b), nil
}

// ConsumptionClosedForm exposes the analytical consumption for tests.
func ConsumptionClosedForm(levels []spec.Level, e *tensor.Einsum, m *Mapping, t tensor.Kind, b int) (int64, error) {
	a, err := newAnalyzer(levels, e, m)
	if err != nil {
		return 0, err
	}
	return a.consumption(t, b), nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
