// Package mapping represents and analyzes mappings: the temporal and
// spatial scheduling of an einsum workload onto a flattened container-
// hierarchy (paper §II-B "Mapping" and §III-B1's per-component reuse
// model).
//
// A Mapping attaches loops to levels: temporal loops to storage levels
// (they iterate the tiles the level holds) and spatial loops to spatial
// levels (they distribute work across the level's mesh). Analyze computes,
// for every level and tensor, the number of values read, written, and
// crossing the level for a whole layer — honoring each level's reuse
// directives:
//
//   - a storage level retains its tile, so loops immediately outside it
//     that are irrelevant to a tensor reuse the tile for free;
//   - spatially reused tensors are multicast (inputs/weights) or reduced
//     (outputs) across a mesh, collapsing parent traffic;
//   - coalescing transit components (adders/accumulators) sum output
//     partial sums flowing upward, reducing traffic above them;
//   - no-coalesce transit components (DACs, ADCs) pay one action per value
//     crossing them.
//
// The closed-form analysis is validated against a brute-force loop-nest
// interpreter (oracle.go) that literally enumerates iterations.
package mapping

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/spec"
	"repro/internal/tensor"
)

// Loop is one loop of a mapping: a dimension iterated with the given
// factor (trip count).
type Loop struct {
	Dim    string
	Factor int
}

// Mapping assigns loops to the flattened levels of a hierarchy.
// LevelLoops is parallel to the level list (outermost level first); loops
// within a level are ordered outermost first.
type Mapping struct {
	LevelLoops [][]Loop
}

// String renders the mapping compactly, e.g. "L0[K:4 C:2] L3[P:8]".
func (m *Mapping) String() string {
	var b strings.Builder
	for i, loops := range m.LevelLoops {
		if len(loops) == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "L%d[", i)
		for j, l := range loops {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s:%d", l.Dim, l.Factor)
		}
		b.WriteString("]")
	}
	if b.Len() == 0 {
		return "(empty mapping)"
	}
	return b.String()
}

// TensorCounts aggregates per-layer access counts for one tensor at one
// level. All counts are in value units (tensor elements), totaled across
// all spatial instances.
type TensorCounts struct {
	// Tile is the per-instance tile size held at a storage level
	// (utilization-scaled).
	Tile int64
	// Reads counts values read from this level (serving children for
	// inputs/weights; read-modify-write and drain reads for outputs).
	Reads int64
	// Writes counts values written into this level (fills from the parent
	// for inputs/weights; accumulation writes for outputs).
	Writes int64
	// Crossings counts values passing a transit level (one component
	// action each).
	Crossings int64
}

// Counts is the result of analyzing one (workload, mapping) pair.
type Counts struct {
	// PerLevel is parallel to the level list.
	PerLevel []map[tensor.Kind]*TensorCounts
	// MACs is the padded compute count (product of all loop factors): the
	// number of MAC positions the hardware activates.
	MACs int64
	// ActualMACs is the workload's true MAC count.
	ActualMACs int64
	// Cycles is the number of sequential steps (product of temporal
	// factors).
	Cycles int64
	// Instances is the total spatial fan-out at the compute level.
	Instances int64
	// MappedOutside[i] is the product of spatial loop factors mapped at
	// levels outside level i: how many of level i's physical instances
	// the mapping actually uses. Hardware often activates all physical
	// instances (idle columns still strobe their ADCs), so the energy
	// model charges the unmapped remainder at zero-value energy.
	MappedOutside []int64
	// Utilization is ActualMACs / MACs.
	Utilization float64
}

// loopRef is one loop in global nest order with its level context.
type loopRef struct {
	Loop
	level   int  // index into the flattened level list
	spatial bool // attached to a spatial level
}

// analyzer holds the prepared state shared by the count computations.
type analyzer struct {
	levels []spec.Level
	e      *tensor.Einsum
	// loops in global order, outermost first.
	loops []loopRef
	// relevant[t][dim] reports whether dim appears in t's projection.
	relevant map[tensor.Kind]map[string]bool
	// spaces caches the einsum data spaces by kind.
	spaces map[tensor.Kind]tensor.DataSpace
	// paddedBound is the per-dim product of factors.
	paddedBound map[string]int
	macsPadded  int64
	cycles      int64
	instances   int64
}

// Validate checks a mapping against a hierarchy and workload: loops may
// only appear on levels that support them, spatial factors must fit the
// mesh, and every dimension's factor product must cover its bound.
func Validate(levels []spec.Level, e *tensor.Einsum, m *Mapping) error {
	if m == nil {
		return errors.New("mapping: nil mapping")
	}
	if len(m.LevelLoops) != len(levels) {
		return fmt.Errorf("mapping: %d loop lists for %d levels", len(m.LevelLoops), len(levels))
	}
	if err := e.Validate(); err != nil {
		return err
	}
	known := make(map[string]bool, len(e.Dims))
	for _, d := range e.Dims {
		known[d.Name] = true
	}
	product := make(map[string]int, len(e.Dims))
	for _, d := range e.Dims {
		product[d.Name] = 1
	}
	for i, loops := range m.LevelLoops {
		lv := &levels[i]
		spatialProduct := 1
		for _, l := range loops {
			if !known[l.Dim] {
				return fmt.Errorf("mapping: level %d (%s) loops over unknown dim %q", i, lv.Name, l.Dim)
			}
			if l.Factor <= 0 {
				return fmt.Errorf("mapping: level %d (%s) dim %s has factor %d", i, lv.Name, l.Dim, l.Factor)
			}
			product[l.Dim] *= l.Factor
			switch lv.Kind {
			case spec.SpatialLevel:
				spatialProduct *= l.Factor
			case spec.StorageLevel:
				// temporal loop, fine
			default:
				return fmt.Errorf("mapping: level %d (%s) is %s and cannot carry loops", i, lv.Name, lv.Kind)
			}
		}
		if lv.Kind == spec.SpatialLevel && spatialProduct > lv.Mesh {
			return fmt.Errorf("mapping: level %d (%s) spatial factors %d exceed mesh %d", i, lv.Name, spatialProduct, lv.Mesh)
		}
	}
	for _, d := range e.Dims {
		if product[d.Name] < d.Bound {
			return fmt.Errorf("mapping: dim %s factors cover %d < bound %d", d.Name, product[d.Name], d.Bound)
		}
	}
	return nil
}

// newAnalyzer prepares the shared analysis state.
func newAnalyzer(levels []spec.Level, e *tensor.Einsum, m *Mapping) (*analyzer, error) {
	if err := Validate(levels, e, m); err != nil {
		return nil, err
	}
	a := &analyzer{
		levels:      levels,
		e:           e,
		relevant:    make(map[tensor.Kind]map[string]bool, 3),
		spaces:      make(map[tensor.Kind]tensor.DataSpace, 3),
		paddedBound: make(map[string]int, len(e.Dims)),
		macsPadded:  1,
		cycles:      1,
		instances:   1,
	}
	for _, d := range e.Dims {
		a.paddedBound[d.Name] = 1
	}
	for i, loops := range m.LevelLoops {
		sp := levels[i].Kind == spec.SpatialLevel
		for _, l := range loops {
			a.loops = append(a.loops, loopRef{Loop: l, level: i, spatial: sp})
			a.paddedBound[l.Dim] *= l.Factor
			a.macsPadded *= int64(l.Factor)
			if sp {
				a.instances *= int64(l.Factor)
			} else {
				a.cycles *= int64(l.Factor)
			}
		}
	}
	for _, s := range e.Spaces {
		a.spaces[s.Kind] = s
		rel := make(map[string]bool)
		for _, ax := range s.Axes {
			for _, c := range ax {
				rel[c.Dim] = true
			}
		}
		a.relevant[s.Kind] = rel
	}
	return a, nil
}

// holdersOf returns level indices storing t, ordered outermost first.
func (a *analyzer) holdersOf(t tensor.Kind) []int {
	var out []int
	for i := range a.levels {
		if a.levels[i].Keeps[t] {
			out = append(out, i)
		}
	}
	return out
}

// tileDims returns the per-dim extents of the tile held at level h: the
// product of factors of loops attached to levels at or inside h.
func (a *analyzer) tileDims(h int) map[string]int {
	dims := make(map[string]int, len(a.paddedBound))
	for d := range a.paddedBound {
		dims[d] = 1
	}
	for _, l := range a.loops {
		if l.level >= h {
			dims[l.Dim] *= l.Factor
		}
	}
	return dims
}

// tileVolume returns the padded tile volume of t at level h.
func (a *analyzer) tileVolume(t tensor.Kind, h int) int64 {
	return a.spaces[t].TileVolume(a.tileDims(h))
}

// reducedAt reports whether the spatial loop at level j is collapsed for
// tensor t when observed from the boundary just above level b (b <= j):
// either the spatial level declares reuse for t, or (outputs only) a
// coalescing transit sits between the boundary and the spatial level.
func (a *analyzer) reducedAt(t tensor.Kind, j, b int) bool {
	if a.levels[j].SpatialReuse[t] {
		return true
	}
	if t != tensor.Output {
		return false
	}
	for c := b; c < j; c++ {
		if a.levels[c].Kind == spec.TransitLevel && a.levels[c].CoalesceT[t] {
			return true
		}
	}
	return false
}

// parentTraffic returns the per-layer value count of tensor t crossing the
// boundary just above level b, where h (h >= b) is the first holder of t
// at or inside b: tile volume times the refetch multiplier over all loops
// outside h. The temporal free-reuse run is broken by the first t-relevant
// temporal loop encountered moving outward from h.
func (a *analyzer) parentTraffic(t tensor.Kind, h, b int) int64 {
	tile := a.tileVolume(t, h)
	mult := int64(1)
	runBroken := false
	rel := a.relevant[t]
	// Scan loops outside h from innermost outward.
	for i := len(a.loops) - 1; i >= 0; i-- {
		l := a.loops[i]
		if l.level >= h {
			continue
		}
		if l.spatial {
			switch {
			case rel[l.Dim]:
				mult *= int64(l.Factor) // unicast: distinct data per instance
			case a.reducedAt(t, l.level, b):
				// multicast/reduced: one parent access serves the mesh
			default:
				mult *= int64(l.Factor)
			}
			continue
		}
		if rel[l.Dim] {
			mult *= int64(l.Factor)
			runBroken = true
		} else if runBroken {
			mult *= int64(l.Factor)
		}
	}
	return tile * mult
}

// consumption returns the per-layer value count of tensor t crossing the
// boundary just above level b when no holder of t exists at or inside b:
// every MAC consumes one value, collapsed by reused spatial loops inside
// the boundary.
func (a *analyzer) consumption(t tensor.Kind, b int) int64 {
	n := a.macsPadded
	for _, l := range a.loops {
		if !l.spatial || l.level < b {
			continue
		}
		if !a.relevant[t][l.Dim] && a.reducedAt(t, l.level, b) {
			n /= int64(l.Factor)
		}
	}
	return n
}

// crossings returns the per-layer value count of tensor t crossing the
// boundary just above level b.
func (a *analyzer) crossings(t tensor.Kind, b int) int64 {
	for h := b; h < len(a.levels); h++ {
		if a.levels[h].Keeps[t] {
			return a.parentTraffic(t, h, b)
		}
	}
	return a.consumption(t, b)
}

// multicastCopies returns the number of instance copies receiving each
// multicast parent access of tensor t into holder h: the product of reused
// irrelevant spatial factors between h and its parent holder (or the top).
func (a *analyzer) multicastCopies(t tensor.Kind, h int) int64 {
	parent := -1
	for i := h - 1; i >= 0; i-- {
		if a.levels[i].Keeps[t] {
			parent = i
			break
		}
	}
	copies := int64(1)
	for _, l := range a.loops {
		if !l.spatial || l.level >= h || l.level <= parent {
			continue
		}
		if !a.relevant[t][l.Dim] && a.reducedAt(t, l.level, h) {
			copies *= int64(l.Factor)
		}
	}
	return copies
}

// utilizationOf returns actual/padded volume for tensor t, used to scale
// storage traffic to the data that actually exists.
func (a *analyzer) utilizationOf(t tensor.Kind) float64 {
	full := make(map[string]int, len(a.paddedBound))
	for _, d := range a.e.Dims {
		full[d.Name] = d.Bound
	}
	actual := a.spaces[t].TileVolume(full)
	padded := a.spaces[t].TileVolume(a.paddedBound)
	if padded == 0 {
		return 1
	}
	return float64(actual) / float64(padded)
}

// Analyze computes per-level, per-tensor access counts for the mapping.
func Analyze(levels []spec.Level, e *tensor.Einsum, m *Mapping) (*Counts, error) {
	a, err := newAnalyzer(levels, e, m)
	if err != nil {
		return nil, err
	}
	c := &Counts{
		PerLevel:      make([]map[tensor.Kind]*TensorCounts, len(levels)),
		MACs:          a.macsPadded,
		ActualMACs:    e.MACs(),
		Cycles:        a.cycles,
		Instances:     a.instances,
		MappedOutside: make([]int64, len(levels)),
		Utilization:   float64(e.MACs()) / float64(a.macsPadded),
	}
	spatialAt := make([]int64, len(levels))
	for i := range spatialAt {
		spatialAt[i] = 1
	}
	for _, l := range a.loops {
		if l.spatial {
			spatialAt[l.level] *= int64(l.Factor)
		}
	}
	mapped := int64(1)
	for i := range levels {
		c.MappedOutside[i] = mapped
		mapped *= spatialAt[i]
	}
	for i := range c.PerLevel {
		c.PerLevel[i] = make(map[tensor.Kind]*TensorCounts)
	}
	get := func(level int, t tensor.Kind) *TensorCounts {
		tc := c.PerLevel[level][t]
		if tc == nil {
			tc = &TensorCounts{}
			c.PerLevel[level][t] = tc
		}
		return tc
	}

	for _, t := range []tensor.Kind{tensor.Input, tensor.Weight, tensor.Output} {
		if _, ok := a.spaces[t]; !ok {
			continue
		}
		holders := a.holdersOf(t)
		util := a.utilizationOf(t)
		scale := func(v int64) int64 {
			s := int64(float64(v)*util + 0.5)
			if s < 1 && v > 0 {
				s = 1
			}
			return s
		}
		if t != tensor.Output {
			// Inputs and weights flow downward: parent reads fill children.
			for idx, h := range holders {
				tc := get(h, t)
				tc.Tile = scale(a.tileVolume(t, h))
				if idx == 0 {
					// Top holder: data arrives once.
					tc.Writes += tc.Tile
				}
				// Serve the next-inner holder, or compute directly.
				if idx+1 < len(holders) {
					inner := holders[idx+1]
					pr := scale(a.parentTraffic(t, inner, inner))
					tc.Reads += pr
					innerTC := get(inner, t)
					innerTC.Writes += pr * a.multicastCopies(t, inner)
				} else {
					tc.Reads += a.consumption(t, h+1)
				}
			}
		} else {
			// Outputs flow upward: compute updates the innermost holder,
			// which drains toward the top.
			for idx := len(holders) - 1; idx >= 0; idx-- {
				h := holders[idx]
				tc := get(h, t)
				tc.Tile = scale(a.tileVolume(t, h))
				if idx == len(holders)-1 {
					// Innermost holder: read-modify-write per update.
					updates := a.consumption(t, h+1)
					tc.Writes += updates
					tc.Reads += updates
				}
				if idx > 0 {
					// Drain to the next-outer holder.
					outer := holders[idx-1]
					drains := scale(a.parentTraffic(t, h, h))
					tc.Reads += drains
					outerTC := get(outer, t)
					outerTC.Writes += drains
					if idx-1 > 0 {
						// Intermediate holders accumulate (RMW).
						outerTC.Reads += drains
					}
				}
			}
		}
		// Transit crossings for every transit level processing t.
		for i := range levels {
			if levels[i].Kind == spec.TransitLevel && levels[i].Transits[t] {
				get(i, t).Crossings = a.crossings(t, i+1)
			}
		}
	}
	return c, nil
}
