package mapping

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/tensor"
)

// Conv-shaped workloads exercise the halo tile math end to end.
func TestAnalyzeConvHalos(t *testing.T) {
	levels := testLevels(4, map[tensor.Kind]bool{tensor.Input: true})
	e, err := tensor.Conv2D("c", 1, 4, 2, 4, 4, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "P", Factor: 4}, {Dim: "Q", Factor: 4}, {Dim: "R", Factor: 3}, {Dim: "S", Factor: 3}},
		{{Dim: "K", Factor: 4}},
		{{Dim: "C", Factor: 2}},
		nil,
	}}
	c, err := Analyze(levels, e, m)
	if err != nil {
		t.Fatal(err)
	}
	if c.Utilization != 1 {
		t.Fatalf("utilization = %g", c.Utilization)
	}
	// Local input tile = C tile only: 2 channels x 1x1 window = 2.
	iLocal := c.PerLevel[2][tensor.Input]
	if iLocal.Tile != 2 {
		t.Fatalf("local input tile = %d", iLocal.Tile)
	}
	// Weight volume 4*2*3*3 = 72 arrives once at main.
	wMain := c.PerLevel[0][tensor.Weight]
	if wMain.Tile != 72 || wMain.Writes != 72 {
		t.Fatalf("main weights: %+v", wMain)
	}
	// Output volume 4*4*4 = 64 written once at main.
	oMain := c.PerLevel[0][tensor.Output]
	if oMain.Writes != 64 {
		t.Fatalf("main output writes = %d", oMain.Writes)
	}
}

func TestMappedOutside(t *testing.T) {
	levels := testLevels(4, nil)
	e := mm(t, 4, 8, 4)
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 4}, {Dim: "C", Factor: 8}},
		{{Dim: "K", Factor: 2}}, // only 2 of 4 mesh instances used
		{{Dim: "K", Factor: 2}},
		nil,
	}}
	c, err := Analyze(levels, e, m)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 1, 2, 2}
	for i, w := range want {
		if c.MappedOutside[i] != w {
			t.Fatalf("MappedOutside[%d] = %d, want %d (%v)", i, c.MappedOutside[i], w, c.MappedOutside)
		}
	}
}

// Weight-stationarity: with spatial reduction dims and only batch loops
// temporal, weights fill exactly once.
func TestWeightStationaryFillsOnce(t *testing.T) {
	levels := []spec.Level{
		{Name: "main", Kind: spec.StorageLevel,
			Keeps: map[tensor.Kind]bool{tensor.Input: true, tensor.Weight: true, tensor.Output: true}},
		{Name: "mesh", Kind: spec.SpatialLevel, Mesh: 32, MeshX: 32, MeshY: 1},
		{Name: "pe", Kind: spec.ComputeLevel,
			Keeps: map[tensor.Kind]bool{tensor.Weight: true}},
	}
	e := mm(t, 64, 8, 4) // M=64 batch, C=8, K=4
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 64}},
		{{Dim: "C", Factor: 8}, {Dim: "K", Factor: 4}},
		nil,
	}}
	c, err := Analyze(levels, e, m)
	if err != nil {
		t.Fatal(err)
	}
	// All 32 weights fill once: M is irrelevant and sits in the free run.
	wPE := c.PerLevel[2][tensor.Weight]
	if wPE.Writes != 32 {
		t.Fatalf("weight fills = %d, want 32 (stationary)", wPE.Writes)
	}
}

// An einsum with only some tensors present (no weights) must not panic.
func TestAnalyzeTwoTensorEinsum(t *testing.T) {
	e := &tensor.Einsum{
		Name: "reduce",
		Dims: []tensor.Dim{{Name: "M", Bound: 4}, {Name: "C", Bound: 8}},
		Spaces: []tensor.DataSpace{
			{Name: "Inputs", Kind: tensor.Input,
				Axes: []tensor.Axis{{{Dim: "M", Coeff: 1}}, {{Dim: "C", Coeff: 1}}}},
			{Name: "Outputs", Kind: tensor.Output,
				Axes: []tensor.Axis{{{Dim: "M", Coeff: 1}}}},
		},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	levels := testLevels(4, nil)
	m := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 4}},
		{{Dim: "C", Factor: 4}},
		{{Dim: "C", Factor: 2}},
		nil,
	}}
	c, err := Analyze(levels, e, m)
	if err != nil {
		t.Fatal(err)
	}
	if c.MACs != 32 {
		t.Fatalf("MACs = %d", c.MACs)
	}
	if _, ok := c.PerLevel[0][tensor.Weight]; ok {
		t.Fatal("phantom weight counts for weightless einsum")
	}
}

// Factor-1 loops are harmless no-ops.
func TestFactorOneLoops(t *testing.T) {
	levels := testLevels(4, nil)
	e := mm(t, 2, 2, 2)
	m1 := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 2}, {Dim: "C", Factor: 2}, {Dim: "K", Factor: 2}},
		nil, nil, nil,
	}}
	m2 := &Mapping{LevelLoops: [][]Loop{
		{{Dim: "M", Factor: 2}, {Dim: "K", Factor: 1}, {Dim: "C", Factor: 2}, {Dim: "K", Factor: 2}},
		{{Dim: "M", Factor: 1}},
		{{Dim: "C", Factor: 1}},
		nil,
	}}
	c1, err := Analyze(levels, e, m1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Analyze(levels, e, m2)
	if err != nil {
		t.Fatal(err)
	}
	if c1.MACs != c2.MACs || c1.Cycles != c2.Cycles {
		t.Fatalf("factor-1 loops changed totals: %+v vs %+v", c1, c2)
	}
	for _, tk := range []tensor.Kind{tensor.Input, tensor.Weight, tensor.Output} {
		a := c1.PerLevel[0][tk]
		b := c2.PerLevel[0][tk]
		if a.Reads != b.Reads || a.Writes != b.Writes {
			t.Fatalf("%s: factor-1 loops changed counts: %+v vs %+v", tk, a, b)
		}
	}
}
