package enc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

func TestTwosComplement(t *testing.T) {
	e, err := TwosComplement(4)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int]int{-8: 8, -1: 15, 0: 0, 7: 7}
	for v, want := range cases {
		got, err := e.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != want {
			t.Errorf("tc(%d) = %v, want [%d]", v, got, want)
		}
	}
	if _, err := e.Encode(8); err == nil {
		t.Fatal("want range error")
	}
	if _, err := e.Encode(-9); err == nil {
		t.Fatal("want range error")
	}
}

func TestOffset(t *testing.T) {
	e, err := Offset(4)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := e.Encode(-8)
	if got[0] != 0 {
		t.Errorf("offset(-8) = %d, want 0", got[0])
	}
	got, _ = e.Encode(7)
	if got[0] != 15 {
		t.Errorf("offset(7) = %d, want 15", got[0])
	}
	got, _ = e.Encode(0)
	if got[0] != 8 {
		t.Errorf("offset(0) = %d, want 8", got[0])
	}
}

func TestDifferentialPreservesSparsityPerRail(t *testing.T) {
	e, err := Differential(4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rails() != 2 {
		t.Fatalf("rails = %d", e.Rails())
	}
	got, _ := e.Encode(-3)
	if got[0] != 0 || got[1] != 3 {
		t.Errorf("diff(-3) = %v", got)
	}
	got, _ = e.Encode(5)
	if got[0] != 5 || got[1] != 0 {
		t.Errorf("diff(5) = %v", got)
	}
	// A zero-heavy symmetric PMF keeps each rail mostly zero under
	// differential, but offset moves all that mass to mid-scale.
	p, err := dist.FromPoints([]dist.Point{{Value: -2, Prob: 0.1}, {Value: 0, Prob: 0.8}, {Value: 2, Prob: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	rails, err := e.TransformPMF(p)
	if err != nil {
		t.Fatal(err)
	}
	if z := rails[0].ProbZero(); math.Abs(z-0.9) > 1e-9 {
		t.Errorf("positive rail P0 = %g, want 0.9", z)
	}
	off, _ := Offset(4)
	orails, err := off.TransformPMF(p)
	if err != nil {
		t.Fatal(err)
	}
	if z := orails[0].ProbZero(); z != 0 {
		t.Errorf("offset rail should have no zeros, P0 = %g", z)
	}
	if m := orails[0].Mean(); math.Abs(m-8) > 1e-9 {
		t.Errorf("offset rail mean = %g, want 8", m)
	}
}

func TestXNOR(t *testing.T) {
	e, err := XNOR()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := e.Encode(0)
	if got[0] != 1 {
		t.Errorf("xnor(0) = %d, want 1", got[0])
	}
	got, _ = e.Encode(-1)
	if got[0] != 0 {
		t.Errorf("xnor(-1) = %d, want 0", got[0])
	}
}

func TestMagnitude(t *testing.T) {
	e, err := Magnitude(4)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := e.Encode(-7)
	if got[0] != 7 {
		t.Errorf("mag(-7) = %d", got[0])
	}
}

func TestUnsigned(t *testing.T) {
	e, err := Unsigned(8)
	if err != nil {
		t.Fatal(err)
	}
	if e.Signed() {
		t.Fatal("unsigned encoding reports signed")
	}
	if _, err := e.Encode(-1); err == nil {
		t.Fatal("want range error for negative input")
	}
	got, _ := e.Encode(255)
	if got[0] != 255 {
		t.Errorf("unsigned(255) = %d", got[0])
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"unsigned", "twos-complement", "offset", "differential", "xnor", "magnitude"} {
		e, err := ByName(name, 4)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if e.Name() != name {
			t.Errorf("name %q != %q", e.Name(), name)
		}
	}
	if _, err := ByName("nope", 4); err == nil {
		t.Fatal("want error for unknown encoding")
	}
}

func TestEncodingBitsErrors(t *testing.T) {
	for _, f := range []func(int) (*Encoding, error){Unsigned, TwosComplement, Offset, Differential, Magnitude} {
		if _, err := f(0); err == nil {
			t.Error("want error for 0 bits")
		}
		if _, err := f(17); err == nil {
			t.Error("want error for 17 bits")
		}
	}
}

func TestTransformPMFRejectsOutOfRange(t *testing.T) {
	e, _ := TwosComplement(4)
	p, _ := dist.FromPoints([]dist.Point{{Value: 100, Prob: 1}})
	if _, err := e.TransformPMF(p); err == nil {
		t.Fatal("want error for out-of-range PMF value")
	}
	p2, _ := dist.FromPoints([]dist.Point{{Value: 0.5, Prob: 1}})
	if _, err := e.TransformPMF(p2); err == nil {
		t.Fatal("want error for non-integer PMF value")
	}
}

func TestSlicing(t *testing.T) {
	s, err := NewSlicing(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSlices() != 4 {
		t.Fatalf("slices = %d", s.NumSlices())
	}
	v := 0b10110100
	want := []int{0b00, 0b01, 0b11, 0b10}
	for i, w := range want {
		if got := s.SliceValue(v, i); got != w {
			t.Errorf("slice %d = %b, want %b", i, got, w)
		}
	}
	if s.SliceWeight(2) != 16 {
		t.Fatalf("weight of slice 2 = %d", s.SliceWeight(2))
	}
}

func TestSlicingUneven(t *testing.T) {
	s, err := NewSlicing(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSlices() != 3 {
		t.Fatalf("slices = %d", s.NumSlices())
	}
	// Top slice is only 1 bit wide.
	if got := s.SliceValue(0b1111111, 2); got != 1 {
		t.Fatalf("top slice = %d, want 1", got)
	}
}

func TestSlicingErrors(t *testing.T) {
	if _, err := NewSlicing(0, 1); err == nil {
		t.Error("want error for 0 total bits")
	}
	if _, err := NewSlicing(8, 0); err == nil {
		t.Error("want error for 0 slice bits")
	}
	if _, err := NewSlicing(8, 9); err == nil {
		t.Error("want error for slice > total")
	}
}

func TestSlicePMF(t *testing.T) {
	s, _ := NewSlicing(4, 2)
	p, _ := dist.UniformInts(0, 15)
	for i := 0; i < 2; i++ {
		sp, err := s.SlicePMF(p, i)
		if err != nil {
			t.Fatal(err)
		}
		// Each 2-bit slice of a uniform nibble is uniform over 0..3.
		for v := 0; v < 4; v++ {
			if got := sp.ProbAt(float64(v)); math.Abs(got-0.25) > 1e-9 {
				t.Errorf("slice %d P(%d) = %g", i, v, got)
			}
		}
	}
	if _, err := s.SlicePMF(p, 5); err == nil {
		t.Fatal("want error for slice index out of range")
	}
	neg, _ := dist.FromPoints([]dist.Point{{Value: -1, Prob: 1}})
	if _, err := s.SlicePMF(neg, 0); err == nil {
		t.Fatal("want error for negative rail value")
	}
}

func TestAverageSlicePMF(t *testing.T) {
	s, _ := NewSlicing(4, 2)
	p, _ := dist.UniformInts(0, 15)
	avg, err := s.AverageSlicePMF(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.Mean()-1.5) > 1e-9 {
		t.Fatalf("average slice mean = %g, want 1.5", avg.Mean())
	}
}

// Property: every encoding round-trips total value. For single-rail
// unsigned-reconstructible encodings, check algebraic reconstruction; for
// differential, pos - neg == v; slices recompose via positional weights.
func TestQuickEncodingsReconstruct(t *testing.T) {
	f := func(raw int8) bool {
		v := int(raw) % 8 // 4-bit signed range
		if v > 7 {
			v = 7
		}
		off, _ := Offset(4)
		o, err := off.Encode(v)
		if err != nil || o[0]-8 != v {
			return false
		}
		diff, _ := Differential(4)
		d, err := diff.Encode(v)
		if err != nil || d[0]-d[1] != v {
			return false
		}
		mag, _ := Magnitude(4)
		m, err := mag.Encode(v)
		if err != nil {
			return false
		}
		av := v
		if av < 0 {
			av = -av
		}
		return m[0] == av
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSlicesRecompose(t *testing.T) {
	f := func(raw uint16, sb uint8) bool {
		v := int(raw)
		sliceBits := int(sb)%16 + 1
		s, err := NewSlicing(16, sliceBits)
		if err != nil {
			return false
		}
		total := int64(0)
		for i := 0; i < s.NumSlices(); i++ {
			total += int64(s.SliceValue(v, i)) * s.SliceWeight(i)
		}
		return total == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TransformPMF conserves probability mass and matches per-value
// encoding on every support point.
func TestQuickTransformPMFMatchesEncode(t *testing.T) {
	f := func(seed int64) bool {
		p, err := dist.UniformInts(-8, 7)
		if err != nil {
			return false
		}
		e, _ := Differential(4)
		rails, err := e.TransformPMF(p)
		if err != nil {
			return false
		}
		for _, r := range rails {
			if r.Validate() != nil {
				return false
			}
		}
		// E[pos] - E[neg] must equal E[v].
		return math.Abs((rails[0].Mean()-rails[1].Mean())-p.Mean()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
