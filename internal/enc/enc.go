// Package enc implements hardware data representations: operand encodings
// (how signed operand levels become the non-negative rail values circuits
// propagate) and bit slicing (how encoded values are partitioned across
// devices and timesteps). These are the "Representation" layer of the
// paper's data-value-dependence pipeline (§II-D): the same workload tensor
// looks different to a DAC depending on whether it is offset-, differential-,
// XNOR-, or magnitude-encoded, and that difference changes energy by >2.5×
// (Fig. 4).
//
// Every encoding operates on integer operand levels and also transforms
// PMFs, so the statistical model and the value-level simulator share one
// definition.
package enc

import (
	"fmt"

	"repro/internal/dist"
)

// Encoding maps operand levels to one or more non-negative rail values.
// Rails are the physical carriers: a differential encoding drives two
// wires/devices per operand, offset and two's-complement drive one.
type Encoding struct {
	name   string
	bits   int  // bits per rail
	signed bool // whether signed operand levels are accepted
	rails  int
	encode func(v int) []int
}

// Name returns the encoding's canonical name.
func (e *Encoding) Name() string { return e.name }

// Bits returns the number of bits per rail.
func (e *Encoding) Bits() int { return e.bits }

// Rails returns the number of physical rails per operand.
func (e *Encoding) Rails() int { return e.rails }

// Signed reports whether the encoding accepts signed operand levels.
func (e *Encoding) Signed() bool { return e.signed }

// Encode maps an operand level to its rail values. Levels outside the
// representable range are an error.
func (e *Encoding) Encode(v int) ([]int, error) {
	lo, hi := e.Range()
	if v < lo || v > hi {
		return nil, fmt.Errorf("enc: %s cannot encode %d (range [%d, %d])", e.name, v, lo, hi)
	}
	return e.encode(v), nil
}

// Range returns the [lo, hi] operand levels the encoding accepts.
func (e *Encoding) Range() (lo, hi int) {
	if e.signed {
		half := 1 << uint(e.bits-1)
		return -half, half - 1
	}
	return 0, 1<<uint(e.bits) - 1
}

// TransformPMF returns the PMF of each rail's value given the operand PMF.
// Operand values outside the encodable range are an error.
func (e *Encoding) TransformPMF(p *dist.PMF) ([]*dist.PMF, error) {
	lo, hi := e.Range()
	railPts := make([][]dist.Point, e.rails)
	for _, pt := range p.Points() {
		v := int(pt.Value)
		if float64(v) != pt.Value || v < lo || v > hi {
			return nil, fmt.Errorf("enc: %s cannot encode PMF value %g (range [%d, %d])", e.name, pt.Value, lo, hi)
		}
		rv := e.encode(v)
		for r := 0; r < e.rails; r++ {
			railPts[r] = append(railPts[r], dist.Point{Value: float64(rv[r]), Prob: pt.Prob})
		}
	}
	out := make([]*dist.PMF, e.rails)
	for r := range out {
		pm, err := dist.FromPoints(railPts[r])
		if err != nil {
			return nil, fmt.Errorf("enc: %s rail %d: %w", e.name, r, err)
		}
		out[r] = pm
	}
	return out, nil
}

func checkBits(name string, bits int) error {
	if bits <= 0 || bits > 16 {
		return fmt.Errorf("enc: %s bits %d out of [1,16]", name, bits)
	}
	return nil
}

// Unsigned returns the identity encoding for already non-negative levels
// (e.g. post-ReLU activations presented directly to a DAC).
func Unsigned(bits int) (*Encoding, error) {
	if err := checkBits("unsigned", bits); err != nil {
		return nil, err
	}
	return &Encoding{
		name: "unsigned", bits: bits, signed: false, rails: 1,
		encode: func(v int) []int { return []int{v} },
	}, nil
}

// TwosComplement returns the two's-complement encoding: signed level v maps
// to its unsigned bit pattern v mod 2^bits on a single rail.
func TwosComplement(bits int) (*Encoding, error) {
	if err := checkBits("twos-complement", bits); err != nil {
		return nil, err
	}
	full := 1 << uint(bits)
	return &Encoding{
		name: "twos-complement", bits: bits, signed: true, rails: 1,
		encode: func(v int) []int { return []int{(v + full) & (full - 1)} },
	}, nil
}

// Offset returns the offset (biased) encoding used by ISAAC-style macros:
// signed level v maps to v + 2^(bits-1) on a single rail. The bias is
// subtracted digitally after accumulation.
func Offset(bits int) (*Encoding, error) {
	if err := checkBits("offset", bits); err != nil {
		return nil, err
	}
	half := 1 << uint(bits-1)
	return &Encoding{
		name: "offset", bits: bits, signed: true, rails: 1,
		encode: func(v int) []int { return []int{v + half} },
	}, nil
}

// Differential returns the differential encoding: signed level v maps to a
// positive rail max(v, 0) and a negative rail max(-v, 0). Exactly one rail
// is nonzero for nonzero operands, which preserves sparsity per rail — the
// property that makes differential cheap for sparse unsigned workloads in
// Fig. 4.
func Differential(bits int) (*Encoding, error) {
	if err := checkBits("differential", bits); err != nil {
		return nil, err
	}
	return &Encoding{
		name: "differential", bits: bits, signed: true, rails: 2,
		encode: func(v int) []int {
			if v >= 0 {
				return []int{v, 0}
			}
			return []int{0, -v}
		},
	}, nil
}

// XNOR returns the binary ±1 encoding used by XNOR-net style macros:
// level -1 maps to rail value 0 and level +1 (encoded as level 0... hi) —
// concretely, any level >= 0 maps to 1 and any level < 0 maps to 0 on a
// single 1-bit rail.
func XNOR() (*Encoding, error) {
	return &Encoding{
		name: "xnor", bits: 1, signed: true, rails: 1,
		encode: func(v int) []int {
			if v >= 0 {
				return []int{1}
			}
			return []int{0}
		},
	}, nil
}

// Magnitude returns the magnitude-only encoding: |v| on one rail; the sign
// is tracked digitally (FORMS-style polarized arrays).
func Magnitude(bits int) (*Encoding, error) {
	if err := checkBits("magnitude", bits); err != nil {
		return nil, err
	}
	return &Encoding{
		name: "magnitude", bits: bits, signed: true, rails: 1,
		encode: func(v int) []int {
			if v < 0 {
				v = -v
			}
			return []int{v}
		},
	}, nil
}

// ByName constructs an encoding from its canonical name.
func ByName(name string, bits int) (*Encoding, error) {
	switch name {
	case "unsigned":
		return Unsigned(bits)
	case "twos-complement":
		return TwosComplement(bits)
	case "offset":
		return Offset(bits)
	case "differential":
		return Differential(bits)
	case "xnor":
		return XNOR()
	case "magnitude":
		return Magnitude(bits)
	}
	return nil, fmt.Errorf("enc: unknown encoding %q", name)
}

// Slicing partitions a TotalBits-wide rail value into NumSlices slices of
// SliceBits each, least-significant slice first. Slices are what get mapped
// across devices (weight bit cells) or timesteps (input bit-serial DACs);
// the mapper sees them as an extra dimension (§III-C).
type Slicing struct {
	TotalBits int
	SliceBits int
}

// NewSlicing validates and returns a slicing. SliceBits must divide
// TotalBits... or rather the last slice may be narrower; we require
// 1 <= SliceBits <= TotalBits.
func NewSlicing(totalBits, sliceBits int) (Slicing, error) {
	if totalBits <= 0 || totalBits > 32 {
		return Slicing{}, fmt.Errorf("enc: slicing total bits %d out of [1,32]", totalBits)
	}
	if sliceBits <= 0 || sliceBits > totalBits {
		return Slicing{}, fmt.Errorf("enc: slice bits %d out of [1,%d]", sliceBits, totalBits)
	}
	return Slicing{TotalBits: totalBits, SliceBits: sliceBits}, nil
}

// NumSlices returns the number of slices (ceiling division).
func (s Slicing) NumSlices() int {
	return (s.TotalBits + s.SliceBits - 1) / s.SliceBits
}

// SliceValue extracts slice i (LSB-first) of the non-negative value v.
func (s Slicing) SliceValue(v, i int) int {
	return (v >> uint(i*s.SliceBits)) & (1<<uint(s.sliceWidth(i)) - 1)
}

// sliceWidth returns the bit width of slice i (the top slice may be
// narrower when SliceBits does not divide TotalBits).
func (s Slicing) sliceWidth(i int) int {
	remaining := s.TotalBits - i*s.SliceBits
	if remaining < s.SliceBits {
		return remaining
	}
	return s.SliceBits
}

// SliceWeight returns the positional weight 2^(i*SliceBits) of slice i.
func (s Slicing) SliceWeight(i int) int64 {
	return int64(1) << uint(i*s.SliceBits)
}

// SlicePMF returns the PMF of slice i's value given the rail PMF. Rail
// values must be non-negative integers within TotalBits.
func (s Slicing) SlicePMF(p *dist.PMF, i int) (*dist.PMF, error) {
	if i < 0 || i >= s.NumSlices() {
		return nil, fmt.Errorf("enc: slice index %d out of [0,%d)", i, s.NumSlices())
	}
	limit := int64(1)<<uint(s.TotalBits) - 1
	pts := make([]dist.Point, 0, p.Len())
	for _, pt := range p.Points() {
		v := int64(pt.Value)
		if float64(v) != pt.Value || v < 0 || v > limit {
			return nil, fmt.Errorf("enc: rail value %g not representable in %d bits", pt.Value, s.TotalBits)
		}
		pts = append(pts, dist.Point{Value: float64(s.SliceValue(int(v), i)), Prob: pt.Prob})
	}
	return dist.FromPoints(pts)
}

// AverageSlicePMF returns the mixture of all slice PMFs: the distribution
// of values seen by a component that processes every slice (e.g. a
// bit-serial DAC across timesteps).
func (s Slicing) AverageSlicePMF(p *dist.PMF) (*dist.PMF, error) {
	n := s.NumSlices()
	var pts []dist.Point
	for i := 0; i < n; i++ {
		sp, err := s.SlicePMF(p, i)
		if err != nil {
			return nil, err
		}
		for _, pt := range sp.Points() {
			pts = append(pts, dist.Point{Value: pt.Value, Prob: pt.Prob / float64(n)})
		}
	}
	return dist.FromPoints(pts)
}
