package enc

import (
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

// Differential rails sliced and recombined reproduce the original value:
// the full encode→slice→recompose chain used by the engine.
func TestQuickEncodeSliceRecompose(t *testing.T) {
	e, err := Differential(8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSlicing(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw int16) bool {
		v := int(raw) % 128 // 8-bit signed range
		rails, err := e.Encode(v)
		if err != nil {
			return false
		}
		recompose := func(rail int) int64 {
			total := int64(0)
			for i := 0; i < s.NumSlices(); i++ {
				total += int64(s.SliceValue(rail, i)) * s.SliceWeight(i)
			}
			return total
		}
		return recompose(rails[0])-recompose(rails[1]) == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TransformPMF of the XNOR encoding on a symmetric distribution yields a
// balanced bit.
func TestXNORTransformBalance(t *testing.T) {
	e, err := XNOR()
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric over {-1, +1}... XNOR maps v>=0 to 1. Use {-1, 0}: half
	// negative, half non-negative.
	p, err := dist.FromPoints([]dist.Point{{Value: -1, Prob: 0.5}, {Value: 0, Prob: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	rails, err := e.TransformPMF(p)
	if err != nil {
		t.Fatal(err)
	}
	if m := rails[0].Mean(); m != 0.5 {
		t.Fatalf("balanced input should give P(1)=0.5, got %g", m)
	}
}

// AverageSlicePMF mass conservation: probabilities sum to one for any
// valid rail PMF and slicing.
func TestQuickAverageSlicePMFValid(t *testing.T) {
	f := func(bits, sliceBits uint8) bool {
		tb := int(bits)%12 + 2
		sb := int(sliceBits)%tb + 1
		s, err := NewSlicing(tb, sb)
		if err != nil {
			return false
		}
		p, err := dist.UniformInts(0, 1<<uint(tb)-1)
		if err != nil {
			return false
		}
		avg, err := s.AverageSlicePMF(p)
		if err != nil {
			return false
		}
		return avg.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
