package workload

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// cnnStats derives per-layer activation statistics for a CNN layer.
// ReLU sparsity and value spread vary layer to layer (seeded by index),
// which is exactly the effect that separates the data-value-dependent model
// from the fixed-energy model in Fig. 6.
func cnnStats(idx int) ActStats {
	// Deterministic pseudo-variation in [0.35, 0.75] for sparsity and
	// [0.10, 0.30] for std, following typical ReLU activation profiles.
	s := 0.55 + 0.20*math.Sin(1.7*float64(idx)+0.4)
	std := 0.20 + 0.10*math.Sin(2.3*float64(idx)+1.1)
	corr := 0.35 + 0.25*math.Sin(1.1*float64(idx))
	return ActStats{Signed: false, Sparsity: s, Mean: 0.18, Std: std, Corr: corr}
}

// transformerStats derives statistics for transformer activations: signed,
// dense, approximately zero-mean.
func transformerStats(idx int) ActStats {
	std := 0.22 + 0.08*math.Sin(1.9*float64(idx)+0.3)
	corr := 0.25 + 0.20*math.Sin(0.9*float64(idx)+0.7)
	return ActStats{Signed: true, Sparsity: 0, Mean: 0, Std: std, Corr: corr}
}

func mustConv(name string, n, k, c, p, q, r, s, stride int) *tensor.Einsum {
	e, err := tensor.Conv2D(name, n, k, c, p, q, r, s, stride)
	if err != nil {
		panic("workload zoo: " + err.Error())
	}
	return e
}

func mustMatMul(name string, m, k, n int) *tensor.Einsum {
	e, err := tensor.MatMul(name, m, k, n)
	if err != nil {
		panic("workload zoo: " + err.Error())
	}
	return e
}

func mustDepthwise(name string, n, c, p, q, r, s, stride int) *tensor.Einsum {
	e, err := tensor.DepthwiseConv2D(name, n, c, p, q, r, s, stride)
	if err != nil {
		panic("workload zoo: " + err.Error())
	}
	return e
}

// ResNet18 returns the 21 distinct layers of ResNet18 at 224x224 ImageNet
// resolution — the layer count plotted in Fig. 6. Weight std ~0.18 gives
// int8 weights that exercise most of the dynamic range.
func ResNet18() *Network {
	type c struct {
		name                   string
		k, ch, p, q, r, s, str int
	}
	convs := []c{
		{"conv1", 64, 3, 112, 112, 7, 7, 2},
		{"l1.b1.c1", 64, 64, 56, 56, 3, 3, 1},
		{"l1.b1.c2", 64, 64, 56, 56, 3, 3, 1},
		{"l1.b2.c1", 64, 64, 56, 56, 3, 3, 1},
		{"l1.b2.c2", 64, 64, 56, 56, 3, 3, 1},
		{"l2.b1.c1", 128, 64, 28, 28, 3, 3, 2},
		{"l2.b1.c2", 128, 128, 28, 28, 3, 3, 1},
		{"l2.b1.down", 128, 64, 28, 28, 1, 1, 2},
		{"l2.b2.c1", 128, 128, 28, 28, 3, 3, 1},
		{"l2.b2.c2", 128, 128, 28, 28, 3, 3, 1},
		{"l3.b1.c1", 256, 128, 14, 14, 3, 3, 2},
		{"l3.b1.c2", 256, 256, 14, 14, 3, 3, 1},
		{"l3.b1.down", 256, 128, 14, 14, 1, 1, 2},
		{"l3.b2.c1", 256, 256, 14, 14, 3, 3, 1},
		{"l3.b2.c2", 256, 256, 14, 14, 3, 3, 1},
		{"l4.b1.c1", 512, 256, 7, 7, 3, 3, 2},
		{"l4.b1.c2", 512, 512, 7, 7, 3, 3, 1},
		{"l4.b1.down", 512, 256, 7, 7, 1, 1, 2},
		{"l4.b2.c1", 512, 512, 7, 7, 3, 3, 1},
		{"l4.b2.c2", 512, 512, 7, 7, 3, 3, 1},
	}
	layers := make([]Layer, 0, len(convs)+1)
	for i, cc := range convs {
		st := cnnStats(i)
		if i == 0 {
			// Raw image input: dense, unsigned.
			st.Sparsity = 0.02
			st.Mean = 0.45
			st.Std = 0.25
		}
		layers = append(layers, Layer{
			Name:   cc.name,
			Op:     mustConv(cc.name, 1, cc.k, cc.ch, cc.p, cc.q, cc.r, cc.s, cc.str),
			Repeat: 1,
			Act:    st,
			Wgt:    WeightStats{Std: 0.18},
		})
	}
	layers = append(layers, Layer{
		Name:   "fc",
		Op:     mustMatMul("fc", 1, 512, 1000),
		Repeat: 1,
		Act:    cnnStats(len(convs)),
		Wgt:    WeightStats{Std: 0.18},
	})
	return &Network{Name: "resnet18", Layers: layers}
}

// ViTBase returns ViT-Base/16 at 224x224 (196 patches + class token ≈ 197
// tokens, rounded to 196 for tiling regularity): the large-tensor-size
// workload of Fig. 14.
func ViTBase() *Network {
	const tokens, dim, mlp, heads = 196, 768, 3072, 12
	headDim := dim / heads
	layers := []Layer{
		{Name: "patch_embed", Op: mustMatMul("patch_embed", tokens, 3*16*16, dim), Repeat: 1,
			Act: ActStats{Signed: false, Sparsity: 0.02, Mean: 0.45, Std: 0.25, Corr: 0.5}, Wgt: WeightStats{Std: 0.16}},
		{Name: "attn_qkv", Op: mustMatMul("attn_qkv", tokens, dim, 3*dim), Repeat: 12,
			Act: transformerStats(1), Wgt: WeightStats{Std: 0.16}},
		{Name: "attn_qk", Op: mustMatMul("attn_qk", tokens, headDim, tokens), Repeat: 12 * heads,
			Act: transformerStats(2), Wgt: WeightStats{Std: 0.20}},
		{Name: "attn_av", Op: mustMatMul("attn_av", tokens, tokens, headDim), Repeat: 12 * heads,
			Act: ActStats{Signed: false, Sparsity: 0.30, Mean: 0.10, Std: 0.12, Corr: 0.4}, Wgt: WeightStats{Std: 0.20}},
		{Name: "attn_proj", Op: mustMatMul("attn_proj", tokens, dim, dim), Repeat: 12,
			Act: transformerStats(3), Wgt: WeightStats{Std: 0.16}},
		{Name: "mlp_fc1", Op: mustMatMul("mlp_fc1", tokens, dim, mlp), Repeat: 12,
			Act: transformerStats(4), Wgt: WeightStats{Std: 0.16}},
		{Name: "mlp_fc2", Op: mustMatMul("mlp_fc2", tokens, mlp, dim), Repeat: 12,
			Act: ActStats{Signed: false, Sparsity: 0.5, Mean: 0.12, Std: 0.15, Corr: 0.4}, Wgt: WeightStats{Std: 0.16}},
		{Name: "head", Op: mustMatMul("head", 1, dim, 1000), Repeat: 1,
			Act: transformerStats(5), Wgt: WeightStats{Std: 0.16}},
	}
	return &Network{Name: "vit-base", Layers: layers}
}

// MobileNetV3Large returns a representative subset of MobileNetV3-Large:
// the small-tensor-size workload of Fig. 14. Depthwise layers and small
// late-stage feature maps underutilize large CiM arrays.
func MobileNetV3Large() *Network {
	layers := []Layer{
		{Name: "conv_stem", Op: mustConv("conv_stem", 1, 16, 3, 112, 112, 3, 3, 2), Repeat: 1,
			Act: ActStats{Signed: false, Sparsity: 0.02, Mean: 0.45, Std: 0.25, Corr: 0.5}, Wgt: WeightStats{Std: 0.2}},
		{Name: "b1.dw", Op: mustDepthwise("b1.dw", 1, 16, 112, 112, 3, 3, 1), Repeat: 1,
			Act: cnnStats(1), Wgt: WeightStats{Std: 0.2}},
		{Name: "b2.pw_exp", Op: mustConv("b2.pw_exp", 1, 64, 16, 56, 56, 1, 1, 1), Repeat: 1,
			Act: cnnStats(2), Wgt: WeightStats{Std: 0.2}},
		{Name: "b2.dw", Op: mustDepthwise("b2.dw", 1, 64, 56, 56, 3, 3, 2), Repeat: 1,
			Act: cnnStats(3), Wgt: WeightStats{Std: 0.2}},
		{Name: "b2.pw_proj", Op: mustConv("b2.pw_proj", 1, 24, 64, 56, 56, 1, 1, 1), Repeat: 1,
			Act: cnnStats(4), Wgt: WeightStats{Std: 0.2}},
		{Name: "b4.pw_exp", Op: mustConv("b4.pw_exp", 1, 120, 40, 28, 28, 1, 1, 1), Repeat: 2,
			Act: cnnStats(5), Wgt: WeightStats{Std: 0.2}},
		{Name: "b4.dw5", Op: mustDepthwise("b4.dw5", 1, 120, 28, 28, 5, 5, 1), Repeat: 2,
			Act: cnnStats(6), Wgt: WeightStats{Std: 0.2}},
		{Name: "b6.pw_exp", Op: mustConv("b6.pw_exp", 1, 200, 80, 14, 14, 1, 1, 1), Repeat: 3,
			Act: cnnStats(7), Wgt: WeightStats{Std: 0.2}},
		{Name: "b6.dw", Op: mustDepthwise("b6.dw", 1, 200, 14, 14, 3, 3, 1), Repeat: 3,
			Act: cnnStats(8), Wgt: WeightStats{Std: 0.2}},
		{Name: "b6.pw_proj", Op: mustConv("b6.pw_proj", 1, 80, 200, 14, 14, 1, 1, 1), Repeat: 3,
			Act: cnnStats(9), Wgt: WeightStats{Std: 0.2}},
		{Name: "b9.pw_exp", Op: mustConv("b9.pw_exp", 1, 672, 112, 7, 7, 1, 1, 1), Repeat: 2,
			Act: cnnStats(10), Wgt: WeightStats{Std: 0.2}},
		{Name: "b9.dw5", Op: mustDepthwise("b9.dw5", 1, 672, 7, 7, 5, 5, 1), Repeat: 2,
			Act: cnnStats(11), Wgt: WeightStats{Std: 0.2}},
		{Name: "b9.pw_proj", Op: mustConv("b9.pw_proj", 1, 160, 672, 7, 7, 1, 1, 1), Repeat: 2,
			Act: cnnStats(12), Wgt: WeightStats{Std: 0.2}},
		{Name: "conv_head", Op: mustConv("conv_head", 1, 960, 160, 7, 7, 1, 1, 1), Repeat: 1,
			Act: cnnStats(13), Wgt: WeightStats{Std: 0.2}},
		{Name: "fc", Op: mustMatMul("fc", 1, 1280, 1000), Repeat: 1,
			Act: cnnStats(14), Wgt: WeightStats{Std: 0.2}},
	}
	return &Network{Name: "mobilenetv3-large", Layers: layers}
}

// GPT2 returns GPT-2 small (124M) at sequence length 1024: the
// large-tensor (large language model) workload of Fig. 15.
func GPT2() *Network {
	const seq, dim, mlp = 1024, 768, 3072
	layers := []Layer{
		{Name: "attn_qkv", Op: mustMatMul("attn_qkv", seq, dim, 3*dim), Repeat: 12,
			Act: transformerStats(1), Wgt: WeightStats{Std: 0.15}},
		{Name: "attn_proj", Op: mustMatMul("attn_proj", seq, dim, dim), Repeat: 12,
			Act: transformerStats(2), Wgt: WeightStats{Std: 0.15}},
		{Name: "mlp_fc", Op: mustMatMul("mlp_fc", seq, dim, mlp), Repeat: 12,
			Act: transformerStats(3), Wgt: WeightStats{Std: 0.15}},
		{Name: "mlp_proj", Op: mustMatMul("mlp_proj", seq, mlp, dim), Repeat: 12,
			Act: ActStats{Signed: false, Sparsity: 0.45, Mean: 0.12, Std: 0.15, Corr: 0.35}, Wgt: WeightStats{Std: 0.15}},
	}
	return &Network{Name: "gpt2", Layers: layers}
}

// Transformer returns a compact transformer encoder block as explicit
// einsums — attention score (QK^T), attention-weighted values (AV), the
// QKV/output projections, and the MLP pair — at sequence length 128 and
// model width 256 (4 heads). Unlike the full-size ViT/GPT-2 entries it
// is small enough for per-layer mapping search in tests and smoke runs,
// while still exercising every attention-shaped einsum: the photonic and
// beyond-CMOS sweep definitions use it as their default workload.
func Transformer() *Network {
	const seq, dim, mlp, heads = 128, 256, 1024, 4
	headDim := dim / heads
	layers := []Layer{
		{Name: "attn_qkv", Op: mustMatMul("attn_qkv", seq, dim, 3*dim), Repeat: 2,
			Act: transformerStats(1), Wgt: WeightStats{Std: 0.16}},
		{Name: "attn_qk", Op: mustMatMul("attn_qk", seq, headDim, seq), Repeat: 2 * heads,
			Act: transformerStats(2), Wgt: WeightStats{Std: 0.20}},
		// Post-softmax attention weights: non-negative, mostly small, a
		// third near zero — the value profile the data-value-dependent
		// energy model rewards.
		{Name: "attn_av", Op: mustMatMul("attn_av", seq, seq, headDim), Repeat: 2 * heads,
			Act: ActStats{Signed: false, Sparsity: 0.30, Mean: 0.10, Std: 0.12, Corr: 0.4}, Wgt: WeightStats{Std: 0.20}},
		{Name: "attn_proj", Op: mustMatMul("attn_proj", seq, dim, dim), Repeat: 2,
			Act: transformerStats(3), Wgt: WeightStats{Std: 0.16}},
		{Name: "mlp_fc1", Op: mustMatMul("mlp_fc1", seq, dim, mlp), Repeat: 2,
			Act: transformerStats(4), Wgt: WeightStats{Std: 0.16}},
		// GELU output: one-sided like ReLU but denser near zero.
		{Name: "mlp_fc2", Op: mustMatMul("mlp_fc2", seq, mlp, dim), Repeat: 2,
			Act: ActStats{Signed: false, Sparsity: 0.45, Mean: 0.12, Std: 0.15, Corr: 0.35}, Wgt: WeightStats{Std: 0.16}},
	}
	return &Network{Name: "transformer", Layers: layers}
}

// MaxUtilization returns a single matrix multiply whose reduction and
// output dimensions exactly match a rows×cols CiM array — the maximum-
// utilization workload of Figs. 12 and 14. vectors is the number of input
// vectors streamed through.
func MaxUtilization(rows, cols, vectors int) (*Network, error) {
	if rows <= 0 || cols <= 0 || vectors <= 0 {
		return nil, fmt.Errorf("workload: MaxUtilization(%d, %d, %d)", rows, cols, vectors)
	}
	return &Network{
		Name: fmt.Sprintf("maxutil-%dx%d", rows, cols),
		Layers: []Layer{{
			Name:   "mvm",
			Op:     mustMatMul("mvm", vectors, rows, cols),
			Repeat: 1,
			Act:    ActStats{Signed: false, Sparsity: 0.3, Mean: 0.2, Std: 0.2, Corr: 0.3},
			Wgt:    WeightStats{Std: 0.2},
		}},
	}, nil
}

// Toy returns a small network used by tests and the quickstart example.
func Toy() *Network {
	return &Network{
		Name: "toy",
		Layers: []Layer{
			{Name: "conv", Op: mustConv("conv", 1, 8, 4, 6, 6, 3, 3, 1), Repeat: 1,
				Act: cnnStats(0), Wgt: WeightStats{Std: 0.2}},
			{Name: "fc", Op: mustMatMul("fc", 1, 32, 16), Repeat: 1,
				Act: cnnStats(1), Wgt: WeightStats{Std: 0.2}},
		},
	}
}

// Names lists the zoo's canonical network names, in ByName order. Keep
// in step with the switch below when adding a network.
func Names() []string {
	return []string{"resnet18", "vit-base", "mobilenetv3-large", "gpt2", "transformer", "toy"}
}

// ByName returns a zoo network by its canonical name.
func ByName(name string) (*Network, error) {
	switch name {
	case "resnet18":
		return ResNet18(), nil
	case "vit-base", "vit":
		return ViTBase(), nil
	case "mobilenetv3-large", "mobilenetv3":
		return MobileNetV3Large(), nil
	case "gpt2":
		return GPT2(), nil
	case "transformer":
		return Transformer(), nil
	case "toy":
		return Toy(), nil
	}
	return nil, fmt.Errorf("workload: unknown network %q", name)
}
