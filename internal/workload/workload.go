// Package workload provides the DNN workloads used by the paper's
// evaluation: ResNet18 (the 21 layers of Fig. 6), ViT-Base, MobileNetV3-
// Large, GPT-2, and maximum-utilization matrix-vector workloads, together
// with synthetic operand statistics.
//
// The paper profiles real tensors (ImageNet inputs, Wikipedia text) only to
// obtain per-tensor value distributions (§III-D1). This repo has no dataset
// access, so each layer carries seeded synthetic statistics that reproduce
// the properties the model depends on: layer-to-layer distribution
// variation, ReLU sparsity for CNNs, signed dense activations for
// transformers, and cross-element correlation (which the independence-based
// statistical model cannot capture, and which therefore exercises the
// residual error studied in Fig. 6).
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/tensor"
)

// ActStats describes the value distribution of a layer's input activations
// on a normalized [-1, 1] (signed) or [0, 1] (unsigned) scale.
type ActStats struct {
	Signed   bool    // two-sided values (transformers) vs. post-ReLU
	Sparsity float64 // P(value == 0)
	Mean     float64 // mean of the nonzero mass (normalized scale)
	Std      float64 // std of the nonzero mass (normalized scale)
	Corr     float64 // AR(1) correlation between adjacent elements
}

// WeightStats describes the value distribution of a layer's weights on the
// normalized [-1, 1] scale. Weights are always signed.
type WeightStats struct {
	Std float64 // std of the approximately zero-mean Gaussian weights
}

// Layer is one tensor operation of a network plus its operand statistics.
type Layer struct {
	Name   string
	Op     *tensor.Einsum
	Repeat int // number of identical instances folded into this entry
	Act    ActStats
	Wgt    WeightStats
}

// Network is a named sequence of layers.
type Network struct {
	Name   string
	Layers []Layer
}

// Validate checks that every layer has a valid einsum and sane statistics.
func (n *Network) Validate() error {
	if n.Name == "" {
		return errors.New("workload: network has no name")
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("workload: network %q has no layers", n.Name)
	}
	for i, l := range n.Layers {
		if l.Op == nil {
			return fmt.Errorf("workload: %s layer %d (%s) has no einsum", n.Name, i, l.Name)
		}
		if err := l.Op.Validate(); err != nil {
			return fmt.Errorf("workload: %s layer %d: %w", n.Name, i, err)
		}
		if l.Repeat <= 0 {
			return fmt.Errorf("workload: %s layer %d has repeat %d", n.Name, i, l.Repeat)
		}
		if l.Act.Sparsity < 0 || l.Act.Sparsity >= 1 {
			return fmt.Errorf("workload: %s layer %d sparsity %g out of [0,1)", n.Name, i, l.Act.Sparsity)
		}
		if l.Act.Std <= 0 || l.Wgt.Std <= 0 {
			return fmt.Errorf("workload: %s layer %d has non-positive std", n.Name, i)
		}
		if l.Act.Corr < 0 || l.Act.Corr >= 1 {
			return fmt.Errorf("workload: %s layer %d correlation %g out of [0,1)", n.Name, i, l.Act.Corr)
		}
	}
	return nil
}

// MACs returns the total multiply-accumulates of the network including
// layer repeats.
func (n *Network) MACs() int64 {
	total := int64(0)
	for _, l := range n.Layers {
		total += l.Op.MACs() * int64(l.Repeat)
	}
	return total
}

// gaussianPMF builds a PMF over the integer levels of a quantized Gaussian.
// Levels span [lo, hi]; the Gaussian has the given mean and std expressed in
// level units.
func gaussianPMF(lo, hi int, mean, std float64) *dist.PMF {
	pts := make([]dist.Point, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		d := (float64(v) - mean) / std
		pts = append(pts, dist.Point{Value: float64(v), Prob: math.Exp(-0.5 * d * d)})
	}
	p, err := dist.FromPoints(pts)
	if err != nil {
		panic("workload: gaussianPMF: " + err.Error())
	}
	return p
}

// InputPMF returns the PMF of the layer's input activations quantized to
// the given number of bits. Unsigned layers use levels [0, 2^bits-1] with a
// point mass at zero for sparsity; signed layers use [-2^(bits-1),
// 2^(bits-1)-1].
func (l Layer) InputPMF(bits int) (*dist.PMF, error) {
	if bits <= 0 || bits > 16 {
		return nil, fmt.Errorf("workload: input bits %d out of [1,16]", bits)
	}
	full := 1 << uint(bits)
	if l.Act.Signed {
		half := full / 2
		scale := float64(half)
		body := gaussianPMF(-half, half-1, l.Act.Mean*scale, l.Act.Std*scale)
		if l.Act.Sparsity == 0 {
			return body, nil
		}
		return dist.Mix(dist.Delta(0), body, l.Act.Sparsity)
	}
	maxLevel := full - 1
	scale := float64(maxLevel)
	// Nonzero mass: positive truncated Gaussian starting at level 1.
	body := gaussianPMF(1, maxLevel, l.Act.Mean*scale, l.Act.Std*scale)
	return dist.Mix(dist.Delta(0), body, l.Act.Sparsity)
}

// WeightPMF returns the PMF of the layer's weights quantized to the given
// number of bits (signed, approximately zero-mean Gaussian).
func (l Layer) WeightPMF(bits int) (*dist.PMF, error) {
	if bits <= 0 || bits > 16 {
		return nil, fmt.Errorf("workload: weight bits %d out of [1,16]", bits)
	}
	half := 1 << uint(bits-1)
	return gaussianPMF(-half, half-1, 0, l.Wgt.Std*float64(half)), nil
}

// OutputPMF returns an approximate PMF of the layer's accumulated outputs
// given the input and weight PMFs: the independence-based synthesis of
// sum_{k} input_k * weight_k over the reduction depth (capped for cost).
func (l Layer) OutputPMF(inputBits, weightBits, depth int) (*dist.PMF, error) {
	in, err := l.InputPMF(inputBits)
	if err != nil {
		return nil, err
	}
	w, err := l.WeightPMF(weightBits)
	if err != nil {
		return nil, err
	}
	if depth <= 0 {
		return nil, fmt.Errorf("workload: output depth %d", depth)
	}
	prod := dist.Mul(in, w).Rebin(256)
	return dist.SumN(prod, depth)
}

// SampledOperands is a concrete weight matrix and input-vector sequence for
// the value-level simulator: integer levels at the requested precisions.
type SampledOperands struct {
	// Weights[row][col] is a signed weight level.
	Weights [][]int
	// Inputs[t][row] is the input level supplied to each row at step t.
	Inputs                [][]int
	InputBits, WeightBits int
	Signed                bool
}

// SampleOperands draws a deterministic, seeded set of concrete operands
// matching the layer's statistics. Inputs carry AR(1) correlation Corr
// across rows, which makes true MAC-value distributions deviate from the
// independence assumption — the effect Fig. 6 quantifies.
func (l Layer) SampleOperands(rows, cols, steps, inputBits, weightBits int, seed int64) (*SampledOperands, error) {
	if rows <= 0 || cols <= 0 || steps <= 0 {
		return nil, fmt.Errorf("workload: SampleOperands dims %dx%d steps %d", rows, cols, steps)
	}
	if inputBits <= 0 || inputBits > 16 || weightBits <= 0 || weightBits > 16 {
		return nil, fmt.Errorf("workload: SampleOperands bits %d/%d out of [1,16]", inputBits, weightBits)
	}
	rng := rand.New(rand.NewSource(seed))
	halfW := 1 << uint(weightBits-1)
	weights := make([][]int, rows)
	for r := range weights {
		weights[r] = make([]int, cols)
		for c := range weights[r] {
			v := int(math.Round(rng.NormFloat64() * l.Wgt.Std * float64(halfW)))
			weights[r][c] = clampInt(v, -halfW, halfW-1)
		}
	}
	inputs := make([][]int, steps)
	for t := range inputs {
		inputs[t] = make([]int, rows)
		z := rng.NormFloat64()
		for r := 0; r < rows; r++ {
			// AR(1) latent value: correlated across adjacent rows.
			z = l.Act.Corr*z + math.Sqrt(1-l.Act.Corr*l.Act.Corr)*rng.NormFloat64()
			inputs[t][r] = l.quantizeActivation(z, inputBits, rng)
		}
	}
	return &SampledOperands{
		Weights:    weights,
		Inputs:     inputs,
		InputBits:  inputBits,
		WeightBits: weightBits,
		Signed:     l.Act.Signed,
	}, nil
}

// quantizeActivation converts a standard-normal latent value to an integer
// activation level honoring the layer's signedness, sparsity, and moments.
func (l Layer) quantizeActivation(z float64, bits int, rng *rand.Rand) int {
	full := 1 << uint(bits)
	if l.Act.Signed {
		half := full / 2
		v := int(math.Round((l.Act.Mean + z*l.Act.Std) * float64(half)))
		if l.Act.Sparsity > 0 && rng.Float64() < l.Act.Sparsity {
			return 0
		}
		return clampInt(v, -half, half-1)
	}
	if rng.Float64() < l.Act.Sparsity {
		return 0
	}
	maxLevel := full - 1
	v := int(math.Round((l.Act.Mean + z*l.Act.Std) * float64(maxLevel)))
	return clampInt(v, 1, maxLevel)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
