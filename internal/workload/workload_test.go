package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZooNetworksValidate(t *testing.T) {
	names := []string{"resnet18", "vit-base", "mobilenetv3-large", "gpt2", "transformer", "toy"}
	for _, name := range names {
		n, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if n.MACs() <= 0 {
			t.Errorf("%s: MACs = %d", name, n.MACs())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("want error for unknown network")
	}
}

func TestResNet18Has21Layers(t *testing.T) {
	n := ResNet18()
	if len(n.Layers) != 21 {
		t.Fatalf("ResNet18 layer count = %d, want 21 (Fig. 6)", len(n.Layers))
	}
	// ~1.8 GMACs for ResNet18 at 224x224.
	macs := n.MACs()
	if macs < 1.6e9 || macs > 2.0e9 {
		t.Fatalf("ResNet18 MACs = %d, want ~1.8e9", macs)
	}
}

func TestGPT2MACs(t *testing.T) {
	// 12 blocks * (qkv + proj + 2 mlp) at seq 1024, dim 768:
	// 12*1024*768*(2304+768+3072+3072) ≈ 87e9.
	macs := GPT2().MACs()
	if macs < 80e9 || macs > 95e9 {
		t.Fatalf("GPT2 MACs = %d, want ~87e9", macs)
	}
}

func TestTransformerShape(t *testing.T) {
	n := Transformer()
	if len(n.Layers) != 6 {
		t.Fatalf("Transformer layer count = %d, want 6 (qkv, qk, av, proj, fc1, fc2)", len(n.Layers))
	}
	// seq 128, dim 256, mlp 1024, 4 heads, 2 blocks:
	//   qkv 2*128*256*768 + (qk+av) 2*8*128*64*128 + proj 2*128*256*256
	//   + fc1/fc2 2*2*128*256*1024 = 218,103,808 exactly.
	if macs := n.MACs(); macs != 218103808 {
		t.Fatalf("Transformer MACs = %d, want 218103808", macs)
	}
	// The attention probability matmul (attn_av) consumes a softmax
	// output: unsigned, sparse, low-magnitude activations.
	var av *Layer
	for i := range n.Layers {
		if n.Layers[i].Name == "attn_av" {
			av = &n.Layers[i]
		}
	}
	if av == nil {
		t.Fatal("Transformer has no attn_av layer")
	}
	if av.Act.Signed || av.Act.Sparsity == 0 {
		t.Fatalf("attn_av activation stats %+v should be unsigned and sparse (softmax output)", av.Act)
	}
}

func TestMaxUtilization(t *testing.T) {
	n, err := MaxUtilization(256, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.MACs() != 256*256*16 {
		t.Fatalf("MACs = %d", n.MACs())
	}
	if _, err := MaxUtilization(0, 1, 1); err == nil {
		t.Fatal("want error for zero rows")
	}
}

func TestInputPMFUnsigned(t *testing.T) {
	l := ResNet18().Layers[3]
	p, err := l.InputPMF(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Min() < 0 || p.Max() > 255 {
		t.Fatalf("unsigned PMF range [%g, %g]", p.Min(), p.Max())
	}
	if got := p.ProbZero(); math.Abs(got-l.Act.Sparsity) > 1e-6 {
		t.Fatalf("sparsity %g, want %g", got, l.Act.Sparsity)
	}
}

func TestInputPMFSigned(t *testing.T) {
	l := GPT2().Layers[0]
	p, err := l.InputPMF(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Min() >= 0 {
		t.Fatal("signed PMF should include negative levels")
	}
	if p.Min() < -128 || p.Max() > 127 {
		t.Fatalf("signed PMF range [%g, %g]", p.Min(), p.Max())
	}
	if math.Abs(p.Mean()) > 8 {
		t.Fatalf("signed activations should be near zero-mean, got %g", p.Mean())
	}
}

func TestInputPMFBitsErrors(t *testing.T) {
	l := Toy().Layers[0]
	for _, bits := range []int{0, -1, 17} {
		if _, err := l.InputPMF(bits); err == nil {
			t.Errorf("want error for %d input bits", bits)
		}
		if _, err := l.WeightPMF(bits); err == nil {
			t.Errorf("want error for %d weight bits", bits)
		}
	}
}

func TestWeightPMF(t *testing.T) {
	l := Toy().Layers[0]
	p, err := l.WeightPMF(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Min() < -128 || p.Max() > 127 {
		t.Fatalf("weight range [%g, %g]", p.Min(), p.Max())
	}
	if math.Abs(p.Mean()) > 1 {
		t.Fatalf("weights should be near zero-mean, got %g", p.Mean())
	}
}

func TestOutputPMF(t *testing.T) {
	l := Toy().Layers[0]
	p, err := l.OutputPMF(4, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.OutputPMF(4, 4, 0); err == nil {
		t.Fatal("want error for zero depth")
	}
}

func TestSampleOperandsDeterministic(t *testing.T) {
	l := ResNet18().Layers[2]
	a, err := l.SampleOperands(16, 8, 4, 8, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.SampleOperands(16, 8, 4, 8, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.Weights {
		for c := range a.Weights[r] {
			if a.Weights[r][c] != b.Weights[r][c] {
				t.Fatal("weights not deterministic for equal seeds")
			}
		}
	}
	for s := range a.Inputs {
		for r := range a.Inputs[s] {
			if a.Inputs[s][r] != b.Inputs[s][r] {
				t.Fatal("inputs not deterministic for equal seeds")
			}
		}
	}
	c, err := l.SampleOperands(16, 8, 4, 8, 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for s := range a.Inputs {
		for r := range a.Inputs[s] {
			if a.Inputs[s][r] != c.Inputs[s][r] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical inputs")
	}
}

func TestSampleOperandsErrors(t *testing.T) {
	l := Toy().Layers[0]
	if _, err := l.SampleOperands(0, 1, 1, 8, 8, 1); err == nil {
		t.Fatal("want error for zero rows")
	}
	if _, err := l.SampleOperands(1, 1, 1, 0, 8, 1); err == nil {
		t.Fatal("want error for zero input bits")
	}
	if _, err := l.SampleOperands(1, 1, 1, 8, 33, 1); err == nil {
		t.Fatal("want error for oversized weight bits")
	}
}

func TestValidateCatchesBadNetworks(t *testing.T) {
	n := Toy()
	n.Layers[0].Repeat = 0
	if err := n.Validate(); err == nil {
		t.Error("want error for zero repeat")
	}
	n = Toy()
	n.Layers[0].Act.Sparsity = 1.0
	if err := n.Validate(); err == nil {
		t.Error("want error for sparsity 1")
	}
	n = Toy()
	n.Layers[0].Wgt.Std = 0
	if err := n.Validate(); err == nil {
		t.Error("want error for zero weight std")
	}
	n = Toy()
	n.Layers[0].Op = nil
	if err := n.Validate(); err == nil {
		t.Error("want error for nil einsum")
	}
	n = Toy()
	n.Name = ""
	if err := n.Validate(); err == nil {
		t.Error("want error for empty name")
	}
	n = &Network{Name: "empty"}
	if err := n.Validate(); err == nil {
		t.Error("want error for no layers")
	}
	n = Toy()
	n.Layers[0].Act.Corr = 1.0
	if err := n.Validate(); err == nil {
		t.Error("want error for correlation 1")
	}
}

// Property: sampled operands always respect precision bounds and the
// empirical sparsity roughly tracks the configured sparsity.
func TestQuickSampleOperandsBounds(t *testing.T) {
	l := ResNet18().Layers[5]
	f := func(seed int64, ib, wb uint8) bool {
		inputBits := int(ib)%8 + 1
		weightBits := int(wb)%8 + 1
		ops, err := l.SampleOperands(32, 16, 8, inputBits, weightBits, seed)
		if err != nil {
			return false
		}
		halfW := 1 << uint(weightBits-1)
		for _, row := range ops.Weights {
			for _, w := range row {
				if w < -halfW || w > halfW-1 {
					return false
				}
			}
		}
		maxIn := 1<<uint(inputBits) - 1
		for _, vec := range ops.Inputs {
			for _, v := range vec {
				if v < 0 || v > maxIn {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampledSparsityTracksConfig(t *testing.T) {
	l := ResNet18().Layers[4]
	ops, err := l.SampleOperands(64, 8, 64, 8, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	zeros, total := 0, 0
	for _, vec := range ops.Inputs {
		for _, v := range vec {
			total++
			if v == 0 {
				zeros++
			}
		}
	}
	got := float64(zeros) / float64(total)
	if math.Abs(got-l.Act.Sparsity) > 0.08 {
		t.Fatalf("empirical sparsity %g, configured %g", got, l.Act.Sparsity)
	}
}
