package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
	"repro/internal/sweepdef"
)

// Declarative experiments: a directory of sweeps/*.yaml definitions
// (package sweepdef) registered as named, parameterized endpoints.
// GET /v1/experiments lists them with their parameter schemas;
// POST /v1/experiments/{name} binds parameters and runs the compiled
// grid through the normal sweep path — so async promotion, tenancy,
// weighted fair queuing, checkpointed preemption, and metrics all apply
// to a declarative run exactly as they do to a hand-built sweep. The
// set is swapped atomically by ReloadSweepDefs (the CLI wires SIGHUP to
// it, next to the tenant reload), so adding a scenario is editing a
// file, not rebuilding a binary.

// sweepSet is the live definition set (nil when none registered).
func (s *Server) sweepSet() *sweepdef.Set { return s.sweeps.Load() }

// SweepDefNames lists the registered definition names, sorted.
func (s *Server) SweepDefNames() []string { return s.sweepSet().Names() }

// ReloadSweepDefs swaps in a new definition set without a restart — the
// SIGHUP path, also used for boot registration by the CLI. The set must
// be non-empty and no definition may shadow a built-in experiment name
// (the two run through different endpoints, but one name meaning two
// grids would make every listing ambiguous). On error the old set stays
// in force untouched. Reloads are counted in the registry
// (cimloop_sweepdef_reloads_total) and surfaced in /healthz.
func (s *Server) ReloadSweepDefs(set *sweepdef.Set) error {
	err := func() error {
		if set.Len() == 0 {
			return errors.New("serve: refusing to load an empty sweep-definition set")
		}
		if s.ExperimentNames != nil {
			builtin := map[string]bool{}
			for _, n := range s.ExperimentNames() {
				builtin[n] = true
			}
			for _, n := range set.Names() {
				if builtin[n] {
					return fmt.Errorf("serve: sweep definition %q shadows a built-in experiment", n)
				}
			}
		}
		return nil
	}()
	if err != nil {
		s.met.sweepReloads.With("error").Inc()
		return err
	}
	s.sweeps.Store(set)
	s.met.sweepReloads.With("ok").Inc()
	return nil
}

// ReloadSweepDefsDir is ReloadSweepDefs from a directory: every file is
// parsed and validated first, and the running set is swapped only when
// the whole directory is good — one broken definition leaves the old
// set serving (and the failure counted).
func (s *Server) ReloadSweepDefsDir(dir string) error {
	set, err := sweepdef.LoadDir(dir)
	if err != nil {
		s.met.sweepReloads.With("error").Inc()
		return err
	}
	return s.ReloadSweepDefs(set)
}

// handleNamedExperiment runs one registered definition:
// POST /v1/experiments/{name} with an optional api.NamedExperimentRequest
// body. The compiled grid takes the same sync/async fork as POST
// /v1/sweep: 200 + api.SweepResponse, or 202 + api.JobAccepted when the
// request asks for async or the grid reaches the promotion threshold.
func (s *Server) handleNamedExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	def, ok := s.sweepSet().Get(name)
	if !ok {
		if s.ExperimentNames != nil {
			for _, n := range s.ExperimentNames() {
				if n == name {
					writeAPIError(w, http.StatusBadRequest, api.Errorf(api.CodeInvalidRequest,
						"%q is a built-in experiment; run it via POST /v1/experiments", name))
					return
				}
			}
		}
		writeAPIError(w, http.StatusNotFound,
			api.Errorf(api.CodeNotFound, "unknown experiment definition %q", name))
		return
	}
	var body api.NamedExperimentRequest
	if !s.decodeJSONOptional(w, r, &body) {
		return
	}
	if !validSweepPriority(w, body.Priority) {
		return
	}
	reqs, err := def.Compile(body.Params)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, api.Errorf(api.CodeInvalidRequest, "%v", err))
		return
	}
	// The definition's declared class is the default; the request may
	// override it (validated above).
	pri := body.Priority
	if pri == "" {
		pri = jobs.Priority(def.Priority)
	}
	if thr := s.opts.asyncThreshold(); body.Async || (thr > 0 && len(reqs) >= thr) {
		s.acceptJob(w, reqs, SweepJobOptions{
			Timeout:  secondsToTimeout(body.TimeoutSec),
			Priority: pri,
			Tenant:   tenantFrom(r.Context()),
		})
		return
	}
	ctx := r.Context()
	if d := secondsToTimeout(body.TimeoutSec); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	results, err := s.SweepCtx(ctx, reqs, 0, nil)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			writeAPIError(w, http.StatusGatewayTimeout, api.Errorf(api.CodeDeadlineExceeded, "%v", err))
			return
		}
		writeAPIError(w, http.StatusBadRequest, api.Errorf(api.CodeInvalidRequest, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, api.SweepResponse{
		Results: results,
		Table:   SweepTable(results).String(),
		Cache:   s.CacheStats(),
	})
}
