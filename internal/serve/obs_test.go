package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
)

// rawGet fetches a path as plain text (the JSON-decoding helpers can't
// read /metrics), with an optional bearer token.
func rawGet(t *testing.T, ts *httptest.Server, path, token string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestMetricsExposition drives a tenant-attributed sweep job end to end
// and asserts the Prometheus exposition carries the acceptance-critical
// series: per-tenant WFQ dispatch counters, the search-phase and
// evaluate latency histograms, cache counters, and HTTP route counters
// — all scraped without credentials (/metrics is auth-exempt; tenants
// appear by id, never by token).
func TestMetricsExposition(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, Tenants: mustTenants(t, twoTenantsYAML)})
	defer srv.Close()
	do := tenantClient(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := submitJob(t, do, "secret-a",
		`{"macros": ["base", "macro-b"], "networks": ["toy"], "max_mappings": 2}`)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	snap, err := srv.WaitJob(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Status != jobs.StatusSucceeded {
		t.Fatalf("job finished %s (%s)", snap.Status, snap.Error)
	}
	// One unroutable (but authenticated) request: must show up under the
	// bounded "unmatched" route label, not its raw path.
	if status, _, _ := rawGet(t, ts, "/no/such/path", "secret-a"); status != http.StatusNotFound {
		t.Fatalf("bogus path: %d, want 404", status)
	}

	status, text, hdr := rawGet(t, ts, "/metrics", "") // no token: scrape stays open
	if status != http.StatusOK {
		t.Fatalf("GET /metrics without token: %d, want 200", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	for _, want := range []string{
		"# TYPE cimloop_http_requests_total counter",
		`cimloop_http_requests_total{route="POST /v1/jobs",code="202"} 1`,
		`cimloop_http_requests_total{route="unmatched",code="404"} 1`,
		`cimloop_wfq_dispatches_total{tenant="team-a"}`,
		`cimloop_request_phase_seconds_count{phase="search"}`,
		`cimloop_request_phase_seconds_count{phase="compile"}`,
		"cimloop_evaluate_seconds_bucket{le=",
		"cimloop_evaluate_seconds_count",
		`cimloop_job_queue_wait_seconds_count{class="batch"}`,
		"cimloop_cache_compiles_total",
		"cimloop_cache_hits_total",
		"cimloop_jobs_finished 1",
		"cimloop_uptime_seconds",
		"cimloop_spans_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// TestSlowLogCapturesSweepPhases pins the acceptance criterion: a sweep
// produces per-item spans whose queue, compile, and search phase
// timings are visible (non-zero) in /v1/debug/slow. The slow endpoint
// itself stays behind auth — request tags and errors are operator data.
func TestSlowLogCapturesSweepPhases(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, Tenants: mustTenants(t, twoTenantsYAML)})
	defer srv.Close()
	do := tenantClient(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := submitJob(t, do, "secret-a",
		`{"macros": ["base", "macro-b"], "networks": ["toy"], "max_mappings": 2}`)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := srv.WaitJob(ctx, id); err != nil {
		t.Fatal(err)
	}

	if status, _, _ := rawGet(t, ts, "/v1/debug/slow", ""); status != http.StatusUnauthorized {
		t.Fatalf("slow log without token: %d, want 401", status)
	}
	status, body, _ := rawGet(t, ts, "/v1/debug/slow", "secret-a")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/debug/slow: %d %s", status, body)
	}
	var out api.SlowResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Recorded == 0 || len(out.Requests) == 0 {
		t.Fatalf("slow log empty after a sweep: %+v", out)
	}

	phase := func(e obs.SlowEntry, name string) (float64, bool) {
		for _, p := range e.Phases {
			if p.Phase == name {
				return p.Seconds, true
			}
		}
		return 0, false
	}
	var items int
	var sawQueued, sawCompiled, sawSearched, sawTenant bool
	for _, e := range out.Requests {
		if e.Route != "sweep-item" {
			continue
		}
		items++
		sawTenant = sawTenant || e.Tenant == "team-a"
		if v, ok := phase(e, "queue"); ok && v > 0 {
			sawQueued = true
		}
		if v, ok := phase(e, "compile"); ok && v > 0 {
			sawCompiled = true
		}
		if v, ok := phase(e, "search"); ok && v > 0 {
			sawSearched = true
		}
	}
	if items < 2 {
		t.Fatalf("want >= 2 sweep-item entries, got %d: %+v", items, out.Requests)
	}
	if !sawQueued || !sawCompiled || !sawSearched || !sawTenant {
		t.Fatalf("sweep items must show non-zero queue/compile/search and the tenant "+
			"(queue=%v compile=%v search=%v tenant=%v): %+v",
			sawQueued, sawCompiled, sawSearched, sawTenant, out.Requests)
	}
	// The HTTP span for the submit is there too, labeled by route pattern.
	var sawSubmit bool
	for _, e := range out.Requests {
		sawSubmit = sawSubmit || e.Route == "POST /v1/jobs"
	}
	if !sawSubmit {
		t.Fatalf("missing the POST /v1/jobs span: %+v", out.Requests)
	}

	// ?limit truncates; a garbage limit is a 400 envelope.
	status, body, _ = rawGet(t, ts, "/v1/debug/slow?limit=1", "secret-a")
	var limited api.SlowResponse
	if err := json.Unmarshal([]byte(body), &limited); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || len(limited.Requests) != 1 {
		t.Fatalf("limit=1: %d with %d entries", status, len(limited.Requests))
	}
	if status, body, _ = rawGet(t, ts, "/v1/debug/slow?limit=zero", "secret-a"); status != http.StatusBadRequest {
		t.Fatalf("limit=zero: %d %s, want 400", status, body)
	}
}

// TestHealthzObsView pins /healthz as a view of the registry: the obs
// section reports the same span and slow-log counters the instruments
// hold, and the numbers move when requests happen.
func TestHealthzObsView(t *testing.T) {
	srv := NewServer(BatchOptions{MaxMappings: 2})
	defer srv.Close()
	_, do := testClient(t, srv)

	do("POST", "/v1/evaluate", `{"macro": "base", "network": "toy", "max_mappings": 2}`)
	_, health := do("GET", "/healthz", "")
	ob, ok := health["obs"].(map[string]any)
	if !ok {
		t.Fatalf("healthz must expose an obs section: %v", health)
	}
	spans, _ := ob["spans"].(float64)
	recorded, _ := ob["slow_recorded"].(float64)
	if spans < 1 || recorded < 1 {
		t.Fatalf("obs counters must move after a request: %v", ob)
	}
	st := srv.ObsStats()
	if int64(spans) != st.Spans || uint64(recorded) != st.SlowRecorded {
		t.Fatalf("healthz obs (%v) drifted from ObsStats (%+v)", ob, st)
	}
}

// TestReloadTenants covers the SIGHUP rotation contract: a valid new
// set swaps atomically (old token out, new token in), every invalid
// reload keeps the old set in force, and both outcomes are counted.
func TestReloadTenants(t *testing.T) {
	srv := NewServer(BatchOptions{Tenants: mustTenants(t, twoTenantsYAML)})
	defer srv.Close()
	do := tenantClient(t, srv)

	if status, _, out := do("secret-a", "GET", "/v1/macros", ""); status != http.StatusOK {
		t.Fatalf("baseline auth: %d %v", status, out)
	}

	rotated := mustTenants(t, `tenants:
  - id: team-a
    token: rotated-a
    weight: 2
  - id: team-b
    token: secret-b
`)
	if err := srv.ReloadTenants(rotated); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := do("secret-a", "GET", "/v1/macros", ""); status != http.StatusUnauthorized {
		t.Fatalf("old token after rotation: %d, want 401", status)
	}
	if status, _, _ := do("rotated-a", "GET", "/v1/macros", ""); status != http.StatusOK {
		t.Fatalf("rotated token: %d, want 200", status)
	}

	// A nil/empty set must be refused — rotating to "no tenants" would
	// silently open the server.
	if err := srv.ReloadTenants(nil); err == nil {
		t.Fatal("reloading an empty tenant set must fail")
	}
	// A broken file on disk must be refused with the old set kept.
	bad := filepath.Join(t.TempDir(), "tenants.yaml")
	if err := os.WriteFile(bad, []byte("tenants:\n  - id: x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.ReloadTenantsFile(bad); err == nil {
		t.Fatal("reloading a tenant file with no tokens must fail")
	}
	if status, _, _ := do("rotated-a", "GET", "/v1/macros", ""); status != http.StatusOK {
		t.Fatal("failed reloads must keep the previous set serving")
	}
	// A good file swaps.
	good := filepath.Join(t.TempDir(), "tenants.yaml")
	if err := os.WriteFile(good, []byte("tenants:\n  - id: team-c\n    token: secret-c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.ReloadTenantsFile(good); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := do("secret-c", "GET", "/v1/macros", ""); status != http.StatusOK {
		t.Fatal("file reload must admit the new tenant")
	}

	st := srv.ObsStats()
	if st.TenantReloads != 2 || st.TenantReloadErrors != 2 {
		t.Fatalf("reload counters = %d ok / %d error, want 2/2", st.TenantReloads, st.TenantReloadErrors)
	}

	// An open server cannot be locked down retroactively: its handler
	// chain was built without the auth middleware.
	open := NewServer(BatchOptions{})
	defer open.Close()
	if err := open.ReloadTenants(mustTenants(t, twoTenantsYAML)); err == nil {
		t.Fatal("enabling tenancy on a running open server must fail")
	}
}

// TestDebugHandler pins the pprof split: the opt-in debug handler
// serves profiles (plus /metrics and /healthz for convenience), and the
// public API handler refuses /debug/pprof/ outright.
func TestDebugHandler(t *testing.T) {
	srv := NewServer(BatchOptions{})
	defer srv.Close()

	dbg := httptest.NewServer(srv.DebugHandler())
	defer dbg.Close()
	status, body, _ := rawGet(t, dbg, "/debug/pprof/", "")
	if status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index on debug listener: %d", status)
	}
	if status, body, _ = rawGet(t, dbg, "/metrics", ""); status != http.StatusOK ||
		!strings.Contains(body, "cimloop_uptime_seconds") {
		t.Fatalf("debug /metrics: %d", status)
	}
	if status, _, _ = rawGet(t, dbg, "/healthz", ""); status != http.StatusOK {
		t.Fatalf("debug /healthz: %d", status)
	}

	pub := httptest.NewServer(srv.Handler())
	defer pub.Close()
	if status, _, _ = rawGet(t, pub, "/debug/pprof/", ""); status == http.StatusOK {
		t.Fatal("pprof must never be reachable on the public listener")
	}
}
