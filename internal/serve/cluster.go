package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/serve/api"
)

// Cluster mode: this file wires internal/cluster into the server. Three
// seams, all optional and independent of the single-node paths:
//
//   - a consistent-hash ring over the static peer list decides which
//     node owns each evaluation request and cache key;
//   - the forwarding middleware proxies POST /v1/evaluate to the owner
//     (hop-guarded by ForwardHeader, degrading to local evaluation when
//     the owner is unreachable);
//   - the shared blob tier is layered under the cache as L3 — cold
//     compiles write through to it, misses read through it — so any
//     node's compile warm-starts every other node.
//
// GET /v1/cluster reports membership, per-peer health, the local cache's
// key-ownership split, and the blob tier's state.

// ForwardHeader marks a request as already forwarded once. Its presence
// pins the request to the receiving node — a one-hop guard, so a skewed
// or mixed-version ring can never bounce a request in a forwarding loop.
const ForwardHeader = "X-Cimloop-Forwarded"

// ForwardedToHeader is set on a proxied response with the owner's node
// ID, so clients (and the smoke tests) can see where a request landed.
const ForwardedToHeader = "X-Cimloop-Forwarded-To"

// peerProbe is one cached health check of a ring member.
type peerProbe struct {
	healthy bool
	version string
	at      time.Time
}

// clusterState carries the server's optional cluster wiring. The zero
// value (single-node, no blob tier) disables everything.
type clusterState struct {
	enabled bool // ring routing on (node id + peers configured)
	self    cluster.Node
	ring    *cluster.Ring
	remote  *cluster.Remote // shared blob tier; nil without BlobURL
	err     string          // configuration error; cluster then stays off

	// probeClient bounds health probes; forwardClient carries proxied
	// evaluations and is deliberately unbounded (the evaluation itself
	// may be long) — the caller's request context still cancels it.
	probeClient   *http.Client
	forwardClient *http.Client

	local, forwarded, received, forwardErrs atomic.Uint64

	probeTTL time.Duration
	mu       sync.Mutex
	probes   map[string]peerProbe
}

// initCluster wires the optional ring and blob tier from BatchOptions.
// Misconfiguration is recorded, not fatal (mirroring openPersist): the
// server still serves single-node, and ClusterError surfaces the problem
// for callers that prefer failing fast.
func (s *Server) initCluster(opts BatchOptions) {
	cs := &s.cluster
	cs.probeTTL = 5 * time.Second
	cs.probeClient = &http.Client{Timeout: 2 * time.Second}
	cs.forwardClient = &http.Client{}
	cs.probes = make(map[string]peerProbe)
	if opts.BlobURL != "" {
		cs.remote = cluster.NewRemote(opts.BlobURL, cluster.RemoteOptions{})
	}
	if opts.ClusterNodeID == "" && opts.ClusterPeers == "" {
		return
	}
	if opts.ClusterNodeID == "" || opts.ClusterPeers == "" {
		cs.err = "cluster: -node-id and -peers must be set together"
		return
	}
	peers, err := cluster.ParsePeers(opts.ClusterPeers)
	if err != nil {
		cs.err = err.Error()
		return
	}
	for _, p := range peers {
		if p.ID == opts.ClusterNodeID {
			cs.self = p
			cs.ring = cluster.NewRing(peers, opts.ClusterVNodes)
			cs.enabled = true
			return
		}
	}
	cs.err = fmt.Sprintf("cluster: node id %q is not in the peers list", opts.ClusterNodeID)
}

// ClusterError reports a cluster misconfiguration, for callers (the CLI)
// that prefer failing fast over silently serving single-node.
func (s *Server) ClusterError() error {
	if s.cluster.err != "" {
		return fmt.Errorf("serve: %s", s.cluster.err)
	}
	return nil
}

// closeCluster stops the blob-tier client (flushing its write-behind
// queue first, so a just-compiled engine reaches the shared tier even on
// immediate shutdown).
func (s *Server) closeCluster() {
	if s.cluster.remote != nil {
		s.cluster.remote.Close()
	}
}

// remoteLoader returns the cache's L3 read-through hook: fetch the key
// from the blob tier, decode, and re-verify its content fingerprint —
// exactly the checks the boot-time disk scan applies, because a shared
// tier is written by other nodes and trusted even less than local disk.
// Records failing verification are purged from the tier and reported as
// misses, so one poisoned object costs one local compile, once.
func (s *Server) remoteLoader() func(key string) (any, float64, bool) {
	remote := s.cluster.remote
	return func(key string) (any, float64, bool) {
		ctx := context.Background()
		switch {
		case strings.HasPrefix(key, "eng|"):
			rec, ok, err := remote.Get(ctx, persist.KindEngine, key)
			if err != nil || !ok {
				return nil, 0, false
			}
			eng, err := persist.DecodeEngine(rec.Payload)
			if err != nil || engineKey(ArchFingerprint(eng.Arch())) != key {
				remote.Delete(persist.KindEngine, key)
				return nil, 0, false
			}
			return eng, rec.CostSec, true
		case strings.HasPrefix(key, "ctx|"):
			// Columnar first (what this version writes through), then the
			// legacy JSON kind — objects stored by pre-columnar nodes live
			// under a different record name, so a mixed-version tier needs
			// both probes.
			kind := persist.KindLayerContextCol
			rec, ok, err := remote.Get(ctx, kind, key)
			if err != nil {
				return nil, 0, false
			}
			if !ok {
				kind = persist.KindLayerContext
				rec, ok, err = remote.Get(ctx, kind, key)
				if err != nil || !ok {
					return nil, 0, false
				}
			}
			lctx, err := persist.DecodeLayerContextKind(kind, rec.Payload)
			if err != nil {
				remote.Delete(kind, key)
				return nil, 0, false
			}
			parts := strings.Split(key, "|")
			if len(parts) != 3 || contextKey(parts[1], LayerFingerprint(lctx.Layer)) != key {
				remote.Delete(kind, key)
				return nil, 0, false
			}
			return lctx, rec.CostSec, true
		}
		return nil, 0, false
	}
}

// evalRouteKey extracts the routing key from a raw /v1/evaluate body
// without full decoding (unknown-field and validity errors stay with the
// local handler, which reports them properly).
func evalRouteKey(body []byte) string {
	var probe struct {
		Macro        string `json:"macro"`
		Spec         string `json:"spec"`
		Scenario     string `json:"scenario"`
		SystemMacros int    `json:"system_macros"`
	}
	if json.Unmarshal(body, &probe) != nil {
		return ""
	}
	return cluster.EvalRouteKey(probe.Macro, probe.Spec, probe.Scenario, probe.SystemMacros)
}

// handleEvaluateRouted is the POST /v1/evaluate entry: on a clustered
// server it forwards requests owned by a peer (once — ForwardHeader pins
// the second hop), and any forwarding failure degrades to local
// evaluation, so routing is strictly an optimization: no request ever
// fails because a peer is down.
func (s *Server) handleEvaluateRouted(w http.ResponseWriter, r *http.Request) {
	cs := &s.cluster
	if !cs.enabled {
		s.handleEvaluate(w, r)
		return
	}
	if r.Header.Get(ForwardHeader) != "" {
		cs.received.Add(1)
		s.handleEvaluate(w, r)
		return
	}
	limit := s.opts.maxBodyBytes()
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest,
			api.Errorf(api.CodeInvalidRequest, "reading request body: %v", err))
		return
	}
	// Hand the buffered body back to whichever handler runs it (the local
	// handler re-applies the size bound, so an oversized body still 413s).
	r.Body = io.NopCloser(bytes.NewReader(body))
	key := evalRouteKey(body)
	if key == "" {
		s.handleEvaluate(w, r)
		return
	}
	owner, ok := cs.ring.Owner(key)
	if !ok || owner.ID == cs.self.ID {
		cs.local.Add(1)
		s.handleEvaluate(w, r)
		return
	}
	if s.forwardEvaluate(w, r, body, owner) {
		cs.forwarded.Add(1)
		return
	}
	// The owner is unreachable: evaluate here rather than fail. The
	// result is identical — the owner merely had the warmer cache.
	cs.forwardErrs.Add(1)
	r.Body = io.NopCloser(bytes.NewReader(body))
	s.handleEvaluate(w, r)
}

// forwardEvaluate proxies one evaluation to its owner, relaying status,
// content type, and body verbatim. Returns false — with nothing written —
// if the owner could not be reached or did not answer coherently.
func (s *Server) forwardEvaluate(w http.ResponseWriter, r *http.Request, body []byte, owner cluster.Node) bool {
	// The whole proxy round trip — including streaming the owner's
	// response back — is the request's "forward" phase.
	defer obs.Timed(r.Context(), "forward")()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		owner.Addr+"/v1/evaluate", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, s.cluster.self.ID)
	if auth := r.Header.Get("Authorization"); auth != "" {
		// A multi-tenant ring needs the caller's credentials at the owner
		// too, or every forwarded evaluation would bounce with a 401.
		req.Header.Set("Authorization", auth)
	}
	resp, err := s.cluster.forwardClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(ForwardedToHeader, owner.ID)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// ClusterStatus assembles the GET /v1/cluster report: static membership
// with per-peer health and version, the exact hash-circle share and the
// local cache's key-ownership split per member, forwarding counters, and
// the blob tier's state. Peer probes are cached for probeTTL so a burst
// of status reads costs one probe round.
func (s *Server) ClusterStatus(ctx context.Context) api.ClusterResponse {
	cs := &s.cluster
	var out api.ClusterResponse
	if cs.remote != nil {
		healthy := cs.remote.Healthy()
		if !healthy {
			// The breaker is tripped; let its half-open window decide
			// whether a probe may check for recovery right now.
			healthy = cs.remote.Probe(ctx)
		}
		st := cs.remote.Stats()
		out.Blob = &api.ClusterBlobStats{
			URL:     cs.remote.BaseURL(),
			Healthy: healthy,
			Stats: api.RemoteTierStats{
				Gets: st.Gets, Hits: st.Hits, Misses: st.Misses,
				Puts: st.Puts, Errors: st.Errors, Dropped: st.Dropped,
			},
		}
	}
	if !cs.enabled {
		return out
	}
	out.Enabled = true
	out.Self = cs.self.ID
	out.VirtualNodes = cs.ring.VirtualNodes()
	out.Forward = api.ClusterForwardStats{
		Local:     cs.local.Load(),
		Forwarded: cs.forwarded.Load(),
		Received:  cs.received.Load(),
		Errors:    cs.forwardErrs.Load(),
	}
	owned := make(map[string]int)
	keys := s.snapshotCacheKeys()
	for k := range keys {
		if n, ok := cs.ring.Owner(k); ok {
			owned[n.ID]++
		}
	}
	out.CachedKeys = len(keys)
	shares := cs.ring.Shares()
	for _, n := range cs.ring.Nodes() {
		ns := api.ClusterNodeStatus{
			ID: n.ID, Addr: n.Addr,
			SharePct:  shares[n.ID] * 100,
			OwnedKeys: owned[n.ID],
		}
		if n.ID == cs.self.ID {
			ns.Self, ns.Healthy, ns.Version = true, true, api.Version
		} else {
			ns.Healthy, ns.Version = s.probePeer(ctx, n)
		}
		out.Nodes = append(out.Nodes, ns)
	}
	return out
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ClusterStatus(r.Context()))
}

// probePeer health-checks one ring member (GET /healthz), caching the
// verdict for probeTTL.
func (s *Server) probePeer(ctx context.Context, n cluster.Node) (bool, string) {
	cs := &s.cluster
	cs.mu.Lock()
	if p, ok := cs.probes[n.ID]; ok && time.Since(p.at) < cs.probeTTL {
		cs.mu.Unlock()
		return p.healthy, p.version
	}
	cs.mu.Unlock()
	var p peerProbe
	if req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.Addr+"/healthz", nil); err == nil {
		if resp, err := cs.probeClient.Do(req); err == nil {
			var h api.HealthzResponse
			if resp.StatusCode == http.StatusOK &&
				json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h) == nil &&
				h.Status == "ok" {
				p.healthy, p.version = true, h.Version
			}
			resp.Body.Close()
		}
	}
	p.at = time.Now()
	cs.mu.Lock()
	cs.probes[n.ID] = p
	cs.mu.Unlock()
	return p.healthy, p.version
}
