package serve

import "repro/internal/serve/api"

// tokenBudget is the server's global evaluation-concurrency budget: a
// non-blocking counting semaphore shared between the request-level worker
// pool and the intra-request mapping-search fan-out. Every evaluation —
// a sweep item or a direct EvaluateCtx call — holds one token for its
// duration; a request's parallel search borrows only what is left for
// its extra workers. The result is a single cap on actively-evaluating
// goroutines: when the request pool is saturated, tryAcquire returns 0
// and per-layer searches run serially; when the server handles one lone
// request, the whole budget is available for its fan-out. Acquisition
// never blocks (a caller finding the budget empty still evaluates, it
// just cannot fan out), so the budget shapes work but never deadlocks or
// rejects it.
type tokenBudget struct {
	tokens chan struct{}
}

func newTokenBudget(n int) *tokenBudget {
	if n < 1 {
		n = 1
	}
	b := &tokenBudget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// tryAcquire takes up to n tokens without blocking and returns how many
// it got (possibly 0).
func (b *tokenBudget) tryAcquire(n int) int {
	got := 0
	for got < n {
		select {
		case <-b.tokens:
			got++
		default:
			return got
		}
	}
	return got
}

// release returns n previously acquired tokens.
func (b *tokenBudget) release(n int) {
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
}

// capacity is the budget's total token count.
func (b *tokenBudget) capacity() int { return cap(b.tokens) }

// available is the instantaneous free token count (racy by nature; used
// for stats only).
func (b *tokenBudget) available() int { return len(b.tokens) }

// BudgetStats snapshots the shared concurrency budget for /healthz (the
// wire type api.BudgetStats).
type BudgetStats = api.BudgetStats
