package serve

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/serve/api"
)

// tokenBudget is the server's global evaluation-concurrency budget: a
// non-blocking counting semaphore shared between the request-level worker
// pool and the intra-request mapping-search fan-out. Every evaluation —
// a sweep item or a direct EvaluateCtx call — holds one token for its
// duration; a request's parallel search borrows only what is left for
// its extra workers. The result is a single cap on actively-evaluating
// goroutines: when the request pool is saturated, tryAcquire returns 0
// and per-layer searches run serially; when the server handles one lone
// request, the whole budget is available for its fan-out. Acquisition
// never blocks (a caller finding the budget empty still evaluates, it
// just cannot fan out), so the budget shapes work but never deadlocks or
// rejects it. The one exception is deliberate: acquireWait lets a
// request with ample deadline headroom park briefly for its FIRST
// fan-out token instead of degrading straight to a serial search — see
// blocking budget mode below.
type tokenBudget struct {
	tokens  chan struct{}
	blocked atomic.Uint64
}

func newTokenBudget(n int) *tokenBudget {
	if n < 1 {
		n = 1
	}
	b := &tokenBudget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// tryAcquire takes up to n tokens without blocking and returns how many
// it got (possibly 0).
func (b *tokenBudget) tryAcquire(n int) int {
	got := 0
	for got < n {
		select {
		case <-b.tokens:
			got++
		default:
			return got
		}
	}
	return got
}

// acquireWait is blocking budget mode: take up to n tokens, parking up
// to wait for the FIRST one when none is free, then draining the rest
// non-blocking. The wait applies only to going from zero to one token —
// the difference between a serial and a parallel layer search — because
// that first token carries nearly all of the fan-out's marginal value;
// waiting for a full complement would park requests behind each other
// for diminishing returns. wait <= 0 degrades to tryAcquire, and ctx
// cancellation ends the wait early. Returns the number of tokens held.
func (b *tokenBudget) acquireWait(ctx context.Context, n int, wait time.Duration) int {
	got := b.tryAcquire(n)
	if got > 0 || n <= 0 || wait <= 0 {
		return got
	}
	b.blocked.Add(1)
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-b.tokens:
		return 1 + b.tryAcquire(n-1)
	case <-t.C:
	case <-ctx.Done():
	}
	return 0
}

// blockedAcquires counts acquisitions that entered a blocking wait.
func (b *tokenBudget) blockedAcquires() uint64 { return b.blocked.Load() }

// release returns n previously acquired tokens.
func (b *tokenBudget) release(n int) {
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
}

// capacity is the budget's total token count.
func (b *tokenBudget) capacity() int { return cap(b.tokens) }

// available is the instantaneous free token count (racy by nature; used
// for stats only).
func (b *tokenBudget) available() int { return len(b.tokens) }

// BudgetStats snapshots the shared concurrency budget for /healthz (the
// wire type api.BudgetStats).
type BudgetStats = api.BudgetStats
