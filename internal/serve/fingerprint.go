package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Fingerprints give the cache its content addressing: two requests that
// describe the same (architecture, layer, encoding) hash to the same key
// no matter how the description was constructed (macro builder, textual
// spec, or programmatic Arch). Everything that feeds the compiled engine
// or the per-layer amortized state is folded into the digest; map-typed
// fields are serialized in sorted key order so the hash is stable.

// ArchFingerprint returns a stable content hash of an architecture: the
// flattened level hierarchy, technology context, operand precisions, data
// encodings, and mapper guidance.
func ArchFingerprint(a *core.Arch) string {
	h := sha256.New()
	fmt.Fprintf(h, "arch|%s|node=%d|vdd=%g|clk=%g|bits=%d/%d/%d/%d|enc=%s/%s|adcshare=%d|",
		a.Name, a.Node.Nm, a.Vdd, a.ClockHz,
		a.InputBits, a.WeightBits, a.DACBits, a.CellBits,
		a.InputEncoding, a.WeightEncoding, a.ADCShare)
	fmt.Fprintf(h, "tlvl=%d|wsl=%d|isl=%d|inner=%v|", a.TemporalLevel, a.WeightSliceLevel, a.InputSliceLevel, a.InnerDims)
	writeIntKeyed(h, "sprefs", len(a.SpatialPrefs), func(w io.Writer) {
		for _, k := range sortedIntKeys(a.SpatialPrefs) {
			fmt.Fprintf(w, "%d=%v;", k, a.SpatialPrefs[k])
		}
	})
	writeIntKeyed(h, "ttargets", len(a.TemporalTargets), func(w io.Writer) {
		keys := make([]string, 0, len(a.TemporalTargets))
		for k := range a.TemporalTargets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s=%d;", k, a.TemporalTargets[k])
		}
	})
	for i := range a.Levels {
		lv := &a.Levels[i]
		fmt.Fprintf(h, "lvl|%s|%d|%s|mesh=%d/%d/%d|", lv.Name, lv.Kind, lv.Class, lv.Mesh, lv.MeshX, lv.MeshY)
		writeAttrs(h, lv.Attrs)
		writeKindSet(h, "keep", lv.Keeps)
		writeKindSet(h, "transit", lv.Transits)
		writeKindSet(h, "coalesce", lv.CoalesceT)
		writeKindSet(h, "spatial", lv.SpatialReuse)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LayerFingerprint returns a stable content hash of one workload layer:
// its einsum (dimensions, bounds, projections) and operand statistics.
func LayerFingerprint(l workload.Layer) string {
	h := sha256.New()
	fmt.Fprintf(h, "layer|%s|rep=%d|act=%v/%g/%g/%g/%g|wgt=%g|",
		l.Name, l.Repeat,
		l.Act.Signed, l.Act.Sparsity, l.Act.Mean, l.Act.Std, l.Act.Corr,
		l.Wgt.Std)
	if l.Op != nil {
		fmt.Fprintf(h, "op|%s|", l.Op.Name)
		for _, d := range l.Op.Dims {
			fmt.Fprintf(h, "dim|%s=%d|", d.Name, d.Bound)
		}
		for _, s := range l.Op.Spaces {
			fmt.Fprintf(h, "space|%s|%d|", s.Name, s.Kind)
			for _, ax := range s.Axes {
				for _, c := range ax {
					fmt.Fprintf(h, "%s*%d+", c.Dim, c.Coeff)
				}
				fmt.Fprint(h, ";")
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeIntKeyed(w io.Writer, tag string, n int, body func(io.Writer)) {
	fmt.Fprintf(w, "%s[%d]{", tag, n)
	if n > 0 {
		body(w)
	}
	fmt.Fprint(w, "}|")
}

func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func writeAttrs(w io.Writer, attrs map[string]float64) {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "attr|%s=%g|", k, attrs[k])
	}
}

func writeKindSet(w io.Writer, tag string, m map[tensor.Kind]bool) {
	kinds := make([]int, 0, len(m))
	for k, v := range m {
		if v {
			kinds = append(kinds, int(k))
		}
	}
	sort.Ints(kinds)
	fmt.Fprintf(w, "%s=%v|", tag, kinds)
}
