package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve/jobs"
)

// waitRunning polls until the job leaves the queue.
func waitRunning(t *testing.T, srv *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %s not found", id)
		}
		if snap.Status != jobs.StatusQueued {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestSubmitSweepJobLifecycle submits a real sweep as a job and follows
// it to completion: per-item progress, partial results, and the rendered
// table as the final result.
func TestSubmitSweepJobLifecycle(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 2, MaxMappings: 2})
	defer srv.Close()

	reqs := Grid([]string{"base", "macro-b"}, []string{"toy"}, nil, 0, 2)
	snap, err := srv.SubmitSweep(reqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Total != len(reqs) || snap.ID == "" {
		t.Fatalf("initial snapshot: %+v", snap)
	}
	final, err := srv.WaitJob(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != jobs.StatusSucceeded {
		t.Fatalf("status %s (%+v)", final.Status, final)
	}
	if final.Completed != len(reqs) || final.FirstError != "" {
		t.Fatalf("progress: %+v", final)
	}
	if len(final.Results) != len(reqs) {
		t.Fatalf("partial results: %d, want %d", len(final.Results), len(reqs))
	}
	for i, p := range final.Results {
		r, ok := p.(*Result)
		if !ok || r == nil || r.EnergyJ <= 0 {
			t.Fatalf("partial %d: %#v", i, p)
		}
	}
	table, ok := final.Result.(string)
	if !ok || !strings.Contains(table, "Batch sweep") {
		t.Fatalf("final result: %#v", final.Result)
	}
}

// TestSubmitSweepReportsPerItemErrors checks a bad grid item surfaces as
// the job's first error without failing the job.
func TestSubmitSweepReportsPerItemErrors(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, MaxMappings: 2})
	defer srv.Close()
	reqs := []Request{
		{Macro: "base", Network: "toy"},
		{Macro: "no-such-macro", Network: "toy"},
	}
	snap, err := srv.SubmitSweep(reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	final, err := srv.WaitJob(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != jobs.StatusSucceeded {
		t.Fatalf("status %s", final.Status)
	}
	if final.FirstError == "" || !strings.Contains(final.FirstError, "no-such-macro") {
		t.Fatalf("first error %q", final.FirstError)
	}
	if final.Completed != 2 {
		t.Fatalf("completed %d", final.Completed)
	}
}

// TestCancelJobStopsInFlightWork cancels a heavyweight running sweep and
// checks the cancellation reaches in-flight layer searches: the job lands
// in the cancelled state with the grid unfinished. The sweep is sized so
// that finishing it would take orders of magnitude longer than the
// cancel round trip.
func TestCancelJobStopsInFlightWork(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1})
	defer srv.Close()

	// 4 requests x full ResNet18 x 400-mapping budget: far more work
	// than can finish between "running" and the cancel below.
	reqs := Grid([]string{"base", "macro-a", "macro-b", "macro-d"},
		[]string{"resnet18"}, nil, 0, 400)
	snap, err := srv.SubmitSweep(reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, srv, snap.ID)
	if _, ok := srv.CancelJob(snap.ID); !ok {
		t.Fatal("cancel: job not found")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := srv.WaitJob(ctx, snap.ID)
	if err != nil {
		t.Fatalf("job did not stop after cancellation: %v", err)
	}
	if final.Status != jobs.StatusCancelled {
		t.Fatalf("status %s, want cancelled", final.Status)
	}
	if final.Completed >= final.Total {
		t.Fatalf("cancelled job finished the whole grid: %d/%d", final.Completed, final.Total)
	}
}

// TestSweepCtxStopsDispatchOnCancel is the regression test for the
// feeder bug: cancelling the parent context mid-sweep must stop
// dispatching remaining grid items instead of draining the whole slice.
func TestSweepCtxStopsDispatchOnCancel(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, MaxMappings: 2})
	reqs := Grid([]string{"base"}, []string{"toy"}, nil, 0, 2)
	for len(reqs) < 16 {
		reqs = append(reqs, reqs[0])
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completions atomic.Int32
	results, err := srv.SweepCtx(ctx, reqs, 1, func(i int, r *Result) {
		if completions.Add(1) == 1 {
			cancel() // cancel as soon as the first item lands
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	filled := 0
	for _, r := range results {
		if r != nil {
			filled++
		}
	}
	// One item completed before the cancel; with a single worker at most
	// one more was already dispatched. The rest must never run.
	if filled > 3 {
		t.Fatalf("%d of %d grid items evaluated after cancellation", filled, len(reqs))
	}
	if filled == 0 {
		t.Fatal("no items completed before cancellation")
	}
}

// TestSweepCtxMatchesSweep checks the ctx-aware path is the same sweep:
// identical results, request order preserved, onDone streamed once per
// item.
func TestSweepCtxMatchesSweep(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 4, MaxMappings: 2})
	reqs := Grid([]string{"base", "macro-b"}, []string{"toy"}, nil, 0, 2)
	want, err := srv.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[int]int{}
	got, err := srv.SweepCtx(context.Background(), reqs, 4, func(i int, r *Result) {
		mu.Lock()
		seen[i]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].EnergyJ != want[i].EnergyJ || got[i].Tag != want[i].Tag {
			t.Fatalf("result %d diverged: %+v vs %+v", i, got[i], want[i])
		}
		if seen[i] != 1 {
			t.Fatalf("item %d reported %d times", i, seen[i])
		}
	}
}

// blockingJob occupies a job-store runner until released, so tests can
// saturate the queue deterministically.
func blockingJob(t *testing.T, srv *Server) (id string, release func()) {
	t.Helper()
	ch := make(chan struct{})
	snap, err := srv.jobs.Submit("blocker", 0, func(ctx context.Context, report jobs.Report) (any, error) {
		select {
		case <-ch:
		case <-ctx.Done():
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	return snap.ID, func() { once.Do(func() { close(ch) }) }
}

// TestSubmitSweepBackpressure checks a saturated pool rejects new jobs
// with jobs.ErrQueueFull instead of queueing unboundedly.
func TestSubmitSweepBackpressure(t *testing.T) {
	srv := NewServer(BatchOptions{MaxRunningJobs: 1, MaxQueuedJobs: 1})
	defer srv.Close()

	runningID, release := blockingJob(t, srv)
	defer release()
	waitRunning(t, srv, runningID)
	_, releaseQueued := blockingJob(t, srv) // fills the single queue slot
	defer releaseQueued()

	reqs := Grid([]string{"base"}, []string{"toy"}, nil, 0, 2)
	if _, err := srv.SubmitSweep(reqs, 1); !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("err = %v, want jobs.ErrQueueFull", err)
	}
	if srv.RetryAfter() <= 0 {
		t.Fatalf("retry-after %v", srv.RetryAfter())
	}
}
