package serve

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
)

// Durable warm starts: this file wires the on-disk store (package
// persist) into the serving layer. Cache fills stream to disk through a
// write-behind queue (the hot path never blocks on disk), boot scans the
// cache dir in bounded parallel and admits entries through the normal
// eviction policy, and the job store snapshots terminal jobs and
// write-ahead-logs queued ones so a restarted instance answers
// /v1/jobs/{id} for prior work and resumes interrupted sweeps.

// Cache keys are "<kind>|<content fingerprint>"; the persisted record key
// is the cache key itself, so a loaded record maps straight back to its
// slot after fingerprint verification.
func engineKey(archFP string) string           { return "eng|" + archFP }
func contextKey(archFP, layerFP string) string { return "ctx|" + archFP + "|" + layerFP }

// Job record keys distinguish terminal snapshots from write-ahead entries.
func jobSnapKey(id string) string { return "job|" + id }
func jobWALKey(id string) string  { return "wal|" + id }

// jobWAL is the write-ahead record of an accepted sweep job: everything
// needed to re-run it after a restart, including its scheduling class so
// a replayed overnight sweep does not jump ahead of interactive work.
// Only JSON-expressible requests are replayable — the HTTP path always
// is, but programmatic requests carrying prebuilt *Arch/*Net values
// cannot be serialized, so such jobs are not write-ahead-logged at all
// (walExpressible); their terminal snapshots still persist.
type jobWAL struct {
	ID         string        `json:"id"`
	Requests   []Request     `json:"requests"`
	Workers    int           `json:"workers,omitempty"`
	TimeoutSec float64       `json:"timeout_sec,omitempty"`
	Priority   jobs.Priority `json:"priority,omitempty"`
	Tenant     string        `json:"tenant,omitempty"`
	CreatedAt  time.Time     `json:"created_at"`
}

// Checkpoint record keys: "ckpt|<job id>|<zero-padded item index>". The
// padding keeps keys filename-safe and fixed-width; the index is also
// inside the payload (EncodeCheckpointRecord), which is what replay
// trusts — the key exists for the store's one-file-per-key dedup.
func ckptKey(id string, idx int) string { return fmt.Sprintf("ckpt|%s|%06d", id, idx) }

// WarmStats summarizes one boot's warm-start scan (the wire type
// api.WarmStats).
type WarmStats = api.WarmStats

// PersistStats is the /healthz "persist" section (the wire type
// api.PersistStats).
type PersistStats = api.PersistStats

// persistState carries the server's optional durable stores. Both fields
// are nil when the corresponding directory is not configured.
type persistState struct {
	cache *persist.Store
	jobs  *persist.Store
	warm  WarmStats
	err   string
}

// PersistStats snapshots the persistence layer (zero-valued with
// persistence disabled).
func (s *Server) PersistStats() PersistStats {
	ps := PersistStats{Warm: s.persist.warm, Error: s.persist.err}
	if s.persist.cache != nil {
		ps.Enabled = true
		ps.Cache = s.persist.cache.Stats()
	}
	if s.persist.jobs != nil {
		ps.Enabled = true
		ps.Jobs = s.persist.jobs.Stats()
	}
	return ps
}

// PersistError reports a store that failed to open, for callers (the CLI)
// that prefer failing fast over running without requested durability.
func (s *Server) PersistError() error {
	if s.persist.err != "" {
		return fmt.Errorf("serve: %s", s.persist.err)
	}
	return nil
}

// openPersist opens the configured stores, recording failures instead of
// propagating them (a server with a broken disk still serves). The two
// stores must not share a directory: each boot scan deletes records of
// kinds it does not own, so a shared dir would silently destroy the
// other store's files.
func (s *Server) openPersist(cacheDir, jobsDir string) {
	if cacheDir != "" && jobsDir != "" && filepath.Clean(cacheDir) == filepath.Clean(jobsDir) {
		s.persist.err = fmt.Sprintf("cache dir and jobs dir must differ (both %q)", cacheDir)
		return
	}
	open := func(dir string) *persist.Store {
		if dir == "" {
			return nil
		}
		st, err := persist.Open(dir)
		if err != nil {
			s.persist.err = err.Error()
			return nil
		}
		return st
	}
	s.persist.cache = open(cacheDir)
	s.persist.jobs = open(jobsDir)
}

// cacheFillHook returns the cache's onFill callback: encode (on the
// writer goroutine) and enqueue each filled engine/context, tagged with
// its compile cost so a future warm start seeds the GDSF weight. Every
// fill lands in the local disk store; only computed fills also write
// through to the cluster blob tier — a value restored FROM that tier
// must not echo straight back to it.
func (s *Server) cacheFillHook() func(key string, val any, costSec float64, computed bool) {
	store := s.persist.cache
	remote := s.cluster.remote
	return func(key string, val any, costSec float64, computed bool) {
		var kind persist.Kind
		var encode func() ([]byte, error)
		switch v := val.(type) {
		case *core.Engine:
			kind = persist.KindEngine
			encode = func() ([]byte, error) { return persist.EncodeEngine(v) }
		case *core.LayerContext:
			// New context writes use the binary columnar payload; old JSON
			// records stay readable (warmStartCache accepts both kinds),
			// but the filename is kind-prefixed, so retire the legacy file
			// for this key or both would be rescanned forever.
			kind = persist.KindLayerContextCol
			encode = func() ([]byte, error) { return persist.EncodeLayerContextColumnar(v) }
			if store != nil {
				store.Delete(persist.KindLayerContext, key)
			}
		default:
			return
		}
		if store != nil {
			store.Put(kind, key, costSec, encode)
		}
		if remote != nil && computed {
			remote.Put(kind, key, costSec, encode)
		}
	}
}

// warmStartCache scans the cache dir with bounded parallelism, verifies
// each record's content fingerprint, and admits survivors through the
// normal eviction policy (capacity still holds). Mismatches and decode
// failures are deleted by the scan. Admission runs in descending
// persisted-cost order (ScanOrdered): when the cache budget cannot hold
// every record on disk, the compiles that were most expensive to produce
// are warm first and the cheap ones are the ones evicted.
func (s *Server) warmStartCache() {
	store := s.persist.cache
	if store == nil {
		return
	}
	stats, err := store.ScanOrdered(runtime.NumCPU(), func(rec persist.Record) error {
		switch rec.Kind {
		case persist.KindEngine:
			eng, err := persist.DecodeEngine(rec.Payload)
			if err != nil {
				return err
			}
			// Re-fingerprint: a record whose decoded content no longer
			// hashes to its key (schema drift, hand-edited file) must not
			// be served under that key.
			if engineKey(ArchFingerprint(eng.Arch())) != rec.Key {
				return fmt.Errorf("serve: engine record key mismatch")
			}
			s.cache.admit(rec.Key, rec.CostSec, eng)
		case persist.KindLayerContext, persist.KindLayerContextCol:
			// Both payload generations are admitted: columnar is what this
			// version writes, JSON is the fallback for records from before
			// the codec (or written by older nodes).
			lctx, err := persist.DecodeLayerContextKind(rec.Kind, rec.Payload)
			if err != nil {
				return err
			}
			parts := strings.Split(rec.Key, "|")
			if len(parts) != 3 || contextKey(parts[1], LayerFingerprint(lctx.Layer)) != rec.Key {
				return fmt.Errorf("serve: context record key mismatch")
			}
			s.cache.admit(rec.Key, rec.CostSec, lctx)
		default:
			return fmt.Errorf("serve: unexpected record kind %v in cache dir", rec.Kind)
		}
		return nil
	})
	if err != nil {
		s.persist.err = err.Error()
		return
	}
	s.persist.warm.Skipped += stats.Skipped
	// Count what was admitted by kind from the cache's own view: admit
	// dedups, so stats.Loaded could overcount under races.
	for key := range s.snapshotCacheKeys() {
		if strings.HasPrefix(key, "eng|") {
			s.persist.warm.Engines++
		} else {
			s.persist.warm.Contexts++
		}
	}
}

// snapshotCacheKeys snapshots the cache's key set (takes the cache lock).
func (s *Server) snapshotCacheKeys() map[string]struct{} {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	keys := make(map[string]struct{}, len(s.cache.items))
	for k := range s.cache.items {
		keys[k] = struct{}{}
	}
	return keys
}

// jobTerminalHook returns the job store's OnTerminal callback: persist
// the terminal snapshot and retire the write-ahead record — except on
// shutdown, where interrupted jobs keep their WAL so the next boot
// replays them.
func (s *Server) jobTerminalHook() func(snap jobs.Snapshot, shutdown bool) {
	store := s.persist.jobs
	return func(snap jobs.Snapshot, shutdown bool) {
		if shutdown && snap.Status == jobs.StatusCancelled {
			// Interrupted, not finished: keep the WAL and the checkpoints so
			// the next boot resumes from the last completed item.
			return
		}
		store.PutBlocking(persist.KindJob, jobSnapKey(snap.ID), 0, func() ([]byte, error) {
			return json.Marshal(snap)
		})
		store.Delete(persist.KindJob, jobWALKey(snap.ID))
		s.deleteCheckpoints(snap.ID, snap.Total)
	}
}

// writeCheckpoint enqueues one finished grid item onto the write-behind
// queue. Droppable by design: a lost checkpoint only means that item is
// re-evaluated on replay.
func (s *Server) writeCheckpoint(id string, idx int, res *Result) {
	store := s.persist.jobs
	if store == nil {
		return
	}
	store.Put(persist.KindCheckpoint, ckptKey(id, idx), 0, func() ([]byte, error) {
		payload, err := checkpointPayload(res)
		if err != nil {
			return nil, err
		}
		return persist.EncodeCheckpointRecord(persist.CheckpointRecord{JobID: id, Index: idx, Payload: payload})
	})
}

// deleteCheckpoints retires a terminal job's checkpoint records.
func (s *Server) deleteCheckpoints(id string, total int) {
	store := s.persist.jobs
	if store == nil {
		return
	}
	for i := 0; i < total; i++ {
		store.Delete(persist.KindCheckpoint, ckptKey(id, i))
	}
}

// logJobWAL write-ahead-logs an accepted sweep job.
func (s *Server) logJobWAL(id string, reqs []Request, opts SweepJobOptions) {
	store := s.persist.jobs
	if store == nil {
		return
	}
	wal := jobWAL{
		ID:         id,
		Requests:   reqs,
		Workers:    opts.Workers,
		TimeoutSec: opts.Timeout.Seconds(),
		Priority:   opts.Priority,
		Tenant:     opts.Tenant,
		CreatedAt:  time.Now(),
	}
	store.PutBlocking(persist.KindJob, jobWALKey(id), 0, func() ([]byte, error) {
		return json.Marshal(wal)
	})
}

// walExpressible reports whether every request survives the WAL's JSON
// round trip: prebuilt *Arch/*Net values are json:"-" and would replay
// as unresolvable empty requests.
func walExpressible(reqs []Request) bool {
	for i := range reqs {
		if reqs[i].Arch != nil || reqs[i].Net != nil {
			return false
		}
	}
	return true
}

// retireJobWAL removes a job's write-ahead record (cancel-before-run).
func (s *Server) retireJobWAL(id string) {
	if s.persist.jobs != nil {
		s.persist.jobs.Delete(persist.KindJob, jobWALKey(id))
	}
}

// warmStartJobs restores terminal snapshots under their original IDs and
// replays write-ahead jobs that never finished, seeding each replay with
// its on-disk checkpoints so only unfinished grid items are re-evaluated.
// Restores happen before replays, so a job with both a snapshot and a
// stale WAL resolves to the snapshot (Restore wins, the replay submit
// then fails and the WAL is retired). Checkpoints whose job is terminal
// or unknown are deleted.
func (s *Server) warmStartJobs() {
	store := s.persist.jobs
	if store == nil {
		return
	}
	var (
		snaps []jobs.Snapshot
		wals  []jobWAL
		ckpts = map[string][]persist.CheckpointRecord{}
	)
	stats, err := store.Scan(1, func(rec persist.Record) error {
		switch {
		case rec.Kind == persist.KindCheckpoint && strings.HasPrefix(rec.Key, "ckpt|"):
			ck, err := persist.DecodeCheckpointRecord(rec.Payload)
			if err != nil {
				return err
			}
			if ckptKey(ck.JobID, ck.Index) != rec.Key {
				return fmt.Errorf("serve: checkpoint key mismatch")
			}
			ckpts[ck.JobID] = append(ckpts[ck.JobID], ck)
			return nil
		case rec.Kind != persist.KindJob:
			return fmt.Errorf("serve: unexpected record kind %v in jobs dir", rec.Kind)
		case strings.HasPrefix(rec.Key, "job|"):
			var snap jobs.Snapshot
			if err := json.Unmarshal(rec.Payload, &snap); err != nil {
				return err
			}
			if jobSnapKey(snap.ID) != rec.Key {
				return fmt.Errorf("serve: job snapshot key mismatch")
			}
			snaps = append(snaps, snap)
		case strings.HasPrefix(rec.Key, "wal|"):
			var wal jobWAL
			if err := json.Unmarshal(rec.Payload, &wal); err != nil {
				return err
			}
			if jobWALKey(wal.ID) != rec.Key {
				return fmt.Errorf("serve: job WAL key mismatch")
			}
			wals = append(wals, wal)
		default:
			return fmt.Errorf("serve: unknown job record key %q", rec.Key)
		}
		return nil
	})
	if err != nil {
		s.persist.err = err.Error()
		return
	}
	s.persist.warm.Skipped += stats.Skipped

	// Submission order: restores then replays, each by ascending ID, so
	// List reads like the pre-restart timeline.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].ID < snaps[j].ID })
	sort.Slice(wals, func(i, j int) bool { return wals[i].ID < wals[j].ID })
	terminal := make(map[string]bool, len(snaps))
	for _, snap := range snaps {
		if err := s.jobs.Restore(snap); err != nil {
			s.persist.warm.Skipped++
			store.Delete(persist.KindJob, jobSnapKey(snap.ID))
			continue
		}
		terminal[snap.ID] = true
		s.persist.warm.Jobs++
	}
	replayed := make(map[string]bool, len(wals))
	for _, wal := range wals {
		if terminal[wal.ID] || len(wal.Requests) == 0 {
			s.retireJobWAL(wal.ID)
			continue
		}
		opts := SweepJobOptions{
			Workers:  wal.Workers,
			Timeout:  secondsToTimeout(wal.TimeoutSec),
			Priority: wal.Priority,
			Tenant:   wal.Tenant,
		}
		run := s.newSweepRun(wal.ID, wal.Requests, opts, true)
		for _, ck := range ckpts[wal.ID] {
			if ck.Index >= len(wal.Requests) {
				continue // stale checkpoint from an unrelated run of this ID
			}
			res, err := decodeCheckpointPayload(ck.Payload)
			if err != nil {
				s.persist.warm.Skipped++
				store.Delete(persist.KindCheckpoint, ckptKey(ck.JobID, ck.Index))
				continue
			}
			run.restore(ck.Index, res)
			s.persist.warm.Checkpoints++
		}
		_, err := s.jobs.SubmitJob(jobs.Submission{
			ID:       wal.ID,
			Priority: wal.Priority,
			Tenant:   wal.Tenant,
			Label:    sweepLabel(wal.Requests),
			Total:    len(wal.Requests),
			Fn:       run.fn(),
			Replay:   true,
		})
		if err != nil {
			s.persist.warm.Skipped++
			s.retireJobWAL(wal.ID)
			continue
		}
		replayed[wal.ID] = true
		s.persist.warm.Replayed++
	}
	// Orphan checkpoints — jobs already terminal, or with no WAL at all —
	// will never be read again; reclaim the files.
	for id, list := range ckpts {
		if replayed[id] {
			continue
		}
		for _, ck := range list {
			store.Delete(persist.KindCheckpoint, ckptKey(id, ck.Index))
		}
	}
}

// closePersist flushes and closes the stores (after the job store has
// drained, so terminal snapshots from shutdown cancellations are queued).
func (s *Server) closePersist() {
	if s.persist.cache != nil {
		s.persist.cache.Close()
	}
	if s.persist.jobs != nil {
		s.persist.jobs.Close()
	}
}
