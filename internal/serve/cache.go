package serve

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve/api"
	"repro/internal/workload"
)

// Stats is a point-in-time snapshot of cache effectiveness (the wire
// type api.CacheStats — the healthz "cache" section).
type Stats = api.CacheStats

// Cache memoizes compiled engines and per-layer amortized contexts under
// content-addressed keys. It is the state that outlives a single
// evaluation call: across requests — and across users — the same (arch,
// layer, encoding) triple compiles once and is reused, the cross-request
// extension of the paper's per-layer amortization.
//
// Eviction is cost-aware GDSF rather than pure LRU: each entry's priority
// is L + frequency x measured compile cost, where L is an inflation clock
// raised to the evicted priority on every eviction. A context that took
// seconds to prepare (a 1024x1024 engine's layer) outlives a toy context
// prepared in microseconds even when the toy one is more recent, while
// the clock ages unused expensive entries out eventually. Entry sizes are
// uniform (slots hold pointers to shared immutable state), so the classic
// GDSF size divisor is 1. Ties — and entries still computing, whose cost
// is unknown and whose priority is +Inf so mid-flight work is never
// evicted by a burst of lookups — fall back to least-recently-used order.
//
// Concurrent lookups of the same missing key compute the value once; the
// losers block on the winner's result. All methods are safe for concurrent
// use, and cached values are immutable once published.
type Cache struct {
	mu       sync.Mutex
	capacity int
	items    map[string]*cacheEntry
	pq       entryHeap
	clock    float64 // GDSF inflation clock L
	useSeq   uint64  // recency counter for LRU tie-breaking

	hits, misses, evictions, restored, compiles uint64

	// onFill, when set (before first use), is invoked after each
	// successful fill — outside the cache lock — with the entry's key,
	// value, and cost. computed distinguishes a real compilation (cost was
	// measured here) from a loader restore (cost came with the record);
	// the persistence layer writes both through to local disk but only
	// computed values out to the cluster blob tier, so restored records
	// never echo back to their source.
	onFill func(key string, val any, costSec float64, computed bool)

	// loader, when set (before first use), is consulted on each miss
	// before the compute closure runs — the read-through seam for warm
	// tiers beyond this process (the cluster's remote blob tier). It
	// returns the restored value and its original compute cost. The
	// per-entry once.Do gives loader lookups the same singleflight as
	// computations: one fetch per key, however many concurrent callers.
	loader func(key string) (val any, costSec float64, ok bool)
}

// cacheEntry is one cache slot. The compute closure is stored on the
// entry so that every waiter — inserter or concurrent hit — runs the same
// once.Do(fill): whoever gets there first computes, everyone else blocks
// until the value is published.
type cacheEntry struct {
	key      string
	compute  func() (any, error)
	loader   func(key string) (any, float64, bool)
	once     sync.Once
	val      any
	err      error
	costSec  float64 // measured by fill; set under the cache lock
	computed bool    // true if fill ran compute (vs a loader restore)

	// GDSF bookkeeping, guarded by the cache lock.
	freq     float64
	prio     float64
	lastUsed uint64
	index    int // heap position; -1 once evicted
}

func (e *cacheEntry) fill() {
	if e.loader != nil {
		if val, costSec, ok := e.loader(e.key); ok {
			e.val, e.costSec = val, costSec
			e.compute, e.loader = nil, nil
			return
		}
		e.loader = nil
	}
	start := time.Now()
	e.val, e.err = e.compute()
	e.costSec = time.Since(start).Seconds()
	e.computed = true
	e.compute = nil
}

// entryHeap is a min-heap on (priority, recency): the evicted entry is
// the lowest-priority one, oldest first among equals.
type entryHeap []*cacheEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].lastUsed < h[j].lastUsed
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*cacheEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// DefaultCacheEntries bounds the cache when BatchOptions leave it zero. An
// engine entry plus the contexts of the deepest zoo network fit ~60 slots,
// so 512 holds several macro/network working sets at once.
const DefaultCacheEntries = 512

// NewCache returns a cache bounded to maxEntries (DefaultCacheEntries if
// maxEntries <= 0).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &Cache{
		capacity: maxEntries,
		items:    make(map[string]*cacheEntry, maxEntries),
	}
}

// Stats snapshots the hit/miss/eviction counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.items), Restored: c.restored, Compiles: c.compiles,
	}
}

// touchLocked records a use: bump frequency and recency, and re-rank the
// entry if its cost is already known (an entry still computing keeps its
// +Inf pin; its priority settles when the fill completes).
func (c *Cache) touchLocked(e *cacheEntry) {
	c.useSeq++
	e.lastUsed = c.useSeq
	e.freq++
	if e.index >= 0 && !math.IsInf(e.prio, 1) {
		e.prio = c.clock + e.freq*e.costSec
		heap.Fix(&c.pq, e.index)
	}
}

// insertLocked adds a new entry and applies the capacity bound.
func (c *Cache) insertLocked(e *cacheEntry) {
	c.useSeq++
	e.lastUsed = c.useSeq
	c.items[e.key] = e
	heap.Push(&c.pq, e)
	for len(c.items) > c.capacity {
		victim := heap.Pop(&c.pq).(*cacheEntry)
		delete(c.items, victim.key)
		c.evictions++
		// Inflate the clock so long-resident entries must keep earning
		// their slot against newer arrivals.
		if victim.prio > c.clock && !math.IsInf(victim.prio, 1) {
			c.clock = victim.prio
		}
	}
}

// removeLocked drops an entry if it is still the one cached under its key.
func (c *Cache) removeLocked(e *cacheEntry) {
	if cur, ok := c.items[e.key]; ok && cur == e {
		delete(c.items, e.key)
		if e.index >= 0 {
			heap.Remove(&c.pq, e.index)
		}
	}
}

// getOrCompute returns the cached value for key, consulting the warm
// loader and then computing on miss. Failed computations are not cached:
// the entry is removed so a later request retries.
func (c *Cache) getOrCompute(key string, compute func() (any, error)) (any, error) {
	return c.lookup(key, compute, true)
}

// lookup is getOrCompute with the loader optional: a caller that just
// invalidated a loader-restored value retries with useLoader false, so
// the recompute cannot fetch the same bad record again.
func (c *Cache) lookup(key string, compute func() (any, error), useLoader bool) (any, error) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		c.hits++
		c.touchLocked(e)
		c.mu.Unlock()
		e.once.Do(e.fill)
		return e.val, e.err
	}
	c.misses++
	e := &cacheEntry{
		key:     key,
		compute: compute,
		freq:    1,
		prio:    math.Inf(1), // pinned until the fill settles its cost
	}
	if useLoader {
		e.loader = c.loader
	}
	c.insertLocked(e)
	c.mu.Unlock()

	e.once.Do(e.fill)

	c.mu.Lock()
	if e.err != nil {
		c.removeLocked(e)
		c.mu.Unlock()
		return e.val, e.err
	}
	// Settle the entry's real priority now that its cost is measured. The
	// entry may already have been evicted mid-fill (index < 0); the value
	// is still returned to waiters and still persisted below.
	if e.index >= 0 {
		e.prio = c.clock + e.freq*e.costSec
		heap.Fix(&c.pq, e.index)
	}
	if e.computed {
		c.compiles++
	} else {
		c.restored++
	}
	onFill := c.onFill
	c.mu.Unlock()
	if onFill != nil {
		onFill(e.key, e.val, e.costSec, e.computed)
	}
	return e.val, e.err
}

// admit inserts an already-computed value (a warm-start restore) through
// the normal insertion path, so the capacity bound and eviction policy
// hold. costSec is the original measured compute cost, preserved on disk,
// which seeds the entry's GDSF weight. Existing keys win: admit never
// replaces a live entry. Admitted entries do not trigger onFill (they
// came from disk; re-persisting them would be a no-op cycle).
func (c *Cache) admit(key string, costSec float64, val any) {
	e := &cacheEntry{key: key, val: val, costSec: costSec, freq: 1}
	e.once.Do(func() {}) // mark filled: waiters must never run compute
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return
	}
	c.restored++
	e.prio = c.clock + e.freq*e.costSec
	c.insertLocked(e)
}

// Engine returns the compiled engine for an architecture, compiling it at
// most once per content fingerprint.
func (c *Cache) Engine(arch *core.Arch) (*core.Engine, error) {
	return c.EngineCtx(context.Background(), arch)
}

// EngineCtx is Engine with trace attribution: when this lookup's caller
// is the singleflight winner, the inline compilation is booked to the
// caller's span as the "compile" phase. Losers that merely block on the
// winner's fill record nothing under "compile" — their wait shows up as
// cache time, which is what it is to them.
func (c *Cache) EngineCtx(ctx context.Context, arch *core.Arch) (*core.Engine, error) {
	key := engineKey(ArchFingerprint(arch))
	v, err := c.getOrCompute(key, func() (any, error) {
		defer obs.Timed(ctx, "compile")()
		return core.NewEngine(arch)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Engine), nil
}

// LayerContext returns the amortized per-layer state for (engine, layer),
// running the data-value-dependent pipeline (Algorithm 1 lines 3-7) at
// most once per (arch, layer, encoding) fingerprint.
//
// A context whose per-level energy tables do not match the engine's
// flattened level count is structurally unusable (indexing would panic
// mid-evaluation). Freshly computed contexts always match; a restored
// one could drift (a record copied between incompatible cache dirs, or
// payload-schema drift the envelope version did not catch), so mismatches
// are dropped and recomputed — the write-behind hook then overwrites the
// bad record under the same key.
func (c *Cache) LayerContext(eng *core.Engine, l workload.Layer) (*core.LayerContext, error) {
	return c.LayerContextCtx(context.Background(), eng, l)
}

// LayerContextCtx is LayerContext with trace attribution (see
// EngineCtx): a compilation run inline by this lookup lands in the
// caller's span under "compile".
func (c *Cache) LayerContextCtx(ctx context.Context, eng *core.Engine, l workload.Layer) (*core.LayerContext, error) {
	key := contextKey(ArchFingerprint(eng.Arch()), LayerFingerprint(l))
	compute := func() (any, error) {
		defer obs.Timed(ctx, "compile")()
		return eng.PrepareLayer(l)
	}
	levels := len(eng.Arch().Levels)
	for attempt := 0; ; attempt++ {
		// The retry after an invalidation skips the warm loader: the bad
		// record came from a warm tier, and refetching it would loop.
		v, err := c.lookup(key, compute, attempt == 0)
		if err != nil {
			return nil, err
		}
		lctx := v.(*core.LayerContext)
		if lctx.LevelCount() == levels {
			return lctx, nil
		}
		if attempt > 0 { // a freshly computed context can never mismatch
			return nil, fmt.Errorf("serve: layer context for %q has %d level tables, engine has %d levels",
				l.Name, lctx.LevelCount(), levels)
		}
		c.invalidate(key, v)
	}
}

// invalidate drops the cached entry under key if it still holds val.
func (c *Cache) invalidate(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok && e.val == val {
		c.removeLocked(e)
	}
}
