package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/workload"
)

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits/(hits+misses), zero before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache memoizes compiled engines and per-layer amortized contexts under
// content-addressed keys, bounded by an LRU policy. It is the state that
// outlives a single evaluation call: across requests — and across users —
// the same (arch, layer, encoding) triple compiles once and is reused, the
// cross-request extension of the paper's per-layer amortization.
//
// Concurrent lookups of the same missing key compute the value once; the
// losers block on the winner's result. All methods are safe for concurrent
// use, and cached values are immutable once published.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, evictions uint64
}

// cacheEntry is one LRU slot. The compute closure is stored on the entry
// so that every waiter — inserter or concurrent hit — runs the same
// once.Do(fill): whoever gets there first computes, everyone else blocks
// until the value is published.
type cacheEntry struct {
	key     string
	compute func() (any, error)
	once    sync.Once
	val     any
	err     error
}

func (e *cacheEntry) fill() {
	e.val, e.err = e.compute()
	e.compute = nil
}

// DefaultCacheEntries bounds the LRU when BatchOptions leave it zero. An
// engine entry plus the contexts of the deepest zoo network fit ~60 slots,
// so 512 holds several macro/network working sets at once.
const DefaultCacheEntries = 512

// NewCache returns a cache bounded to maxEntries (DefaultCacheEntries if
// maxEntries <= 0).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &Cache{
		capacity: maxEntries,
		ll:       list.New(),
		items:    make(map[string]*list.Element, maxEntries),
	}
}

// Stats snapshots the hit/miss/eviction counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}

// getOrCompute returns the cached value for key, computing and inserting
// it on miss. Failed computations are not cached: the entry is removed so
// a later request retries.
func (c *Cache) getOrCompute(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		c.mu.Unlock()
		entry.once.Do(entry.fill)
		return entry.val, entry.err
	}
	c.misses++
	entry := &cacheEntry{key: key, compute: compute}
	el := c.ll.PushFront(entry)
	c.items[key] = el
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.mu.Unlock()

	entry.once.Do(entry.fill)
	if entry.err != nil {
		c.mu.Lock()
		if el, ok := c.items[key]; ok && el.Value == entry {
			c.ll.Remove(el)
			delete(c.items, key)
		}
		c.mu.Unlock()
	}
	return entry.val, entry.err
}

// Engine returns the compiled engine for an architecture, compiling it at
// most once per content fingerprint.
func (c *Cache) Engine(arch *core.Arch) (*core.Engine, error) {
	key := "eng|" + ArchFingerprint(arch)
	v, err := c.getOrCompute(key, func() (any, error) {
		return core.NewEngine(arch)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Engine), nil
}

// LayerContext returns the amortized per-layer state for (engine, layer),
// running the data-value-dependent pipeline (Algorithm 1 lines 3-7) at
// most once per (arch, layer, encoding) fingerprint.
func (c *Cache) LayerContext(eng *core.Engine, l workload.Layer) (*core.LayerContext, error) {
	key := "ctx|" + ArchFingerprint(eng.Arch()) + "|" + LayerFingerprint(l)
	v, err := c.getOrCompute(key, func() (any, error) {
		return eng.PrepareLayer(l)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.LayerContext), nil
}
