package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/jobs"
)

// twoTenantsYAML is the fixture most tenancy tests share: team-a carries
// twice team-b's weight and a pending quota of 1.
const twoTenantsYAML = `tenants:
  - id: team-a
    token: secret-a
    weight: 2
    max_pending: 1
  - id: team-b
    token: secret-b
`

func mustTenants(t *testing.T, text string) *Tenants {
	t.Helper()
	tn, err := ParseTenants(text)
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// tenantClient is testClient with header control: do() takes the bearer
// token ("" sends no Authorization header) and returns the response
// headers alongside the decoded body.
func tenantClient(t *testing.T, srv *Server) func(token, method, path, body string) (int, http.Header, map[string]any) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return func(token, method, path, body string) (int, http.Header, map[string]any) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
		return resp.StatusCode, resp.Header, out
	}
}

func TestParseTenantsValid(t *testing.T) {
	tn := mustTenants(t, twoTenantsYAML)
	if !tn.Enabled() {
		t.Fatal("parsed file must enable tenancy")
	}
	if ids := tn.IDs(); len(ids) != 2 || ids[0] != "team-a" || ids[1] != "team-b" {
		t.Fatalf("IDs = %v", ids)
	}
	a, ok := tn.Get("team-a")
	if !ok || a.Token != "secret-a" || a.Weight != 2 || a.MaxPending != 1 {
		t.Fatalf("team-a = %+v", a)
	}
	// Omitted weight defaults to 1, omitted max_pending to 0.
	b, ok := tn.Get("team-b")
	if !ok || b.Weight != 1 || b.MaxPending != 0 {
		t.Fatalf("team-b = %+v", b)
	}
	if tc, ok := tn.Lookup("secret-b"); !ok || tc.ID != "team-b" {
		t.Fatalf("Lookup(secret-b) = %v, %v", tc, ok)
	}
	if _, ok := tn.Lookup("secret-c"); ok {
		t.Fatal("unknown token must not resolve")
	}
	if _, ok := tn.Lookup(""); ok {
		t.Fatal("empty token must not resolve")
	}
	jt := tn.JobTenants()
	if jt["team-a"].Weight != 2 || jt["team-a"].MaxPending != 1 || jt["team-b"].Weight != 1 {
		t.Fatalf("JobTenants = %v", jt)
	}
}

func TestParseTenantsErrors(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"top level list", "- id: a\n", "top level"},
		{"missing key", "other: 1\n", "missing or non-list"},
		{"empty list", "tenants:\n", "missing or non-list"},
		{"entry missing id", "tenants:\n  - token: x\n", "no 'id'"},
		{"entry missing token", "tenants:\n  - id: a\n", "no 'token'"},
		{"duplicate id", "tenants:\n  - id: a\n    token: x\n  - id: a\n    token: y\n", "duplicate tenant id"},
		{"duplicate token", "tenants:\n  - id: a\n    token: x\n  - id: b\n    token: x\n", "reuses another tenant's token"},
		{"zero weight", "tenants:\n  - id: a\n    token: x\n    weight: 0\n", "'weight' must be a positive number"},
		{"negative weight", "tenants:\n  - id: a\n    token: x\n    weight: -2\n", "'weight' must be a positive number"},
		{"fractional max_pending", "tenants:\n  - id: a\n    token: x\n    max_pending: 1.5\n", "'max_pending' must be a non-negative integer"},
		{"negative max_pending", "tenants:\n  - id: a\n    token: x\n    max_pending: -1\n", "'max_pending' must be a non-negative integer"},
		{"unknown key", "tenants:\n  - id: a\n    token: x\n    quota: 3\n", "unknown key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTenants(tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseTenants error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestNilTenantsDisabled pins the "tenancy off" zero states the rest of
// the server relies on: a nil *Tenants is a safe no-op everywhere.
func TestNilTenantsDisabled(t *testing.T) {
	var tn *Tenants
	if tn.Enabled() {
		t.Fatal("nil Tenants must be disabled")
	}
	if _, ok := tn.Lookup("x"); ok {
		t.Fatal("nil Lookup must miss")
	}
	if _, ok := tn.Get("x"); ok {
		t.Fatal("nil Get must miss")
	}
	if tn.IDs() != nil || tn.JobTenants() != nil {
		t.Fatal("nil accessors must return nil")
	}
}

func TestAuthRejectsAndAdmits(t *testing.T) {
	srv := NewServer(BatchOptions{Tenants: mustTenants(t, twoTenantsYAML)})
	defer srv.Close()
	do := tenantClient(t, srv)

	// Every rejection is the same 401 unauthorized envelope with a
	// WWW-Authenticate challenge, and never echoes the presented token.
	rejects := []struct {
		name  string
		token string
	}{
		{"missing header", ""},
		{"unknown token", "secret-z"},
	}
	for _, tc := range rejects {
		status, hdr, out := do(tc.token, "GET", "/v1/macros", "")
		code, msg := envelope(t, out)
		if status != http.StatusUnauthorized || code != "unauthorized" {
			t.Fatalf("%s: %d %v", tc.name, status, out)
		}
		if !strings.Contains(hdr.Get("WWW-Authenticate"), "Bearer") {
			t.Fatalf("%s: missing WWW-Authenticate challenge: %v", tc.name, hdr)
		}
		if strings.Contains(msg, "secret-z") {
			t.Fatalf("%s: 401 message echoes the token: %q", tc.name, msg)
		}
	}

	// A non-Bearer scheme is rejected the same way.
	srvTS := httptest.NewServer(srv.Handler())
	defer srvTS.Close()
	req, _ := http.NewRequest("GET", srvTS.URL+"/v1/macros", nil)
	req.Header.Set("Authorization", "Basic dXNlcjpwYXNz")
	resp, err := srvTS.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("Basic auth: %d, want 401", resp.StatusCode)
	}

	// /healthz stays open: liveness probes carry no credentials.
	status, _, out := do("", "GET", "/healthz", "")
	if status != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz without token: %d %v", status, out)
	}

	// A configured token is admitted.
	status, _, out = do("secret-a", "GET", "/v1/macros", "")
	if status != http.StatusOK || out["macros"] == nil {
		t.Fatalf("authorized request: %d %v", status, out)
	}
}

// submitJob POSTs a sweep job as a tenant and returns its ID.
func submitJob(t *testing.T, do func(token, method, path, body string) (int, http.Header, map[string]any), token, body string) string {
	t.Helper()
	status, _, out := do(token, "POST", "/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit as %s: %d %v", token, status, out)
	}
	job, _ := out["job"].(map[string]any)
	id, _ := job["id"].(string)
	if id == "" {
		t.Fatalf("accepted job has no id: %v", out)
	}
	return id
}

func TestTenantJobScoping(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, Tenants: mustTenants(t, twoTenantsYAML)})
	defer srv.Close()
	do := tenantClient(t, srv)

	id := submitJob(t, do, "secret-a",
		`{"macros": ["base"], "networks": ["toy"], "max_mappings": 2}`)

	// The owner sees its job, tagged with its tenant id.
	status, _, out := do("secret-a", "GET", "/v1/jobs/"+id, "")
	if status != http.StatusOK || out["tenant"] != "team-a" {
		t.Fatalf("owner get: %d %v", status, out)
	}

	// Another tenant gets a 404 indistinguishable from a missing job —
	// existence must not leak — on get, events, and cancel.
	for _, path := range []string{"/v1/jobs/" + id, "/v1/jobs/" + id + "/events"} {
		status, _, out := do("secret-b", "GET", path, "")
		if code, _ := envelope(t, out); status != http.StatusNotFound || code != "not_found" {
			t.Fatalf("cross-tenant GET %s: %d %v", path, status, out)
		}
	}
	status, _, out = do("secret-b", "POST", "/v1/jobs/"+id+"/cancel", "")
	if code, _ := envelope(t, out); status != http.StatusNotFound || code != "not_found" {
		t.Fatalf("cross-tenant cancel: %d %v", status, out)
	}

	// Listings are filtered to the caller's tenant.
	status, _, out = do("secret-b", "GET", "/v1/jobs", "")
	if status != http.StatusOK {
		t.Fatalf("list as team-b: %d %v", status, out)
	}
	if jobsList, _ := out["jobs"].([]any); len(jobsList) != 0 {
		t.Fatalf("team-b must not see team-a's jobs: %v", out["jobs"])
	}
	status, _, out = do("secret-a", "GET", "/v1/jobs", "")
	if status != http.StatusOK {
		t.Fatalf("list as team-a: %d %v", status, out)
	}
	if jobsList, _ := out["jobs"].([]any); len(jobsList) != 1 {
		t.Fatalf("team-a must see exactly its job: %v", out["jobs"])
	}
}

func TestTenantQueueFullEnvelope(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, MaxRunningJobs: 1,
		Tenants: mustTenants(t, twoTenantsYAML)})
	defer srv.Close()
	do := tenantClient(t, srv)

	// A deep sweep occupies the single runner while two more try to
	// queue behind it; team-a's max_pending is 1.
	slow := `{"macros": ["base", "macro-b"], "networks": ["mobilenetv3-large"], "max_mappings": 8}`
	quick := `{"macros": ["base"], "networks": ["toy"], "max_mappings": 2}`
	submitJob(t, do, "secret-a", slow)  // running
	submitJob(t, do, "secret-a", quick) // queued: quota now full

	status, _, out := do("secret-a", "POST", "/v1/jobs", quick)
	code, msg := envelope(t, out)
	if status != http.StatusTooManyRequests || code != "queue_full" {
		t.Fatalf("over-quota submit: %d %v", status, out)
	}
	if !strings.Contains(msg, "team-a") {
		t.Fatalf("quota message must name the tenant: %q", msg)
	}
	details, _ := out["details"].(map[string]any)
	if details["tenant"] != "team-a" {
		t.Fatalf("429 must carry details.tenant: %v", out)
	}
	if ra, _ := out["retry_after_sec"].(float64); ra <= 0 {
		t.Fatalf("429 must advise a retry delay: %v", out)
	}

	// One tenant at quota must not block another: team-b (no cap)
	// still submits fine.
	submitJob(t, do, "secret-b", quick)
}

// TestServePreemptResume drives the full preemption path at the serving
// layer: a long batch sweep from one tenant yields at an item boundary
// when another tenant's interactive job arrives, the interactive job
// runs to completion on the freed runner, and the batch job resumes and
// finishes every item (resumes > 0 on its terminal snapshot).
func TestServePreemptResume(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, MaxRunningJobs: 1,
		Tenants: mustTenants(t, twoTenantsYAML)})
	defer srv.Close()

	batchReqs := []Request{
		{Tag: "b0", Macro: "base", Network: "mobilenetv3-large", MaxMappings: 4},
		{Tag: "b1", Macro: "macro-b", Network: "mobilenetv3-large", MaxMappings: 4},
		{Tag: "b2", Macro: "base", Network: "resnet18", MaxMappings: 4},
		{Tag: "b3", Macro: "macro-b", Network: "resnet18", MaxMappings: 4},
	}
	batch, err := srv.SubmitSweepOpts(batchReqs, SweepJobOptions{
		Priority: jobs.PriorityBatch, Tenant: "team-a"})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the batch job to make progress (the preemption rule
	// guarantees one item before any yield), then file interactive work
	// from the other tenant.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for {
		snap, ok := srv.Job(batch.ID)
		if !ok {
			t.Fatalf("batch job %s vanished", batch.ID)
		}
		if snap.Completed >= 1 {
			break
		}
		if ctx.Err() != nil {
			t.Fatalf("batch job made no progress: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	inter, err := srv.SubmitSweepOpts([]Request{warmRequest()}, SweepJobOptions{
		Priority: jobs.PriorityInteractive, Tenant: "team-b"})
	if err != nil {
		t.Fatal(err)
	}

	interFinal, err := srv.WaitJob(ctx, inter.ID)
	if err != nil {
		t.Fatal(err)
	}
	if interFinal.Status != jobs.StatusSucceeded {
		t.Fatalf("interactive job finished %s (%s)", interFinal.Status, interFinal.Error)
	}
	// The interactive job must have finished while the batch job still
	// had work left: a preempted batch job cannot re-dispatch (single
	// runner) until the interactive job releases it, so seeing the batch
	// already terminal here means it drained instead of yielding.
	if mid, ok := srv.Job(batch.ID); ok && mid.Status == jobs.StatusSucceeded {
		t.Fatalf("batch job drained before the interactive job was served: %+v", mid)
	}

	batchFinal, err := srv.WaitJob(ctx, batch.ID)
	if err != nil {
		t.Fatal(err)
	}
	if batchFinal.Status != jobs.StatusSucceeded {
		t.Fatalf("batch job finished %s (%s)", batchFinal.Status, batchFinal.Error)
	}
	if batchFinal.Completed != len(batchReqs) {
		t.Fatalf("batch completed %d/%d", batchFinal.Completed, len(batchReqs))
	}
	if batchFinal.Resumes < 1 {
		t.Fatalf("batch job must have been preempted and resumed: %+v", batchFinal)
	}
	if table, ok := batchFinal.Result.(string); !ok || !strings.Contains(table, "b3") {
		t.Fatalf("resumed batch job must still render its full table: %#v", batchFinal.Result)
	}
	if st := srv.JobStats(); st.Preemptions < 1 {
		t.Fatalf("store stats must count the preemption: %+v", st)
	}
}
