package serve

import (
	"context"
	"net/http"
	"strings"

	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
)

// Bearer-token authentication: when the server runs with a tenant file
// (BatchOptions.Tenants), every API request must carry
// "Authorization: Bearer <token>" naming a configured tenant. The
// authenticated tenant ID rides the request context into job
// submission (WFQ weight + quota), job visibility (a tenant sees only
// its own jobs), and listing filters. /healthz and /metrics stay open —
// liveness probes, cluster peer health checks, load balancers, and
// scrape agents must not need credentials (and the exposition names
// tenants by ID, never by token). Without a tenant file the middleware
// is a no-op and the server behaves exactly as before.
//
// The middleware reads the live tenant set per request (Server.tenants,
// an atomic pointer), so a SIGHUP reload rotates tokens without a
// restart: in-flight requests finish under whichever set they started
// with, and the next request sees the new one.

// tenantKey carries the authenticated tenant ID through the request
// context.
type tenantKey struct{}

// tenantFrom returns the request's authenticated tenant ID ("" when
// tenancy is off).
func tenantFrom(ctx context.Context) string {
	id, _ := ctx.Value(tenantKey{}).(string)
	return id
}

// withAuth enforces bearer-token authentication when tenancy is on.
// Tenancy on/off is fixed at boot (the handler chain is already built);
// the token table itself is re-read per request so reloads take effect.
func (s *Server) withAuth(next http.Handler) http.Handler {
	if !s.tenantSet().Enabled() {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		const prefix = "Bearer "
		auth := r.Header.Get("Authorization")
		if auth == "" {
			writeUnauthorized(w, "missing Authorization header")
			return
		}
		if !strings.HasPrefix(auth, prefix) {
			writeUnauthorized(w, "Authorization header is not a bearer token")
			return
		}
		tc, ok := s.tenantSet().Lookup(strings.TrimSpace(auth[len(prefix):]))
		if !ok {
			writeUnauthorized(w, "unknown bearer token")
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tc.ID)))
	})
}

// writeUnauthorized sends the 401 envelope. The message never echoes
// the presented token.
func writeUnauthorized(w http.ResponseWriter, msg string) {
	w.Header().Set("WWW-Authenticate", `Bearer realm="cimloop"`)
	writeAPIError(w, http.StatusUnauthorized, api.Errorf(api.CodeUnauthorized, "%s", msg))
}

// jobForTenant fetches a job under tenant scoping: with tenancy on, a
// tenant resolves only its own jobs — another tenant's job ID answers
// 404 exactly like a nonexistent one, so job existence does not leak
// across tenants. With tenancy off it is plain Job.
func (s *Server) jobForTenant(r *http.Request, id string) (jobs.Snapshot, bool) {
	snap, ok := s.Job(id)
	if !ok {
		return snap, false
	}
	if s.tenantSet().Enabled() && snap.Tenant != tenantFrom(r.Context()) {
		return jobs.Snapshot{}, false
	}
	return snap, true
}
