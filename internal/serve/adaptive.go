package serve

import (
	"math"
	"sync"
	"time"
)

// searchTuner picks the per-layer mapping-search fan-out from measured
// candidate cost, replacing a static -search-workers value with a
// feedback loop: every completed search reports (evaluated, elapsed,
// width), the tuner folds the implied per-candidate cost into an EWMA
// keyed by (arch, layer), and the next search over that layer gets a
// width sized to bring the whole search near targetLayerSec.
//
// The tuner only ever changes *width*, never results: parallel search is
// bit-identical to serial at any width, so adaptation is free of the
// reproducibility hazard that adaptive shard counts would carry (see
// core.SearchOptions.SampleShards). Unknown layers start serial — the
// first search doubles as the measurement probe, and a first request is
// dominated by the layer-context compile anyway.
//
// Cost is recorded as elapsed x width (approximate total work), not wall
// time, so a wide search does not report an artificially low
// per-candidate cost and oscillate the loop.
type searchTuner struct {
	mu    sync.Mutex
	ewma  map[string]float64 // per tunerKey: EWMA of seconds per candidate
	plans uint64             // width decisions made
}

const (
	// tunerAlpha weights the newest observation in the EWMA.
	tunerAlpha = 0.4
	// fanOutFloorSec is the per-candidate cost below which the channel
	// handoff to a worker pool costs more than it saves; cheaper layers
	// stay serial no matter the budget.
	fanOutFloorSec = 5e-6
	// targetLayerSec is the per-layer search latency the width aims for.
	targetLayerSec = 1500e-6
)

// tunerKey identifies a layer's cost class. Arch and layer names are not
// globally unique across hand-written specs, but a collision only blends
// two EWMAs — the tuner is a latency heuristic, never a correctness
// input.
func tunerKey(arch, layer string) string { return arch + "|" + layer }

// width picks the fan-out for one layer search over `budget` candidates,
// clamped to [1, maxWidth].
func (t *searchTuner) width(key string, budget, maxWidth int) int {
	if maxWidth < 1 {
		maxWidth = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.plans++
	per, ok := t.ewma[key]
	if !ok || per < fanOutFloorSec {
		return 1
	}
	w := int(math.Ceil(per * float64(budget) / targetLayerSec))
	if w < 1 {
		w = 1
	}
	if w > maxWidth {
		w = maxWidth
	}
	return w
}

// observe folds one completed search into the layer's EWMA.
func (t *searchTuner) observe(key string, evaluated, width int, elapsed time.Duration) {
	if evaluated <= 0 {
		return
	}
	if width < 1 {
		width = 1
	}
	per := elapsed.Seconds() * float64(width) / float64(evaluated)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ewma == nil {
		t.ewma = make(map[string]float64)
	}
	if old, seen := t.ewma[key]; seen {
		per = (1-tunerAlpha)*old + tunerAlpha*per
	}
	t.ewma[key] = per
}

// stats snapshots the tuner for /healthz.
func (t *searchTuner) stats() (plans uint64, layers int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.plans, len(t.ewma)
}
