package jobs

import (
	"errors"
	"fmt"
	"time"
)

// Tenant is one tenant's scheduling parameters. The store treats tenant
// ids as opaque strings; the serving layer resolves bearer tokens to
// them. Jobs submitted without a tenant share the anonymous tenant ""
// at weight 1, which reproduces the pre-tenancy FIFO exactly.
type Tenant struct {
	// Weight is the tenant's relative share of dispatches within a
	// scheduling class (<= 0 means 1). A weight-3 tenant drains roughly
	// three units of work for every unit a weight-1 tenant drains.
	Weight float64
	// MaxPending bounds the tenant's queued (not running) jobs;
	// submissions beyond it fail with a TenantQueueFullError
	// (<= 0 means no per-tenant bound beyond the global MaxQueued).
	MaxPending int
}

// ErrPreempted is the sentinel a job body returns after yielding
// cooperatively: the store requeues the job at the head of its
// tenant/class FIFO instead of finishing it, so the body runs again —
// resuming from its checkpoints — once the higher-priority work that
// triggered the yield has been dispatched.
var ErrPreempted = errors.New("jobs: job preempted")

// TenantQueueFullError is the per-tenant quota rejection. It matches
// errors.Is(err, ErrQueueFull) so every existing queue-full consumer
// (the HTTP 429 mapping, the SDK's retry loop) treats it as
// backpressure; the HTTP layer additionally surfaces which tenant hit
// its bound.
type TenantQueueFullError struct {
	Tenant string
	Limit  int
}

func (e *TenantQueueFullError) Error() string {
	return fmt.Sprintf("jobs: tenant %q pending queue full (max %d)", e.Tenant, e.Limit)
}

// Is reports ErrQueueFull equivalence (see type comment).
func (e *TenantQueueFullError) Is(target error) bool { return target == ErrQueueFull }

// tenantState is the store's per-tenant scheduler bookkeeping.
type tenantState struct {
	// lastFinish is the finish tag most recently assigned to this
	// tenant's jobs in each class; a tenant's tags are strictly
	// increasing, so FIFO-within-tenant is implied by tag order.
	lastFinish [numPriorities]float64
	// queued counts the tenant's jobs currently in the pending queue
	// (both classes) — the MaxPending quota denominator.
	queued int
}

// weightOf resolves a tenant's WFQ weight (unknown tenants and the
// anonymous tenant weigh 1).
func (s *Store) weightOf(tenant string) float64 {
	if t, ok := s.opts.Tenants[tenant]; ok && t.Weight > 0 {
		return t.Weight
	}
	return 1
}

// tenantStateLocked returns (creating on first use) the tenant's
// scheduler state.
func (s *Store) tenantStateLocked(tenant string) *tenantState {
	ts, ok := s.tenants[tenant]
	if !ok {
		ts = &tenantState{}
		s.tenants[tenant] = ts
	}
	return ts
}

// enqueueLocked assigns the job its virtual finish tag and queues it.
//
// Standard WFQ: the job's virtual start is the later of the class's
// virtual time and the tenant's last finish tag (so an idle tenant
// re-enters at the current virtual time instead of burning its saved-up
// share, and a busy tenant's jobs stay FIFO); its finish tag is the
// start plus the job's cost (work-list size, min 1) over the tenant's
// weight. Dispatch picks the smallest finish tag, so a weight-w tenant
// drains w units of cost per unit of virtual time.
func (s *Store) enqueueLocked(j *job) {
	rank := j.priority.rank()
	ts := s.tenantStateLocked(j.tenant)
	start := s.vtime[rank]
	if ts.lastFinish[rank] > start {
		start = ts.lastFinish[rank]
	}
	cost := float64(j.total)
	if cost < 1 {
		cost = 1
	}
	j.finishTag = start + cost/s.weightOf(j.tenant)
	ts.lastFinish[rank] = j.finishTag
	s.enqSeq++
	j.enqSeq = s.enqSeq
	s.pushLocked(j, false)
}

// requeueLocked returns a preempted job to the head of its tenant/class
// FIFO. The job keeps the finish tag from its original admission: its
// tag is <= every tag behind it in the tenant's FIFO (tags are
// monotonic per tenant/class), so head insertion preserves tag order,
// and keeping the tag means a preempted job cannot leapfrog tenants it
// had not already beaten.
func (s *Store) requeueLocked(j *job) {
	s.pushLocked(j, true)
}

// SetTenants atomically replaces the per-tenant scheduling table
// (weights and pending quotas) — the hot-reload path under token
// rotation. The new table governs future admissions and quota checks;
// already-queued jobs keep the finish tags assigned at admission, so a
// reload never reorders work already accepted.
func (s *Store) SetTenants(t map[string]Tenant) {
	s.mu.Lock()
	s.opts.Tenants = t
	s.mu.Unlock()
}

// pushLocked inserts a job into the pending structure (front=true for
// preemption requeues) and wakes a runner.
func (s *Store) pushLocked(j *job, front bool) {
	j.enqueued = time.Now()
	rank := j.priority.rank()
	if s.pending[rank] == nil {
		s.pending[rank] = make(map[string][]*job)
	}
	q := s.pending[rank][j.tenant]
	if front {
		q = append([]*job{j}, q...)
	} else {
		q = append(q, j)
	}
	s.pending[rank][j.tenant] = q
	s.pendingN[rank]++
	s.tenantStateLocked(j.tenant).queued++
	s.cond.Signal()
}

// popClassLocked dequeues the class's next job under WFQ order: the
// head with the smallest finish tag across tenants, ties broken by
// enqueue sequence (pure submission order), so the choice is a
// deterministic function of the submission history regardless of map
// iteration order. The class's virtual time advances to the dispatched
// tag — never backwards, which matters when a preemption requeue
// re-dispatches an old tag.
func (s *Store) popClassLocked(rank int) *job {
	var best *job
	bestTenant := ""
	for tenant, q := range s.pending[rank] {
		h := q[0]
		if best == nil || h.finishTag < best.finishTag ||
			(h.finishTag == best.finishTag && h.enqSeq < best.enqSeq) {
			best, bestTenant = h, tenant
		}
	}
	if best == nil {
		return nil
	}
	q := s.pending[rank][bestTenant]
	if len(q) == 1 {
		delete(s.pending[rank], bestTenant)
	} else {
		s.pending[rank][bestTenant] = q[1:]
	}
	s.pendingN[rank]--
	s.tenantStateLocked(bestTenant).queued--
	if best.finishTag > s.vtime[rank] {
		s.vtime[rank] = best.finishTag
	}
	return best
}

// Preempting reports whether the running job id should yield at its
// next item boundary: it is a batch-class job, interactive work is
// waiting with no idle runner to take it, and the job has completed at
// least one item since it was dispatched (so a batch job dispatched by
// the anti-starvation rule gets its guaranteed unit of progress instead
// of thrashing straight back to the queue). The sweep layer polls this
// between grid items.
func (s *Store) Preempting(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	j, ok := s.jobs[id]
	if !ok || j.status != StatusRunning || j.priority.rank() != rankBatch {
		return false
	}
	if s.pendingN[rankInteractive] == 0 {
		return false
	}
	if j.completed <= j.dispatchBase {
		return false
	}
	running := 0
	for _, o := range s.order {
		if o.status == StatusRunning {
			running++
		}
	}
	return running >= s.opts.maxRunning()
}
