package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitStatus polls until the job reaches want (terminal states use Wait).
func waitStatus(t *testing.T, s *Store, id string, want Status) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared while waiting for %s", id, want)
		}
		if snap.Status == want {
			return snap
		}
		if snap.Status.Terminal() {
			t.Fatalf("job %s reached %s while waiting for %s", id, snap.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Snapshot{}
}

func TestJobLifecycleAndProgress(t *testing.T) {
	s := NewStore(Options{})
	defer s.Close()

	snap, err := s.Submit("grid", 3, func(ctx context.Context, report Report) (any, error) {
		report(0, "r0", nil)
		report(1, nil, errors.New("item 1 exploded"))
		report(2, "r2", nil)
		return "final", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.Total != 3 {
		t.Fatalf("bad initial snapshot: %+v", snap)
	}
	final, err := s.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusSucceeded {
		t.Fatalf("status %s, want succeeded (%+v)", final.Status, final)
	}
	if final.Completed != 3 || final.Result != "final" {
		t.Fatalf("progress: %+v", final)
	}
	if final.FirstError != "item 1 exploded" {
		t.Fatalf("first error %q", final.FirstError)
	}
	if len(final.Results) != 3 || final.Results[0] != "r0" || final.Results[2] != "r2" {
		t.Fatalf("partials: %v", final.Results)
	}
	if final.ElapsedSec < 0 {
		t.Fatalf("elapsed %g", final.ElapsedSec)
	}
}

func TestJobFailure(t *testing.T) {
	s := NewStore(Options{})
	defer s.Close()
	snap, err := s.Submit("boom", 1, func(ctx context.Context, report Report) (any, error) {
		return nil, errors.New("job body failed")
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusFailed || final.Error != "job body failed" {
		t.Fatalf("final: %+v", final)
	}
}

func TestMonotonicIDs(t *testing.T) {
	s := NewStore(Options{MaxQueued: 64})
	defer s.Close()
	var prev string
	for i := 0; i < 5; i++ {
		snap, err := s.Submit("seq", 0, func(ctx context.Context, report Report) (any, error) {
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if prev != "" && snap.ID <= prev {
			t.Fatalf("IDs not monotonic: %s then %s", prev, snap.ID)
		}
		prev = snap.ID
	}
}

// TestQueueFullBackpressure checks the bounded pending queue: with one
// runner blocked, MaxQueued jobs queue and the next submit is rejected
// with ErrQueueFull — without blocking.
func TestQueueFullBackpressure(t *testing.T) {
	s := NewStore(Options{MaxRunning: 1, MaxQueued: 2, RetryAfter: 7 * time.Second})
	defer s.Close()

	release := make(chan struct{})
	blocker := func(ctx context.Context, report Report) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	running, err := s.Submit("running", 0, blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, running.ID, StatusRunning)

	for i := 0; i < 2; i++ {
		if _, err := s.Submit("queued", 0, blocker); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	_, err = s.Submit("rejected", 0, blocker)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if s.RetryAfter() != 7*time.Second {
		t.Fatalf("retry-after %v", s.RetryAfter())
	}
	st := s.Stats()
	if st.Queued != 2 || st.Running != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Draining the pool readmits submissions.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Submit("readmitted", 0, func(ctx context.Context, report Report) (any, error) {
			return nil, nil
		}); err == nil {
			break
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelQueuedFreesSlot checks cancelling a queued job releases its
// pending-queue slot immediately — a new submission is admitted while
// the runner is still busy, not once the runner would have reached the
// cancelled job.
func TestCancelQueuedFreesSlot(t *testing.T) {
	s := NewStore(Options{MaxRunning: 1, MaxQueued: 1})
	defer s.Close()
	release := make(chan struct{})
	defer close(release)
	blocker := func(ctx context.Context, report Report) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	running, err := s.Submit("running", 0, blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, running.ID, StatusRunning)
	queued, err := s.Submit("queued", 0, blocker)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("rejected", 0, blocker); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if snap, ok := s.Cancel(queued.ID); !ok || snap.Status != StatusCancelled {
		t.Fatalf("cancel queued: %v %+v", ok, snap)
	}
	// The slot is free right now, with the runner still blocked.
	if _, err := s.Submit("admitted", 0, blocker); err != nil {
		t.Fatalf("submit after cancelling the queued job: %v", err)
	}
}

// TestListOmitsPayloads checks List returns summaries (no per-item
// results, no final result) while Get keeps the full payload.
func TestListOmitsPayloads(t *testing.T) {
	s := NewStore(Options{})
	defer s.Close()
	snap, err := s.Submit("payload", 1, func(ctx context.Context, report Report) (any, error) {
		report(0, "partial", nil)
		return "final", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), snap.ID); err != nil {
		t.Fatal(err)
	}
	list := s.List()
	if len(list) != 1 {
		t.Fatalf("listed %d jobs", len(list))
	}
	if list[0].Results != nil || list[0].Result != nil {
		t.Fatalf("list summary carries payloads: %+v", list[0])
	}
	if list[0].Completed != 1 || list[0].Status != StatusSucceeded {
		t.Fatalf("list summary lost progress: %+v", list[0])
	}
	full, ok := s.Get(snap.ID)
	if !ok || full.Result != "final" || len(full.Results) != 1 || full.Results[0] != "partial" {
		t.Fatalf("get lost payloads: %+v", full)
	}
}

// TestCancelRunning checks cancelling a running job cancels its context
// and lands it in the cancelled state.
func TestCancelRunning(t *testing.T) {
	s := NewStore(Options{})
	defer s.Close()
	started := make(chan struct{})
	snap, err := s.Submit("long", 0, func(ctx context.Context, report Report) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := s.Cancel(snap.ID); !ok {
		t.Fatal("cancel: job not found")
	}
	final, err := s.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCancelled {
		t.Fatalf("status %s, want cancelled", final.Status)
	}
	// The body's context error is not surfaced as a job failure.
	if final.Error != "" {
		t.Fatalf("cancelled job carries error %q", final.Error)
	}
}

// TestCancelQueued checks a queued job is cancelled without ever running.
func TestCancelQueued(t *testing.T) {
	s := NewStore(Options{MaxRunning: 1, MaxQueued: 4})
	defer s.Close()
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Submit("blocker", 0, func(ctx context.Context, report Report) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	ran := false
	queued, err := s.Submit("victim", 0, func(ctx context.Context, report Report) (any, error) {
		ran = true
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Cancel(queued.ID)
	if !ok || got.Status != StatusCancelled {
		t.Fatalf("cancel queued: %v %+v", ok, got)
	}
	if _, err := s.Wait(context.Background(), queued.ID); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled-while-queued job body ran")
	}
}

// TestDuplicateCancelIdempotent checks repeated cancels (including after
// the terminal state) are harmless no-ops.
func TestDuplicateCancelIdempotent(t *testing.T) {
	s := NewStore(Options{})
	defer s.Close()
	started := make(chan struct{})
	snap, err := s.Submit("dup", 0, func(ctx context.Context, report Report) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 3; i++ {
		if _, ok := s.Cancel(snap.ID); !ok {
			t.Fatalf("cancel %d: not found", i)
		}
	}
	final, err := s.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCancelled {
		t.Fatalf("status %s", final.Status)
	}
	// Cancelling a finished job stays cancelled and keeps reporting ok.
	for i := 0; i < 3; i++ {
		got, ok := s.Cancel(snap.ID)
		if !ok || got.Status != StatusCancelled {
			t.Fatalf("post-terminal cancel %d: %v %+v", i, ok, got)
		}
	}
	if _, ok := s.Cancel("job-999999"); ok {
		t.Fatal("cancel of unknown job reported ok")
	}
}

// TestRetentionEviction checks terminal jobs beyond the bound are evicted
// oldest-first while queued/running jobs survive.
func TestRetentionEviction(t *testing.T) {
	s := NewStore(Options{MaxRunning: 1, MaxQueued: 8, Retention: 2})
	defer s.Close()
	var ids []string
	for i := 0; i < 5; i++ {
		snap, err := s.Submit(fmt.Sprintf("r%d", i), 0, func(ctx context.Context, report Report) (any, error) {
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), snap.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	list := s.List()
	if len(list) != 2 {
		t.Fatalf("retained %d jobs, want 2: %+v", len(list), list)
	}
	for _, id := range ids[:3] {
		if _, ok := s.Get(id); ok {
			t.Fatalf("evicted job %s still retrievable", id)
		}
	}
	for _, id := range ids[3:] {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("recent job %s evicted", id)
		}
	}

	// An active job is never evicted, no matter how many terminals pass.
	release := make(chan struct{})
	active, err := s.Submit("active", 0, func(ctx context.Context, report Report) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, active.ID, StatusRunning)
	// Saturating terminals can't evict it while it runs... but they queue
	// behind it on the single runner, so finish the active job first and
	// check it was retained throughout its run.
	if _, ok := s.Get(active.ID); !ok {
		t.Fatal("running job evicted")
	}
	close(release)
	if _, err := s.Wait(context.Background(), active.ID); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSubmitCancelGet hammers every store method from many
// goroutines; run under -race this is the memory-safety check.
func TestConcurrentSubmitCancelGet(t *testing.T) {
	s := NewStore(Options{MaxRunning: 4, MaxQueued: 64, Retention: 8})
	defer s.Close()

	const submitters = 8
	const perSubmitter = 20
	var wg sync.WaitGroup
	idCh := make(chan string, submitters*perSubmitter)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				snap, err := s.Submit(fmt.Sprintf("g%d-%d", g, i), 2, func(ctx context.Context, report Report) (any, error) {
					report(0, g, nil)
					select {
					case <-ctx.Done():
						return nil, ctx.Err()
					case <-time.After(time.Duration(i%3) * time.Millisecond):
					}
					report(1, i, nil)
					return "ok", nil
				})
				if errors.Is(err, ErrQueueFull) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				idCh <- snap.ID
			}
		}(g)
	}
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				case id := <-idCh:
					if g%2 == 0 {
						s.Cancel(id)
						s.Cancel(id) // duplicate cancel under contention
					}
					s.Get(id)
					s.List()
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// Every retained job eventually terminates.
	deadline := time.Now().Add(10 * time.Second)
	for {
		settled := true
		for _, snap := range s.List() {
			if !snap.Status.Terminal() {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never settled")
		}
		time.Sleep(time.Millisecond)
	}
	if n := len(s.List()); n > 8+4+64 {
		t.Fatalf("retained %d jobs", n)
	}
}

// TestCloseRejectsAndCancels checks Close cancels active work and later
// submits fail with ErrClosed.
func TestCloseRejectsAndCancels(t *testing.T) {
	s := NewStore(Options{MaxRunning: 1, MaxQueued: 4})
	started := make(chan struct{})
	running, err := s.Submit("running", 0, func(ctx context.Context, report Report) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit("queued", 0, func(ctx context.Context, report Report) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	for _, id := range []string{running.ID, queued.ID} {
		snap, ok := s.Get(id)
		if !ok || snap.Status != StatusCancelled {
			t.Fatalf("after close, job %s: %v %+v", id, ok, snap)
		}
	}
	if _, err := s.Submit("late", 0, func(ctx context.Context, report Report) (any, error) {
		return nil, nil
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	s := NewStore(Options{})
	defer s.Close()
	started := make(chan struct{})
	snap, err := s.Submit("stuck", 0, func(ctx context.Context, report Report) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Wait(ctx, snap.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait err = %v", err)
	}
	if _, err := s.Wait(context.Background(), "job-000000"); err == nil ||
		!strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("wait on unknown job: %v", err)
	}
	s.Cancel(snap.ID)
}
