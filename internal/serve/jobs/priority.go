package jobs

import "fmt"

// Priority is a job's scheduling class. The pending queue is a strict
// two-class priority queue — interactive jobs dispatch before batch jobs,
// FIFO within each class — with one deterministic anti-starvation rule:
// after starveLimit consecutive interactive dispatches while batch work
// waits, the next dispatch takes the oldest batch job. Small interactive
// grids therefore jump ahead of overnight sweeps without an unbounded
// interactive stream starving the batch class forever.
type Priority string

const (
	// PriorityInteractive is the high class: small grids a human is
	// waiting on.
	PriorityInteractive Priority = "interactive"
	// PriorityBatch is the low (and default) class: overnight sweeps and
	// other work nobody is watching.
	PriorityBatch Priority = "batch"
)

// priority ranks, queue indices: lower runs first.
const (
	rankInteractive = iota
	rankBatch
	numPriorities
)

// starveLimit bounds how many consecutive interactive dispatches may
// pass over waiting batch work before one batch job is dispatched.
const starveLimit = 4

// Valid reports whether p is a known class ("" is not; use orDefault).
func (p Priority) Valid() bool {
	return p == PriorityInteractive || p == PriorityBatch
}

// orDefault maps the empty string to PriorityBatch, so clients that never
// heard of priorities keep their pre-priority behavior (one FIFO queue).
func (p Priority) orDefault() Priority {
	if p == "" {
		return PriorityBatch
	}
	return p
}

// rank is the class's queue index (interactive first).
func (p Priority) rank() int {
	if p.orDefault() == PriorityInteractive {
		return rankInteractive
	}
	return rankBatch
}

// ParsePriority validates a wire-supplied priority string; the empty
// string is the batch default.
func ParsePriority(s string) (Priority, error) {
	p := Priority(s).orDefault()
	if !p.Valid() {
		return "", fmt.Errorf("jobs: unknown priority %q (have %q, %q)",
			s, PriorityInteractive, PriorityBatch)
	}
	return p, nil
}
