// Package jobs is the async half of the batch-evaluation service: an
// in-memory store of long-running jobs with bounded concurrency, a
// bounded pending queue (the service's backpressure valve), per-item
// progress, cancellation, and bounded retention of finished jobs.
//
// The store is deliberately ignorant of what a job computes: a job is a
// function of a context plus a progress reporter. The serving layer wraps
// grid sweeps into jobs; tests wrap stubs. Cancellation flows through the
// job's context, which the serving layer plumbs down into the per-layer
// mapping search, so cancelling a job stops in-flight work rather than
// merely hiding its result.
//
// The store itself stays in-memory, but it exposes the seams durability
// needs: Options.OnTerminal streams terminal snapshots to a persistence
// layer, Restore re-inserts persisted terminal jobs under their original
// IDs after a restart, and SubmitWithID replays write-ahead-logged jobs
// that never finished (see internal/persist and the serving layer).
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Status is a job's lifecycle state.
type Status string

// Lifecycle: Queued -> Running -> one of the terminal states. Cancelling
// a queued job skips Running.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	switch s {
	case StatusSucceeded, StatusFailed, StatusCancelled:
		return true
	}
	return false
}

// Report records one completed work item: its index in the job's work
// list, a JSON-ready partial result, and the item's error (nil on
// success). Safe for concurrent use from many workers.
type Report func(index int, partial any, err error)

// Fn is a job body. It must honor ctx — a cancelled job's fn is expected
// to return promptly with ctx.Err() — and may call report after each
// completed item. Its return value becomes the job's final result.
type Fn func(ctx context.Context, report Report) (any, error)

// Options bounds the store. The zero value is usable.
type Options struct {
	// MaxRunning bounds concurrently running jobs (default 1: one job at
	// a time owns the evaluation worker pool).
	MaxRunning int
	// MaxQueued bounds the pending queue; Submit returns ErrQueueFull
	// beyond it (default 8).
	MaxQueued int
	// Retention bounds retained terminal jobs; the oldest finished jobs
	// are evicted beyond it (default 64). Queued and running jobs are
	// never evicted.
	Retention int
	// RetryAfter is the backoff hint paired with ErrQueueFull
	// (default 1s).
	RetryAfter time.Duration
	// OnTerminal, when set, is invoked outside the store mutex each time
	// a job reaches a terminal state. shutdown is true when the
	// transition was forced by Close: the persistence layer uses the
	// distinction to keep (rather than retire) the write-ahead records of
	// jobs interrupted by a shutdown, so they replay on the next boot.
	OnTerminal func(snap Snapshot, shutdown bool)
	// OnEvicted, when set, is invoked outside the store mutex with the ID
	// of each terminal job dropped by the retention bound. The
	// persistence layer deletes the job's on-disk snapshot here, so the
	// disk tier is bounded by the same retention as the memory tier.
	OnEvicted func(id string)
	// Tenants maps tenant ids to their scheduling parameters (WFQ weight
	// and per-tenant pending quota). Tenants absent from the map — and
	// the anonymous tenant "" — run at weight 1 with no per-tenant bound.
	Tenants map[string]Tenant
	// ObserveDispatch, when set, is invoked outside the store mutex each
	// time a queued job is dispatched to a runner, with the job's tenant,
	// scheduling class, and how long it waited in the queue since its
	// last (re-)enqueue. The serving layer feeds its queue-wait latency
	// histogram from this hook.
	ObserveDispatch func(tenant string, pri Priority, wait time.Duration)
}

func (o Options) maxRunning() int {
	if o.MaxRunning > 0 {
		return o.MaxRunning
	}
	return 1
}

func (o Options) maxQueued() int {
	if o.MaxQueued > 0 {
		return o.MaxQueued
	}
	return 8
}

func (o Options) retention() int {
	if o.Retention > 0 {
		return o.Retention
	}
	return 64
}

func (o Options) retryAfter() time.Duration {
	if o.RetryAfter > 0 {
		return o.RetryAfter
	}
	return time.Second
}

// ErrQueueFull is returned by Submit when the pending queue is at
// capacity — the caller should retry after Store.RetryAfter.
var ErrQueueFull = errors.New("jobs: pending queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: store closed")

// ErrUnknownJob is returned by Wait and Await for IDs the store has
// never seen (or has already evicted).
var ErrUnknownJob = errors.New("jobs: unknown job")

// Snapshot is a point-in-time copy of one job, JSON-ready for the HTTP
// API.
type Snapshot struct {
	ID     string `json:"id"`
	Label  string `json:"label,omitempty"`
	Status Status `json:"status"`
	// Priority is the job's scheduling class (interactive before batch).
	Priority Priority `json:"priority,omitempty"`
	// Tenant is the submitting tenant's id ("" when the server runs
	// without a tenants file).
	Tenant string `json:"tenant,omitempty"`
	// Resumes counts how many times the job was preempted and requeued
	// (each resume re-dispatches the body, which skips checkpointed
	// items).
	Resumes int `json:"resumes,omitempty"`
	// Version counts the job's observable mutations (enqueue, start, each
	// completed item, terminal transition). It is the cursor for Await and
	// the HTTP layer's SSE/long-poll progress endpoints: a snapshot with a
	// higher version than the one a client holds carries news. Versions
	// are per-process — they restart from the snapshot's persisted value
	// after a reboot — and only ever grow while the process lives.
	Version int64 `json:"version"`

	// Completed counts reported items; Total is the work-list size.
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// FirstError is the first per-item failure (items after it keep
	// running; a sweep reports per-request errors without poisoning the
	// batch).
	FirstError string `json:"first_error,omitempty"`

	// Results holds per-item partial results in work-list order, nil
	// until the item completes. Populated while the job runs; omitted
	// from List summaries.
	Results []any `json:"results,omitempty"`
	// Result is the job body's return value, set on success; omitted
	// from List summaries.
	Result any `json:"result,omitempty"`
	// Error is the job body's terminal error, set on failure.
	Error string `json:"error,omitempty"`

	CreatedAt  time.Time `json:"created_at"`
	ElapsedSec float64   `json:"elapsed_sec"`
}

// Done reports whether the snapshot is in a terminal state.
func (s Snapshot) Done() bool { return s.Status.Terminal() }

// job is the store's mutable record. All fields below the fn line are
// guarded by the store mutex.
type job struct {
	id       string
	label    string
	total    int
	priority Priority
	tenant   string
	fn       Fn

	status    Status
	completed int
	firstErr  string
	partials  []any
	result    any
	err       string
	// finishTag is the job's WFQ virtual finish time, assigned once at
	// admission (see enqueueLocked); enqSeq is the deterministic
	// tie-breaker (global submission order).
	finishTag float64
	enqSeq    int64
	// resumes counts preemption round trips; dispatchBase is the
	// completed count when the current dispatch started, so Preempting
	// can require progress before another yield.
	resumes      int
	dispatchBase int
	// version counts observable mutations; changed is closed and replaced
	// on every bump, so any number of watchers (SSE streams, long-polls)
	// can wait for "something newer than version N" without per-watcher
	// queues.
	version int64
	changed chan struct{}

	cancel          context.CancelFunc // non-nil only while running
	cancelRequested bool
	// userCancelled distinguishes an explicit Cancel from a Close-driven
	// one: a deliberately cancelled job must never be classified as
	// shutdown-interrupted (the persistence layer would keep its WAL and
	// resurrect it on the next boot).
	userCancelled bool
	created       time.Time
	// enqueued is when the job last entered the pending queue (admission
	// or preemption requeue) — the queue-wait clock ObserveDispatch reads.
	enqueued time.Time
	started  time.Time
	finished time.Time
	done     chan struct{} // closed on terminal transition
}

// Store owns the jobs, their queue, and the runner goroutines. All
// methods are safe for concurrent use.
type Store struct {
	opts Options

	mu    sync.Mutex
	cond  *sync.Cond // wakes runners when pending grows or the store closes
	seq   int
	jobs  map[string]*job
	order []*job // insertion order: List and retention eviction
	// pending is the weighted-fair queue: per class, one FIFO per
	// tenant, dispatched interactive-class-first and min-finish-tag
	// within a class (see popPendingLocked / popClassLocked);
	// cancellation removes in place. pendingN counts queued jobs per
	// class; vtime is each class's virtual clock.
	pending  [numPriorities]map[string][]*job
	pendingN [numPriorities]int
	vtime    [numPriorities]float64
	// tenants is per-tenant scheduler state; enqSeq is the global
	// admission counter (WFQ tie-breaker); preemptions counts
	// yield-and-requeue round trips across all jobs.
	tenants     map[string]*tenantState
	enqSeq      int64
	preemptions int64
	// dispatched counts queued→running transitions since boot;
	// dispatches and preempted break dispatch and preemption counts down
	// by tenant id — the observable evidence that WFQ shares hold
	// (ROADMAP item 2's per-tenant breakdowns).
	dispatched int64
	dispatches map[string]int64
	preempted  map[string]int64
	// hiStreak counts consecutive interactive dispatches while batch work
	// waited — the deterministic anti-starvation counter.
	hiStreak int
	started  bool
	closed   bool

	wg sync.WaitGroup
	// notifyWG tracks OnTerminal/OnEvicted notifications issued from
	// caller goroutines (Cancel, Restore) rather than runners. Close
	// waits for it so a cancel racing shutdown still gets its records to
	// the persistence layer before the stores are torn down. Additions
	// happen under mu strictly before Close's wait, so the pairing is
	// race-free.
	notifyWG sync.WaitGroup
}

// NewStore returns a store. Its opts.maxRunning runner goroutines start
// lazily on the first Submit, so servers that never use async jobs (the
// experiment runner's package-level sweeper, say) cost nothing.
func NewStore(opts Options) *Store {
	s := &Store{
		opts:    opts,
		jobs:    make(map[string]*job),
		tenants: make(map[string]*tenantState),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// startLocked launches the runner goroutines once.
func (s *Store) startLocked() {
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.opts.maxRunning(); i++ {
		s.wg.Add(1)
		go s.runner()
	}
}

// runner drains the pending queues until the store closes.
func (s *Store) runner() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for s.pendingLenLocked() == 0 && !s.closed {
			s.cond.Wait()
		}
		j := s.popPendingLocked()
		if j == nil {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.run(j)
		s.mu.Lock()
	}
}

// pendingLenLocked is the total queued-job count across classes.
func (s *Store) pendingLenLocked() int {
	n := 0
	for _, c := range s.pendingN {
		n += c
	}
	return n
}

// popPendingLocked dequeues the next job to run: interactive class
// before batch, WFQ order within a class (popClassLocked), except that
// after starveLimit consecutive interactive dispatches with batch work
// waiting, one batch job is dispatched. The rule is a pure function of
// the submission/dispatch history, so scheduling is deterministic for a
// given submission sequence.
func (s *Store) popPendingLocked() *job {
	switch {
	case s.hiStreak >= starveLimit && s.pendingN[rankBatch] > 0:
		s.hiStreak = 0
		return s.popClassLocked(rankBatch)
	case s.pendingN[rankInteractive] > 0:
		if s.pendingN[rankBatch] > 0 {
			s.hiStreak++
		} else {
			s.hiStreak = 0 // nothing was passed over
		}
		return s.popClassLocked(rankInteractive)
	case s.pendingN[rankBatch] > 0:
		s.hiStreak = 0
		return s.popClassLocked(rankBatch)
	}
	return nil
}

// RetryAfter is the backoff hint to pair with ErrQueueFull (the HTTP
// layer turns it into a Retry-After header).
func (s *Store) RetryAfter() time.Duration { return s.opts.retryAfter() }

// Stats counts jobs by lifecycle stage (queued also broken down by
// scheduling class and by tenant).
type Stats struct {
	Queued            int `json:"queued"`
	QueuedInteractive int `json:"queued_interactive"`
	QueuedBatch       int `json:"queued_batch"`
	Running           int `json:"running"`
	Finished          int `json:"finished"`
	// QueuedByTenant breaks the queued count down by tenant id (absent
	// when every queued job belongs to the anonymous tenant).
	QueuedByTenant map[string]int `json:"queued_by_tenant,omitempty"`
	// Preemptions counts yield-and-requeue round trips since boot.
	Preemptions int64 `json:"preemptions,omitempty"`
	// Dispatches counts queued→running transitions since boot.
	Dispatches int64 `json:"dispatches,omitempty"`
	// DispatchesByTenant breaks dispatches down by tenant id (absent when
	// every dispatched job was anonymous) — the per-tenant WFQ share.
	DispatchesByTenant map[string]int64 `json:"dispatches_by_tenant,omitempty"`
	// PreemptionsByTenant breaks preemption round trips down by tenant id.
	PreemptionsByTenant map[string]int64 `json:"preemptions_by_tenant,omitempty"`
}

// Stats snapshots the store's occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Preemptions: s.preemptions, Dispatches: s.dispatched}
	if len(s.dispatches) > 0 {
		st.DispatchesByTenant = make(map[string]int64, len(s.dispatches))
		for t, n := range s.dispatches {
			st.DispatchesByTenant[t] = n
		}
	}
	if len(s.preempted) > 0 {
		st.PreemptionsByTenant = make(map[string]int64, len(s.preempted))
		for t, n := range s.preempted {
			st.PreemptionsByTenant[t] = n
		}
	}
	for _, j := range s.order {
		switch {
		case j.status == StatusQueued:
			st.Queued++
			if j.priority.rank() == rankInteractive {
				st.QueuedInteractive++
			} else {
				st.QueuedBatch++
			}
			if j.tenant != "" {
				if st.QueuedByTenant == nil {
					st.QueuedByTenant = make(map[string]int)
				}
				st.QueuedByTenant[j.tenant]++
			}
		case j.status == StatusRunning:
			st.Running++
		default:
			st.Finished++
		}
	}
	return st
}

// Submission describes one job for SubmitJob. The zero value of every
// optional field is meaningful: ID "" allocates the next store ID,
// Priority "" is batch, Tenant "" is the anonymous tenant.
type Submission struct {
	ID       string
	Priority Priority
	Tenant   string
	Label    string
	Total    int
	Fn       Fn
	// Replay bypasses the pending-queue bound and the per-tenant quota:
	// the job was admitted before a restart (it has a WAL) and bouncing
	// it now would break the accepted-job contract.
	Replay bool
}

// SubmitJob enqueues one job and returns its initial snapshot. It fails
// fast with ErrQueueFull when the pending queue is at capacity (or a
// TenantQueueFullError when the tenant's own quota is) — the
// backpressure contract — and never blocks on a saturated pool.
// Cancelling a queued job frees its slot immediately.
func (s *Store) SubmitJob(sub Submission) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, ErrClosed
	}
	if sub.ID == "" {
		s.seq++
		sub.ID = fmt.Sprintf("job-%06d", s.seq)
	}
	return s.submitLocked(sub)
}

// Submit enqueues a batch-class job with a work list of total items
// (see SubmitJob for the backpressure contract).
func (s *Store) Submit(label string, total int, fn Fn) (Snapshot, error) {
	return s.SubmitJob(Submission{Label: label, Total: total, Fn: fn})
}

// SubmitPriority is Submit with an explicit scheduling class.
func (s *Store) SubmitPriority(pri Priority, label string, total int, fn Fn) (Snapshot, error) {
	return s.SubmitJob(Submission{Priority: pri, Label: label, Total: total, Fn: fn})
}

// ReserveID allocates the next job ID without creating a job, so a
// caller can write the job's write-ahead record to durable storage
// BEFORE SubmitReserved makes the job runnable — otherwise a job that
// finishes instantly could have its terminal records persisted ahead of
// its WAL, leaving a stale WAL that replays finished work after a
// restart. A reserved ID that is never submitted is simply skipped.
func (s *Store) ReserveID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return fmt.Sprintf("job-%06d", s.seq)
}

// SubmitReserved is Submit under an ID from ReserveID: same backpressure
// contract (ErrQueueFull on a saturated queue), caller-ordered ID.
func (s *Store) SubmitReserved(id string, pri Priority, label string, total int, fn Fn) (Snapshot, error) {
	return s.SubmitJob(Submission{ID: id, Priority: pri, Label: label, Total: total, Fn: fn})
}

// submitLocked creates and enqueues one queued job. Fresh submissions
// honor the pending-queue cap and the tenant's quota; replays bypass
// both.
func (s *Store) submitLocked(sub Submission) (Snapshot, error) {
	if sub.Fn == nil {
		return Snapshot{}, errors.New("jobs: nil job body")
	}
	if sub.ID == "" {
		return Snapshot{}, errors.New("jobs: empty job ID")
	}
	pri := sub.Priority.orDefault()
	if !pri.Valid() {
		return Snapshot{}, fmt.Errorf("jobs: unknown priority %q", pri)
	}
	if _, ok := s.jobs[sub.ID]; ok {
		return Snapshot{}, fmt.Errorf("jobs: job %q already exists", sub.ID)
	}
	if !sub.Replay {
		if s.pendingLenLocked() >= s.opts.maxQueued() {
			return Snapshot{}, ErrQueueFull
		}
		if t, ok := s.opts.Tenants[sub.Tenant]; ok && t.MaxPending > 0 {
			if ts, ok := s.tenants[sub.Tenant]; ok && ts.queued >= t.MaxPending {
				return Snapshot{}, &TenantQueueFullError{Tenant: sub.Tenant, Limit: t.MaxPending}
			}
		}
	}
	total := sub.Total
	if total < 0 {
		total = 0
	}
	s.startLocked()
	if n := idSeq(sub.ID); n > s.seq {
		s.seq = n
	}
	j := &job{
		id:       sub.ID,
		label:    sub.Label,
		total:    total,
		priority: pri,
		tenant:   sub.Tenant,
		fn:       sub.Fn,
		status:   StatusQueued,
		partials: make([]any, total),
		version:  1,
		changed:  make(chan struct{}),
		created:  time.Now(),
		done:     make(chan struct{}),
	}
	s.enqueueLocked(j)
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	return j.snapshotLocked(), nil
}

// bumpLocked advances the job's version and wakes every watcher parked
// on the previous version.
func (s *Store) bumpLocked(j *job) {
	j.version++
	close(j.changed)
	j.changed = make(chan struct{})
}

// idSeq parses the numeric suffix of a store-issued job ID
// ("job-000042" -> 42), returning 0 for foreign formats.
func idSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// Restore inserts a terminal job recovered from persistent storage: it
// answers Get/List/Wait under its original ID but never runs. The ID
// counter advances past restored IDs so new submissions cannot collide.
// Restoring an ID that already exists is a silent no-op (first wins);
// restoring a non-terminal snapshot is an error — interrupted jobs are
// replayed via SubmitWithID, not resurrected mid-state.
func (s *Store) Restore(snap Snapshot) error {
	if !snap.Status.Terminal() {
		return fmt.Errorf("jobs: cannot restore %q in non-terminal state %q", snap.ID, snap.Status)
	}
	if snap.ID == "" {
		return errors.New("jobs: cannot restore a job without an ID")
	}
	// Clamp fields a decoder cannot vouch for: the snapshot may come from
	// external storage, and a hostile Total must not panic make below.
	if snap.Total < 0 {
		snap.Total = 0
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, ok := s.jobs[snap.ID]; ok {
		s.mu.Unlock()
		return nil
	}
	if n := idSeq(snap.ID); n > s.seq {
		s.seq = n
	}
	j := &job{
		id:        snap.ID,
		label:     snap.Label,
		total:     snap.Total,
		priority:  snap.Priority.orDefault(),
		tenant:    snap.Tenant,
		status:    snap.Status,
		completed: snap.Completed,
		firstErr:  snap.FirstError,
		result:    snap.Result,
		err:       snap.Error,
		version:   snap.Version,
		resumes:   snap.Resumes,
		changed:   make(chan struct{}),
		created:   snap.CreatedAt,
		done:      make(chan struct{}),
	}
	if j.version < 1 {
		j.version = 1
	}
	// Rebuild the timing so ElapsedSec survives the round trip.
	j.started = snap.CreatedAt
	j.finished = snap.CreatedAt.Add(time.Duration(snap.ElapsedSec * float64(time.Second)))
	j.partials = make([]any, snap.Total)
	for i := 0; i < len(snap.Results) && i < snap.Total; i++ {
		j.partials[i] = snap.Results[i]
	}
	close(j.done)
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	evicted := s.applyRetentionLocked()
	s.notifyWG.Add(1) // under mu: ordered before Close's wait
	s.mu.Unlock()
	s.notifyEvicted(evicted)
	s.notifyWG.Done()
	return nil
}

// SubmitWithID is Submit under a caller-chosen ID: the replay path for
// write-ahead-logged jobs that were queued (or still running) when the
// previous process stopped. Replayed jobs bypass the pending-queue bound —
// they were admitted before the restart, and bouncing them would break
// the accepted-job contract — and advance the ID counter past their ID.
// An ID already in the store is an error. Replays keep their persisted
// scheduling class and tenant, and because they are enqueued at boot —
// before any new submission — a replayed job's WFQ tags are assigned in
// the same relative order as the original admissions, so the dispatch
// order survives the restart.
func (s *Store) SubmitWithID(id string, pri Priority, label string, total int, fn Fn) (Snapshot, error) {
	return s.SubmitJob(Submission{ID: id, Priority: pri, Label: label, Total: total, Fn: fn, Replay: true})
}

// run executes one dequeued job to a terminal state.
func (s *Store) run(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s.mu.Lock()
	if j.status != StatusQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	j.dispatchBase = j.completed
	s.dispatched++
	if j.tenant != "" {
		if s.dispatches == nil {
			s.dispatches = make(map[string]int64)
		}
		s.dispatches[j.tenant]++
	}
	wait := time.Duration(0)
	if !j.enqueued.IsZero() {
		wait = j.started.Sub(j.enqueued)
	}
	s.bumpLocked(j)
	s.mu.Unlock()
	if s.opts.ObserveDispatch != nil {
		s.opts.ObserveDispatch(j.tenant, j.priority.orDefault(), wait)
	}

	report := func(i int, partial any, err error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if i >= 0 && i < len(j.partials) {
			j.partials[i] = partial
		}
		j.completed++
		if err != nil && j.firstErr == "" {
			j.firstErr = err.Error()
		}
		s.bumpLocked(j)
	}
	result, err := j.fn(ctx, report)

	s.mu.Lock()
	j.cancel = nil
	if errors.Is(err, ErrPreempted) && !j.cancelRequested && !s.closed {
		// Cooperative yield: the body checkpointed its progress and bowed
		// out. Requeue at the head of its tenant/class FIFO (original
		// finish tag, so it cannot leapfrog peers) and leave the job
		// non-terminal — no OnTerminal, done stays open, the WAL stays.
		j.status = StatusQueued
		j.resumes++
		s.preemptions++
		if j.tenant != "" {
			if s.preempted == nil {
				s.preempted = make(map[string]int64)
			}
			s.preempted[j.tenant]++
		}
		s.requeueLocked(j)
		s.bumpLocked(j)
		s.mu.Unlock()
		return
	}
	switch {
	case j.cancelRequested:
		j.status = StatusCancelled
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, ErrPreempted) {
			j.err = err.Error()
		}
	case err != nil:
		j.status = StatusFailed
		if errors.Is(err, ErrPreempted) {
			// The store is closing: the runner is about to exit, so the
			// yielded job cannot be requeued. Classify it like any other
			// shutdown interruption so its WAL replays next boot.
			j.status = StatusCancelled
			j.cancelRequested = true
		} else {
			j.err = err.Error()
		}
	default:
		j.status = StatusSucceeded
		j.result = result
	}
	evicted := s.finishLocked(j)
	// "Shutdown-interrupted" means Close forced the transition AND the
	// user never asked for it: an explicitly cancelled job stays
	// cancelled on disk instead of replaying next boot.
	snap, shutdown := j.snapshotLocked(), s.closed && !j.userCancelled
	s.mu.Unlock()
	s.notifyTerminal(snap, shutdown)
	s.notifyEvicted(evicted)
}

// notifyTerminal invokes the OnTerminal hook (never under the mutex).
func (s *Store) notifyTerminal(snap Snapshot, shutdown bool) {
	if s.opts.OnTerminal != nil {
		s.opts.OnTerminal(snap, shutdown)
	}
}

// finishLocked stamps a terminal job, wakes waiters, and applies the
// retention bound, returning the evicted job IDs for the caller to
// report through OnEvicted once outside the mutex.
func (s *Store) finishLocked(j *job) []string {
	j.fn = nil // the body never runs again; don't pin its captures
	j.finished = time.Now()
	s.bumpLocked(j)
	close(j.done)
	return s.applyRetentionLocked()
}

// applyRetentionLocked evicts the oldest terminal jobs beyond the
// retention bound, returning their IDs. Queued and running jobs are
// never evicted.
func (s *Store) applyRetentionLocked() []string {
	terminal := 0
	for _, o := range s.order {
		if o.status.Terminal() {
			terminal++
		}
	}
	var evicted []string
	for i := 0; i < len(s.order) && terminal > s.opts.retention(); {
		if !s.order[i].status.Terminal() {
			i++
			continue
		}
		evicted = append(evicted, s.order[i].id)
		delete(s.jobs, s.order[i].id)
		s.order = append(s.order[:i], s.order[i+1:]...)
		terminal--
	}
	return evicted
}

// notifyEvicted invokes the OnEvicted hook (never under the mutex).
func (s *Store) notifyEvicted(ids []string) {
	if s.opts.OnEvicted != nil {
		for _, id := range ids {
			s.opts.OnEvicted(id)
		}
	}
}

// Get returns a snapshot of one job.
func (s *Store) Get(id string) (Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshotLocked(), true
}

// List snapshots every retained job in submission order. Listings are
// summaries — per-item Results and the final Result are omitted (a
// retention's worth of grid-sized payloads would dwarf the listing and
// stall the progress path, which shares the store mutex); fetch one job
// with Get for the full payload.
func (s *Store) List() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, j.summaryLocked())
	}
	return out
}

// ListQuery filters and pages a listing. The zero value lists everything.
type ListQuery struct {
	// Status keeps only jobs in that lifecycle state ("" = all).
	Status Status
	// Tenant keeps only jobs owned by that tenant id ("" = all). The
	// HTTP layer sets it from the authenticated token so tenants only
	// see their own jobs.
	Tenant string
	// Limit caps the page size (<= 0 = unlimited).
	Limit int
	// After is an exclusive cursor: only jobs whose ID's monotonic
	// sequence number exceeds After's are returned. Cursors survive
	// eviction — the comparison is numeric, not positional — so a page
	// boundary job evicted between requests does not skip or repeat
	// survivors.
	After string
}

// ListPage is List under a query: summaries in ascending-ID order, plus
// a cursor for the next page ("" when this page exhausts the matches).
// Pages iterate by ID, not by insertion position: a restart inserts
// replayed (still-running) jobs after restored (finished) ones, so
// insertion order can disagree with ID order — and an exclusive numeric
// cursor over a misordered walk would skip the out-of-place jobs on
// every subsequent page.
func (s *Store) ListPage(q ListQuery) (page []Snapshot, next string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byID := make([]*job, len(s.order))
	copy(byID, s.order)
	sort.SliceStable(byID, func(i, j int) bool { return idSeq(byID[i].id) < idSeq(byID[j].id) })
	afterSeq := -1
	if q.After != "" {
		afterSeq = idSeq(q.After)
	}
	for _, j := range byID {
		if afterSeq >= 0 && idSeq(j.id) <= afterSeq {
			continue
		}
		if q.Status != "" && j.status != q.Status {
			continue
		}
		if q.Tenant != "" && j.tenant != q.Tenant {
			continue
		}
		if q.Limit > 0 && len(page) == q.Limit {
			return page, page[len(page)-1].ID
		}
		page = append(page, j.summaryLocked())
	}
	return page, ""
}

// Cancel requests cancellation of one job and returns its snapshot. A
// queued job transitions straight to cancelled; a running job has its
// context cancelled and reaches the cancelled state when its body
// returns; a terminal job is untouched. Cancel is idempotent — repeated
// calls are no-ops — and only reports false for unknown IDs.
func (s *Store) Cancel(id string) (Snapshot, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Snapshot{}, false
	}
	finished := false
	var evicted []string
	switch j.status {
	case StatusQueued:
		j.cancelRequested = true
		j.userCancelled = true
		j.status = StatusCancelled
		s.dropPendingLocked(j)
		evicted = s.finishLocked(j)
		finished = true
	case StatusRunning:
		j.userCancelled = true
		if !j.cancelRequested {
			j.cancelRequested = true
			j.cancel()
		}
	}
	if finished {
		s.notifyWG.Add(1) // under mu: ordered before Close's wait
	}
	snap := j.snapshotLocked()
	s.mu.Unlock()
	if finished {
		s.notifyTerminal(snap, false)
		s.notifyEvicted(evicted)
		s.notifyWG.Done()
	}
	return snap, true
}

// dropPendingLocked removes a job from the pending queue so its slot is
// reusable the moment it is cancelled, not when a runner would have
// reached it. The job may already be off the queue (a runner popped it
// but has not yet marked it running); that is fine — the runner skips
// non-queued jobs.
func (s *Store) dropPendingLocked(j *job) {
	rank := j.priority.rank()
	q := s.pending[rank][j.tenant]
	for i, p := range q {
		if p == j {
			q = append(q[:i], q[i+1:]...)
			if len(q) == 0 {
				delete(s.pending[rank], j.tenant)
			} else {
				s.pending[rank][j.tenant] = q
			}
			s.pendingN[rank]--
			s.tenantStateLocked(j.tenant).queued--
			return
		}
	}
}

// Wait blocks until the job reaches a terminal state or ctx expires,
// returning the final snapshot.
func (s *Store) Wait(ctx context.Context, id string) (Snapshot, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Snapshot{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.snapshotLocked(), nil
}

// Await blocks until the job's version exceeds afterVersion — some
// observable mutation the caller has not seen yet — and returns the
// fresh snapshot. A terminal job returns immediately regardless of the
// cursor (no further mutations are coming, and blocking forever on a
// finished job would hang resumed watchers). This is the seam the HTTP
// layer's SSE stream and long-poll are built on: hold a snapshot, await
// its version, emit, repeat.
func (s *Store) Await(ctx context.Context, id string, afterVersion int64) (Snapshot, error) {
	for {
		s.mu.Lock()
		j, ok := s.jobs[id]
		if !ok {
			s.mu.Unlock()
			return Snapshot{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
		}
		if j.version > afterVersion || j.status.Terminal() {
			snap := j.snapshotLocked()
			s.mu.Unlock()
			return snap, nil
		}
		ch := j.changed
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return Snapshot{}, ctx.Err()
		}
	}
}

// Close stops accepting jobs, cancels everything queued or running, and
// waits for the runners to drain.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		s.notifyWG.Wait()
		return
	}
	s.closed = true
	var cancelled []Snapshot
	var evicted []string
	// Iterate a copy: finishLocked's retention pass splices s.order.
	order := append([]*job(nil), s.order...)
	for _, j := range order {
		switch j.status {
		case StatusQueued:
			j.cancelRequested = true
			j.status = StatusCancelled
			s.dropPendingLocked(j)
			evicted = append(evicted, s.finishLocked(j)...)
			cancelled = append(cancelled, j.snapshotLocked())
		case StatusRunning:
			if !j.cancelRequested {
				j.cancelRequested = true
				j.cancel()
			}
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, snap := range cancelled {
		s.notifyTerminal(snap, true)
	}
	s.notifyEvicted(evicted)
	s.wg.Wait()
	// Cancels/Restores that turned a job terminal before we took the lock
	// may still be delivering their notifications on caller goroutines;
	// their records must reach the persistence layer before it shuts.
	s.notifyWG.Wait()
}

// summaryLocked copies the job's scalar fields under the store mutex —
// everything but the payloads.
func (j *job) summaryLocked() Snapshot {
	snap := Snapshot{
		ID:         j.id,
		Label:      j.label,
		Status:     j.status,
		Priority:   j.priority,
		Tenant:     j.tenant,
		Resumes:    j.resumes,
		Version:    j.version,
		Completed:  j.completed,
		Total:      j.total,
		FirstError: j.firstErr,
		Error:      j.err,
		CreatedAt:  j.created,
	}
	switch {
	case j.status.Terminal() && !j.started.IsZero():
		snap.ElapsedSec = j.finished.Sub(j.started).Seconds()
	case j.status == StatusRunning:
		snap.ElapsedSec = time.Since(j.started).Seconds()
	}
	return snap
}

// snapshotLocked is summaryLocked plus the payloads. The partial slice
// is copied so readers never alias the live buffer; the values themselves
// are immutable once reported.
func (j *job) snapshotLocked() Snapshot {
	snap := j.summaryLocked()
	snap.Result = j.result
	if j.completed > 0 {
		snap.Results = append([]any(nil), j.partials...)
	}
	return snap
}
