package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// twoTenants is the fixture schedule used by the WFQ ordering tests:
// tenant a at weight 2, tenant b at weight 1, equal-cost jobs submitted
// a1..a4 then b1..b4 while the runner is blocked.
func twoTenants() map[string]Tenant {
	return map[string]Tenant{
		"a": {Weight: 2},
		"b": {Weight: 1},
	}
}

// wfqWant is the dispatch order WFQ must produce for the twoTenants
// fixture: finish tags a=0.5,1.0,1.5,2.0 and b=1,2,3,4, ties broken by
// submission order, giving tenant a two dispatches for every one of b.
var wfqWant = []string{"a1", "a2", "b1", "a3", "a4", "b2", "b3", "b4"}

// submitFixture submits the twoTenants schedule into a store whose
// runner is already blocked, returning the submitted IDs in order.
func submitFixture(t *testing.T, s *Store, log *[]string, mu interface {
	Lock()
	Unlock()
}, replay bool) []string {
	t.Helper()
	var ids []string
	for _, spec := range []struct{ tenant, label string }{
		{"a", "a1"}, {"a", "a2"}, {"a", "a3"}, {"a", "a4"},
		{"b", "b1"}, {"b", "b2"}, {"b", "b3"}, {"b", "b4"},
	} {
		fn := func(label string) Fn {
			return func(ctx context.Context, report Report) (any, error) {
				mu.Lock()
				*log = append(*log, label)
				mu.Unlock()
				return nil, nil
			}
		}(spec.label)
		snap, err := s.SubmitJob(Submission{
			Tenant: spec.tenant, Label: spec.label, Total: 1, Fn: fn, Replay: replay,
		})
		if err != nil {
			t.Fatalf("submit %s: %v", spec.label, err)
		}
		ids = append(ids, snap.ID)
	}
	return ids
}

// TestWFQWeightedOrder pins the weighted interleave: a weight-2 tenant
// drains two equal-cost jobs for every one a weight-1 tenant drains,
// and the whole schedule is deterministic.
func TestWFQWeightedOrder(t *testing.T) {
	s, log, mu := recordingStore(t, Options{MaxRunning: 1, MaxQueued: 16, Tenants: twoTenants()})
	blocker, release := gate()
	bsnap, err := s.Submit("blocker", 0, blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, bsnap.ID, StatusRunning)
	jobIDs := submitFixture(t, s, log, mu, false)
	if snap, _ := s.Get(jobIDs[0]); snap.Tenant != "a" {
		t.Fatalf("snapshot tenant %q, want a", snap.Tenant)
	}
	st := s.Stats()
	if st.QueuedByTenant["a"] != 4 || st.QueuedByTenant["b"] != 4 {
		t.Fatalf("per-tenant queued %+v", st.QueuedByTenant)
	}
	release()
	for _, id := range jobIDs {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(*log) != fmt.Sprint(wfqWant) {
		t.Fatalf("dispatch order %v, want %v", *log, wfqWant)
	}
}

// TestWFQDeterministicAcrossReplay re-submits the same schedule through
// the replay path (Submission.Replay, as WAL replay does at boot, in
// ascending-ID order) into a fresh store and requires the identical
// dispatch order: finish tags are a pure function of the submission
// sequence, so a restart cannot reorder the queue.
func TestWFQDeterministicAcrossReplay(t *testing.T) {
	for _, replay := range []bool{false, true} {
		s, log, mu := recordingStore(t, Options{MaxRunning: 1, MaxQueued: 16, Tenants: twoTenants()})
		blocker, release := gate()
		bsnap, err := s.Submit("blocker", 0, blocker)
		if err != nil {
			t.Fatal(err)
		}
		waitStatus(t, s, bsnap.ID, StatusRunning)
		jobIDs := submitFixture(t, s, log, mu, replay)
		release()
		for _, id := range jobIDs {
			if _, err := s.Wait(context.Background(), id); err != nil {
				t.Fatal(err)
			}
		}
		mu.Lock()
		got := fmt.Sprint(*log)
		mu.Unlock()
		if got != fmt.Sprint(wfqWant) {
			t.Fatalf("replay=%v dispatch order %v, want %v", replay, got, wfqWant)
		}
	}
}

// TestTenantQuota: a tenant at its MaxPending bound is rejected with a
// TenantQueueFullError (which is ErrQueueFull to every existing
// consumer) while other tenants keep submitting; cancelling a queued
// job frees the tenant's slot immediately.
func TestTenantQuota(t *testing.T) {
	s := NewStore(Options{MaxRunning: 1, MaxQueued: 16, Tenants: map[string]Tenant{
		"a": {Weight: 1, MaxPending: 2},
		"b": {Weight: 1},
	}})
	defer s.Close()
	blocker, release := gate()
	defer release()
	bsnap, err := s.Submit("blocker", 0, blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, bsnap.ID, StatusRunning)
	nop := func(ctx context.Context, report Report) (any, error) { return nil, nil }
	var queued []string
	for i := 0; i < 2; i++ {
		snap, err := s.SubmitJob(Submission{Tenant: "a", Label: "a", Fn: nop})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		queued = append(queued, snap.ID)
	}
	_, err = s.SubmitJob(Submission{Tenant: "a", Label: "a-over", Fn: nop})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-quota err = %v, want ErrQueueFull equivalence", err)
	}
	var tqf *TenantQueueFullError
	if !errors.As(err, &tqf) || tqf.Tenant != "a" || tqf.Limit != 2 {
		t.Fatalf("over-quota err = %#v, want TenantQueueFullError{a, 2}", err)
	}
	// Other tenants are not throttled by a's quota.
	if _, err := s.SubmitJob(Submission{Tenant: "b", Label: "b", Fn: nop}); err != nil {
		t.Fatalf("tenant b blocked by a's quota: %v", err)
	}
	// Cancelling a queued job frees the slot now, not at dispatch.
	if snap, ok := s.Cancel(queued[0]); !ok || snap.Status != StatusCancelled {
		t.Fatalf("cancel queued: %v %+v", ok, snap)
	}
	if _, err := s.SubmitJob(Submission{Tenant: "a", Label: "a-readmit", Fn: nop}); err != nil {
		t.Fatalf("submit after freeing quota slot: %v", err)
	}
}

// TestPreemptRequiresProgress: Preempting stays false until the batch
// job has completed an item since its dispatch — the guaranteed unit of
// progress that stops an anti-starvation dispatch from thrashing
// straight back to the queue — and flips true once interactive work
// waits behind a busy runner.
func TestPreemptRequiresProgress(t *testing.T) {
	s := NewStore(Options{MaxRunning: 1, MaxQueued: 8})
	defer s.Close()
	id := s.ReserveID()
	step := make(chan struct{})
	fin := make(chan struct{})
	if _, err := s.SubmitJob(Submission{ID: id, Priority: PriorityBatch, Label: "batch", Total: 2,
		Fn: func(ctx context.Context, report Report) (any, error) {
			select {
			case <-step:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			report(0, nil, nil)
			select {
			case <-fin:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			report(1, nil, nil)
			return nil, nil
		}}); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, id, StatusRunning)
	if s.Preempting(id) {
		t.Fatal("Preempting true with no interactive work waiting")
	}
	inter, err := s.SubmitPriority(PriorityInteractive, "inter", 0, nopJob(nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Preempting(id) {
		t.Fatal("Preempting true before the dispatch made any progress")
	}
	step <- struct{}{}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap, _ := s.Get(id); snap.Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("item 0 never reported")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Preempting(id) {
		t.Fatal("Preempting false with interactive waiting and progress made")
	}
	if s.Preempting(inter.ID) {
		t.Fatal("Preempting true for a non-running job")
	}
	close(fin)
	if _, err := s.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), inter.ID); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptResumeRoundTrip is the full yield cycle: a batch job
// returns ErrPreempted after checkpointing, the waiting interactive job
// runs to completion first, and the batch job is requeued — not
// terminal — then re-dispatched and finishes with its earlier progress
// intact and Resumes counting the round trip.
func TestPreemptResumeRoundTrip(t *testing.T) {
	s, log, mu := recordingStore(t, Options{MaxRunning: 1, MaxQueued: 8})
	id := s.ReserveID()
	const total = 3
	state := 0 // items completed across dispatches; guarded by mu
	step := make(chan struct{})
	body := func(ctx context.Context, report Report) (any, error) {
		for {
			mu.Lock()
			i := state
			mu.Unlock()
			if i >= total {
				return "done", nil
			}
			select {
			case <-step:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			report(i, fmt.Sprintf("item-%d", i), nil)
			mu.Lock()
			state++
			mu.Unlock()
			if s.Preempting(id) {
				return nil, ErrPreempted
			}
		}
	}
	if _, err := s.SubmitJob(Submission{ID: id, Priority: PriorityBatch, Label: "batch", Total: total, Fn: body}); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, id, StatusRunning)
	step <- struct{}{} // item 0: no interactive waiting, keeps running
	inter, err := s.SubmitPriority(PriorityInteractive, "inter", 0, runOrderJob(log, mu, "inter"))
	if err != nil {
		t.Fatal(err)
	}
	step <- struct{}{} // item 1: interactive now waiting -> yield
	if _, err := s.Wait(context.Background(), inter.ID); err != nil {
		t.Fatal(err)
	}
	// The batch job must be alive (queued or re-running), never terminal.
	snap, ok := s.Get(id)
	if !ok || snap.Status.Terminal() {
		t.Fatalf("preempted job state: %v %+v", ok, snap)
	}
	waitStatus(t, s, id, StatusRunning) // re-dispatched after the yield
	step <- struct{}{}                  // item 2 finishes the job
	final, err := s.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusSucceeded || final.Result != "done" {
		t.Fatalf("final: %+v", final)
	}
	if final.Completed != total {
		t.Fatalf("completed %d, want %d (progress lost across the resume)", final.Completed, total)
	}
	if final.Resumes != 1 {
		t.Fatalf("resumes %d, want 1", final.Resumes)
	}
	if len(final.Results) != total || final.Results[0] != "item-0" || final.Results[2] != "item-2" {
		t.Fatalf("partials lost across resume: %v", final.Results)
	}
	if st := s.Stats(); st.Preemptions != 1 {
		t.Fatalf("stats preemptions %d, want 1", st.Preemptions)
	}
	// The interactive job ran during the yield window, before the batch
	// job's final item.
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(*log) != fmt.Sprint([]string{"inter"}) {
		t.Fatalf("log %v", *log)
	}
}

// TestTenantListFilter: ListQuery.Tenant scopes listings to one tenant.
func TestTenantListFilter(t *testing.T) {
	s := NewStore(Options{MaxQueued: 8})
	defer s.Close()
	for _, tenant := range []string{"a", "b", "a"} {
		snap, err := s.SubmitJob(Submission{Tenant: tenant, Label: tenant, Fn: nopJob(nil)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), snap.ID); err != nil {
			t.Fatal(err)
		}
	}
	page, _ := s.ListPage(ListQuery{Tenant: "a"})
	if len(page) != 2 {
		t.Fatalf("tenant a sees %d jobs, want 2: %v", len(page), ids(page))
	}
	for _, snap := range page {
		if snap.Tenant != "a" {
			t.Fatalf("tenant filter leaked %+v", snap)
		}
	}
	if page, _ := s.ListPage(ListQuery{}); len(page) != 3 {
		t.Fatalf("unfiltered listing %v", ids(page))
	}
}
