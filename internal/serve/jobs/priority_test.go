package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// gate blocks one runner until released, so tests control exactly when
// the scheduler makes its next dispatch decision.
func gate() (Fn, func()) {
	ch := make(chan struct{})
	var once sync.Once
	fn := func(ctx context.Context, report Report) (any, error) {
		select {
		case <-ch:
		case <-ctx.Done():
		}
		return nil, nil
	}
	return fn, func() { once.Do(func() { close(ch) }) }
}

// recordingStore submits jobs that append their label to a shared log,
// so dispatch order is observable.
func recordingStore(t *testing.T, opts Options) (*Store, *[]string, *sync.Mutex) {
	t.Helper()
	s := NewStore(opts)
	t.Cleanup(s.Close)
	var mu sync.Mutex
	log := []string{}
	return s, &log, &mu
}

func runOrderJob(log *[]string, mu *sync.Mutex, label string) Fn {
	return func(ctx context.Context, report Report) (any, error) {
		mu.Lock()
		*log = append(*log, label)
		mu.Unlock()
		return nil, nil
	}
}

// TestPriorityOrdering is the headline guarantee: an interactive job
// submitted AFTER queued batch jobs dispatches before them, batch jobs
// keep FIFO order among themselves, and the schedule is deterministic.
func TestPriorityOrdering(t *testing.T) {
	s, log, mu := recordingStore(t, Options{MaxRunning: 1, MaxQueued: 16})

	// Occupy the single runner so everything below queues.
	blocker, release := gate()
	bsnap, err := s.Submit("blocker", 0, blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, bsnap.ID, StatusRunning)
	for _, label := range []string{"batch-1", "batch-2"} {
		if _, err := s.SubmitPriority(PriorityBatch, label, 0, runOrderJob(log, mu, label)); err != nil {
			t.Fatal(err)
		}
	}
	inter, err2 := s.SubmitPriority(PriorityInteractive, "inter-1", 0, runOrderJob(log, mu, "inter-1"))
	if err2 != nil {
		t.Fatal(err2)
	}
	if inter.Priority != PriorityInteractive {
		t.Fatalf("snapshot priority %q", inter.Priority)
	}
	st := s.Stats()
	if st.QueuedInteractive != 1 || st.QueuedBatch != 2 {
		t.Fatalf("stats %+v", st)
	}

	release()
	for _, id := range []string{"job-000002", "job-000003", "job-000004"} {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"inter-1", "batch-1", "batch-2"}
	if fmt.Sprint(*log) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want %v", *log, want)
	}
}

// TestPriorityDefaultsToBatch: the empty class is batch, and Submit
// (the legacy entry point) lands there too.
func TestPriorityDefaultsToBatch(t *testing.T) {
	s := NewStore(Options{MaxQueued: 4})
	defer s.Close()
	snap, err := s.Submit("legacy", 0, func(ctx context.Context, report Report) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if snap.Priority != PriorityBatch {
		t.Fatalf("Submit priority %q, want batch", snap.Priority)
	}
	if _, err := s.SubmitPriority("urgent", "bad", 0, func(ctx context.Context, report Report) (any, error) { return nil, nil }); err == nil {
		t.Fatal("unknown priority must be rejected")
	}
	if p, err := ParsePriority(""); err != nil || p != PriorityBatch {
		t.Fatalf("ParsePriority(\"\") = %v, %v", p, err)
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Fatal("ParsePriority must reject unknown classes")
	}
}

// TestPriorityAntiStarvation: a continuous interactive stream cannot
// starve batch forever — after starveLimit consecutive interactive
// dispatches over waiting batch work, one batch job runs.
func TestPriorityAntiStarvation(t *testing.T) {
	s, log, mu := recordingStore(t, Options{MaxRunning: 1, MaxQueued: 64})
	blocker, release := gate()
	bsnap, err := s.Submit("blocker", 0, blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, bsnap.ID, StatusRunning)
	// One batch job first, then more interactive jobs than the streak
	// limit: the batch job must appear after exactly starveLimit
	// interactive dispatches.
	if _, err := s.SubmitPriority(PriorityBatch, "batch-1", 0, runOrderJob(log, mu, "batch-1")); err != nil {
		t.Fatal(err)
	}
	n := starveLimit + 3
	ids := []string{"job-000002"}
	for i := 1; i <= n; i++ {
		label := fmt.Sprintf("inter-%d", i)
		snap, err := s.SubmitPriority(PriorityInteractive, label, 0, runOrderJob(log, mu, label))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	release()
	for _, id := range ids {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	got := *log
	wantBatchAt := starveLimit
	if got[wantBatchAt] != "batch-1" {
		t.Fatalf("batch-1 dispatched at %v; want position %d (after %d interactive)", got, wantBatchAt, starveLimit)
	}
	// And the interactive jobs stay FIFO among themselves.
	k := 1
	for _, l := range got {
		if l == "batch-1" {
			continue
		}
		if l != fmt.Sprintf("inter-%d", k) {
			t.Fatalf("interactive order broken: %v", got)
		}
		k++
	}
}

// TestAwaitVersionCursor: Await returns immediately for a stale cursor,
// blocks until news for a fresh one, and returns immediately on
// terminal jobs regardless of cursor.
func TestAwaitVersionCursor(t *testing.T) {
	s := NewStore(Options{MaxRunning: 1})
	defer s.Close()
	step := make(chan struct{})
	snap, err := s.Submit("steps", 2, func(ctx context.Context, report Report) (any, error) {
		<-step
		report(0, "a", nil)
		<-step
		report(1, "b", nil)
		return "done", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 {
		t.Fatalf("initial version %d, want 1", snap.Version)
	}

	// Stale cursor 0: immediate (version is already 1).
	got, err := s.Await(context.Background(), snap.ID, 0)
	if err != nil || got.Version < 1 {
		t.Fatalf("await stale: %v %v", got.Version, err)
	}

	// Await the first progress report concurrently with producing it.
	type res struct {
		snap Snapshot
		err  error
	}
	ch := make(chan res, 1)
	cur := got.Version
	go func() {
		s2, err := s.Await(context.Background(), snap.ID, cur)
		ch <- res{s2, err}
	}()
	step <- struct{}{} // first item completes
	r := <-ch
	if r.err != nil || r.snap.Version <= cur {
		t.Fatalf("await news: %+v", r)
	}
	step <- struct{}{} // job finishes
	final, err := s.Wait(context.Background(), snap.ID)
	if err != nil || !final.Done() {
		t.Fatalf("final: %+v %v", final, err)
	}
	// Terminal job: even a cursor at (or past) the final version returns
	// immediately instead of hanging.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := s.Await(context.Background(), snap.ID, final.Version+100); err != nil {
			t.Errorf("await terminal: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Await hung on a terminal job")
	}

	// Unknown IDs are ErrUnknownJob; an expired context surfaces as its
	// error.
	if _, err := s.Await(context.Background(), "job-999999", 0); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	running, _ := s.Submit("idle", 0, func(ctx context.Context, report Report) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	snap2, _ := s.Get(running.ID)
	if _, err := s.Await(ctx, running.ID, snap2.Version+10); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled await: %v", err)
	}
}

// TestListPage covers the pagination and filter contract: cursors are
// numeric on the monotonic ID, filters compose with limits, and a
// cursor naming an evicted job still resumes correctly.
func TestListPage(t *testing.T) {
	s := NewStore(Options{MaxRunning: 1, MaxQueued: 64, Retention: 64})
	defer s.Close()
	for i := 0; i < 5; i++ {
		snap, err := s.Submit(fmt.Sprintf("j%d", i), 0, func(ctx context.Context, report Report) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), snap.ID); err != nil {
			t.Fatal(err)
		}
	}
	page, next := s.ListPage(ListQuery{Limit: 2})
	if len(page) != 2 || page[0].ID != "job-000001" || next != "job-000002" {
		t.Fatalf("page1 %v next %q", ids(page), next)
	}
	page, next = s.ListPage(ListQuery{Limit: 2, After: next})
	if len(page) != 2 || page[0].ID != "job-000003" || next != "job-000004" {
		t.Fatalf("page2 %v next %q", ids(page), next)
	}
	page, next = s.ListPage(ListQuery{Limit: 2, After: next})
	if len(page) != 1 || page[0].ID != "job-000005" || next != "" {
		t.Fatalf("page3 %v next %q", ids(page), next)
	}
	// A cursor for an ID that no longer exists (evicted) still works:
	// strictly-greater comparison, not position lookup.
	page, _ = s.ListPage(ListQuery{After: "job-000002"})
	if len(page) != 3 || page[0].ID != "job-000003" {
		t.Fatalf("gap cursor %v", ids(page))
	}
	// Status filter: everything finished, so queued yields nothing.
	if page, _ = s.ListPage(ListQuery{Status: StatusQueued}); len(page) != 0 {
		t.Fatalf("queued filter %v", ids(page))
	}
	if page, _ = s.ListPage(ListQuery{Status: StatusSucceeded, Limit: 3}); len(page) != 3 {
		t.Fatalf("succeeded filter %v", ids(page))
	}
}

// TestListPageOrdersById: after a restart the store's insertion order
// can disagree with ID order (restored terminal snapshots first, then
// replayed lower-ID jobs). Pagination must walk by ID or the exclusive
// cursor would skip the out-of-place jobs on every later page.
func TestListPageOrdersByID(t *testing.T) {
	s := NewStore(Options{MaxRunning: 1})
	defer s.Close()
	if err := s.Restore(Snapshot{ID: "job-000009", Status: StatusSucceeded, Version: 3}); err != nil {
		t.Fatal(err)
	}
	blocker, release := gate()
	defer release()
	if _, err := s.SubmitWithID("job-000007", PriorityBatch, "replayed", 0, blocker); err != nil {
		t.Fatal(err)
	}
	page, next := s.ListPage(ListQuery{Limit: 1})
	if len(page) != 1 || page[0].ID != "job-000007" || next != "job-000007" {
		t.Fatalf("page1 %v next %q, want job-000007 first", ids(page), next)
	}
	page, next = s.ListPage(ListQuery{Limit: 1, After: next})
	if len(page) != 1 || page[0].ID != "job-000009" || next != "" {
		t.Fatalf("page2 %v next %q: cursor skipped the restored job", ids(page), next)
	}
}

func ids(snaps []Snapshot) []string {
	out := make([]string, len(snaps))
	for i, s := range snaps {
		out[i] = s.ID
	}
	return out
}
