package jobs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// nopJob returns a job body that finishes immediately with result v.
func nopJob(v any) Fn {
	return func(ctx context.Context, report Report) (any, error) { return v, nil }
}

func TestRestoreTerminalJob(t *testing.T) {
	s := NewStore(Options{})
	defer s.Close()
	snap := Snapshot{
		ID:         "job-000007",
		Label:      "restored sweep",
		Status:     StatusSucceeded,
		Completed:  3,
		Total:      3,
		Results:    []any{"a", "b", "c"},
		Result:     "table",
		CreatedAt:  time.Now().Add(-time.Hour),
		ElapsedSec: 12.5,
	}
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("job-000007")
	if !ok {
		t.Fatal("restored job must be gettable")
	}
	if got.Status != StatusSucceeded || got.Completed != 3 || got.Result != "table" ||
		got.Label != snap.Label || len(got.Results) != 3 {
		t.Fatalf("restored snapshot = %+v", got)
	}
	if got.ElapsedSec < 12.4 || got.ElapsedSec > 12.6 {
		t.Fatalf("elapsed must survive the round trip, got %g", got.ElapsedSec)
	}
	// Wait returns immediately: the job is already terminal.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, "job-000007"); err != nil {
		t.Fatal(err)
	}
	// The ID counter advanced past the restored ID.
	fresh, err := s.Submit("fresh", 0, nopJob(nil))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != "job-000008" {
		t.Fatalf("next ID = %s, want job-000008", fresh.ID)
	}
	// Restoring the same ID again is a silent no-op (first wins).
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if all := s.List(); len(all) != 2 {
		t.Fatalf("duplicate restore must not add a job: %d jobs", len(all))
	}
}

func TestRestoreRejectsNonTerminal(t *testing.T) {
	s := NewStore(Options{})
	defer s.Close()
	for _, status := range []Status{StatusQueued, StatusRunning} {
		if err := s.Restore(Snapshot{ID: "job-000001", Status: status}); err == nil {
			t.Fatalf("restore of %s job must fail", status)
		}
	}
	if err := s.Restore(Snapshot{Status: StatusSucceeded}); err == nil {
		t.Fatal("restore without an ID must fail")
	}
}

func TestRestoreRespectsRetention(t *testing.T) {
	s := NewStore(Options{Retention: 2})
	defer s.Close()
	for i := 1; i <= 4; i++ {
		snap := Snapshot{
			ID:        "job-" + string(rune('0'+i)) + "00000",
			Status:    StatusSucceeded,
			CreatedAt: time.Now(),
		}
		if err := s.Restore(snap); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.List()); got != 2 {
		t.Fatalf("retention must bound restored jobs too: have %d, want 2", got)
	}
}

func TestSubmitWithIDReplays(t *testing.T) {
	s := NewStore(Options{MaxQueued: 1})
	defer s.Close()
	done := make(chan struct{})
	snap, err := s.SubmitWithID("job-000042", PriorityBatch, "replayed", 1, func(ctx context.Context, report Report) (any, error) {
		close(done)
		report(0, "partial", nil)
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "job-000042" || snap.Status != StatusQueued {
		t.Fatalf("replayed snapshot = %+v", snap)
	}
	<-done
	final, err := s.Wait(context.Background(), "job-000042")
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusSucceeded || final.Result != "ok" {
		t.Fatalf("replayed job finished %+v", final)
	}
	// Duplicate IDs are refused.
	if _, err := s.SubmitWithID("job-000042", PriorityBatch, "dup", 0, nopJob(nil)); err == nil {
		t.Fatal("duplicate ID must fail")
	}
	// New submissions continue after the replayed ID.
	next, err := s.Submit("next", 0, nopJob(nil))
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "job-000043" {
		t.Fatalf("next ID = %s, want job-000043", next.ID)
	}
}

// TestSubmitWithIDBypassesQueueBound: replayed jobs were accepted before
// the restart; the queue bound applies to new admissions only.
func TestSubmitWithIDBypassesQueueBound(t *testing.T) {
	s := NewStore(Options{MaxQueued: 1, MaxRunning: 1})
	defer s.Close()
	block := make(chan struct{})
	var once sync.Once
	blocker := func(ctx context.Context, report Report) (any, error) {
		once.Do(func() { close(block) })
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if _, err := s.SubmitWithID("job-000001", PriorityBatch, "running", 0, blocker); err != nil {
		t.Fatal(err)
	}
	<-block
	for i := 2; i <= 4; i++ {
		id := []string{"", "", "job-000002", "job-000003", "job-000004"}[i]
		if _, err := s.SubmitWithID(id, PriorityBatch, "queued replay", 0, nopJob(nil)); err != nil {
			t.Fatalf("replay %s must bypass the queue bound: %v", id, err)
		}
	}
	// A fresh submission still honors the bound (queue already has 3).
	if _, err := s.Submit("fresh", 0, nopJob(nil)); err != ErrQueueFull {
		t.Fatalf("fresh submission got %v, want ErrQueueFull", err)
	}
}

// TestUserCancelBeatsShutdown: a job the user explicitly cancelled whose
// body unwinds only after Close has begun must still report
// shutdown=false — otherwise the persistence layer would keep its WAL
// and resurrect a deliberately cancelled job on the next boot.
func TestUserCancelBeatsShutdown(t *testing.T) {
	type event struct {
		snap     Snapshot
		shutdown bool
	}
	events := make(chan event, 4)
	s := NewStore(Options{OnTerminal: func(snap Snapshot, shutdown bool) {
		events <- event{snap, shutdown}
	}})
	started := make(chan struct{})
	cancelled := make(chan struct{})
	release := make(chan struct{})
	snap, err := s.Submit("blocker", 0, func(ctx context.Context, report Report) (any, error) {
		close(started)
		<-ctx.Done()
		close(cancelled)
		<-release // hold the body open until Close is underway
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the cancel must hit a RUNNING job, not a queued one
	if _, ok := s.Cancel(snap.ID); !ok {
		t.Fatal("cancel failed")
	}
	<-cancelled
	closeDone := make(chan struct{})
	go func() { s.Close(); close(closeDone) }()
	// Give Close time to set the closed flag, then let the body return.
	time.Sleep(50 * time.Millisecond)
	close(release)
	<-closeDone
	e := <-events
	if e.snap.ID != snap.ID || e.snap.Status != StatusCancelled {
		t.Fatalf("terminal event = %+v", e)
	}
	if e.shutdown {
		t.Fatal("a user-cancelled job must not be classified as shutdown-interrupted")
	}
}

// TestOnTerminalHook: every terminal transition — normal completion,
// cancel-of-queued, and shutdown — reports exactly once, outside the
// mutex (the callback calls back into the store to prove no deadlock),
// with the shutdown flag distinguishing Close-driven cancellations.
func TestOnTerminalHook(t *testing.T) {
	var mu sync.Mutex
	type event struct {
		snap     Snapshot
		shutdown bool
	}
	var events []event
	var s *Store
	s = NewStore(Options{MaxRunning: 1, OnTerminal: func(snap Snapshot, shutdown bool) {
		s.Stats() // re-entering the store must not deadlock
		mu.Lock()
		defer mu.Unlock()
		events = append(events, event{snap, shutdown})
	}})

	// 1: normal completion.
	done, err := s.Submit("done", 0, nopJob("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), done.ID); err != nil {
		t.Fatal(err)
	}

	// 2: a blocker occupies the runner; 3 queues behind it and is
	// cancelled by the user.
	block := make(chan struct{})
	var once sync.Once
	running, err := s.Submit("running", 0, func(ctx context.Context, report Report) (any, error) {
		once.Do(func() { close(block) })
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-block
	queued, err := s.Submit("queued", 0, nopJob(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cancel(queued.ID); !ok {
		t.Fatal("cancel failed")
	}

	// 4: shutdown cancels the running blocker.
	s.Close()

	mu.Lock()
	defer mu.Unlock()
	byID := map[string]event{}
	for _, e := range events {
		if prev, dup := byID[e.snap.ID]; dup {
			t.Fatalf("job %s reported terminal twice: %+v then %+v", e.snap.ID, prev, e)
		}
		byID[e.snap.ID] = e
	}
	if e := byID[done.ID]; e.snap.Status != StatusSucceeded || e.shutdown {
		t.Fatalf("completion event = %+v", e)
	}
	if e := byID[queued.ID]; e.snap.Status != StatusCancelled || e.shutdown {
		t.Fatalf("user-cancel event = %+v, want cancelled with shutdown=false", e)
	}
	if e := byID[running.ID]; e.snap.Status != StatusCancelled || !e.shutdown {
		t.Fatalf("shutdown event = %+v, want cancelled with shutdown=true", e)
	}
}
