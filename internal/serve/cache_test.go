package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/macros"
	"repro/internal/workload"
)

func TestFingerprintStability(t *testing.T) {
	a1, err := macros.Base(macros.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := macros.Base(macros.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ArchFingerprint(a1) != ArchFingerprint(a2) {
		t.Fatal("identical arch specs must hash identically")
	}
	b, err := macros.Base(macros.Config{Rows: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ArchFingerprint(a1) == ArchFingerprint(b) {
		t.Fatal("different array sizes must hash differently")
	}
	// Encoding is part of the content address.
	enc := *a1
	enc.InputEncoding = "offset"
	if ArchFingerprint(a1) == ArchFingerprint(&enc) {
		t.Fatal("different encodings must hash differently")
	}

	net := workload.ResNet18()
	if LayerFingerprint(net.Layers[0]) == LayerFingerprint(net.Layers[5]) {
		t.Fatal("different layers must hash differently")
	}
	if LayerFingerprint(net.Layers[3]) != LayerFingerprint(workload.ResNet18().Layers[3]) {
		t.Fatal("identical layers must hash identically")
	}
}

func TestCacheHitMissCounts(t *testing.T) {
	c := NewCache(8)
	arch, err := macros.Base(macros.Config{Rows: 16, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	eng1, err := c.Engine(arch)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := c.Engine(arch)
	if err != nil {
		t.Fatal(err)
	}
	if eng1 != eng2 {
		t.Fatal("second lookup must return the cached engine")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	layer := workload.Toy().Layers[0]
	ctx1, err := c.LayerContext(eng1, layer)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, err := c.LayerContext(eng1, layer)
	if err != nil {
		t.Fatal(err)
	}
	if ctx1 != ctx2 {
		t.Fatal("second lookup must return the cached layer context")
	}
	st = c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses / 2 entries", st)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %g, want 0.5", hr)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 3; i++ {
		if _, err := c.getOrCompute(fmt.Sprintf("k%d", i), func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, err := c.getOrCompute("k0", func() (any, error) { t.Fatal("k0 must be cached"); return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.getOrCompute("k3", func() (any, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 entries", st)
	}
	recomputed := false
	if _, err := c.getOrCompute("k1", func() (any, error) { recomputed = true; return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("k1 must have been evicted as least recently used")
	}
	for _, k := range []string{"k0", "k3"} {
		k := k
		if _, err := c.getOrCompute(k, func() (any, error) { return nil, fmt.Errorf("%s must still be cached", k) }); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4)
	calls := 0
	fail := func() (any, error) { calls++; return nil, errors.New("boom") }
	if _, err := c.getOrCompute("k", fail); err == nil {
		t.Fatal("want error")
	}
	if _, err := c.getOrCompute("k", fail); err == nil {
		t.Fatal("want error on retry")
	}
	if calls != 2 {
		t.Fatalf("failed computations must not be cached; got %d calls", calls)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed entries must be removed, have %d", st.Entries)
	}
}

// TestCacheConcurrentAccess hammers the cache from many goroutines (run
// under -race by CI). Concurrent misses on one key must compute once.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(16)
	arch, err := macros.Base(macros.Config{Rows: 16, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	net := workload.Toy()
	var wg sync.WaitGroup
	var mu sync.Mutex
	engines := make(map[any]bool)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				eng, err := c.Engine(arch)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				engines[eng] = true
				mu.Unlock()
				for _, l := range net.Layers {
					if _, err := c.LayerContext(eng, l); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if len(engines) != 1 {
		t.Fatalf("concurrent misses compiled %d engines, want 1", len(engines))
	}
	st := c.Stats()
	wantMisses := uint64(1 + len(net.Layers)) // one engine + one context per layer
	if st.Misses != wantMisses {
		t.Fatalf("misses = %d, want %d (singleflight)", st.Misses, wantMisses)
	}
}
