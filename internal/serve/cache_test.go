package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/macros"
	"repro/internal/workload"
)

func TestFingerprintStability(t *testing.T) {
	a1, err := macros.Base(macros.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := macros.Base(macros.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ArchFingerprint(a1) != ArchFingerprint(a2) {
		t.Fatal("identical arch specs must hash identically")
	}
	b, err := macros.Base(macros.Config{Rows: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ArchFingerprint(a1) == ArchFingerprint(b) {
		t.Fatal("different array sizes must hash differently")
	}
	// Encoding is part of the content address.
	enc := *a1
	enc.InputEncoding = "offset"
	if ArchFingerprint(a1) == ArchFingerprint(&enc) {
		t.Fatal("different encodings must hash differently")
	}

	net := workload.ResNet18()
	if LayerFingerprint(net.Layers[0]) == LayerFingerprint(net.Layers[5]) {
		t.Fatal("different layers must hash differently")
	}
	if LayerFingerprint(net.Layers[3]) != LayerFingerprint(workload.ResNet18().Layers[3]) {
		t.Fatal("identical layers must hash identically")
	}
}

func TestCacheHitMissCounts(t *testing.T) {
	c := NewCache(8)
	arch, err := macros.Base(macros.Config{Rows: 16, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	eng1, err := c.Engine(arch)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := c.Engine(arch)
	if err != nil {
		t.Fatal(err)
	}
	if eng1 != eng2 {
		t.Fatal("second lookup must return the cached engine")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	layer := workload.Toy().Layers[0]
	ctx1, err := c.LayerContext(eng1, layer)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, err := c.LayerContext(eng1, layer)
	if err != nil {
		t.Fatal(err)
	}
	if ctx1 != ctx2 {
		t.Fatal("second lookup must return the cached layer context")
	}
	st = c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses / 2 entries", st)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %g, want 0.5", hr)
	}
}

// cached reports whether key is present without recomputing (the probe
// compute fails the test if it runs).
func cached(t *testing.T, c *Cache, key string) bool {
	t.Helper()
	hit := true
	if _, err := c.getOrCompute(key, func() (any, error) { hit = false; return key, nil }); err != nil {
		t.Fatal(err)
	}
	return hit
}

// TestCacheCostAwareEviction pins the GDSF policy: under capacity
// pressure the victim is the lowest (frequency x compile cost), with ties
// broken least-recently-used — an expensive entry outlives cheaper, more
// recent ones. Costs are injected via admit (the warm-start path) so the
// test is deterministic; getOrCompute measures real fill time, which for
// test closures is nanoseconds of noise.
func TestCacheCostAwareEviction(t *testing.T) {
	c := NewCache(3)
	c.admit("cheap-old", 0.001, 1)
	c.admit("cheap-new", 0.001, 2)
	c.admit("expensive", 10.0, 3)
	// A fourth entry forces one eviction: the two cheap entries have equal
	// priority, so the older one goes; the expensive entry is untouchable.
	if _, err := c.getOrCompute("k", func() (any, error) { return 4, nil }); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Restored != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 entries / 3 restored", st)
	}
	if cached(t, c, "cheap-old") {
		t.Fatal("cheap-old must be the GDSF victim (lowest cost, oldest)")
	}
	// The probe above recomputed cheap-old, evicting another near-zero
	// cost entry; the expensive one must still be resident throughout.
	if !cached(t, c, "expensive") {
		t.Fatal("the expensive entry must outlive cheap churn")
	}
}

// TestCacheFrequencyRaisesPriority pins the frequency term: of two
// equal-cost entries, the frequently-hit one survives.
func TestCacheFrequencyRaisesPriority(t *testing.T) {
	c := NewCache(2)
	c.admit("hot", 1.0, 1)
	c.admit("cold", 1.0, 2)
	for i := 0; i < 3; i++ {
		if !cached(t, c, "hot") {
			t.Fatal("hot must stay cached while being touched")
		}
	}
	c.admit("newcomer", 1.0, 3)
	if cached(t, c, "cold") {
		t.Fatal("cold (freq 1) must lose to hot (freq 4)")
	}
	if !cached(t, c, "hot") {
		t.Fatal("hot must survive the newcomer")
	}
}

// TestCacheClockAgesOutStaleEntries pins the GDSF inflation clock: a
// once-expensive entry that is never touched again is eventually evicted
// as churn raises the clock past its priority — cost buys longevity, not
// immortality.
func TestCacheClockAgesOutStaleEntries(t *testing.T) {
	c := NewCache(2)
	c.admit("stale-expensive", 5.0, 1)
	// Each churn entry (cost 1) is evicted by its successor, raising the
	// clock by ~1 per round; after enough rounds the stale entry's
	// priority (5) is below the clock and it becomes the victim.
	for i := 0; i < 10; i++ {
		c.admit(fmt.Sprintf("churn%d", i), 1.0, i)
	}
	if cached(t, c, "stale-expensive") {
		t.Fatal("an untouched expensive entry must age out under sustained churn")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4)
	calls := 0
	fail := func() (any, error) { calls++; return nil, errors.New("boom") }
	if _, err := c.getOrCompute("k", fail); err == nil {
		t.Fatal("want error")
	}
	if _, err := c.getOrCompute("k", fail); err == nil {
		t.Fatal("want error on retry")
	}
	if calls != 2 {
		t.Fatalf("failed computations must not be cached; got %d calls", calls)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed entries must be removed, have %d", st.Entries)
	}
}

// TestCacheConcurrentAccess hammers the cache from many goroutines (run
// under -race by CI). Concurrent misses on one key must compute once.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(16)
	arch, err := macros.Base(macros.Config{Rows: 16, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	net := workload.Toy()
	var wg sync.WaitGroup
	var mu sync.Mutex
	engines := make(map[any]bool)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				eng, err := c.Engine(arch)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				engines[eng] = true
				mu.Unlock()
				for _, l := range net.Layers {
					if _, err := c.LayerContext(eng, l); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if len(engines) != 1 {
		t.Fatalf("concurrent misses compiled %d engines, want 1", len(engines))
	}
	st := c.Stats()
	wantMisses := uint64(1 + len(net.Layers)) // one engine + one context per layer
	if st.Misses != wantMisses {
		t.Fatalf("misses = %d, want %d (singleflight)", st.Misses, wantMisses)
	}
}
