// Package api is the typed v1 wire contract of the batch-evaluation
// service: every request and response body the HTTP layer speaks, the
// structured error envelope, and the Server-Sent-Events job-progress
// format live here and nowhere else. The server (internal/serve)
// marshals only these types; the Go SDK (internal/client) and the
// `cimloop` CLI unmarshal only these types — so the contract has one
// definition, compile-checked from both sides, instead of ad-hoc
// map[string]any shapes drifting apart.
//
// Compatibility rules: fields are only ever added (with omitempty where
// absence is meaningful), never renamed or retyped; error codes never
// change meaning; new endpoints get new types. See docs/API.md for the
// endpoint-by-endpoint reference.
package api

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/serve/jobs"
	"repro/internal/workload"
)

// EvalRequest describes one evaluation: an architecture source, an
// optional full-system wrap, and a workload. Exactly one of Macro, Spec,
// or Arch must be set, and exactly one of Network or Net. It is the body
// of POST /v1/evaluate and the element type of SweepRequest.Requests.
type EvalRequest struct {
	// Tag labels the result row; defaults to "arch/network[/scenario]".
	Tag string `json:"tag,omitempty"`

	// Macro names a published macro model ("base", "macro-a", ...,
	// "digital-cim").
	Macro string `json:"macro,omitempty"`
	// Spec is a textual container-hierarchy specification.
	Spec string `json:"spec,omitempty"`
	// Arch is a prebuilt architecture (programmatic callers only; never
	// on the wire).
	Arch *core.Arch `json:"-"`

	// Scenario optionally wraps the macro into a full system:
	// "all-tensors-from-dram", "weight-stationary", or
	// "weight-stationary+onchip-io".
	Scenario string `json:"scenario,omitempty"`
	// SystemMacros is the parallel macro count for the system wrap
	// (default 1; ignored without Scenario).
	SystemMacros int `json:"system_macros,omitempty"`

	// Network names a model-zoo workload ("resnet18", "vit-base", ...).
	Network string `json:"network,omitempty"`
	// Net is a prebuilt workload (programmatic callers only; never on the
	// wire).
	Net *workload.Network `json:"-"`
	// Layers caps the evaluated layer count (0 = all).
	Layers int `json:"layers,omitempty"`

	// MaxMappings overrides the server's per-layer mapping budget.
	MaxMappings int `json:"max_mappings,omitempty"`
	// Seed drives the mapping search (layer i uses Seed+i, matching the
	// sequential evaluator).
	Seed int64 `json:"seed,omitempty"`
	// SearchWorkers overrides the server's intra-request search fan-out
	// for this request: > 0 is a fixed width, negative forces serial, 0
	// keeps the server default (which may be adaptive). The effective
	// width is still clamped by the shared concurrency budget, so a
	// request cannot oversubscribe a busy pool; answers are identical at
	// any width.
	SearchWorkers int `json:"search_workers,omitempty"`
	// SampleShards overrides the server's candidate-generation shard
	// count: > 1 samples each layer's mapping candidates from that many
	// concurrent seeded streams with a deterministic merge. Unlike
	// search_workers, the shard count selects WHICH candidates are
	// sampled: results are reproducible given the same (seed,
	// sample_shards) but differ from the single-stream default, so set it
	// explicitly when comparing runs. <= 0 keeps the server default
	// (normally 1, the historical stream).
	SampleShards int `json:"sample_shards,omitempty"`
}

// EvalResult is one completed evaluation — the response of POST
// /v1/evaluate and the element type of SweepResponse.Results. Err is set
// instead of the metrics when the request failed; a sweep always yields
// one EvalResult per EvalRequest, in request order.
type EvalResult struct {
	Tag     string `json:"tag"`
	Arch    string `json:"arch,omitempty"`
	Network string `json:"network,omitempty"`
	Err     string `json:"error,omitempty"`

	EnergyJ        float64 `json:"energy_j,omitempty"`
	EnergyPerMACpJ float64 `json:"energy_per_mac_pj,omitempty"`
	TOPSPerW       float64 `json:"tops_per_w,omitempty"`
	GOPS           float64 `json:"gops,omitempty"`
	AreaMM2        float64 `json:"area_mm2,omitempty"`
	MACs           int64   `json:"macs,omitempty"`
	TimeSec        float64 `json:"time_sec,omitempty"`
	ElapsedSec     float64 `json:"elapsed_sec,omitempty"`
	// MappingsEvaluated counts candidate mappings costed across all
	// layers; jobs stream it with each partial result, so a client
	// watching a job sees search throughput, not just item counts.
	MappingsEvaluated int64 `json:"mappings_evaluated,omitempty"`

	// NetworkResult carries the full per-layer breakdown for programmatic
	// callers (experiments); it is not serialized.
	NetworkResult *core.NetworkResult `json:"-"`
}

// SweepRequest is the body of POST /v1/sweep and POST /v1/jobs: either
// an explicit request list or a macro x network x scenario grid
// specification, not both.
type SweepRequest struct {
	Requests []EvalRequest `json:"requests,omitempty"`

	Macros      []string `json:"macros,omitempty"`
	Networks    []string `json:"networks,omitempty"`
	Scenarios   []string `json:"scenarios,omitempty"`
	Layers      int      `json:"layers,omitempty"`
	MaxMappings int      `json:"max_mappings,omitempty"`

	// Async forces the job path regardless of grid size (/v1/sweep only;
	// /v1/jobs is always async).
	Async bool `json:"async,omitempty"`
	// TimeoutSec caps the sweep's run time: synchronous sweeps wrap the
	// request context, async jobs wrap the job context (measured from job
	// start), both via context.WithTimeout — expiry aborts in-flight
	// layer searches. Zero means no deadline.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Priority is the async job's scheduling class: "interactive" jobs
	// dispatch before "batch" jobs (the default), FIFO within a class.
	// Ignored by synchronous sweeps.
	Priority jobs.Priority `json:"priority,omitempty"`
}

// SweepResponse is the 200 body of a synchronous POST /v1/sweep.
type SweepResponse struct {
	// Results has one entry per request, in request order.
	Results []*EvalResult `json:"results"`
	// Table is the rendered sweep table (the CLI prints it verbatim).
	Table string `json:"table"`
	// Cache snapshots the server's cache counters after the sweep.
	Cache CacheStats `json:"cache"`
}

// JobAccepted is the 202 body of POST /v1/jobs (and of POST /v1/sweep
// when the sweep is promoted to a job).
type JobAccepted struct {
	Job jobs.Snapshot `json:"job"`
	// StatusURL polls the job; EventsURL streams it (SSE).
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

// JobListQuery names the GET /v1/jobs query parameters. It is not a
// body; the client SDK encodes it into the URL.
type JobListQuery struct {
	// Status keeps only jobs in that state (queued, running, succeeded,
	// failed, cancelled; "" = all).
	Status jobs.Status
	// Limit caps the page size (<= 0 = server default).
	Limit int
	// Cursor is NextCursor from the previous page ("" = first page).
	Cursor string
}

// JobListResponse is the 200 body of GET /v1/jobs: summaries in
// submission order (per-item results omitted; fetch one job for those).
type JobListResponse struct {
	Jobs  []jobs.Snapshot `json:"jobs"`
	Stats jobs.Stats      `json:"stats"`
	// NextCursor pages: pass it back as ?cursor= for the jobs after this
	// page. Empty when the listing is exhausted.
	NextCursor string `json:"next_cursor,omitempty"`
}

// Job event stream (GET /v1/jobs/{id}/events, Server-Sent Events).
//
// Each SSE frame carries the event type in the "event" field, the job's
// version in the "id" field (so Last-Event-ID resumes exactly where the
// connection dropped), and a JobEvent as the "data" JSON. The stream
// ends after the terminal event.
const (
	// JobEventProgress fires on every observable mutation while the job
	// is live: enqueue, start, and each completed grid item.
	JobEventProgress = "progress"
	// JobEventTerminal fires once, with the full final snapshot (partial
	// results and rendered table included), then the stream closes.
	JobEventTerminal = "terminal"
)

// JobEvent is the SSE "data" payload: the event type repeated (so a
// payload is self-describing outside the stream framing) plus the job
// snapshot as of the event. Progress events carry summaries; the
// terminal event carries the full snapshot.
type JobEvent struct {
	Type string        `json:"type"`
	Job  jobs.Snapshot `json:"job"`
}

// MacroInfo is one published macro model (paper Table III) in GET
// /v1/macros.
type MacroInfo struct {
	Macro      string `json:"macro"`
	Node       string `json:"node"`
	Device     string `json:"device"`
	InputBits  string `json:"input_bits"`
	WeightBits string `json:"weight_bits"`
	Array      string `json:"array"`
	ADCBits    string `json:"adc_bits"`
}

// MacrosResponse is the 200 body of GET /v1/macros.
type MacrosResponse struct {
	Macros []MacroInfo `json:"macros"`
}

// NetworkInfo is one model-zoo workload in GET /v1/networks.
type NetworkInfo struct {
	Name   string `json:"name"`
	Layers int    `json:"layers"`
	MACs   int64  `json:"macs"`
}

// NetworksResponse is the 200 body of GET /v1/networks.
type NetworksResponse struct {
	Networks []NetworkInfo `json:"networks"`
}

// ExperimentsResponse is the 200 body of GET /v1/experiments.
type ExperimentsResponse struct {
	// Experiments lists the built-in (compiled) paper experiments runnable
	// via POST /v1/experiments.
	Experiments []string `json:"experiments"`
	// Definitions lists the declarative sweeps/ definitions registered on
	// this server, each runnable via POST /v1/experiments/{name} with the
	// parameters in its schema. Empty when the server was started without
	// a sweeps directory.
	Definitions []ExperimentInfo `json:"definitions,omitempty"`
}

// ExperimentParam is one declared parameter in an experiment
// definition's schema: callers bind it by name in
// NamedExperimentRequest.Params.
type ExperimentParam struct {
	Name string `json:"name"`
	// Type is "string", "int", "float", or "bool".
	Type        string `json:"type"`
	Description string `json:"description,omitempty"`
	// Default is the value used when the parameter is not bound; its JSON
	// type matches Type.
	Default any `json:"default"`
	// Min and Max bound int/float parameters inclusively.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Choices restricts a string parameter to an explicit set.
	Choices []string `json:"choices,omitempty"`
}

// ExperimentInfo describes one named, parameterized experiment
// definition in GET /v1/experiments.
type ExperimentInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Source is "sweep" for sweeps/ definitions ("builtin" reserved for a
	// future unification with the compiled experiments list).
	Source string `json:"source"`
	// File is the definition's file name within the sweeps directory.
	File string `json:"file,omitempty"`
	// Priority is the definition's default async scheduling class.
	Priority string `json:"priority,omitempty"`
	// Requests is the grid size when every parameter takes its default.
	Requests int `json:"requests"`
	// Params is the parameter schema; bind values by Name.
	Params []ExperimentParam `json:"params,omitempty"`
}

// NamedExperimentRequest is the body of POST /v1/experiments/{name}. An
// empty body (or empty Params) runs the definition with every parameter
// at its default.
type NamedExperimentRequest struct {
	// Params binds declared parameters by name. Unknown names are
	// rejected; values are coerced to the declared types.
	Params map[string]any `json:"params,omitempty"`
	// Async forces the job path regardless of grid size; large grids are
	// promoted automatically exactly like POST /v1/sweep.
	Async bool `json:"async,omitempty"`
	// TimeoutSec caps the run like SweepRequest.TimeoutSec.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Priority overrides the definition's default scheduling class.
	Priority jobs.Priority `json:"priority,omitempty"`
}

// ExperimentRunRequest is the body of POST /v1/experiments.
type ExperimentRunRequest struct {
	Name        string `json:"name"`
	Fast        bool   `json:"fast,omitempty"`
	MaxMappings int    `json:"max_mappings,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
}

// ExperimentRunResponse is the 200 body of POST /v1/experiments.
type ExperimentRunResponse struct {
	// Tables are the rendered paper tables/figures, in the runner's order.
	Tables []string `json:"tables"`
}

// CacheStats snapshots the engine/context cache counters (healthz
// "cache" section and SweepResponse.Cache).
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	// Restored counts entries admitted from a warm tier — the on-disk
	// store at boot, or the cluster blob tier on a read-through miss —
	// rather than computed (they count as neither hit nor miss).
	Restored uint64 `json:"restored"`
	// Compiles counts misses that actually ran the compute pipeline (no
	// tier had the value). On a warm cluster node this stays flat while
	// restored climbs — the number the warm-share tests pin to zero.
	Compiles uint64 `json:"compiles"`
}

// HitRate returns hits/(hits+misses), zero before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BudgetStats snapshots the shared evaluation-concurrency budget
// (healthz "search" section).
type BudgetStats struct {
	// Capacity is the total evaluation-concurrency budget (max of the
	// request pool width and the default search fan-out).
	Capacity int `json:"capacity"`
	// Available is the instantaneous unclaimed share of the budget.
	Available int `json:"available"`
	// SearchWorkers is the server's default per-request search fan-out
	// (1 = serial searches unless a request asks for more; 0 = the width
	// is picked adaptively per layer, see Adaptive).
	SearchWorkers int `json:"search_workers"`
	// BlockedAcquires counts fan-out acquisitions that waited (blocking
	// budget mode): the request had deadline headroom, the budget was
	// empty, and the server parked it briefly for tokens instead of
	// degrading the search to serial.
	BlockedAcquires uint64 `json:"blocked_acquires"`
	// Adaptive reports adaptive-width mode: the server picks each layer
	// search's fan-out from an EWMA of that layer's measured per-candidate
	// cost instead of a static width. Width never changes results, so the
	// mode is invisible in answers — these counters are its only surface.
	Adaptive bool `json:"adaptive,omitempty"`
	// AdaptivePlans counts per-layer width decisions the tuner has made.
	AdaptivePlans uint64 `json:"adaptive_plans,omitempty"`
	// TunedLayers counts distinct (arch, layer) pairs with a cost EWMA —
	// layers whose next search gets a measured width rather than the
	// serial first-probe.
	TunedLayers int `json:"tuned_layers,omitempty"`
	// MappingsEvaluated is the lifetime count of candidate mappings costed
	// by this server across all requests and jobs. Monotonic, so two reads
	// bracket exactly the search work done between them — the tenancy
	// smoke test uses the delta to prove a resumed job re-evaluated only
	// its unfinished items.
	MappingsEvaluated int64 `json:"mappings_evaluated"`
}

// WarmStats summarizes one boot's warm-start scan.
type WarmStats struct {
	// Engines and Contexts count cache entries admitted from disk.
	Engines  int `json:"engines"`
	Contexts int `json:"contexts"`
	// Jobs counts restored terminal snapshots; Replayed counts
	// write-ahead jobs re-submitted because they never finished.
	Jobs     int `json:"jobs"`
	Replayed int `json:"replayed"`
	// Checkpoints counts finished grid items restored into replayed jobs
	// from per-item checkpoint records — items the replay will report as
	// done instead of re-evaluating.
	Checkpoints int `json:"checkpoints,omitempty"`
	// Skipped counts files discarded during the scans: corrupt,
	// version-mismatched, or failing fingerprint re-verification. All are
	// deleted (recomputation is the only recovery).
	Skipped int `json:"skipped"`
}

// PersistStats is the healthz "persist" section.
type PersistStats struct {
	Enabled bool `json:"enabled"`
	// Warm is the boot-time scan summary.
	Warm WarmStats `json:"warm,omitempty"`
	// Cache and Jobs are the write-behind counters of the two stores.
	Cache persist.Stats `json:"cache,omitempty"`
	Jobs  persist.Stats `json:"jobs,omitempty"`
	// Error records a store that failed to open (the server then runs
	// without that store rather than failing: persistence is optional).
	Error string `json:"error,omitempty"`
}

// ObsStats is the healthz "obs" section. Every number here is read back
// out of the server's metrics registry or its slow-request ring — the
// JSON health view and the Prometheus /metrics exposition share one set
// of producers, so the two surfaces cannot disagree.
type ObsStats struct {
	// Spans counts finished request spans (HTTP requests + sweep items).
	Spans int64 `json:"spans"`
	// SlowEntries is the slow-request ring's current occupancy;
	// SlowRecorded counts every entry ever recorded, including evicted
	// ones; SlowThresholdSec is the recording threshold (0 = record all,
	// negative = disabled).
	SlowEntries      int     `json:"slow_entries"`
	SlowRecorded     uint64  `json:"slow_recorded"`
	SlowThresholdSec float64 `json:"slow_threshold_sec"`
	// DroppedLabelSets counts metric updates collapsed into an overflow
	// series by the registry's label-cardinality bound.
	DroppedLabelSets uint64 `json:"dropped_label_sets,omitempty"`
	// TenantReloads / TenantReloadErrors count SIGHUP tenant-file
	// hot-reload attempts by outcome.
	TenantReloads      int64 `json:"tenant_reloads,omitempty"`
	TenantReloadErrors int64 `json:"tenant_reload_errors,omitempty"`
	// SweepReloads / SweepReloadErrors count sweep-definition reload
	// attempts by outcome (boot registration and SIGHUP).
	SweepReloads      int64 `json:"sweep_reloads,omitempty"`
	SweepReloadErrors int64 `json:"sweep_reload_errors,omitempty"`
}

// SlowResponse is the 200 body of GET /v1/debug/slow: the retained
// slow-request entries, newest first.
type SlowResponse struct {
	Requests []obs.SlowEntry `json:"requests"`
	// Recorded counts every entry ever recorded (evicted ones included);
	// ThresholdSec is the server's recording threshold.
	Recorded     uint64  `json:"recorded"`
	ThresholdSec float64 `json:"threshold_sec"`
}

// Version is the wire-contract generation, reported by /healthz and
// echoed per peer in /v1/cluster (so mixed-version rings are visible).
const Version = "v1"

// HealthzResponse is the 200 body of GET /healthz.
type HealthzResponse struct {
	Status    string       `json:"status"`
	Version   string       `json:"version,omitempty"`
	UptimeSec float64      `json:"uptime_sec"`
	Cache     CacheStats   `json:"cache"`
	Jobs      jobs.Stats   `json:"jobs"`
	Search    BudgetStats  `json:"search"`
	Persist   PersistStats `json:"persist"`
	Obs       ObsStats     `json:"obs"`
}

// ClusterNodeStatus is one ring member in GET /v1/cluster: its static
// identity plus the answering node's latest view of it.
type ClusterNodeStatus struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Self marks the answering node's own row (never probed over the
	// network).
	Self bool `json:"self,omitempty"`
	// Healthy is the latest /healthz probe verdict for the member.
	// Probes are cached briefly server-side, so a burst of /v1/cluster
	// reads costs one probe round, not one per read.
	Healthy bool `json:"healthy"`
	// Version is the member's reported wire-contract version ("" while
	// unreachable) — a mixed-version ring is visible at a glance.
	Version string `json:"version,omitempty"`
	// SharePct is the member's exact percentage of the hash circle: the
	// share of a uniformly hashed key population it owns.
	SharePct float64 `json:"share_pct"`
	// OwnedKeys counts entries in the answering node's local cache that
	// the ring assigns to this member. On a well-routed ring the
	// answering node's own row dominates; a large foreign count means
	// unroutable traffic (prebuilt values, hop-guarded forwards) landed
	// here.
	OwnedKeys int `json:"owned_keys"`
}

// ClusterForwardStats counts the forwarding middleware's decisions on
// the answering node.
type ClusterForwardStats struct {
	// Local counts routable requests this node owned and served itself.
	Local uint64 `json:"local"`
	// Forwarded counts requests proxied to their ring owner.
	Forwarded uint64 `json:"forwarded"`
	// Received counts forwarded requests accepted from peers (the
	// X-Cimloop-Forwarded hop guard pins them here).
	Received uint64 `json:"received"`
	// Errors counts forward attempts that failed; each fell back to
	// local evaluation, so the request still succeeded.
	Errors uint64 `json:"errors"`
}

// ClusterBlobStats is the shared blob tier's section of GET /v1/cluster.
type ClusterBlobStats struct {
	// URL is the tier's base URL.
	URL string `json:"url"`
	// Healthy is the tier's current reachability: the circuit breaker's
	// verdict, refreshed by a probe when the breaker is due one — so a
	// recovered tier reports healthy without waiting for cache traffic.
	Healthy bool `json:"healthy"`
	// Stats is this node's traffic against the tier.
	Stats RemoteTierStats `json:"stats"`
}

// RemoteTierStats mirrors the blob-tier client's counters (the wire
// shape of cluster.RemoteStats, duplicated here so the contract package
// stays dependency-light).
type RemoteTierStats struct {
	Gets    uint64 `json:"gets"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	Errors  uint64 `json:"errors"`
	Dropped uint64 `json:"dropped"`
}

// ClusterResponse is the 200 body of GET /v1/cluster.
type ClusterResponse struct {
	// Enabled is false on a single-node server; every other field is
	// then zero.
	Enabled bool `json:"enabled"`
	// Self is the answering node's ring ID.
	Self string `json:"self,omitempty"`
	// VirtualNodes is the ring's per-member virtual-node count.
	VirtualNodes int `json:"virtual_nodes,omitempty"`
	// Nodes lists the static membership, sorted by ID.
	Nodes []ClusterNodeStatus `json:"nodes,omitempty"`
	// CachedKeys is the answering node's live cache entry count — the
	// denominator of the per-member OwnedKeys split.
	CachedKeys int `json:"cached_keys"`
	// Forward counts the forwarding middleware's routing decisions.
	Forward ClusterForwardStats `json:"forward"`
	// Blob describes the shared warm tier; nil when none is configured.
	Blob *ClusterBlobStats `json:"blob,omitempty"`
}
