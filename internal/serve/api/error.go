package api

import (
	"errors"
	"fmt"
)

// ErrorCode is a stable, machine-readable error class. Codes are part of
// the v1 contract: clients key retry and reporting logic on them, so a
// code, once shipped, never changes meaning. The HTTP status carries the
// transport semantics (4xx vs 5xx, cacheability); the code carries the
// application semantics.
type ErrorCode string

const (
	// CodeInvalidRequest covers malformed bodies, unknown fields,
	// oversized payloads (HTTP 413), unknown macros/networks/scenarios,
	// and bad query parameters.
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeNotFound covers unknown routes and unknown resource IDs.
	CodeNotFound ErrorCode = "not_found"
	// CodeMethodNotAllowed is a known route with the wrong HTTP method;
	// the Allow response header lists the supported ones.
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeUnauthorized is a missing, malformed, or unknown bearer token
	// on a server running with a tenant file (HTTP 401). The response
	// carries a WWW-Authenticate: Bearer header.
	CodeUnauthorized ErrorCode = "unauthorized"
	// CodeQueueFull is the backpressure signal (HTTP 429): the pending
	// job queue is at capacity — globally, or for the caller's tenant
	// when its max_pending quota is hit (the envelope's "tenant" detail
	// is set in that case). RetryAfterSec (and the Retry-After header)
	// say when to try again.
	CodeQueueFull ErrorCode = "queue_full"
	// CodeDeadlineExceeded is a sweep or job killed by its own
	// timeout_sec (HTTP 504) — a server-side timeout, not a malformed
	// request.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeShuttingDown is a submission refused because the server is
	// draining (HTTP 503). Retry against another instance, not this one.
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeNotImplemented is an endpoint this deployment has not wired
	// (HTTP 501), e.g. /v1/experiments on an embedded server without the
	// experiment runner.
	CodeNotImplemented ErrorCode = "not_implemented"
	// CodeInternal is a recovered panic or other server-side failure
	// (HTTP 500). The message is intentionally vague; details stay in
	// server logs.
	CodeInternal ErrorCode = "internal"
)

// Error is the v1 error envelope: every non-2xx response body (including
// 404s for unknown routes and recovered panics) is exactly this shape,
// always served as application/json.
type Error struct {
	// Code is the stable machine-readable class.
	Code ErrorCode `json:"code"`
	// Message is human-readable detail. Clients must not parse it.
	Message string `json:"message"`
	// RetryAfterSec, when non-zero, is the server's backoff hint in
	// seconds (mirrors the Retry-After header on 429 responses).
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
	// Details carries optional structured context (e.g. "max_bytes" on an
	// oversized body, "allow" on a 405).
	Details map[string]string `json:"details,omitempty"`

	// HTTPStatus is the transport status the envelope arrived with. It is
	// not serialized — the status line already carries it — but the client
	// SDK fills it in so callers can switch on either.
	HTTPStatus int `json:"-"`
}

// Error makes the envelope a Go error; the client SDK returns decoded
// envelopes directly.
func (e *Error) Error() string {
	if e.HTTPStatus != 0 {
		return fmt.Sprintf("%s (HTTP %d): %s", e.Code, e.HTTPStatus, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Errorf builds an envelope with a formatted message.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// IsCode reports whether err is (or wraps) a v1 error envelope with the
// given code.
func IsCode(err error, code ErrorCode) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == code
}
