package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/jobs"
)

// The golden files under testdata/ ARE the wire contract: if a change
// to these types alters any serialized byte, the corresponding test
// fails and the diff is staring at you. Additive changes regenerate the
// files deliberately with:
//
//	go test ./internal/serve/api -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// f64 builds the *float64 bounds of ExperimentParam literals.
func f64(v float64) *float64 { return &v }

// goldenCases instantiates every wire type with every field populated
// (omitempty fields must appear in the goldens, or silent renames could
// hide). Values are fixed, never derived from the clock.
func goldenCases() []struct {
	name string
	v    any
} {
	created := time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC)
	snap := jobs.Snapshot{
		ID:         "job-000007",
		Label:      "sweep of 2 requests",
		Status:     jobs.StatusRunning,
		Priority:   jobs.PriorityInteractive,
		Tenant:     "team-a",
		Version:    5,
		Completed:  1,
		Total:      2,
		Resumes:    1,
		FirstError: "boom",
		Results:    []any{map[string]any{"tag": "base/toy"}, nil},
		CreatedAt:  created,
		ElapsedSec: 1.5,
	}
	terminal := snap
	terminal.Status = jobs.StatusSucceeded
	terminal.Version = 9
	terminal.Completed = 2
	terminal.Result = "rendered table"

	return []struct {
		name string
		v    any
	}{
		{"eval_request", EvalRequest{
			Tag: "t", Macro: "macro-b", Scenario: "weight-stationary",
			SystemMacros: 4, Network: "resnet18", Layers: 3,
			MaxMappings: 60, Seed: 7, SearchWorkers: 8,
		}},
		{"eval_request_spec", EvalRequest{Spec: "container ...", Network: "toy"}},
		{"eval_result", EvalResult{
			Tag: "base/toy", Arch: "base", Network: "toy",
			EnergyJ: 1.25e-3, EnergyPerMACpJ: 0.5, TOPSPerW: 12.5,
			GOPS: 800, AreaMM2: 0.9, MACs: 123456, TimeSec: 2.5e-4,
			ElapsedSec: 0.125, MappingsEvaluated: 600,
		}},
		{"eval_result_error", EvalResult{Tag: "bad/toy", Err: "serve: unknown macro \"bad\""}},
		{"sweep_request", SweepRequest{
			Macros: []string{"base", "macro-b"}, Networks: []string{"toy"},
			Scenarios: []string{"weight-stationary"}, Layers: 2, MaxMappings: 4,
			Async: true, TimeoutSec: 30, Priority: jobs.PriorityInteractive,
		}},
		{"sweep_request_explicit", SweepRequest{
			Requests: []EvalRequest{{Macro: "base", Network: "toy"}},
		}},
		{"sweep_response", SweepResponse{
			Results: []*EvalResult{{Tag: "base/toy", EnergyJ: 1e-3}},
			Table:   "| ... |",
			Cache:   CacheStats{Hits: 3, Misses: 1, Evictions: 0, Entries: 4, Restored: 2},
		}},
		{"job_accepted", JobAccepted{
			Job:       snap,
			StatusURL: "/v1/jobs/job-000007",
			EventsURL: "/v1/jobs/job-000007/events",
		}},
		{"job_list_response", JobListResponse{
			Jobs: []jobs.Snapshot{snap},
			Stats: jobs.Stats{
				Queued: 1, QueuedInteractive: 1, QueuedBatch: 0,
				QueuedByTenant: map[string]int{"team-a": 1},
				Running:        1, Finished: 3, Preemptions: 2,
				Dispatches:          7,
				DispatchesByTenant:  map[string]int64{"team-a": 5, "team-b": 2},
				PreemptionsByTenant: map[string]int64{"team-a": 2},
			},
			NextCursor: "job-000007",
		}},
		{"job_event_progress", JobEvent{Type: JobEventProgress, Job: snap}},
		{"job_event_terminal", JobEvent{Type: JobEventTerminal, Job: terminal}},
		{"macros_response", MacrosResponse{Macros: []MacroInfo{{
			Macro: "macro-b", Node: "7 nm", Device: "SRAM",
			InputBits: "8", WeightBits: "8", Array: "64x64", ADCBits: "4",
		}}}},
		{"networks_response", NetworksResponse{Networks: []NetworkInfo{{
			Name: "resnet18", Layers: 21, MACs: 1814073344,
		}}}},
		{"experiments_response", ExperimentsResponse{
			Experiments: []string{"fig2a", "fig15"},
			Definitions: []ExperimentInfo{{
				Name:        "fig15-scenarios",
				Description: "Macro-B full-system scenario grid",
				Source:      "sweep",
				File:        "fig15-scenarios.yaml",
				Priority:    "batch",
				Requests:    6,
				Params: []ExperimentParam{
					{
						Name: "network", Type: "string",
						Description: "zoo network to sweep",
						Default:     "resnet18",
						Choices:     []string{"resnet18", "vit-base", "gpt2"},
					},
					{
						Name: "mappings", Type: "int",
						Description: "per-layer mapping budget",
						Default:     30, Min: f64(1), Max: f64(500),
					},
				},
			}},
		}},
		{"experiment_run_request", ExperimentRunRequest{Name: "fig2a", Fast: true, MaxMappings: 8, Seed: 3}},
		{"experiment_run_response", ExperimentRunResponse{Tables: []string{"| fig2a |"}}},
		{"named_experiment_request", NamedExperimentRequest{
			Params:     map[string]any{"mappings": 60, "network": "gpt2"},
			Async:      true,
			TimeoutSec: 30,
			Priority:   jobs.PriorityBatch,
		}},
		{"healthz_response", HealthzResponse{
			Status:    "ok",
			Version:   Version,
			UptimeSec: 12.5,
			Cache:     CacheStats{Hits: 10, Misses: 2, Evictions: 1, Entries: 9, Restored: 4, Compiles: 6},
			Jobs:      jobs.Stats{Queued: 2, QueuedInteractive: 1, QueuedBatch: 1, Running: 1, Finished: 5},
			Search: BudgetStats{Capacity: 8, Available: 3, SearchWorkers: 4,
				BlockedAcquires: 2, MappingsEvaluated: 1200},
			Persist: PersistStats{
				Enabled: true,
				Warm:    WarmStats{Engines: 1, Contexts: 2, Jobs: 3, Replayed: 1, Checkpoints: 2, Skipped: 1},
				Error:   "jobs dir: permission denied",
			},
			Obs: ObsStats{
				Spans: 42, SlowEntries: 8, SlowRecorded: 40, SlowThresholdSec: 0.25,
				DroppedLabelSets: 3, TenantReloads: 2, TenantReloadErrors: 1,
				SweepReloads: 3, SweepReloadErrors: 1,
			},
		}},
		{"slow_response", SlowResponse{
			Requests: []obs.SlowEntry{{
				Route:       "POST /v1/evaluate",
				Tag:         "macro-b/resnet18",
				Tenant:      "team-a",
				Start:       created,
				DurationSec: 1.75,
				Phases: []obs.PhaseTiming{
					{Phase: "cache", Seconds: 0.05},
					{Phase: "compile", Seconds: 0.9},
					{Phase: "search", Seconds: 0.8},
				},
				Error: "context deadline exceeded",
			}},
			Recorded:     40,
			ThresholdSec: 0.25,
		}},
		{"cluster_response", ClusterResponse{
			Enabled:      true,
			Self:         "node-a",
			VirtualNodes: 128,
			Nodes: []ClusterNodeStatus{
				{ID: "node-a", Addr: "http://10.0.0.1:8080", Self: true, Healthy: true,
					Version: Version, SharePct: 34.5, OwnedKeys: 12},
				{ID: "node-b", Addr: "http://10.0.0.2:8080", Healthy: false,
					SharePct: 65.5, OwnedKeys: 3},
			},
			CachedKeys: 15,
			Forward:    ClusterForwardStats{Local: 9, Forwarded: 4, Received: 2, Errors: 1},
			Blob: &ClusterBlobStats{
				URL:     "http://10.0.0.9:8090",
				Healthy: true,
				Stats:   RemoteTierStats{Gets: 8, Hits: 5, Misses: 3, Puts: 6, Errors: 1, Dropped: 2},
			},
		}},
		{"cluster_response_disabled", ClusterResponse{}},
		{"error_queue_full", Error{
			Code: CodeQueueFull, Message: "jobs: pending queue full",
			RetryAfterSec: 2,
		}},
		{"error_with_details", Error{
			Code: CodeInvalidRequest, Message: "request body exceeds 64 bytes",
			Details: map[string]string{"max_bytes": "64"},
		}},
		{"error_unauthorized", Error{
			Code: CodeUnauthorized, Message: "unknown bearer token",
		}},
		{"error_tenant_queue_full", Error{
			Code:          CodeQueueFull,
			Message:       "jobs: tenant \"team-a\" has 2 jobs pending (quota 2)",
			RetryAfterSec: 2,
			Details:       map[string]string{"tenant": "team-a"},
		}},
	}
}

// TestGoldenRoundTrip pins every wire type's serialization byte-for-byte
// and proves decoding a golden and re-encoding it is a fixed point (no
// field silently dropped on either direction).
func TestGoldenRoundTrip(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.MarshalIndent(tc.v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("serialized form drifted from golden %s:\n got: %s\nwant: %s", path, got, want)
			}

			// Decode the golden into a fresh value of the same type and
			// re-encode: the bytes must be a fixed point.
			fresh := newOfSameType(t, tc.v)
			if err := json.Unmarshal(want, fresh); err != nil {
				t.Fatalf("golden does not decode: %v", err)
			}
			again, err := json.MarshalIndent(fresh, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			again = append(again, '\n')
			if !bytes.Equal(again, want) {
				t.Errorf("decode/re-encode is not a fixed point:\n got: %s\nwant: %s", again, want)
			}
		})
	}
}

// newOfSameType returns a pointer to a fresh zero value of v's dynamic
// type, via a type switch so the test stays reflect-free and the
// compiler tracks the type list.
func newOfSameType(t *testing.T, v any) any {
	t.Helper()
	switch v.(type) {
	case EvalRequest:
		return new(EvalRequest)
	case EvalResult:
		return new(EvalResult)
	case SweepRequest:
		return new(SweepRequest)
	case SweepResponse:
		return new(SweepResponse)
	case JobAccepted:
		return new(JobAccepted)
	case JobListResponse:
		return new(JobListResponse)
	case JobEvent:
		return new(JobEvent)
	case MacrosResponse:
		return new(MacrosResponse)
	case NetworksResponse:
		return new(NetworksResponse)
	case ExperimentsResponse:
		return new(ExperimentsResponse)
	case ExperimentRunRequest:
		return new(ExperimentRunRequest)
	case ExperimentRunResponse:
		return new(ExperimentRunResponse)
	case NamedExperimentRequest:
		return new(NamedExperimentRequest)
	case HealthzResponse:
		return new(HealthzResponse)
	case SlowResponse:
		return new(SlowResponse)
	case ClusterResponse:
		return new(ClusterResponse)
	case Error:
		return new(Error)
	default:
		t.Fatalf("no fresh-type case for %T", v)
		return nil
	}
}

// TestErrorEnvelope pins the envelope's Go-error behavior the SDK and
// CLI rely on.
func TestErrorEnvelope(t *testing.T) {
	e := Errorf(CodeQueueFull, "queue full after %d", 8)
	e.HTTPStatus = 429
	if e.Error() != "queue_full (HTTP 429): queue full after 8" {
		t.Fatalf("Error() = %q", e.Error())
	}
	if !IsCode(e, CodeQueueFull) || IsCode(e, CodeNotFound) {
		t.Fatal("IsCode misclassified")
	}
	if !IsCode(fmt.Errorf("wrapped: %w", e), CodeQueueFull) {
		t.Fatal("IsCode must see through wrapping")
	}
}
