package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
)

// sseFrame is one parsed SSE event for assertions.
type sseFrame struct {
	id    int64
	event string
	data  api.JobEvent
}

// sseScanner wraps one stream connection; frames must be read through a
// single scanner or buffered bytes are lost between reads.
func sseScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	return sc
}

// nextFrame reads one SSE frame; ok is false on EOF/disconnect.
func nextFrame(t *testing.T, sc *bufio.Scanner) (sseFrame, bool) {
	t.Helper()
	var cur sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data.Type != "" {
				return cur, true
			}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
		}
	}
	return sseFrame{}, false
}

// readFrames consumes frames until limit frames, a terminal event, or
// EOF.
func readFrames(t *testing.T, r io.Reader, limit int) []sseFrame {
	t.Helper()
	sc := sseScanner(r)
	var frames []sseFrame
	for len(frames) < limit {
		f, ok := nextFrame(t, sc)
		if !ok {
			return frames
		}
		frames = append(frames, f)
		if f.event == api.JobEventTerminal {
			return frames
		}
	}
	return frames
}

// stepJob submits a job the test advances item by item.
func stepJob(t *testing.T, srv *Server, total int) (id string, step chan struct{}) {
	t.Helper()
	step = make(chan struct{})
	snap, err := srv.jobs.Submit("stepped", total, func(ctx context.Context, report jobs.Report) (any, error) {
		for i := 0; i < total; i++ {
			select {
			case <-step:
				report(i, map[string]any{"item": i}, nil)
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return "final table", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return snap.ID, step
}

// openStream connects to the events endpoint, optionally resuming.
func openStream(t *testing.T, ts *httptest.Server, id string, lastEventID int64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastEventID, 10))
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	return resp
}

// TestSSEStreamToTerminal: the stream delivers monotonically versioned
// progress events and ends with a terminal event carrying the full
// snapshot.
func TestSSEStreamToTerminal(t *testing.T) {
	srv := NewServer(BatchOptions{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, step := stepJob(t, srv, 2)
	resp := openStream(t, ts, id, 0)
	defer resp.Body.Close()
	go func() { step <- struct{}{}; step <- struct{}{} }()

	frames := readFrames(t, resp.Body, 64)
	if len(frames) < 2 {
		t.Fatalf("got %d frames", len(frames))
	}
	last := frames[len(frames)-1]
	if last.event != api.JobEventTerminal || last.data.Type != api.JobEventTerminal {
		t.Fatalf("final frame: %+v", last)
	}
	if last.data.Job.Status != jobs.StatusSucceeded || last.data.Job.Completed != 2 {
		t.Fatalf("terminal snapshot: %+v", last.data.Job)
	}
	if last.data.Job.Result != "final table" || len(last.data.Job.Results) != 2 {
		t.Fatalf("terminal payloads: %+v", last.data.Job)
	}
	var prev int64
	for _, f := range frames {
		if f.id <= prev {
			t.Fatalf("versions not strictly increasing: %+v", frames)
		}
		if f.id != f.data.Job.Version {
			t.Fatalf("SSE id %d != snapshot version %d", f.id, f.data.Job.Version)
		}
		prev = f.id
	}
}

// TestSSEResumeAfterDisconnect: a client that drops mid-stream and
// reconnects with Last-Event-ID sees only news — no replayed versions —
// and still reaches the terminal event.
func TestSSEResumeAfterDisconnect(t *testing.T) {
	srv := NewServer(BatchOptions{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, step := stepJob(t, srv, 3)
	resp := openStream(t, ts, id, 0)
	// First connection: read up to the first progress report, then drop.
	go func() { step <- struct{}{} }()
	sc := sseScanner(resp.Body)
	var cursor int64
	for cursor == 0 {
		f, ok := nextFrame(t, sc)
		if !ok {
			t.Fatal("stream ended before the first progress report")
		}
		if f.data.Job.Completed > 0 {
			cursor = f.id
		}
	}
	resp.Body.Close() // simulated disconnect

	// Finish the job while nobody is connected.
	go func() { step <- struct{}{}; step <- struct{}{} }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := srv.Job(id)
		if snap.Done() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Resume: everything the second stream sends must be newer than the
	// cursor, and the terminal event must arrive immediately.
	resp2 := openStream(t, ts, id, cursor)
	defer resp2.Body.Close()
	frames := readFrames(t, resp2.Body, 64)
	if len(frames) == 0 {
		t.Fatal("resumed stream sent nothing")
	}
	for _, f := range frames {
		if f.id <= cursor {
			t.Fatalf("resumed stream replayed version %d (cursor %d)", f.id, cursor)
		}
	}
	if last := frames[len(frames)-1]; last.event != api.JobEventTerminal || last.data.Job.Completed != 3 {
		t.Fatalf("resumed terminal: %+v", last)
	}
}

// TestSSEErrors: unknown jobs 404 with the envelope before any stream
// bytes; malformed cursors are invalid_request.
func TestSSEErrors(t *testing.T) {
	srv := NewServer(BatchOptions{})
	defer srv.Close()
	_, do := testClient(t, srv)

	status, out := do("GET", "/v1/jobs/job-999999/events", "")
	if code, _ := envelope(t, out); status != http.StatusNotFound || code != "not_found" {
		t.Fatalf("unknown job stream: %d %v", status, out)
	}
	status, out = do("GET", "/v1/jobs/job-000001/events?last_event_id=banana", "")
	if code, _ := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("bad cursor: %d %v", status, out)
	}
}

// TestLongPollVersionCursor: GET /v1/jobs/{id}?after_version=N parks
// until news (or the wait window ends) — the fallback transport behind
// `cimloop jobs wait`.
func TestLongPollVersionCursor(t *testing.T) {
	srv := NewServer(BatchOptions{})
	defer srv.Close()
	_, do := testClient(t, srv)

	id, step := stepJob(t, srv, 1)
	// Stale cursor answers immediately.
	status, snap := do("GET", "/v1/jobs/"+id+"?after_version=0", "")
	if status != http.StatusOK {
		t.Fatalf("stale poll: %d %v", status, snap)
	}
	ver := int64(snap["version"].(float64))
	if ver < 1 {
		t.Fatalf("version %v", snap)
	}

	// Fresh cursor parks until the job moves.
	type res struct {
		status int
		snap   map[string]any
	}
	ch := make(chan res, 1)
	go func() {
		st, out := do("GET", "/v1/jobs/"+id+"?after_version="+strconv.FormatInt(ver, 10)+"&wait_sec=30", "")
		ch <- res{st, out}
	}()
	select {
	case r := <-ch:
		// The job hasn't moved; the poll must not return instantly unless
		// it raced the runner's start transition — accept only a newer
		// version.
		if int64(r.snap["version"].(float64)) <= ver {
			t.Fatalf("long-poll returned stale state: %v", r.snap)
		}
	case <-time.After(50 * time.Millisecond):
		// Parked, as expected: now release the item and the poll returns.
		step <- struct{}{}
		select {
		case r := <-ch:
			if r.status != http.StatusOK || int64(r.snap["version"].(float64)) <= ver {
				t.Fatalf("long-poll after news: %+v", r)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("long-poll never returned after news")
		}
	}
	// Out-of-range wait windows are rejected.
	status, out := do("GET", "/v1/jobs/"+id+"?after_version=0&wait_sec=3600", "")
	if code, _ := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("huge wait_sec: %d %v", status, out)
	}
	// A zero-window poll on an unchanged version still answers 200 with
	// the current snapshot (pure poll degradation).
	if status, snap := do("GET", "/v1/jobs/"+id+"?after_version=999999&wait_sec=0", ""); status != http.StatusOK || snap["id"] != id {
		t.Fatalf("zero-window poll: %d %v", status, snap)
	}
}
