package serve

import (
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
)

// Observability wiring: the server owns one obs.Registry that every
// subsystem reports into, plus a slow-request ring. /metrics is the
// Prometheus view of the registry; /healthz is the JSON view of the
// same producers — both read the same counters, so the two surfaces
// cannot drift apart. Request-scoped spans are created per HTTP
// request and per sweep item, accumulate phase timings (queue, cache,
// compile, search, forward) as the context flows serve → jobs → core →
// mapper → persist → cluster, and land in phase histograms and the
// slow log when they finish.

// DefaultSlowLogSize bounds the /v1/debug/slow ring when
// BatchOptions.SlowLogSize is zero.
const DefaultSlowLogSize = 64

func (o BatchOptions) slowLogSize() int {
	if o.SlowLogSize > 0 {
		return o.SlowLogSize
	}
	return DefaultSlowLogSize
}

// serverMetrics holds the hot-path instruments. Everything snapshot-
// shaped (cache/jobs/budget/persist/cluster stats) is instead emitted
// by the registry collector at scrape time — one producer, two views.
type serverMetrics struct {
	reg *obs.Registry

	requestsTotal   *obs.CounterVec   // route, code
	requestSeconds  *obs.HistogramVec // route
	phaseSeconds    *obs.HistogramVec // phase
	evaluateSeconds *obs.Histogram
	queueWait       *obs.HistogramVec // class
	persistWrite    *obs.HistogramVec // store
	tenantReloads   *obs.CounterVec   // result
	sweepReloads    *obs.CounterVec   // result
	spansTotal      *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		requestsTotal: reg.CounterVec("cimloop_http_requests_total",
			"HTTP requests by route pattern and status code.", "route", "code"),
		requestSeconds: reg.HistogramVec("cimloop_http_request_seconds",
			"HTTP request latency by route pattern.", nil, "route"),
		phaseSeconds: reg.HistogramVec("cimloop_request_phase_seconds",
			"Time spent per traced request phase (queue, cache, compile, search, forward).", nil, "phase"),
		evaluateSeconds: reg.Histogram("cimloop_evaluate_seconds",
			"End-to-end latency of one evaluation (cache lookups + mapping search).", nil),
		queueWait: reg.HistogramVec("cimloop_job_queue_wait_seconds",
			"Time jobs spent queued before dispatch, by scheduling class.", nil, "class"),
		persistWrite: reg.HistogramVec("cimloop_persist_write_seconds",
			"Write-behind store write latency (encode + fsync + rename), by store.", nil, "store"),
		tenantReloads: reg.CounterVec("cimloop_tenant_reloads_total",
			"Tenant-file hot reloads by result (SIGHUP token rotation).", "result"),
		sweepReloads: reg.CounterVec("cimloop_sweepdef_reloads_total",
			"Sweep-definition hot reloads by result (boot registration and SIGHUP).", "result"),
		spansTotal: reg.Counter("cimloop_spans_total",
			"Finished request spans (HTTP requests and sweep items)."),
	}
}

// Metrics returns the server's registry, for embedding programs that
// want to add their own instruments or serve /metrics themselves.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// SlowRequests snapshots the slow-request ring, newest first.
func (s *Server) SlowRequests() []obs.SlowEntry { return s.slow.Snapshot() }

// finishSpan retires one span: phase histograms, the span counter, and
// the slow log.
func (s *Server) finishSpan(sp *obs.Span, d time.Duration) {
	s.met.spansTotal.Inc()
	for _, p := range sp.Phases() {
		s.met.phaseSeconds.With(p.Phase).Observe(p.Seconds)
	}
	s.slow.RecordSpan(sp, d)
}

// registerCollectors wires the existing stat producers into the
// registry as scrape-time collectors. /healthz reads the same
// producers, so every series here has a healthz counterpart.
func (s *Server) registerCollectors() {
	reg := s.met.reg
	reg.GaugeFunc("cimloop_uptime_seconds", "Seconds since boot.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.Collect(func(e *obs.Emit) {
		cs := s.CacheStats()
		e.Counter("cimloop_cache_hits_total", "Engine/context cache hits.", float64(cs.Hits))
		e.Counter("cimloop_cache_misses_total", "Engine/context cache misses.", float64(cs.Misses))
		e.Counter("cimloop_cache_evictions_total", "GDSF cache evictions.", float64(cs.Evictions))
		e.Counter("cimloop_cache_restored_total", "Cache entries restored from warm tiers.", float64(cs.Restored))
		e.Counter("cimloop_cache_compiles_total", "Cold compiles (engine or layer context).", float64(cs.Compiles))
		e.Gauge("cimloop_cache_entries", "Live cache entries.", float64(cs.Entries))

		js := s.JobStats()
		e.Gauge("cimloop_jobs_queued", "Queued jobs by scheduling class.", float64(js.QueuedInteractive), "class", "interactive")
		e.Gauge("cimloop_jobs_queued", "", float64(js.QueuedBatch), "class", "batch")
		e.Gauge("cimloop_jobs_running", "Running jobs.", float64(js.Running))
		e.Gauge("cimloop_jobs_finished", "Retained terminal jobs.", float64(js.Finished))
		for t, n := range js.QueuedByTenant {
			e.Gauge("cimloop_jobs_queued_by_tenant", "Queued jobs by tenant.", float64(n), "tenant", t)
		}
		e.Counter("cimloop_jobs_preemptions_total", "Batch-job preemption round trips.", float64(js.Preemptions))
		// Per-tenant WFQ dispatch shares (ROADMAP item 2). The anonymous
		// remainder keeps the per-tenant series summing to the total.
		var tenantSum int64
		for t, n := range js.DispatchesByTenant {
			tenantSum += n
			e.Counter("cimloop_wfq_dispatches_total", "Job dispatches by tenant (WFQ shares).", float64(n), "tenant", t)
		}
		if anon := js.Dispatches - tenantSum; anon > 0 {
			e.Counter("cimloop_wfq_dispatches_total", "", float64(anon), "tenant", "")
		}
		for t, n := range js.PreemptionsByTenant {
			e.Counter("cimloop_jobs_preempted_by_tenant_total", "Preemption round trips by tenant.", float64(n), "tenant", t)
		}

		bs := s.SearchStats()
		e.Gauge("cimloop_search_budget_capacity", "Shared evaluation-concurrency budget size.", float64(bs.Capacity))
		e.Gauge("cimloop_search_budget_available", "Free budget tokens (instantaneous).", float64(bs.Available))
		e.Counter("cimloop_search_blocked_acquires_total", "Budget acquisitions that entered a blocking wait.", float64(bs.BlockedAcquires))
		e.Counter("cimloop_mappings_evaluated_total", "Candidate mappings evaluated since boot.", float64(bs.MappingsEvaluated))

		ps := s.PersistStats()
		if ps.Enabled {
			for _, st := range []struct {
				name  string
				stats persist.Stats
			}{{"cache", ps.Cache}, {"jobs", ps.Jobs}} {
				e.Counter("cimloop_persist_written_total", "Records written by the write-behind stores.", float64(st.stats.Written), "store", st.name)
				e.Counter("cimloop_persist_deleted_total", "Records deleted by the write-behind stores.", float64(st.stats.Deleted), "store", st.name)
				e.Counter("cimloop_persist_write_errors_total", "Write-behind store errors.", float64(st.stats.WriteErrors), "store", st.name)
				e.Counter("cimloop_persist_dropped_total", "Non-blocking puts dropped by a full queue.", float64(st.stats.Dropped), "store", st.name)
			}
		}

		if s.cluster.enabled {
			e.Counter("cimloop_cluster_evaluations_total", "Routed evaluations by disposition.", float64(s.cluster.local.Load()), "route", "local")
			e.Counter("cimloop_cluster_evaluations_total", "", float64(s.cluster.forwarded.Load()), "route", "forwarded")
			e.Counter("cimloop_cluster_evaluations_total", "", float64(s.cluster.received.Load()), "route", "received")
			e.Counter("cimloop_cluster_forward_errors_total", "Forwards that fell back to local evaluation.", float64(s.cluster.forwardErrs.Load()))
		}

		e.Gauge("cimloop_slow_log_entries", "Entries retained in the slow-request ring.", float64(s.slow.Len()))
		e.Counter("cimloop_slow_log_recorded_total", "Requests ever recorded into the slow log.", float64(s.slow.Recorded()))
	})
}

// ObsStats assembles the healthz "obs" section as a view of the
// registry: every number here is read back from an obs instrument or
// the slow log, not tracked separately.
func (s *Server) ObsStats() api.ObsStats {
	return api.ObsStats{
		Spans:              int64(s.met.spansTotal.Value()),
		SlowEntries:        s.slow.Len(),
		SlowRecorded:       s.slow.Recorded(),
		SlowThresholdSec:   s.slow.Threshold().Seconds(),
		DroppedLabelSets:   s.met.reg.DroppedLabelSets(),
		TenantReloads:      int64(s.met.tenantReloads.With("ok").Value()),
		TenantReloadErrors: int64(s.met.tenantReloads.With("error").Value()),
		SweepReloads:       int64(s.met.sweepReloads.With("ok").Value()),
		SweepReloadErrors:  int64(s.met.sweepReloads.With("error").Value()),
	}
}

// tenantSet is the live tenant table. It starts as BatchOptions.Tenants
// and is replaced atomically by ReloadTenants, so every request-path
// reader sees either the old or the new set, never a mix.
func (s *Server) tenantSet() *Tenants { return s.tenants.Load() }

// ReloadTenants swaps in a new tenant set without a restart — the
// SIGHUP token-rotation path. The new set must be valid and non-empty,
// and tenancy must have been enabled at boot (an open server cannot be
// locked down retroactively, nor a tenanted one opened up: handlers
// built without auth middleware are already serving). On any error the
// old set stays in force untouched. Reloads are counted in the
// registry (cimloop_tenant_reloads_total) and surfaced in /healthz.
func (s *Server) ReloadTenants(t *Tenants) error {
	err := func() error {
		if !s.tenantSet().Enabled() {
			return errors.New("serve: tenancy is off; restart with -tenants to enable it")
		}
		if !t.Enabled() {
			return errors.New("serve: refusing to load an empty tenant set")
		}
		return nil
	}()
	if err != nil {
		s.met.tenantReloads.With("error").Inc()
		return err
	}
	s.tenants.Store(t)
	s.jobs.SetTenants(t.JobTenants())
	s.met.tenantReloads.With("ok").Inc()
	return nil
}

// ReloadTenantsFile is ReloadTenants from a file path: parse and
// validate first, swap only on success — a broken file on disk leaves
// the running set untouched (and the failure counted).
func (s *Server) ReloadTenantsFile(path string) error {
	t, err := LoadTenantsFile(path)
	if err != nil {
		s.met.tenantReloads.With("error").Inc()
		return err
	}
	return s.ReloadTenants(t)
}

// withObs wraps the mux with per-request tracing and metrics: a span on
// the request context (phases filled in by the layers below), the
// route/status counters, and the request-latency histogram. Routes are
// labeled by mux pattern — bounded cardinality — never by raw path.
// /healthz and /metrics are exempt: probes and scrapes arrive every few
// seconds and would drown the signal they exist to read.
func (s *Server) withObs(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			mux.ServeHTTP(w, r)
			return
		}
		route := "unmatched"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}
		sp := obs.NewSpan(route)
		sp.Tenant = tenantFrom(r.Context())
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(rec, r.WithContext(obs.ContextWith(r.Context(), sp)))
		d := time.Since(sp.Start())
		s.met.requestsTotal.With(route, strconv.Itoa(rec.status)).Inc()
		s.met.requestSeconds.With(route).Observe(d.Seconds())
		if rec.status >= http.StatusBadRequest {
			sp.SetError("HTTP " + strconv.Itoa(rec.status))
		}
		s.finishSpan(sp, d)
	})
}

// statusRecorder captures the response status for the request counter,
// forwarding Flush so SSE streams keep working through the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusRecorder) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics serves the registry as Prometheus text format. Exempt
// from auth like /healthz: scrape targets don't carry bearer tokens,
// and the exposition names tenants by id, never by token.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.reg.Handler().ServeHTTP(w, r)
}

// handleSlow serves the slow-request ring (newest first). Behind auth
// when tenancy is on — request tags and error strings are operator
// data. ?limit=N truncates the snapshot.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	entries := s.slow.Snapshot()
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeAPIError(w, http.StatusBadRequest,
				api.Errorf(api.CodeInvalidRequest, "limit must be a positive integer, got %q", v))
			return
		}
		if n < len(entries) {
			entries = entries[:n]
		}
	}
	writeJSON(w, http.StatusOK, api.SlowResponse{
		Requests:     entries,
		Recorded:     s.slow.Recorded(),
		ThresholdSec: s.slow.Threshold().Seconds(),
	})
}

// DebugHandler is the opt-in debug listener's handler (`cimloop serve
// -debug-addr`): net/http/pprof plus a /metrics alias. It is never
// mounted on the public API listener — profiling endpoints expose heap
// contents and must stay on an operator-only port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// observeDispatch is the jobs.Options hook feeding the queue-wait
// histogram (per scheduling class; the per-tenant dispatch counters
// live in jobs.Stats and are emitted by the collector).
func (s *Server) observeDispatch(tenant string, pri jobs.Priority, wait time.Duration) {
	s.met.queueWait.With(string(pri)).Observe(wait.Seconds())
}
