package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestTokenBudget exercises the semaphore's non-blocking contract.
func TestTokenBudget(t *testing.T) {
	b := newTokenBudget(4)
	if b.capacity() != 4 || b.available() != 4 {
		t.Fatalf("fresh budget: capacity %d available %d", b.capacity(), b.available())
	}
	if got := b.tryAcquire(3); got != 3 {
		t.Fatalf("tryAcquire(3) = %d", got)
	}
	if got := b.tryAcquire(3); got != 1 {
		t.Fatalf("tryAcquire(3) on a budget of 1 = %d, want 1", got)
	}
	if got := b.tryAcquire(1); got != 0 {
		t.Fatalf("tryAcquire on an empty budget = %d, want 0", got)
	}
	b.release(4)
	if b.available() != 4 {
		t.Fatalf("available after release = %d, want 4", b.available())
	}
	// Zero/negative capacities clamp to 1 so a misconfigured server still
	// serves.
	if newTokenBudget(0).capacity() != 1 {
		t.Fatal("zero capacity not clamped")
	}
}

// TestTokenBudgetConcurrent hammers the budget from many goroutines and
// checks conservation: tokens never exceed capacity. Meaningful chiefly
// under -race.
func TestTokenBudgetConcurrent(t *testing.T) {
	b := newTokenBudget(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got := b.tryAcquire(3)
				b.release(got)
			}
		}()
	}
	wg.Wait()
	if b.available() != 8 {
		t.Fatalf("tokens leaked: available %d of 8", b.available())
	}
}

// TestEvaluateParallelMatchesSerial checks a request answered with
// intra-request fan-out carries the identical metrics as the serial
// answer, including the evaluated-mapping count.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	serial := NewServer(BatchOptions{})
	parallel := NewServer(BatchOptions{SearchWorkers: 8})
	req := Request{Macro: "base", Network: "toy", MaxMappings: 24, Seed: 3}
	want, err := serial.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.EnergyJ != want.EnergyJ || got.GOPS != want.GOPS || got.TOPSPerW != want.TOPSPerW ||
		got.MappingsEvaluated != want.MappingsEvaluated {
		t.Fatalf("parallel result diverged:\n  parallel %+v\n  serial   %+v", got, want)
	}
	if want.MappingsEvaluated == 0 {
		t.Fatal("MappingsEvaluated not populated")
	}
	// Per-request override on a serial server: same answer again.
	req.SearchWorkers = 4
	over, err := serial.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if over.EnergyJ != want.EnergyJ || over.MappingsEvaluated != want.MappingsEvaluated {
		t.Fatalf("per-request override diverged: %+v vs %+v", over, want)
	}
}

// TestBudgetCapacityCoversSearchWorkers checks the budget is sized for
// the bigger of the pool width and the search fan-out.
func TestBudgetCapacityCoversSearchWorkers(t *testing.T) {
	s := NewServer(BatchOptions{Workers: 2, SearchWorkers: 8})
	if got := s.SearchStats().Capacity; got != 8 {
		t.Fatalf("budget capacity %d, want 8", got)
	}
	s = NewServer(BatchOptions{Workers: 8, SearchWorkers: 2})
	if got := s.SearchStats().Capacity; got != 8 {
		t.Fatalf("budget capacity %d, want 8", got)
	}
	st := s.SearchStats()
	if st.Available != 8 || st.SearchWorkers != 2 {
		t.Fatalf("idle stats %+v", st)
	}
}

// TestSweepRestoresBudget runs a parallel-search sweep and checks every
// token is returned afterwards — the pool and the fan-out borrow and give
// back the same global budget.
func TestSweepRestoresBudget(t *testing.T) {
	s := NewServer(BatchOptions{Workers: 2, SearchWorkers: 4})
	reqs := Grid([]string{"base", "macro-b"}, []string{"toy"}, nil, 1, 6)
	results, err := s.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != "" {
			t.Fatal(r.Err)
		}
	}
	st := s.SearchStats()
	if st.Available != st.Capacity {
		t.Fatalf("budget leaked: %d of %d available after sweep", st.Available, st.Capacity)
	}
}

// TestSweepParallelSearchMatchesSerial checks sweep results are identical
// whether intra-request search parallelism is on or off, at any pool
// width — the end-to-end determinism contract.
func TestSweepParallelSearchMatchesSerial(t *testing.T) {
	reqs := Grid([]string{"base", "macro-b"}, []string{"toy"}, nil, 2, 8)
	serial := NewServer(BatchOptions{Workers: 1})
	want, err := serial.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	parallel := NewServer(BatchOptions{Workers: 2, SearchWorkers: 8})
	got, err := parallel.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].EnergyJ != want[i].EnergyJ || got[i].MappingsEvaluated != want[i].MappingsEvaluated {
			t.Fatalf("request %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestEvaluateSearchWorkersCancelled checks cancellation still reaches a
// parallel in-request search through the ctx seam.
func TestEvaluateSearchWorkersCancelled(t *testing.T) {
	s := NewServer(BatchOptions{SearchWorkers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.EvaluateCtx(ctx, Request{Macro: "base", Network: "toy", MaxMappings: 16})
	if err == nil {
		t.Fatal("cancelled parallel evaluation returned nil error")
	}
}

// TestHTTPSearchWorkersField checks the JSON API accepts search_workers
// and reports the budget under /healthz.
func TestHTTPSearchWorkersField(t *testing.T) {
	s := NewServer(BatchOptions{Workers: 2, SearchWorkers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"macro": "base", "network": "toy", "max_mappings": 8, "search_workers": 4}`
	resp, err := ts.Client().Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= 0 || res.MappingsEvaluated <= 0 {
		t.Fatalf("implausible result %+v", res)
	}

	health, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var h struct {
		Search BudgetStats `json:"search"`
	}
	if err := json.NewDecoder(health.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Search.Capacity != 4 || h.Search.SearchWorkers != 4 {
		t.Fatalf("healthz search stats %+v", h.Search)
	}
}
