package serve

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/workload"
)

// TestEvaluateMatchesSequential checks the cached, pooled path computes
// exactly what the sequential core evaluator computes.
func TestEvaluateMatchesSequential(t *testing.T) {
	arch, err := macros.Base(macros.Config{Rows: 16, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		t.Fatal(err)
	}
	net := workload.Toy()
	want, err := eng.EvaluateNetwork(net, 8, 3)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(BatchOptions{})
	got, err := srv.Evaluate(Request{Arch: arch, Net: net, MaxMappings: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.EnergyJ-want.Energy)/want.Energy > 1e-12 {
		t.Fatalf("energy %g, want %g", got.EnergyJ, want.Energy)
	}
	if got.MACs != want.MACs {
		t.Fatalf("MACs %d, want %d", got.MACs, want.MACs)
	}
	if got.NetworkResult == nil || len(got.NetworkResult.PerLayer) != len(net.Layers) {
		t.Fatal("per-layer breakdown missing")
	}
}

func TestSweepGridAndCacheReuse(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 4, MaxMappings: 4})
	reqs := Grid([]string{"base", "macro-b"}, []string{"toy"}, nil, 0, 4)
	if len(reqs) != 2 {
		t.Fatalf("grid size %d, want 2", len(reqs))
	}
	cold, err := srv.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cold {
		if r.Err != "" {
			t.Fatalf("request %d failed: %s", i, r.Err)
		}
		if r.EnergyJ <= 0 {
			t.Fatalf("request %d energy %g", i, r.EnergyJ)
		}
	}
	afterCold := srv.CacheStats()
	if afterCold.Hits != 0 {
		t.Fatalf("cold sweep must miss everywhere, got %d hits", afterCold.Hits)
	}

	warm, err := srv.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	afterWarm := srv.CacheStats()
	if afterWarm.Misses != afterCold.Misses {
		t.Fatalf("warm sweep recompiled state: misses %d -> %d", afterCold.Misses, afterWarm.Misses)
	}
	if afterWarm.Hits == 0 {
		t.Fatal("warm sweep must hit the cache")
	}
	// Same seeds, same cached state: identical results.
	for i := range cold {
		if cold[i].EnergyJ != warm[i].EnergyJ {
			t.Fatalf("request %d energy changed across identical sweeps: %g vs %g",
				i, cold[i].EnergyJ, warm[i].EnergyJ)
		}
	}
}

func TestSweepOrderAndErrors(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 8, MaxMappings: 2})
	reqs := []Request{
		{Macro: "base", Network: "toy", Tag: "first"},
		{Macro: "no-such-macro", Network: "toy", Tag: "second"},
		{Macro: "base", Network: "no-such-network", Tag: "third"},
		{Macro: "base", Network: "toy", Tag: "fourth"},
	}
	results, err := srv.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i, want := range []string{"first", "second", "third", "fourth"} {
		if results[i].Tag != want {
			t.Fatalf("result %d tag %q, want %q (order must follow requests)", i, results[i].Tag, want)
		}
	}
	if results[1].Err == "" || results[2].Err == "" {
		t.Fatal("bad requests must report per-request errors")
	}
	if results[0].Err != "" || results[3].Err != "" {
		t.Fatal("good requests must not be poisoned by bad ones")
	}

	table := SweepTable(results)
	s := table.String()
	if !strings.Contains(s, "first") || !strings.Contains(s, "ok") {
		t.Fatalf("table missing rows:\n%s", s)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("table rows %d, want 4", len(table.Rows))
	}

	if _, err := srv.Sweep(nil); err == nil {
		t.Fatal("empty sweep must error")
	}
}

func TestScenarioRequests(t *testing.T) {
	srv := NewServer(BatchOptions{MaxMappings: 2})
	res, err := srv.Evaluate(Request{
		Macro: "macro-d", Network: "toy",
		Scenario: "weight-stationary", SystemMacros: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= 0 {
		t.Fatalf("energy %g", res.EnergyJ)
	}
	if !strings.Contains(res.Tag, "weight-stationary") {
		t.Fatalf("tag %q should mention the scenario", res.Tag)
	}
	if _, err := srv.Evaluate(Request{Macro: "base", Network: "toy", Scenario: "nope"}); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

func TestRequestValidation(t *testing.T) {
	srv := NewServer(BatchOptions{})
	cases := []Request{
		{},                             // no arch, no net
		{Macro: "base"},                // no net
		{Network: "toy"},               // no arch
		{Macro: "base", Spec: "name:"}, // two arch sources
		{Macro: "base", Network: "toy", Net: workload.Toy()}, // two nets
	}
	for i, req := range cases {
		if _, err := srv.Evaluate(req); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
}

// TestLayersCap checks the fast-path layer subset.
func TestLayersCap(t *testing.T) {
	srv := NewServer(BatchOptions{MaxMappings: 2})
	res, err := srv.Evaluate(Request{Macro: "base", Network: "resnet18", Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.NetworkResult.PerLayer); n != 2 {
		t.Fatalf("evaluated %d layers, want 2", n)
	}
}
